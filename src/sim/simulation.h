#ifndef BESYNC_SIM_SIMULATION_H_
#define BESYNC_SIM_SIMULATION_H_

#include <cstdint>

#include "sim/event_queue.h"

namespace besync {

/// Discrete event simulation driver.
///
/// The besync evaluation uses a hybrid scheme: object updates are scheduled
/// as continuous-time events, while scheduling decisions, network pumping and
/// feedback happen on fixed ticks driven by the caller:
///
///   Simulation sim;
///   sim.ScheduleAt(0.37, [](double t) { ... });
///   while (sim.now() < end) {
///     sim.RunUntil(sim.now() + tick);   // fire all events in the tick
///     DoTickWork(sim.now());            // scheduling / network / stats
///   }
class Simulation {
 public:
  Simulation() = default;

  Simulation(const Simulation&) = delete;
  Simulation& operator=(const Simulation&) = delete;

  /// Current simulated time (seconds).
  double now() const { return now_; }

  /// Schedules `callback` at absolute time `time` (must be >= now()).
  void ScheduleAt(double time, EventCallback callback);

  /// Schedules `callback` `delay` seconds from now (delay >= 0).
  void ScheduleAfter(double delay, EventCallback callback);

  /// Fires all events with timestamp <= `time` in order, then advances the
  /// clock to exactly `time`. Events scheduled while running (with timestamps
  /// <= `time`) fire within the same call.
  void RunUntil(double time);

  /// Fires the single earliest event, if any; returns whether one fired.
  bool Step();

  size_t pending_events() const { return queue_.size(); }
  uint64_t events_fired() const { return events_fired_; }

 private:
  EventQueue queue_;
  double now_ = 0.0;
  uint64_t events_fired_ = 0;
};

}  // namespace besync

#endif  // BESYNC_SIM_SIMULATION_H_
