#ifndef BESYNC_SIM_EVENT_QUEUE_H_
#define BESYNC_SIM_EVENT_QUEUE_H_

#include <cstdint>
#include <functional>

#include "util/timer_wheel.h"

namespace besync {

/// Callback invoked when an event fires; receives the event's timestamp.
using EventCallback = std::function<void(double)>;

/// Timestamped event queue with stable FIFO ordering among events scheduled
/// for the same instant (ties broken by insertion sequence).
///
/// Backed by a hierarchical timer wheel (util/timer_wheel.h) instead of a
/// monolithic binary heap: with ~1M scheduled object updates in flight the
/// heap paid O(log n) cache-hostile sifts per push/pop, while the wheel
/// pushes in O(1) and only heap-orders the handful of events in the current
/// bucket. The pop order is *exactly* the old heap's (time, seq) order —
/// see the exactness argument in util/timer_wheel.h — so golden results are
/// bit-for-bit unchanged.
class EventQueue {
 public:
  EventQueue() = default;

  EventQueue(const EventQueue&) = delete;
  EventQueue& operator=(const EventQueue&) = delete;

  void Push(double time, EventCallback callback) {
    wheel_.Push(time, std::move(callback));
  }

  bool empty() const { return wheel_.empty(); }
  size_t size() const { return wheel_.size(); }

  /// Timestamp of the earliest event; queue must be non-empty. Non-const:
  /// the wheel may rotate buckets into its near heap to find the minimum.
  double NextTime() { return wheel_.NextTime(); }

  /// Pops the earliest event into (time, callback); queue must be non-empty.
  /// This is deliberately the only pop: a callback-only overload invited
  /// firing events with a caller-supplied timestamp that silently
  /// disagreed with the event's own (peek NextTime() first if only the
  /// time is needed).
  void PopInto(double* time, EventCallback* callback) {
    wheel_.PopInto(time, callback);
  }

 private:
  TimerWheel wheel_;
};

}  // namespace besync

#endif  // BESYNC_SIM_EVENT_QUEUE_H_
