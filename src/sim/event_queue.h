#ifndef BESYNC_SIM_EVENT_QUEUE_H_
#define BESYNC_SIM_EVENT_QUEUE_H_

#include <cstdint>
#include <functional>
#include <vector>

namespace besync {

/// Callback invoked when an event fires; receives the event's timestamp.
using EventCallback = std::function<void(double)>;

/// Min-heap of timestamped events with stable FIFO ordering among events
/// scheduled for the same instant (ties broken by insertion sequence).
class EventQueue {
 public:
  EventQueue() = default;

  EventQueue(const EventQueue&) = delete;
  EventQueue& operator=(const EventQueue&) = delete;

  void Push(double time, EventCallback callback);

  bool empty() const { return entries_.empty(); }
  size_t size() const { return entries_.size(); }

  /// Timestamp of the earliest event; queue must be non-empty.
  double NextTime() const;

  /// Pops the earliest event into (time, callback); queue must be non-empty.
  /// This is deliberately the only pop: a callback-only overload invited
  /// firing events with a caller-supplied timestamp that silently
  /// disagreed with the event's own (peek NextTime() first if only the
  /// time is needed).
  void PopInto(double* time, EventCallback* callback);

 private:
  struct Entry {
    double time;
    uint64_t seq;
    EventCallback callback;
  };

  // Min-heap ordering: earlier time first; FIFO for equal times.
  static bool Later(const Entry& a, const Entry& b) {
    if (a.time != b.time) return a.time > b.time;
    return a.seq > b.seq;
  }

  std::vector<Entry> entries_;
  uint64_t next_seq_ = 0;
};

}  // namespace besync

#endif  // BESYNC_SIM_EVENT_QUEUE_H_
