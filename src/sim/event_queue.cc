#include "sim/event_queue.h"

#include <algorithm>

#include "util/logging.h"

namespace besync {

void EventQueue::Push(double time, EventCallback callback) {
  entries_.push_back(Entry{time, next_seq_++, std::move(callback)});
  std::push_heap(entries_.begin(), entries_.end(), Later);
}

double EventQueue::NextTime() const {
  BESYNC_CHECK(!entries_.empty());
  return entries_.front().time;
}

void EventQueue::PopInto(double* time, EventCallback* callback) {
  BESYNC_CHECK(!entries_.empty());
  std::pop_heap(entries_.begin(), entries_.end(), Later);
  *time = entries_.back().time;
  *callback = std::move(entries_.back().callback);
  entries_.pop_back();
}

}  // namespace besync
