#include "sim/simulation.h"

#include <utility>

#include "util/logging.h"

namespace besync {

void Simulation::ScheduleAt(double time, EventCallback callback) {
  BESYNC_CHECK_GE(time, now_);
  queue_.Push(time, std::move(callback));
}

void Simulation::ScheduleAfter(double delay, EventCallback callback) {
  BESYNC_CHECK_GE(delay, 0.0);
  queue_.Push(now_ + delay, std::move(callback));
}

void Simulation::RunUntil(double time) {
  BESYNC_CHECK_GE(time, now_);
  while (!queue_.empty() && queue_.NextTime() <= time) {
    double event_time;
    EventCallback callback;
    queue_.PopInto(&event_time, &callback);
    now_ = event_time;
    ++events_fired_;
    callback(event_time);
  }
  now_ = time;
}

bool Simulation::Step() {
  if (queue_.empty()) return false;
  double event_time;
  EventCallback callback;
  queue_.PopInto(&event_time, &callback);
  BESYNC_CHECK_GE(event_time, now_);
  now_ = event_time;
  ++events_fired_;
  callback(event_time);
  return true;
}

}  // namespace besync
