#ifndef BESYNC_BASELINE_CGM_H_
#define BESYNC_BASELINE_CGM_H_

#include <memory>
#include <string>
#include <vector>

#include "baseline/ideal_cache.h"
#include "baseline/lambda_estimator.h"
#include "core/harness.h"
#include "net/link.h"
#include "priority/priority_queue.h"

namespace besync {

/// Which estimator input the practical CGM variants use (Section 6.3).
enum class CGMVariant {
  /// CGM1: sources report the time of the most recent update per poll.
  kLastModified,
  /// CGM2: the cache only learns whether the object changed since the last
  /// refresh.
  kBooleanChange,
};

/// Practical CGM parameters.
struct CGMConfig {
  CacheDrivenConfig network;
  CGMVariant variant = CGMVariant::kLastModified;
  /// Seconds between re-estimation of update rates + re-solving the
  /// frequency allocation.
  double reallocation_period = 100.0;
  /// Rate estimate used before an object has accumulated enough polls.
  double prior_lambda = 0.5;
  /// Polls needed before an estimator's output replaces the prior.
  int64_t min_polls = 2;
  /// Fraction of bandwidth spent cycling through *all* objects regardless of
  /// the allocation, so estimators keep receiving observations even for
  /// objects the allocator currently starves (frequency 0). Without this,
  /// an object mis-estimated once could never be re-observed. A small value
  /// is charitable to CGM; set to 0 for the pure allocator.
  double exploration_fraction = 0.05;
};

/// The practical cache-driven baselines CGM1/CGM2 of Section 6.3: the cache
/// schedules refreshes at per-object frequencies from the CGM allocator,
/// but (a) every refresh is a poll costing a round trip — one unit of
/// cache-side bandwidth for the request and one for the response — and
/// (b) the update rates lambda_i must be estimated online from poll
/// outcomes. Source-side bandwidth is unconstrained, matching the paper's
/// setup for this comparison.
class CGMScheduler : public Scheduler {
 public:
  explicit CGMScheduler(const CGMConfig& config);

  std::string name() const override {
    return config_.variant == CGMVariant::kLastModified ? "cgm1" : "cgm2";
  }
  void Initialize(Harness* harness) override;
  void OnObjectUpdate(ObjectIndex /*index*/, double /*t*/) override {}
  void Tick(double t) override;
  void OnMeasurementStart(double t) override;
  /// Flushes the last tick into the cache link's utilization stat.
  void Finalize(double t) override;
  SchedulerStats stats() const override;

  /// Current rate estimate for an object (tests).
  double EstimatedLambda(ObjectIndex index) const;

 private:
  void Reallocate(double t);
  void SendPoll(ObjectIndex index, double t);

  CGMConfig config_;
  Harness* harness_ = nullptr;
  std::unique_ptr<Link> cache_link_;
  std::vector<std::unique_ptr<LambdaEstimator>> estimators_;
  std::vector<int64_t> last_seen_version_;
  std::vector<double> intervals_;
  TimeMinHeap schedule_;
  double next_reallocation_ = 0.0;
  /// Exploration cursor cycling through all objects.
  ObjectIndex explore_cursor_ = 0;
  double explore_credit_ = 0.0;
  int64_t polls_sent_ = 0;
  int64_t refreshes_applied_ = 0;
  double tick_length_ = 1.0;
};

}  // namespace besync

#endif  // BESYNC_BASELINE_CGM_H_
