#include "baseline/round_robin.h"

namespace besync {

RoundRobinScheduler::RoundRobinScheduler(const CacheDrivenConfig& config)
    : config_(config) {}

void RoundRobinScheduler::Initialize(Harness* harness) {
  harness_ = harness;
  tick_length_ = harness->config().tick_length;
  bandwidth_ = std::make_unique<BandwidthModel>(
      MakeBandwidthFluctuation(config_.cache_bandwidth_avg,
                               config_.bandwidth_change_rate, harness->scheduler_rng()));
}

void RoundRobinScheduler::Tick(double t) {
  const int64_t total = static_cast<int64_t>(harness_->objects().size());
  int64_t budget = bandwidth_->BudgetForTick(t, tick_length_);
  // Refreshing more than once per cycle within one tick is useless.
  if (budget > total) budget = total;
  while (budget-- > 0) {
    harness_->RefreshInstant(cursor_, t);
    ++refreshes_;
    cursor_ = (cursor_ + 1) % total;
  }
}

SchedulerStats RoundRobinScheduler::stats() const {
  SchedulerStats stats;
  stats.refreshes_sent = refreshes_;
  stats.refreshes_delivered = refreshes_;
  return stats;
}

}  // namespace besync
