#include "baseline/cgm.h"

#include <cmath>
#include <limits>

#include "baseline/freq_allocation.h"
#include "util/logging.h"

namespace besync {

namespace {
uint64_t ZeroEpoch(ObjectIndex) { return 0; }
}  // namespace

CGMScheduler::CGMScheduler(const CGMConfig& config) : config_(config) {}

void CGMScheduler::Initialize(Harness* harness) {
  harness_ = harness;
  tick_length_ = harness->config().tick_length;
  const Workload& workload = harness->workload();
  BESYNC_CHECK_EQ(workload.num_caches, 1)
      << "the CGM polling baselines model the paper's single-cache topology; "
         "their poll responses target cache 0 only";
  Rng* rng = harness->scheduler_rng();

  cache_link_ = std::make_unique<Link>(
      "cgm-cache",
      std::make_unique<BandwidthModel>(MakeBandwidthFluctuation(
          config_.network.cache_bandwidth_avg, config_.network.bandwidth_change_rate,
          rng)));

  const size_t n = workload.objects.size();
  estimators_.clear();
  estimators_.reserve(n);
  last_seen_version_.assign(n, 0);
  for (size_t i = 0; i < n; ++i) {
    if (config_.variant == CGMVariant::kLastModified) {
      estimators_.push_back(std::make_unique<LastModifiedEstimator>(
          config_.prior_lambda, config_.min_polls, /*start_time=*/0.0));
    } else {
      estimators_.push_back(std::make_unique<BooleanChangeEstimator>(
          config_.prior_lambda, config_.min_polls, /*start_time=*/0.0));
    }
  }
  next_reallocation_ = 0.0;
  Reallocate(0.0);
}

double CGMScheduler::EstimatedLambda(ObjectIndex index) const {
  return estimators_[index]->Estimate();
}

void CGMScheduler::Reallocate(double t) {
  const Workload& workload = harness_->workload();
  Rng* rng = harness_->scheduler_rng();
  std::vector<double> lambdas(workload.objects.size());
  std::vector<double> weights(workload.objects.size());
  for (size_t i = 0; i < workload.objects.size(); ++i) {
    lambdas[i] = estimators_[i]->Estimate();
    weights[i] = workload.objects[i].weight->average();
  }
  // The poll round trip costs 2 bandwidth units, so the sustainable refresh
  // rate is half the cache-side bandwidth, minus the exploration share.
  const double refresh_budget = config_.network.cache_bandwidth_avg *
                                (1.0 - config_.exploration_fraction) / 2.0;
  auto allocation = SolveFreshnessAllocation(lambdas, weights, refresh_budget);
  BESYNC_CHECK(allocation.ok()) << allocation.status().ToString();

  intervals_.assign(workload.objects.size(), std::numeric_limits<double>::infinity());
  schedule_.Clear();
  for (size_t i = 0; i < workload.objects.size(); ++i) {
    const double freq = allocation->frequencies[i];
    if (freq > 0.0) {
      intervals_[i] = 1.0 / freq;
      schedule_.Push(t + rng->Uniform(0.0, intervals_[i]), static_cast<ObjectIndex>(i),
                     0);
    }
  }
  next_reallocation_ = t + config_.reallocation_period;
}

void CGMScheduler::SendPoll(ObjectIndex index, double t) {
  // The poll request reaches the source within the tick (source-side
  // bandwidth is unconstrained in this model); the source snapshots its
  // object immediately and the response is queued on the cache-side link.
  const ObjectRuntime& object = harness_->object(index);
  Message response;
  response.kind = MessageKind::kPollResponse;
  response.source_index = object.spec->source_index;
  response.object_index = index;
  response.value = object.state.value;
  response.version = object.state.version;
  response.send_time = t;
  response.last_update_time = object.state.last_update_time;
  cache_link_->Enqueue(response);
  ++polls_sent_;
}

void CGMScheduler::Tick(double t) {
  cache_link_->BeginTick(t, tick_length_);

  // 1. Deliver queued poll responses within the budget; each consumes one
  //    unit and applies a refresh + an estimator observation.
  cache_link_->DeliverQueued([&](const Message& response) {
    harness_->DeliverRefresh(response, t);
    const ObjectIndex i = response.object_index;
    const bool changed = response.version != last_seen_version_[i];
    estimators_[i]->RecordPoll(response.send_time, changed, response.last_update_time);
    last_seen_version_[i] = response.version;
    ++refreshes_applied_;
  });

  // 2. Spend remaining budget on new poll requests: exploration polls first
  //    (cycling over all objects at the configured fraction of bandwidth),
  //    then the frequency schedule.
  const int64_t total = static_cast<int64_t>(estimators_.size());
  explore_credit_ += config_.exploration_fraction *
                     config_.network.cache_bandwidth_avg * tick_length_ / 2.0;
  while (explore_credit_ >= 1.0 && cache_link_->ConsumeBudget(1) == 1) {
    explore_credit_ -= 1.0;
    SendPoll(explore_cursor_, t);
    explore_cursor_ = (explore_cursor_ + 1) % total;
  }

  QueueEntry due;
  while (cache_link_->remaining_budget() > 0 && schedule_.PopDue(t, ZeroEpoch, &due)) {
    const int64_t granted = cache_link_->ConsumeBudget(1);
    BESYNC_DCHECK(granted == 1);
    SendPoll(due.index, t);
    schedule_.Push(t + intervals_[due.index], due.index, 0);
  }

  // 3. Periodic re-estimation + re-allocation.
  if (t >= next_reallocation_) Reallocate(t);
}

void CGMScheduler::OnMeasurementStart(double /*t*/) {
  polls_sent_ = 0;
  refreshes_applied_ = 0;
  cache_link_->ResetStats();
}

void CGMScheduler::Finalize(double /*t*/) { cache_link_->FinishTick(); }

SchedulerStats CGMScheduler::stats() const {
  SchedulerStats stats;
  stats.polls_sent = polls_sent_;
  stats.refreshes_delivered = refreshes_applied_;
  stats.cache_utilization = cache_link_->utilization().utilization();
  stats.avg_cache_queue = cache_link_->queue_length_stat().mean();
  stats.max_cache_queue = static_cast<int64_t>(cache_link_->max_queue_size());
  return stats;
}

}  // namespace besync
