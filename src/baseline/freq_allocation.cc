#include "baseline/freq_allocation.h"

#include <algorithm>
#include <cmath>

#include "util/logging.h"

namespace besync {

double PoissonFreshness(double lambda, double freq) {
  if (lambda <= 0.0) return 1.0;  // never changes: always fresh
  if (freq <= 0.0) return 0.0;    // never refreshed: eventually always stale
  const double x = lambda / freq;
  if (x < 1e-8) return 1.0 - 0.5 * x;  // series expansion for tiny x
  return (1.0 - std::exp(-x)) / x;
}

double PoissonFreshnessMarginal(double lambda, double freq) {
  if (lambda <= 0.0) return 0.0;
  if (freq <= 0.0) return 1.0 / lambda;  // limit as f -> 0+
  const double x = lambda / freq;
  if (x < 1e-8) {
    // (1 - e^-x) - x e^-x = x^2/2 - x^3/3 + ...  -> avoid cancellation.
    return (0.5 * x * x - x * x * x / 3.0) / lambda;
  }
  const double ex = std::exp(-x);
  return ((1.0 - ex) - x * ex) / lambda;
}

namespace {

/// Solves w * dF/df = mu for f >= 0 (marginal is decreasing in f).
double FrequencyForMultiplier(double lambda, double weight, double mu) {
  if (lambda <= 0.0 || weight <= 0.0) return 0.0;
  // Marginal at f -> 0+ is w/lambda; if even that is below mu, f* = 0.
  if (weight / lambda <= mu) return 0.0;
  // Bisection on f in (lo, hi): find hi with marginal(hi) < mu.
  double lo = 0.0;
  double hi = std::max(lambda, 1.0);
  while (weight * PoissonFreshnessMarginal(lambda, hi) > mu) {
    hi *= 2.0;
    if (hi > 1e18) return hi;  // mu effectively 0: infinite appetite
  }
  for (int iter = 0; iter < 100; ++iter) {
    const double mid = 0.5 * (lo + hi);
    if (weight * PoissonFreshnessMarginal(lambda, mid) > mu) {
      lo = mid;
    } else {
      hi = mid;
    }
    if (hi - lo <= 1e-9 * std::max(1.0, hi)) break;
  }
  return 0.5 * (lo + hi);
}

}  // namespace

Result<AllocationResult> SolveFreshnessAllocation(const std::vector<double>& lambdas,
                                                  const std::vector<double>& weights,
                                                  double bandwidth) {
  if (lambdas.empty()) {
    return Status::InvalidArgument("allocation needs at least one object");
  }
  if (!weights.empty() && weights.size() != lambdas.size()) {
    return Status::InvalidArgument("weights size mismatch: ", weights.size(), " vs ",
                                   lambdas.size());
  }
  if (bandwidth < 0.0) {
    return Status::InvalidArgument("bandwidth must be nonnegative");
  }
  auto weight_of = [&weights](size_t i) { return weights.empty() ? 1.0 : weights[i]; };

  AllocationResult result;
  result.frequencies.assign(lambdas.size(), 0.0);
  if (bandwidth == 0.0) {
    result.mu = 0.0;
    for (size_t i = 0; i < lambdas.size(); ++i) {
      result.total_weighted_freshness += weight_of(i) * PoissonFreshness(lambdas[i], 0.0);
    }
    return result;
  }

  auto total_frequency = [&](double mu) {
    double total = 0.0;
    for (size_t i = 0; i < lambdas.size(); ++i) {
      total += FrequencyForMultiplier(lambdas[i], weight_of(i), mu);
    }
    return total;
  };

  // Outer bisection on mu: total allocated frequency decreases in mu.
  double mu_hi = 0.0;
  for (size_t i = 0; i < lambdas.size(); ++i) {
    if (lambdas[i] > 0.0) mu_hi = std::max(mu_hi, weight_of(i) / lambdas[i]);
  }
  if (mu_hi == 0.0) {
    // No object ever changes; any allocation is optimal — leave all zero.
    for (size_t i = 0; i < lambdas.size(); ++i) {
      result.total_weighted_freshness += weight_of(i);
    }
    return result;
  }
  double mu_lo = mu_hi * 1e-18;
  // Ensure the bracket actually straddles the target.
  while (total_frequency(mu_lo) < bandwidth && mu_lo > 1e-300) {
    mu_lo *= 1e-3;
  }
  for (int iter = 0; iter < 120; ++iter) {
    const double mid = std::sqrt(mu_lo * mu_hi);  // geometric: mu spans decades
    if (total_frequency(mid) > bandwidth) {
      mu_lo = mid;
    } else {
      mu_hi = mid;
    }
    if (mu_hi / mu_lo < 1.0 + 1e-9) break;
  }
  result.mu = std::sqrt(mu_lo * mu_hi);

  double allocated = 0.0;
  for (size_t i = 0; i < lambdas.size(); ++i) {
    result.frequencies[i] = FrequencyForMultiplier(lambdas[i], weight_of(i), result.mu);
    allocated += result.frequencies[i];
  }
  // Renormalize the small residual so the budget binds exactly.
  if (allocated > 0.0) {
    const double scale = bandwidth / allocated;
    if (scale < 4.0) {  // guard against degenerate tiny totals
      for (double& f : result.frequencies) f *= scale;
    }
  }
  for (size_t i = 0; i < lambdas.size(); ++i) {
    result.total_weighted_freshness +=
        weight_of(i) * PoissonFreshness(lambdas[i], result.frequencies[i]);
  }
  return result;
}

}  // namespace besync
