#ifndef BESYNC_BASELINE_ROUND_ROBIN_H_
#define BESYNC_BASELINE_ROUND_ROBIN_H_

#include <memory>

#include "baseline/ideal_cache.h"
#include "core/harness.h"
#include "net/bandwidth.h"

namespace besync {

/// A deliberately naive cache-driven baseline: refresh objects in a fixed
/// cyclic order, ignoring update rates, weights and divergence entirely.
/// Used in examples and ablations as the floor any informed policy should
/// beat. Refreshes are instantaneous (no polling cost), which makes the
/// comparison conservative.
class RoundRobinScheduler : public Scheduler {
 public:
  explicit RoundRobinScheduler(const CacheDrivenConfig& config);

  std::string name() const override { return "round-robin"; }
  void Initialize(Harness* harness) override;
  void OnObjectUpdate(ObjectIndex /*index*/, double /*t*/) override {}
  void Tick(double t) override;
  void OnMeasurementStart(double /*t*/) override { refreshes_ = 0; }
  SchedulerStats stats() const override;

 private:
  CacheDrivenConfig config_;
  Harness* harness_ = nullptr;
  std::unique_ptr<BandwidthModel> bandwidth_;
  ObjectIndex cursor_ = 0;
  int64_t refreshes_ = 0;
  double tick_length_ = 1.0;
};

}  // namespace besync

#endif  // BESYNC_BASELINE_ROUND_ROBIN_H_
