#include "baseline/ideal_cache.h"

#include <cmath>
#include <limits>

#include "baseline/freq_allocation.h"
#include "util/logging.h"

namespace besync {

namespace {
uint64_t ZeroEpoch(ObjectIndex) { return 0; }
}  // namespace

IdealCacheBasedScheduler::IdealCacheBasedScheduler(const CacheDrivenConfig& config)
    : config_(config) {}

void IdealCacheBasedScheduler::Initialize(Harness* harness) {
  harness_ = harness;
  tick_length_ = harness->config().tick_length;
  const Workload& workload = harness->workload();
  Rng* rng = harness->scheduler_rng();

  bandwidth_ = std::make_unique<BandwidthModel>(MakeBandwidthFluctuation(
      config_.cache_bandwidth_avg, config_.bandwidth_change_rate, rng));

  std::vector<double> lambdas;
  std::vector<double> weights;
  lambdas.reserve(workload.objects.size());
  weights.reserve(workload.objects.size());
  for (const ObjectSpec& spec : workload.objects) {
    lambdas.push_back(spec.lambda);
    weights.push_back(spec.weight->average());
  }
  auto allocation =
      SolveFreshnessAllocation(lambdas, weights, config_.cache_bandwidth_avg);
  BESYNC_CHECK(allocation.ok()) << allocation.status().ToString();

  intervals_.assign(workload.objects.size(), std::numeric_limits<double>::infinity());
  for (size_t i = 0; i < workload.objects.size(); ++i) {
    const double freq = allocation->frequencies[i];
    if (freq > 0.0) {
      intervals_[i] = 1.0 / freq;
      // Uniformly random phase so refreshes spread over time.
      schedule_.Push(rng->Uniform(0.0, intervals_[i]), static_cast<ObjectIndex>(i), 0);
    }
  }
}

void IdealCacheBasedScheduler::Tick(double t) {
  int64_t budget = bandwidth_->BudgetForTick(t, tick_length_);
  QueueEntry due;
  while (budget > 0 && schedule_.PopDue(t, ZeroEpoch, &due)) {
    --budget;
    harness_->RefreshInstant(due.index, t);
    ++refreshes_;
    // Steady-rate rescheduling: if the system fell behind, skip the missed
    // slots rather than bursting to catch up.
    schedule_.Push(t + intervals_[due.index], due.index, 0);
  }
}

SchedulerStats IdealCacheBasedScheduler::stats() const {
  SchedulerStats stats;
  stats.refreshes_sent = refreshes_;
  stats.refreshes_delivered = refreshes_;
  return stats;
}

}  // namespace besync
