#ifndef BESYNC_BASELINE_IDEAL_CACHE_H_
#define BESYNC_BASELINE_IDEAL_CACHE_H_

#include <memory>
#include <vector>

#include "core/harness.h"
#include "net/bandwidth.h"
#include "priority/priority_queue.h"

namespace besync {

/// Configuration shared by the cache-driven (CGM-style) schedulers.
struct CacheDrivenConfig {
  double cache_bandwidth_avg = 10.0;
  double bandwidth_change_rate = 0.0;
};

/// The "ideal cache-based" curve of Figure 6: the CGM frequency-allocation
/// policy [Cho & Garcia-Molina, SIGMOD 2000] under two theoretical
/// assumptions — the cache knows every object's exact update rate, and
/// refreshes need no polling round-trip (each refresh costs one unit of
/// cache-side bandwidth and delivers the current source value instantly).
///
/// Each object is refreshed at its optimal fixed frequency f_i from
/// SolveFreshnessAllocation, with uniformly random initial phase.
class IdealCacheBasedScheduler : public Scheduler {
 public:
  explicit IdealCacheBasedScheduler(const CacheDrivenConfig& config);

  std::string name() const override { return "ideal-cache-based"; }
  void Initialize(Harness* harness) override;
  void OnObjectUpdate(ObjectIndex /*index*/, double /*t*/) override {}
  void Tick(double t) override;
  void OnMeasurementStart(double /*t*/) override { refreshes_ = 0; }
  SchedulerStats stats() const override;

 private:
  CacheDrivenConfig config_;
  Harness* harness_ = nullptr;
  std::unique_ptr<BandwidthModel> bandwidth_;
  std::vector<double> intervals_;  // 1/f_i; infinity when f_i == 0
  TimeMinHeap schedule_;
  int64_t refreshes_ = 0;
  double tick_length_ = 1.0;
};

}  // namespace besync

#endif  // BESYNC_BASELINE_IDEAL_CACHE_H_
