#include "baseline/lambda_estimator.h"

#include <algorithm>
#include <cmath>

#include "util/logging.h"

namespace besync {

BooleanChangeEstimator::BooleanChangeEstimator(double prior, int64_t min_polls,
                                               double start_time)
    : prior_(prior), min_polls_(min_polls), last_poll_time_(start_time) {
  BESYNC_CHECK_GT(prior, 0.0);
  BESYNC_CHECK_GE(min_polls, 1);
}

void BooleanChangeEstimator::RecordPoll(double poll_time, bool changed,
                                        double /*last_update_time*/) {
  const double tau = poll_time - last_poll_time_;
  if (tau <= 0.0) return;
  last_poll_time_ = poll_time;
  ++polls_;
  if (changed) ++changed_polls_;
  observed_time_ += tau;
}

double BooleanChangeEstimator::Estimate() const {
  if (polls_ < min_polls_ || observed_time_ <= 0.0) return prior_;
  const double n = static_cast<double>(polls_);
  const double x = static_cast<double>(changed_polls_);
  const double tau_bar = observed_time_ / n;
  // All polls changed -> the +0.5 correction keeps the estimate finite.
  const double ratio = (n - x + 0.5) / (n + 0.5);
  return -std::log(ratio) / tau_bar;
}

LastModifiedEstimator::LastModifiedEstimator(double prior, int64_t min_polls,
                                             double start_time)
    : prior_(prior), min_polls_(min_polls), last_poll_time_(start_time) {
  BESYNC_CHECK_GT(prior, 0.0);
  BESYNC_CHECK_GE(min_polls, 1);
}

void LastModifiedEstimator::RecordPoll(double poll_time, bool changed,
                                       double last_update_time) {
  const double tau = poll_time - last_poll_time_;
  if (tau <= 0.0) return;
  ++polls_;
  if (changed && last_update_time >= 0.0) {
    ++observed_changes_;
    // The stretch after the last update contains no updates by definition.
    const double gap = std::clamp(poll_time - last_update_time, 0.0, tau);
    quiet_time_ += gap;
  } else {
    quiet_time_ += tau;
  }
  last_poll_time_ = poll_time;
}

double LastModifiedEstimator::Estimate() const {
  if (polls_ < min_polls_) return prior_;
  if (quiet_time_ <= 0.0) {
    // Every instant contained updates: extremely hot object.
    return prior_ * 100.0;
  }
  // +0.5 smoothing keeps never-changing objects at a small positive rate.
  return (static_cast<double>(observed_changes_) + 0.5) / quiet_time_;
}

}  // namespace besync
