#include "baseline/ideal.h"

#include <algorithm>
#include <cmath>

#include "util/logging.h"

namespace besync {

IdealCooperativeScheduler::IdealCooperativeScheduler(const IdealConfig& config)
    : config_(config), policy_(MakePolicy(config.policy, config.history_beta)) {}

void IdealCooperativeScheduler::Initialize(Harness* harness) {
  harness_ = harness;
  tick_length_ = harness->config().tick_length;
  const Workload& workload = harness->workload();
  Rng* rng = harness->scheduler_rng();

  cache_bandwidth_ = std::make_unique<BandwidthModel>(MakeBandwidthFluctuation(
      config_.cache_bandwidth_avg, config_.bandwidth_change_rate, rng));
  source_bandwidths_.clear();
  for (int j = 0; j < workload.num_sources; ++j) {
    if (config_.source_bandwidth_avg > 0.0) {
      source_bandwidths_.push_back(std::make_unique<BandwidthModel>(
          MakeBandwidthFluctuation(config_.source_bandwidth_avg,
                                   config_.bandwidth_change_rate, rng)));
    } else {
      source_bandwidths_.push_back(nullptr);  // unconstrained
    }
  }
  source_budget_.assign(workload.num_sources, 0);
  source_debt_.assign(workload.num_sources, 0);
  cache_debt_ = 0;

  epochs_.assign(workload.objects.size(), 0);
  history_.assign(workload.objects.size(), HistoryRateEstimator());
  object_source_.resize(workload.objects.size());
  for (size_t i = 0; i < workload.objects.size(); ++i) {
    object_source_[i] = workload.objects[i].source_index;
  }
  if (policy_->time_varying()) {
    // The bound policy's priority rises deterministically with time; seed
    // one wake-up per object. Crossing the "top" position is detected by
    // re-evaluating due objects each tick, so wake every object every tick.
    for (size_t i = 0; i < epochs_.size(); ++i) {
      wake_queue_.Push(0.0, static_cast<ObjectIndex>(i), 0);
    }
  }
}

double IdealCooperativeScheduler::ComputePriority(ObjectIndex index, double now) const {
  const ObjectRuntime& object = harness_->object(index);
  PriorityContext context;
  context.tracker = &object.tracker();
  context.weight = harness_->WeightAt(index, now);
  if (config_.cost_aware_priority && object.spec->refresh_cost > 1) {
    context.weight /= static_cast<double>(object.spec->refresh_cost);
  }
  context.max_divergence_rate = object.spec->max_divergence_rate;
  context.history_rate = history_[index].rate();
  context.lambda_estimate = EstimateLambda(
      config_.lambda_mode, object.spec->lambda, object.state.version, now,
      object.tracker().updates_since_refresh(),
      now - object.tracker().last_refresh_time());
  return policy_->Priority(context, now);
}

void IdealCooperativeScheduler::OnObjectUpdate(ObjectIndex index, double t) {
  if (policy_->time_varying()) {
    if (policy_->update_sensitive()) {
      ++epochs_[index];
      wake_queue_.Push(t, index, epochs_[index]);
    }
    return;
  }
  uint64_t& epoch = epochs_[index];
  ++epoch;
  queue_.Push(ComputePriority(index, t), index, epoch);
  MaybeCompact();
}

void IdealCooperativeScheduler::MaybeCompact() {
  if (queue_.size() > 4 * epochs_.size() + 64) {
    queue_.Compact([this](ObjectIndex i) { return epochs_[i]; });
  }
}

void IdealCooperativeScheduler::Tick(double t) {
  const EpochFn epoch_fn = [this](ObjectIndex i) { return epochs_[i]; };
  int64_t budget = cache_bandwidth_->BudgetForTick(t, tick_length_) + cache_debt_;
  for (size_t j = 0; j < source_bandwidths_.size(); ++j) {
    source_budget_[j] =
        source_bandwidths_[j]
            ? source_bandwidths_[j]->BudgetForTick(t, tick_length_) + source_debt_[j]
            : std::max<int64_t>(budget, 0);  // effectively unconstrained
  }

  if (policy_->time_varying()) {
    // Re-key every due object by its live priority, then fall through to the
    // same global selection loop.
    QueueEntry entry;
    while (wake_queue_.PopDue(t, epoch_fn, &entry)) {
      queue_.Push(ComputePriority(entry.index, t), entry.index, entry.epoch);
    }
  }

  // Global priority order: refresh the top object whose source still has
  // bandwidth; set aside objects whose source is exhausted (Section 3.3).
  std::vector<QueueEntry> blocked;
  QueueEntry top;
  while (budget > 0 && queue_.PopValid(epoch_fn, &top)) {
    if (top.key <= 0.0) {
      queue_.Restore(top);
      break;
    }
    const int32_t j = object_source_[top.index];
    if (source_budget_[j] <= 0) {
      blocked.push_back(top);
      continue;
    }
    // Costs are charged in full; a large object may drive the budgets
    // negative (its transmission conceptually spans ticks).
    const int64_t cost = harness_->object(top.index).spec->refresh_cost;
    source_budget_[j] -= cost;
    budget -= cost;
    {
      const DivergenceTracker& tracker = harness_->object(top.index).tracker();
      history_[top.index].OnRefresh(t - tracker.last_refresh_time(),
                                    tracker.IntegralTo(t));
    }
    harness_->RefreshInstant(top.index, t);
    ++epochs_[top.index];
    ++refreshes_;
    if (policy_->time_varying()) {
      wake_queue_.Push(t + tick_length_, top.index, epochs_[top.index]);
    }
  }
  for (const QueueEntry& entry : blocked) queue_.Restore(entry);

  // Carry cost overshoot into the next tick (multi-tick transmissions).
  cache_debt_ = std::min<int64_t>(budget, 0);
  for (size_t j = 0; j < source_bandwidths_.size(); ++j) {
    source_debt_[j] =
        source_bandwidths_[j] ? std::min<int64_t>(source_budget_[j], 0) : 0;
  }

  if (policy_->time_varying()) {
    // Objects popped into the priority queue but not refreshed this tick
    // must be reconsidered next tick with fresh priorities.
    QueueEntry leftover;
    while (queue_.PopValid(epoch_fn, &leftover)) {
      wake_queue_.Push(t + tick_length_, leftover.index, leftover.epoch);
    }
  }
}

void IdealCooperativeScheduler::OnMeasurementStart(double /*t*/) { refreshes_ = 0; }

SchedulerStats IdealCooperativeScheduler::stats() const {
  SchedulerStats stats;
  stats.refreshes_sent = refreshes_;
  stats.refreshes_delivered = refreshes_;
  stats.cache_utilization = 0.0;
  return stats;
}

}  // namespace besync
