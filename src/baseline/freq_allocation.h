#ifndef BESYNC_BASELINE_FREQ_ALLOCATION_H_
#define BESYNC_BASELINE_FREQ_ALLOCATION_H_

#include <vector>

#include "util/result.h"

namespace besync {

/// Time-averaged freshness of an object with Poisson update rate `lambda`
/// that is re-fetched at fixed intervals 1/`freq` (Cho & Garcia-Molina,
/// SIGMOD 2000 — "CGM"): F(lambda, f) = (f/lambda) * (1 - e^{-lambda/f}).
/// F(., f) is increasing and concave in f; F -> 1 as f -> infinity.
double PoissonFreshness(double lambda, double freq);

/// Marginal freshness gain dF/df = [(1 - e^{-x}) - x e^{-x}] / lambda with
/// x = lambda/f; decreasing in f, with limit 1/lambda as f -> 0+.
double PoissonFreshnessMarginal(double lambda, double freq);

/// Result of the CGM bandwidth allocation.
struct AllocationResult {
  /// Optimal per-object refresh frequencies (refreshes/second); may be 0 for
  /// rapidly-changing objects under contention (CGM's famous result that it
  /// can be optimal to *never* refresh the hottest objects).
  std::vector<double> frequencies;
  /// The Lagrange multiplier mu at the optimum (the paper notes CGM's
  /// bandwidth knob "was shown not to be solvable mathematically" and was
  /// tuned by repeated runs; we solve it numerically instead — the same
  /// fixed point, found deterministically).
  double mu = 0.0;
  /// Objective value: Σ w_i F(lambda_i, f_i).
  double total_weighted_freshness = 0.0;
};

/// Solves max Σ w_i F(lambda_i, f_i) s.t. Σ f_i = bandwidth, f_i >= 0:
/// per-object marginals are equalized at mu (objects whose marginal at f=0,
/// w_i/lambda_i, is below mu get f_i = 0); mu is found by bisection so the
/// bandwidth constraint binds. `weights` may be empty (all 1).
Result<AllocationResult> SolveFreshnessAllocation(const std::vector<double>& lambdas,
                                                  const std::vector<double>& weights,
                                                  double bandwidth);

}  // namespace besync

#endif  // BESYNC_BASELINE_FREQ_ALLOCATION_H_
