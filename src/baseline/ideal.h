#ifndef BESYNC_BASELINE_IDEAL_H_
#define BESYNC_BASELINE_IDEAL_H_

#include <cstdint>
#include <memory>
#include <vector>

#include "core/harness.h"
#include "net/bandwidth.h"
#include "priority/history.h"
#include "priority/priority.h"
#include "priority/priority_queue.h"
#include "priority/special_case.h"

namespace besync {

/// Configuration of the idealized cooperative scheduler.
struct IdealConfig {
  double cache_bandwidth_avg = 10.0;
  /// <= 0 means unconstrained source-side bandwidth.
  double source_bandwidth_avg = -1.0;
  double bandwidth_change_rate = 0.0;
  PolicyKind policy = PolicyKind::kArea;
  /// History blend share for PolicyKind::kAreaHistory.
  double history_beta = 0.5;
  /// The idealized scenario knows true update rates.
  LambdaEstimateMode lambda_mode = LambdaEstimateMode::kTrue;
  /// Divide priorities by refresh cost (Section 10.1); identity for unit
  /// costs.
  bool cost_aware_priority = true;
};

/// The idealized global scheduler of Section 3.3: "each time there is enough
/// cache-side bandwidth to accept a refresh, the object with the highest
/// refresh priority among all objects at all sources should be refreshed",
/// falling through to lower-priority objects when the hosting source's
/// bandwidth is exhausted. Coordination and refresh propagation are free and
/// instantaneous — this is the theoretical best case that Figures 4-6
/// compare against ("ideal cooperative" / "theoretically achievable
/// divergence").
class IdealCooperativeScheduler : public Scheduler {
 public:
  explicit IdealCooperativeScheduler(const IdealConfig& config);

  std::string name() const override { return "ideal-cooperative"; }
  void Initialize(Harness* harness) override;
  void OnObjectUpdate(ObjectIndex index, double t) override;
  void Tick(double t) override;
  void OnMeasurementStart(double t) override;
  SchedulerStats stats() const override;

 private:
  double ComputePriority(ObjectIndex index, double now) const;
  void MaybeCompact();

  IdealConfig config_;
  Harness* harness_ = nullptr;
  std::unique_ptr<PriorityPolicy> policy_;
  std::unique_ptr<BandwidthModel> cache_bandwidth_;
  std::vector<std::unique_ptr<BandwidthModel>> source_bandwidths_;
  LazyMaxHeap queue_;
  /// Time-varying (bound/history) policies use wake-ups as well as (for
  /// update-sensitive policies) update notifications.
  TimeMinHeap wake_queue_;
  std::vector<uint64_t> epochs_;
  std::vector<HistoryRateEstimator> history_;
  std::vector<int32_t> object_source_;
  std::vector<int64_t> source_budget_;  // scratch, per tick
  std::vector<int64_t> source_debt_;    // carryover from costly refreshes
  int64_t cache_debt_ = 0;
  int64_t refreshes_ = 0;
  double tick_length_ = 1.0;
};

}  // namespace besync

#endif  // BESYNC_BASELINE_IDEAL_H_
