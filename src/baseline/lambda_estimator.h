#ifndef BESYNC_BASELINE_LAMBDA_ESTIMATOR_H_
#define BESYNC_BASELINE_LAMBDA_ESTIMATOR_H_

#include <cstdint>
#include <memory>

namespace besync {

/// Online estimator of an object's Poisson update rate from poll
/// observations, as required by the practical CGM baselines (Section 6.3;
/// estimators follow Cho & Garcia-Molina's "Estimating frequency of change",
/// [CGM00a]). One estimator instance tracks one object.
class LambdaEstimator {
 public:
  virtual ~LambdaEstimator() = default;

  /// Records one poll: at `poll_time` the cache learned whether the object
  /// changed since the previous poll and (for estimators that can use it)
  /// the time of the most recent update, `last_update_time` (< 0 if the
  /// object has never been updated).
  virtual void RecordPoll(double poll_time, bool changed, double last_update_time) = 0;

  /// Current rate estimate (updates/second).
  virtual double Estimate() const = 0;

  virtual int64_t polls() const = 0;
};

/// CGM2's input model: the cache only observes *whether* the object changed
/// between polls. Bias-corrected estimator from [CGM00a]:
///   lambda_hat = -ln( (n - X + 0.5) / (n + 0.5) ) / tau_bar
/// with n polls, X of which found a change, at average interval tau_bar.
class BooleanChangeEstimator : public LambdaEstimator {
 public:
  /// `prior` is returned until `min_polls` observations have accumulated.
  BooleanChangeEstimator(double prior, int64_t min_polls, double start_time);

  void RecordPoll(double poll_time, bool changed, double last_update_time) override;
  double Estimate() const override;
  int64_t polls() const override { return polls_; }

 private:
  double prior_;
  int64_t min_polls_;
  double last_poll_time_;
  int64_t polls_ = 0;
  int64_t changed_polls_ = 0;
  double observed_time_ = 0.0;
};

/// CGM1's input model: the source reports the time of the most recent
/// update. The gap between that update and the poll is known to contain no
/// updates, and the update itself is precisely located, which yields the
/// censored maximum-likelihood estimator
///   lambda_hat = X / ( Σ_changed (poll - last_update) + Σ_unchanged tau ),
/// i.e. observed update count over update-free observation time. Strictly
/// more informative than the boolean estimator, matching CGM1's edge over
/// CGM2 in the paper's Figure 6.
class LastModifiedEstimator : public LambdaEstimator {
 public:
  LastModifiedEstimator(double prior, int64_t min_polls, double start_time);

  void RecordPoll(double poll_time, bool changed, double last_update_time) override;
  double Estimate() const override;
  int64_t polls() const override { return polls_; }

 private:
  double prior_;
  int64_t min_polls_;
  double last_poll_time_;
  int64_t polls_ = 0;
  int64_t observed_changes_ = 0;
  double quiet_time_ = 0.0;  // observation time known to contain no updates
};

}  // namespace besync

#endif  // BESYNC_BASELINE_LAMBDA_ESTIMATOR_H_
