#ifndef BESYNC_DIVERGENCE_GROUND_TRUTH_H_
#define BESYNC_DIVERGENCE_GROUND_TRUTH_H_

#include <cstdint>
#include <vector>

#include "data/workload.h"
#include "divergence/metric.h"

namespace besync {

/// Ground-truth divergence accounting: tracks the *actual* cache contents
/// (which lag behind the sources whenever refresh messages queue in the
/// network) against the live source values, and integrates weighted and
/// unweighted divergence exactly over time.
///
/// Divergence is piecewise constant between events, so the integrals are
/// maintained event-incrementally in O(1) per source update / cache apply;
/// fluctuating weights are re-evaluated periodically via RefreshWeights()
/// (the paper's standing assumption is that weights change slowly relative
/// to refresh timescales, Section 3.3).
///
/// The evaluation metric reported by every experiment is the paper's
/// objective: the (weighted) sum over objects of time-averaged divergence,
/// also divided by the object count when a per-object average is asked for
/// (e.g. Figure 5's "average value deviation per data value").
class GroundTruth {
 public:
  /// `workload` and `metric` must outlive this object. When
  /// `use_source_weights` is set, objects that define a source_weight are
  /// weighted by it instead of the cache weight (competitive experiments,
  /// Section 7).
  GroundTruth(const Workload* workload, const DivergenceMetric* metric,
              bool use_source_weights = false);

  /// Initializes cache state = source state (synchronized) at time `t`.
  void Initialize(double t);

  /// Records that source object `index` now has (value, version).
  void OnSourceUpdate(ObjectIndex index, double t, double value, int64_t version);

  /// Records that the cache applied a refresh for object `index` carrying
  /// (value, version) — the message content, which may itself be stale if
  /// the object changed again while the message was queued.
  void OnCacheApply(ObjectIndex index, double t, double value, int64_t version);

  /// Re-evaluates all weights at time `t` (no-op work-wise for constant
  /// weights, but always rebuilds the running sums to bound float drift).
  void RefreshWeights(double t);

  /// Starts the measurement window (end of warm-up): zeroes accumulators.
  void StartMeasurement(double t);

  /// Closes integration at time `t` (call once at the end of the run).
  void FinishMeasurement(double t);

  // --- results (valid after FinishMeasurement) ---

  double measurement_duration() const { return last_time_ - measure_start_; }
  /// Σ_i time-average of W_i(t)·D_i(t), i.e. total weighted divergence rate.
  double TotalWeightedAverage() const;
  /// TotalWeightedAverage() / number of objects.
  double PerObjectWeightedAverage() const;
  /// Unweighted counterpart (Figure 6 reports unweighted staleness).
  double PerObjectUnweightedAverage() const;

  // --- live cache state (read by CGM estimators etc.) ---

  double cached_value(ObjectIndex index) const { return entries_[index].cached_value; }
  int64_t cached_version(ObjectIndex index) const {
    return entries_[index].cached_version;
  }
  double source_value(ObjectIndex index) const { return entries_[index].source_value; }
  int64_t source_version(ObjectIndex index) const {
    return entries_[index].source_version;
  }
  double current_divergence(ObjectIndex index) const {
    return entries_[index].divergence;
  }

 private:
  struct Entry {
    double source_value = 0.0;
    int64_t source_version = 0;
    double cached_value = 0.0;
    int64_t cached_version = 0;
    double divergence = 0.0;
    double weight = 1.0;
  };

  /// Integrates the running sums up to `t`.
  void AdvanceTo(double t);
  /// Replaces an entry's divergence, maintaining the running sums.
  void SetDivergence(Entry* entry, double divergence);
  /// Rebuilds the running sums from scratch (bounds accumulation error).
  void RebuildSums();

  const Workload* workload_;
  const DivergenceMetric* metric_;
  bool use_source_weights_;
  std::vector<Entry> entries_;
  double weighted_sum_ = 0.0;    // Σ D_i * W_i at current time
  double unweighted_sum_ = 0.0;  // Σ D_i at current time
  double weighted_integral_ = 0.0;
  double unweighted_integral_ = 0.0;
  double last_time_ = 0.0;
  double measure_start_ = 0.0;
};

}  // namespace besync

#endif  // BESYNC_DIVERGENCE_GROUND_TRUTH_H_
