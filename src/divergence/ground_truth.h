#ifndef BESYNC_DIVERGENCE_GROUND_TRUTH_H_
#define BESYNC_DIVERGENCE_GROUND_TRUTH_H_

#include <cstdint>
#include <vector>

#include "data/workload.h"
#include "divergence/metric.h"
#include "util/arena.h"

namespace besync {

/// Ground-truth divergence accounting: tracks the *actual* contents of every
/// cache replica (which lag behind the sources whenever refresh messages
/// queue in the network) against the live source values, and integrates
/// weighted and unweighted divergence exactly over time.
///
/// One accounting entry exists per (object, cache) replica, as given by the
/// workload's interest map; the single-cache topology degenerates to one
/// entry per object. Sums and integrals are maintained per cache, and the
/// reported objective is the sum over caches — Σ_c Σ_{i at c} of the
/// time-averaged weighted divergence of replica (i, c).
///
/// Divergence is piecewise constant between events, so the integrals are
/// maintained event-incrementally in O(#replicas) per source update and
/// O(1) per cache apply; fluctuating weights are re-evaluated periodically
/// via RefreshWeights() (the paper's standing assumption is that weights
/// change slowly relative to refresh timescales, Section 3.3).
class GroundTruth {
 public:
  /// `workload` and `metric` must outlive this object. When
  /// `use_source_weights` is set, objects that define a source_weight are
  /// weighted by it instead of the cache weight (competitive experiments,
  /// Section 7). When `arena` is non-null the replica entry table lives in
  /// it (the harness passes its run arena so entries share the flat
  /// hot-path layout); `arena` must then outlive this object. Null keeps
  /// self-owned storage — standalone uses need no arena.
  GroundTruth(const Workload* workload, const DivergenceMetric* metric,
              bool use_source_weights = false, Arena* arena = nullptr);

  /// Initializes every replica = source state (synchronized) at time `t`.
  void Initialize(double t);

  /// Records that source object `index` now has (value, version); every
  /// replica of the object diverges accordingly.
  void OnSourceUpdate(ObjectIndex index, double t, double value, int64_t version);

  /// Records that cache `cache_id` applied a refresh for object `index`
  /// carrying (value, version) — the message content, which may itself be
  /// stale if the object changed again while the message was queued.
  void OnCacheApply(ObjectIndex index, int32_t cache_id, double t, double value,
                    int64_t version);

  /// Single-cache convenience: applies at the object's first replica.
  void OnCacheApply(ObjectIndex index, double t, double value, int64_t version);

  /// Re-evaluates all weights at time `t` (no-op work-wise for constant
  /// weights, but always rebuilds the running sums to bound float drift).
  void RefreshWeights(double t);

  /// Starts the measurement window (end of warm-up): zeroes accumulators.
  void StartMeasurement(double t);

  /// Closes integration at time `t` (call once at the end of the run).
  void FinishMeasurement(double t);

  // --- results (valid after FinishMeasurement) ---

  double measurement_duration() const { return last_time_ - measure_start_; }
  int num_caches() const { return static_cast<int>(weighted_integral_.size()); }
  int64_t total_replicas() const { return static_cast<int64_t>(num_entries_); }

  /// Σ over caches and replicas of the time-average of W(t)·D(t) — the
  /// paper's objective, generalized to the multi-cache topology.
  double TotalWeightedAverage() const;
  /// Contribution of one cache to TotalWeightedAverage().
  double PerCacheWeightedAverage(int32_t cache_id) const;
  /// TotalWeightedAverage() / number of replicas.
  double PerObjectWeightedAverage() const;
  /// Unweighted counterpart (Figure 6 reports unweighted staleness).
  double PerObjectUnweightedAverage() const;

  // --- live replica state (read by CGM estimators etc.) ---
  // The ObjectIndex-only forms read the object's first replica (exact for
  // single-cache topologies, where every object has one replica).

  double cached_value(ObjectIndex index) const {
    return entries_[replica_base_[index]].cached_value;
  }
  int64_t cached_version(ObjectIndex index) const {
    return entries_[replica_base_[index]].cached_version;
  }
  double cached_value(ObjectIndex index, int32_t cache_id) const {
    return entries_[ReplicaEntry(index, cache_id)].cached_value;
  }
  int64_t cached_version(ObjectIndex index, int32_t cache_id) const {
    return entries_[ReplicaEntry(index, cache_id)].cached_version;
  }
  double source_value(ObjectIndex index) const {
    return entries_[replica_base_[index]].source_value;
  }
  int64_t source_version(ObjectIndex index) const {
    return entries_[replica_base_[index]].source_version;
  }
  double current_divergence(ObjectIndex index) const {
    return entries_[replica_base_[index]].divergence;
  }
  double current_divergence(ObjectIndex index, int32_t cache_id) const {
    return entries_[ReplicaEntry(index, cache_id)].divergence;
  }

  /// Instantaneous Σ W * D over cache `cache_id`'s replicas — the running
  /// sum the time integrals integrate. Divergence is piecewise constant
  /// between update/apply events, so this is exact at any time with no
  /// AdvanceTo: reading it never perturbs the integration points (the
  /// observability sampler depends on that).
  double CurrentWeightedSum(int32_t cache_id) const {
    return weighted_sum_[cache_id];
  }

  /// Integrates the running sums up to `t`. Normally implicit in the
  /// event entry points, but exposed so the scheduler's parallel delivery
  /// apply can hoist the one cross-cache step of OnCacheApply: after
  /// AdvanceTo(t), concurrent OnCacheApply(..., t, ...) calls for distinct
  /// caches touch disjoint state (the inner AdvanceTo sees dt == 0 and
  /// writes nothing). Must be called with t >= the time of every
  /// subsequent concurrent apply, and only on ticks where at least one
  /// apply follows — an early advance on an apply-free tick would split
  /// the integration step and change float bits vs the serial order.
  void AdvanceTo(double t);

 private:
  struct Entry {
    double source_value = 0.0;
    int64_t source_version = 0;
    double cached_value = 0.0;
    int64_t cached_version = 0;
    double divergence = 0.0;
    double weight = 1.0;
    int32_t cache_id = 0;
  };

  /// Flat entry index of object `index`'s replica at `cache_id` (checked).
  size_t ReplicaEntry(ObjectIndex index, int32_t cache_id) const;
  /// Replaces an entry's divergence, maintaining the running sums.
  void SetDivergence(Entry* entry, double divergence);
  /// Rebuilds the running sums from scratch (bounds accumulation error).
  void RebuildSums();
  const Fluctuation* WeightFn(const ObjectSpec& spec) const;

  const Workload* workload_;
  const DivergenceMetric* metric_;
  bool use_source_weights_;
  /// One entry per (object, cache) replica; an object's replicas are
  /// contiguous, in the order of its ObjectSpec::caches list. Points into
  /// the constructor's arena when one was given, else into owned_entries_.
  Entry* entries_ = nullptr;
  size_t num_entries_ = 0;
  std::vector<Entry> owned_entries_;
  /// First entry of each object's replica range (size = #objects).
  std::vector<size_t> replica_base_;
  // Running sums / integrals, one slot per cache.
  std::vector<double> weighted_sum_;    // Σ D * W at current time, per cache
  std::vector<double> unweighted_sum_;  // Σ D at current time, per cache
  std::vector<double> weighted_integral_;
  std::vector<double> unweighted_integral_;
  double last_time_ = 0.0;
  double measure_start_ = 0.0;
};

}  // namespace besync

#endif  // BESYNC_DIVERGENCE_GROUND_TRUTH_H_
