#include "divergence/metric.h"

#include <cmath>

#include "util/logging.h"

namespace besync {

std::string MetricKindToString(MetricKind kind) {
  switch (kind) {
    case MetricKind::kStaleness:
      return "staleness";
    case MetricKind::kLag:
      return "lag";
    case MetricKind::kValueDeviation:
      return "value-deviation";
  }
  return "unknown";
}

double StalenessMetric::Divergence(double source_value, int64_t /*source_version*/,
                                   double cached_value,
                                   int64_t /*cached_version*/) const {
  return source_value == cached_value ? 0.0 : 1.0;
}

double LagMetric::Divergence(double /*source_value*/, int64_t source_version,
                             double /*cached_value*/, int64_t cached_version) const {
  const int64_t lag = source_version - cached_version;
  BESYNC_DCHECK(lag >= 0);
  return static_cast<double>(lag < 0 ? 0 : lag);
}

ValueDeviationMetric::ValueDeviationMetric()
    : delta_([](double v1, double v2) { return std::abs(v1 - v2); }),
      default_delta_(true) {}

ValueDeviationMetric::ValueDeviationMetric(DeltaFn delta) : delta_(std::move(delta)) {
  BESYNC_CHECK(delta_ != nullptr);
}

double ValueDeviationMetric::Divergence(double source_value, int64_t /*source_version*/,
                                        double cached_value,
                                        int64_t /*cached_version*/) const {
  const double deviation = default_delta_ ? std::abs(source_value - cached_value)
                                          : delta_(source_value, cached_value);
  BESYNC_DCHECK(deviation >= 0.0);
  return deviation;
}

std::unique_ptr<DivergenceMetric> MakeMetric(MetricKind kind) {
  switch (kind) {
    case MetricKind::kStaleness:
      return std::make_unique<StalenessMetric>();
    case MetricKind::kLag:
      return std::make_unique<LagMetric>();
    case MetricKind::kValueDeviation:
      return std::make_unique<ValueDeviationMetric>();
  }
  BESYNC_CHECK(false) << "unknown metric kind";
  return nullptr;
}

}  // namespace besync
