#include "divergence/tracker.h"

#include "util/logging.h"

namespace besync {

DivergenceTracker::DivergenceTracker(const DivergenceMetric* metric) : metric_(metric) {
  BESYNC_CHECK(metric != nullptr);
}

void DivergenceTracker::OnRefresh(double t, double value, int64_t version) {
  shipped_value_ = value;
  shipped_version_ = version;
  last_refresh_time_ = t;
  last_change_time_ = t;
  current_divergence_ = 0.0;
  integral_to_change_ = 0.0;
  updates_since_refresh_ = 0;
}

void DivergenceTracker::OnUpdate(double t, double new_value, int64_t new_version) {
  BESYNC_DCHECK(t >= last_change_time_);
  integral_to_change_ += current_divergence_ * (t - last_change_time_);
  current_divergence_ =
      metric_->Divergence(new_value, new_version, shipped_value_, shipped_version_);
  last_change_time_ = t;
  ++updates_since_refresh_;
}

double DivergenceTracker::IntegralTo(double t) const {
  BESYNC_DCHECK(t >= last_change_time_);
  return integral_to_change_ + current_divergence_ * (t - last_change_time_);
}

}  // namespace besync
