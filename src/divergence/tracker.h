#ifndef BESYNC_DIVERGENCE_TRACKER_H_
#define BESYNC_DIVERGENCE_TRACKER_H_

#include <cstdint>

#include "divergence/metric.h"

namespace besync {

/// Per-object divergence bookkeeping from the *source's* point of view: the
/// source compares its live value against the value it most recently sent to
/// the cache. Maintains everything the refresh priority function needs:
///
///   - the current divergence D(O, t),
///   - the running integral of divergence since the last refresh,
///   - the last refresh time t_last.
///
/// Divergence is piecewise constant and "an object's priority can only
/// change when an update occurs" (Section 8.2), so the tracker needs to be
/// touched only on updates and refreshes; both are O(1).
class DivergenceTracker {
 public:
  /// `metric` must outlive the tracker.
  explicit DivergenceTracker(const DivergenceMetric* metric);

  /// Resets after a refresh sent at time `t` with the source's current
  /// (value, version): from now on the cached copy is assumed equal to this
  /// state, divergence drops to 0 and the integral restarts.
  void OnRefresh(double t, double value, int64_t version);

  /// Accounts for a source update at time `t` that produced
  /// (new_value, new_version).
  void OnUpdate(double t, double new_value, int64_t new_version);

  /// Current divergence D(O, t) (constant since the last update/refresh).
  double current_divergence() const { return current_divergence_; }

  /// Integral of divergence over [t_last, t]; `t` must be >= the time of the
  /// last event.
  double IntegralTo(double t) const;

  double last_refresh_time() const { return last_refresh_time_; }
  /// Time divergence last changed (last update or refresh).
  double last_change_time() const { return last_change_time_; }
  /// Updates accumulated since the last refresh.
  int64_t updates_since_refresh() const { return updates_since_refresh_; }

  /// Value/version the source last shipped to the cache (its model of the
  /// cached copy).
  double shipped_value() const { return shipped_value_; }
  int64_t shipped_version() const { return shipped_version_; }

 private:
  const DivergenceMetric* metric_;
  double shipped_value_ = 0.0;
  int64_t shipped_version_ = 0;
  double last_refresh_time_ = 0.0;
  double last_change_time_ = 0.0;
  double current_divergence_ = 0.0;
  /// ∫ D dt over [last_refresh_time_, last_change_time_].
  double integral_to_change_ = 0.0;
  int64_t updates_since_refresh_ = 0;
};

}  // namespace besync

#endif  // BESYNC_DIVERGENCE_TRACKER_H_
