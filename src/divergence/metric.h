#ifndef BESYNC_DIVERGENCE_METRIC_H_
#define BESYNC_DIVERGENCE_METRIC_H_

#include <cstdint>
#include <functional>
#include <memory>
#include <string>

namespace besync {

/// The divergence metrics defined in paper Section 3.1.
enum class MetricKind {
  /// D = 0 if the cached value equals the source value, else 1.
  kStaleness,
  /// D = number of source updates not reflected in the cached copy.
  kLag,
  /// D = delta(V_source, V_cached) for a nonnegative difference function.
  kValueDeviation,
};

std::string MetricKindToString(MetricKind kind);

/// Computes the divergence D(O, t) between a source object and a cached
/// copy from their (value, version) snapshots. Implementations are
/// stateless; per-object accounting lives in DivergenceTracker.
class DivergenceMetric {
 public:
  virtual ~DivergenceMetric() = default;

  virtual MetricKind kind() const = 0;

  /// Divergence given the source state and the cached state.
  virtual double Divergence(double source_value, int64_t source_version,
                            double cached_value, int64_t cached_version) const = 0;
};

/// Staleness (Section 3.1, metric 1): value equality. Note that with
/// random-walk data a source value can return to the cached value, making a
/// stale copy fresh again; the value-based definition from the paper
/// captures this.
class StalenessMetric : public DivergenceMetric {
 public:
  MetricKind kind() const override { return MetricKind::kStaleness; }
  double Divergence(double source_value, int64_t source_version, double cached_value,
                    int64_t cached_version) const override;
};

/// Lag (Section 3.1, metric 2): number of updates behind.
class LagMetric : public DivergenceMetric {
 public:
  MetricKind kind() const override { return MetricKind::kLag; }
  double Divergence(double source_value, int64_t source_version, double cached_value,
                    int64_t cached_version) const override;
};

/// Value deviation (Section 3.1, metric 3): delta(V1, V2); the default delta
/// is |V1 - V2|, suitable for "applications such as stock market monitoring
/// that have single numerical values".
class ValueDeviationMetric : public DivergenceMetric {
 public:
  using DeltaFn = std::function<double(double, double)>;

  /// Constructs with the default delta |V1 - V2|.
  ValueDeviationMetric();
  /// Constructs with a custom nonnegative difference function.
  explicit ValueDeviationMetric(DeltaFn delta);

  MetricKind kind() const override { return MetricKind::kValueDeviation; }
  double Divergence(double source_value, int64_t source_version, double cached_value,
                    int64_t cached_version) const override;

 private:
  DeltaFn delta_;
  /// Default |V1 - V2| delta: computed inline in Divergence instead of
  /// through the type-erased delta_ (one call per source update and cache
  /// apply — the engine's hottest float path).
  bool default_delta_ = false;
};

/// Factory for the metric kinds used by the experiment harness.
std::unique_ptr<DivergenceMetric> MakeMetric(MetricKind kind);

}  // namespace besync

#endif  // BESYNC_DIVERGENCE_METRIC_H_
