#include "divergence/ground_truth.h"

#include <algorithm>

#include "util/logging.h"

namespace besync {

GroundTruth::GroundTruth(const Workload* workload, const DivergenceMetric* metric,
                         bool use_source_weights, Arena* arena)
    : workload_(workload), metric_(metric), use_source_weights_(use_source_weights) {
  BESYNC_CHECK(workload != nullptr);
  BESYNC_CHECK(metric != nullptr);
  replica_base_.reserve(workload->objects.size());
  size_t base = 0;
  for (const ObjectSpec& spec : workload->objects) {
    replica_base_.push_back(base);
    BESYNC_CHECK_GE(spec.num_replicas(), 1);
    base += static_cast<size_t>(spec.num_replicas());
  }
  num_entries_ = base;
  if (arena != nullptr) {
    entries_ = arena->AllocateArray<Entry>(num_entries_);
  } else {
    owned_entries_.resize(num_entries_);
    entries_ = owned_entries_.data();
  }
  for (size_t i = 0; i < workload->objects.size(); ++i) {
    const ObjectSpec& spec = workload->objects[i];
    for (int r = 0; r < spec.num_replicas(); ++r) {
      BESYNC_CHECK_GE(spec.caches[r], 0);
      BESYNC_CHECK_LT(spec.caches[r], workload->num_caches);
      entries_[replica_base_[i] + r].cache_id = spec.caches[r];
    }
  }
  const size_t caches = static_cast<size_t>(workload->num_caches);
  weighted_sum_.assign(caches, 0.0);
  unweighted_sum_.assign(caches, 0.0);
  weighted_integral_.assign(caches, 0.0);
  unweighted_integral_.assign(caches, 0.0);
}

size_t GroundTruth::ReplicaEntry(ObjectIndex index, int32_t cache_id) const {
  const int slot = workload_->objects[index].replica_slot(cache_id);
  BESYNC_CHECK_GE(slot, 0) << "object " << index << " has no replica at cache "
                           << cache_id;
  return replica_base_[index] + static_cast<size_t>(slot);
}

const Fluctuation* GroundTruth::WeightFn(const ObjectSpec& spec) const {
  return use_source_weights_ && spec.source_weight ? spec.source_weight.get()
                                                   : spec.weight.get();
}

void GroundTruth::Initialize(double t) {
  for (size_t i = 0; i < workload_->objects.size(); ++i) {
    const ObjectSpec& spec = workload_->objects[i];
    const double weight = WeightFn(spec)->ValueAt(t);
    for (int r = 0; r < spec.num_replicas(); ++r) {
      Entry& entry = entries_[replica_base_[i] + r];
      entry.source_value = spec.initial_value;
      entry.source_version = 0;
      entry.cached_value = spec.initial_value;
      entry.cached_version = 0;
      entry.divergence = 0.0;
      entry.weight = weight;
    }
  }
  last_time_ = t;
  measure_start_ = t;
  std::fill(weighted_integral_.begin(), weighted_integral_.end(), 0.0);
  std::fill(unweighted_integral_.begin(), unweighted_integral_.end(), 0.0);
  RebuildSums();
}

void GroundTruth::AdvanceTo(double t) {
  BESYNC_DCHECK(t >= last_time_);
  const double dt = t - last_time_;
  if (dt > 0.0) {
    for (size_t c = 0; c < weighted_sum_.size(); ++c) {
      weighted_integral_[c] += weighted_sum_[c] * dt;
      unweighted_integral_[c] += unweighted_sum_[c] * dt;
    }
    last_time_ = t;
  }
}

void GroundTruth::SetDivergence(Entry* entry, double divergence) {
  weighted_sum_[entry->cache_id] += (divergence - entry->divergence) * entry->weight;
  unweighted_sum_[entry->cache_id] += divergence - entry->divergence;
  entry->divergence = divergence;
}

void GroundTruth::RebuildSums() {
  std::fill(weighted_sum_.begin(), weighted_sum_.end(), 0.0);
  std::fill(unweighted_sum_.begin(), unweighted_sum_.end(), 0.0);
  for (size_t i = 0; i < num_entries_; ++i) {
    const Entry& entry = entries_[i];
    weighted_sum_[entry.cache_id] += entry.divergence * entry.weight;
    unweighted_sum_[entry.cache_id] += entry.divergence;
  }
}

void GroundTruth::OnSourceUpdate(ObjectIndex index, double t, double value,
                                 int64_t version) {
  AdvanceTo(t);
  const int replicas = workload_->objects[index].num_replicas();
  for (int r = 0; r < replicas; ++r) {
    Entry& entry = entries_[replica_base_[index] + r];
    entry.source_value = value;
    entry.source_version = version;
    SetDivergence(&entry, metric_->Divergence(value, version, entry.cached_value,
                                              entry.cached_version));
  }
}

void GroundTruth::OnCacheApply(ObjectIndex index, int32_t cache_id, double t,
                               double value, int64_t version) {
  AdvanceTo(t);
  Entry& entry = entries_[ReplicaEntry(index, cache_id)];
  // Refreshes may be delivered out of order relative to newer content only
  // in CGM-style protocols; never regress the cached version.
  if (version < entry.cached_version) return;
  entry.cached_value = value;
  entry.cached_version = version;
  SetDivergence(&entry, metric_->Divergence(entry.source_value, entry.source_version,
                                            value, version));
}

void GroundTruth::OnCacheApply(ObjectIndex index, double t, double value,
                               int64_t version) {
  OnCacheApply(index, workload_->objects[index].caches.front(), t, value, version);
}

void GroundTruth::RefreshWeights(double t) {
  AdvanceTo(t);
  for (size_t i = 0; i < workload_->objects.size(); ++i) {
    const ObjectSpec& spec = workload_->objects[i];
    const double weight = WeightFn(spec)->ValueAt(t);
    for (int r = 0; r < spec.num_replicas(); ++r) {
      entries_[replica_base_[i] + r].weight = weight;
    }
  }
  RebuildSums();
}

void GroundTruth::StartMeasurement(double t) {
  AdvanceTo(t);
  std::fill(weighted_integral_.begin(), weighted_integral_.end(), 0.0);
  std::fill(unweighted_integral_.begin(), unweighted_integral_.end(), 0.0);
  measure_start_ = t;
  RebuildSums();
}

void GroundTruth::FinishMeasurement(double t) { AdvanceTo(t); }

double GroundTruth::TotalWeightedAverage() const {
  const double duration = measurement_duration();
  if (duration <= 0.0) return 0.0;
  double total = 0.0;
  for (double integral : weighted_integral_) total += integral;
  // Guard against tiny negative values from float cancellation when the
  // true integral is ~0.
  return std::max(0.0, total / duration);
}

double GroundTruth::PerCacheWeightedAverage(int32_t cache_id) const {
  const double duration = measurement_duration();
  if (duration <= 0.0) return 0.0;
  BESYNC_CHECK_GE(cache_id, 0);
  BESYNC_CHECK_LT(cache_id, num_caches());
  return std::max(0.0, weighted_integral_[cache_id] / duration);
}

double GroundTruth::PerObjectWeightedAverage() const {
  return num_entries_ == 0
             ? 0.0
             : TotalWeightedAverage() / static_cast<double>(num_entries_);
}

double GroundTruth::PerObjectUnweightedAverage() const {
  const double duration = measurement_duration();
  if (duration <= 0.0 || num_entries_ == 0) return 0.0;
  double total = 0.0;
  for (double integral : unweighted_integral_) total += integral;
  return std::max(0.0, total / duration / static_cast<double>(num_entries_));
}

}  // namespace besync
