#include "divergence/ground_truth.h"

#include <algorithm>

#include "util/logging.h"

namespace besync {

GroundTruth::GroundTruth(const Workload* workload, const DivergenceMetric* metric,
                         bool use_source_weights)
    : workload_(workload), metric_(metric), use_source_weights_(use_source_weights) {
  BESYNC_CHECK(workload != nullptr);
  BESYNC_CHECK(metric != nullptr);
  entries_.resize(workload->objects.size());
}

void GroundTruth::Initialize(double t) {
  for (size_t i = 0; i < entries_.size(); ++i) {
    const ObjectSpec& spec = workload_->objects[i];
    Entry& entry = entries_[i];
    entry.source_value = spec.initial_value;
    entry.source_version = 0;
    entry.cached_value = spec.initial_value;
    entry.cached_version = 0;
    entry.divergence = 0.0;
    const Fluctuation* weight_fn =
        use_source_weights_ && spec.source_weight ? spec.source_weight.get()
                                                  : spec.weight.get();
    entry.weight = weight_fn->ValueAt(t);
  }
  last_time_ = t;
  measure_start_ = t;
  weighted_integral_ = 0.0;
  unweighted_integral_ = 0.0;
  RebuildSums();
}

void GroundTruth::AdvanceTo(double t) {
  BESYNC_DCHECK(t >= last_time_);
  const double dt = t - last_time_;
  if (dt > 0.0) {
    weighted_integral_ += weighted_sum_ * dt;
    unweighted_integral_ += unweighted_sum_ * dt;
    last_time_ = t;
  }
}

void GroundTruth::SetDivergence(Entry* entry, double divergence) {
  weighted_sum_ += (divergence - entry->divergence) * entry->weight;
  unweighted_sum_ += divergence - entry->divergence;
  entry->divergence = divergence;
}

void GroundTruth::RebuildSums() {
  weighted_sum_ = 0.0;
  unweighted_sum_ = 0.0;
  for (const Entry& entry : entries_) {
    weighted_sum_ += entry.divergence * entry.weight;
    unweighted_sum_ += entry.divergence;
  }
}

void GroundTruth::OnSourceUpdate(ObjectIndex index, double t, double value,
                                 int64_t version) {
  AdvanceTo(t);
  Entry& entry = entries_[index];
  entry.source_value = value;
  entry.source_version = version;
  SetDivergence(&entry, metric_->Divergence(value, version, entry.cached_value,
                                            entry.cached_version));
}

void GroundTruth::OnCacheApply(ObjectIndex index, double t, double value,
                               int64_t version) {
  AdvanceTo(t);
  Entry& entry = entries_[index];
  // Refreshes may be delivered out of order relative to newer content only
  // in CGM-style protocols; never regress the cached version.
  if (version < entry.cached_version) return;
  entry.cached_value = value;
  entry.cached_version = version;
  SetDivergence(&entry, metric_->Divergence(entry.source_value, entry.source_version,
                                            value, version));
}

void GroundTruth::RefreshWeights(double t) {
  AdvanceTo(t);
  for (size_t i = 0; i < entries_.size(); ++i) {
    const ObjectSpec& spec = workload_->objects[i];
    const Fluctuation* weight_fn =
        use_source_weights_ && spec.source_weight ? spec.source_weight.get()
                                                  : spec.weight.get();
    entries_[i].weight = weight_fn->ValueAt(t);
  }
  RebuildSums();
}

void GroundTruth::StartMeasurement(double t) {
  AdvanceTo(t);
  weighted_integral_ = 0.0;
  unweighted_integral_ = 0.0;
  measure_start_ = t;
  RebuildSums();
}

void GroundTruth::FinishMeasurement(double t) { AdvanceTo(t); }

double GroundTruth::TotalWeightedAverage() const {
  const double duration = measurement_duration();
  if (duration <= 0.0) return 0.0;
  // Guard against tiny negative values from float cancellation when the
  // true integral is ~0.
  return std::max(0.0, weighted_integral_ / duration);
}

double GroundTruth::PerObjectWeightedAverage() const {
  return entries_.empty() ? 0.0
                          : TotalWeightedAverage() / static_cast<double>(entries_.size());
}

double GroundTruth::PerObjectUnweightedAverage() const {
  const double duration = measurement_duration();
  if (duration <= 0.0 || entries_.empty()) return 0.0;
  return std::max(0.0,
                  unweighted_integral_ / duration / static_cast<double>(entries_.size()));
}

}  // namespace besync
