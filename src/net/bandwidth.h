#ifndef BESYNC_NET_BANDWIDTH_H_
#define BESYNC_NET_BANDWIDTH_H_

#include <memory>

#include "util/fluctuation.h"

namespace besync {

/// Converts a continuous bandwidth signal (messages/second) into an integer
/// per-tick message budget. Fractional capacity carries over between ticks
/// as credit, so e.g. 0.5 msg/s with 1-second ticks yields one message every
/// other tick rather than zero forever.
class BandwidthModel {
 public:
  explicit BandwidthModel(std::unique_ptr<Fluctuation> signal);

  /// Integer message budget for the tick [tick_start, tick_start + tick_len).
  /// Must be called with non-overlapping, forward-moving ticks.
  int64_t BudgetForTick(double tick_start, double tick_len);

  /// Instantaneous bandwidth at time t (messages/second).
  double RateAt(double t) const { return signal_->ValueAt(t); }

  /// Long-run average bandwidth (messages/second).
  double average() const { return signal_->average(); }

 private:
  std::unique_ptr<Fluctuation> signal_;
  double credit_ = 0.0;
};

}  // namespace besync

#endif  // BESYNC_NET_BANDWIDTH_H_
