#ifndef BESYNC_NET_MESSAGE_H_
#define BESYNC_NET_MESSAGE_H_

#include <cstdint>
#include <vector>

namespace besync {

/// One additional object refresh piggybacked on a batched refresh message
/// (Section 10.1: "amortize network bandwidth by packaging several data
/// objects into the same message").
struct RefreshPayload {
  int64_t object_index = -1;
  double value = 0.0;
  int64_t version = 0;
};

/// Message kinds exchanged between sources and the cache. Following the
/// paper's simulation model, "all messages have the same size, and each
/// message requires 1 unit of bandwidth" (Section 6).
enum class MessageKind {
  /// Source -> cache: a refreshed object value (cooperative protocol).
  kRefresh,
  /// Cache -> source: positive feedback asking the source to lower its
  /// refresh threshold (Section 5); may carry a competitive-mode rate grant.
  kFeedback,
  /// Cache -> source: poll request (CGM baselines, Section 6.3).
  kPollRequest,
  /// Source -> cache: poll response carrying the current value (CGM).
  kPollResponse,
  /// Cache -> source: miss-triggered pull request from the read path — a
  /// client read found the object evicted, so the cache demands a fetch.
  /// Rides the upstream control channel like feedback; the response is a
  /// regular kRefresh with `is_pull` set, contending for the same link
  /// budgets as pushed refreshes.
  kPullRequest,
  /// Source -> cache: invalidation notification (SyncProtocolKind::
  /// kInvalidation). Carries no value — only the object index (plus any
  /// batch-mates in `extra_refreshes`, values/versions ignored) — so it is
  /// cheap (`cost` = SyncProtocolConfig::invalidate_cost). Marks the
  /// replica invalid; the next read misses and pulls. Traverses the same
  /// downstream links (and relay trees, and loss draws) as refreshes.
  kInvalidate,
};

/// A unit-size protocol message. Fields not meaningful for a given kind are
/// left at their defaults.
struct Message {
  MessageKind kind = MessageKind::kRefresh;
  /// Originating source (refresh / poll response) or target source
  /// (feedback / poll request).
  int32_t source_index = -1;
  /// Cache endpoint of the message: destination of refresh / poll-response
  /// messages, originator of feedback / poll requests. 0 in the paper's
  /// single-cache topology.
  int32_t cache_id = 0;
  /// Global object index within the workload (refresh / poll).
  int64_t object_index = -1;
  /// Object value carried by refresh / poll-response messages.
  double value = 0.0;
  /// Source-side update count at send time (drives the lag metric and the
  /// staleness version check at the cache).
  int64_t version = 0;
  /// Simulated send time.
  double send_time = 0.0;
  /// The sender's local refresh threshold, piggybacked on refresh messages
  /// so the cache can target feedback at the highest-threshold sources
  /// (Section 5).
  double piggyback_threshold = 0.0;
  /// Competitive mode (Section 7): refresh rate granted to the source for
  /// its own priority scheme, carried on feedback messages.
  double granted_rate = 0.0;
  /// Poll responses: time of the most recent source update (CGM1's
  /// last-modified-time estimator input); negative if never updated.
  double last_update_time = -1.0;
  /// Transmission cost in bandwidth units (object sizes may differ,
  /// Section 10.1). Default: the paper's unit-size model.
  int64_t cost = 1;
  /// Refresh priority at emission time (the priority-queue key that made
  /// the source send this refresh). Relays running the priority-preserving
  /// forwarding policy order their store by it; FIFO forwarding and the
  /// flat topology ignore it.
  double forward_priority = 0.0;
  /// True on kRefresh messages that answer a miss-triggered pull (read
  /// path) rather than a source-initiated push. Pull responses traverse
  /// the same links and budgets as pushes; the flag only attributes the
  /// consumed bandwidth (Link's pull/push unit counters) and routes the
  /// delivery to the cache store's pending-read resolution.
  bool is_pull = false;
  /// Additional refreshes batched into this message (empty for the default
  /// one-object-per-message model). The primary fields describe the first
  /// object; a batch of k objects still costs `cost` units — that is the
  /// amortization being studied.
  std::vector<RefreshPayload> extra_refreshes;
};

}  // namespace besync

#endif  // BESYNC_NET_MESSAGE_H_
