#include "net/network.h"

#include <string>
#include <utility>

#include "util/logging.h"

namespace besync {

namespace {
// Budget used for "unconstrained" links; large enough to never bind while
// staying far from int64 overflow when accumulated.
constexpr double kUnconstrainedBandwidth = 1e12;
}  // namespace

Network::Network(const NetworkConfig& config, Rng* rng) : config_(config) {
  BESYNC_CHECK_GE(config.num_sources, 1);
  BESYNC_CHECK_GE(config.num_caches, 1);
  BESYNC_CHECK_GT(config.cache_bandwidth_avg, 0.0);
  cache_links_.reserve(config.num_caches);
  for (int c = 0; c < config.num_caches; ++c) {
    double bandwidth = config.cache_bandwidth_avg;
    if (c < static_cast<int>(config.cache_bandwidth_overrides.size()) &&
        config.cache_bandwidth_overrides[c] > 0.0) {
      bandwidth = config.cache_bandwidth_overrides[c];
    }
    cache_links_.push_back(std::make_unique<Link>(
        config.num_caches == 1 ? "cache" : "cache-" + std::to_string(c),
        std::make_unique<BandwidthModel>(MakeBandwidthFluctuation(
            bandwidth, config.bandwidth_change_rate, rng))));
  }
  source_links_.reserve(config.num_sources);
  const double source_bw = config.source_bandwidth_avg > 0.0
                               ? config.source_bandwidth_avg
                               : kUnconstrainedBandwidth;
  const double source_change_rate =
      config.source_bandwidth_avg > 0.0 ? config.bandwidth_change_rate : 0.0;
  for (int j = 0; j < config.num_sources; ++j) {
    source_links_.push_back(std::make_unique<Link>(
        "source-" + std::to_string(j),
        std::make_unique<BandwidthModel>(
            MakeBandwidthFluctuation(source_bw, source_change_rate, rng))));
  }
  const size_t slots =
      static_cast<size_t>(config.num_caches) * static_cast<size_t>(config.num_sources);
  mail_incoming_.resize(slots);
  mail_deliverable_.resize(slots);
}

size_t Network::MailSlot(int cache_id, int source_index) const {
  BESYNC_CHECK_GE(cache_id, 0);
  BESYNC_CHECK_LT(cache_id, num_caches());
  BESYNC_CHECK_GE(source_index, 0);
  BESYNC_CHECK_LT(source_index, num_sources());
  return static_cast<size_t>(cache_id) * static_cast<size_t>(num_sources()) +
         static_cast<size_t>(source_index);
}

void Network::BeginTick(double tick_start, double tick_len) {
  for (auto& link : cache_links_) link->BeginTick(tick_start, tick_len);
  for (auto& link : source_links_) link->BeginTick(tick_start, tick_len);
  for (size_t slot = 0; slot < mail_incoming_.size(); ++slot) {
    for (auto& message : mail_incoming_[slot]) {
      mail_deliverable_[slot].push_back(std::move(message));
    }
    mail_incoming_[slot].clear();
  }
}

Link& Network::cache_link(int cache_id) {
  BESYNC_CHECK_GE(cache_id, 0);
  BESYNC_CHECK_LT(cache_id, num_caches());
  return *cache_links_[cache_id];
}

const Link& Network::cache_link(int cache_id) const {
  BESYNC_CHECK_GE(cache_id, 0);
  BESYNC_CHECK_LT(cache_id, num_caches());
  return *cache_links_[cache_id];
}

Link& Network::source_link(int source_index) {
  BESYNC_CHECK_GE(source_index, 0);
  BESYNC_CHECK_LT(source_index, num_sources());
  return *source_links_[source_index];
}

void Network::SendToSource(int cache_id, int source_index, Message message) {
  message.cache_id = cache_id;
  mail_incoming_[MailSlot(cache_id, source_index)].push_back(std::move(message));
}

void Network::SendToSource(int source_index, Message message) {
  SendToSource(/*cache_id=*/0, source_index, std::move(message));
}

std::vector<Message> Network::TakeSourceMail(int cache_id, int source_index) {
  return std::exchange(mail_deliverable_[MailSlot(cache_id, source_index)], {});
}

std::vector<Message> Network::TakeSourceMail(int source_index) {
  return TakeSourceMail(/*cache_id=*/0, source_index);
}

void Network::FinishTick() {
  for (auto& link : cache_links_) link->FinishTick();
  for (auto& link : source_links_) link->FinishTick();
}

void Network::ResetStats() {
  for (auto& link : cache_links_) link->ResetStats();
  for (auto& link : source_links_) link->ResetStats();
}

}  // namespace besync
