#include "net/network.h"

#include <utility>

#include "util/logging.h"

namespace besync {

namespace {
// Budget used for "unconstrained" links; large enough to never bind while
// staying far from int64 overflow when accumulated.
constexpr double kUnconstrainedBandwidth = 1e12;
}  // namespace

Network::Network(const NetworkConfig& config, Rng* rng) : config_(config) {
  BESYNC_CHECK_GE(config.num_sources, 1);
  BESYNC_CHECK_GT(config.cache_bandwidth_avg, 0.0);
  cache_link_ = std::make_unique<Link>(
      "cache", std::make_unique<BandwidthModel>(MakeBandwidthFluctuation(
                   config.cache_bandwidth_avg, config.bandwidth_change_rate, rng)));
  source_links_.reserve(config.num_sources);
  const double source_bw = config.source_bandwidth_avg > 0.0
                               ? config.source_bandwidth_avg
                               : kUnconstrainedBandwidth;
  const double source_change_rate =
      config.source_bandwidth_avg > 0.0 ? config.bandwidth_change_rate : 0.0;
  for (int j = 0; j < config.num_sources; ++j) {
    source_links_.push_back(std::make_unique<Link>(
        "source-" + std::to_string(j),
        std::make_unique<BandwidthModel>(
            MakeBandwidthFluctuation(source_bw, source_change_rate, rng))));
  }
  mail_incoming_.resize(config.num_sources);
  mail_deliverable_.resize(config.num_sources);
}

void Network::BeginTick(double tick_start, double tick_len) {
  cache_link_->BeginTick(tick_start, tick_len);
  for (auto& link : source_links_) link->BeginTick(tick_start, tick_len);
  for (int j = 0; j < num_sources(); ++j) {
    for (auto& message : mail_incoming_[j]) {
      mail_deliverable_[j].push_back(std::move(message));
    }
    mail_incoming_[j].clear();
  }
}

Link& Network::source_link(int source_index) {
  BESYNC_CHECK_GE(source_index, 0);
  BESYNC_CHECK_LT(source_index, num_sources());
  return *source_links_[source_index];
}

void Network::SendToSource(int source_index, Message message) {
  BESYNC_CHECK_GE(source_index, 0);
  BESYNC_CHECK_LT(source_index, num_sources());
  mail_incoming_[source_index].push_back(std::move(message));
}

std::vector<Message> Network::TakeSourceMail(int source_index) {
  BESYNC_CHECK_GE(source_index, 0);
  BESYNC_CHECK_LT(source_index, num_sources());
  return std::exchange(mail_deliverable_[source_index], {});
}

void Network::ResetStats() {
  cache_link_->ResetStats();
  for (auto& link : source_links_) link->ResetStats();
}

}  // namespace besync
