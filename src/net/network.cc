#include "net/network.h"

#include <algorithm>
#include <string>
#include <utility>

#include "util/logging.h"

namespace besync {

namespace {
// Budget used for "unconstrained" links; large enough to never bind while
// staying far from int64 overflow when accumulated.
constexpr double kUnconstrainedBandwidth = 1e12;
}  // namespace

Network::Network(const NetworkConfig& config, Rng* rng) : config_(config) {
  BESYNC_CHECK_GE(config.num_sources, 1);
  BESYNC_CHECK_GE(config.num_caches, 1);
  BESYNC_CHECK_GT(config.cache_bandwidth_avg, 0.0);
  const TopologySpec& topology = config_.topology;
  if (!topology.flat()) {
    const Status status = topology.Validate(config.num_caches);
    BESYNC_CHECK(status.ok()) << status.ToString();
  }

  // Leaf (cache) ingress links first, then source links — the historical
  // construction order, so the flat topology (and a pass-through tree,
  // whose relay links draw no randomness) consumes `rng` identically to
  // the pre-relay engine.
  cache_links_.reserve(config.num_caches);
  for (int c = 0; c < config.num_caches; ++c) {
    double bandwidth = config.cache_bandwidth_avg;
    if (c < static_cast<int>(config.cache_bandwidth_overrides.size()) &&
        config.cache_bandwidth_overrides[c] > 0.0) {
      bandwidth = config.cache_bandwidth_overrides[c];
    }
    bandwidth = topology.EdgeValue(topology.edge_bandwidth, c, bandwidth);
    cache_links_.push_back(std::make_unique<Link>(
        config.num_caches == 1 ? "cache" : "cache-" + std::to_string(c),
        std::make_unique<BandwidthModel>(MakeBandwidthFluctuation(
            bandwidth, config.bandwidth_change_rate, rng))));
  }
  source_links_.reserve(config.num_sources);
  const double source_bw = config.source_bandwidth_avg > 0.0
                               ? config.source_bandwidth_avg
                               : kUnconstrainedBandwidth;
  const double source_change_rate =
      config.source_bandwidth_avg > 0.0 ? config.bandwidth_change_rate : 0.0;
  for (int j = 0; j < config.num_sources; ++j) {
    source_links_.push_back(std::make_unique<Link>(
        "source-" + std::to_string(j),
        std::make_unique<BandwidthModel>(
            MakeBandwidthFluctuation(source_bw, source_change_rate, rng))));
  }

  // Relay ingress/egress links and routing tables (tree topologies only).
  first_hop_.resize(static_cast<size_t>(config.num_caches));
  for (int c = 0; c < config.num_caches; ++c) first_hop_[c] = c;
  children_.resize(static_cast<size_t>(
      topology.flat() ? config.num_caches : topology.num_nodes()));
  if (!topology.flat()) {
    const int nodes = topology.num_nodes();
    const std::vector<int64_t> leaves_below = topology.SubtreeLeafCounts();
    relay_links_.reserve(static_cast<size_t>(topology.num_relays()));
    relay_egress_.reserve(static_cast<size_t>(topology.num_relays()));
    for (int n = config.num_caches; n < nodes; ++n) {
      // Relay edge default: demand-proportional share (factor x leaves x
      // per-leaf bandwidth), or unconstrained when no factor is set — the
      // pass-through configuration.
      double fallback =
          topology.relay_bandwidth_factor > 0.0
              ? topology.relay_bandwidth_factor *
                    static_cast<double>(leaves_below[n]) * config.cache_bandwidth_avg
              : kUnconstrainedBandwidth;
      const double ingress_bw =
          topology.EdgeValue(topology.edge_bandwidth, n, fallback);
      const bool ingress_unconstrained = ingress_bw >= kUnconstrainedBandwidth;
      relay_links_.push_back(std::make_unique<Link>(
          "relay-" + std::to_string(n),
          std::make_unique<BandwidthModel>(MakeBandwidthFluctuation(
              ingress_bw,
              ingress_unconstrained ? 0.0 : config.bandwidth_change_rate, rng))));
      // Egress default: mirror the resolved ingress (a symmetric relay);
      // unconstrained ingress means unconstrained egress.
      const double egress_bw =
          topology.EdgeValue(topology.relay_egress_bandwidth, n, ingress_bw);
      const bool egress_unconstrained = egress_bw >= kUnconstrainedBandwidth;
      relay_egress_.push_back(std::make_unique<Link>(
          "relay-" + std::to_string(n) + "-egress",
          std::make_unique<BandwidthModel>(MakeBandwidthFluctuation(
              egress_bw,
              egress_unconstrained ? 0.0 : config.bandwidth_change_rate, rng))));
    }

    next_hop_.assign(static_cast<size_t>(topology.num_relays()),
                     std::vector<int32_t>(static_cast<size_t>(config.num_caches), -1));
    effective_parent_ = topology.parent;
    relay_alive_.assign(static_cast<size_t>(topology.num_relays()), 1);
    BuildRouting();
  } else {
    tier1_nodes_.resize(static_cast<size_t>(config.num_caches));
    for (int c = 0; c < config.num_caches; ++c) tier1_nodes_[c] = c;
  }

  const size_t slots =
      static_cast<size_t>(num_nodes()) * static_cast<size_t>(config.num_sources);
  mail_incoming_.resize(slots);
  mail_deliverable_.resize(slots);

  all_links_.reserve(cache_links_.size() + source_links_.size() +
                     relay_links_.size() + relay_egress_.size());
  for (auto& link : cache_links_) all_links_.push_back(link.get());
  for (auto& link : source_links_) all_links_.push_back(link.get());
  for (auto& link : relay_links_) all_links_.push_back(link.get());
  for (auto& link : relay_egress_) all_links_.push_back(link.get());
}

size_t Network::MailSlot(int node, int source_index) const {
  BESYNC_CHECK_GE(node, 0);
  BESYNC_CHECK_LT(node, num_nodes());
  BESYNC_CHECK_GE(source_index, 0);
  BESYNC_CHECK_LT(source_index, num_sources());
  return static_cast<size_t>(node) * static_cast<size_t>(num_sources()) +
         static_cast<size_t>(source_index);
}

void Network::BeginTick(double tick_start, double tick_len, ShardPool* pool) {
  if (pool != nullptr && pool->num_shards() > 1) {
    // Each link's tick state (budget, credit, stats) is self-contained, so
    // advancing disjoint slices in parallel is bitwise identical to the
    // sequential loop.
    pool->Run([this, tick_start, tick_len, pool](int shard) {
      const auto range = ShardPool::ShardRange(
          static_cast<int64_t>(all_links_.size()), shard, pool->num_shards());
      for (int64_t i = range.first; i < range.second; ++i) {
        all_links_[i]->BeginTick(tick_start, tick_len);
      }
    });
  } else {
    for (Link* link : all_links_) link->BeginTick(tick_start, tick_len);
  }
  for (size_t slot : dirty_incoming_) {
    for (auto& message : mail_incoming_[slot]) {
      mail_deliverable_[slot].push_back(std::move(message));
    }
    mail_incoming_[slot].clear();
  }
  dirty_incoming_.clear();
}

Link& Network::cache_link(int cache_id) {
  BESYNC_CHECK_GE(cache_id, 0);
  BESYNC_CHECK_LT(cache_id, num_caches());
  return *cache_links_[cache_id];
}

const Link& Network::cache_link(int cache_id) const {
  BESYNC_CHECK_GE(cache_id, 0);
  BESYNC_CHECK_LT(cache_id, num_caches());
  return *cache_links_[cache_id];
}

Link& Network::source_link(int source_index) {
  BESYNC_CHECK_GE(source_index, 0);
  BESYNC_CHECK_LT(source_index, num_sources());
  return *source_links_[source_index];
}

Link& Network::edge_link(int node) {
  if (node < num_caches()) return cache_link(node);
  return relay_ingress(node);
}

Link& Network::relay_ingress(int node) {
  BESYNC_CHECK_GE(node, num_caches());
  BESYNC_CHECK_LT(node, num_nodes());
  return *relay_links_[node - num_caches()];
}

Link& Network::relay_egress(int node) {
  BESYNC_CHECK_GE(node, num_caches());
  BESYNC_CHECK_LT(node, num_nodes());
  return *relay_egress_[node - num_caches()];
}

const std::vector<int32_t>& Network::children(int node) const {
  BESYNC_CHECK_GE(node, 0);
  BESYNC_CHECK_LT(node, num_nodes());
  return children_[node];
}

int32_t Network::NextHop(int node, int cache_id) const {
  const int32_t hop = TryNextHop(node, cache_id);
  BESYNC_CHECK_GE(hop, 0) << "cache " << cache_id << " is not below relay " << node;
  return hop;
}

int32_t Network::TryNextHop(int node, int cache_id) const {
  BESYNC_CHECK_GE(node, num_caches());
  BESYNC_CHECK_LT(node, num_nodes());
  BESYNC_CHECK_GE(cache_id, 0);
  BESYNC_CHECK_LT(cache_id, num_caches());
  return next_hop_[node - num_caches()][cache_id];
}

void Network::RecomputeEffectiveParents() {
  const TopologySpec& topology = config_.topology;
  const int leaves = num_caches();
  for (int n = 0; n < num_nodes(); ++n) {
    int32_t p = topology.parent[n];
    if (p != -1 && relay_alive_[p - leaves] == 0) {
      const int32_t backup = topology.BackupParentOf(p);
      p = (backup != -1 && relay_alive_[backup - leaves] != 0) ? backup : -1;
    }
    effective_parent_[n] = p;
  }
}

void Network::BuildRouting() {
  const int nodes = num_nodes();
  const int leaves = num_caches();
  for (auto& list : children_) list.clear();
  for (int n = 0; n < nodes; ++n) {
    if (n >= leaves && relay_alive_[n - leaves] == 0) continue;
    const int32_t p = effective_parent_[n];
    if (p != -1) children_[p].push_back(static_cast<int32_t>(n));
  }
  for (auto& row : next_hop_) std::fill(row.begin(), row.end(), -1);
  for (int leaf = 0; leaf < leaves; ++leaf) {
    int32_t below = static_cast<int32_t>(leaf);
    int32_t node = effective_parent_[leaf];
    int steps = 0;
    while (node != -1) {
      BESYNC_CHECK_LE(++steps, nodes) << "failover routing created a cycle";
      next_hop_[node - leaves][leaf] = below;
      below = node;
      node = effective_parent_[node];
    }
    first_hop_[leaf] = below;
  }
  // Pump/forward orders over the surviving relays, by height above the
  // leaves under the *effective* parent map (stable, so ascending node ids
  // break ties — the same order construction uses when nothing has failed).
  std::vector<int> height(static_cast<size_t>(nodes), 0);
  for (int leaf = 0; leaf < leaves; ++leaf) {
    int distance = 0;
    int32_t node = effective_parent_[leaf];
    while (node != -1) {
      ++distance;
      height[node] = std::max(height[node], distance);
      node = effective_parent_[node];
    }
  }
  std::vector<int32_t> alive;
  alive.reserve(relay_links_.size());
  for (int n = leaves; n < nodes; ++n) {
    if (relay_alive_[n - leaves] != 0) alive.push_back(static_cast<int32_t>(n));
  }
  upstream_relays_ = alive;
  std::stable_sort(upstream_relays_.begin(), upstream_relays_.end(),
                   [&height](int32_t a, int32_t b) { return height[a] < height[b]; });
  downstream_relays_ = alive;
  std::stable_sort(downstream_relays_.begin(), downstream_relays_.end(),
                   [&height](int32_t a, int32_t b) { return height[a] > height[b]; });
  tier1_nodes_.clear();
  for (int n = 0; n < nodes; ++n) {
    if (n >= leaves && relay_alive_[n - leaves] == 0) continue;
    if (effective_parent_[n] == -1) tier1_nodes_.push_back(static_cast<int32_t>(n));
  }
}

void Network::FailRelay(int node) {
  BESYNC_CHECK(has_relays());
  BESYNC_CHECK_GE(node, num_caches());
  BESYNC_CHECK_LT(node, num_nodes());
  const int idx = node - num_caches();
  BESYNC_CHECK(relay_alive_[idx] != 0) << "relay " << node << " already failed";
  relay_alive_[idx] = 0;
  RecomputeEffectiveParents();
  BuildRouting();
  // Re-deposit control mail held at the failed relay at each message's
  // originating leaf, preserving order: the next PumpControlUpstream walks
  // it up the rebuilt tree, so feedback survives the failover. (Mail
  // normally drains every tick, so these buffers are almost always empty.)
  for (int j = 0; j < num_sources(); ++j) {
    BESYNC_DCHECK(mail_incoming_[MailSlot(node, j)].empty())
        << "control mail is only ever deposited at leaf edges";
    auto held = std::exchange(mail_deliverable_[MailSlot(node, j)], {});
    for (auto& message : held) {
      mail_deliverable_[MailSlot(message.cache_id, j)].push_back(std::move(message));
    }
  }
}

void Network::RecoverRelay(int node) {
  BESYNC_CHECK(has_relays());
  BESYNC_CHECK_GE(node, num_caches());
  BESYNC_CHECK_LT(node, num_nodes());
  const int idx = node - num_caches();
  BESYNC_CHECK(relay_alive_[idx] == 0) << "relay " << node << " is not failed";
  relay_alive_[idx] = 1;
  RecomputeEffectiveParents();
  BuildRouting();
}

void Network::SendToSource(int cache_id, int source_index, Message message) {
  BESYNC_CHECK_LT(cache_id, num_caches());
  message.cache_id = cache_id;
  const size_t slot = MailSlot(cache_id, source_index);
  if (mail_incoming_[slot].empty()) dirty_incoming_.push_back(slot);
  mail_incoming_[slot].push_back(std::move(message));
}

void Network::SendToSource(int source_index, Message message) {
  SendToSource(/*cache_id=*/0, source_index, std::move(message));
}

int64_t Network::PumpControlUpstream() {
  int64_t moved = 0;
  // Children before parents: a relay drains its children's edges after any
  // lower relay has already pushed mail onto them, so every message reaches
  // its tier-1 edge within one pump.
  for (int32_t relay : upstream_relays_) {
    for (int32_t child : children_[relay]) {
      for (int j = 0; j < num_sources(); ++j) {
        auto& from = mail_deliverable_[MailSlot(child, j)];
        if (from.empty()) continue;
        auto& to = mail_deliverable_[MailSlot(relay, j)];
        moved += static_cast<int64_t>(from.size());
        for (auto& message : from) to.push_back(std::move(message));
        from.clear();
      }
    }
  }
  return moved;
}

std::vector<Message> Network::TakeSourceMail(int node, int source_index) {
  return std::exchange(mail_deliverable_[MailSlot(node, source_index)], {});
}

std::vector<Message> Network::TakeSourceMail(int source_index) {
  return TakeSourceMail(/*node=*/0, source_index);
}

void Network::FinishTick() {
  for (auto& link : cache_links_) link->FinishTick();
  for (auto& link : source_links_) link->FinishTick();
  for (auto& link : relay_links_) link->FinishTick();
  for (auto& link : relay_egress_) link->FinishTick();
}

void Network::ResetStats() {
  for (auto& link : cache_links_) link->ResetStats();
  for (auto& link : source_links_) link->ResetStats();
  for (auto& link : relay_links_) link->ResetStats();
  for (auto& link : relay_egress_) link->ResetStats();
}

}  // namespace besync
