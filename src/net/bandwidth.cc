#include "net/bandwidth.h"

#include <cmath>

#include "util/logging.h"

namespace besync {

BandwidthModel::BandwidthModel(std::unique_ptr<Fluctuation> signal)
    : signal_(std::move(signal)) {
  BESYNC_CHECK(signal_ != nullptr);
}

int64_t BandwidthModel::BudgetForTick(double tick_start, double tick_len) {
  BESYNC_CHECK_GT(tick_len, 0.0);
  // Midpoint evaluation of the rate over the tick.
  const double rate = signal_->ValueAt(tick_start + 0.5 * tick_len);
  credit_ += rate * tick_len;
  const double whole = std::floor(credit_);
  credit_ -= whole;
  return static_cast<int64_t>(whole);
}

}  // namespace besync
