#ifndef BESYNC_NET_LINK_H_
#define BESYNC_NET_LINK_H_

#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "net/bandwidth.h"
#include "net/message.h"
#include "obs/trace.h"
#include "util/random.h"
#include "util/stats.h"

namespace besync {

/// A bandwidth-constrained link with a FIFO queue, operated in per-tick
/// budget mode. Implements the paper's "standard underlying network model
/// where any messages for which there is not enough capacity become enqueued
/// for later transmission" (Section 1.2).
///
/// Per tick, the owner calls BeginTick() to establish the message budget,
/// then any mix of:
///  - Enqueue()       -- add a message to the FIFO (no budget consumed yet),
///  - DeliverQueued() -- deliver queued messages up to the remaining budget,
///  - ConsumeBudget() -- spend budget on unqueued traffic (e.g. the cache
///                       spending surplus capacity on feedback messages).
class Link {
 public:
  Link(std::string name, std::unique_ptr<BandwidthModel> bandwidth);

  /// Starts a new tick: computes the tick's budget and records queue stats.
  /// Debt from a transmission that spilled past the previous tick carries
  /// over (large messages occupy the link across ticks).
  void BeginTick(double tick_start, double tick_len);

  /// Flushes the in-progress tick's usage into the utilization stat (a
  /// tick is otherwise only accounted at the *next* BeginTick, so the last
  /// tick of a run would go missing). Idempotent; call at end of run.
  void FinishTick();

  /// Adds a message to the FIFO queue.
  void Enqueue(Message message);

  /// Delivers queued messages (FIFO) while budget remains, invoking `sink`
  /// for each; a message's `cost` is charged in full when its transmission
  /// starts, possibly driving the budget negative (the debt reduces the
  /// next tick's budget). Returns the number delivered. Messages may be
  /// dropped instead of delivered when a loss rate is configured (their
  /// cost is still spent — the transmission happened, the content was
  /// lost).
  int64_t DeliverQueued(const std::function<void(const Message&)>& sink);

  /// Exactly DeliverQueued, but the delivered messages are appended to
  /// `out` instead of being sunk inline — the collect half of the sharded
  /// two-phase delivery (budget, loss draws and statistics are all
  /// per-link state, so collection parallelizes across links; the caller
  /// applies the collected messages serially in the canonical order).
  int64_t CollectDeliverable(std::vector<Message>* out);

  /// Attempts to consume `amount` units of remaining budget; returns the
  /// number of units actually granted (possibly fewer).
  int64_t ConsumeBudget(int64_t amount);

  /// Consumes `amount` units if any budget remains, allowing the balance to
  /// go negative (multi-tick transmission of a large message). Returns
  /// whether the consumption happened.
  bool TryConsumeAllowingDeficit(int64_t amount);

  /// Unconditionally consumes `amount` units, allowing the balance to go
  /// negative even when already exhausted. For demand traffic that must be
  /// sent (miss-triggered pull responses): the debt reduces the following
  /// ticks' budgets, throttling subsequent pushes instead of dropping the
  /// pull.
  void ConsumeAllowingDebt(int64_t amount);

  /// Configures random message loss on delivery (0 = lossless, default).
  void SetLossRate(double rate, uint64_t seed);

  /// Observability wiring (obs/trace.h): records this link's message drops
  /// (random loss and blackholing while down) into `trace`, attributed to
  /// `node` (the downstream endpoint — a cache id for leaf edges, a relay
  /// node id for tree edges). Null (the default) disables recording. Drop
  /// timestamps are the current tick's start time (the finest clock the
  /// link sees).
  void SetTrace(TraceBuffer* trace, int32_t node) {
    trace_ = trace;
    trace_node_ = node;
  }

  /// Partitions / heals the link (fault injection). While down the link
  /// blackholes: new Enqueue()s are dropped, every budget grant is refused,
  /// and the tick budget is 0 — queued messages freeze in place and deliver
  /// once the link comes back. Deficit carried into the outage is preserved
  /// (the interrupted transmission resumes on recovery).
  void SetDown(bool down) { down_ = down; }
  bool is_down() const { return down_; }

  /// Temporary bandwidth degradation (fault injection): each tick's budget
  /// is scaled by `factor` (1 = nominal). Only consulted when != 1, so
  /// fault-free runs keep their exact budget arithmetic.
  void SetBandwidthFactor(double factor) { bandwidth_factor_ = factor; }
  double bandwidth_factor() const { return bandwidth_factor_; }

  /// Messages dropped at Enqueue because the link was down.
  int64_t messages_blackholed() const { return messages_blackholed_; }

  /// Removes and returns every queued message in FIFO order (relay
  /// failover: the caller re-routes or drops them per policy). Budget and
  /// statistics are untouched.
  std::vector<Message> TakeQueue();

  int64_t remaining_budget() const { return remaining_; }
  int64_t tick_budget() const { return tick_budget_; }
  size_t queue_size() const { return queue_.size(); }
  size_t max_queue_size() const { return max_queue_size_; }
  const std::string& name() const { return name_; }
  double average_bandwidth() const { return bandwidth_->average(); }

  /// Cumulative used/offered capacity across ticks.
  const UtilizationStat& utilization() const { return utilization_; }
  /// Queue length sampled at each BeginTick.
  const RunningStat& queue_length_stat() const { return queue_length_stat_; }
  int64_t messages_delivered() const { return messages_delivered_; }
  int64_t messages_dropped() const { return messages_dropped_; }
  /// Bandwidth units spent by DeliverQueued transmissions, split by traffic
  /// class: pull responses (Message::is_pull) vs everything else ("push" —
  /// refreshes and poll responses). Lost transmissions count too (their
  /// cost was spent); budget consumed outside the queue (feedback or pull
  /// requests via ConsumeBudget/TryConsumeAllowingDeficit) is not included.
  int64_t pull_units_delivered() const { return pull_units_delivered_; }
  int64_t push_units_delivered() const { return push_units_delivered_; }

  /// Resets statistics (e.g. at the end of the warm-up period). The queue
  /// contents and budget state are preserved.
  void ResetStats();

 private:
  /// Pops the next message DeliverQueued would deliver (charging budget,
  /// drawing loss, updating delivery stats); false when budget or queue is
  /// exhausted.
  bool PopDeliverable(Message* out);

  /// Records a kDrop event for `message` (callers test trace_ first).
  /// `blackholed` distinguishes down-link blackholing (aux=1) from random
  /// loss (aux=0).
  void RecordDrop(const Message& message, bool blackholed);

  std::string name_;
  std::unique_ptr<BandwidthModel> bandwidth_;
  std::deque<Message> queue_;
  int64_t tick_budget_ = 0;
  int64_t remaining_ = 0;
  /// `remaining_` as of the last BeginTick (== tick_budget_ minus any
  /// deficit carried in); the baseline utilization is measured against.
  int64_t tick_start_remaining_ = 0;
  int64_t messages_delivered_ = 0;
  int64_t messages_dropped_ = 0;
  int64_t pull_units_delivered_ = 0;
  int64_t push_units_delivered_ = 0;
  size_t max_queue_size_ = 0;
  UtilizationStat utilization_;
  RunningStat queue_length_stat_;
  bool in_tick_ = false;
  double loss_rate_ = 0.0;
  Rng loss_rng_{0};
  bool down_ = false;
  double bandwidth_factor_ = 1.0;
  int64_t messages_blackholed_ = 0;
  /// Drop tracing; null unless observability tracing is on.
  TraceBuffer* trace_ = nullptr;
  int32_t trace_node_ = -1;
  double trace_now_ = 0.0;
};

}  // namespace besync

#endif  // BESYNC_NET_LINK_H_
