#include "net/link.h"

#include <algorithm>
#include <iterator>
#include <utility>

#include "util/logging.h"

namespace besync {

Link::Link(std::string name, std::unique_ptr<BandwidthModel> bandwidth)
    : name_(std::move(name)), bandwidth_(std::move(bandwidth)) {
  BESYNC_CHECK(bandwidth_ != nullptr);
}

void Link::BeginTick(double tick_start, double tick_len) {
  // Account for the previous tick's budget usage before starting a new one.
  // Usage is measured against the recorded start-of-tick level, not the
  // budget: a tick that starts below budget (paying off deficit carried in
  // from an earlier tick) would otherwise re-report the borrowed units as
  // used, double-counting them across the run.
  if (in_tick_) {
    utilization_.Add(static_cast<double>(tick_start_remaining_ - remaining_),
                     static_cast<double>(tick_budget_));
  }
  // Debt from a multi-tick transmission carries forward; surplus does not.
  const int64_t debt = std::min<int64_t>(remaining_, 0);
  // The bandwidth model is always consulted (it may keep fractional-credit
  // state across ticks); fault overrides apply to the result only.
  int64_t budget = bandwidth_->BudgetForTick(tick_start, tick_len);
  if (down_) {
    budget = 0;
  } else if (bandwidth_factor_ != 1.0) {
    budget = static_cast<int64_t>(static_cast<double>(budget) * bandwidth_factor_);
  }
  tick_budget_ = budget;
  remaining_ = tick_budget_ + debt;
  tick_start_remaining_ = remaining_;
  queue_length_stat_.Add(static_cast<double>(queue_.size()));
  max_queue_size_ = std::max(max_queue_size_, queue_.size());
  in_tick_ = true;
  trace_now_ = tick_start;
}

void Link::RecordDrop(const Message& message, bool blackholed) {
  TraceEvent event;
  event.kind = TraceEventKind::kDrop;
  event.t = trace_now_;
  event.node = trace_node_;
  event.source = message.source_index;
  event.cache = message.cache_id;
  event.object = message.object_index;
  event.version = message.version;
  event.is_pull = message.is_pull;
  event.aux = blackholed ? 1 : 0;
  trace_->Record(event);
}

void Link::FinishTick() {
  if (!in_tick_) return;
  utilization_.Add(static_cast<double>(tick_start_remaining_ - remaining_),
                   static_cast<double>(tick_budget_));
  in_tick_ = false;
}

void Link::Enqueue(Message message) {
  if (down_) {
    ++messages_blackholed_;
    if (trace_ != nullptr) RecordDrop(message, /*blackholed=*/true);
    return;
  }
  queue_.push_back(std::move(message));
  max_queue_size_ = std::max(max_queue_size_, queue_.size());
}

bool Link::PopDeliverable(Message* out) {
  while (remaining_ > 0 && !queue_.empty()) {
    Message message = std::move(queue_.front());
    queue_.pop_front();
    const int64_t cost = std::max<int64_t>(message.cost, 1);
    remaining_ -= cost;
    (message.is_pull ? pull_units_delivered_ : push_units_delivered_) += cost;
    if (loss_rate_ > 0.0 && loss_rng_.Bernoulli(loss_rate_)) {
      ++messages_dropped_;
      if (trace_ != nullptr) RecordDrop(message, /*blackholed=*/false);
      continue;  // transmission spent, content lost
    }
    ++messages_delivered_;
    *out = std::move(message);
    return true;
  }
  return false;
}

int64_t Link::DeliverQueued(const std::function<void(const Message&)>& sink) {
  int64_t delivered = 0;
  Message message;
  while (PopDeliverable(&message)) {
    ++delivered;
    sink(message);
  }
  return delivered;
}

int64_t Link::CollectDeliverable(std::vector<Message>* out) {
  int64_t delivered = 0;
  Message message;
  while (PopDeliverable(&message)) {
    ++delivered;
    out->push_back(std::move(message));
  }
  return delivered;
}

int64_t Link::ConsumeBudget(int64_t amount) {
  BESYNC_CHECK_GE(amount, 0);
  const int64_t granted = std::max<int64_t>(std::min(amount, remaining_), 0);
  remaining_ -= granted;
  return granted;
}

bool Link::TryConsumeAllowingDeficit(int64_t amount) {
  BESYNC_CHECK_GE(amount, 0);
  if (down_) return false;
  if (remaining_ <= 0) return false;
  remaining_ -= amount;
  return true;
}

void Link::ConsumeAllowingDebt(int64_t amount) {
  BESYNC_CHECK_GE(amount, 0);
  // A partitioned link charges nothing: the traffic it would have carried
  // was blackholed, and charging would bury the recovered link in debt.
  if (down_) return;
  remaining_ -= amount;
}

std::vector<Message> Link::TakeQueue() {
  std::vector<Message> taken(std::make_move_iterator(queue_.begin()),
                             std::make_move_iterator(queue_.end()));
  queue_.clear();
  return taken;
}

void Link::SetLossRate(double rate, uint64_t seed) {
  BESYNC_CHECK_GE(rate, 0.0);
  BESYNC_CHECK_LT(rate, 1.0);
  loss_rate_ = rate;
  loss_rng_ = Rng(seed);
}

void Link::ResetStats() {
  utilization_.Reset();
  queue_length_stat_.Reset();
  messages_delivered_ = 0;
  messages_dropped_ = 0;
  pull_units_delivered_ = 0;
  push_units_delivered_ = 0;
  messages_blackholed_ = 0;
  max_queue_size_ = queue_.size();
}

}  // namespace besync
