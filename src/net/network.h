#ifndef BESYNC_NET_NETWORK_H_
#define BESYNC_NET_NETWORK_H_

#include <memory>
#include <vector>

#include "data/topology.h"
#include "net/link.h"
#include "net/message.h"
#include "util/random.h"
#include "util/shard_pool.h"

namespace besync {

/// Network topology parameters (paper Section 6: average cache-side
/// bandwidth B_C, average source-side bandwidth B_S, maximum relative
/// bandwidth change rate mB), generalized to `num_caches` caches — and,
/// when `topology` is non-flat, to a multi-tier relay tree whose edges
/// each carry their own Link (data/topology.h).
struct NetworkConfig {
  int num_sources = 1;
  /// Number of (leaf) caches, each with its own ingress link. 1 reproduces
  /// the paper's Figure-1 star topology.
  int num_caches = 1;
  /// Average cache-side bandwidth C(t), messages/second, applied to every
  /// cache link not covered by `cache_bandwidth_overrides`.
  double cache_bandwidth_avg = 10.0;
  /// Optional per-cache average bandwidth; entry c overrides
  /// cache_bandwidth_avg for cache c (values <= 0 fall back to the average).
  std::vector<double> cache_bandwidth_overrides;
  /// Average source-side bandwidth B_j(t), messages/second. <= 0 means
  /// unconstrained (the CGM polling model assumes no source-side limits).
  double source_bandwidth_avg = -1.0;
  /// Maximum relative rate of bandwidth change (mB). 0 = constant bandwidth.
  double bandwidth_change_rate = 0.0;
  /// Relay topology. Flat (default) reproduces the one-hop star exactly; a
  /// tree adds per-relay ingress/egress links and multi-hop routing. Leaf
  /// count must equal num_caches when non-flat.
  TopologySpec topology;
};

/// The refresh/control fabric between sources and caches. Flat topology: m
/// source-side links feeding `num_caches` independent cache-side links
/// (Figure 1 is the num_caches == 1 case). Tree topology: every node's
/// ingress edge is its own Link — leaf edges are the cache links, relay
/// edges sit above them — and refreshes are routed hop by hop toward the
/// `Message::cache_id` leaf (the relay agents in core/relay.h do the
/// forwarding between edges).
///
/// Also carries the upstream control channel (feedback / poll requests).
/// Control mail is keyed by (edge, source) — an edge is identified by its
/// child node, so the flat key degenerates to the historical
/// (cache, source). A message deposited by leaf c during tick t becomes
/// deliverable at tick t+1; PumpControlUpstream() then moves it edge by
/// edge to c's tier-1 ancestor within that tick (relays forward control
/// mail promptly — see DESIGN.md), so end-to-end control latency is one
/// tick at any depth, exactly matching the flat protocol.
class Network {
 public:
  Network(const NetworkConfig& config, Rng* rng);

  /// Advances all links (leaf, source, relay ingress/egress) into the tick
  /// [tick_start, tick_start+tick_len) and makes control messages deposited
  /// during the previous tick deliverable. With a non-null `pool` the link
  /// advancement is sharded across the pool (every link's budget, credit
  /// and statistics are self-contained, so per-link advancement commutes);
  /// mail promotion stays on the calling thread. Bitwise identical at any
  /// pool size.
  void BeginTick(double tick_start, double tick_len, ShardPool* pool = nullptr);

  /// Flushes the final tick's usage into every link's utilization stat
  /// (call once at end of run — see Link::FinishTick).
  void FinishTick();

  Link& cache_link(int cache_id);
  const Link& cache_link(int cache_id) const;
  /// Single-cache convenience (the paper's topology).
  Link& cache_link() { return *cache_links_[0]; }
  const Link& cache_link() const { return *cache_links_[0]; }
  Link& source_link(int source_index);
  int num_sources() const { return static_cast<int>(source_links_.size()); }
  int num_caches() const { return static_cast<int>(cache_links_.size()); }

  // --- topology / routing ---

  const TopologySpec& topology() const { return config_.topology; }
  bool has_relays() const { return !relay_links_.empty(); }
  /// Total node count (caches + relays); equals num_caches() when flat.
  int num_nodes() const { return num_caches() + static_cast<int>(relay_links_.size()); }
  /// Ingress-edge link of any node: cache_link for leaves, the relay
  /// ingress link for relay nodes.
  Link& edge_link(int node);
  /// Egress (forwarding-budget) link of a relay node.
  Link& relay_egress(int node);
  /// Tier-1 ancestor of `cache_id` — where the sources inject refreshes for
  /// that cache (the leaf itself when flat).
  int32_t first_hop(int cache_id) const { return first_hop_[cache_id]; }
  Link& first_hop_link(int cache_id) { return edge_link(first_hop_[cache_id]); }
  /// Child of relay `node` on the path toward leaf `cache_id` (checked:
  /// the leaf must lie below the relay).
  int32_t NextHop(int node, int cache_id) const;
  /// Like NextHop, but returns -1 when the leaf is not below the relay —
  /// a message can outlive its routing when a failover re-homes its leaf
  /// while it sits in a relay store, and the forwarder must detect that.
  int32_t TryNextHop(int node, int cache_id) const;
  /// Relay node ids in downstream processing order (parents before
  /// children), so one tick cascades a pass-through tree end to end.
  const std::vector<int32_t>& downstream_relays() const { return downstream_relays_; }
  /// Nodes fed directly by the sources (ascending). All leaves when flat.
  const std::vector<int32_t>& tier1_nodes() const { return tier1_nodes_; }
  /// Children of `node` in ascending node order (empty for leaves).
  const std::vector<int32_t>& children(int node) const;

  // --- control mail, keyed by (edge, source) ---

  /// Deposits a cache -> source control message from leaf `cache_id` onto
  /// that leaf's edge; it starts traveling upstream at the next tick.
  void SendToSource(int cache_id, int source_index, Message message);
  /// Single-cache convenience: sends from cache 0.
  void SendToSource(int source_index, Message message);

  /// Moves deliverable control mail up the tree, edge by edge, onto the
  /// tier-1 edges (children drained in ascending node order, preserving
  /// per-leaf FIFO). No-op when flat. Returns the number of (message, hop)
  /// relay moves — the relay "feedback aggregation" traffic.
  int64_t PumpControlUpstream();

  /// Drains the control messages deliverable on edge `node` for
  /// `source_index` this tick. Call on tier-1 nodes after
  /// PumpControlUpstream(); with a flat topology every leaf is tier-1 and
  /// this is the historical (cache, source) drain.
  std::vector<Message> TakeSourceMail(int node, int source_index);
  /// Single-cache convenience: drains mail from cache 0.
  std::vector<Message> TakeSourceMail(int source_index);

  // --- fault injection: relay failover ---

  /// Whether a relay node is currently forwarding (always true for leaves).
  bool relay_alive(int node) const {
    return node < num_caches() || relay_alive_[node - num_caches()] != 0;
  }

  /// Fails relay `node`: its children re-attach to the topology's backup
  /// parent (or become tier-1 when the backup is missing or also dead) and
  /// first_hop/next-hop routing, the pump orders, and the tier-1 set are
  /// rebuilt from the surviving nodes. Control mail held at the relay is
  /// re-deposited at each message's originating leaf edge (stamped in
  /// SendToSource), preserving order — feedback is rerouted, never lost.
  /// Data messages queued on the relay's ingress link are *not* touched;
  /// the caller decides their fate (drop or drain) via Link::TakeQueue.
  void FailRelay(int node);

  /// Restores the original parent map for the recovered relay's subtree and
  /// rebuilds routing. The relay comes back with whatever queue its links
  /// kept (empty if the caller drained them at failure).
  void RecoverRelay(int node);

  /// Resets link statistics (end of warm-up).
  void ResetStats();

  const NetworkConfig& config() const { return config_; }

 private:
  size_t MailSlot(int node, int source_index) const;
  Link& relay_ingress(int node);
  /// Recomputes effective_parent_ from the alive set: a node whose parent
  /// died re-attaches to the parent's backup (when declared and alive),
  /// otherwise becomes tier-1 for the outage.
  void RecomputeEffectiveParents();
  /// Rebuilds children_, next_hop_, first_hop_, the pump orders and
  /// tier1_nodes_ from effective_parent_, skipping dead relays. With every
  /// relay alive this reproduces the construction-time tables exactly.
  void BuildRouting();

  NetworkConfig config_;
  std::vector<std::unique_ptr<Link>> cache_links_;
  std::vector<std::unique_ptr<Link>> source_links_;
  /// Relay ingress-edge links, indexed by node - num_caches. Constructed
  /// after the cache and source links so a pass-through tree consumes the
  /// scheduler RNG identically to the flat network (bitwise equivalence).
  std::vector<std::unique_ptr<Link>> relay_links_;
  /// Relay egress-budget links, indexed by node - num_caches.
  std::vector<std::unique_ptr<Link>> relay_egress_;
  /// Parent map under the current alive set (== topology.parent until a
  /// relay fails). Sized num_nodes for tree topologies, empty when flat.
  std::vector<int32_t> effective_parent_;
  /// 1 while the relay forwards, 0 between FailRelay and RecoverRelay.
  /// Indexed by node - num_caches.
  std::vector<uint8_t> relay_alive_;
  /// Tier-1 ancestor of each leaf (the leaf itself when flat).
  std::vector<int32_t> first_hop_;
  /// next_hop_[node - num_caches][leaf]: child of the relay on the path to
  /// the leaf, or -1 when the leaf is not below it.
  std::vector<std::vector<int32_t>> next_hop_;
  std::vector<int32_t> downstream_relays_;
  /// Relays children-before-parents: the control-pump order.
  std::vector<int32_t> upstream_relays_;
  /// Children of each node in ascending order (empty for leaves).
  std::vector<std::vector<int32_t>> children_;
  std::vector<int32_t> tier1_nodes_;
  // Control-channel double buffer keyed by (edge, source): deposited this
  // tick, delivered next tick. Slot = node * num_sources + source.
  std::vector<std::vector<Message>> mail_incoming_;
  std::vector<std::vector<Message>> mail_deliverable_;
  /// Slots with pending incoming mail, in deposit order (each slot listed
  /// once). BeginTick promotes exactly these instead of scanning all
  /// num_nodes x num_sources slots — per-slot promotions are independent,
  /// so visiting only the dirty slots is behavior-identical to the scan.
  std::vector<size_t> dirty_incoming_;
  /// Every link (cache, source, relay ingress, relay egress), flattened for
  /// the sharded BeginTick partition. Built once; link sets never change
  /// after construction.
  std::vector<Link*> all_links_;
};

}  // namespace besync

#endif  // BESYNC_NET_NETWORK_H_
