#ifndef BESYNC_NET_NETWORK_H_
#define BESYNC_NET_NETWORK_H_

#include <memory>
#include <vector>

#include "net/link.h"
#include "net/message.h"
#include "util/random.h"

namespace besync {

/// Network topology parameters (paper Section 6: average cache-side
/// bandwidth B_C, average source-side bandwidth B_S, maximum relative
/// bandwidth change rate mB), generalized to `num_caches` caches with
/// independent cache-side links.
struct NetworkConfig {
  int num_sources = 1;
  /// Number of caches, each with its own cache-side link. 1 reproduces the
  /// paper's Figure-1 star topology.
  int num_caches = 1;
  /// Average cache-side bandwidth C(t), messages/second, applied to every
  /// cache link not covered by `cache_bandwidth_overrides`.
  double cache_bandwidth_avg = 10.0;
  /// Optional per-cache average bandwidth; entry c overrides
  /// cache_bandwidth_avg for cache c (values <= 0 fall back to the average).
  std::vector<double> cache_bandwidth_overrides;
  /// Average source-side bandwidth B_j(t), messages/second. <= 0 means
  /// unconstrained (the CGM polling model assumes no source-side limits).
  double source_bandwidth_avg = -1.0;
  /// Maximum relative rate of bandwidth change (mB). 0 = constant bandwidth.
  double bandwidth_change_rate = 0.0;
};

/// The generalized star topology: m source-side links feeding `num_caches`
/// independent cache-side links (Figure 1 is the num_caches == 1 case).
/// Also carries the cache -> source control channel (feedback / poll
/// requests), keyed by (cache, source) and delivered with one tick of
/// latency.
class Network {
 public:
  Network(const NetworkConfig& config, Rng* rng);

  /// Advances all links into the tick [tick_start, tick_start+tick_len) and
  /// makes control messages deposited during the previous tick deliverable.
  void BeginTick(double tick_start, double tick_len);

  /// Flushes the final tick's usage into every link's utilization stat
  /// (call once at end of run — see Link::FinishTick).
  void FinishTick();

  Link& cache_link(int cache_id);
  const Link& cache_link(int cache_id) const;
  /// Single-cache convenience (the paper's topology).
  Link& cache_link() { return *cache_links_[0]; }
  const Link& cache_link() const { return *cache_links_[0]; }
  Link& source_link(int source_index);
  int num_sources() const { return static_cast<int>(source_links_.size()); }
  int num_caches() const { return static_cast<int>(cache_links_.size()); }

  /// Deposits a cache -> source control message from `cache_id`; it becomes
  /// available via TakeSourceMail() at the next tick.
  void SendToSource(int cache_id, int source_index, Message message);
  /// Single-cache convenience: sends from cache 0.
  void SendToSource(int source_index, Message message);

  /// Drains the control messages deliverable from `cache_id` to
  /// `source_index` this tick.
  std::vector<Message> TakeSourceMail(int cache_id, int source_index);
  /// Single-cache convenience: drains mail from cache 0.
  std::vector<Message> TakeSourceMail(int source_index);

  /// Resets link statistics (end of warm-up).
  void ResetStats();

  const NetworkConfig& config() const { return config_; }

 private:
  size_t MailSlot(int cache_id, int source_index) const;

  NetworkConfig config_;
  std::vector<std::unique_ptr<Link>> cache_links_;
  std::vector<std::unique_ptr<Link>> source_links_;
  // Control-channel double buffer keyed by (cache, source): deposited this
  // tick, delivered next tick. Slot = cache_id * num_sources + source.
  std::vector<std::vector<Message>> mail_incoming_;
  std::vector<std::vector<Message>> mail_deliverable_;
};

}  // namespace besync

#endif  // BESYNC_NET_NETWORK_H_
