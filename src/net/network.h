#ifndef BESYNC_NET_NETWORK_H_
#define BESYNC_NET_NETWORK_H_

#include <memory>
#include <vector>

#include "net/link.h"
#include "net/message.h"
#include "util/random.h"

namespace besync {

/// Network topology parameters (paper Section 6: average cache-side
/// bandwidth B_C, average source-side bandwidth B_S, maximum relative
/// bandwidth change rate mB).
struct NetworkConfig {
  int num_sources = 1;
  /// Average cache-side bandwidth C(t), messages/second.
  double cache_bandwidth_avg = 10.0;
  /// Average source-side bandwidth B_j(t), messages/second. <= 0 means
  /// unconstrained (the CGM polling model assumes no source-side limits).
  double source_bandwidth_avg = -1.0;
  /// Maximum relative rate of bandwidth change (mB). 0 = constant bandwidth.
  double bandwidth_change_rate = 0.0;
};

/// The star topology of Figure 1: m source-side links feeding one shared
/// cache-side link. Also carries the cache -> source control channel
/// (feedback / poll requests), delivered with one tick of latency.
class Network {
 public:
  Network(const NetworkConfig& config, Rng* rng);

  /// Advances all links into the tick [tick_start, tick_start+tick_len) and
  /// makes control messages deposited during the previous tick deliverable.
  void BeginTick(double tick_start, double tick_len);

  Link& cache_link() { return *cache_link_; }
  const Link& cache_link() const { return *cache_link_; }
  Link& source_link(int source_index);
  int num_sources() const { return static_cast<int>(source_links_.size()); }

  /// Deposits a cache -> source control message; it becomes available via
  /// TakeSourceMail() at the next tick.
  void SendToSource(int source_index, Message message);

  /// Drains the control messages deliverable to `source_index` this tick.
  std::vector<Message> TakeSourceMail(int source_index);

  /// Resets link statistics (end of warm-up).
  void ResetStats();

  const NetworkConfig& config() const { return config_; }

 private:
  NetworkConfig config_;
  std::unique_ptr<Link> cache_link_;
  std::vector<std::unique_ptr<Link>> source_links_;
  // Control-channel double buffer: deposited this tick, delivered next tick.
  std::vector<std::vector<Message>> mail_incoming_;
  std::vector<std::vector<Message>> mail_deliverable_;
};

}  // namespace besync

#endif  // BESYNC_NET_NETWORK_H_
