#include "protocol/sync_protocol.h"

#include "util/logging.h"

namespace besync {
namespace {

/// Today's behavior, extracted: the threshold-driven push phases run
/// unchanged and replicas are served as-is — no validity state exists, so
/// every dispatch point degenerates to the historical code path bit for
/// bit.
class PushRefreshProtocol : public SyncProtocol {
 public:
  using SyncProtocol::SyncProtocol;
  SyncProtocolKind kind() const override { return SyncProtocolKind::kPushRefresh; }
  bool emits_push_refreshes() const override { return true; }
  bool emits_invalidations() const override { return false; }
  bool tracks_validity() const override { return false; }
  bool ReplicaFresh(const ReplicaSyncState&, double) const override { return true; }
  void OnRefreshApplied(ReplicaSyncState*, double) const override {}
  void OnInvalidate(ReplicaSyncState*, double) const override {
    BESYNC_CHECK(false) << "push refresh never emits invalidations";
  }
};

class InvalidationProtocol : public SyncProtocol {
 public:
  using SyncProtocol::SyncProtocol;
  SyncProtocolKind kind() const override { return SyncProtocolKind::kInvalidation; }
  bool emits_push_refreshes() const override { return false; }
  bool emits_invalidations() const override { return true; }
  bool tracks_validity() const override { return true; }
  bool ReplicaFresh(const ReplicaSyncState& state, double) const override {
    return state.valid;
  }
  void OnRefreshApplied(ReplicaSyncState* state, double) const override {
    state->valid = true;
  }
  void OnInvalidate(ReplicaSyncState* state, double) const override {
    state->valid = false;
  }
  void OnCacheRestart(ReplicaSyncState* state, double) const override {
    state->valid = false;
  }
};

class TtlLeaseProtocol : public SyncProtocol {
 public:
  using SyncProtocol::SyncProtocol;
  SyncProtocolKind kind() const override { return SyncProtocolKind::kTtlLease; }
  bool emits_push_refreshes() const override { return false; }
  bool emits_invalidations() const override { return false; }
  bool tracks_validity() const override { return true; }
  double initial_lease_expiry() const override { return config().ttl; }
  bool ReplicaFresh(const ReplicaSyncState& state, double now) const override {
    return now < state.lease_expiry;
  }
  void OnRefreshApplied(ReplicaSyncState* state, double now) const override {
    state->lease_expiry = now + config().ttl;
  }
  void OnInvalidate(ReplicaSyncState*, double) const override {
    BESYNC_CHECK(false) << "TTL/lease sources never emit invalidations";
  }
  void OnCacheRestart(ReplicaSyncState* state, double now) const override {
    state->lease_expiry = now;  // expired: the next read misses and pulls
  }
};

}  // namespace

std::string SyncProtocolKindToString(SyncProtocolKind kind) {
  switch (kind) {
    case SyncProtocolKind::kPushRefresh:
      return "push-refresh";
    case SyncProtocolKind::kInvalidation:
      return "invalidation";
    case SyncProtocolKind::kTtlLease:
      return "ttl-lease";
  }
  return "unknown";
}

std::unique_ptr<SyncProtocol> SyncProtocol::Make(const SyncProtocolConfig& config) {
  BESYNC_CHECK_GE(config.invalidate_cost, 1)
      << "invalidate_cost must be a positive bandwidth-unit count";
  BESYNC_CHECK_GE(config.max_invalidate_batch, 1);
  BESYNC_CHECK_GT(config.ttl, 0.0) << "lease durations must be positive";
  switch (config.kind) {
    case SyncProtocolKind::kPushRefresh:
      return std::unique_ptr<SyncProtocol>(new PushRefreshProtocol(config));
    case SyncProtocolKind::kInvalidation:
      return std::unique_ptr<SyncProtocol>(new InvalidationProtocol(config));
    case SyncProtocolKind::kTtlLease:
      return std::unique_ptr<SyncProtocol>(new TtlLeaseProtocol(config));
  }
  BESYNC_CHECK(false) << "unknown protocol kind";
  return nullptr;
}

}  // namespace besync
