#ifndef BESYNC_PROTOCOL_SYNC_PROTOCOL_H_
#define BESYNC_PROTOCOL_SYNC_PROTOCOL_H_

#include <cstdint>
#include <limits>
#include <memory>
#include <string>

namespace besync {

/// The consistency protocol a run synchronizes replicas with. The paper's
/// engine hard-coded best-effort push refresh; this layer makes the classic
/// alternatives first-class competitors scored by the same divergence /
/// staleness machinery (see DESIGN.md, "Invalidation and lease semantics vs
/// time-averaged divergence").
enum class SyncProtocolKind {
  /// The paper's protocol (Sections 5-6): sources push refreshed values for
  /// over-threshold objects; replicas are always served as-is. The
  /// extracted default — bitwise identical to the pre-protocol engine.
  kPushRefresh,
  /// Sources emit tiny kInvalidate notifications on updates instead of
  /// values; an invalidated replica turns the next read into a miss pull.
  /// One notification per replica per staleness episode: once a replica is
  /// known-invalid, further updates cost nothing until a pull re-fills it.
  kInvalidation,
  /// Pure TTL/leases: zero steady-state source messages. Every delivery
  /// grants the replica a lease of `ttl` seconds; reads past the expiry
  /// miss and pull.
  kTtlLease,
};

std::string SyncProtocolKindToString(SyncProtocolKind kind);

/// Protocol selection plus the knobs of the non-default protocols.
struct SyncProtocolConfig {
  SyncProtocolKind kind = SyncProtocolKind::kPushRefresh;
  /// Link cost of one kInvalidate message (invalidations carry no value, so
  /// they are cheap relative to refreshes of costly objects even at 1).
  int64_t invalidate_cost = 1;
  /// Batched/multicast emission: up to this many replica invalidations are
  /// packaged into one `invalidate_cost` message per cache channel — the
  /// coded-multicast amortization analogue over the per-cache link model.
  int max_invalidate_batch = 1;
  /// Lease duration in seconds (kTtlLease).
  double ttl = 50.0;
};

/// Per-replica synchronization state kept next to residency in the cache
/// store. Push refresh never consults it; invalidation toggles `valid`;
/// TTL/leases advance `lease_expiry` on every delivery.
struct ReplicaSyncState {
  bool valid = true;
  double lease_expiry = std::numeric_limits<double>::infinity();
};

/// One consistency protocol: what a source emits when an object is updated,
/// what a cache does when a protocol message arrives, and whether a read may
/// be served from a resident replica. The scheduler dispatches its tick
/// phases through this interface; the source and read-path agents consult
/// it at their emission / receipt / read decision points.
class SyncProtocol {
 public:
  static std::unique_ptr<SyncProtocol> Make(const SyncProtocolConfig& config);

  virtual ~SyncProtocol() = default;

  virtual SyncProtocolKind kind() const = 0;
  std::string name() const { return SyncProtocolKindToString(kind()); }
  const SyncProtocolConfig& config() const { return config_; }

  /// Whether the adaptive push machinery runs at all: the threshold send
  /// phase (step 2) and the surplus-feedback phase (step 4). False for
  /// invalidation and TTL — their sources never push values unprompted, so
  /// threshold feedback would spend bandwidth steering nothing.
  virtual bool emits_push_refreshes() const = 0;

  /// Whether sources emit kInvalidate messages on updates (step 2 becomes
  /// the invalidation send phase).
  virtual bool emits_invalidations() const = 0;

  /// Whether replicas carry ReplicaSyncState the read path must check: a
  /// resident replica only serves a read when ReplicaFresh() also holds.
  virtual bool tracks_validity() const = 0;

  /// Lease expiry granted to the synchronized replicas at run start
  /// (replicas begin in sync at t = 0). Infinity when leases do not apply.
  virtual double initial_lease_expiry() const {
    return std::numeric_limits<double>::infinity();
  }

  /// Whether a resident replica may serve a read at `now`.
  virtual bool ReplicaFresh(const ReplicaSyncState& state, double now) const = 0;

  /// Delivery hook: a refresh (push or pull response) was applied to the
  /// replica at `now`.
  virtual void OnRefreshApplied(ReplicaSyncState* state, double now) const = 0;

  /// Receipt hook: a kInvalidate notification for the replica landed at
  /// `now`.
  virtual void OnInvalidate(ReplicaSyncState* state, double now) const = 0;

  /// Fault hook: the replica's cache crashed and restarted at `now`, losing
  /// all in-memory content and protocol state. The restarted replica must
  /// not be servable until refreshed: invalidation marks it invalid, TTL
  /// expires its lease. Push refresh keeps no validity state — a no-op.
  virtual void OnCacheRestart(ReplicaSyncState* state, double now) const {
    (void)state;
    (void)now;
  }

 protected:
  explicit SyncProtocol(const SyncProtocolConfig& config) : config_(config) {}

 private:
  SyncProtocolConfig config_;
};

}  // namespace besync

#endif  // BESYNC_PROTOCOL_SYNC_PROTOCOL_H_
