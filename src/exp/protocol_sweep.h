#ifndef BESYNC_EXP_PROTOCOL_SWEEP_H_
#define BESYNC_EXP_PROTOCOL_SWEEP_H_

#include <vector>

#include "exp/experiment.h"
#include "exp/runner.h"

namespace besync {

/// Sweep the consistency protocols (push refresh, invalidation, TTL/lease)
/// against each other across operating regimes: client read rate x cache
/// bandwidth x relay depth, on the cooperative scheduler. Every protocol
/// runs on the exact same workload coordinates, so each regime is a direct
/// head-to-head comparison — the crossover table bench_protocol prints.
struct ProtocolSweepConfig {
  /// Base experiment: workload shape, harness timing, bandwidth knobs.
  /// The protocol / read-rate / bandwidth / relay-tier knobs are overridden
  /// per sweep point; the scheduler is always cooperative.
  ExperimentConfig base;
  /// Protocols compared at every regime.
  std::vector<SyncProtocolKind> protocols = {SyncProtocolKind::kPushRefresh,
                                             SyncProtocolKind::kInvalidation,
                                             SyncProtocolKind::kTtlLease};
  /// Client read rates per cache (reads/second) to sweep. Must be > 0:
  /// the pull-based protocols need reads to refill invalid replicas.
  std::vector<double> read_rates = {0.5, 4.0, 16.0};
  /// Per-cache bandwidth budgets B_C (messages/second) to sweep.
  std::vector<double> bandwidths = {4.0, 12.0};
  /// Relay-tree depths to sweep (0 = the flat one-hop star).
  std::vector<int> relay_tiers = {0};
  /// TTL applied at every ttl-lease point (seconds).
  double ttl = 50.0;
  /// Invalidation batching limit applied at every invalidation point.
  int invalidate_batch = 1;
  /// Worker threads; 1 = sequential, <= 0 = hardware concurrency.
  int threads = 1;
};

/// One protocol sweep point.
struct ProtocolSweepPoint {
  SyncProtocolKind protocol = SyncProtocolKind::kPushRefresh;
  double read_rate = 0.0;
  double bandwidth = 0.0;
  int relay_tiers = 0;
  RunResult result;
  double wall_seconds = 0.0;

  /// Fraction of client reads served fresh from a resident replica.
  double hit_rate() const {
    return result.scheduler.reads_total > 0
               ? static_cast<double>(result.scheduler.read_hits) /
                     static_cast<double>(result.scheduler.reads_total)
               : 0.0;
  }
};

/// Runs the sweep, regime-major (read_rate / bandwidth / tiers) with the
/// protocols innermost, so consecutive points are the head-to-head
/// competitors of one regime. Each point rebuilds its private workload —
/// correct because points share one workload config and differ only in
/// knobs that consume no generator randomness. When `raw_results` is
/// non-null it receives the underlying runner JobResults in the same
/// order, even when the sweep returns an error.
Result<std::vector<ProtocolSweepPoint>> RunProtocolSweep(
    const ProtocolSweepConfig& config,
    std::vector<JobResult>* raw_results = nullptr);

}  // namespace besync

#endif  // BESYNC_EXP_PROTOCOL_SWEEP_H_
