#include "exp/multicache.h"

#include "exp/runner.h"

namespace besync {

Result<std::vector<MulticachePoint>> RunMulticacheSweep(
    const MulticacheConfig& config, std::vector<JobResult>* raw_results) {
  // One runner job per (pattern, cache count), pattern-major. Each job
  // builds its own workload (see the sharing hazard in exp/runner.h), so
  // points are safe to run concurrently.
  std::vector<ExperimentJob> jobs;
  for (InterestPattern pattern : config.patterns) {
    for (int num_caches : config.cache_counts) {
      if (num_caches < 1) {
        return Status::InvalidArgument("cache_counts entries must be >= 1");
      }
      ExperimentJob job;
      job.name = InterestPatternToString(pattern) + "/N=" + std::to_string(num_caches);
      job.config = config.base;
      job.config.scheduler = SchedulerKind::kCooperative;
      job.config.workload.num_caches = num_caches;
      // Any pattern degenerates to the paper's topology at one cache; keep
      // the sweep uniform by mapping N=1 onto the canonical single-cache
      // pattern (identical interest map, no generator divergence).
      job.config.workload.interest_pattern =
          num_caches == 1 ? InterestPattern::kSingleCache : pattern;
      if (!config.bandwidth_per_cache) {
        job.config.cache_bandwidth_avg =
            config.base.cache_bandwidth_avg / static_cast<double>(num_caches);
      }
      jobs.push_back(std::move(job));
    }
  }

  RunnerOptions options;
  options.threads = config.threads;
  const std::vector<JobResult> results = RunExperiments(jobs, options);
  if (raw_results != nullptr) *raw_results = results;

  std::vector<MulticachePoint> points;
  points.reserve(results.size());
  size_t k = 0;
  for (InterestPattern pattern : config.patterns) {
    for (int num_caches : config.cache_counts) {
      const JobResult& job = results[k++];
      if (!job.status.ok()) return job.status;
      MulticachePoint point;
      point.num_caches = num_caches;
      point.pattern = pattern;
      point.total_replicas = job.result.total_replicas;
      point.result = job.result;
      point.wall_seconds = job.wall_seconds;
      points.push_back(std::move(point));
    }
  }
  return points;
}

}  // namespace besync
