#include "exp/multicache.h"

#include "exp/runner.h"

namespace besync {

Result<std::vector<MulticachePoint>> RunMulticacheSweep(
    const MulticacheConfig& config, std::vector<JobResult>* raw_results) {
  // One runner job per (pattern, cache count), pattern-major. Each job
  // builds its own workload (see the sharing hazard in exp/runner.h), so
  // points are safe to run concurrently.
  std::vector<ExperimentJob> jobs;
  for (InterestPattern pattern : config.patterns) {
    for (int num_caches : config.cache_counts) {
      if (num_caches < 1) {
        return Status::InvalidArgument("cache_counts entries must be >= 1");
      }
      ExperimentJob job;
      job.name = InterestPatternToString(pattern) + "/N=" + std::to_string(num_caches);
      job.config = config.base;
      job.config.scheduler = SchedulerKind::kCooperative;
      job.config.workload.num_caches = num_caches;
      job.config.workload.read = config.read;
      // Any pattern degenerates to the paper's topology at one cache; keep
      // the sweep uniform by mapping N=1 onto the canonical single-cache
      // pattern (identical interest map, no generator divergence).
      job.config.workload.interest_pattern =
          num_caches == 1 ? InterestPattern::kSingleCache : pattern;
      if (!config.bandwidth_per_cache) {
        job.config.cache_bandwidth_avg =
            config.base.cache_bandwidth_avg / static_cast<double>(num_caches);
      }
      if (!config.topology.flat()) {
        if (const Status status = config.topology.Validate(num_caches);
            !status.ok()) {
          return status;
        }
        job.config.topology = config.topology;
        job.config.relay_forward = config.relay_forward;
        job.name += "/" + TopologyLabel(config.topology);
      }
      jobs.push_back(std::move(job));
    }
  }

  RunnerOptions options;
  options.threads = config.threads;
  const std::vector<JobResult> results = RunExperiments(jobs, options);
  if (raw_results != nullptr) *raw_results = results;

  std::vector<MulticachePoint> points;
  points.reserve(results.size());
  size_t k = 0;
  for (InterestPattern pattern : config.patterns) {
    for (int num_caches : config.cache_counts) {
      const JobResult& job = results[k++];
      if (!job.status.ok()) return job.status;
      MulticachePoint point;
      point.num_caches = num_caches;
      point.pattern = pattern;
      point.total_replicas = job.result.total_replicas;
      point.result = job.result;
      point.wall_seconds = job.wall_seconds;
      points.push_back(std::move(point));
    }
  }
  return points;
}

Result<std::vector<TopologySweepPoint>> RunTopologySweep(
    const TopologySweepConfig& config, std::vector<JobResult>* raw_results) {
  const int leaves = config.base.workload.num_caches;
  if (leaves < 1) return Status::InvalidArgument("workload.num_caches must be >= 1");
  if (config.fanout < 1) return Status::InvalidArgument("fanout must be >= 1");
  if (config.forward_policies.empty()) {
    return Status::InvalidArgument("forward_policies must be non-empty");
  }
  // The capacity budget being held constant across depths: the flat
  // topology's total leaf-edge bandwidth.
  const double total_bandwidth =
      config.base.cache_bandwidth_avg * static_cast<double>(leaves);

  struct PointShape {
    int relay_tiers;
    RelayForwardPolicy forward;
    int num_edges;
    double leaf_edge_bandwidth;
  };
  std::vector<ExperimentJob> jobs;
  std::vector<PointShape> shapes;
  for (int tiers : config.relay_tier_counts) {
    if (tiers < 0) return Status::InvalidArgument("relay tier counts must be >= 0");
    TopologySpec spec = MakeRelayTree(leaves, config.fanout, tiers);
    // Edge e gets the share of the total proportional to the leaves whose
    // traffic crosses it; all leaf edges weigh 1, so they share one value.
    const std::vector<int64_t> weights = spec.SubtreeLeafCounts();
    double weight_sum = 0.0;
    for (int64_t w : weights) weight_sum += static_cast<double>(w);
    const int num_edges = tiers == 0 ? leaves : spec.num_nodes();
    const double leaf_bandwidth =
        tiers == 0 ? config.base.cache_bandwidth_avg
                   : total_bandwidth / weight_sum;
    if (tiers > 0) {
      spec.edge_bandwidth.resize(static_cast<size_t>(spec.num_nodes()));
      spec.relay_egress_bandwidth.assign(static_cast<size_t>(spec.num_nodes()), 0.0);
      for (int n = 0; n < spec.num_nodes(); ++n) {
        spec.edge_bandwidth[n] =
            total_bandwidth * static_cast<double>(weights[n]) / weight_sum;
        // Symmetric relay: forwarding capacity == uplink capacity (left at
        // 0 for leaves, which have no egress).
        if (n >= leaves) spec.relay_egress_bandwidth[n] = spec.edge_bandwidth[n];
      }
    }
    // Flat has no store to order, so only the first policy runs there.
    const int num_policies =
        tiers == 0 ? 1 : static_cast<int>(config.forward_policies.size());
    for (int p = 0; p < num_policies; ++p) {
      const RelayForwardPolicy forward = config.forward_policies[p];
      ExperimentJob job;
      job.config = config.base;
      job.config.scheduler = SchedulerKind::kCooperative;
      job.config.topology = spec;
      job.config.relay_forward = forward;
      // Leaf links resolve from the topology's absolute edge bandwidths;
      // keep the scalar consistent for JSON/table grid coordinates.
      job.config.cache_bandwidth_avg = leaf_bandwidth;
      job.name = tiers == 0 ? "flat"
                            : std::to_string(tiers + 1) + "-tier(f=" +
                                  std::to_string(config.fanout) + ")," +
                                  RelayForwardPolicyToString(forward);
      jobs.push_back(std::move(job));
      shapes.push_back(PointShape{tiers, forward, num_edges, leaf_bandwidth});
    }
  }

  RunnerOptions options;
  options.threads = config.threads;
  const std::vector<JobResult> results = RunExperiments(jobs, options);
  if (raw_results != nullptr) *raw_results = results;

  std::vector<TopologySweepPoint> points;
  points.reserve(results.size());
  for (size_t k = 0; k < results.size(); ++k) {
    if (!results[k].status.ok()) return results[k].status;
    TopologySweepPoint point;
    point.relay_tiers = shapes[k].relay_tiers;
    point.forward = shapes[k].forward;
    point.num_edges = shapes[k].num_edges;
    point.leaf_edge_bandwidth = shapes[k].leaf_edge_bandwidth;
    point.result = results[k].result;
    point.wall_seconds = results[k].wall_seconds;
    points.push_back(std::move(point));
  }
  return points;
}

}  // namespace besync
