#include "exp/multicache.h"

#include <chrono>

namespace besync {

Result<std::vector<MulticachePoint>> RunMulticacheSweep(
    const MulticacheConfig& config) {
  std::vector<MulticachePoint> points;
  for (InterestPattern pattern : config.patterns) {
    for (int num_caches : config.cache_counts) {
      if (num_caches < 1) {
        return Status::InvalidArgument("cache_counts entries must be >= 1");
      }
      ExperimentConfig experiment = config.base;
      experiment.scheduler = SchedulerKind::kCooperative;
      experiment.workload.num_caches = num_caches;
      // Any pattern degenerates to the paper's topology at one cache; keep
      // the sweep uniform by mapping N=1 onto the canonical single-cache
      // pattern (identical interest map, no generator divergence).
      experiment.workload.interest_pattern =
          num_caches == 1 ? InterestPattern::kSingleCache : pattern;
      if (!config.bandwidth_per_cache) {
        experiment.cache_bandwidth_avg =
            config.base.cache_bandwidth_avg / static_cast<double>(num_caches);
      }

      Workload workload;
      BESYNC_ASSIGN_OR_RETURN(workload, MakeWorkload(experiment.workload));

      MulticachePoint point;
      point.num_caches = num_caches;
      point.pattern = pattern;
      point.total_replicas = workload.total_replicas();
      const auto start = std::chrono::steady_clock::now();
      BESYNC_ASSIGN_OR_RETURN(point.result,
                              RunExperimentOnWorkload(experiment, &workload));
      point.wall_seconds =
          std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
              .count();
      points.push_back(std::move(point));
    }
  }
  return points;
}

}  // namespace besync
