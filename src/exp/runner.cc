#include "exp/runner.h"

#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <fstream>

#include "exp/sweep.h"
#include "util/logging.h"
#include "util/thread_pool.h"

namespace besync {
namespace {

/// Shortest decimal representation that round-trips to the exact double —
/// a pure function of the value, so serialized grids are byte-stable.
std::string JsonNumber(double value) {
  if (!std::isfinite(value)) return "null";  // JSON has no NaN/Inf
  char buffer[32];
  for (int precision = 15; precision <= 17; ++precision) {
    std::snprintf(buffer, sizeof(buffer), "%.*g", precision, value);
    if (std::strtod(buffer, nullptr) == value) break;
  }
  return buffer;
}

std::string JsonString(const std::string& text) {
  std::string out = "\"";
  for (char c : text) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\t':
        out += "\\t";
        break;
      case '\r':
        out += "\\r";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char escape[8];
          std::snprintf(escape, sizeof(escape), "\\u%04x", c);
          out += escape;
        } else {
          out += c;
        }
    }
  }
  out += '"';
  return out;
}

/// Times `run` (which includes any workload build/clone cost) and unpacks
/// its Result into `out`.
template <typename Run>
void TimedRun(JobResult* out, const Run& run) {
  const auto start = std::chrono::steady_clock::now();
  Result<RunResult> result = run();
  out->wall_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start).count();
  if (result.ok()) {
    out->result = std::move(result).ValueOrDie();
  } else {
    out->status = result.status();
  }
}

void RunOneJob(const ExperimentJob& job, JobResult* out) {
  out->name = job.name;
  out->config = job.config;
  TimedRun(out, [&job] { return RunExperiment(job.config); });
}

void RunOneJobOnClone(const Workload& base_workload, const ExperimentJob& job,
                      JobResult* out) {
  out->name = job.name;
  out->config = job.config;
  // The base workload is authoritative for the topology: the stamped count
  // configures the cooperative scheduler and the JSON grid coordinates.
  out->config.workload.num_caches = base_workload.num_caches;
  // Likewise for the read-path knobs it carries (read-enabled clone grids
  // serialize their read coordinates and stats).
  out->config.workload.read = base_workload.read;
  TimedRun(out, [&base_workload, out] {
    Workload clone = CloneWorkload(base_workload);
    return RunExperimentOnWorkload(out->config, &clone);
  });
}

/// Shared scheduling skeleton: runs `run_one(i, &results[i])` for every job
/// index, `options.threads` at a time, with results in index order.
template <typename RunOne>
std::vector<JobResult> RunAll(size_t num_jobs, const RunnerOptions& options,
                              const RunOne& run_one) {
  std::vector<JobResult> results(num_jobs);
  SweepProgress progress(options.progress_label.empty() ? "runner"
                                                        : options.progress_label,
                         static_cast<int>(num_jobs));
  const bool show_progress = !options.progress_label.empty();

  const int threads =
      options.threads <= 0 ? ThreadPool::HardwareThreads() : options.threads;
  if (threads == 1 || num_jobs <= 1) {
    for (size_t i = 0; i < num_jobs; ++i) {
      run_one(i, &results[i]);
      if (show_progress) progress.Step();
    }
  } else {
    // Each task writes only its own result slot; the vector is pre-sized so
    // no reallocation happens under the workers' feet.
    ThreadPool pool(threads);
    for (size_t i = 0; i < num_jobs; ++i) {
      pool.Submit([&results, &progress, &run_one, show_progress, i] {
        run_one(i, &results[i]);
        if (show_progress) progress.Step();
      });
    }
    pool.Wait();
  }
  if (show_progress) progress.Finish();
  return results;
}

/// Whether a job's serialized row carries read-path fields: any read
/// stream, a finite capacity (whose evictions are otherwise invisible), or
/// a run that counted reads (trace-driven). Purely a function of the job's
/// config and deterministic stats, so serialized grids stay byte-identical
/// at any thread count — and rows of runs with the read path fully
/// disabled keep their historical bytes exactly.
bool ReadFieldsApply(const JobResult& job) {
  return job.config.workload.read.read_rate > 0.0 ||
         job.config.workload.read.capacity > 0 ||
         job.result.scheduler.reads_total > 0;
}

/// Whether a job's serialized row carries consistency-protocol fields. Only
/// non-push-refresh jobs do: a pure function of the job's config, so every
/// historical (push-refresh) grid keeps its exact bytes.
bool ProtocolFieldsApply(const JobResult& job) {
  return job.config.protocol.kind != SyncProtocolKind::kPushRefresh;
}

/// Whether a job's serialized row carries fault-injection fields: a fault
/// generator enabled on the config, or a run whose (possibly hand-built)
/// schedule applied events. A pure function of the job's config and
/// deterministic stats, so fault-free grids keep their historical bytes.
bool FaultFieldsApply(const JobResult& job) {
  const SchedulerStats& s = job.result.scheduler;
  return job.config.workload.fault.enabled() || s.cache_crashes > 0 ||
         s.relay_failures > 0 || s.link_down_events > 0 ||
         s.slowdown_events > 0;
}

}  // namespace

uint64_t DeriveJobSeed(uint64_t base, uint64_t index) {
  // SplitMix64 (Steele et al.) over the combined stream position; never
  // returns 0 accidentally colliding grids with "unseeded" configs.
  uint64_t z = base + 0x9e3779b97f4a7c15ull * (index + 1);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
  z = z ^ (z >> 31);
  return z == 0 ? 0x9e3779b97f4a7c15ull : z;
}

std::vector<JobResult> RunExperiments(const std::vector<ExperimentJob>& jobs,
                                      const RunnerOptions& options) {
  return RunAll(jobs.size(), options,
                [&jobs](size_t i, JobResult* out) { RunOneJob(jobs[i], out); });
}

std::vector<JobResult> RunExperimentsOnWorkload(const Workload& base_workload,
                                                const std::vector<ExperimentJob>& jobs,
                                                const RunnerOptions& options) {
  return RunAll(jobs.size(), options,
                [&base_workload, &jobs](size_t i, JobResult* out) {
                  RunOneJobOnClone(base_workload, jobs[i], out);
                });
}

void WriteResultsJson(std::ostream& os, const std::vector<JobResult>& results,
                      const std::string& extra_top_level) {
  os << "{\n  \"schema\": \"besync.run_results.v1\",\n  \"results\": [";
  for (size_t i = 0; i < results.size(); ++i) {
    const JobResult& job = results[i];
    const RunResult& r = job.result;
    os << (i == 0 ? "\n" : ",\n");
    os << "    {\"name\": " << JsonString(job.name)
       << ", \"scheduler\": " << JsonString(SchedulerKindToString(job.config.scheduler))
       << ", \"policy\": " << JsonString(PolicyKindToString(job.config.policy))
       << ", \"metric\": " << JsonString(MetricKindToString(job.config.metric))
       << ", \"num_caches\": " << job.config.workload.num_caches
       << ", \"cache_bandwidth_avg\": " << JsonNumber(job.config.cache_bandwidth_avg)
       << ", \"source_bandwidth_avg\": " << JsonNumber(job.config.source_bandwidth_avg)
       << ", \"loss_rate\": " << JsonNumber(job.config.loss_rate)
       << ", \"workload_seed\": " << job.config.workload.seed
       << ", \"ok\": " << (job.status.ok() ? "true" : "false")
       << ", \"error\": " << JsonString(job.status.ok() ? "" : job.status.ToString())
       << ",\n     \"total_weighted_divergence\": "
       << JsonNumber(r.total_weighted_divergence) << ", \"per_cache_weighted\": [";
    for (size_t c = 0; c < r.per_cache_weighted.size(); ++c) {
      os << (c == 0 ? "" : ", ") << JsonNumber(r.per_cache_weighted[c]);
    }
    os << "], \"per_object_weighted\": " << JsonNumber(r.per_object_weighted)
       << ", \"per_object_unweighted\": " << JsonNumber(r.per_object_unweighted)
       << ", \"total_replicas\": " << r.total_replicas
       << ", \"refreshes_sent\": " << r.scheduler.refreshes_sent
       << ", \"refreshes_delivered\": " << r.scheduler.refreshes_delivered
       << ", \"feedback_sent\": " << r.scheduler.feedback_sent
       << ", \"polls_sent\": " << r.scheduler.polls_sent
       << ", \"cache_utilization\": " << JsonNumber(r.scheduler.cache_utilization);
    if (ReadFieldsApply(job)) {
      const SchedulerStats& s = r.scheduler;
      const double hit_rate =
          s.reads_total > 0 ? static_cast<double>(s.read_hits) /
                                  static_cast<double>(s.reads_total)
                            : 0.0;
      os << ",\n     \"read_rate\": " << JsonNumber(job.config.workload.read.read_rate)
         << ", \"capacity\": " << job.config.workload.read.capacity
         << ", \"eviction\": "
         << JsonString(EvictionPolicyToString(job.config.workload.read.eviction))
         << ", \"reads_total\": " << s.reads_total
         << ", \"read_hits\": " << s.read_hits
         << ", \"read_misses\": " << s.read_misses
         << ", \"hit_rate\": " << JsonNumber(hit_rate)
         << ", \"pull_requests_sent\": " << s.pull_requests_sent
         << ", \"pulls_delivered\": " << s.pulls_delivered
         << ", \"cache_evictions\": " << s.cache_evictions
         << ", \"read_staleness_mean\": " << JsonNumber(s.read_staleness_mean)
         << ", \"read_staleness_p50\": " << JsonNumber(s.read_staleness_p50)
         << ", \"read_staleness_p95\": " << JsonNumber(s.read_staleness_p95)
         << ", \"read_staleness_p99\": " << JsonNumber(s.read_staleness_p99)
         << ", \"read_miss_latency_mean\": " << JsonNumber(s.read_miss_latency_mean)
         << ", \"pull_bandwidth_share\": " << JsonNumber(s.pull_bandwidth_share);
    }
    if (ProtocolFieldsApply(job)) {
      os << ",\n     \"protocol\": "
         << JsonString(SyncProtocolKindToString(job.config.protocol.kind))
         << ", \"ttl\": " << JsonNumber(job.config.protocol.ttl)
         << ", \"invalidate_batch\": " << job.config.protocol.max_invalidate_batch
         << ", \"invalidations_sent\": " << r.scheduler.invalidations_sent
         << ", \"invalidations_received\": " << r.scheduler.invalidations_received;
    }
    if (FaultFieldsApply(job)) {
      const SchedulerStats& s = r.scheduler;
      os << ",\n     \"recovery_policy\": "
         << JsonString(RecoveryPolicyToString(job.config.recovery_policy))
         << ", \"relay_store_policy\": "
         << JsonString(RelayStorePolicyToString(job.config.relay_store_policy))
         << ", \"cache_crashes\": " << s.cache_crashes
         << ", \"cache_restarts\": " << s.cache_restarts
         << ", \"relay_failures\": " << s.relay_failures
         << ", \"link_down_events\": " << s.link_down_events
         << ", \"slowdown_events\": " << s.slowdown_events
         << ", \"crash_dropped_pulls\": " << s.crash_dropped_pulls
         << ", \"resync_deliveries\": " << s.resync_deliveries
         << ", \"resync_pending\": " << s.resync_pending
         << ", \"time_to_resync_mean\": " << JsonNumber(s.time_to_resync_mean)
         << ", \"time_to_resync_p95\": " << JsonNumber(s.time_to_resync_p95);
    }
    os << "}";
  }
  os << (results.empty() ? "]" : "\n  ]");
  if (!extra_top_level.empty()) os << ",\n  " << extra_top_level;
  os << "\n}\n";
}

Status WriteResultsJson(const std::string& path, const std::vector<JobResult>& results,
                        const std::string& extra_top_level) {
  std::ofstream file(path);
  if (!file) return Status::IOError("cannot open ", path);
  WriteResultsJson(file, results, extra_top_level);
  if (!file.good()) return Status::IOError("write failed for ", path);
  return Status::OK();
}

TablePrinter ResultsTable(const std::vector<JobResult>& results) {
  TablePrinter table({"name", "scheduler", "policy", "caches", "B_C", "B_S", "loss",
                      "total_div", "per_replica", "delivered", "wall_ms", "status"});
  for (const JobResult& job : results) {
    const RunResult& r = job.result;
    const double per_replica =
        r.total_replicas > 0
            ? r.total_weighted_divergence / static_cast<double>(r.total_replicas)
            : 0.0;
    table.AddRow({job.name, SchedulerKindToString(job.config.scheduler),
                  PolicyKindToString(job.config.policy),
                  TablePrinter::Cell(job.config.workload.num_caches),
                  TablePrinter::Cell(job.config.cache_bandwidth_avg),
                  TablePrinter::Cell(job.config.source_bandwidth_avg),
                  TablePrinter::Cell(job.config.loss_rate),
                  TablePrinter::Cell(r.total_weighted_divergence),
                  TablePrinter::Cell(per_replica),
                  TablePrinter::Cell(r.scheduler.refreshes_delivered),
                  TablePrinter::Cell(job.wall_seconds * 1e3),
                  job.status.ok() ? "ok" : job.status.ToString()});
  }
  return table;
}

TablePrinter ResultsCsv(const std::vector<JobResult>& results) {
  // Read-path columns are appended only when some job of the grid enables
  // reads — a pure function of the grid's configs/results, so read-free
  // sweeps keep their historical CSV bytes exactly.
  bool reads = false;
  for (const JobResult& job : results) reads = reads || ReadFieldsApply(job);
  // Likewise for protocol columns: only grids that run a non-push-refresh
  // consistency protocol carry them.
  bool protocols = false;
  for (const JobResult& job : results) protocols = protocols || ProtocolFieldsApply(job);
  // And fault columns: only grids that inject faults carry them.
  bool faults = false;
  for (const JobResult& job : results) faults = faults || FaultFieldsApply(job);
  std::vector<std::string> header{
      "name", "scheduler", "policy", "metric", "num_caches",
      "cache_bandwidth_avg", "source_bandwidth_avg", "loss_rate",
      "workload_seed", "ok", "total_weighted_divergence",
      "per_object_weighted", "per_object_unweighted",
      "total_replicas", "refreshes_sent", "refreshes_delivered",
      "feedback_sent", "polls_sent", "cache_utilization"};
  if (reads) {
    for (const char* column :
         {"read_rate", "capacity", "eviction", "reads_total", "hit_rate",
          "pull_requests_sent", "pulls_delivered", "cache_evictions",
          "read_staleness_mean", "read_staleness_p50", "read_staleness_p95",
          "read_staleness_p99", "read_miss_latency_mean",
          "pull_bandwidth_share"}) {
      header.push_back(column);
    }
  }
  if (protocols) {
    for (const char* column :
         {"protocol", "ttl", "invalidate_batch", "invalidations_sent",
          "invalidations_received"}) {
      header.push_back(column);
    }
  }
  if (faults) {
    for (const char* column :
         {"recovery_policy", "relay_store_policy", "cache_crashes",
          "cache_restarts", "relay_failures", "link_down_events",
          "slowdown_events", "crash_dropped_pulls", "resync_deliveries",
          "resync_pending", "time_to_resync_mean", "time_to_resync_p95"}) {
      header.push_back(column);
    }
  }
  header.push_back("error");
  TablePrinter table(header);
  for (const JobResult& job : results) {
    const RunResult& r = job.result;
    std::vector<std::string> row{
        job.name, SchedulerKindToString(job.config.scheduler),
        PolicyKindToString(job.config.policy),
        MetricKindToString(job.config.metric),
        TablePrinter::Cell(job.config.workload.num_caches),
        JsonNumber(job.config.cache_bandwidth_avg),
        JsonNumber(job.config.source_bandwidth_avg),
        JsonNumber(job.config.loss_rate),
        std::to_string(job.config.workload.seed),
        job.status.ok() ? "true" : "false",
        JsonNumber(r.total_weighted_divergence),
        JsonNumber(r.per_object_weighted),
        JsonNumber(r.per_object_unweighted),
        TablePrinter::Cell(r.total_replicas),
        TablePrinter::Cell(r.scheduler.refreshes_sent),
        TablePrinter::Cell(r.scheduler.refreshes_delivered),
        TablePrinter::Cell(r.scheduler.feedback_sent),
        TablePrinter::Cell(r.scheduler.polls_sent),
        JsonNumber(r.scheduler.cache_utilization)};
    if (reads) {
      const SchedulerStats& s = r.scheduler;
      const double hit_rate =
          s.reads_total > 0 ? static_cast<double>(s.read_hits) /
                                  static_cast<double>(s.reads_total)
                            : 0.0;
      row.push_back(JsonNumber(job.config.workload.read.read_rate));
      row.push_back(std::to_string(job.config.workload.read.capacity));
      row.push_back(EvictionPolicyToString(job.config.workload.read.eviction));
      row.push_back(TablePrinter::Cell(s.reads_total));
      row.push_back(JsonNumber(hit_rate));
      row.push_back(TablePrinter::Cell(s.pull_requests_sent));
      row.push_back(TablePrinter::Cell(s.pulls_delivered));
      row.push_back(TablePrinter::Cell(s.cache_evictions));
      row.push_back(JsonNumber(s.read_staleness_mean));
      row.push_back(JsonNumber(s.read_staleness_p50));
      row.push_back(JsonNumber(s.read_staleness_p95));
      row.push_back(JsonNumber(s.read_staleness_p99));
      row.push_back(JsonNumber(s.read_miss_latency_mean));
      row.push_back(JsonNumber(s.pull_bandwidth_share));
    }
    if (protocols) {
      row.push_back(SyncProtocolKindToString(job.config.protocol.kind));
      row.push_back(JsonNumber(job.config.protocol.ttl));
      row.push_back(std::to_string(job.config.protocol.max_invalidate_batch));
      row.push_back(TablePrinter::Cell(r.scheduler.invalidations_sent));
      row.push_back(TablePrinter::Cell(r.scheduler.invalidations_received));
    }
    if (faults) {
      const SchedulerStats& s = r.scheduler;
      row.push_back(RecoveryPolicyToString(job.config.recovery_policy));
      row.push_back(RelayStorePolicyToString(job.config.relay_store_policy));
      row.push_back(TablePrinter::Cell(s.cache_crashes));
      row.push_back(TablePrinter::Cell(s.cache_restarts));
      row.push_back(TablePrinter::Cell(s.relay_failures));
      row.push_back(TablePrinter::Cell(s.link_down_events));
      row.push_back(TablePrinter::Cell(s.slowdown_events));
      row.push_back(TablePrinter::Cell(s.crash_dropped_pulls));
      row.push_back(TablePrinter::Cell(s.resync_deliveries));
      row.push_back(TablePrinter::Cell(s.resync_pending));
      row.push_back(JsonNumber(s.time_to_resync_mean));
      row.push_back(JsonNumber(s.time_to_resync_p95));
    }
    row.push_back(job.status.ok() ? "" : job.status.ToString());
    table.AddRow(std::move(row));
  }
  return table;
}

}  // namespace besync
