#include "exp/runner.h"

#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <fstream>

#include "exp/sweep.h"
#include "util/logging.h"
#include "util/thread_pool.h"

namespace besync {
namespace {

/// Shortest decimal representation that round-trips to the exact double —
/// a pure function of the value, so serialized grids are byte-stable.
std::string JsonNumber(double value) {
  if (!std::isfinite(value)) return "null";  // JSON has no NaN/Inf
  char buffer[32];
  for (int precision = 15; precision <= 17; ++precision) {
    std::snprintf(buffer, sizeof(buffer), "%.*g", precision, value);
    if (std::strtod(buffer, nullptr) == value) break;
  }
  return buffer;
}

std::string JsonString(const std::string& text) {
  std::string out = "\"";
  for (char c : text) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\t':
        out += "\\t";
        break;
      case '\r':
        out += "\\r";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char escape[8];
          std::snprintf(escape, sizeof(escape), "\\u%04x", c);
          out += escape;
        } else {
          out += c;
        }
    }
  }
  out += '"';
  return out;
}

/// Times `run` (which includes any workload build/clone cost) and unpacks
/// its Result into `out`.
template <typename Run>
void TimedRun(JobResult* out, const Run& run) {
  const auto start = std::chrono::steady_clock::now();
  Result<RunResult> result = run();
  out->wall_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start).count();
  if (result.ok()) {
    out->result = std::move(result).ValueOrDie();
  } else {
    out->status = result.status();
  }
}

void RunOneJob(const ExperimentJob& job, JobResult* out) {
  out->name = job.name;
  out->config = job.config;
  TimedRun(out, [&job] { return RunExperiment(job.config); });
}

void RunOneJobOnClone(const Workload& base_workload, const ExperimentJob& job,
                      JobResult* out) {
  out->name = job.name;
  out->config = job.config;
  // The base workload is authoritative for the topology: the stamped count
  // configures the cooperative scheduler and the JSON grid coordinates.
  out->config.workload.num_caches = base_workload.num_caches;
  TimedRun(out, [&base_workload, out] {
    Workload clone = CloneWorkload(base_workload);
    return RunExperimentOnWorkload(out->config, &clone);
  });
}

/// Shared scheduling skeleton: runs `run_one(i, &results[i])` for every job
/// index, `options.threads` at a time, with results in index order.
template <typename RunOne>
std::vector<JobResult> RunAll(size_t num_jobs, const RunnerOptions& options,
                              const RunOne& run_one) {
  std::vector<JobResult> results(num_jobs);
  SweepProgress progress(options.progress_label.empty() ? "runner"
                                                        : options.progress_label,
                         static_cast<int>(num_jobs));
  const bool show_progress = !options.progress_label.empty();

  const int threads =
      options.threads <= 0 ? ThreadPool::HardwareThreads() : options.threads;
  if (threads == 1 || num_jobs <= 1) {
    for (size_t i = 0; i < num_jobs; ++i) {
      run_one(i, &results[i]);
      if (show_progress) progress.Step();
    }
  } else {
    // Each task writes only its own result slot; the vector is pre-sized so
    // no reallocation happens under the workers' feet.
    ThreadPool pool(threads);
    for (size_t i = 0; i < num_jobs; ++i) {
      pool.Submit([&results, &progress, &run_one, show_progress, i] {
        run_one(i, &results[i]);
        if (show_progress) progress.Step();
      });
    }
    pool.Wait();
  }
  if (show_progress) progress.Finish();
  return results;
}

}  // namespace

uint64_t DeriveJobSeed(uint64_t base, uint64_t index) {
  // SplitMix64 (Steele et al.) over the combined stream position; never
  // returns 0 accidentally colliding grids with "unseeded" configs.
  uint64_t z = base + 0x9e3779b97f4a7c15ull * (index + 1);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
  z = z ^ (z >> 31);
  return z == 0 ? 0x9e3779b97f4a7c15ull : z;
}

std::vector<JobResult> RunExperiments(const std::vector<ExperimentJob>& jobs,
                                      const RunnerOptions& options) {
  return RunAll(jobs.size(), options,
                [&jobs](size_t i, JobResult* out) { RunOneJob(jobs[i], out); });
}

std::vector<JobResult> RunExperimentsOnWorkload(const Workload& base_workload,
                                                const std::vector<ExperimentJob>& jobs,
                                                const RunnerOptions& options) {
  return RunAll(jobs.size(), options,
                [&base_workload, &jobs](size_t i, JobResult* out) {
                  RunOneJobOnClone(base_workload, jobs[i], out);
                });
}

void WriteResultsJson(std::ostream& os, const std::vector<JobResult>& results) {
  os << "{\n  \"schema\": \"besync.run_results.v1\",\n  \"results\": [";
  for (size_t i = 0; i < results.size(); ++i) {
    const JobResult& job = results[i];
    const RunResult& r = job.result;
    os << (i == 0 ? "\n" : ",\n");
    os << "    {\"name\": " << JsonString(job.name)
       << ", \"scheduler\": " << JsonString(SchedulerKindToString(job.config.scheduler))
       << ", \"policy\": " << JsonString(PolicyKindToString(job.config.policy))
       << ", \"metric\": " << JsonString(MetricKindToString(job.config.metric))
       << ", \"num_caches\": " << job.config.workload.num_caches
       << ", \"cache_bandwidth_avg\": " << JsonNumber(job.config.cache_bandwidth_avg)
       << ", \"source_bandwidth_avg\": " << JsonNumber(job.config.source_bandwidth_avg)
       << ", \"loss_rate\": " << JsonNumber(job.config.loss_rate)
       << ", \"workload_seed\": " << job.config.workload.seed
       << ", \"ok\": " << (job.status.ok() ? "true" : "false")
       << ", \"error\": " << JsonString(job.status.ok() ? "" : job.status.ToString())
       << ",\n     \"total_weighted_divergence\": "
       << JsonNumber(r.total_weighted_divergence) << ", \"per_cache_weighted\": [";
    for (size_t c = 0; c < r.per_cache_weighted.size(); ++c) {
      os << (c == 0 ? "" : ", ") << JsonNumber(r.per_cache_weighted[c]);
    }
    os << "], \"per_object_weighted\": " << JsonNumber(r.per_object_weighted)
       << ", \"per_object_unweighted\": " << JsonNumber(r.per_object_unweighted)
       << ", \"total_replicas\": " << r.total_replicas
       << ", \"refreshes_sent\": " << r.scheduler.refreshes_sent
       << ", \"refreshes_delivered\": " << r.scheduler.refreshes_delivered
       << ", \"feedback_sent\": " << r.scheduler.feedback_sent
       << ", \"polls_sent\": " << r.scheduler.polls_sent
       << ", \"cache_utilization\": " << JsonNumber(r.scheduler.cache_utilization)
       << "}";
  }
  os << (results.empty() ? "]" : "\n  ]") << "\n}\n";
}

Status WriteResultsJson(const std::string& path, const std::vector<JobResult>& results) {
  std::ofstream file(path);
  if (!file) return Status::IOError("cannot open ", path);
  WriteResultsJson(file, results);
  if (!file.good()) return Status::IOError("write failed for ", path);
  return Status::OK();
}

TablePrinter ResultsTable(const std::vector<JobResult>& results) {
  TablePrinter table({"name", "scheduler", "policy", "caches", "B_C", "B_S", "loss",
                      "total_div", "per_replica", "delivered", "wall_ms", "status"});
  for (const JobResult& job : results) {
    const RunResult& r = job.result;
    const double per_replica =
        r.total_replicas > 0
            ? r.total_weighted_divergence / static_cast<double>(r.total_replicas)
            : 0.0;
    table.AddRow({job.name, SchedulerKindToString(job.config.scheduler),
                  PolicyKindToString(job.config.policy),
                  TablePrinter::Cell(job.config.workload.num_caches),
                  TablePrinter::Cell(job.config.cache_bandwidth_avg),
                  TablePrinter::Cell(job.config.source_bandwidth_avg),
                  TablePrinter::Cell(job.config.loss_rate),
                  TablePrinter::Cell(r.total_weighted_divergence),
                  TablePrinter::Cell(per_replica),
                  TablePrinter::Cell(r.scheduler.refreshes_delivered),
                  TablePrinter::Cell(job.wall_seconds * 1e3),
                  job.status.ok() ? "ok" : job.status.ToString()});
  }
  return table;
}

TablePrinter ResultsCsv(const std::vector<JobResult>& results) {
  TablePrinter table({"name", "scheduler", "policy", "metric", "num_caches",
                      "cache_bandwidth_avg", "source_bandwidth_avg", "loss_rate",
                      "workload_seed", "ok", "total_weighted_divergence",
                      "per_object_weighted", "per_object_unweighted",
                      "total_replicas", "refreshes_sent", "refreshes_delivered",
                      "feedback_sent", "polls_sent", "cache_utilization", "error"});
  for (const JobResult& job : results) {
    const RunResult& r = job.result;
    table.AddRow({job.name, SchedulerKindToString(job.config.scheduler),
                  PolicyKindToString(job.config.policy),
                  MetricKindToString(job.config.metric),
                  TablePrinter::Cell(job.config.workload.num_caches),
                  JsonNumber(job.config.cache_bandwidth_avg),
                  JsonNumber(job.config.source_bandwidth_avg),
                  JsonNumber(job.config.loss_rate),
                  std::to_string(job.config.workload.seed),
                  job.status.ok() ? "true" : "false",
                  JsonNumber(r.total_weighted_divergence),
                  JsonNumber(r.per_object_weighted),
                  JsonNumber(r.per_object_unweighted),
                  TablePrinter::Cell(r.total_replicas),
                  TablePrinter::Cell(r.scheduler.refreshes_sent),
                  TablePrinter::Cell(r.scheduler.refreshes_delivered),
                  TablePrinter::Cell(r.scheduler.feedback_sent),
                  TablePrinter::Cell(r.scheduler.polls_sent),
                  JsonNumber(r.scheduler.cache_utilization),
                  job.status.ok() ? "" : job.status.ToString()});
  }
  return table;
}

}  // namespace besync
