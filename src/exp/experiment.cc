#include "exp/experiment.h"

#include "util/logging.h"

namespace besync {

std::string SchedulerKindToString(SchedulerKind kind) {
  switch (kind) {
    case SchedulerKind::kCooperative:
      return "cooperative";
    case SchedulerKind::kIdealCooperative:
      return "ideal-cooperative";
    case SchedulerKind::kIdealCacheBased:
      return "ideal-cache-based";
    case SchedulerKind::kCGM1:
      return "cgm1";
    case SchedulerKind::kCGM2:
      return "cgm2";
    case SchedulerKind::kRoundRobin:
      return "round-robin";
  }
  return "unknown";
}

std::unique_ptr<Scheduler> MakeScheduler(const ExperimentConfig& config) {
  switch (config.scheduler) {
    case SchedulerKind::kCooperative: {
      CooperativeConfig cooperative;
      cooperative.num_caches = config.workload.num_caches;
      cooperative.cache_bandwidth_avg = config.cache_bandwidth_avg;
      cooperative.cache_bandwidths = config.cache_bandwidths;
      cooperative.source_bandwidth_avg = config.source_bandwidth_avg;
      cooperative.bandwidth_change_rate = config.bandwidth_change_rate;
      cooperative.policy = config.policy;
      cooperative.source.threshold = config.threshold;
      cooperative.source.monitor = config.monitor;
      cooperative.source.sampling_interval = config.sampling_interval;
      cooperative.source.predictive_sampling = config.predictive_sampling;
      cooperative.source.lambda_mode = config.lambda_mode;
      cooperative.source.cost_aware_priority = config.cost_aware_priority;
      cooperative.source.max_batch = config.max_batch;
      cooperative.source.max_batch_delay = config.max_batch_delay;
      cooperative.loss_rate = config.loss_rate;
      cooperative.topology = config.topology;
      cooperative.relay_forward = config.relay_forward;
      cooperative.protocol = config.protocol;
      cooperative.recovery_policy = config.recovery_policy;
      cooperative.relay_store_policy = config.relay_store_policy;
      cooperative.run_threads = config.run_threads;
      cooperative.send_order_shards = config.send_order_shards;
      cooperative.phase_timer = config.phase_timer;
      cooperative.obs = config.obs;
      return std::make_unique<CooperativeScheduler>(cooperative);
    }
    case SchedulerKind::kIdealCooperative: {
      IdealConfig ideal;
      ideal.cache_bandwidth_avg = config.cache_bandwidth_avg;
      ideal.source_bandwidth_avg = config.source_bandwidth_avg;
      ideal.bandwidth_change_rate = config.bandwidth_change_rate;
      ideal.policy = config.policy;
      ideal.lambda_mode = LambdaEstimateMode::kTrue;
      ideal.cost_aware_priority = config.cost_aware_priority;
      return std::make_unique<IdealCooperativeScheduler>(ideal);
    }
    case SchedulerKind::kIdealCacheBased: {
      CacheDrivenConfig cache_driven;
      cache_driven.cache_bandwidth_avg = config.cache_bandwidth_avg;
      cache_driven.bandwidth_change_rate = config.bandwidth_change_rate;
      return std::make_unique<IdealCacheBasedScheduler>(cache_driven);
    }
    case SchedulerKind::kCGM1:
    case SchedulerKind::kCGM2: {
      CGMConfig cgm = config.cgm;
      cgm.network.cache_bandwidth_avg = config.cache_bandwidth_avg;
      cgm.network.bandwidth_change_rate = config.bandwidth_change_rate;
      cgm.variant = config.scheduler == SchedulerKind::kCGM1
                        ? CGMVariant::kLastModified
                        : CGMVariant::kBooleanChange;
      return std::make_unique<CGMScheduler>(cgm);
    }
    case SchedulerKind::kRoundRobin: {
      CacheDrivenConfig cache_driven;
      cache_driven.cache_bandwidth_avg = config.cache_bandwidth_avg;
      cache_driven.bandwidth_change_rate = config.bandwidth_change_rate;
      return std::make_unique<RoundRobinScheduler>(cache_driven);
    }
  }
  BESYNC_CHECK(false) << "unknown scheduler kind";
  return nullptr;
}

Result<RunResult> RunExperimentOnWorkload(const ExperimentConfig& config,
                                          const Workload* workload) {
  if (workload == nullptr) return Status::InvalidArgument("null workload");
  const bool tree_topology =
      !config.topology.flat() || !workload->topology.flat();
  if (tree_topology && config.scheduler != SchedulerKind::kCooperative) {
    return Status::InvalidArgument(
        "relay topologies are a cooperative-protocol feature; scheduler ",
        SchedulerKindToString(config.scheduler), " models the one-hop star only");
  }
  if ((workload->reads_enabled() || workload->read.capacity > 0) &&
      config.scheduler != SchedulerKind::kCooperative) {
    return Status::InvalidArgument(
        "the client read path (read_rate / read_streams / finite capacity) "
        "is modeled by the cooperative protocol only; scheduler ",
        SchedulerKindToString(config.scheduler),
        " would silently ignore it while its results were labeled with it");
  }
  if (config.obs.enabled && config.scheduler != SchedulerKind::kCooperative) {
    return Status::InvalidArgument(
        "observability (time series / tracing) is instrumented in the "
        "cooperative engine only; scheduler ",
        SchedulerKindToString(config.scheduler),
        " would run silently with no output files");
  }
  if (!workload->faults.empty() &&
      config.scheduler != SchedulerKind::kCooperative) {
    return Status::InvalidArgument(
        "fault schedules are a cooperative-engine feature; scheduler ",
        SchedulerKindToString(config.scheduler),
        " has no crash/failover hooks and would silently run fault-free");
  }
  if (config.protocol.kind != SyncProtocolKind::kPushRefresh) {
    if (config.scheduler != SchedulerKind::kCooperative) {
      return Status::InvalidArgument(
          "consistency protocol ", SyncProtocolKindToString(config.protocol.kind),
          " is a cooperative-engine feature; scheduler ",
          SchedulerKindToString(config.scheduler), " hard-codes its own refresh rule");
    }
    if (!workload->reads_enabled()) {
      return Status::InvalidArgument(
          "consistency protocol ", SyncProtocolKindToString(config.protocol.kind),
          " requires client reads (read_rate or read_streams): without reads "
          "nothing ever pulls an invalid/expired replica back in");
    }
  }
  if (!config.topology.flat()) {
    BESYNC_RETURN_IF_ERROR(config.topology.Validate(workload->num_caches));
  } else if (!workload->topology.flat()) {
    BESYNC_RETURN_IF_ERROR(workload->topology.Validate(workload->num_caches));
  }
  const std::unique_ptr<DivergenceMetric> metric = MakeMetric(config.metric);
  const std::unique_ptr<Scheduler> scheduler = MakeScheduler(config);
  return RunScheduler(workload, metric.get(), config.harness, scheduler.get());
}

Result<RunResult> RunExperiment(const ExperimentConfig& config) {
  Workload workload;
  BESYNC_ASSIGN_OR_RETURN(workload, MakeWorkload(config.workload));
  return RunExperimentOnWorkload(config, &workload);
}

}  // namespace besync
