#include "exp/fault_sweep.h"

namespace besync {

Result<std::vector<FaultSweepPoint>> RunFaultSweep(
    const FaultSweepConfig& config, std::vector<JobResult>* raw_results) {
  if (config.crash_counts.empty()) {
    return Status::InvalidArgument("crash_counts must be non-empty");
  }
  if (config.policies.empty()) {
    return Status::InvalidArgument("policies must be non-empty");
  }
  if (config.protocols.empty()) {
    return Status::InvalidArgument("protocols must be non-empty");
  }
  if (config.relay_tiers.empty()) {
    return Status::InvalidArgument("relay_tiers must be non-empty");
  }
  for (int crashes : config.crash_counts) {
    if (crashes < 0) {
      return Status::InvalidArgument("crash counts must be >= 0, got ", crashes);
    }
  }
  if (config.crash_duration <= 0.0) {
    return Status::InvalidArgument("crash_duration must be > 0, got ",
                                   config.crash_duration);
  }
  if (config.relay_failures < 0) {
    return Status::InvalidArgument("relay_failures must be >= 0, got ",
                                   config.relay_failures);
  }
  for (SyncProtocolKind protocol : config.protocols) {
    if (protocol != SyncProtocolKind::kPushRefresh && config.read_rate <= 0.0) {
      return Status::InvalidArgument(
          "protocol ", SyncProtocolKindToString(protocol),
          " requires read_rate > 0: invalid replicas — crashed or not — are "
          "refilled only by read-triggered pulls");
    }
  }

  struct PointShape {
    int crashes;
    SyncProtocolKind protocol;
    int relay_tiers;
    RecoveryPolicy policy;
  };
  std::vector<ExperimentJob> jobs;
  std::vector<PointShape> shapes;
  for (int crashes : config.crash_counts) {
    for (SyncProtocolKind protocol : config.protocols) {
      for (int tiers : config.relay_tiers) {
        for (RecoveryPolicy policy : config.policies) {
          ExperimentJob job;
          job.config = config.base;
          job.config.scheduler = SchedulerKind::kCooperative;
          job.config.workload.relay_tiers = tiers;
          job.config.protocol.kind = protocol;
          if (config.read_rate > 0.0) {
            job.config.workload.read.read_rate = config.read_rate;
          }
          job.config.recovery_policy = policy;
          job.config.relay_store_policy = config.relay_store_policy;
          FaultScheduleConfig& fault = job.config.workload.fault;
          fault.cache_crashes = crashes;
          // Pin every crash to leaf 0 so "warm" divergence is cleanly the
          // sum over the other caches at every point of the grid.
          fault.crash_cache = 0;
          fault.crash_duration = config.crash_duration;
          // Relay failures only where relays exist; a flat point with
          // relay_failures > 0 would fail schedule validation.
          fault.relay_failures = tiers > 0 ? config.relay_failures : 0;
          fault.window_start = config.window_start;
          fault.window_end = config.window_end;
          fault.seed = config.fault_seed;
          job.name = "crashes=" + std::to_string(crashes) +
                     ",proto=" + SyncProtocolKindToString(protocol) +
                     ",tiers=" + std::to_string(tiers) +
                     ",policy=" + RecoveryPolicyToString(policy);
          jobs.push_back(std::move(job));
          shapes.push_back({crashes, protocol, tiers, policy});
        }
      }
    }
  }

  RunnerOptions options;
  options.threads = config.threads;
  const std::vector<JobResult> results = RunExperiments(jobs, options);
  if (raw_results != nullptr) *raw_results = results;

  std::vector<FaultSweepPoint> points;
  points.reserve(results.size());
  for (size_t k = 0; k < results.size(); ++k) {
    const JobResult& job = results[k];
    if (!job.status.ok()) return job.status;
    FaultSweepPoint point;
    point.crashes = shapes[k].crashes;
    point.protocol = shapes[k].protocol;
    point.relay_tiers = shapes[k].relay_tiers;
    point.policy = shapes[k].policy;
    point.result = job.result;
    point.wall_seconds = job.wall_seconds;
    points.push_back(std::move(point));
  }
  return points;
}

}  // namespace besync
