#ifndef BESYNC_EXP_SWEEP_H_
#define BESYNC_EXP_SWEEP_H_

#include <mutex>
#include <string>
#include <vector>

namespace besync {

/// `count` evenly spaced values from `lo` to `hi` inclusive.
std::vector<double> LinSpace(double lo, double hi, int count);

/// `count` geometrically spaced values from `lo` to `hi` inclusive
/// (lo, hi > 0).
std::vector<double> GeomSpace(double lo, double hi, int count);

/// Simple stderr progress line for long sweeps: "label: k/n". Thread-safe:
/// Step() may be called concurrently from experiment-runner workers.
class SweepProgress {
 public:
  SweepProgress(std::string label, int total);
  /// Marks one configuration finished and reprints the progress line.
  void Step();
  void Finish();

 private:
  std::string label_;
  int total_;
  int done_ = 0;  // guarded by mutex_
  std::mutex mutex_;
};

}  // namespace besync

#endif  // BESYNC_EXP_SWEEP_H_
