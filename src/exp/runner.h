#ifndef BESYNC_EXP_RUNNER_H_
#define BESYNC_EXP_RUNNER_H_

#include <cstdint>
#include <ostream>
#include <string>
#include <vector>

#include "exp/experiment.h"
#include "util/table_printer.h"

namespace besync {

/// One named experiment: a self-contained ExperimentConfig the runner
/// executes via RunExperiment (which builds the job's private workload) or,
/// for RunExperimentsOnWorkload, against a private clone of a shared base
/// workload (in which case `config.workload` is ignored as a generator and
/// serves only as JSON/tables metadata).
///
/// WORKLOAD-SHARING HAZARD: a `Workload` must never be *shared* between
/// concurrently running jobs. RunExperimentOnWorkload mutates state owned
/// by the workload through `ObjectSpec::process` (`Harness::Run` calls
/// `process->Reset()` on every object), so two jobs running over the same
/// instance race and corrupt both runs. The runner therefore offers two
/// safe paths, each giving every job a workload it exclusively owns:
///
///  1. Config rebuild (RunExperiments): each job builds its own workload
///     from `config.workload`. MakeWorkload is deterministic given its
///     config — including the per-object RNG seeds — so jobs with identical
///     workload configs observe bit-identical update streams. Correct for
///     synthetic workloads; costs O(build) per job, and jobs are only as
///     identical as their configs.
///
///  2. Clone per job (RunExperimentsOnWorkload): each job receives a
///     private CloneWorkload deep copy of one caller-supplied base
///     workload. Correct — and the only option — for trace-derived or
///     hand-constructed workloads that no WorkloadConfig can rebuild
///     (e.g. MakeBuoyWorkload); also cheaper when cloning is cheaper than
///     rebuilding. The clones are exact copies, so every job observes the
///     *same* update stream by construction.
///
/// Both paths preserve the cross-scheduler pairing the figure benches rely
/// on, and both produce results that are pure functions of (job config,
/// base workload) — independent of thread count.
struct ExperimentJob {
  std::string name;
  ExperimentConfig config;
};

/// Outcome of one job. `result` is meaningful iff `status.ok()`.
struct JobResult {
  std::string name;
  ExperimentConfig config;  ///< the config that produced the result
  Status status;
  RunResult result;
  /// Wall-clock seconds this job took (nondeterministic; reported in tables
  /// but deliberately excluded from JSON so fixed grids serialize
  /// byte-identically at any thread count).
  double wall_seconds = 0.0;
};

struct RunnerOptions {
  /// Worker threads; 1 runs inline on the calling thread, <= 0 uses the
  /// hardware concurrency.
  int threads = 1;
  /// When nonempty, prints a thread-safe "label: k/n" progress line.
  std::string progress_label;
};

/// Deterministic per-job seed stream (SplitMix64 over base ^ index): gives
/// every job of a grid its own reproducible seed that is stable across
/// reorderings of *execution* (it depends only on the job's position, never
/// on which worker ran it or when).
uint64_t DeriveJobSeed(uint64_t base, uint64_t index);

/// Runs every job, `options.threads` at a time, on a fixed thread pool.
/// Results are indexed like `jobs` regardless of completion order, and every
/// field except `wall_seconds` is a pure function of the job's config — the
/// same grid produces identical results at threads=1 and threads=N.
/// Per-job failures are reported in JobResult::status, never thrown.
std::vector<JobResult> RunExperiments(const std::vector<ExperimentJob>& jobs,
                                      const RunnerOptions& options = RunnerOptions());

/// Clone-per-job variant: runs every job against a private CloneWorkload
/// deep copy of `base_workload` instead of rebuilding from
/// `config.workload` (hazard path 2 above). Use for trace-derived or
/// hand-constructed workloads. The runner stamps each reported config's
/// `workload.num_caches` from the base workload so JSON/table grid
/// coordinates reflect the actual topology; the remaining
/// `config.workload` generator fields are reported as the caller set them
/// (set `config.workload.seed` to the trace seed for faithful metadata).
/// Determinism guarantee matches RunExperiments: identical results and
/// byte-identical JSON at any thread count.
std::vector<JobResult> RunExperimentsOnWorkload(
    const Workload& base_workload, const std::vector<ExperimentJob>& jobs,
    const RunnerOptions& options = RunnerOptions());

/// Serializes results as JSON:
///   {"schema": "besync.run_results.v1",
///    "results": [{"name": ..., "scheduler": ..., "policy": ..., "metric":
///     ..., "num_caches": ..., "cache_bandwidth_avg": ...,
///     "source_bandwidth_avg": ..., "loss_rate": ..., "workload_seed": ...,
///     "ok": ..., "error": ..., "total_weighted_divergence": ...,
///     "per_cache_weighted": [...], "per_object_weighted": ...,
///     "per_object_unweighted": ..., "total_replicas": ...,
///    "refreshes_sent": ..., "refreshes_delivered": ..., "feedback_sent":
///     ..., "polls_sent": ..., "cache_utilization": ...}, ...]}
/// Jobs with the read path enabled (workload read_rate > 0 or a run that
/// counted reads) additionally carry: "read_rate", "capacity", "eviction",
/// "reads_total", "read_hits", "read_misses", "hit_rate",
/// "pull_requests_sent", "pulls_delivered", "cache_evictions",
/// "read_staleness_mean"/"_p50"/"_p95"/"_p99", "read_miss_latency_mean",
/// "pull_bandwidth_share" — read-free rows keep their historical bytes.
/// Doubles use shortest round-trip formatting; timings are excluded, so the
/// bytes depend only on the job configs (BENCH_*.json trajectory tracking).
///
/// `extra_top_level` may carry one additional pre-serialized top-level
/// member (e.g. "\"perf\": {...}"). Empty (the default) keeps the
/// historical bytes; nonempty output is opt-in precisely because such
/// members (wall time, peak RSS) are nondeterministic and would break the
/// byte-identical-at-any-thread-count guarantee above.
void WriteResultsJson(std::ostream& os, const std::vector<JobResult>& results,
                      const std::string& extra_top_level = "");
Status WriteResultsJson(const std::string& path, const std::vector<JobResult>& results,
                        const std::string& extra_top_level = "");

/// Standard summary table over the grid dimensions and headline metrics
/// (benches with bespoke layouts assemble their own from the results).
TablePrinter ResultsTable(const std::vector<JobResult>& results);

/// Machine-readable counterpart of ResultsTable for --csv export: the same
/// per-job rows with every numeric column in shortest round-trip precision
/// (the JSON formatter) and the nondeterministic wall-clock column dropped,
/// so a fixed grid's CSV — like its JSON — is byte-identical at any thread
/// count. Lets sweep consumers skip JSON post-processing entirely.
/// Grids with the read path enabled on any job gain the read-path columns
/// (hit rate, staleness percentiles, pull share) on every row; read-free
/// grids keep the historical column set byte for byte.
TablePrinter ResultsCsv(const std::vector<JobResult>& results);

}  // namespace besync

#endif  // BESYNC_EXP_RUNNER_H_
