#ifndef BESYNC_EXP_FAULT_SWEEP_H_
#define BESYNC_EXP_FAULT_SWEEP_H_

#include <vector>

#include "exp/experiment.h"
#include "exp/runner.h"

namespace besync {

/// Sweep fault intensity x recovery policy x consistency protocol x relay
/// depth on the cooperative scheduler: every point injects a scripted
/// crash/restart schedule (plus relay failures on tree points) and measures
/// how fast the crashed cache resynchronizes against how much steady-state
/// freshness the warm caches give up — the recovery crossover table
/// bench_fault prints.
struct FaultSweepConfig {
  /// Base experiment: workload shape, harness timing, bandwidth knobs.
  /// The fault / protocol / relay-tier / policy knobs are overridden per
  /// sweep point; the scheduler is always cooperative.
  ExperimentConfig base;
  /// Crash/restart counts to sweep (the fault-intensity axis; 0 = the
  /// fault-free baseline point). Every crash targets leaf cache 0, so
  /// "warm" divergence is cleanly the remaining caches' sum.
  std::vector<int> crash_counts = {1, 3};
  /// Recovery policies compared at every regime (innermost: consecutive
  /// points are the head-to-head competitors of one regime).
  std::vector<RecoveryPolicy> policies = {RecoveryPolicy::kNaiveReenqueue,
                                          RecoveryPolicy::kRecoveryPriority};
  /// Consistency protocols to sweep.
  std::vector<SyncProtocolKind> protocols = {SyncProtocolKind::kPushRefresh};
  /// Relay-tree depths to sweep (0 = the flat one-hop star).
  std::vector<int> relay_tiers = {0};
  /// Relay fail/recover pairs injected at every tree point (tiers > 0);
  /// flat points never inject relay failures.
  int relay_failures = 0;
  /// What a failed relay does with its stored messages.
  RelayStorePolicy relay_store_policy = RelayStorePolicy::kDrain;
  /// Downtime between each crash and its restart (seconds).
  double crash_duration = 20.0;
  /// Crash start times are drawn uniformly in [window_start, window_end)
  /// from the dedicated fault stream.
  double window_start = 60.0;
  double window_end = 200.0;
  /// Seed of the dedicated fault-schedule stream (never the workload's).
  uint64_t fault_seed = 1234;
  /// Client read rate applied at every point when > 0. Must be > 0 when a
  /// pull-based protocol (invalidation / TTL) is swept: without reads
  /// nothing refills invalid replicas — crashed or not.
  double read_rate = 4.0;
  /// Worker threads; 1 = sequential, <= 0 = hardware concurrency.
  int threads = 1;
};

/// One fault sweep point.
struct FaultSweepPoint {
  int crashes = 0;
  SyncProtocolKind protocol = SyncProtocolKind::kPushRefresh;
  int relay_tiers = 0;
  RecoveryPolicy policy = RecoveryPolicy::kNaiveReenqueue;
  RunResult result;
  double wall_seconds = 0.0;

  /// Summed time-averaged divergence of the caches that never crash
  /// (everything but leaf 0) — what recovery aggressiveness costs.
  double warm_divergence() const {
    double sum = 0.0;
    for (size_t c = 1; c < result.per_cache_weighted.size(); ++c) {
      sum += result.per_cache_weighted[c];
    }
    return sum;
  }
  double time_to_resync_p95() const {
    return result.scheduler.time_to_resync_p95;
  }
};

/// Runs the sweep, regime-major (crashes / protocol / tiers) with the
/// recovery policies innermost, so consecutive points are the head-to-head
/// competitors of one regime. Each point rebuilds its private workload; the
/// fault schedule draws from its own seed, so points differing only in
/// policy observe bit-identical update streams and fault timings. When
/// `raw_results` is non-null it receives the underlying runner JobResults
/// in the same order, even when the sweep returns an error.
Result<std::vector<FaultSweepPoint>> RunFaultSweep(
    const FaultSweepConfig& config,
    std::vector<JobResult>* raw_results = nullptr);

}  // namespace besync

#endif  // BESYNC_EXP_FAULT_SWEEP_H_
