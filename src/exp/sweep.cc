#include "exp/sweep.h"

#include <cmath>
#include <cstdio>

#include "util/logging.h"

namespace besync {

std::vector<double> LinSpace(double lo, double hi, int count) {
  BESYNC_CHECK_GE(count, 1);
  if (count == 1) return {lo};
  std::vector<double> values(count);
  const double step = (hi - lo) / static_cast<double>(count - 1);
  for (int i = 0; i < count; ++i) values[i] = lo + step * i;
  return values;
}

std::vector<double> GeomSpace(double lo, double hi, int count) {
  BESYNC_CHECK_GT(lo, 0.0);
  BESYNC_CHECK_GT(hi, 0.0);
  BESYNC_CHECK_GE(count, 1);
  if (count == 1) return {lo};
  std::vector<double> values(count);
  const double ratio = std::pow(hi / lo, 1.0 / static_cast<double>(count - 1));
  double value = lo;
  for (int i = 0; i < count; ++i) {
    values[i] = value;
    value *= ratio;
  }
  values[count - 1] = hi;  // avoid drift on the endpoint
  return values;
}

SweepProgress::SweepProgress(std::string label, int total)
    : label_(std::move(label)), total_(total) {}

void SweepProgress::Step() {
  std::lock_guard<std::mutex> lock(mutex_);
  ++done_;
  std::fprintf(stderr, "\r%s: %d/%d", label_.c_str(), done_, total_);
  std::fflush(stderr);
}

void SweepProgress::Finish() { std::fprintf(stderr, "\n"); }

}  // namespace besync
