#ifndef BESYNC_EXP_EXPERIMENT_H_
#define BESYNC_EXP_EXPERIMENT_H_

#include <memory>
#include <string>
#include <vector>

#include "baseline/cgm.h"
#include "baseline/ideal.h"
#include "baseline/ideal_cache.h"
#include "baseline/round_robin.h"
#include "core/system.h"
#include "data/workload.h"
#include "divergence/metric.h"
#include "util/result.h"

namespace besync {

/// The schedulers an experiment can run (the five curves of Figure 6 plus
/// the round-robin sanity baseline).
enum class SchedulerKind {
  kCooperative,       ///< our algorithm (Section 5)
  kIdealCooperative,  ///< idealized oracle (Section 3.3)
  kIdealCacheBased,   ///< CGM with exact rates, no polling cost
  kCGM1,              ///< CGM with last-modified-time estimation + polls
  kCGM2,              ///< CGM with boolean-change estimation + polls
  kRoundRobin,        ///< naive cyclic refresher
};

std::string SchedulerKindToString(SchedulerKind kind);

/// One experiment = one workload + one metric + one scheduler + bandwidth
/// knobs. The bandwidth fields are authoritative here and are copied into
/// whichever scheduler configuration is used.
struct ExperimentConfig {
  SchedulerKind scheduler = SchedulerKind::kCooperative;
  MetricKind metric = MetricKind::kValueDeviation;
  WorkloadConfig workload;
  HarnessConfig harness;

  /// Average cache-side bandwidth B_C (messages/second), for every cache
  /// not covered by `cache_bandwidths`.
  double cache_bandwidth_avg = 10.0;
  /// Optional per-cache average bandwidth overrides (cooperative scheduler;
  /// the topology's cache count comes from the workload's interest map).
  std::vector<double> cache_bandwidths;
  /// Average source-side bandwidth B_S; <= 0 unconstrained.
  double source_bandwidth_avg = -1.0;
  /// Maximum relative bandwidth change rate mB.
  double bandwidth_change_rate = 0.0;

  /// Relay topology override for the cooperative scheduler. Flat (default)
  /// defers to the workload's topology (e.g. WorkloadConfig::relay_tiers);
  /// a non-flat spec here wins — benches use it to pin absolute per-edge
  /// bandwidths. Baseline schedulers model the one-hop star only: running
  /// them on a non-flat topology is an InvalidArgument.
  TopologySpec topology;
  /// Relay store-drain order (tree topologies): FIFO or priority-preserving.
  RelayForwardPolicy relay_forward = RelayForwardPolicy::kFifo;

  /// Consistency protocol (cooperative scheduler): push refresh (default),
  /// invalidation, or TTL/lease. Non-push protocols require client reads
  /// (something must pull invalid/expired replicas back in) and are an
  /// InvalidArgument on the baseline schedulers.
  SyncProtocolConfig protocol;

  /// Fault-recovery knobs (cooperative scheduler; inert without a fault
  /// schedule on the workload). How sources resync a restarted cache, and
  /// what happens to a failed relay's stored messages.
  RecoveryPolicy recovery_policy = RecoveryPolicy::kNaiveReenqueue;
  RelayStorePolicy relay_store_policy = RelayStorePolicy::kDrop;

  /// Priority policy for the cooperative/ideal schedulers.
  PolicyKind policy = PolicyKind::kArea;
  /// Threshold algorithm parameters (cooperative scheduler).
  ThresholdConfig threshold;
  /// Source monitoring (cooperative scheduler).
  MonitorMode monitor = MonitorMode::kTrigger;
  double sampling_interval = 10.0;
  bool predictive_sampling = false;
  LambdaEstimateMode lambda_mode = LambdaEstimateMode::kTrue;
  /// Section 10.1 extensions (cooperative/ideal schedulers).
  bool cost_aware_priority = true;
  int max_batch = 1;
  double max_batch_delay = 5.0;
  double loss_rate = 0.0;
  /// Intra-run worker threads for the cooperative scheduler's sharded tick
  /// phases (CooperativeConfig::run_threads); results are bitwise identical
  /// at any value. Ignored by the baseline schedulers (single-threaded).
  int run_threads = 1;
  /// Opt-in per-shard send-order drawing
  /// (CooperativeConfig::send_order_shards); 0 keeps the historical
  /// main-thread shuffle. Any S > 0 is a different (still deterministic)
  /// run. Ignored by the baseline schedulers.
  int send_order_shards = 0;
  /// Optional per-phase tick profiler (CooperativeConfig::phase_timer);
  /// not owned. Wall-clock numbers — perf output only.
  PhaseTimer* phase_timer = nullptr;
  /// Observability (CooperativeConfig::obs): off by default; enabling it
  /// never changes run results. A cooperative-engine feature — enabled on a
  /// baseline scheduler it is an InvalidArgument rather than silently
  /// producing no output.
  ObsConfig obs;

  /// CGM-specific knobs (bandwidth fields are overwritten from above).
  CGMConfig cgm;
};

/// Builds the scheduler named by `config` (bandwidth knobs applied).
std::unique_ptr<Scheduler> MakeScheduler(const ExperimentConfig& config);

/// Runs the configured scheduler on `workload` (which is Reset and may be
/// reused across calls — update streams are identical across schedulers).
Result<RunResult> RunExperimentOnWorkload(const ExperimentConfig& config,
                                          const Workload* workload);

/// Builds the synthetic workload described by `config.workload`, then runs.
Result<RunResult> RunExperiment(const ExperimentConfig& config);

}  // namespace besync

#endif  // BESYNC_EXP_EXPERIMENT_H_
