#ifndef BESYNC_EXP_MULTICACHE_H_
#define BESYNC_EXP_MULTICACHE_H_

#include <vector>

#include "exp/experiment.h"
#include "exp/runner.h"

namespace besync {

/// Sweep over multi-cache topologies: runs the cooperative scheduler on the
/// base workload replicated over varying cache counts and interest
/// patterns. The single-cache point (num_caches == 1) of any pattern
/// reproduces the paper's topology.
struct MulticacheConfig {
  /// Base experiment: workload shape, harness timing and bandwidth knobs.
  /// The workload's num_caches / interest_pattern fields are overridden per
  /// sweep point; the scheduler is always the cooperative protocol.
  ExperimentConfig base;
  /// Cache counts to sweep.
  std::vector<int> cache_counts = {1, 2, 4, 8};
  /// Interest patterns to sweep at each cache count.
  std::vector<InterestPattern> patterns = {InterestPattern::kPartitionedBySource,
                                           InterestPattern::kZipfOverlap};
  /// true: every cache gets the full base.cache_bandwidth_avg (total
  /// capacity grows with the topology); false: the base bandwidth is split
  /// evenly across caches (fixed total capacity).
  bool bandwidth_per_cache = true;
  /// Relay topology applied to every sweep point (data/topology.h). Flat
  /// (default) keeps the historical one-hop sweep; a non-flat spec requires
  /// every swept cache count to equal its leaf count, so combine it with a
  /// single-entry `cache_counts`.
  TopologySpec topology;
  /// Relay store-drain order when `topology` is a tree.
  RelayForwardPolicy relay_forward = RelayForwardPolicy::kFifo;
  /// Client read-path knobs applied to every sweep point's workload
  /// (data/read_process.h). The defaults keep the sweep write-only — the
  /// historical behavior, byte for byte.
  ReadWorkloadConfig read;
  /// Worker threads for the sweep; 1 = sequential, <= 0 = hardware
  /// concurrency. Each point is an independent job that rebuilds its private
  /// workload from the base config (the runner's config-rebuild path —
  /// correct here because every point *varies* the workload topology; a
  /// shared-by-clone base workload, RunExperimentsOnWorkload, suits grids
  /// that score one fixed workload instead).
  int threads = 1;
};

/// One sweep point result.
struct MulticachePoint {
  int num_caches = 1;
  InterestPattern pattern = InterestPattern::kPartitionedBySource;
  /// Replicas in the workload (the objective's summation domain).
  int64_t total_replicas = 0;
  RunResult result;
  /// Wall-clock seconds spent in the run (scaling diagnostics).
  double wall_seconds = 0.0;
};

/// Runs the sweep: one cooperative run per (pattern, cache count) pair, in
/// pattern-major order. When `raw_results` is non-null it receives the
/// underlying runner JobResults (for WriteResultsJson / --json output),
/// also in pattern-major order, even when the sweep returns an error.
Result<std::vector<MulticachePoint>> RunMulticacheSweep(
    const MulticacheConfig& config, std::vector<JobResult>* raw_results = nullptr);

/// Sweep over relay-tree depths at matched total edge bandwidth: the flat
/// per-cache budget base.cache_bandwidth_avg x num_caches is redistributed
/// over *all* edges of each tree, each edge weighted by the leaves in its
/// subtree (so deeper topologies trade per-hop capacity for aggregation —
/// the relay-placement question of the CDN literature). Relay egress
/// budgets mirror the relay's ingress edge (symmetric store-and-forward
/// relays).
struct TopologySweepConfig {
  /// Base experiment: workload shape (workload.num_caches leaves; use a
  /// multi-cache interest pattern), harness timing, per-leaf flat bandwidth
  /// (cache_bandwidth_avg). The scheduler is always cooperative.
  ExperimentConfig base;
  /// Relay tier counts to sweep; 0 = the flat one-hop star.
  std::vector<int> relay_tier_counts = {0, 1, 2};
  /// Children per relay in the generated trees.
  int fanout = 2;
  /// Forwarding policies swept at each tree depth (flat runs once — it has
  /// no relays to order).
  std::vector<RelayForwardPolicy> forward_policies = {RelayForwardPolicy::kFifo,
                                                      RelayForwardPolicy::kPriority};
  /// Worker threads; 1 = sequential, <= 0 = hardware concurrency.
  int threads = 1;
};

/// One topology sweep point.
struct TopologySweepPoint {
  int relay_tiers = 0;
  RelayForwardPolicy forward = RelayForwardPolicy::kFifo;
  /// Edges in the topology (leaves + relays) and the per-leaf-edge share of
  /// the matched total bandwidth.
  int num_edges = 0;
  double leaf_edge_bandwidth = 0.0;
  RunResult result;
  double wall_seconds = 0.0;
};

/// Runs the sweep, tiers-major / policy-minor. When `raw_results` is
/// non-null it receives the underlying runner JobResults in the same order,
/// even when the sweep returns an error.
Result<std::vector<TopologySweepPoint>> RunTopologySweep(
    const TopologySweepConfig& config, std::vector<JobResult>* raw_results = nullptr);

}  // namespace besync

#endif  // BESYNC_EXP_MULTICACHE_H_
