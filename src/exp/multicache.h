#ifndef BESYNC_EXP_MULTICACHE_H_
#define BESYNC_EXP_MULTICACHE_H_

#include <vector>

#include "exp/experiment.h"
#include "exp/runner.h"

namespace besync {

/// Sweep over multi-cache topologies: runs the cooperative scheduler on the
/// base workload replicated over varying cache counts and interest
/// patterns. The single-cache point (num_caches == 1) of any pattern
/// reproduces the paper's topology.
struct MulticacheConfig {
  /// Base experiment: workload shape, harness timing and bandwidth knobs.
  /// The workload's num_caches / interest_pattern fields are overridden per
  /// sweep point; the scheduler is always the cooperative protocol.
  ExperimentConfig base;
  /// Cache counts to sweep.
  std::vector<int> cache_counts = {1, 2, 4, 8};
  /// Interest patterns to sweep at each cache count.
  std::vector<InterestPattern> patterns = {InterestPattern::kPartitionedBySource,
                                           InterestPattern::kZipfOverlap};
  /// true: every cache gets the full base.cache_bandwidth_avg (total
  /// capacity grows with the topology); false: the base bandwidth is split
  /// evenly across caches (fixed total capacity).
  bool bandwidth_per_cache = true;
  /// Worker threads for the sweep; 1 = sequential, <= 0 = hardware
  /// concurrency. Each point is an independent job that rebuilds its private
  /// workload from the base config (the runner's config-rebuild path —
  /// correct here because every point *varies* the workload topology; a
  /// shared-by-clone base workload, RunExperimentsOnWorkload, suits grids
  /// that score one fixed workload instead).
  int threads = 1;
};

/// One sweep point result.
struct MulticachePoint {
  int num_caches = 1;
  InterestPattern pattern = InterestPattern::kPartitionedBySource;
  /// Replicas in the workload (the objective's summation domain).
  int64_t total_replicas = 0;
  RunResult result;
  /// Wall-clock seconds spent in the run (scaling diagnostics).
  double wall_seconds = 0.0;
};

/// Runs the sweep: one cooperative run per (pattern, cache count) pair, in
/// pattern-major order. When `raw_results` is non-null it receives the
/// underlying runner JobResults (for WriteResultsJson / --json output),
/// also in pattern-major order, even when the sweep returns an error.
Result<std::vector<MulticachePoint>> RunMulticacheSweep(
    const MulticacheConfig& config, std::vector<JobResult>* raw_results = nullptr);

}  // namespace besync

#endif  // BESYNC_EXP_MULTICACHE_H_
