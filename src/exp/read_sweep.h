#ifndef BESYNC_EXP_READ_SWEEP_H_
#define BESYNC_EXP_READ_SWEEP_H_

#include <cstdint>
#include <vector>

#include "exp/experiment.h"
#include "exp/runner.h"

namespace besync {

/// Sweep over the read-path axes: client read rate x cache capacity x
/// eviction policy, on the cooperative scheduler. Measures how hit rate,
/// read-time staleness (p50/p95/p99) and the push-vs-pull bandwidth split
/// respond as caches shrink and read pressure grows — the scenario axis the
/// write-only engine could not express.
struct ReadSweepConfig {
  /// Base experiment: workload shape, harness timing, bandwidth knobs.
  /// The workload's read config is overridden per sweep point; the
  /// scheduler is always the cooperative protocol.
  ExperimentConfig base;
  /// Client read rates per cache (reads/second) to sweep.
  std::vector<double> read_rates = {2.0, 8.0, 32.0};
  /// Cache capacities (max resident objects per cache); 0 = unbounded.
  std::vector<int64_t> capacities = {0, 40, 10};
  /// Eviction policies swept at each finite capacity. Unbounded capacities
  /// run only the first policy — nothing ever evicts there, so sweeping
  /// policies would duplicate identical runs (the besync_sweep dedup
  /// idiom).
  std::vector<EvictionPolicy> evictions = {EvictionPolicy::kLru,
                                           EvictionPolicy::kLfu,
                                           EvictionPolicy::kDivergenceAware};
  /// Worker threads; 1 = sequential, <= 0 = hardware concurrency.
  int threads = 1;
};

/// One read sweep point.
struct ReadSweepPoint {
  double read_rate = 0.0;
  int64_t capacity = 0;
  EvictionPolicy eviction = EvictionPolicy::kLru;
  RunResult result;
  double wall_seconds = 0.0;

  /// Fraction of client reads served from a resident replica.
  double hit_rate() const {
    return result.scheduler.reads_total > 0
               ? static_cast<double>(result.scheduler.read_hits) /
                     static_cast<double>(result.scheduler.reads_total)
               : 0.0;
  }
};

/// Runs the sweep, read_rate-major / capacity / eviction-minor, on the
/// parallel runner (each point rebuilds its private workload — the
/// config-rebuild path of exp/runner.h, correct because points share one
/// workload config and differ only in read knobs, which consume no
/// generator randomness). When `raw_results` is non-null it receives the
/// underlying runner JobResults in the same order, even when the sweep
/// returns an error.
Result<std::vector<ReadSweepPoint>> RunReadSweep(
    const ReadSweepConfig& config, std::vector<JobResult>* raw_results = nullptr);

}  // namespace besync

#endif  // BESYNC_EXP_READ_SWEEP_H_
