#include "exp/read_sweep.h"

#include "util/table_printer.h"

namespace besync {

Result<std::vector<ReadSweepPoint>> RunReadSweep(
    const ReadSweepConfig& config, std::vector<JobResult>* raw_results) {
  if (config.read_rates.empty()) {
    return Status::InvalidArgument("read_rates must be non-empty");
  }
  if (config.capacities.empty()) {
    return Status::InvalidArgument("capacities must be non-empty");
  }
  if (config.evictions.empty()) {
    return Status::InvalidArgument("evictions must be non-empty");
  }
  for (double rate : config.read_rates) {
    if (rate <= 0.0) {
      return Status::InvalidArgument("read rates must be > 0, got ", rate);
    }
  }

  struct PointShape {
    double read_rate;
    int64_t capacity;
    EvictionPolicy eviction;
  };
  std::vector<ExperimentJob> jobs;
  std::vector<PointShape> shapes;
  for (double read_rate : config.read_rates) {
    for (int64_t capacity : config.capacities) {
      // An unbounded store never evicts; running each policy there would
      // just repeat one simulation under different labels.
      const int num_policies =
          capacity <= 0 ? 1 : static_cast<int>(config.evictions.size());
      for (int p = 0; p < num_policies; ++p) {
        const EvictionPolicy eviction = config.evictions[p];
        ExperimentJob job;
        job.config = config.base;
        job.config.scheduler = SchedulerKind::kCooperative;
        job.config.workload.read.read_rate = read_rate;
        job.config.workload.read.capacity = capacity;
        job.config.workload.read.eviction = eviction;
        job.name = "rate=" + TablePrinter::Cell(read_rate) + ",cap=" +
                   (capacity <= 0 ? std::string("inf") : std::to_string(capacity)) +
                   ",evict=" +
                   (capacity <= 0 ? std::string("-") : EvictionPolicyToString(eviction));
        jobs.push_back(std::move(job));
        shapes.push_back({read_rate, capacity, eviction});
      }
    }
  }

  RunnerOptions options;
  options.threads = config.threads;
  const std::vector<JobResult> results = RunExperiments(jobs, options);
  if (raw_results != nullptr) *raw_results = results;

  std::vector<ReadSweepPoint> points;
  points.reserve(results.size());
  for (size_t k = 0; k < results.size(); ++k) {
    const JobResult& job = results[k];
    if (!job.status.ok()) return job.status;
    ReadSweepPoint point;
    point.read_rate = shapes[k].read_rate;
    point.capacity = shapes[k].capacity;
    point.eviction = shapes[k].eviction;
    point.result = job.result;
    point.wall_seconds = job.wall_seconds;
    points.push_back(std::move(point));
  }
  return points;
}

}  // namespace besync
