#include "exp/protocol_sweep.h"

#include "util/table_printer.h"

namespace besync {

Result<std::vector<ProtocolSweepPoint>> RunProtocolSweep(
    const ProtocolSweepConfig& config, std::vector<JobResult>* raw_results) {
  if (config.protocols.empty()) {
    return Status::InvalidArgument("protocols must be non-empty");
  }
  if (config.read_rates.empty()) {
    return Status::InvalidArgument("read_rates must be non-empty");
  }
  if (config.bandwidths.empty()) {
    return Status::InvalidArgument("bandwidths must be non-empty");
  }
  if (config.relay_tiers.empty()) {
    return Status::InvalidArgument("relay_tiers must be non-empty");
  }
  for (double rate : config.read_rates) {
    if (rate <= 0.0) {
      // Invalidation/TTL replicas are refilled only by read-triggered pulls;
      // a read-free regime would pin them stale forever and the comparison
      // against push refresh would be meaningless (and an InvalidArgument
      // downstream anyway).
      return Status::InvalidArgument("read rates must be > 0, got ", rate);
    }
  }
  if (config.ttl <= 0.0) {
    return Status::InvalidArgument("ttl must be > 0, got ", config.ttl);
  }
  if (config.invalidate_batch < 1) {
    return Status::InvalidArgument("invalidate_batch must be >= 1, got ",
                                   config.invalidate_batch);
  }

  struct PointShape {
    SyncProtocolKind protocol;
    double read_rate;
    double bandwidth;
    int relay_tiers;
  };
  std::vector<ExperimentJob> jobs;
  std::vector<PointShape> shapes;
  for (double read_rate : config.read_rates) {
    for (double bandwidth : config.bandwidths) {
      for (int tiers : config.relay_tiers) {
        for (SyncProtocolKind protocol : config.protocols) {
          ExperimentJob job;
          job.config = config.base;
          job.config.scheduler = SchedulerKind::kCooperative;
          job.config.workload.read.read_rate = read_rate;
          job.config.cache_bandwidth_avg = bandwidth;
          job.config.workload.relay_tiers = tiers;
          job.config.protocol.kind = protocol;
          job.config.protocol.ttl = config.ttl;
          job.config.protocol.max_invalidate_batch = config.invalidate_batch;
          job.name = "proto=" + SyncProtocolKindToString(protocol) +
                     ",rate=" + TablePrinter::Cell(read_rate) +
                     ",bw=" + TablePrinter::Cell(bandwidth) +
                     ",tiers=" + std::to_string(tiers);
          jobs.push_back(std::move(job));
          shapes.push_back({protocol, read_rate, bandwidth, tiers});
        }
      }
    }
  }

  RunnerOptions options;
  options.threads = config.threads;
  const std::vector<JobResult> results = RunExperiments(jobs, options);
  if (raw_results != nullptr) *raw_results = results;

  std::vector<ProtocolSweepPoint> points;
  points.reserve(results.size());
  for (size_t k = 0; k < results.size(); ++k) {
    const JobResult& job = results[k];
    if (!job.status.ok()) return job.status;
    ProtocolSweepPoint point;
    point.protocol = shapes[k].protocol;
    point.read_rate = shapes[k].read_rate;
    point.bandwidth = shapes[k].bandwidth;
    point.relay_tiers = shapes[k].relay_tiers;
    point.result = job.result;
    point.wall_seconds = job.wall_seconds;
    points.push_back(std::move(point));
  }
  return points;
}

}  // namespace besync
