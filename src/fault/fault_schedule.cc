#include "fault/fault_schedule.h"

#include <algorithm>

#include "util/random.h"

namespace besync {

std::string FaultEventKindToString(FaultEventKind kind) {
  switch (kind) {
    case FaultEventKind::kCacheCrash:
      return "cache-crash";
    case FaultEventKind::kCacheRestart:
      return "cache-restart";
    case FaultEventKind::kRelayFail:
      return "relay-fail";
    case FaultEventKind::kRelayRecover:
      return "relay-recover";
    case FaultEventKind::kLinkDown:
      return "link-down";
    case FaultEventKind::kLinkUp:
      return "link-up";
    case FaultEventKind::kSlowDown:
      return "slow-down";
    case FaultEventKind::kSlowRecover:
      return "slow-recover";
  }
  return "unknown";
}

std::string RecoveryPolicyToString(RecoveryPolicy policy) {
  switch (policy) {
    case RecoveryPolicy::kNaiveReenqueue:
      return "naive";
    case RecoveryPolicy::kRecoveryPriority:
      return "priority";
  }
  return "unknown";
}

std::string RelayStorePolicyToString(RelayStorePolicy policy) {
  switch (policy) {
    case RelayStorePolicy::kDrop:
      return "drop";
    case RelayStorePolicy::kDrain:
      return "drain";
  }
  return "unknown";
}

std::vector<FaultEvent> FaultSchedule::Sorted() const {
  std::vector<FaultEvent> sorted = events;
  std::stable_sort(sorted.begin(), sorted.end(),
                   [](const FaultEvent& a, const FaultEvent& b) {
                     return a.time < b.time;
                   });
  return sorted;
}

Status FaultSchedule::Validate(const TopologySpec& topology, int num_caches) const {
  for (size_t i = 0; i < events.size(); ++i) {
    const FaultEvent& event = events[i];
    if (event.time < 0.0) {
      return Status::InvalidArgument("fault event ", i, " has negative time ",
                                     event.time);
    }
    switch (event.kind) {
      case FaultEventKind::kCacheCrash:
      case FaultEventKind::kCacheRestart:
      case FaultEventKind::kLinkDown:
      case FaultEventKind::kLinkUp:
      case FaultEventKind::kSlowDown:
      case FaultEventKind::kSlowRecover:
        if (event.node < 0 || event.node >= num_caches) {
          return Status::InvalidArgument(
              "fault event ", i, " (", FaultEventKindToString(event.kind),
              ") targets node ", event.node, " outside the ", num_caches,
              " leaf caches");
        }
        break;
      case FaultEventKind::kRelayFail:
      case FaultEventKind::kRelayRecover:
        if (topology.flat() || event.node < topology.num_leaves ||
            event.node >= topology.num_nodes()) {
          return Status::InvalidArgument(
              "fault event ", i, " (", FaultEventKindToString(event.kind),
              ") targets node ", event.node,
              " which is not a relay of the topology");
        }
        break;
    }
    if (event.kind == FaultEventKind::kSlowDown &&
        (event.factor <= 0.0 || event.factor > 1.0)) {
      return Status::InvalidArgument("fault event ", i,
                                     " has slow factor ", event.factor,
                                     " outside (0, 1]");
    }
  }
  return Status::OK();
}

std::string FaultSchedule::Label() const {
  if (events.empty()) return "none";
  int crashes = 0, relays = 0, flaps = 0, slows = 0;
  for (const FaultEvent& event : events) {
    switch (event.kind) {
      case FaultEventKind::kCacheCrash:
        ++crashes;
        break;
      case FaultEventKind::kRelayFail:
        ++relays;
        break;
      case FaultEventKind::kLinkDown:
        ++flaps;
        break;
      case FaultEventKind::kSlowDown:
        ++slows;
        break;
      default:
        break;
    }
  }
  return "faults(crash=" + std::to_string(crashes) +
         ",relay=" + std::to_string(relays) + ",flap=" + std::to_string(flaps) +
         ",slow=" + std::to_string(slows) + ")";
}

namespace {

double DrawStart(const FaultScheduleConfig& config, Rng* rng) {
  if (config.window_end <= config.window_start) return config.window_start;
  return rng->Uniform(config.window_start, config.window_end);
}

}  // namespace

FaultSchedule MakeFaultSchedule(const FaultScheduleConfig& config, int num_caches,
                                const TopologySpec& topology) {
  FaultSchedule schedule;
  // Disabled configs touch no randomness at all, so a fault-free
  // WorkloadConfig builds the exact same Workload bytes as before the
  // fault layer existed.
  if (!config.enabled()) return schedule;

  Rng rng(config.seed);
  for (int k = 0; k < config.cache_crashes; ++k) {
    const int32_t cache =
        config.crash_cache >= 0
            ? config.crash_cache
            : static_cast<int32_t>(rng.UniformInt(0, num_caches - 1));
    const double start = DrawStart(config, &rng);
    schedule.events.push_back(
        {start, FaultEventKind::kCacheCrash, cache, 1.0});
    schedule.events.push_back(
        {start + config.crash_duration, FaultEventKind::kCacheRestart, cache, 1.0});
  }
  for (int k = 0; k < config.relay_failures; ++k) {
    // Flat topologies have no relays to fail; draw nothing so the stream
    // stays aligned with the other event classes, and let Validate reject
    // the (caller-error) combination downstream.
    if (topology.num_relays() <= 0) break;
    const int32_t relay = static_cast<int32_t>(
        rng.UniformInt(topology.num_leaves, topology.num_nodes() - 1));
    const double start = DrawStart(config, &rng);
    schedule.events.push_back({start, FaultEventKind::kRelayFail, relay, 1.0});
    schedule.events.push_back(
        {start + config.relay_fail_duration, FaultEventKind::kRelayRecover, relay,
         1.0});
  }
  for (int k = 0; k < config.link_flaps; ++k) {
    const int32_t cache = static_cast<int32_t>(rng.UniformInt(0, num_caches - 1));
    const double start = DrawStart(config, &rng);
    schedule.events.push_back({start, FaultEventKind::kLinkDown, cache, 1.0});
    schedule.events.push_back(
        {start + config.flap_duration, FaultEventKind::kLinkUp, cache, 1.0});
  }
  for (int k = 0; k < config.slowdowns; ++k) {
    const int32_t cache = static_cast<int32_t>(rng.UniformInt(0, num_caches - 1));
    const double start = DrawStart(config, &rng);
    schedule.events.push_back(
        {start, FaultEventKind::kSlowDown, cache, config.slow_factor});
    schedule.events.push_back(
        {start + config.slow_duration, FaultEventKind::kSlowRecover, cache, 1.0});
  }
  return schedule;
}

}  // namespace besync
