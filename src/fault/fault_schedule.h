#ifndef BESYNC_FAULT_FAULT_SCHEDULE_H_
#define BESYNC_FAULT_FAULT_SCHEDULE_H_

#include <cstdint>
#include <string>
#include <vector>

#include "data/topology.h"
#include "util/status.h"

namespace besync {

/// Scripted fault injection for the cooperative engine: a deterministic,
/// timestamped list of node/link events carried on the `Workload`. The
/// schedule is *data*, not behavior — it consumes no generator or scheduler
/// randomness, so a run with an empty schedule reproduces the fault-free
/// goldens bitwise, and two runs with the same schedule are bitwise
/// identical at any thread count.
///
/// Event semantics (applied by CooperativeScheduler at the first tick whose
/// time is >= the event time, in schedule order):
///  - kCacheCrash: the leaf cache loses all replica content (CacheStore
///    cleared, per-replica consistency state reset, in-flight pull
///    bookkeeping invalidated). While down, deliveries to the cache are
///    blackholed and its clients get no service (reads are discarded).
///  - kCacheRestart: the cache comes back cold. Sources start a resync per
///    the configured RecoveryPolicy, and a time-to-resync episode opens.
///  - kRelayFail: the relay stops forwarding; its children re-attach to the
///    topology's backup parent (or become tier-1 when there is none) and
///    first-hop routing is rebuilt. Control mail held at the relay is
///    re-deposited at its originating leaf; stored data messages drop or
///    drain per the configured RelayStorePolicy.
///  - kRelayRecover: the original parent map is restored for the subtree.
///  - kLinkDown / kLinkUp: the leaf's ingress edge partitions — new
///    traffic in *both* directions (pushes, invalidations, pulls, feedback)
///    blackholes; queued messages freeze until the link comes back.
///  - kSlowDown / kSlowRecover: the leaf's ingress edge runs at
///    `factor` x its configured bandwidth (temporary degradation).
enum class FaultEventKind {
  kCacheCrash = 0,
  kCacheRestart = 1,
  kRelayFail = 2,
  kRelayRecover = 3,
  kLinkDown = 4,
  kLinkUp = 5,
  kSlowDown = 6,
  kSlowRecover = 7,
};

std::string FaultEventKindToString(FaultEventKind kind);

struct FaultEvent {
  /// Simulation time the event fires (>= 0; relative to run start, so
  /// events inside the warmup window are legal and useful for
  /// steady-state-after-recovery measurements).
  double time = 0.0;
  FaultEventKind kind = FaultEventKind::kCacheCrash;
  /// Target node: a leaf cache id for cache/link/slow events, a relay node
  /// id for relay events.
  int32_t node = 0;
  /// kSlowDown only: bandwidth multiplier in (0, 1]. Ignored elsewhere.
  double factor = 1.0;
};

/// The timestamped event list. Events are kept in the order given;
/// `Sorted()` returns a stable time-ordered copy (ties keep insertion
/// order, so schedules serialize and replay deterministically).
struct FaultSchedule {
  std::vector<FaultEvent> events;

  bool empty() const { return events.empty(); }
  size_t size() const { return events.size(); }

  /// Stable time-sorted copy — the order the scheduler applies.
  std::vector<FaultEvent> Sorted() const;

  /// Structural validation against the run's shape. Cache/link/slow targets
  /// must be valid leaf ids; relay targets must be relay nodes of
  /// `topology`; times must be >= 0 and slow factors in (0, 1].
  Status Validate(const TopologySpec& topology, int num_caches) const;

  /// "none" or e.g. "faults(crash=2,relay=1,flap=3,slow=0)" — for job
  /// names and tables.
  std::string Label() const;
};

/// How a source prioritizes resyncing a restarted (cold) cache against
/// keeping warm caches fresh — ROADMAP item 4's policy axis.
enum class RecoveryPolicy {
  /// Re-enqueue every member of the restarted cache into the ordinary
  /// push queue: resync refreshes compete with fresh updates purely on
  /// divergence priority. Cheap objects with low accrued divergence may
  /// wait arbitrarily long for their refill.
  kNaiveReenqueue = 0,
  /// A dedicated per-channel recovery FIFO drained ahead of the regular
  /// push phase each tick: the cold cache is refilled as fast as its link
  /// allows, at the cost of deferring fresh updates. Under the pull-based
  /// protocols this is a server-initiated recovery fill (the naive policy
  /// leaves refill entirely to read-triggered pulls).
  kRecoveryPriority = 1,
};

std::string RecoveryPolicyToString(RecoveryPolicy policy);

/// What happens to data messages stored at a relay when it fails.
enum class RelayStorePolicy {
  kDrop = 0,   ///< stored messages are lost with the relay
  kDrain = 1,  ///< stored messages re-enter the tree at their new first hop
};

std::string RelayStorePolicyToString(RelayStorePolicy policy);

/// Deterministic schedule generator carried on `WorkloadConfig`. Drawing
/// uses a dedicated Rng(seed), never the workload generator's stream, so
/// enabling faults does not perturb object rates, weights, or update
/// streams (MakeWorkload output is bit-identical apart from the schedule).
struct FaultScheduleConfig {
  /// Crash/restart pairs injected on leaf caches.
  int cache_crashes = 0;
  /// Downtime between each crash and its restart (seconds).
  double crash_duration = 20.0;
  /// When >= 0, every crash targets this leaf (the sweeps pin cache 0 so
  /// "warm" divergence is cleanly the other caches); -1 = uniform target.
  int32_t crash_cache = -1;
  /// Relay fail/recover pairs (requires a relay topology).
  int relay_failures = 0;
  double relay_fail_duration = 20.0;
  /// Link down/up windows on leaf ingress edges.
  int link_flaps = 0;
  double flap_duration = 10.0;
  /// Temporary slow-node windows on leaf ingress edges.
  int slowdowns = 0;
  double slow_duration = 20.0;
  double slow_factor = 0.25;
  /// Event start times are drawn uniformly in [window_start, window_end).
  /// window_end <= window_start collapses to firing at window_start.
  double window_start = 0.0;
  double window_end = 0.0;
  /// Seed of the dedicated schedule stream.
  uint64_t seed = 1234;

  bool enabled() const {
    return cache_crashes > 0 || relay_failures > 0 || link_flaps > 0 ||
           slowdowns > 0;
  }
};

/// Builds the schedule from `config` (empty when `config.enabled()` is
/// false, consuming no randomness at all). Relay targets are drawn from the
/// relays of `topology`; callers enabling relay failures on a flat topology
/// get a schedule that fails Validate.
FaultSchedule MakeFaultSchedule(const FaultScheduleConfig& config, int num_caches,
                                const TopologySpec& topology);

}  // namespace besync

#endif  // BESYNC_FAULT_FAULT_SCHEDULE_H_
