#ifndef BESYNC_UTIL_TABLE_PRINTER_H_
#define BESYNC_UTIL_TABLE_PRINTER_H_

#include <ostream>
#include <string>
#include <vector>

#include "util/status.h"

namespace besync {

/// Column-aligned console table used by the experiment binaries to print the
/// rows/series the paper reports, plus optional CSV export for plotting.
///
///   TablePrinter table({"bandwidth", "ideal", "ours"});
///   table.AddRow({Cell(10), Cell(0.42), Cell(0.45)});
///   table.Print(std::cout);
class TablePrinter {
 public:
  explicit TablePrinter(std::vector<std::string> headers);

  /// Formats a double with 4 significant decimals (trailing zeros trimmed).
  static std::string Cell(double value);
  static std::string Cell(int64_t value);
  static std::string Cell(int value) { return Cell(static_cast<int64_t>(value)); }
  static std::string Cell(size_t value) { return Cell(static_cast<int64_t>(value)); }
  static std::string Cell(const std::string& value) { return value; }
  static std::string Cell(const char* value) { return value; }

  /// Appends a row; must have exactly as many cells as there are headers.
  void AddRow(std::vector<std::string> cells);

  size_t num_rows() const { return rows_.size(); }
  const std::vector<std::string>& headers() const { return headers_; }
  const std::vector<std::vector<std::string>>& rows() const { return rows_; }

  /// Writes an aligned plain-text table.
  void Print(std::ostream& os) const;

  /// Writes RFC-4180-ish CSV (cells containing commas/quotes are quoted).
  Status WriteCsv(const std::string& path) const;
  void WriteCsv(std::ostream& os) const;

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace besync

#endif  // BESYNC_UTIL_TABLE_PRINTER_H_
