#include "util/shard_pool.h"

#include "util/logging.h"

namespace besync {

ShardPool::ShardPool(int num_shards) : num_shards_(num_shards) {
  BESYNC_CHECK_GE(num_shards, 1);
  workers_.reserve(static_cast<size_t>(num_shards - 1));
  for (int shard = 1; shard < num_shards; ++shard) {
    workers_.emplace_back([this, shard] { WorkerLoop(shard); });
  }
}

ShardPool::~ShardPool() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    stopping_ = true;
  }
  start_.notify_all();
  for (std::thread& worker : workers_) worker.join();
}

void ShardPool::Run(const std::function<void(int)>& fn) {
  Run(fn, nullptr);
}

void ShardPool::Run(const std::function<void(int)>& fn,
                    const std::function<void()>& main_prelude) {
  if (num_shards_ == 1) {
    if (main_prelude) main_prelude();
    fn(0);
    return;
  }
  {
    std::lock_guard<std::mutex> lock(mutex_);
    job_ = &fn;
    running_ = num_shards_ - 1;
    ++epoch_;
  }
  start_.notify_all();
  // The workers are off computing their shards; the prelude's serial work
  // rides under them on this thread.
  if (main_prelude) main_prelude();
  fn(0);
  std::unique_lock<std::mutex> lock(mutex_);
  done_.wait(lock, [this] { return running_ == 0; });
  job_ = nullptr;
}

void ShardPool::WorkerLoop(int shard) {
  uint64_t seen_epoch = 0;
  while (true) {
    const std::function<void(int)>* job = nullptr;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      start_.wait(lock,
                  [this, seen_epoch] { return stopping_ || epoch_ != seen_epoch; });
      if (stopping_) return;
      seen_epoch = epoch_;
      job = job_;
    }
    (*job)(shard);
    bool last = false;
    {
      std::lock_guard<std::mutex> lock(mutex_);
      last = --running_ == 0;
    }
    if (last) done_.notify_all();
  }
}

std::pair<int64_t, int64_t> ShardPool::ShardRange(int64_t count, int shard,
                                                  int num_shards) {
  BESYNC_CHECK_GE(count, 0);
  BESYNC_CHECK_GE(shard, 0);
  BESYNC_CHECK_LT(shard, num_shards);
  const int64_t shards = num_shards;
  const int64_t base = count / shards;
  const int64_t extra = count % shards;
  // The first `extra` shards take base + 1 items.
  const int64_t first =
      shard * base + (shard < extra ? shard : extra);
  const int64_t size = base + (shard < extra ? 1 : 0);
  return {first, first + size};
}

int ShardPool::ShardOf(int64_t count, int64_t index, int num_shards) {
  BESYNC_CHECK_GE(index, 0);
  BESYNC_CHECK_LT(index, count);
  const int64_t shards = num_shards;
  const int64_t base = count / shards;
  const int64_t extra = count % shards;
  // The first `extra` shards hold base + 1 items each, covering indices
  // [0, extra * (base + 1)); the rest hold base items.
  const int64_t boundary = extra * (base + 1);
  if (index < boundary) return static_cast<int>(index / (base + 1));
  return static_cast<int>(extra + (index - boundary) / base);
}

}  // namespace besync
