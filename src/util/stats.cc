#include "util/stats.h"

#include <algorithm>
#include <cmath>

namespace besync {

void RunningStat::Add(double value) {
  ++count_;
  const double delta = value - mean_;
  mean_ += delta / static_cast<double>(count_);
  m2_ += delta * (value - mean_);
  min_ = std::min(min_, value);
  max_ = std::max(max_, value);
}

double RunningStat::variance() const {
  if (count_ < 2) return 0.0;
  return m2_ / static_cast<double>(count_ - 1);
}

double RunningStat::stddev() const { return std::sqrt(variance()); }

void RunningStat::Reset() { *this = RunningStat(); }

void TimeWeightedMean::Add(double value, double duration) {
  if (duration <= 0.0) return;
  integral_ += value * duration;
  total_time_ += duration;
}

void TimeWeightedMean::Reset() { *this = TimeWeightedMean(); }

void UtilizationStat::Add(double used, double capacity) {
  used_ += used;
  capacity_ += capacity;
}

void UtilizationStat::Reset() { *this = UtilizationStat(); }

}  // namespace besync
