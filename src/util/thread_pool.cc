#include "util/thread_pool.h"

#include <utility>

#include "util/logging.h"

namespace besync {

ThreadPool::ThreadPool(int num_threads) {
  BESYNC_CHECK_GE(num_threads, 1);
  workers_.reserve(static_cast<size_t>(num_threads));
  for (int i = 0; i < num_threads; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::unique_lock<std::mutex> lock(mutex_);
    stopping_ = true;
  }
  task_available_.notify_all();
  for (std::thread& worker : workers_) worker.join();
}

void ThreadPool::Submit(std::function<void()> task) {
  BESYNC_CHECK(task != nullptr);
  {
    std::unique_lock<std::mutex> lock(mutex_);
    BESYNC_CHECK(!stopping_) << "Submit after destruction began";
    tasks_.push_back(std::move(task));
    ++unfinished_;
  }
  task_available_.notify_one();
}

void ThreadPool::Wait() {
  std::unique_lock<std::mutex> lock(mutex_);
  all_done_.wait(lock, [this] { return unfinished_ == 0; });
}

int ThreadPool::HardwareThreads() {
  const unsigned n = std::thread::hardware_concurrency();
  return n == 0 ? 1 : static_cast<int>(n);
}

void ThreadPool::WorkerLoop() {
  while (true) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      task_available_.wait(lock, [this] { return stopping_ || !tasks_.empty(); });
      if (tasks_.empty()) return;  // stopping_ and drained
      task = std::move(tasks_.front());
      tasks_.pop_front();
    }
    task();
    {
      std::unique_lock<std::mutex> lock(mutex_);
      if (--unfinished_ == 0) all_done_.notify_all();
    }
  }
}

}  // namespace besync
