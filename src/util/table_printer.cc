#include "util/table_printer.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <fstream>

#include "util/logging.h"

namespace besync {

TablePrinter::TablePrinter(std::vector<std::string> headers)
    : headers_(std::move(headers)) {
  BESYNC_CHECK(!headers_.empty());
}

std::string TablePrinter::Cell(double value) {
  if (std::isnan(value)) return "nan";
  if (std::isinf(value)) return value > 0 ? "inf" : "-inf";
  char buffer[64];
  std::snprintf(buffer, sizeof(buffer), "%.4f", value);
  std::string text(buffer);
  // Trim trailing zeros but keep at least one digit after the point.
  const size_t dot = text.find('.');
  if (dot != std::string::npos) {
    size_t last = text.find_last_not_of('0');
    if (last == dot) last = dot + 1;
    text.erase(last + 1);
  }
  return text;
}

std::string TablePrinter::Cell(int64_t value) { return std::to_string(value); }

void TablePrinter::AddRow(std::vector<std::string> cells) {
  BESYNC_CHECK_EQ(cells.size(), headers_.size());
  rows_.push_back(std::move(cells));
}

void TablePrinter::Print(std::ostream& os) const {
  std::vector<size_t> widths(headers_.size());
  for (size_t c = 0; c < headers_.size(); ++c) widths[c] = headers_[c].size();
  for (const auto& row : rows_) {
    for (size_t c = 0; c < row.size(); ++c) widths[c] = std::max(widths[c], row[c].size());
  }
  auto print_row = [&](const std::vector<std::string>& row) {
    for (size_t c = 0; c < row.size(); ++c) {
      os << (c == 0 ? "" : "  ");
      os << row[c];
      for (size_t pad = row[c].size(); pad < widths[c]; ++pad) os << ' ';
    }
    os << '\n';
  };
  print_row(headers_);
  size_t total = 0;
  for (size_t c = 0; c < widths.size(); ++c) total += widths[c] + (c == 0 ? 0 : 2);
  os << std::string(total, '-') << '\n';
  for (const auto& row : rows_) print_row(row);
}

namespace {
std::string CsvEscape(const std::string& cell) {
  if (cell.find_first_of(",\"\n") == std::string::npos) return cell;
  std::string escaped = "\"";
  for (char ch : cell) {
    if (ch == '"') escaped += '"';
    escaped += ch;
  }
  escaped += '"';
  return escaped;
}
}  // namespace

void TablePrinter::WriteCsv(std::ostream& os) const {
  auto write_row = [&](const std::vector<std::string>& row) {
    for (size_t c = 0; c < row.size(); ++c) {
      if (c > 0) os << ',';
      os << CsvEscape(row[c]);
    }
    os << '\n';
  };
  write_row(headers_);
  for (const auto& row : rows_) write_row(row);
}

Status TablePrinter::WriteCsv(const std::string& path) const {
  std::ofstream file(path);
  if (!file) return Status::IOError("cannot open ", path);
  WriteCsv(file);
  if (!file.good()) return Status::IOError("write failed for ", path);
  return Status::OK();
}

}  // namespace besync
