#ifndef BESYNC_UTIL_ARENA_H_
#define BESYNC_UTIL_ARENA_H_

#include <cstddef>
#include <memory>
#include <new>
#include <type_traits>
#include <utility>
#include <vector>

namespace besync {

/// Bump allocator for the hot-path per-replica state (divergence trackers,
/// ground-truth replica entries, channel membership tables): one Arena per
/// run replaces hundreds of thousands of individual vector allocations with
/// a handful of large blocks, giving contiguous struct-of-arrays layout and
/// O(1) teardown.
///
/// Deliberately minimal by design:
///  - no per-object free — memory is reclaimed only by Reset() or the
///    destructor, matching the run lifetime of everything stored here;
///  - destructors are never run, so every allocated type must be trivially
///    destructible (enforced at compile time by the typed helpers);
///  - not thread-safe — each run owns its arena, and the sharded tick
///    phases only read arena-backed state they partitioned beforehand.
class Arena {
 public:
  static constexpr size_t kDefaultBlockBytes = size_t{1} << 20;

  explicit Arena(size_t block_bytes = kDefaultBlockBytes);

  Arena(const Arena&) = delete;
  Arena& operator=(const Arena&) = delete;

  /// Raw aligned allocation. `alignment` must be a power of two.
  void* Allocate(size_t bytes, size_t alignment);

  /// Allocates and constructs a `count`-element array, constructing every
  /// element as T(args...) (value-initialized when no args are given).
  /// The elements live until Reset()/destruction; no destructors run.
  template <typename T, typename... Args>
  T* AllocateArray(size_t count, const Args&... args) {
    static_assert(std::is_trivially_destructible_v<T>,
                  "Arena never runs destructors");
    T* data = static_cast<T*>(Allocate(count * sizeof(T), alignof(T)));
    for (size_t i = 0; i < count; ++i) ::new (data + i) T(args...);
    return data;
  }

  /// Allocates and constructs one object.
  template <typename T, typename... Args>
  T* New(Args&&... args) {
    static_assert(std::is_trivially_destructible_v<T>,
                  "Arena never runs destructors");
    return ::new (Allocate(sizeof(T), alignof(T))) T(std::forward<Args>(args)...);
  }

  /// Invalidates every allocation but retains the blocks, so a reset arena
  /// re-serves the same footprint without touching the system allocator —
  /// the reuse path for repeated runs over one topology.
  void Reset();

  /// Bytes handed out since construction/Reset (excludes alignment padding).
  size_t bytes_used() const { return bytes_used_; }
  /// Total block capacity owned (monotone until destruction).
  size_t bytes_reserved() const { return bytes_reserved_; }

 private:
  struct Block {
    std::unique_ptr<char[]> data;
    size_t size = 0;
  };

  /// Makes `active_` a block with >= bytes free at `ptr_`, reusing retained
  /// blocks before growing.
  void NextBlock(size_t bytes);

  size_t block_bytes_;
  std::vector<Block> blocks_;
  size_t active_ = 0;   // index of the block ptr_/end_ point into
  char* ptr_ = nullptr;
  char* end_ = nullptr;
  size_t bytes_used_ = 0;
  size_t bytes_reserved_ = 0;
};

}  // namespace besync

#endif  // BESYNC_UTIL_ARENA_H_
