#include "util/fluctuation.h"

#include <cmath>

#include "util/logging.h"

namespace besync {

ConstantFluctuation::ConstantFluctuation(double value) : value_(value) {
  BESYNC_CHECK_GE(value, 0.0);
}

double ConstantFluctuation::ValueAt(double /*t*/) const { return value_; }

SineFluctuation::SineFluctuation(double base, double relative_amplitude, double period,
                                 double phase)
    : base_(base),
      relative_amplitude_(relative_amplitude),
      period_(period),
      phase_(phase) {
  BESYNC_CHECK_GE(base, 0.0);
  BESYNC_CHECK_GE(relative_amplitude, 0.0);
  BESYNC_CHECK_LT(relative_amplitude, 1.0);
  BESYNC_CHECK_GT(period, 0.0);
}

double SineFluctuation::ValueAt(double t) const {
  return base_ * (1.0 + relative_amplitude_ * std::sin(2.0 * M_PI * t / period_ + phase_));
}

std::unique_ptr<Fluctuation> MakeBandwidthFluctuation(double average,
                                                      double max_change_rate, Rng* rng) {
  BESYNC_CHECK_GE(average, 0.0);
  BESYNC_CHECK_GE(max_change_rate, 0.0);
  if (max_change_rate <= 0.0 || average <= 0.0) {
    return std::make_unique<ConstantFluctuation>(average);
  }
  constexpr double kAmplitude = 0.5;
  const double period = 2.0 * M_PI * kAmplitude / max_change_rate;
  const double phase = rng != nullptr ? rng->Uniform(0.0, 2.0 * M_PI) : 0.0;
  return std::make_unique<SineFluctuation>(average, kAmplitude, period, phase);
}

std::unique_ptr<Fluctuation> MakeWeightFluctuation(double base, double max_amplitude,
                                                   double min_period, double max_period,
                                                   Rng* rng) {
  BESYNC_CHECK_GE(base, 0.0);
  BESYNC_CHECK_GE(max_amplitude, 0.0);
  BESYNC_CHECK_LT(max_amplitude, 1.0);
  if (max_amplitude <= 0.0 || rng == nullptr) {
    return std::make_unique<ConstantFluctuation>(base);
  }
  BESYNC_CHECK_GT(min_period, 0.0);
  BESYNC_CHECK_GE(max_period, min_period);
  const double amplitude = rng->Uniform(0.0, max_amplitude);
  const double period = rng->Uniform(min_period, max_period);
  const double phase = rng->Uniform(0.0, 2.0 * M_PI);
  return std::make_unique<SineFluctuation>(base, amplitude, period, phase);
}

}  // namespace besync
