#include "util/flags.h"

#include <algorithm>
#include <cstdlib>

namespace besync {

Status Flags::Parse(int argc, char** argv, const std::vector<std::string>& known,
                    Flags* out) {
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg.rfind("--", 0) != 0) {
      return Status::InvalidArgument("expected --flag, got '", arg, "'");
    }
    arg = arg.substr(2);
    std::string name;
    std::string value;
    const size_t eq = arg.find('=');
    if (eq != std::string::npos) {
      name = arg.substr(0, eq);
      value = arg.substr(eq + 1);
    } else {
      name = arg;
      // `--name value` form when the next token is not itself a flag.
      if (i + 1 < argc && std::string(argv[i + 1]).rfind("--", 0) != 0) {
        value = argv[++i];
      } else {
        value = "true";  // bare boolean flag
      }
    }
    if (std::find(known.begin(), known.end(), name) == known.end()) {
      return Status::InvalidArgument("unknown flag --", name);
    }
    out->values_[name] = value;
  }
  return Status::OK();
}

bool Flags::Has(const std::string& name) const { return values_.count(name) > 0; }

std::string Flags::GetString(const std::string& name, const std::string& fallback) const {
  auto it = values_.find(name);
  return it == values_.end() ? fallback : it->second;
}

int64_t Flags::GetInt(const std::string& name, int64_t fallback) const {
  auto it = values_.find(name);
  return it == values_.end() ? fallback : std::strtoll(it->second.c_str(), nullptr, 10);
}

double Flags::GetDouble(const std::string& name, double fallback) const {
  auto it = values_.find(name);
  return it == values_.end() ? fallback : std::strtod(it->second.c_str(), nullptr);
}

bool Flags::GetBool(const std::string& name, bool fallback) const {
  auto it = values_.find(name);
  if (it == values_.end()) return fallback;
  return it->second == "true" || it->second == "1" || it->second == "yes";
}

}  // namespace besync
