#ifndef BESYNC_UTIL_FLAGS_H_
#define BESYNC_UTIL_FLAGS_H_

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "util/status.h"

namespace besync {

/// Minimal command-line flag parser for the experiment binaries:
/// `--name=value`, `--name value`, and boolean `--name`. Unknown flags are an
/// error so typos in sweep scripts fail loudly.
class Flags {
 public:
  /// Parses argv; returns an error on malformed or unknown flags.
  /// `known` lists the accepted flag names (without dashes).
  static Status Parse(int argc, char** argv, const std::vector<std::string>& known,
                      Flags* out);

  bool Has(const std::string& name) const;
  std::string GetString(const std::string& name, const std::string& fallback) const;
  int64_t GetInt(const std::string& name, int64_t fallback) const;
  double GetDouble(const std::string& name, double fallback) const;
  bool GetBool(const std::string& name, bool fallback) const;

 private:
  std::map<std::string, std::string> values_;
};

}  // namespace besync

#endif  // BESYNC_UTIL_FLAGS_H_
