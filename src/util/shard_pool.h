#ifndef BESYNC_UTIL_SHARD_POOL_H_
#define BESYNC_UTIL_SHARD_POOL_H_

#include <condition_variable>
#include <cstdint>
#include <functional>
#include <mutex>
#include <thread>
#include <utility>
#include <vector>

namespace besync {

/// A fixed team of workers for deterministic intra-run sharding: Run(fn)
/// executes fn(shard) once for every shard in [0, num_shards), split across
/// the team, and returns only when all shards finished — the per-tick
/// barrier of the sharded simulation phases.
///
/// This is deliberately not ThreadPool (one shared FIFO of arbitrary
/// tasks): shards are pinned to lanes (shard s always runs on the same
/// thread, shard 0 on the caller), there is no queue to contend on, and a
/// whole fan-out-plus-barrier costs one lock round-trip per worker. The
/// determinism contract lives one level up: callers partition state so that
/// shard s touches only its own slice, making the execution bitwise
/// identical to running the shards sequentially — at any team size.
///
/// Run() must not be called concurrently with itself (one simulation, one
/// tick loop). Shard functions must not throw.
class ShardPool {
 public:
  /// A team of `num_shards` lanes (>= 1, checked): `num_shards - 1` worker
  /// threads plus the calling thread.
  explicit ShardPool(int num_shards);
  ~ShardPool();

  ShardPool(const ShardPool&) = delete;
  ShardPool& operator=(const ShardPool&) = delete;

  int num_shards() const { return num_shards_; }

  /// Runs fn(0), ..., fn(num_shards - 1) across the team; blocks until all
  /// have returned. fn(0) runs on the calling thread.
  void Run(const std::function<void(int)>& fn);

  /// Run(fn) with a caller-thread prelude overlapped with the workers:
  /// `main_prelude` executes on the calling thread after the worker shards
  /// are dispatched and before fn(0). Use it for serial work (e.g. a
  /// send-order shuffle drawing the main thread's RNG) that no shard
  /// function reads — it then costs no wall-clock at all instead of
  /// serializing ahead of the fan-out. With one shard the prelude simply
  /// runs before fn(0).
  void Run(const std::function<void(int)>& fn,
           const std::function<void()>& main_prelude);

  /// Contiguous half-open range [first, last) of shard `shard` over `count`
  /// items: the canonical deterministic partition (sizes differ by at most
  /// one; depends only on (count, shard, num_shards)).
  ///
  /// Footgun when `count < num_shards`: the trailing shards get EMPTY
  /// ranges, so a team sized past the item count silently idles those
  /// lanes every Run() — pure fan-out/barrier overhead for zero work.
  /// Worse, with the main_prelude overload the prelude still overlaps
  /// only fn(0): an over-wide team does not hide more serial work, it
  /// just wakes more threads. Callers should clamp their team size to
  /// the largest per-shard item count (CooperativeScheduler::Initialize
  /// clamps run_threads to max(num_sources, num_caches)).
  static std::pair<int64_t, int64_t> ShardRange(int64_t count, int shard,
                                                int num_shards);

  /// Inverse of ShardRange: the shard whose range contains `index`
  /// (0 <= index < count). For every shard s and every i in
  /// ShardRange(count, s, num_shards), ShardOf(count, i, num_shards) == s —
  /// the routing function of cross-shard handoffs (which shard owns item
  /// i?) without scanning ranges.
  static int ShardOf(int64_t count, int64_t index, int num_shards);

 private:
  void WorkerLoop(int shard);

  const int num_shards_;
  std::vector<std::thread> workers_;
  std::mutex mutex_;
  std::condition_variable start_;
  std::condition_variable done_;
  /// Incremented once per Run(); workers run their shard once per epoch.
  uint64_t epoch_ = 0;
  /// Workers still running the current epoch's shard.
  int running_ = 0;
  const std::function<void(int)>* job_ = nullptr;
  bool stopping_ = false;
};

}  // namespace besync

#endif  // BESYNC_UTIL_SHARD_POOL_H_
