#include "util/phase_timer.h"

#include <chrono>

namespace besync {

int64_t PhaseTimer::total_nanos() const {
  int64_t total = 0;
  for (const auto& phase : nanos_) total += phase.load(std::memory_order_relaxed);
  return total;
}

void PhaseTimer::Reset() {
  for (auto& phase : nanos_) phase.store(0, std::memory_order_relaxed);
}

PhaseTimer::Snapshot PhaseTimer::TakeSnapshot() const {
  Snapshot snapshot;
  for (int phase = 0; phase < kNumPhases; ++phase) {
    snapshot.nanos[phase] = nanos_[phase].load(std::memory_order_relaxed);
  }
  return snapshot;
}

PhaseTimer::Snapshot PhaseTimer::Delta(const Snapshot& now,
                                       const Snapshot& prev) {
  Snapshot delta;
  for (int phase = 0; phase < kNumPhases; ++phase) {
    delta.nanos[phase] = now.nanos[phase] - prev.nanos[phase];
  }
  return delta;
}

const char* PhaseTimer::Name(Phase phase) {
  switch (phase) {
    case Phase::kBeginTick:
      return "begin_tick";
    case Phase::kSend:
      return "send";
    case Phase::kRelay:
      return "relay";
    case Phase::kDeliverApply:
      return "deliver_apply";
    case Phase::kReadPath:
      return "read_path";
    case Phase::kFeedback:
      return "feedback";
  }
  return "unknown";
}

int64_t PhaseTimer::NowNanos() {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

}  // namespace besync
