#ifndef BESYNC_UTIL_LOGGING_H_
#define BESYNC_UTIL_LOGGING_H_

#include <iostream>
#include <sstream>
#include <string>

namespace besync {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarning = 2, kError = 3, kFatal = 4 };

/// Process-wide minimum level; messages below it are discarded.
LogLevel GetLogLevel();
void SetLogLevel(LogLevel level);

namespace internal {

/// Stream-style log sink. Writes on destruction; aborts for kFatal.
class LogMessage {
 public:
  LogMessage(LogLevel level, const char* file, int line);
  ~LogMessage();

  LogMessage(const LogMessage&) = delete;
  LogMessage& operator=(const LogMessage&) = delete;

  template <typename T>
  LogMessage& operator<<(const T& value) {
    if (enabled_) stream_ << value;
    return *this;
  }

 private:
  LogLevel level_;
  bool enabled_;
  std::ostringstream stream_;
};

/// Swallows the streamed expression when a log statement is compiled out.
struct LogMessageVoidify {
  void operator&(LogMessage&) {}
};

}  // namespace internal
}  // namespace besync

#define BESYNC_LOG_INTERNAL(level) \
  ::besync::internal::LogMessage(level, __FILE__, __LINE__)

#define BESYNC_LOG(severity) \
  BESYNC_LOG_INTERNAL(::besync::LogLevel::k##severity)

/// Invariant check: always on, aborts with a message on failure. Use for
/// conditions that indicate a bug in this library, not for user input
/// validation (use Status for that).
#define BESYNC_CHECK(condition)                                    \
  (condition) ? (void)0                                            \
              : ::besync::internal::LogMessageVoidify() &          \
                    BESYNC_LOG_INTERNAL(::besync::LogLevel::kFatal) \
                        << "Check failed: " #condition " "

#define BESYNC_CHECK_OK(expr)                                       \
  do {                                                              \
    ::besync::Status _besync_check_status = (expr);                 \
    BESYNC_CHECK(_besync_check_status.ok())                         \
        << "'" #expr "' failed: " << _besync_check_status.ToString(); \
  } while (false)

#define BESYNC_CHECK_EQ(a, b) BESYNC_CHECK((a) == (b)) << "(" << (a) << " vs " << (b) << ") "
#define BESYNC_CHECK_NE(a, b) BESYNC_CHECK((a) != (b)) << "(" << (a) << " vs " << (b) << ") "
#define BESYNC_CHECK_LT(a, b) BESYNC_CHECK((a) < (b)) << "(" << (a) << " vs " << (b) << ") "
#define BESYNC_CHECK_LE(a, b) BESYNC_CHECK((a) <= (b)) << "(" << (a) << " vs " << (b) << ") "
#define BESYNC_CHECK_GT(a, b) BESYNC_CHECK((a) > (b)) << "(" << (a) << " vs " << (b) << ") "
#define BESYNC_CHECK_GE(a, b) BESYNC_CHECK((a) >= (b)) << "(" << (a) << " vs " << (b) << ") "

#ifdef NDEBUG
#define BESYNC_DCHECK(condition) BESYNC_CHECK(true || (condition))
#else
#define BESYNC_DCHECK(condition) BESYNC_CHECK(condition)
#endif

#endif  // BESYNC_UTIL_LOGGING_H_
