#include "util/timer_wheel.h"

#include <algorithm>
#include <cmath>
#include <utility>

#include "util/logging.h"

namespace besync {
namespace {

// Saturation bound for bucket indices: far enough out that no simulation
// reaches it, small enough that bucket arithmetic (+slots_) cannot
// overflow. Bucketing stays monotone under saturation, which is all the
// exactness argument needs (ties inside one bucket are settled by the
// near heap on actual (time, seq)).
constexpr double kMaxBucket = 9.0e15;

int64_t FloorDiv(int64_t a, int64_t b) {
  int64_t q = a / b;
  if ((a % b != 0) && ((a < 0) != (b < 0))) --q;
  return q;
}

}  // namespace

TimerWheel::TimerWheel(Options options)
    : resolution_(options.resolution),
      slots_(options.level_slots),
      level0_(options.level_slots),
      level1_(options.level_slots),
      cur_bucket_(-1) {
  BESYNC_CHECK(resolution_ > 0.0) << "wheel resolution must be positive";
  BESYNC_CHECK(slots_ >= 2) << "wheel needs at least 2 slots per level";
}

int64_t TimerWheel::BucketOf(double time) const {
  const double bucket = std::floor(time / resolution_);
  if (bucket >= kMaxBucket) return static_cast<int64_t>(kMaxBucket);
  if (bucket <= -kMaxBucket) return -static_cast<int64_t>(kMaxBucket);
  return static_cast<int64_t>(bucket);
}

void TimerWheel::Push(double time, WheelCallback callback) {
  uint32_t slot;
  if (free_slots_.empty()) {
    slot = static_cast<uint32_t>(callbacks_.size());
    callbacks_.push_back(std::move(callback));
  } else {
    slot = free_slots_.back();
    free_slots_.pop_back();
    callbacks_[slot] = std::move(callback);
  }
  const Item item{time, next_seq_++, slot};
  ++size_;
  const int64_t bucket = BucketOf(time);
  if (bucket <= cur_bucket_) {
    near_.push_back(item);
    std::push_heap(near_.begin(), near_.end(), LaterCmp{});
    return;
  }
  PlaceInWheel(item, bucket);
}

void TimerWheel::PlaceInWheel(Item item, int64_t bucket) {
  if (bucket - cur_bucket_ <= slots_) {
    level0_[bucket % slots_].push_back(item);
    ++level0_count_;
    return;
  }
  const int64_t b1 = FloorDiv(bucket, slots_);
  if (b1 - FloorDiv(cur_bucket_, slots_) <= slots_) {
    level1_[b1 % slots_].push_back(item);
    ++level1_count_;
    return;
  }
  if (far_.empty() || item.time < far_min_time_) far_min_time_ = item.time;
  far_.push_back(item);
}

void TimerWheel::Cascade(int64_t b1) {
  std::vector<Item>& bucket = level1_[b1 % slots_];
  if (bucket.empty()) return;
  level1_count_ -= bucket.size();
  for (const Item& item : bucket) {
    const int64_t b0 = BucketOf(item.time);
    if (b0 <= cur_bucket_) {
      near_.push_back(item);
      std::push_heap(near_.begin(), near_.end(), LaterCmp{});
    } else {
      PlaceInWheel(item, b0);
    }
  }
  bucket.clear();
}

void TimerWheel::Prepare() {
  while (near_.empty()) {
    if (level0_count_ > 0) {
      // Step one bucket: cascade on level-1 boundary crossings, then drain
      // the bucket that just entered the near region.
      ++cur_bucket_;
      if (cur_bucket_ % slots_ == 0) Cascade(FloorDiv(cur_bucket_, slots_));
      std::vector<Item>& bucket = level0_[cur_bucket_ % slots_];
      level0_count_ -= bucket.size();
      for (const Item& item : bucket) {
        near_.push_back(item);
        std::push_heap(near_.begin(), near_.end(), LaterCmp{});
      }
      bucket.clear();
    } else if (level1_count_ > 0) {
      // Level 0 is dry: jump straight to the next level-1 boundary.
      cur_bucket_ = (FloorDiv(cur_bucket_, slots_) + 1) * slots_;
      Cascade(FloorDiv(cur_bucket_, slots_));
    } else {
      // Wheels are dry: jump to the far list's minimum and re-bucket it.
      BESYNC_CHECK(!far_.empty()) << "TimerWheel::Prepare on an empty wheel";
      cur_bucket_ = BucketOf(far_min_time_) - 1;
      std::vector<Item> pending;
      pending.swap(far_);
      for (const Item& item : pending) {
        const int64_t b0 = BucketOf(item.time);
        if (b0 <= cur_bucket_) {
          near_.push_back(item);
          std::push_heap(near_.begin(), near_.end(), LaterCmp{});
        } else {
          PlaceInWheel(item, b0);
        }
      }
    }
  }
}

double TimerWheel::NextTime() {
  BESYNC_CHECK(size_ > 0) << "TimerWheel::NextTime on an empty wheel";
  Prepare();
  return near_.front().time;
}

void TimerWheel::PopInto(double* time, WheelCallback* callback) {
  BESYNC_CHECK(size_ > 0) << "TimerWheel::PopInto on an empty wheel";
  Prepare();
  std::pop_heap(near_.begin(), near_.end(), LaterCmp{});
  const Item item = near_.back();
  near_.pop_back();
  *time = item.time;
  *callback = std::move(callbacks_[item.slot]);
  callbacks_[item.slot] = nullptr;
  free_slots_.push_back(item.slot);
  --size_;
}

}  // namespace besync
