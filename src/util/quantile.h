#ifndef BESYNC_UTIL_QUANTILE_H_
#define BESYNC_UTIL_QUANTILE_H_

#include <cstddef>
#include <cstdint>
#include <limits>
#include <vector>

namespace besync {

/// Deterministic streaming quantile digest: a bounded set of weighted
/// centroids over the observed values, compressed by equal-weight binning of
/// the value-sorted centroid list. Used by the read path for per-read
/// staleness percentiles (p50/p95/p99) without retaining every sample.
///
/// Determinism: the digest contains no randomness — its state is a pure
/// function of the sequence of Add/Merge calls, so single-threaded runs
/// (every runner job is one) reproduce quantiles bitwise, and merging the
/// same digests in the same order always yields the same result (pinned by
/// tests/quantile_test.cc).
///
/// Accuracy: exact while the number of distinct insertions stays at or
/// below `compression` (no bin ever holds two values); afterwards each
/// reported quantile is off by at most ~1/compression in rank. Min and max
/// are always exact.
class QuantileDigest {
 public:
  /// `compression` = maximum centroids retained after a compaction; larger
  /// is more accurate and more memory. Values < 8 are clamped up to 8.
  explicit QuantileDigest(int compression = 256);

  /// Adds one sample with weight `weight` (default one observation).
  void Add(double value, int64_t weight = 1);

  /// Folds `other` into this digest (equivalent to re-adding its centroids
  /// in value order). Deterministic: merging the same operands in the same
  /// order always produces the same digest.
  void Merge(const QuantileDigest& other);

  /// Total weight added so far.
  int64_t count() const { return count_; }
  bool empty() const { return count_ == 0; }
  /// Exact extremes of everything added (0 when empty).
  double min() const { return count_ > 0 ? min_ : 0.0; }
  double max() const { return count_ > 0 ? max_ : 0.0; }
  /// Weighted mean of everything added (exact up to float summation).
  double mean() const;

  /// Value at quantile q in [0, 1], linearly interpolated between centroid
  /// midpoints and clamped to the exact [min, max]. Returns 0 when empty.
  double Quantile(double q) const;

  void Reset();

 private:
  struct Centroid {
    double mean = 0.0;
    int64_t weight = 0;
  };

  /// Sorts pending adds into the centroid list and, if over budget,
  /// rebins to at most `compression_` equal-weight centroids.
  void Compress();

  int compression_;
  /// Value-sorted after every Compress; unsorted tail appended by Add.
  std::vector<Centroid> centroids_;
  /// Centroids in [0, sorted_) are sorted and compacted.
  size_t sorted_ = 0;
  int64_t count_ = 0;
  double weighted_sum_ = 0.0;
  double min_ = std::numeric_limits<double>::infinity();
  double max_ = -std::numeric_limits<double>::infinity();
};

}  // namespace besync

#endif  // BESYNC_UTIL_QUANTILE_H_
