#ifndef BESYNC_UTIL_RESULT_H_
#define BESYNC_UTIL_RESULT_H_

#include <optional>
#include <utility>

#include "util/logging.h"
#include "util/status.h"

namespace besync {

/// A value-or-error outcome, the fallible counterpart of returning T by value.
///
///   Result<Config> ParseConfig(std::string_view text);
///   ...
///   BESYNC_ASSIGN_OR_RETURN(Config config, ParseConfig(text));
template <typename T>
class Result {
 public:
  /// Implicit construction from a value (success).
  Result(T value) : value_(std::move(value)) {}  // NOLINT(google-explicit-constructor)

  /// Implicit construction from a non-OK status (error). Constructing a
  /// Result from an OK status is a programming error.
  Result(Status status) : status_(std::move(status)) {  // NOLINT
    BESYNC_CHECK(!status_.ok()) << "Result constructed from OK status";
  }

  bool ok() const { return value_.has_value(); }
  const Status& status() const { return status_; }

  /// Returns the contained value; the Result must be ok().
  const T& ValueOrDie() const& {
    BESYNC_CHECK(ok()) << "ValueOrDie on error Result: " << status_.ToString();
    return *value_;
  }
  T& ValueOrDie() & {
    BESYNC_CHECK(ok()) << "ValueOrDie on error Result: " << status_.ToString();
    return *value_;
  }
  T&& ValueOrDie() && {
    BESYNC_CHECK(ok()) << "ValueOrDie on error Result: " << status_.ToString();
    return std::move(*value_);
  }

  const T& operator*() const& { return ValueOrDie(); }
  T& operator*() & { return ValueOrDie(); }
  const T* operator->() const { return &ValueOrDie(); }
  T* operator->() { return &ValueOrDie(); }

  /// Returns the value, or `fallback` if this holds an error.
  T ValueOr(T fallback) const {
    return ok() ? *value_ : std::move(fallback);
  }

 private:
  Status status_;  // OK iff value_ is set
  std::optional<T> value_;
};

/// Evaluates `rexpr` (a Result<T>); on error returns the status from the
/// enclosing function, otherwise assigns the value to `lhs`.
#define BESYNC_ASSIGN_OR_RETURN(lhs, rexpr)                       \
  BESYNC_ASSIGN_OR_RETURN_IMPL_(                                  \
      BESYNC_STATUS_CONCAT_(_besync_result, __LINE__), lhs, rexpr)

#define BESYNC_STATUS_CONCAT_INNER_(x, y) x##y
#define BESYNC_STATUS_CONCAT_(x, y) BESYNC_STATUS_CONCAT_INNER_(x, y)

#define BESYNC_ASSIGN_OR_RETURN_IMPL_(result, lhs, rexpr) \
  auto result = (rexpr);                                  \
  if (!result.ok()) return result.status();               \
  lhs = std::move(result).ValueOrDie()

}  // namespace besync

#endif  // BESYNC_UTIL_RESULT_H_
