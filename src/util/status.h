#ifndef BESYNC_UTIL_STATUS_H_
#define BESYNC_UTIL_STATUS_H_

#include <memory>
#include <ostream>
#include <string>
#include <utility>

namespace besync {

/// Error categories used across the library. Modeled after the Arrow/RocksDB
/// status idiom: fallible public APIs return a Status (or a Result<T>) rather
/// than throwing exceptions.
enum class StatusCode {
  kOk = 0,
  kInvalidArgument = 1,
  kOutOfRange = 2,
  kNotFound = 3,
  kAlreadyExists = 4,
  kFailedPrecondition = 5,
  kUnimplemented = 6,
  kInternal = 7,
  kIOError = 8,
};

/// Returns a short human-readable name, e.g. "Invalid argument".
const char* StatusCodeToString(StatusCode code);

/// A success-or-error outcome. An OK Status carries no allocation; error
/// statuses carry a code and a message.
///
/// Typical use:
///
///   Status DoThing() {
///     if (bad) return Status::InvalidArgument("bad thing: ", detail);
///     return Status::OK();
///   }
class Status {
 public:
  /// Constructs an OK status.
  Status() = default;

  Status(StatusCode code, std::string message) {
    if (code != StatusCode::kOk) {
      rep_ = std::make_unique<Rep>(Rep{code, std::move(message)});
    }
  }

  Status(const Status& other) { CopyFrom(other); }
  Status& operator=(const Status& other) {
    if (this != &other) CopyFrom(other);
    return *this;
  }
  Status(Status&&) noexcept = default;
  Status& operator=(Status&&) noexcept = default;

  static Status OK() { return Status(); }

  template <typename... Args>
  static Status InvalidArgument(Args&&... args) {
    return Make(StatusCode::kInvalidArgument, std::forward<Args>(args)...);
  }
  template <typename... Args>
  static Status OutOfRange(Args&&... args) {
    return Make(StatusCode::kOutOfRange, std::forward<Args>(args)...);
  }
  template <typename... Args>
  static Status NotFound(Args&&... args) {
    return Make(StatusCode::kNotFound, std::forward<Args>(args)...);
  }
  template <typename... Args>
  static Status AlreadyExists(Args&&... args) {
    return Make(StatusCode::kAlreadyExists, std::forward<Args>(args)...);
  }
  template <typename... Args>
  static Status FailedPrecondition(Args&&... args) {
    return Make(StatusCode::kFailedPrecondition, std::forward<Args>(args)...);
  }
  template <typename... Args>
  static Status Unimplemented(Args&&... args) {
    return Make(StatusCode::kUnimplemented, std::forward<Args>(args)...);
  }
  template <typename... Args>
  static Status Internal(Args&&... args) {
    return Make(StatusCode::kInternal, std::forward<Args>(args)...);
  }
  template <typename... Args>
  static Status IOError(Args&&... args) {
    return Make(StatusCode::kIOError, std::forward<Args>(args)...);
  }

  bool ok() const { return rep_ == nullptr; }
  StatusCode code() const { return rep_ ? rep_->code : StatusCode::kOk; }
  const std::string& message() const {
    static const std::string kEmpty;
    return rep_ ? rep_->message : kEmpty;
  }

  bool IsInvalidArgument() const { return code() == StatusCode::kInvalidArgument; }
  bool IsOutOfRange() const { return code() == StatusCode::kOutOfRange; }
  bool IsNotFound() const { return code() == StatusCode::kNotFound; }
  bool IsAlreadyExists() const { return code() == StatusCode::kAlreadyExists; }
  bool IsFailedPrecondition() const {
    return code() == StatusCode::kFailedPrecondition;
  }
  bool IsUnimplemented() const { return code() == StatusCode::kUnimplemented; }
  bool IsInternal() const { return code() == StatusCode::kInternal; }
  bool IsIOError() const { return code() == StatusCode::kIOError; }

  /// "OK" or "<Code>: <message>".
  std::string ToString() const;

 private:
  struct Rep {
    StatusCode code;
    std::string message;
  };

  template <typename... Args>
  static Status Make(StatusCode code, Args&&... args) {
    std::string message;
    (AppendToMessage(&message, std::forward<Args>(args)), ...);
    return Status(code, std::move(message));
  }

  static void AppendToMessage(std::string* message, const std::string& part) {
    message->append(part);
  }
  static void AppendToMessage(std::string* message, const char* part) {
    message->append(part);
  }
  template <typename T>
  static void AppendToMessage(std::string* message, const T& part) {
    message->append(std::to_string(part));
  }

  void CopyFrom(const Status& other) {
    rep_ = other.rep_ ? std::make_unique<Rep>(*other.rep_) : nullptr;
  }

  std::unique_ptr<Rep> rep_;  // null == OK
};

inline std::ostream& operator<<(std::ostream& os, const Status& status) {
  return os << status.ToString();
}

/// Propagates errors to the caller: `BESYNC_RETURN_IF_ERROR(DoThing());`
#define BESYNC_RETURN_IF_ERROR(expr)                      \
  do {                                                    \
    ::besync::Status _besync_status = (expr);             \
    if (!_besync_status.ok()) return _besync_status;      \
  } while (false)

}  // namespace besync

#endif  // BESYNC_UTIL_STATUS_H_
