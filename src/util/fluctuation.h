#ifndef BESYNC_UTIL_FLUCTUATION_H_
#define BESYNC_UTIL_FLUCTUATION_H_

#include <memory>

#include "util/random.h"

namespace besync {

/// A nonnegative time-varying quantity, used for both bandwidth capacities
/// and object weights. The paper's simulations let "available cache-side and
/// source-side bandwidth fluctuate over time following a sine wave pattern"
/// and let "weights vary over time following sine-wave patterns with
/// randomly-assigned amplitudes and periods" (Section 6).
class Fluctuation {
 public:
  virtual ~Fluctuation() = default;

  /// Value at simulated time `t` (seconds). Always >= 0.
  virtual double ValueAt(double t) const = 0;

  /// Time average of the signal (the paper's B_S / B_C / base-weight knobs).
  virtual double average() const = 0;

  /// Deep copy: an independent instance that returns the same ValueAt(t)
  /// for every t. Required so whole workloads can be cloned for concurrent
  /// runs (CloneWorkload in data/workload.h).
  virtual std::unique_ptr<Fluctuation> Clone() const = 0;
};

/// Constant signal (the paper's mB = 0 case).
class ConstantFluctuation : public Fluctuation {
 public:
  explicit ConstantFluctuation(double value);

  double ValueAt(double t) const override;
  double average() const override { return value_; }
  std::unique_ptr<Fluctuation> Clone() const override {
    return std::make_unique<ConstantFluctuation>(value_);
  }

 private:
  double value_;
};

/// base * (1 + amplitude * sin(2*pi*t/period + phase)), with amplitude in
/// [0, 1) so the signal stays positive.
class SineFluctuation : public Fluctuation {
 public:
  SineFluctuation(double base, double relative_amplitude, double period, double phase);

  double ValueAt(double t) const override;
  double average() const override { return base_; }
  std::unique_ptr<Fluctuation> Clone() const override {
    return std::make_unique<SineFluctuation>(base_, relative_amplitude_, period_, phase_);
  }

  double relative_amplitude() const { return relative_amplitude_; }
  double period() const { return period_; }

 private:
  double base_;
  double relative_amplitude_;
  double period_;
  double phase_;
};

/// Builds the paper's bandwidth model: average bandwidth `average` with
/// maximum relative rate of change `max_change_rate` (the parameter mB;
/// Section 6: "The maximum rate of bandwidth change is controlled by
/// simulation parameter mB. When mB = 0, the amount of available bandwidth
/// remains constant.").
///
/// For a sine B(t) = B*(1 + a*sin(2*pi*t/P + phi)), the maximum relative
/// change rate is max|B'(t)|/B = 2*pi*a/P. We fix a = 0.5 and solve for the
/// period P = 2*pi*a/mB, drawing a random phase so multiple links are not
/// synchronized.
std::unique_ptr<Fluctuation> MakeBandwidthFluctuation(double average,
                                                      double max_change_rate,
                                                      Rng* rng);

/// Builds a randomly-parameterized weight fluctuation: base weight `base`,
/// random relative amplitude in [0, max_amplitude] and random period in
/// [min_period, max_period] (Section 6: weights "fluctuate over time
/// following sine-wave patterns with randomly-assigned amplitudes and
/// periods"). With max_amplitude = 0 the weight is constant.
std::unique_ptr<Fluctuation> MakeWeightFluctuation(double base, double max_amplitude,
                                                   double min_period, double max_period,
                                                   Rng* rng);

}  // namespace besync

#endif  // BESYNC_UTIL_FLUCTUATION_H_
