#include "util/logging.h"

#include <cstdlib>

namespace besync {

namespace {
LogLevel g_log_level = LogLevel::kInfo;

const char* LevelName(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "DEBUG";
    case LogLevel::kInfo:
      return "INFO";
    case LogLevel::kWarning:
      return "WARN";
    case LogLevel::kError:
      return "ERROR";
    case LogLevel::kFatal:
      return "FATAL";
  }
  return "?";
}
}  // namespace

LogLevel GetLogLevel() { return g_log_level; }
void SetLogLevel(LogLevel level) { g_log_level = level; }

namespace internal {

LogMessage::LogMessage(LogLevel level, const char* file, int line)
    : level_(level), enabled_(level >= g_log_level || level == LogLevel::kFatal) {
  if (enabled_) {
    const char* base = file;
    for (const char* p = file; *p; ++p) {
      if (*p == '/') base = p + 1;
    }
    stream_ << "[" << LevelName(level) << " " << base << ":" << line << "] ";
  }
}

LogMessage::~LogMessage() {
  if (enabled_) {
    std::cerr << stream_.str() << std::endl;
  }
  if (level_ == LogLevel::kFatal) {
    std::abort();
  }
}

}  // namespace internal
}  // namespace besync
