#include "util/quantile.h"

#include <algorithm>

#include "util/logging.h"

namespace besync {

QuantileDigest::QuantileDigest(int compression)
    : compression_(std::max(compression, 8)) {
  centroids_.reserve(static_cast<size_t>(compression_) * 2 + 1);
}

void QuantileDigest::Add(double value, int64_t weight) {
  BESYNC_CHECK_GE(weight, 0);
  if (weight == 0) return;
  centroids_.push_back({value, weight});
  count_ += weight;
  weighted_sum_ += value * static_cast<double>(weight);
  min_ = std::min(min_, value);
  max_ = std::max(max_, value);
  if (centroids_.size() >= static_cast<size_t>(compression_) * 2) Compress();
}

void QuantileDigest::Merge(const QuantileDigest& other) {
  // Other's centroids are re-added in its internal (sorted-prefix, then
  // insertion) order — a pure function of the two operands, so repeated
  // merges of the same digests agree bitwise.
  for (const Centroid& centroid : other.centroids_) {
    Add(centroid.mean, centroid.weight);
  }
}

void QuantileDigest::Compress() {
  if (centroids_.size() <= static_cast<size_t>(sorted_)) return;
  // stable_sort: equal values keep their insertion order, so compaction is
  // deterministic even with duplicate sample values.
  std::stable_sort(centroids_.begin(), centroids_.end(),
                   [](const Centroid& a, const Centroid& b) { return a.mean < b.mean; });
  if (centroids_.size() > static_cast<size_t>(compression_)) {
    // Equal-weight rebinning: greedily pack value-adjacent centroids into
    // bins of ~count/compression weight each.
    const double target = static_cast<double>(count_) / compression_;
    std::vector<Centroid> packed;
    packed.reserve(static_cast<size_t>(compression_) + 1);
    Centroid bin;
    double bin_sum = 0.0;
    for (const Centroid& centroid : centroids_) {
      if (bin.weight > 0 &&
          static_cast<double>(bin.weight + centroid.weight) > target &&
          static_cast<double>(bin.weight) >= 0.5 * target) {
        bin.mean = bin_sum / static_cast<double>(bin.weight);
        packed.push_back(bin);
        bin = Centroid{};
        bin_sum = 0.0;
      }
      bin.weight += centroid.weight;
      bin_sum += centroid.mean * static_cast<double>(centroid.weight);
    }
    if (bin.weight > 0) {
      bin.mean = bin_sum / static_cast<double>(bin.weight);
      packed.push_back(bin);
    }
    centroids_ = std::move(packed);
  }
  sorted_ = centroids_.size();
}

double QuantileDigest::mean() const {
  return count_ > 0 ? weighted_sum_ / static_cast<double>(count_) : 0.0;
}

double QuantileDigest::Quantile(double q) const {
  if (count_ == 0) return 0.0;
  q = std::min(std::max(q, 0.0), 1.0);
  // Quantiles read a fully-compacted view; Compress is not const, so sort a
  // scratch copy when unsorted adds are pending (queries are rare — once per
  // stats() call — while adds are hot).
  const std::vector<Centroid>* centroids = &centroids_;
  std::vector<Centroid> scratch;
  if (sorted_ != centroids_.size()) {
    scratch = centroids_;
    std::stable_sort(scratch.begin(), scratch.end(),
                     [](const Centroid& a, const Centroid& b) { return a.mean < b.mean; });
    centroids = &scratch;
  }
  // Each centroid sits at the midpoint of its weight span; interpolate
  // between neighbours, clamping the tails to the exact extremes.
  const double rank = q * static_cast<double>(count_);
  double cumulative = 0.0;
  double previous_mean = min_;
  double previous_mid = 0.0;
  for (const Centroid& centroid : *centroids) {
    const double mid = cumulative + 0.5 * static_cast<double>(centroid.weight);
    if (rank <= mid) {
      const double span = mid - previous_mid;
      const double fraction = span > 0.0 ? (rank - previous_mid) / span : 1.0;
      return previous_mean + fraction * (centroid.mean - previous_mean);
    }
    cumulative += static_cast<double>(centroid.weight);
    previous_mean = centroid.mean;
    previous_mid = mid;
  }
  return max_;
}

void QuantileDigest::Reset() {
  centroids_.clear();
  sorted_ = 0;
  count_ = 0;
  weighted_sum_ = 0.0;
  min_ = std::numeric_limits<double>::infinity();
  max_ = -std::numeric_limits<double>::infinity();
}

}  // namespace besync
