#include "util/status.h"

namespace besync {

const char* StatusCodeToString(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "OK";
    case StatusCode::kInvalidArgument:
      return "Invalid argument";
    case StatusCode::kOutOfRange:
      return "Out of range";
    case StatusCode::kNotFound:
      return "Not found";
    case StatusCode::kAlreadyExists:
      return "Already exists";
    case StatusCode::kFailedPrecondition:
      return "Failed precondition";
    case StatusCode::kUnimplemented:
      return "Unimplemented";
    case StatusCode::kInternal:
      return "Internal error";
    case StatusCode::kIOError:
      return "I/O error";
  }
  return "Unknown";
}

std::string Status::ToString() const {
  if (ok()) return "OK";
  std::string result = StatusCodeToString(code());
  result += ": ";
  result += message();
  return result;
}

}  // namespace besync
