#ifndef BESYNC_UTIL_STATS_H_
#define BESYNC_UTIL_STATS_H_

#include <cstdint>
#include <limits>

namespace besync {

/// Streaming mean/variance/min/max over discrete samples (Welford).
class RunningStat {
 public:
  void Add(double value);

  int64_t count() const { return count_; }
  double mean() const { return count_ > 0 ? mean_ : 0.0; }
  /// Sample variance (n-1 denominator); 0 for fewer than two samples.
  double variance() const;
  double stddev() const;
  double min() const { return count_ > 0 ? min_ : 0.0; }
  double max() const { return count_ > 0 ? max_ : 0.0; }
  double sum() const { return mean_ * static_cast<double>(count_); }

  void Reset();

 private:
  int64_t count_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = std::numeric_limits<double>::infinity();
  double max_ = -std::numeric_limits<double>::infinity();
};

/// Time-weighted average of a piecewise-constant signal: feed (value held,
/// duration held) pairs; `mean()` is ∫ value dt / ∫ dt. This is the
/// "time-averaged divergence" accumulator used throughout the evaluation.
class TimeWeightedMean {
 public:
  /// Accounts for `value` having been held for `duration` time units.
  /// Negative durations are ignored.
  void Add(double value, double duration);

  double total_time() const { return total_time_; }
  double integral() const { return integral_; }
  double mean() const { return total_time_ > 0.0 ? integral_ / total_time_ : 0.0; }

  void Reset();

 private:
  double integral_ = 0.0;
  double total_time_ = 0.0;
};

/// Ratio counter for link utilization: used capacity vs offered capacity.
class UtilizationStat {
 public:
  void Add(double used, double capacity);

  double used() const { return used_; }
  double capacity() const { return capacity_; }
  /// Fraction of offered capacity actually used (0 if none offered).
  double utilization() const { return capacity_ > 0.0 ? used_ / capacity_ : 0.0; }

  void Reset();

 private:
  double used_ = 0.0;
  double capacity_ = 0.0;
};

}  // namespace besync

#endif  // BESYNC_UTIL_STATS_H_
