#ifndef BESYNC_UTIL_PHASE_TIMER_H_
#define BESYNC_UTIL_PHASE_TIMER_H_

#include <atomic>
#include <cstdint>

namespace besync {

/// Wall-clock accumulator for the cooperative tick's phases: each phase of
/// every tick adds its duration, and the totals show where a run's wall
/// time went (the Amdahl ledger behind bench_scale --perf's
/// "phase_breakdown" block). Accumulation is atomic so one timer can be
/// shared across concurrently running jobs (exp/runner.h); the numbers are
/// wall times and therefore nondeterministic — they must never enter the
/// deterministic run JSON, only the opt-in perf member.
///
/// A null-timer Scope is a branch and nothing else, so wiring the timer
/// through the hot loop costs nothing when profiling is off.
class PhaseTimer {
 public:
  /// The tick phases of core/system.cc's CooperativeScheduler::Tick, in
  /// execution order. kBeginTick covers fault application, link advancement
  /// and the control-mail drain; kSend covers recovery + send phases (push
  /// or invalidation); kDeliverApply covers the delivery pop and the
  /// cache-major apply; kReadPath covers reads + pull requests; kFeedback
  /// the surplus-feedback phase.
  enum class Phase : int {
    kBeginTick = 0,
    kSend,
    kRelay,
    kDeliverApply,
    kReadPath,
    kFeedback,
  };
  static constexpr int kNumPhases = 6;

  PhaseTimer() = default;
  PhaseTimer(const PhaseTimer&) = delete;
  PhaseTimer& operator=(const PhaseTimer&) = delete;

  void Add(Phase phase, int64_t nanos) {
    nanos_[static_cast<int>(phase)].fetch_add(nanos, std::memory_order_relaxed);
  }

  int64_t nanos(Phase phase) const {
    return nanos_[static_cast<int>(phase)].load(std::memory_order_relaxed);
  }

  /// Sum over all phases.
  int64_t total_nanos() const;

  void Reset();

  /// A consistent-enough copy of the accumulators, readable mid-run (each
  /// phase is one relaxed load; phases that are mid-accumulation on another
  /// thread simply show their last completed scope). Lets callers take
  /// per-window breakdowns — e.g. per-measurement-interval phase costs —
  /// instead of one aggregate at exit: snapshot at the window edges and
  /// Delta() the two.
  struct Snapshot {
    int64_t nanos[kNumPhases] = {};
    int64_t total() const {
      int64_t sum = 0;
      for (int64_t phase : nanos) sum += phase;
      return sum;
    }
  };
  Snapshot TakeSnapshot() const;
  /// Per-phase `now - prev` (the cost of the window between two snapshots).
  static Snapshot Delta(const Snapshot& now, const Snapshot& prev);

  /// Stable snake_case phase name ("begin_tick", "send", "relay",
  /// "deliver_apply", "read_path", "feedback") — the JSON key.
  static const char* Name(Phase phase);

  /// Monotonic now, in nanoseconds (exposed for tests).
  static int64_t NowNanos();

  /// RAII phase section: measures construction-to-destruction and adds it
  /// to `timer`. A null timer skips the clock reads entirely.
  class Scope {
   public:
    Scope(PhaseTimer* timer, Phase phase) : timer_(timer), phase_(phase) {
      if (timer_ != nullptr) start_ = NowNanos();
    }
    ~Scope() {
      if (timer_ != nullptr) timer_->Add(phase_, NowNanos() - start_);
    }
    Scope(const Scope&) = delete;
    Scope& operator=(const Scope&) = delete;

   private:
    PhaseTimer* timer_;
    Phase phase_;
    int64_t start_ = 0;
  };

 private:
  std::atomic<int64_t> nanos_[kNumPhases] = {};
};

}  // namespace besync

#endif  // BESYNC_UTIL_PHASE_TIMER_H_
