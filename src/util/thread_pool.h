#ifndef BESYNC_UTIL_THREAD_POOL_H_
#define BESYNC_UTIL_THREAD_POOL_H_

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace besync {

/// A fixed pool of worker threads draining one shared FIFO task queue (no
/// work stealing — experiment jobs are coarse enough that a single queue is
/// never the bottleneck). Tasks must not throw; error reporting belongs in
/// whatever state the task writes to.
///
///   ThreadPool pool(8);
///   for (auto& job : jobs) pool.Submit([&job] { Run(&job); });
///   pool.Wait();
class ThreadPool {
 public:
  /// Spawns `num_threads` workers (>= 1, checked).
  explicit ThreadPool(int num_threads);
  /// Waits for all submitted tasks, then joins the workers.
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  int num_threads() const { return static_cast<int>(workers_.size()); }

  /// Enqueues a task; it runs on some worker, in FIFO dispatch order.
  void Submit(std::function<void()> task);

  /// Blocks until every task submitted so far has finished. Safe to Submit
  /// again afterwards.
  void Wait();

  /// std::thread::hardware_concurrency() floored at 1 (it can report 0).
  static int HardwareThreads();

 private:
  void WorkerLoop();

  std::vector<std::thread> workers_;
  std::deque<std::function<void()>> tasks_;
  std::mutex mutex_;
  std::condition_variable task_available_;
  std::condition_variable all_done_;
  /// Submitted tasks not yet finished (queued + running).
  int64_t unfinished_ = 0;
  bool stopping_ = false;
};

}  // namespace besync

#endif  // BESYNC_UTIL_THREAD_POOL_H_
