#include "util/arena.h"

#include <cstdint>

#include "util/logging.h"

namespace besync {

Arena::Arena(size_t block_bytes) : block_bytes_(block_bytes) {
  BESYNC_CHECK(block_bytes_ > 0) << "arena block size must be positive";
}

void* Arena::Allocate(size_t bytes, size_t alignment) {
  BESYNC_CHECK(alignment > 0 && (alignment & (alignment - 1)) == 0)
      << "alignment must be a power of two, got " << alignment;
  if (bytes == 0) bytes = 1;  // distinct non-null pointers for empty arrays
  uintptr_t aligned = (reinterpret_cast<uintptr_t>(ptr_) + alignment - 1) &
                      ~static_cast<uintptr_t>(alignment - 1);
  if (ptr_ == nullptr || aligned + bytes > reinterpret_cast<uintptr_t>(end_)) {
    // A fresh block is max_align-aligned, so only the request's own
    // alignment (<= max_align for every type the arena serves) matters.
    NextBlock(bytes + alignment - 1);
    aligned = (reinterpret_cast<uintptr_t>(ptr_) + alignment - 1) &
              ~static_cast<uintptr_t>(alignment - 1);
  }
  ptr_ = reinterpret_cast<char*>(aligned + bytes);
  bytes_used_ += bytes;
  return reinterpret_cast<void*>(aligned);
}

void Arena::NextBlock(size_t bytes) {
  // Reuse retained blocks (post-Reset) before growing. `active_` stays the
  // index of the block in use; blocks_ is never reordered.
  const size_t start = ptr_ == nullptr ? 0 : active_ + 1;
  for (size_t i = start; i < blocks_.size(); ++i) {
    if (blocks_[i].size >= bytes) {
      active_ = i;
      ptr_ = blocks_[i].data.get();
      end_ = ptr_ + blocks_[i].size;
      return;
    }
  }
  Block block;
  block.size = bytes > block_bytes_ ? bytes : block_bytes_;
  block.data = std::make_unique<char[]>(block.size);
  bytes_reserved_ += block.size;
  blocks_.push_back(std::move(block));
  active_ = blocks_.size() - 1;
  ptr_ = blocks_.back().data.get();
  end_ = ptr_ + blocks_.back().size;
}

void Arena::Reset() {
  active_ = 0;
  ptr_ = nullptr;
  end_ = nullptr;
  bytes_used_ = 0;
}

}  // namespace besync
