#ifndef BESYNC_UTIL_TIMER_WHEEL_H_
#define BESYNC_UTIL_TIMER_WHEEL_H_

#include <cstddef>
#include <cstdint>
#include <functional>
#include <vector>

namespace besync {

/// Callback fired when a timer is popped; receives the timer's timestamp.
using WheelCallback = std::function<void(double)>;

/// Hierarchical timer wheel with an *exact* global pop order: timers pop in
/// strictly increasing (time, insertion-sequence) order — bit-for-bit the
/// order a binary min-heap with a FIFO tie-break produces — while Push costs
/// O(1) instead of O(log n). With ~1M scheduled object updates in flight,
/// the heap's log-factor (and its cache-hostile sift paths) is a measurable
/// slice of every simulated tick; the wheel replaces it with an append to a
/// bucket.
///
/// Structure (continuous double timestamps, bucketed at `resolution` r with
/// N = `level_slots` slots per level):
///   - near heap: every timer whose level-0 bucket index floor(t/r) is at or
///     before the current bucket. This is the only region ordered by
///     (time, seq), and it is a plain binary heap.
///   - level 0: the next N buckets of width r, unsorted vectors.
///   - level 1: the next N buckets of width N*r, unsorted.
///   - far list: everything beyond the N*N*r horizon, with a cached minimum
///     time; re-bucketed wholesale when the wheels drain past it.
///
/// Exactness argument: floor-bucketing partitions the time axis, so every
/// timer outside the near heap has time >= (current bucket + 1) * r, which
/// is strictly greater than every near-heap timer's time. Popping the near
/// heap to exhaustion before advancing the wheel therefore always pops the
/// global (time, seq) minimum, and timers with equal times share a bucket by
/// construction, so the heap's seq tie-break settles them exactly as the
/// monolithic heap did. Timers pushed at-or-before the current bucket
/// (including past times) go straight to the near heap, preserving the
/// invariant.
///
/// The callbacks themselves live in a recycled slab; the items routed
/// through the buckets and sifted through the near heap are 24-byte PODs
/// carrying a slab slot. Heap maintenance therefore never touches
/// std::function move machinery — the dominant cost of a heap of closures.
///
/// Not thread-safe; one wheel per simulation.
class TimerWheel {
 public:
  struct Options {
    /// Level-0 bucket width in simulated seconds. Any positive value is
    /// correct (ordering never depends on it); it tunes only how much work
    /// advancing does. The default matches the 1s harness tick.
    double resolution = 1.0;
    /// Slots per level (two levels: horizon = slots^2 * resolution).
    int level_slots = 256;
  };

  TimerWheel() : TimerWheel(Options{}) {}
  explicit TimerWheel(Options options);

  TimerWheel(const TimerWheel&) = delete;
  TimerWheel& operator=(const TimerWheel&) = delete;

  void Push(double time, WheelCallback callback);

  bool empty() const { return size_ == 0; }
  size_t size() const { return size_; }

  /// Timestamp of the earliest timer; wheel must be non-empty. Non-const:
  /// may advance buckets into the near heap.
  double NextTime();

  /// Pops the earliest timer into (time, callback); wheel must be non-empty.
  void PopInto(double* time, WheelCallback* callback);

 private:
  /// POD routed through buckets and the near heap; `slot` indexes the
  /// callback slab.
  struct Item {
    double time;
    uint64_t seq;
    uint32_t slot;
  };

  // Near-heap ordering: earlier time first; FIFO for equal times. A struct
  // (not a free function) so std::push_heap/pop_heap inline the comparison.
  struct LaterCmp {
    bool operator()(const Item& a, const Item& b) const {
      if (a.time != b.time) return a.time > b.time;
      return a.seq > b.seq;
    }
  };

  int64_t BucketOf(double time) const;

  /// Ensures the near heap holds the global minimum (fills it from the
  /// wheels/far list when empty). Requires size_ > 0.
  void Prepare();

  /// Moves every timer of level-1 bucket `b1` into level 0 / the near heap.
  void Cascade(int64_t b1);

  /// Routes one item already known not to belong to the near heap.
  void PlaceInWheel(Item item, int64_t bucket);

  const double resolution_;
  const int64_t slots_;
  std::vector<Item> near_;                  // binary heap under LaterCmp
  std::vector<std::vector<Item>> level0_;   // bucket b at slot b % slots_
  std::vector<std::vector<Item>> level1_;
  std::vector<Item> far_;
  /// Callback slab indexed by Item::slot, with a free list of popped slots.
  std::vector<WheelCallback> callbacks_;
  std::vector<uint32_t> free_slots_;
  double far_min_time_ = 0.0;
  int64_t cur_bucket_;                      // near/wheel boundary (absolute)
  size_t level0_count_ = 0;
  size_t level1_count_ = 0;
  size_t size_ = 0;
  uint64_t next_seq_ = 0;
};

}  // namespace besync

#endif  // BESYNC_UTIL_TIMER_WHEEL_H_
