#ifndef BESYNC_UTIL_RANDOM_H_
#define BESYNC_UTIL_RANDOM_H_

#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

namespace besync {

/// Deterministic pseudo-random number generator (xoshiro256++) with the
/// distributions needed by the workload generators and simulators.
///
/// All experiment code takes an explicit seed so every run is reproducible.
/// The generator is cheap to copy; independent streams should be derived via
/// `Fork()`, which produces a statistically independent child generator.
class Rng {
 public:
  /// Seeds the full 256-bit state from `seed` via SplitMix64, so that nearby
  /// seeds produce unrelated streams.
  explicit Rng(uint64_t seed = 0x9e3779b97f4a7c15ULL);

  /// Uniform random 64-bit value.
  uint64_t NextUint64();

  /// Uniform double in [0, 1).
  double NextDouble();

  /// Uniform double in [lo, hi).
  double Uniform(double lo, double hi);

  /// Uniform integer in [lo, hi] (inclusive). Requires lo <= hi.
  int64_t UniformInt(int64_t lo, int64_t hi);

  /// True with probability p (clamped to [0, 1]).
  bool Bernoulli(double p);

  /// Exponential with the given rate (mean 1/rate). Requires rate > 0.
  double Exponential(double rate);

  /// Poisson-distributed count with the given mean. Uses Knuth's method for
  /// small means and a transformed-rejection method for large means.
  int64_t Poisson(double mean);

  /// Normal (Gaussian) with the given mean and standard deviation.
  double Normal(double mean, double stddev);

  /// Zipf-distributed integer in [1, n]: P(k) proportional to 1/k^s.
  /// Used for importance/popularity skew in the web-index example.
  int64_t Zipf(int64_t n, double s);

  /// Derives an independent child generator (for per-source / per-object
  /// streams whose draws must not depend on iteration order elsewhere).
  Rng Fork();

  /// Keyed variant of Fork() that does NOT advance this generator: the
  /// child stream is a pure function of (current state, key), so any number
  /// of children — e.g. one per shard, keyed by shard id — can be derived
  /// concurrently, in any order, without perturbing the parent stream.
  /// Distinct keys give unrelated streams.
  Rng Split(uint64_t key) const;

  /// Fisher-Yates shuffle of `values`.
  template <typename T>
  void Shuffle(std::vector<T>* values) {
    for (size_t i = values->size(); i > 1; --i) {
      size_t j = static_cast<size_t>(UniformInt(0, static_cast<int64_t>(i) - 1));
      std::swap((*values)[i - 1], (*values)[j]);
    }
  }

 private:
  uint64_t state_[4];
  // Cached second value from the Box-Muller transform.
  bool has_cached_normal_ = false;
  double cached_normal_ = 0.0;
};

}  // namespace besync

#endif  // BESYNC_UTIL_RANDOM_H_
