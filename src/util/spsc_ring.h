#ifndef BESYNC_UTIL_SPSC_RING_H_
#define BESYNC_UTIL_SPSC_RING_H_

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

#include "util/logging.h"

namespace besync {

/// A fixed-capacity single-producer/single-consumer ring: one thread calls
/// TryPush, one (possibly different) thread calls TryPop, and the only
/// synchronization is one release store per operation. This is the
/// cross-shard message conduit of the sharded tick phases (the fx-recon
/// idiom): producer shard s routes items to consumer shard d through the
/// (s, d) ring, and per-ring FIFO order plus a pinned drain order makes the
/// merged stream deterministic at any thread count.
///
/// Capacity is rounded up to a power of two. TryPush on a full ring returns
/// false WITHOUT consuming the value — the caller keeps ownership and can
/// spill (see core/system.cc, which drains spill vectors after the ring so
/// per-producer order survives overflow). The ring never blocks and never
/// allocates after construction.
///
/// Thread contract: at most one concurrent pusher and one concurrent
/// popper. Either side may also be used single-threaded; a barrier (e.g.
/// ShardPool::Run returning) is required before a *different* thread takes
/// over a side.
template <typename T>
class SpscRing {
 public:
  /// A ring holding up to `capacity` items (>= 1, checked; rounded up to
  /// the next power of two).
  explicit SpscRing(size_t capacity) {
    BESYNC_CHECK_GE(capacity, static_cast<size_t>(1));
    size_t rounded = 1;
    while (rounded < capacity) rounded <<= 1;
    slots_.resize(rounded);
    mask_ = rounded - 1;
  }

  SpscRing(const SpscRing&) = delete;
  SpscRing& operator=(const SpscRing&) = delete;

  /// Number of slots (the rounded-up capacity).
  size_t capacity() const { return slots_.size(); }

  /// True when no item is currently queued (exact only on the consumer
  /// thread or across a barrier).
  bool empty() const {
    return head_.load(std::memory_order_acquire) ==
           tail_.load(std::memory_order_acquire);
  }

  /// Producer side: moves `value` into the ring. Returns false — leaving
  /// `value` untouched — when the ring is full.
  bool TryPush(T&& value) {
    const uint64_t tail = tail_.load(std::memory_order_relaxed);
    if (tail - head_.load(std::memory_order_acquire) == slots_.size()) {
      return false;
    }
    slots_[tail & mask_] = std::move(value);
    tail_.store(tail + 1, std::memory_order_release);
    return true;
  }

  /// Consumer side: moves the oldest item into `*out`. Returns false when
  /// the ring is empty.
  bool TryPop(T* out) {
    const uint64_t head = head_.load(std::memory_order_relaxed);
    if (tail_.load(std::memory_order_acquire) == head) return false;
    *out = std::move(slots_[head & mask_]);
    head_.store(head + 1, std::memory_order_release);
    return true;
  }

 private:
  std::vector<T> slots_;
  size_t mask_ = 0;
  /// Consumer cursor (slots [head, tail) are occupied).
  alignas(64) std::atomic<uint64_t> head_{0};
  /// Producer cursor.
  alignas(64) std::atomic<uint64_t> tail_{0};
};

}  // namespace besync

#endif  // BESYNC_UTIL_SPSC_RING_H_
