#include "util/random.h"

#include <cmath>

#include "util/logging.h"

namespace besync {

namespace {

uint64_t SplitMix64(uint64_t* state) {
  uint64_t z = (*state += 0x9e3779b97f4a7c15ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

uint64_t Rotl(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

}  // namespace

Rng::Rng(uint64_t seed) {
  uint64_t sm = seed;
  for (auto& s : state_) s = SplitMix64(&sm);
}

uint64_t Rng::NextUint64() {
  // xoshiro256++ by Blackman & Vigna.
  const uint64_t result = Rotl(state_[0] + state_[3], 23) + state_[0];
  const uint64_t t = state_[1] << 17;
  state_[2] ^= state_[0];
  state_[3] ^= state_[1];
  state_[1] ^= state_[2];
  state_[0] ^= state_[3];
  state_[2] ^= t;
  state_[3] = Rotl(state_[3], 45);
  return result;
}

double Rng::NextDouble() {
  // 53 high bits -> uniform double in [0, 1).
  return static_cast<double>(NextUint64() >> 11) * 0x1.0p-53;
}

double Rng::Uniform(double lo, double hi) { return lo + (hi - lo) * NextDouble(); }

int64_t Rng::UniformInt(int64_t lo, int64_t hi) {
  BESYNC_CHECK_LE(lo, hi);
  const uint64_t range = static_cast<uint64_t>(hi - lo) + 1;
  if (range == 0) {  // full 64-bit range
    return static_cast<int64_t>(NextUint64());
  }
  // Rejection sampling to avoid modulo bias.
  const uint64_t limit = UINT64_MAX - UINT64_MAX % range;
  uint64_t value;
  do {
    value = NextUint64();
  } while (value >= limit);
  return lo + static_cast<int64_t>(value % range);
}

bool Rng::Bernoulli(double p) {
  if (p <= 0.0) return false;
  if (p >= 1.0) return true;
  return NextDouble() < p;
}

double Rng::Exponential(double rate) {
  BESYNC_CHECK_GT(rate, 0.0);
  double u;
  do {
    u = NextDouble();
  } while (u <= 0.0);
  return -std::log(u) / rate;
}

int64_t Rng::Poisson(double mean) {
  BESYNC_CHECK_GE(mean, 0.0);
  if (mean == 0.0) return 0;
  if (mean < 30.0) {
    // Knuth: multiply uniforms until the product drops below e^-mean.
    const double limit = std::exp(-mean);
    int64_t count = -1;
    double product = 1.0;
    do {
      product *= NextDouble();
      ++count;
    } while (product > limit);
    return count;
  }
  // Atkinson's rejection method via the logistic envelope, adequate for the
  // simulation workloads here (mean >= 30).
  const double c = 0.767 - 3.36 / mean;
  const double beta = M_PI / std::sqrt(3.0 * mean);
  const double alpha = beta * mean;
  const double k = std::log(c) - mean - std::log(beta);
  while (true) {
    const double u = NextDouble();
    if (u <= 0.0 || u >= 1.0) continue;
    const double x = (alpha - std::log((1.0 - u) / u)) / beta;
    const int64_t n = static_cast<int64_t>(std::floor(x + 0.5));
    if (n < 0) continue;
    const double v = NextDouble();
    if (v <= 0.0) continue;
    const double y = alpha - beta * x;
    const double temp = 1.0 + std::exp(y);
    const double lhs = y + std::log(v / (temp * temp));
    const double rhs = k + n * std::log(mean) - std::lgamma(n + 1.0);
    if (lhs <= rhs) return n;
  }
}

double Rng::Normal(double mean, double stddev) {
  if (has_cached_normal_) {
    has_cached_normal_ = false;
    return mean + stddev * cached_normal_;
  }
  // Box-Muller.
  double u1;
  do {
    u1 = NextDouble();
  } while (u1 <= 0.0);
  const double u2 = NextDouble();
  const double radius = std::sqrt(-2.0 * std::log(u1));
  const double theta = 2.0 * M_PI * u2;
  cached_normal_ = radius * std::sin(theta);
  has_cached_normal_ = true;
  return mean + stddev * radius * std::cos(theta);
}

int64_t Rng::Zipf(int64_t n, double s) {
  BESYNC_CHECK_GE(n, 1);
  // Rejection-inversion sampling (Hormann & Derflinger) works for any s > 0,
  // but a simple inverse-CDF walk is fine for the n used in examples; use
  // the rejection method from Gray's formulation for efficiency.
  // Here: rejection sampling against the continuous envelope 1/x^s.
  if (n == 1) return 1;
  const double exponent = s;
  // Precompute normalization pieces of the envelope.
  auto h = [exponent](double x) {
    return exponent == 1.0 ? std::log(x) : (std::pow(x, 1.0 - exponent) - 1.0) / (1.0 - exponent);
  };
  auto h_inv = [exponent](double y) {
    return exponent == 1.0 ? std::exp(y)
                           : std::pow(1.0 + y * (1.0 - exponent), 1.0 / (1.0 - exponent));
  };
  const double total = h(static_cast<double>(n) + 0.5) - h(0.5);
  while (true) {
    const double u = h(0.5) + NextDouble() * total;
    const double x = h_inv(u);
    const int64_t k = static_cast<int64_t>(std::llround(x));
    if (k < 1 || k > n) continue;
    // Accept with probability proportional to the ratio of the pmf to the
    // envelope density at k.
    const double ratio = std::pow(static_cast<double>(k), -exponent) /
                         std::pow(x, -exponent);
    if (NextDouble() <= ratio) return k;
  }
}

Rng Rng::Fork() { return Rng(NextUint64()); }

Rng Rng::Split(uint64_t key) const {
  // Mix the full 256-bit state down with the key through SplitMix64 — the
  // same finalizer the seeding path uses — reading, never mutating, the
  // parent. Nearby keys land in unrelated streams.
  uint64_t sm = key;
  uint64_t seed = SplitMix64(&sm);
  for (const uint64_t word : state_) {
    sm = word ^ Rotl(seed, 23);
    seed ^= SplitMix64(&sm);
  }
  return Rng(seed);
}

}  // namespace besync
