#include "read/cache_store.h"

#include <algorithm>

#include "util/logging.h"

namespace besync {

CacheStore::CacheStore(int64_t capacity, EvictionPolicy policy,
                       std::vector<ObjectIndex> members)
    : capacity_(capacity), policy_(policy), members_(std::move(members)) {
  for (size_t i = 1; i < members_.size(); ++i) {
    BESYNC_CHECK_LT(members_[i - 1], members_[i]) << "members must be ascending";
  }
  if (unbounded()) return;
  slots_.resize(members_.size());
  // Deterministic warm start: the first `capacity` members begin resident
  // (caches start synchronized with the sources in the divergence model).
  const int64_t initial = std::min<int64_t>(capacity_, num_members());
  for (int64_t slot = 0; slot < initial; ++slot) slots_[slot].resident = true;
  num_resident_ = initial;
}

int64_t CacheStore::SlotOf(ObjectIndex index) const {
  const auto it = std::lower_bound(members_.begin(), members_.end(), index);
  if (it == members_.end() || *it != index) return -1;
  return static_cast<int64_t>(it - members_.begin());
}

int64_t CacheStore::num_resident() const {
  return unbounded() && !crashed_ ? num_members() : num_resident_;
}

void CacheStore::Crash() {
  if (unbounded() && slots_.empty()) slots_.resize(members_.size());
  crashed_ = true;
  for (SlotState& state : slots_) {
    state.resident = false;
    state.last_touch = 0.0;
    state.read_count = 0;
  }
  num_resident_ = 0;
}

void CacheStore::TouchRead(int64_t slot, double t) {
  if (unbounded()) return;
  SlotState& state = slots_[slot];
  state.last_touch = t;
  ++state.read_count;
}

int64_t CacheStore::SelectVictim(
    const std::function<double(ObjectIndex)>& divergence_of) const {
  // Linear scan over the residents; evictions are per-install, so this is
  // O(members) on a path that already paid a network round trip.
  int64_t victim = -1;
  double victim_key = 0.0;
  double victim_touch = 0.0;
  int64_t victim_count = 0;
  for (int64_t slot = 0; slot < num_members(); ++slot) {
    const SlotState& state = slots_[slot];
    if (!state.resident) continue;
    bool better = false;
    switch (policy_) {
      case EvictionPolicy::kLru:
        // Oldest read first; ties fall through to the lowest slot (the
        // first resident encountered wins, scan order is ascending).
        better = victim < 0 || state.last_touch < victim_touch;
        break;
      case EvictionPolicy::kLfu:
        better = victim < 0 || state.read_count < victim_count ||
                 (state.read_count == victim_count && state.last_touch < victim_touch);
        break;
      case EvictionPolicy::kDivergenceAware: {
        // Most-diverged replica first: dropping the stalest copy forces its
        // next read to pull fresh data instead of serving it; ties broken
        // least-recently-read, then lowest slot.
        const double divergence = divergence_of(members_[slot]);
        better = victim < 0 || divergence > victim_key ||
                 (divergence == victim_key && state.last_touch < victim_touch);
        if (better) victim_key = divergence;
        break;
      }
    }
    if (better) {
      victim = slot;
      victim_touch = state.last_touch;
      victim_count = state.read_count;
    }
  }
  BESYNC_CHECK_GE(victim, 0) << "no resident replica to evict";
  return victim;
}

int64_t CacheStore::Install(int64_t slot, double t,
                            const std::function<double(ObjectIndex)>& divergence_of) {
  if (unbounded()) {
    // A crashed unbounded store refills slot by slot with no capacity
    // pressure; one that never crashed has everything resident already.
    if (crashed_ && !slots_[slot].resident) {
      slots_[slot].resident = true;
      slots_[slot].last_touch = t;
      ++num_resident_;
      ++installs_;
    }
    return -1;
  }
  SlotState& state = slots_[slot];
  if (state.resident) return -1;
  int64_t evicted = -1;
  if (num_resident_ >= capacity_) {
    evicted = SelectVictim(divergence_of);
    slots_[evicted].resident = false;
    slots_[evicted].read_count = 0;
    --num_resident_;
    ++evictions_;
  }
  state.resident = true;
  state.last_touch = t;
  state.read_count = 0;
  ++num_resident_;
  ++installs_;
  return evicted;
}

void CacheStore::ResetCounters() {
  evictions_ = 0;
  installs_ = 0;
}

void CacheStore::EnableSyncState(double initial_lease_expiry) {
  BESYNC_CHECK(sync_.empty()) << "EnableSyncState called twice";
  ReplicaSyncState initial;
  initial.lease_expiry = initial_lease_expiry;
  sync_.assign(members_.size(), initial);
}

}  // namespace besync
