#ifndef BESYNC_READ_READ_PATH_H_
#define BESYNC_READ_READ_PATH_H_

#include <cstdint>
#include <deque>
#include <memory>
#include <vector>

#include "core/harness.h"
#include "data/read_process.h"
#include "net/network.h"
#include "obs/trace.h"
#include "read/cache_store.h"
#include "util/quantile.h"
#include "util/random.h"

namespace besync {

/// Aggregated read-path counters over the measurement window (all zero when
/// the read path is disabled).
struct ReadPathCounters {
  int64_t reads = 0;
  int64_t hits = 0;
  int64_t misses = 0;
  int64_t pull_requests = 0;
  int64_t pulls_delivered = 0;
  int64_t evictions = 0;
  /// Read-time staleness distribution: the divergence of the value a read
  /// is served (hits sample at read time; misses sample the pulled value at
  /// delivery time).
  double staleness_mean = 0.0;
  double staleness_p50 = 0.0;
  double staleness_p95 = 0.0;
  double staleness_p99 = 0.0;
  /// Mean time from a missing read to the delivery that serves it.
  double miss_latency_mean = 0.0;
  /// Replica invalidations applied (invalidation protocol; a batched
  /// kInvalidate of k objects counts k times).
  int64_t invalidations_received = 0;
};

/// The client read side of one simulation run: per-cache read streams,
/// capacity-limited residency (read/cache_store.h), read-time staleness
/// sampling against the ground truth, and miss-triggered pulls.
///
/// Owned and driven by the cooperative scheduler's tick
/// (core/system.cc):
///   - ProcessReads(t) consumes every client read with timestamp <= t in
///     global time order; hits sample the replica's current divergence,
///     misses register a pending pull (deduplicated per replica in
///     flight).
///   - SendPullRequests(t) drains the per-cache request queues upstream as
///     kPullRequest control mail, each request consuming one unit of the
///     leaf edge's remaining tick budget — after refresh deliveries, ahead
///     of surplus feedback.
///   - OnRefreshDelivered(message, t) runs for every refresh landing at a
///     cache (pushes and pull responses alike): it installs non-resident
///     members (evicting under the configured policy) and resolves the
///     pending reads waiting on the object.
///
/// Disabled (no reads configured and unbounded capacity) the object is
/// inert: no RNG is created, no state is touched, and the scheduler's
/// behavior is bitwise identical to the pre-read-path engine.
class ReadPath {
 public:
  ReadPath() = default;

  /// Builds the per-cache stores and read streams from the harness's
  /// workload. Trace streams attached to the workload (read_streams) are
  /// used in place after a Reset() — the workload-sharing hazard of
  /// exp/runner.h applies; Poisson/Zipf streams are built privately from
  /// ReadWorkloadConfig when read_rate > 0. `harness` must outlive this.
  /// A validity-tracking `protocol` (invalidation / TTL; may be null —
  /// push refresh) adds per-replica ReplicaSyncState to the stores and
  /// makes reads of invalid/expired replicas miss and pull.
  /// `has_cache_faults` (the run's effective fault schedule contains cache
  /// crashes) keeps the read path live even with no reads and unbounded
  /// capacity: crashes flow through the stores and recovery refills flow
  /// through delivery resolution. False changes nothing.
  void Initialize(Harness* harness, int num_caches,
                  const SyncProtocol* protocol = nullptr,
                  bool has_cache_faults = false);

  /// True when the read path participates in the run at all (client reads
  /// configured or finite capacity).
  bool enabled() const { return enabled_; }
  /// True when client reads are generated (rate- or trace-driven).
  bool reads_enabled() const { return reads_enabled_; }

  void ProcessReads(double t);
  void SendPullRequests(double t, Network* network);
  void OnRefreshDelivered(const Message& message, double t);
  /// Applies a delivered kInvalidate notification (primary object plus any
  /// batch-mates): the replicas turn invalid, so their next read misses.
  /// Residency is untouched — the stale bytes stay until overwritten.
  void OnInvalidateDelivered(const Message& message, double t);

  /// Fault hook: cache `cache_id` crashed at `now`. Drops every resident
  /// replica (CacheStore::Crash), resets per-replica protocol state
  /// (invalid / expired — a restarted replica must be re-fetched before it
  /// can serve), and cancels all pending pulls: responses already in flight
  /// will still install content on arrival, but they must not resolve reads
  /// that died with the process — each cancelled in-flight pull counts into
  /// crash_dropped_pulls().
  void OnCacheCrash(int cache_id, double now);
  /// Fault hook: cache `cache_id` came back (empty). Reads flow again;
  /// content returns only through installs.
  void OnCacheRestart(int cache_id);
  /// True while the cache is crashed (reads are consumed but discarded).
  bool cache_down(int cache_id) const { return caches_[cache_id].down; }
  /// Pending pulls cancelled by crashes (measurement window).
  int64_t crash_dropped_pulls() const { return crash_dropped_pulls_; }

  /// Drains the per-cache delivery scratch counters into the global
  /// totals, in ascending cache order. The delivery hooks
  /// (OnRefreshDelivered / OnInvalidateDelivered) record into per-cache
  /// scratch so the scheduler may apply different caches' deliveries
  /// concurrently; the scheduler calls this once per tick, after the apply
  /// barrier, on the main thread. Because the serial path uses the same
  /// scratch-then-drain sequence, the float addition order of
  /// miss_latency_sum_ — and hence every reported bit — is identical at
  /// any thread count.
  void FlushDeliveryCounters();

  /// Measurement-window reset (residency and pending pulls persist; only
  /// statistics are zeroed).
  void OnMeasurementStart();

  /// Merged counters (per-cache staleness digests merged in cache order —
  /// deterministic).
  ReadPathCounters Counters() const;

  // Introspection (tests).
  const CacheStore& store(int cache_id) const { return caches_[cache_id].store; }

  /// Observability wiring (obs/trace.h): one buffer per cache id, or empty
  /// to disable (the default — hooks then cost one emptiness test). The
  /// read path records its own lifecycle events: pull requests,
  /// invalidation applies, evictions. Buffers must outlive the run.
  void SetTraceBuffers(std::vector<TraceBuffer*> buffers) {
    trace_ = std::move(buffers);
  }

  // Cheap cumulative totals for the observability sampler (counted since
  // the last measurement reset; 0 while disabled). O(1) reads — unlike
  // Counters(), which merges the per-cache staleness digests.
  int64_t reads_so_far() const { return reads_; }
  int64_t hits_so_far() const { return hits_; }
  int64_t pull_requests_so_far() const { return pull_requests_; }
  int64_t pulls_delivered_so_far() const { return pulls_delivered_; }
  /// Weighted mean over the per-cache staleness digests, O(num_caches).
  double StalenessMeanSoFar() const;

 private:
  /// One replica's in-flight pull state.
  struct PendingPull {
    bool active = false;     ///< >= 1 read is waiting on this replica
    bool enqueued = false;   ///< a request sits in the request queue
    bool requested = false;  ///< a request has been sent upstream
    double last_request_time = 0.0;
    int64_t waiting_reads = 0;
    /// Sum of the waiting reads' timestamps (miss-latency accounting).
    double waiting_time_sum = 0.0;
  };

  struct CacheState {
    explicit CacheState(CacheStore s) : store(std::move(s)) {}

    int32_t cache_id = 0;
    /// Crashed (fault injection): reads are discarded, deliveries are
    /// dropped by the scheduler before they reach us.
    bool down = false;
    CacheStore store;
    /// Null when this cache generates no reads.
    ReadProcess* stream = nullptr;
    std::unique_ptr<ReadProcess> owned_stream;
    Rng rng{0};
    double next_read_time = 0.0;
    /// Per-slot pending pulls; sized only for capacity-limited stores.
    std::vector<PendingPull> pending;
    /// Slots with an unsent pull request, in miss order.
    std::deque<int64_t> request_queue;
    QuantileDigest staleness;
    // Delivery-phase scratch, drained by FlushDeliveryCounters(). Integer
    // tallies are order-free; the float miss-latency contributions are
    // kept as individual terms so the drain can replay the exact serial
    // addition sequence.
    int64_t scratch_pulls_delivered = 0;
    int64_t scratch_invalidations = 0;
    int64_t scratch_latency_count = 0;
    std::vector<double> scratch_latency_terms;
  };

  /// Cache `cache_id`'s trace buffer, or null when tracing is off.
  TraceBuffer* trace_for(int32_t cache_id) const {
    return trace_.empty() ? nullptr : trace_[cache_id];
  }

  void HandleRead(CacheState* cache, int64_t slot, double t);
  void ResolveDelivery(CacheState* cache, ObjectIndex index, double t, bool is_pull);
  void ApplyInvalidate(CacheState* cache, ObjectIndex index, double t);
  double ReplicaDivergence(const CacheState& cache, ObjectIndex index) const;

  Harness* harness_ = nullptr;
  ReadWorkloadConfig config_;
  const SyncProtocol* protocol_ = nullptr;
  bool validity_tracked_ = false;
  bool enabled_ = false;
  bool reads_enabled_ = false;
  std::vector<CacheState> caches_;
  int64_t reads_ = 0;
  int64_t hits_ = 0;
  int64_t misses_ = 0;
  int64_t pull_requests_ = 0;
  int64_t pulls_delivered_ = 0;
  double miss_latency_sum_ = 0.0;
  int64_t miss_latency_count_ = 0;
  int64_t invalidations_received_ = 0;
  int64_t crash_dropped_pulls_ = 0;
  /// Per-cache trace buffers; empty unless observability tracing is on.
  std::vector<TraceBuffer*> trace_;
};

}  // namespace besync

#endif  // BESYNC_READ_READ_PATH_H_
