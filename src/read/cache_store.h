#ifndef BESYNC_READ_CACHE_STORE_H_
#define BESYNC_READ_CACHE_STORE_H_

#include <cstdint>
#include <functional>
#include <vector>

#include "data/object.h"
#include "data/read_process.h"
#include "protocol/sync_protocol.h"

namespace besync {

/// Residency bookkeeping for one capacity-limited cache: which of the
/// cache's replicated objects are currently held, touched by client reads
/// and installed by deliveries (push refreshes and pull responses), with a
/// pluggable eviction policy. With unbounded capacity (the default) every
/// member is permanently resident and the store is inert — exactly the
/// historical model where a cache holds all its replicas forever.
///
/// The store tracks residency only; the divergence accounting
/// (divergence/ground_truth.h) keeps scoring each replica's last-applied
/// content whether or not it is resident — see DESIGN.md ("Read-time
/// staleness vs time-averaged divergence") for what evictions do and do
/// not count toward the paper's objective.
class CacheStore {
 public:
  /// `members`: ascending global object indices replicated at this cache.
  /// `capacity` <= 0 = unbounded. Initially the first min(capacity, n)
  /// members are resident (deterministic warm start; the remainder faults
  /// in through misses).
  CacheStore(int64_t capacity, EvictionPolicy policy,
             std::vector<ObjectIndex> members);

  bool unbounded() const { return capacity_ <= 0; }
  int64_t capacity() const { return capacity_; }
  int64_t num_members() const { return static_cast<int64_t>(members_.size()); }
  ObjectIndex member(int64_t slot) const { return members_[slot]; }
  /// Slot of `index` in the member list, or -1 if not replicated here.
  int64_t SlotOf(ObjectIndex index) const;

  bool resident(int64_t slot) const {
    return (unbounded() && !crashed_) || slots_[slot].resident;
  }
  int64_t num_resident() const;

  /// Drops every resident replica (fault injection: the cache process
  /// died). Unbounded stores switch to tracked residency from here on —
  /// content returns only through installs (pull responses and push
  /// refreshes), never by fiat — so the "everything is always resident"
  /// fast path applies only to stores that have never crashed. Eviction
  /// counters are untouched (a crash is not an eviction).
  void Crash();
  /// True once Crash() has been called (residency is tracked even when
  /// unbounded).
  bool ever_crashed() const { return crashed_; }

  /// Records a client read hit of `slot` at time `t` (LRU/LFU bookkeeping).
  void TouchRead(int64_t slot, double t);

  /// Makes `slot` resident at time `t` (pull response or push refresh for a
  /// non-resident member), evicting a victim first when at capacity.
  /// `divergence_of` supplies the current replica divergence of a member
  /// (used by EvictionPolicy::kDivergenceAware; may be empty for the other
  /// policies). Returns the evicted slot, or -1 when none was needed.
  /// No-op (returns -1) when the slot is already resident or the store is
  /// unbounded.
  int64_t Install(int64_t slot, double t,
                  const std::function<double(ObjectIndex)>& divergence_of);

  int64_t evictions() const { return evictions_; }
  int64_t installs() const { return installs_; }
  /// Resets counters (measurement start); residency state is preserved.
  void ResetCounters();

  /// Allocates per-slot ReplicaSyncState for validity-tracking protocols
  /// (invalidation / TTL), sized over all members even when the store is
  /// unbounded. Replicas start synchronized: valid, with the given lease
  /// expiry (infinity except under TTL). Call once before the run.
  void EnableSyncState(double initial_lease_expiry);
  bool sync_state_enabled() const { return !sync_.empty(); }
  ReplicaSyncState& sync_state(int64_t slot) { return sync_[slot]; }
  const ReplicaSyncState& sync_state(int64_t slot) const { return sync_[slot]; }

 private:
  struct SlotState {
    bool resident = false;
    double last_touch = 0.0;
    int64_t read_count = 0;
  };

  /// Victim slot under the configured policy (requires >= 1 resident).
  int64_t SelectVictim(const std::function<double(ObjectIndex)>& divergence_of) const;

  int64_t capacity_;
  EvictionPolicy policy_;
  std::vector<ObjectIndex> members_;
  /// Per-slot state; empty when unbounded (nothing to track).
  std::vector<SlotState> slots_;
  /// Per-slot protocol state; empty unless EnableSyncState was called.
  std::vector<ReplicaSyncState> sync_;
  int64_t num_resident_ = 0;
  int64_t evictions_ = 0;
  int64_t installs_ = 0;
  /// Set by Crash(): an unbounded store tracks residency via slots_ from
  /// then on. Never set on the fault-free path.
  bool crashed_ = false;
};

}  // namespace besync

#endif  // BESYNC_READ_CACHE_STORE_H_
