#include "read/read_path.h"

#include <limits>

#include "util/logging.h"

namespace besync {

void ReadPath::Initialize(Harness* harness, int num_caches,
                          const SyncProtocol* protocol, bool has_cache_faults) {
  harness_ = harness;
  const Workload& workload = harness->workload();
  config_ = workload.read;
  protocol_ = protocol;
  validity_tracked_ = protocol != nullptr && protocol->tracks_validity();
  reads_enabled_ = workload.reads_enabled();
  enabled_ = reads_enabled_ || config_.capacity > 0 || validity_tracked_ ||
             has_cache_faults;
  caches_.clear();
  reads_ = hits_ = misses_ = pull_requests_ = pulls_delivered_ = 0;
  miss_latency_sum_ = 0.0;
  miss_latency_count_ = 0;
  invalidations_received_ = 0;
  crash_dropped_pulls_ = 0;
  if (!enabled_) return;

  if (!workload.read_streams.empty()) {
    BESYNC_CHECK_EQ(static_cast<int>(workload.read_streams.size()),
                    workload.num_caches)
        << "read_streams must have one entry per cache";
  }

  // Ascending member list per cache (the objects a client of that cache
  // can read — its replicas).
  std::vector<std::vector<ObjectIndex>> members(static_cast<size_t>(num_caches));
  for (size_t i = 0; i < workload.objects.size(); ++i) {
    for (int32_t cache : workload.objects[i].caches) {
      members[cache].push_back(static_cast<ObjectIndex>(i));
    }
  }

  caches_.reserve(static_cast<size_t>(num_caches));
  for (int c = 0; c < num_caches; ++c) {
    CacheState state(
        CacheStore(config_.capacity, config_.eviction, std::move(members[c])));
    state.cache_id = c;
    const int64_t n = state.store.num_members();
    // Private per-cache read RNG, derived from the read seed only — enabling
    // reads never perturbs the workload or scheduler streams.
    state.rng = Rng(config_.seed + 0x9e3779b97f4a7c15ULL * (static_cast<uint64_t>(c) + 1));
    if (n > 0) {
      if (c < static_cast<int>(workload.read_streams.size()) &&
          workload.read_streams[c] != nullptr) {
        state.stream = workload.read_streams[c].get();
        state.stream->Reset();
      } else if (config_.read_rate > 0.0) {
        // Per-cache skew rotation: cache c's hottest rank lands n*c/caches
        // slots further along the member list, so caches exercise
        // different hot sets.
        const int64_t rotation =
            config_.rotate_popularity
                ? (static_cast<int64_t>(c) * n) / std::max(num_caches, 1)
                : 0;
        state.owned_stream = std::make_unique<PoissonZipfReadProcess>(
            config_.read_rate, config_.zipf_exponent, rotation);
        state.stream = state.owned_stream.get();
      }
    }
    state.next_read_time = state.stream != nullptr
                               ? state.stream->NextReadTime(0.0, &state.rng)
                               : std::numeric_limits<double>::infinity();
    // Validity-tracking protocols make even unbounded stores missable (an
    // invalid/expired replica reads as a miss), so they need pending-pull
    // slots and per-replica sync state alongside residency.
    if (!state.store.unbounded() || validity_tracked_ || has_cache_faults) {
      state.pending.resize(static_cast<size_t>(n));
    }
    if (validity_tracked_) {
      state.store.EnableSyncState(protocol_->initial_lease_expiry());
    }
    caches_.push_back(std::move(state));
  }
}

double ReadPath::ReplicaDivergence(const CacheState& cache, ObjectIndex index) const {
  return harness_->ground_truth().current_divergence(index, cache.cache_id);
}

void ReadPath::ProcessReads(double t) {
  if (!reads_enabled_) return;
  // Global time order across caches (ties to the lowest cache id), so the
  // staleness digest's insertion order — and therefore its compressed state
  // — is a pure function of the run, independent of thread count.
  while (true) {
    CacheState* next = nullptr;
    for (CacheState& cache : caches_) {
      if (cache.stream == nullptr || cache.next_read_time > t) continue;
      if (next == nullptr || cache.next_read_time < next->next_read_time) {
        next = &cache;
      }
    }
    if (next == nullptr) break;
    const double read_time = next->next_read_time;
    const int64_t slot =
        next->stream->NextObjectSlot(next->store.num_members(), &next->rng);
    // A crashed cache's clients keep issuing reads (the stream and its RNG
    // advance deterministically) but the reads go nowhere: no hit/miss
    // accounting, no pulls.
    if (!next->down) HandleRead(next, slot, read_time);
    next->next_read_time = next->stream->NextReadTime(read_time, &next->rng);
  }
}

void ReadPath::HandleRead(CacheState* cache, int64_t slot, double t) {
  ++reads_;
  const bool fresh =
      !validity_tracked_ || protocol_->ReplicaFresh(cache->store.sync_state(slot), t);
  if (fresh && cache->store.resident(slot)) {
    ++hits_;
    cache->store.TouchRead(slot, t);
    cache->staleness.Add(ReplicaDivergence(*cache, cache->store.member(slot)));
    return;
  }
  ++misses_;
  PendingPull& pending = cache->pending[slot];
  pending.active = true;
  ++pending.waiting_reads;
  pending.waiting_time_sum += t;
  // First miss queues a pull request; a request that has been outstanding
  // past the retry interval (e.g. the response was lost) is re-queued.
  const bool stale_request =
      pending.requested && t - pending.last_request_time >= config_.pull_retry_interval;
  if (!pending.enqueued && (!pending.requested || stale_request)) {
    cache->request_queue.push_back(slot);
    pending.enqueued = true;
  }
}

void ReadPath::SendPullRequests(double t, Network* network) {
  if (!reads_enabled_) return;
  const Workload& workload = harness_->workload();
  for (CacheState& cache : caches_) {
    if (cache.request_queue.empty()) continue;
    Link& link = network->cache_link(cache.cache_id);
    while (!cache.request_queue.empty()) {
      const int64_t slot = cache.request_queue.front();
      PendingPull& pending = cache.pending[slot];
      if (!pending.active || !pending.enqueued) {
        // Resolved (or superseded) while queued; drop without spending.
        cache.request_queue.pop_front();
        continue;
      }
      // Pull requests contend for the same leaf-edge budget as deliveries:
      // they run after this tick's refreshes but before surplus feedback.
      if (!link.TryConsumeAllowingDeficit(1)) break;
      cache.request_queue.pop_front();
      pending.enqueued = false;
      pending.requested = true;
      pending.last_request_time = t;
      const ObjectIndex index = cache.store.member(slot);
      Message request;
      request.kind = MessageKind::kPullRequest;
      request.source_index = workload.objects[index].source_index;
      request.cache_id = cache.cache_id;
      request.object_index = index;
      request.send_time = t;
      network->SendToSource(cache.cache_id, request.source_index, request);
      ++pull_requests_;
      if (TraceBuffer* trace = trace_for(cache.cache_id)) {
        TraceEvent event;
        event.kind = TraceEventKind::kPullRequest;
        event.t = t;
        event.source = request.source_index;
        event.cache = cache.cache_id;
        event.object = index;
        event.is_pull = true;
        trace->Record(event);
      }
    }
  }
}

void ReadPath::OnRefreshDelivered(const Message& message, double t) {
  if (!enabled_) return;
  CacheState& cache = caches_[message.cache_id];
  ResolveDelivery(&cache, message.object_index, t, message.is_pull);
  for (const RefreshPayload& payload : message.extra_refreshes) {
    ResolveDelivery(&cache, payload.object_index, t, message.is_pull);
  }
}

void ReadPath::ResolveDelivery(CacheState* cache, ObjectIndex index, double t,
                               bool is_pull) {
  const int64_t slot = cache->store.SlotOf(index);
  if (slot < 0) return;
  if (is_pull) ++cache->scratch_pulls_delivered;
  const int64_t evicted =
      cache->store.Install(slot, t, [this, cache](ObjectIndex member) {
        return ReplicaDivergence(*cache, member);
      });
  if (evicted >= 0) {
    if (TraceBuffer* trace = trace_for(cache->cache_id)) {
      TraceEvent event;
      event.kind = TraceEventKind::kEvict;
      event.t = t;
      event.cache = cache->cache_id;
      event.object = cache->store.member(evicted);
      event.aux = index;  // the install that displaced it
      trace->Record(event);
    }
  }
  // Any delivery re-validates the replica: a pull response closes an
  // invalid episode, and a TTL delivery renews the lease.
  if (validity_tracked_) {
    protocol_->OnRefreshApplied(&cache->store.sync_state(slot), t);
  }
  if (cache->pending.empty()) return;
  PendingPull& pending = cache->pending[slot];
  if (!pending.active) return;
  // Every read waiting on this replica is served the just-applied value;
  // its staleness is the replica's divergence right now (the content may
  // itself have gone stale in the queue — that is the point).
  if (pending.waiting_reads > 0) {
    cache->staleness.Add(ReplicaDivergence(*cache, index), pending.waiting_reads);
  }
  cache->scratch_latency_terms.push_back(
      static_cast<double>(pending.waiting_reads) * t - pending.waiting_time_sum);
  cache->scratch_latency_count += pending.waiting_reads;
  pending = PendingPull{};
}

void ReadPath::OnInvalidateDelivered(const Message& message, double t) {
  BESYNC_CHECK(validity_tracked_)
      << "kInvalidate delivered without a validity-tracking protocol";
  CacheState& cache = caches_[message.cache_id];
  ApplyInvalidate(&cache, message.object_index, t);
  for (const RefreshPayload& payload : message.extra_refreshes) {
    ApplyInvalidate(&cache, payload.object_index, t);
  }
}

void ReadPath::ApplyInvalidate(CacheState* cache, ObjectIndex index, double t) {
  const int64_t slot = cache->store.SlotOf(index);
  if (slot < 0) return;
  protocol_->OnInvalidate(&cache->store.sync_state(slot), t);
  ++cache->scratch_invalidations;
  if (TraceBuffer* trace = trace_for(cache->cache_id)) {
    TraceEvent event;
    event.kind = TraceEventKind::kInvalidateApply;
    event.t = t;
    event.cache = cache->cache_id;
    event.object = index;
    trace->Record(event);
  }
}

void ReadPath::OnCacheCrash(int cache_id, double now) {
  BESYNC_CHECK(enabled_) << "cache crash with the read path disabled";
  CacheState& cache = caches_[cache_id];
  cache.down = true;
  cache.store.Crash();
  // Cancel the pending pulls. A response already in flight still installs
  // its content on arrival (the wire does not know the process died), but
  // the reads that were waiting on it perished with the cache — resolving
  // them later would be a phantom hit served by a dead process.
  for (PendingPull& pending : cache.pending) {
    if (pending.active) ++crash_dropped_pulls_;
    pending = PendingPull{};
  }
  cache.request_queue.clear();
  if (validity_tracked_) {
    for (int64_t slot = 0; slot < cache.store.num_members(); ++slot) {
      protocol_->OnCacheRestart(&cache.store.sync_state(slot), now);
    }
  }
}

void ReadPath::OnCacheRestart(int cache_id) {
  BESYNC_CHECK(enabled_) << "cache restart with the read path disabled";
  caches_[cache_id].down = false;
}

void ReadPath::FlushDeliveryCounters() {
  if (!enabled_) return;
  for (CacheState& cache : caches_) {
    pulls_delivered_ += cache.scratch_pulls_delivered;
    cache.scratch_pulls_delivered = 0;
    invalidations_received_ += cache.scratch_invalidations;
    cache.scratch_invalidations = 0;
    miss_latency_count_ += cache.scratch_latency_count;
    cache.scratch_latency_count = 0;
    // Term-by-term, so the global sum's float rounding replays the serial
    // cache-major apply exactly.
    for (double term : cache.scratch_latency_terms) miss_latency_sum_ += term;
    cache.scratch_latency_terms.clear();
  }
}

void ReadPath::OnMeasurementStart() {
  if (!enabled_) return;
  reads_ = hits_ = misses_ = pull_requests_ = pulls_delivered_ = 0;
  miss_latency_sum_ = 0.0;
  miss_latency_count_ = 0;
  invalidations_received_ = 0;
  crash_dropped_pulls_ = 0;
  for (CacheState& cache : caches_) {
    cache.staleness.Reset();
    cache.store.ResetCounters();
    // Scratch is drained every tick, so it is empty here — clear anyway so
    // a warmup tick can never leak into the measured totals.
    cache.scratch_pulls_delivered = 0;
    cache.scratch_invalidations = 0;
    cache.scratch_latency_count = 0;
    cache.scratch_latency_terms.clear();
    // Warmup reads no longer count: pulls still in flight keep resolving
    // residency, but the reads waiting on them were never added to the
    // measured totals, so they must not inject staleness/latency samples.
    for (PendingPull& pending : cache.pending) {
      pending.waiting_reads = 0;
      pending.waiting_time_sum = 0.0;
    }
  }
}

double ReadPath::StalenessMeanSoFar() const {
  double weighted = 0.0;
  int64_t count = 0;
  for (const CacheState& cache : caches_) {
    if (cache.staleness.empty()) continue;
    weighted +=
        cache.staleness.mean() * static_cast<double>(cache.staleness.count());
    count += cache.staleness.count();
  }
  return count > 0 ? weighted / static_cast<double>(count) : 0.0;
}

ReadPathCounters ReadPath::Counters() const {
  ReadPathCounters counters;
  if (!enabled_) return counters;
  counters.reads = reads_;
  counters.hits = hits_;
  counters.misses = misses_;
  counters.pull_requests = pull_requests_;
  counters.pulls_delivered = pulls_delivered_;
  counters.invalidations_received = invalidations_received_;
  QuantileDigest merged;
  for (const CacheState& cache : caches_) {
    counters.evictions += cache.store.evictions();
    merged.Merge(cache.staleness);
  }
  counters.staleness_mean = merged.mean();
  counters.staleness_p50 = merged.Quantile(0.50);
  counters.staleness_p95 = merged.Quantile(0.95);
  counters.staleness_p99 = merged.Quantile(0.99);
  counters.miss_latency_mean =
      miss_latency_count_ > 0
          ? miss_latency_sum_ / static_cast<double>(miss_latency_count_)
          : 0.0;
  return counters;
}

}  // namespace besync
