#ifndef BESYNC_OBS_METRICS_H_
#define BESYNC_OBS_METRICS_H_

#include <cstdint>
#include <deque>
#include <string>

#include "util/quantile.h"

namespace besync {

/// Handle types returned by MetricsRegistry. Handles are plain accumulators
/// — a bump is one integer add, no locking, no indirection through the
/// registry — and stay valid for the registry's lifetime (deque-backed
/// storage, pointers never move). They are not thread-safe; the engine only
/// bumps scheduler-level metrics from the main thread (per-agent counters
/// stay on their agents for exactly that reason).
class Counter {
 public:
  void Increment(int64_t delta = 1) { value_ += delta; }
  int64_t value() const { return value_; }

 private:
  friend class MetricsRegistry;
  void Reset() { value_ = 0; }
  int64_t value_ = 0;
};

class Gauge {
 public:
  void Set(double value) { value_ = value; }
  double value() const { return value_; }

 private:
  friend class MetricsRegistry;
  void Reset() { value_ = 0.0; }
  double value_ = 0.0;
};

/// A named QuantileDigest (util/quantile.h): deterministic streaming
/// percentiles, reset with the registry.
class Histogram {
 public:
  void Add(double value, int64_t weight = 1) { digest_.Add(value, weight); }
  const QuantileDigest& digest() const { return digest_; }

 private:
  friend class MetricsRegistry;
  explicit Histogram(int compression) : digest_(compression) {}
  void Reset() { digest_.Reset(); }
  QuantileDigest digest_;
};

/// Insertion-ordered registry of named metrics. One registration site names
/// each metric once; one increment site bumps it; `Reset()` zeroes every
/// registered metric in one call — so "did the measurement-start reset miss
/// a field" becomes a loop over the registry instead of a hand-maintained
/// list (pinned by tests/stats_reset_test.cc).
///
/// Determinism: the registry holds no randomness and no wall-clock state;
/// its contents are a pure function of the registration and bump sequence.
class MetricsRegistry {
 public:
  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  /// Registers a metric under `name` (names should be unique; duplicates
  /// are allowed but make introspection ambiguous). The returned handle is
  /// owned by the registry and valid for its lifetime.
  Counter* AddCounter(std::string name);
  Gauge* AddGauge(std::string name);
  Histogram* AddHistogram(std::string name, int compression = 256);

  /// Zeroes every counter and gauge and clears every histogram.
  void Reset();

  /// Introspection, in registration order.
  const std::deque<std::pair<std::string, Counter>>& counters() const {
    return counters_;
  }
  const std::deque<std::pair<std::string, Gauge>>& gauges() const {
    return gauges_;
  }
  const std::deque<std::pair<std::string, Histogram>>& histograms() const {
    return histograms_;
  }

 private:
  // deque: stable element addresses under push_back (the handle contract).
  std::deque<std::pair<std::string, Counter>> counters_;
  std::deque<std::pair<std::string, Gauge>> gauges_;
  std::deque<std::pair<std::string, Histogram>> histograms_;
};

}  // namespace besync

#endif  // BESYNC_OBS_METRICS_H_
