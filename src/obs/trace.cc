#include "obs/trace.h"

#include <algorithm>
#include <tuple>

namespace besync {

const char* TraceEventKindToString(TraceEventKind kind) {
  switch (kind) {
    case TraceEventKind::kEnqueue:
      return "enqueue";
    case TraceEventKind::kSend:
      return "send";
    case TraceEventKind::kRelayStore:
      return "relay_store";
    case TraceEventKind::kRelayForward:
      return "relay_forward";
    case TraceEventKind::kDeliver:
      return "deliver";
    case TraceEventKind::kApply:
      return "apply";
    case TraceEventKind::kPullRequest:
      return "pull_request";
    case TraceEventKind::kInvalidateSend:
      return "invalidate_send";
    case TraceEventKind::kInvalidateApply:
      return "invalidate_apply";
    case TraceEventKind::kEvict:
      return "evict";
    case TraceEventKind::kDrop:
      return "drop";
    case TraceEventKind::kFault:
      return "fault";
    case TraceEventKind::kResyncStart:
      return "resync_start";
    case TraceEventKind::kResyncDone:
      return "resync_done";
  }
  return "unknown";
}

TraceFilter TraceFilter::FromConfig(const ObsConfig& config) {
  TraceFilter filter;
  filter.start = config.trace_start;
  filter.end = config.trace_end;
  filter.objects = config.trace_objects;
  filter.caches = config.trace_caches;
  std::sort(filter.objects.begin(), filter.objects.end());
  std::sort(filter.caches.begin(), filter.caches.end());
  return filter;
}

bool TraceFilter::Pass(double t, ObjectIndex object, int32_t cache) const {
  if (!PassTime(t)) return false;
  if (object >= 0 && !objects.empty() &&
      !std::binary_search(objects.begin(), objects.end(), object)) {
    return false;
  }
  if (cache >= 0 && !caches.empty() &&
      !std::binary_search(caches.begin(), caches.end(), cache)) {
    return false;
  }
  return true;
}

ObsCollector::ObsCollector(const ObsConfig& config, int num_sources,
                           int num_caches, int num_relays, double tick_length)
    : config_(config),
      filter_(TraceFilter::FromConfig(config)),
      num_sources_(num_sources),
      num_caches_(num_caches),
      tick_length_(tick_length) {
  if (config_.trace) {
    buffers_.resize(1 + static_cast<size_t>(num_sources) + num_caches +
                    num_relays);
    for (TraceBuffer& buffer : buffers_) {
      buffer.Init(&filter_, config_.max_trace_events);
    }
  }
}

void ObsCollector::NoteTick(double t) {
  if (!config_.trace) return;
  if (static_cast<int>(tick_times_.size()) >= config_.max_phase_slice_ticks) {
    return;
  }
  if (!filter_.PassTime(t)) return;
  tick_times_.push_back(t);
}

std::shared_ptr<ObsOutput> ObsCollector::Finish() {
  auto output = std::make_shared<ObsOutput>();
  output->series = std::move(series_);
  output->tick_times = std::move(tick_times_);
  output->tick_length = tick_length_;
  output->num_caches = num_caches_;

  // Merge: concatenate in buffer order (main, sources, caches, relays —
  // each buffer internally in record order), then stable-sort on keys that
  // are all functions of the event itself. Ties beyond the key keep the
  // concatenation order, i.e. (buffer id, in-buffer sequence) — every
  // component independent of run_threads, so the merged order is too.
  size_t total = 0;
  for (const TraceBuffer& buffer : buffers_) {
    total += buffer.events().size();
    output->trace_dropped += buffer.dropped();
  }
  output->trace.reserve(total);
  for (const TraceBuffer& buffer : buffers_) {
    output->trace.insert(output->trace.end(), buffer.events().begin(),
                         buffer.events().end());
  }
  buffers_.clear();
  std::stable_sort(output->trace.begin(), output->trace.end(),
                   [](const TraceEvent& a, const TraceEvent& b) {
                     return std::tie(a.t, a.kind, a.cache, a.node, a.source,
                                     a.object, a.version) <
                            std::tie(b.t, b.kind, b.cache, b.node, b.source,
                                     b.object, b.version);
                   });
  if (config_.max_trace_events > 0 &&
      static_cast<int64_t>(output->trace.size()) > config_.max_trace_events) {
    output->trace_dropped +=
        static_cast<int64_t>(output->trace.size()) - config_.max_trace_events;
    output->trace.resize(static_cast<size_t>(config_.max_trace_events));
  }
  return output;
}

}  // namespace besync
