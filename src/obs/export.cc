#include "obs/export.h"

#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <map>
#include <set>

#include "util/phase_timer.h"

namespace besync {
namespace {

// Same shortest-round-trip formatting as exp/runner.cc: exported bytes must
// be a pure function of the values.
std::string JsonNumber(double value) {
  if (!std::isfinite(value)) return "null";  // JSON has no NaN/Inf
  char buffer[32];
  for (int precision = 15; precision <= 17; ++precision) {
    std::snprintf(buffer, sizeof(buffer), "%.*g", precision, value);
    if (std::strtod(buffer, nullptr) == value) break;
  }
  return buffer;
}

std::string JsonString(const std::string& text) {
  std::string out = "\"";
  for (char c : text) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\t':
        out += "\\t";
        break;
      case '\r':
        out += "\\r";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char escape[8];
          std::snprintf(escape, sizeof(escape), "\\u%04x", c);
          out += escape;
        } else {
          out += c;
        }
    }
  }
  out += '"';
  return out;
}

// Microseconds: the trace_event convention. Simulation seconds are already
// small, so the scale keeps Perfetto's zoom ergonomics sane.
std::string TraceTs(double t) { return JsonNumber(t * 1e6); }

// Track (tid) assignment inside one job's process: 0 = tick phases, then
// per-cache, per-source, and per-node tracks in disjoint ranges. Purely a
// function of the event.
constexpr int64_t kTidPhases = 0;
constexpr int64_t kTidRun = 9999;
constexpr int64_t kTidCacheBase = 1;
constexpr int64_t kTidSourceBase = 10000;
constexpr int64_t kTidNodeBase = 20000;

int64_t EventTid(const TraceEvent& event) {
  if (event.kind == TraceEventKind::kRelayStore ||
      event.kind == TraceEventKind::kRelayForward) {
    return kTidNodeBase + event.node;
  }
  if (event.cache >= 0) return kTidCacheBase + event.cache;
  if (event.node >= 0) return kTidNodeBase + event.node;
  if (event.source >= 0) return kTidSourceBase + event.source;
  return kTidRun;
}

std::string TidName(int64_t tid) {
  if (tid == kTidPhases) return "tick_phases";
  if (tid == kTidRun) return "run";
  if (tid >= kTidNodeBase) return "node " + std::to_string(tid - kTidNodeBase);
  if (tid >= kTidSourceBase) {
    return "source " + std::to_string(tid - kTidSourceBase);
  }
  return "cache " + std::to_string(tid - kTidCacheBase);
}

}  // namespace

void WriteTimeSeriesJson(std::ostream& os, const std::vector<ObsJob>& jobs) {
  os << "{\n  \"schema\": \"besync.timeseries.v1\",\n  \"jobs\": [\n";
  bool first_job = true;
  for (const ObsJob& job : jobs) {
    if (job.obs == nullptr) continue;
    const TimeSeries& series = job.obs->series;
    if (!first_job) os << ",\n";
    first_job = false;
    os << "    {\"name\": " << JsonString(job.name)
       << ", \"sample_interval\": " << JsonNumber(series.sample_interval())
       << ", \"effective_interval\": "
       << JsonNumber(series.effective_interval())
       << ", \"samples_dropped\": " << series.samples_dropped()
       << ",\n     \"columns\": [\"t\"";
    for (const std::string& column : series.columns()) {
      os << ", " << JsonString(column);
    }
    os << "],\n     \"samples\": [";
    for (size_t i = 0; i < series.rows().size(); ++i) {
      const TimeSeries::Row& row = series.rows()[i];
      os << (i == 0 ? "\n" : ",\n") << "       [" << JsonNumber(row.t);
      for (double value : row.values) os << ", " << JsonNumber(value);
      os << "]";
    }
    os << "\n     ]}";
  }
  os << "\n  ]\n}\n";
}

void WriteTraceJson(std::ostream& os, const std::vector<ObsJob>& jobs) {
  os << "{\n  \"schema\": \"besync.trace.v1\",\n"
     << "  \"displayTimeUnit\": \"ms\",\n  \"jobs\": [\n";
  bool first_job = true;
  int pid = -1;
  for (const ObsJob& job : jobs) {
    ++pid;
    if (job.obs == nullptr) continue;
    if (!first_job) os << ",\n";
    first_job = false;
    os << "    {\"name\": " << JsonString(job.name) << ", \"pid\": " << pid
       << ", \"tick_length\": " << JsonNumber(job.obs->tick_length)
       << ", \"trace_dropped\": " << job.obs->trace_dropped
       << ", \"events\": " << job.obs->trace.size() << "}";
  }
  os << "\n  ],\n  \"traceEvents\": [";

  bool first_event = true;
  auto emit = [&os, &first_event](const std::string& line) {
    os << (first_event ? "\n" : ",\n") << "    " << line;
    first_event = false;
  };

  pid = -1;
  for (const ObsJob& job : jobs) {
    ++pid;
    if (job.obs == nullptr) continue;
    const ObsOutput& obs = *job.obs;
    const std::string pid_str = std::to_string(pid);

    emit("{\"name\": \"process_name\", \"ph\": \"M\", \"pid\": " + pid_str +
         ", \"tid\": 0, \"args\": {\"name\": " + JsonString(job.name) + "}}");

    // Thread-name metadata for every track this job actually uses,
    // ascending tid.
    std::set<int64_t> tids;
    if (!obs.tick_times.empty()) tids.insert(kTidPhases);
    for (const TraceEvent& event : obs.trace) tids.insert(EventTid(event));
    for (int64_t tid : tids) {
      emit("{\"name\": \"thread_name\", \"ph\": \"M\", \"pid\": " + pid_str +
           ", \"tid\": " + std::to_string(tid) + ", \"args\": {\"name\": " +
           JsonString(TidName(tid)) + "}}");
    }

    // Tick-phase duration slices: each recorded tick is split into the six
    // engine phases in execution order, equal sim-time widths. These show
    // the cadence and phase sequence deterministically; wall-clock phase
    // costs stay in the opt-in --perf path.
    const double slice = obs.tick_length / PhaseTimer::kNumPhases;
    for (double tick : obs.tick_times) {
      for (int phase = 0; phase < PhaseTimer::kNumPhases; ++phase) {
        emit("{\"name\": \"" +
             std::string(
                 PhaseTimer::Name(static_cast<PhaseTimer::Phase>(phase))) +
             "\", \"ph\": \"X\", \"ts\": " + TraceTs(tick + phase * slice) +
             ", \"dur\": " + TraceTs(slice) + ", \"pid\": " + pid_str +
             ", \"tid\": 0}");
      }
    }

    for (const TraceEvent& event : obs.trace) {
      std::string line = "{\"name\": \"";
      line += TraceEventKindToString(event.kind);
      line += "\", \"ph\": \"i\", \"s\": \"t\", \"ts\": ";
      line += TraceTs(event.t);
      line += ", \"pid\": " + pid_str;
      line += ", \"tid\": " + std::to_string(EventTid(event));
      line += ", \"args\": {\"t\": " + JsonNumber(event.t);
      line += ", \"object\": " + std::to_string(event.object);
      line += ", \"cache\": " + std::to_string(event.cache);
      line += ", \"source\": " + std::to_string(event.source);
      line += ", \"node\": " + std::to_string(event.node);
      line += ", \"version\": " + std::to_string(event.version);
      line += ", \"aux\": " + std::to_string(event.aux);
      line += ", \"pull\": " + std::string(event.is_pull ? "true" : "false");
      line += ", \"value\": " + JsonNumber(event.value);
      line += "}}";
      emit(line);
    }
  }
  os << "\n  ]\n}\n";
}

namespace {

Status WriteFile(const std::string& path, const std::vector<ObsJob>& jobs,
                 void (*writer)(std::ostream&, const std::vector<ObsJob>&)) {
  std::ofstream file(path);
  if (!file) return Status::IOError("cannot open ", path, " for writing");
  writer(file, jobs);
  file.flush();
  if (!file) return Status::IOError("short write to ", path);
  return Status::OK();
}

}  // namespace

Status WriteTimeSeriesFile(const std::string& path,
                           const std::vector<ObsJob>& jobs) {
  return WriteFile(path, jobs, &WriteTimeSeriesJson);
}

Status WriteTraceFile(const std::string& path,
                      const std::vector<ObsJob>& jobs) {
  return WriteFile(path, jobs, &WriteTraceJson);
}

}  // namespace besync
