#include "obs/metrics.h"

#include <utility>

namespace besync {

Counter* MetricsRegistry::AddCounter(std::string name) {
  counters_.emplace_back(std::move(name), Counter());
  return &counters_.back().second;
}

Gauge* MetricsRegistry::AddGauge(std::string name) {
  gauges_.emplace_back(std::move(name), Gauge());
  return &gauges_.back().second;
}

Histogram* MetricsRegistry::AddHistogram(std::string name, int compression) {
  histograms_.emplace_back(std::move(name), Histogram(compression));
  return &histograms_.back().second;
}

void MetricsRegistry::Reset() {
  for (auto& entry : counters_) entry.second.Reset();
  for (auto& entry : gauges_) entry.second.Reset();
  for (auto& entry : histograms_) entry.second.Reset();
}

}  // namespace besync
