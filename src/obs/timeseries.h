#ifndef BESYNC_OBS_TIMESERIES_H_
#define BESYNC_OBS_TIMESERIES_H_

#include <cstdint>
#include <string>
#include <vector>

namespace besync {

/// A fixed-budget multi-column time series: named columns, one row per
/// sample, and deterministic decimation when the budget fills. Appends are
/// pure functions of the appended sequence — no randomness, no wall clock —
/// so the retained rows are identical across runs and thread counts.
///
/// Downsampling: when the row count reaches `max_samples` (>= 2), every
/// odd-indexed retained row is dropped (rows 0, 2, 4, ... survive) and the
/// effective sampling interval doubles, so the series always spans the whole
/// run at a uniform-but-coarsening grid instead of truncating the tail.
class TimeSeries {
 public:
  struct Row {
    double t = 0.0;
    std::vector<double> values;
  };

  /// `max_samples <= 1` disables the budget (every sample is retained).
  void Configure(std::vector<std::string> columns, double sample_interval,
                 int max_samples);

  /// True when a sample is due at simulation time `t` (first call after
  /// each multiple of the effective interval). Configure() must have run.
  bool Due(double t) const { return t >= next_time_; }

  /// Appends one row (`values.size()` must equal the column count) and
  /// advances the schedule; decimates if the budget is now full.
  void Append(double t, const std::vector<double>& values);

  const std::vector<std::string>& columns() const { return columns_; }
  const std::vector<Row>& rows() const { return rows_; }
  double sample_interval() const { return base_interval_; }
  /// Current grid spacing: `sample_interval * 2^k` after k decimations.
  double effective_interval() const { return effective_interval_; }
  /// Total rows discarded by decimation (not a data loss indicator — the
  /// survivors still cover the full time span).
  int64_t samples_dropped() const { return dropped_; }

 private:
  std::vector<std::string> columns_;
  std::vector<Row> rows_;
  double base_interval_ = 1.0;
  double effective_interval_ = 1.0;
  double next_time_ = 0.0;
  int max_samples_ = 0;
  int64_t dropped_ = 0;
};

}  // namespace besync

#endif  // BESYNC_OBS_TIMESERIES_H_
