#ifndef BESYNC_OBS_OBS_CONFIG_H_
#define BESYNC_OBS_OBS_CONFIG_H_

#include <cstdint>
#include <vector>

namespace besync {

/// Off-by-default observability knobs carried on `CooperativeConfig` /
/// `ExperimentConfig`. With `enabled == false` (the default) the engine
/// allocates no observer state and every instrumentation hook is a single
/// null-pointer test, so observability compiled in but disabled is bitwise
/// inert: goldens, runner JSON/CSV, and BENCH_*.json bytes are unchanged.
///
/// With `enabled == true` the collectors only *read* engine state (no
/// generator or scheduler randomness is drawn, no shared state is mutated),
/// so run results stay byte-identical to a disabled run at any
/// `run_threads`; see DESIGN.md "Observability without perturbation".
struct ObsConfig {
  /// Master switch: sample the per-tick time series (and allocate the
  /// collector). Everything below is ignored when false.
  bool enabled = false;

  /// Simulation-time spacing between time-series samples, in seconds.
  /// Samples land on the first tick whose time reaches the next multiple;
  /// intervals finer than the tick length degrade to one sample per tick.
  double sample_interval = 1.0;
  /// Fixed sample budget: when the series would exceed this many rows, every
  /// other retained row is dropped and the effective interval doubles
  /// (deterministic decimation — no randomness, no dependence on thread
  /// count). <= 1 means unbounded.
  int max_samples = 512;
  /// Per-cache divergence columns are emitted for the first
  /// `min(num_caches, max_per_cache_series)` caches; the total-divergence
  /// column always covers all of them.
  int max_per_cache_series = 8;

  /// Record message-lifecycle trace events (requires `enabled`).
  bool trace = false;
  /// Trace window in simulation time; events outside are not recorded.
  /// `trace_end < 0` means unbounded.
  double trace_start = 0.0;
  double trace_end = -1.0;
  /// Restrict tracing to these global object indices / leaf cache ids.
  /// Empty = no filter on that axis. Events that carry no object (faults,
  /// resync markers, tick phases) pass the object filter unconditionally.
  std::vector<int64_t> trace_objects;
  std::vector<int32_t> trace_caches;
  /// Caps. Each per-entity buffer stops recording at `max_trace_events`
  /// events (counting drops), and the merged trace is truncated to the same
  /// cap — both deterministic, both reported in the export.
  int64_t max_trace_events = 100000;
  /// Tick-phase slices are emitted for at most this many ticks inside the
  /// trace window (they exist to show cadence, not to be exhaustive).
  int max_phase_slice_ticks = 2000;

  /// Opt-in, wall-clock-derived per-phase nanosecond columns sampled from
  /// the run's PhaseTimer (requires one to be attached). These are NOT
  /// deterministic and therefore break the byte-identical-across-threads
  /// guarantee for the time-series file — never enable them in goldens or
  /// recorded benches.
  bool sample_phase_nanos = false;
};

}  // namespace besync

#endif  // BESYNC_OBS_OBS_CONFIG_H_
