#ifndef BESYNC_OBS_TRACE_H_
#define BESYNC_OBS_TRACE_H_

#include <cstdint>
#include <memory>
#include <vector>

#include "data/object.h"
#include "obs/obs_config.h"
#include "obs/timeseries.h"

namespace besync {

/// Message-lifecycle and run-event trace kinds. The enum order doubles as
/// the tie-break order for events at the same timestamp, so it follows the
/// pipeline: an enqueue sorts before the send it caused, a send before the
/// store/forward/deliver/apply downstream of it.
enum class TraceEventKind : int32_t {
  /// An object update entered a source's per-cache bookkeeping (or a
  /// restarted cache's replicas were re-enqueued for resync).
  kEnqueue = 0,
  /// A refresh (push, batch member, recovery, or pull response — the latter
  /// flagged `is_pull`) left the source onto its first-hop link.
  kSend = 1,
  /// A relay accepted a message into its store-and-forward buffer.
  kRelayStore = 2,
  /// A relay re-emitted a stored message toward the next hop.
  kRelayForward = 3,
  /// A refresh arrived at its leaf cache...
  kDeliver = 4,
  /// ...and was applied to the replica. The engine applies at arrival time,
  /// so kDeliver/kApply share a timestamp; both are recorded at the apply
  /// site because that is the one point with an identical per-cache message
  /// order in the serial and sharded engines.
  kApply = 5,
  /// The read path sent a pull request for a missed/invalid replica.
  kPullRequest = 6,
  /// A source put an invalidation on the wire (one event per invalidated
  /// object, batches included).
  kInvalidateSend = 7,
  /// A cache marked a replica invalid on receiving an invalidation.
  kInvalidateApply = 8,
  /// A capacity-limited cache store evicted a resident replica.
  kEvict = 9,
  /// A link dropped a message: random loss, or blackholed while down
  /// (`aux` = 1 for blackholed).
  kDrop = 10,
  /// A scripted fault event fired (`aux` = FaultEventKind).
  kFault = 11,
  /// A cache restart opened a time-to-resync episode (`aux` = replicas
  /// outstanding).
  kResyncStart = 12,
  /// The episode closed: every outstanding replica re-delivered
  /// (`value` = episode duration in seconds).
  kResyncDone = 13,
};

const char* TraceEventKindToString(TraceEventKind kind);

/// One structured trace event. Fields not meaningful for a kind stay at
/// their defaults (-1 / 0); `aux` and `value` are kind-specific extras
/// documented on the enum.
struct TraceEvent {
  TraceEventKind kind = TraceEventKind::kEnqueue;
  double t = 0.0;
  int32_t source = -1;  ///< originating source index
  int32_t cache = -1;   ///< destination leaf cache id
  int32_t node = -1;    ///< relay/link node id (fault target, store site)
  ObjectIndex object = -1;
  int64_t version = 0;
  int64_t aux = 0;
  double value = 0.0;
  bool is_pull = false;
};

/// The (time window, object set, cache set) predicate from ObsConfig.
/// `object < 0` / `cache < 0` act as wildcards (events that do not carry
/// that identity — faults, resync markers — always pass that axis).
struct TraceFilter {
  double start = 0.0;
  double end = -1.0;                  ///< < 0 = unbounded
  std::vector<int64_t> objects;       ///< sorted; empty = all
  std::vector<int32_t> caches;        ///< sorted; empty = all

  static TraceFilter FromConfig(const ObsConfig& config);

  bool PassTime(double t) const {
    return t >= start && (end < 0.0 || t <= end);
  }
  bool Pass(double t, ObjectIndex object, int32_t cache) const;
};

/// An append-only event buffer owned by exactly one entity (one source, one
/// cache, one relay node, or the scheduler main loop). Each engine entity
/// is recorded by exactly one thread per tick phase regardless of
/// `run_threads`, so per-entity buffering needs no locks and — unlike
/// per-thread buffering — yields buffer contents that are independent of
/// the thread count. Record() applies the shared filter and a per-buffer
/// event cap inline; a disabled trace is a null buffer pointer at the call
/// site, not a no-op Record.
class TraceBuffer {
 public:
  void Init(const TraceFilter* filter, int64_t cap) {
    filter_ = filter;
    cap_ = cap;
  }

  void Record(const TraceEvent& event) {
    if (!filter_->Pass(event.t, event.object, event.cache)) return;
    if (cap_ > 0 && static_cast<int64_t>(events_.size()) >= cap_) {
      ++dropped_;
      return;
    }
    events_.push_back(event);
  }

  const std::vector<TraceEvent>& events() const { return events_; }
  int64_t dropped() const { return dropped_; }

 private:
  const TraceFilter* filter_ = nullptr;
  int64_t cap_ = 0;
  std::vector<TraceEvent> events_;
  int64_t dropped_ = 0;
};

/// Everything the collector hands back after a run: the sampled series, the
/// merged trace, and the tick cadence needed to draw phase slices. Attached
/// to RunResult as a shared_ptr; absent (null) unless obs was enabled.
struct ObsOutput {
  TimeSeries series;
  /// All buffers merged into one deterministic order: ascending (t, kind,
  /// cache, node, source, object, version), ties broken by buffer id and
  /// in-buffer sequence — every key independent of `run_threads`.
  std::vector<TraceEvent> trace;
  /// Events lost to the per-buffer caps plus merge-stage truncation.
  int64_t trace_dropped = 0;
  /// Tick start times inside the trace window (capped) — the grid the
  /// Perfetto exporter draws phase slices on.
  std::vector<double> tick_times;
  double tick_length = 1.0;
  int num_caches = 0;
};

/// Owns the run's observer state: one TraceBuffer per entity, the shared
/// filter, the time series, and the tick grid. Created by the cooperative
/// scheduler in Initialize() iff `ObsConfig::enabled`; agents receive raw
/// buffer pointers (or nullptr when tracing is off) and never see the
/// collector.
class ObsCollector {
 public:
  ObsCollector(const ObsConfig& config, int num_sources, int num_caches,
               int num_relays, double tick_length);

  /// Null when tracing is disabled (hooks then cost one pointer test).
  TraceBuffer* main_buffer() { return buffer_or_null(0); }
  TraceBuffer* source_buffer(int source) {
    return buffer_or_null(1 + source);
  }
  TraceBuffer* cache_buffer(int cache) {
    return buffer_or_null(1 + num_sources_ + cache);
  }
  /// `relay` is the dense relay index (node id - num_caches).
  TraceBuffer* relay_buffer(int relay) {
    return buffer_or_null(1 + num_sources_ + num_caches_ + relay);
  }

  bool trace_enabled() const { return config_.trace; }
  const ObsConfig& config() const { return config_; }

  TimeSeries* series() { return &series_; }

  /// Registers a tick start for the phase-slice grid (trace window and
  /// `max_phase_slice_ticks` applied here).
  void NoteTick(double t);

  /// Merges the buffers and moves everything into an ObsOutput. Call once,
  /// after the run.
  std::shared_ptr<ObsOutput> Finish();

 private:
  TraceBuffer* buffer_or_null(size_t index) {
    return config_.trace ? &buffers_[index] : nullptr;
  }

  ObsConfig config_;
  TraceFilter filter_;
  int num_sources_;
  int num_caches_;
  std::vector<TraceBuffer> buffers_;
  TimeSeries series_;
  std::vector<double> tick_times_;
  double tick_length_;
};

}  // namespace besync

#endif  // BESYNC_OBS_TRACE_H_
