#ifndef BESYNC_OBS_EXPORT_H_
#define BESYNC_OBS_EXPORT_H_

#include <ostream>
#include <string>
#include <vector>

#include "obs/trace.h"
#include "util/status.h"

namespace besync {

/// One run's observability output with the label it is exported under
/// (typically the runner job name). Entries with a null `obs` (obs was not
/// enabled for that run) are skipped by the writers.
struct ObsJob {
  std::string name;
  const ObsOutput* obs = nullptr;
};

/// Writes the `besync.timeseries.v1` document: one object per job with the
/// column names (first column "t") and sample rows. Byte-stable: numbers
/// use the shortest round-trip decimal, ordering is job order then row
/// order — no wall-clock, locale, or thread-count dependence.
void WriteTimeSeriesJson(std::ostream& os, const std::vector<ObsJob>& jobs);

/// Writes the `besync.trace.v1` document, which is simultaneously a valid
/// Chrome/Perfetto `trace_event` file (extra top-level keys are ignored by
/// the viewers): per-job process/thread metadata, deterministic tick-phase
/// duration slices on the "tick_phases" track (sim-time grid — the phase
/// *order and cadence*, not wall durations), and every merged trace event
/// as a thread-scoped instant with the structured payload in `args`.
/// Timestamps are simulation seconds scaled to microseconds. Byte-stable
/// under the same guarantees as the time-series writer.
void WriteTraceJson(std::ostream& os, const std::vector<ObsJob>& jobs);

/// File-writing conveniences for the benches.
Status WriteTimeSeriesFile(const std::string& path,
                           const std::vector<ObsJob>& jobs);
Status WriteTraceFile(const std::string& path, const std::vector<ObsJob>& jobs);

}  // namespace besync

#endif  // BESYNC_OBS_EXPORT_H_
