#include "obs/timeseries.h"

#include <utility>

#include "util/logging.h"

namespace besync {

void TimeSeries::Configure(std::vector<std::string> columns,
                           double sample_interval, int max_samples) {
  BESYNC_CHECK(sample_interval > 0.0) << "sample_interval must be positive";
  columns_ = std::move(columns);
  base_interval_ = sample_interval;
  effective_interval_ = sample_interval;
  max_samples_ = max_samples;
  next_time_ = 0.0;
  rows_.clear();
  dropped_ = 0;
}

void TimeSeries::Append(double t, const std::vector<double>& values) {
  BESYNC_CHECK(values.size() == columns_.size())
      << "time-series row width mismatch";
  if (max_samples_ > 1 && static_cast<int>(rows_.size()) >= max_samples_) {
    // Budget full: keep even indices before appending. Uniform decimation
    // that preserves the first sample, the full span, and (because it runs
    // before the push) the newest sample. Deterministic — depends only on
    // the row count.
    size_t kept = 0;
    for (size_t i = 0; i < rows_.size(); i += 2) {
      rows_[kept++] = std::move(rows_[i]);
    }
    dropped_ += static_cast<int64_t>(rows_.size() - kept);
    rows_.resize(kept);
    effective_interval_ *= 2.0;
  }
  rows_.push_back(Row{t, values});
  next_time_ = t + effective_interval_;
}

}  // namespace besync
