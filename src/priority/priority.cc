#include "priority/priority.h"

#include <limits>

#include "priority/bound.h"
#include "priority/history.h"
#include "priority/naive.h"
#include "priority/special_case.h"
#include "util/logging.h"

namespace besync {

std::string PolicyKindToString(PolicyKind kind) {
  switch (kind) {
    case PolicyKind::kArea:
      return "area";
    case PolicyKind::kNaive:
      return "naive";
    case PolicyKind::kPoissonStaleness:
      return "poisson-staleness";
    case PolicyKind::kPoissonLag:
      return "poisson-lag";
    case PolicyKind::kBound:
      return "bound";
    case PolicyKind::kAreaHistory:
      return "area-history";
  }
  return "unknown";
}

double PriorityPolicy::ThresholdCrossTime(const PriorityContext& /*context*/,
                                          double /*threshold*/, double /*now*/) const {
  BESYNC_CHECK(false) << "ThresholdCrossTime unsupported for policy "
                      << PolicyKindToString(kind());
  return std::numeric_limits<double>::infinity();
}

double AreaPriority::Priority(const PriorityContext& context, double now) const {
  const DivergenceTracker& tracker = *context.tracker;
  const double elapsed = now - tracker.last_refresh_time();
  const double priority =
      elapsed * tracker.current_divergence() - tracker.IntegralTo(now);
  return priority * context.weight;
}

std::unique_ptr<PriorityPolicy> MakePolicy(PolicyKind kind, double history_beta) {
  switch (kind) {
    case PolicyKind::kArea:
      return std::make_unique<AreaPriority>();
    case PolicyKind::kNaive:
      return std::make_unique<NaivePriority>();
    case PolicyKind::kPoissonStaleness:
      return std::make_unique<PoissonStalenessPriority>();
    case PolicyKind::kPoissonLag:
      return std::make_unique<PoissonLagPriority>();
    case PolicyKind::kBound:
      return std::make_unique<BoundPriority>();
    case PolicyKind::kAreaHistory:
      return std::make_unique<HistoryPriority>(history_beta);
  }
  BESYNC_CHECK(false) << "unknown policy kind";
  return nullptr;
}

}  // namespace besync
