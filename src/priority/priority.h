#ifndef BESYNC_PRIORITY_PRIORITY_H_
#define BESYNC_PRIORITY_PRIORITY_H_

#include <memory>
#include <string>

#include "divergence/tracker.h"

namespace besync {

/// Available refresh-priority policies.
enum class PolicyKind {
  /// The paper's general priority (Sections 3.3, 4, Eq. 2):
  ///   P(O, t) = [ (t - t_last) * D(O,t) - ∫_{t_last}^{t} D dτ ] * W(O,t)
  /// — the weighted area *above* the divergence curve since the last
  /// refresh. Applies to any divergence metric.
  kArea,
  /// The "simpler alternative" P = D(O,t) * W(O,t) used as a strawman in
  /// Section 4.3.
  kNaive,
  /// Closed form for Poisson updates + staleness metric (Section 3.4):
  ///   P = D_s / lambda * W.
  kPoissonStaleness,
  /// Closed form for Poisson updates + lag metric (Section 3.4):
  ///   P = D_l (D_l + 1) / (2 lambda) * W.
  kPoissonLag,
  /// Divergence bounding (Section 9): P = R (t - t_last)^2 / 2 * W, where R
  /// is the object's maximum divergence rate. Minimizes the average upper
  /// bound on divergence instead of the actual divergence.
  kBound,
  /// History-extended area priority (Section 10.1 future work): blends the
  /// per-interval area with a learned historical divergence rate. See
  /// priority/history.h.
  kAreaHistory,
};

std::string PolicyKindToString(PolicyKind kind);

/// Everything a policy may need to price one object at one instant.
struct PriorityContext {
  /// Source-side divergence bookkeeping (never null).
  const DivergenceTracker* tracker = nullptr;
  /// W(O, t_now).
  double weight = 1.0;
  /// Estimate of the object's Poisson update rate (special-case policies).
  double lambda_estimate = 0.0;
  /// Maximum divergence rate R (bound policy).
  double max_divergence_rate = 0.0;
  /// Learned historical divergence growth rate (history policy); maintained
  /// by the scheduler across refresh intervals.
  double history_rate = 0.0;
};

/// A refresh-priority policy. For all policies except kBound the priority is
/// constant between updates to the object (Section 8.2), so schedulers only
/// re-evaluate priorities on update events; kBound is time-varying and
/// additionally exposes the threshold-crossing time in closed form.
class PriorityPolicy {
 public:
  virtual ~PriorityPolicy() = default;

  virtual PolicyKind kind() const = 0;

  /// Weighted refresh priority of the object at time `now`.
  virtual double Priority(const PriorityContext& context, double now) const = 0;

  /// Whether the priority changes between updates.
  virtual bool time_varying() const { return false; }

  /// Whether updates to the object change its priority (true for all
  /// divergence-driven policies; false for the purely deterministic bound
  /// policy). Time-varying, update-sensitive policies need both wake-ups
  /// and update notifications.
  virtual bool update_sensitive() const { return true; }

  /// For time-varying policies: the earliest time >= `now` at which the
  /// priority reaches `threshold` (+infinity if never). Default: unsupported.
  virtual double ThresholdCrossTime(const PriorityContext& context, double threshold,
                                    double now) const;
};

/// The paper's general area-above-the-divergence-curve priority.
class AreaPriority : public PriorityPolicy {
 public:
  PolicyKind kind() const override { return PolicyKind::kArea; }
  double Priority(const PriorityContext& context, double now) const override;
};

/// `history_beta` applies only to kAreaHistory (share of the historical
/// prediction in the blended priority).
std::unique_ptr<PriorityPolicy> MakePolicy(PolicyKind kind, double history_beta = 0.5);

}  // namespace besync

#endif  // BESYNC_PRIORITY_PRIORITY_H_
