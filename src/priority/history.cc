#include "priority/history.h"

#include <cmath>
#include <limits>

#include "util/logging.h"

namespace besync {

HistoryPriority::HistoryPriority(double beta) : beta_(beta) {
  BESYNC_CHECK_GE(beta, 0.0);
  BESYNC_CHECK_LE(beta, 1.0);
}

double HistoryPriority::Priority(const PriorityContext& context, double now) const {
  const DivergenceTracker& tracker = *context.tracker;
  const double elapsed = now - tracker.last_refresh_time();
  const double area =
      elapsed * tracker.current_divergence() - tracker.IntegralTo(now);
  const double predicted = 0.5 * context.history_rate * elapsed * elapsed;
  return ((1.0 - beta_) * area + beta_ * predicted) * context.weight;
}

double HistoryPriority::ThresholdCrossTime(const PriorityContext& context,
                                           double threshold, double now) const {
  if (Priority(context, now) >= threshold) return now;
  // Between updates only the quadratic history term grows:
  //   (1-beta)*W*area + beta*W*r/2*(t-tl)^2 = threshold.
  const double quadratic_coefficient =
      0.5 * beta_ * context.history_rate * context.weight;
  if (quadratic_coefficient <= 0.0) {
    return std::numeric_limits<double>::infinity();
  }
  const DivergenceTracker& tracker = *context.tracker;
  const double t_last = tracker.last_refresh_time();
  // The area part is constant between updates; evaluate it at `now`.
  const double elapsed = now - t_last;
  const double area =
      elapsed * tracker.current_divergence() - tracker.IntegralTo(now);
  const double constant_part = (1.0 - beta_) * area * context.weight;
  const double radicand = (threshold - constant_part) / quadratic_coefficient;
  if (radicand <= 0.0) return now;
  const double cross = t_last + std::sqrt(radicand);
  return cross > now ? cross : now;
}

HistoryRateEstimator::HistoryRateEstimator(double smoothing) : smoothing_(smoothing) {
  BESYNC_CHECK_GT(smoothing, 0.0);
  BESYNC_CHECK_LE(smoothing, 1.0);
}

void HistoryRateEstimator::OnRefresh(double interval_length, double integral) {
  if (interval_length <= 0.0) return;
  const double realized = 2.0 * integral / (interval_length * interval_length);
  rate_ = has_observation_ ? (1.0 - smoothing_) * rate_ + smoothing_ * realized
                           : realized;
  has_observation_ = true;
}

}  // namespace besync
