#include "priority/priority_queue.h"

#include <algorithm>

namespace besync {

namespace {
// Max-heap comparator (std::push_heap builds a max-heap with operator<).
bool KeyLess(const QueueEntry& a, const QueueEntry& b) { return a.key < b.key; }
// Min-heap comparator.
bool KeyGreater(const QueueEntry& a, const QueueEntry& b) { return a.key > b.key; }
}  // namespace

void LazyMaxHeap::Push(double key, ObjectIndex index, uint64_t epoch) {
  entries_.push_back(QueueEntry{key, index, epoch});
  std::push_heap(entries_.begin(), entries_.end(), KeyLess);
}

void LazyMaxHeap::DiscardStaleTop(const EpochFn& current_epoch) {
  while (!entries_.empty() &&
         entries_.front().epoch != current_epoch(entries_.front().index)) {
    std::pop_heap(entries_.begin(), entries_.end(), KeyLess);
    entries_.pop_back();
  }
}

bool LazyMaxHeap::PopValid(const EpochFn& current_epoch, QueueEntry* out) {
  DiscardStaleTop(current_epoch);
  if (entries_.empty()) return false;
  std::pop_heap(entries_.begin(), entries_.end(), KeyLess);
  *out = entries_.back();
  entries_.pop_back();
  return true;
}

bool LazyMaxHeap::PeekValid(const EpochFn& current_epoch, QueueEntry* out) {
  DiscardStaleTop(current_epoch);
  if (entries_.empty()) return false;
  *out = entries_.front();
  return true;
}

void LazyMaxHeap::Restore(const QueueEntry& entry) {
  entries_.push_back(entry);
  std::push_heap(entries_.begin(), entries_.end(), KeyLess);
}

void LazyMaxHeap::Compact(const EpochFn& current_epoch) {
  entries_.erase(std::remove_if(entries_.begin(), entries_.end(),
                                [&current_epoch](const QueueEntry& entry) {
                                  return entry.epoch != current_epoch(entry.index);
                                }),
                 entries_.end());
  std::make_heap(entries_.begin(), entries_.end(), KeyLess);
}

void TimeMinHeap::Push(double time, ObjectIndex index, uint64_t epoch) {
  entries_.push_back(QueueEntry{time, index, epoch});
  std::push_heap(entries_.begin(), entries_.end(), KeyGreater);
}

bool TimeMinHeap::PopDue(double now, const EpochFn& current_epoch, QueueEntry* out) {
  while (!entries_.empty()) {
    const QueueEntry& top = entries_.front();
    if (top.epoch != current_epoch(top.index)) {
      std::pop_heap(entries_.begin(), entries_.end(), KeyGreater);
      entries_.pop_back();
      continue;
    }
    if (top.key > now) return false;  // earliest valid entry not due yet
    std::pop_heap(entries_.begin(), entries_.end(), KeyGreater);
    *out = entries_.back();
    entries_.pop_back();
    return true;
  }
  return false;
}

}  // namespace besync
