#ifndef BESYNC_PRIORITY_HISTORY_H_
#define BESYNC_PRIORITY_HISTORY_H_

#include "priority/priority.h"

namespace besync {

/// History-extended priority (paper Section 10.1, first future-work item:
/// "priority functions based on a longer history period, to trade
/// adaptiveness and reduced state for possibly more reliable predictions of
/// future behavior").
///
/// Blends the paper's per-interval area priority with a prediction from the
/// object's *historical* divergence growth rate r̂ (an EMA over past
/// refresh intervals, maintained by the scheduler and passed in via
/// PriorityContext::history_rate):
///
///   P = W * [ (1-beta) * area(t)  +  beta * r̂ (t - t_last)^2 / 2 ].
///
/// beta = 0 recovers the pure area policy; beta = 1 is a fully
/// history-driven policy analogous to the Section 9 bound priority with a
/// learned rate. The history term grows between updates, so the policy is
/// time-varying *and* update-sensitive.
class HistoryPriority : public PriorityPolicy {
 public:
  /// `beta` in [0, 1]: weight of the historical prediction.
  explicit HistoryPriority(double beta = 0.5);

  PolicyKind kind() const override { return PolicyKind::kAreaHistory; }
  double Priority(const PriorityContext& context, double now) const override;
  bool time_varying() const override { return true; }
  bool update_sensitive() const override { return true; }
  double ThresholdCrossTime(const PriorityContext& context, double threshold,
                            double now) const override;

  double beta() const { return beta_; }

 private:
  double beta_;
};

/// Exponential-moving-average tracker of an object's realized divergence
/// growth rate across refresh intervals. Under a linear-growth model
/// D(tau) ~ r*tau the integral over an interval of length L is r*L^2/2, so
/// the realized rate of a finished interval is 2*integral/L^2.
class HistoryRateEstimator {
 public:
  /// `smoothing` in (0, 1]: EMA factor for new observations.
  explicit HistoryRateEstimator(double smoothing = 0.3);

  /// Records a finished refresh interval [start, end] with divergence
  /// integral `integral` over it.
  void OnRefresh(double interval_length, double integral);

  /// Current rate estimate (0 until the first completed interval).
  double rate() const { return rate_; }

 private:
  double smoothing_;
  double rate_ = 0.0;
  bool has_observation_ = false;
};

}  // namespace besync

#endif  // BESYNC_PRIORITY_HISTORY_H_
