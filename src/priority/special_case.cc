#include "priority/special_case.h"

#include "util/logging.h"

namespace besync {

double PoissonStalenessPriority::Priority(const PriorityContext& context,
                                          double /*now*/) const {
  const double staleness = context.tracker->current_divergence();
  if (staleness <= 0.0) return 0.0;  // up-to-date copies have zero priority
  const double lambda = context.lambda_estimate;
  if (lambda <= 0.0) return 0.0;  // never-updating object: nothing to gain
  return staleness / lambda * context.weight;
}

double PoissonLagPriority::Priority(const PriorityContext& context,
                                    double /*now*/) const {
  const double lag = context.tracker->current_divergence();
  if (lag <= 0.0) return 0.0;
  const double lambda = context.lambda_estimate;
  if (lambda <= 0.0) return 0.0;
  return lag * (lag + 1.0) / (2.0 * lambda) * context.weight;
}

double EstimateLambda(LambdaEstimateMode mode, double true_lambda,
                      int64_t total_updates, double elapsed_total,
                      int64_t updates_since_refresh, double elapsed_since_refresh) {
  switch (mode) {
    case LambdaEstimateMode::kTrue:
      return true_lambda;
    case LambdaEstimateMode::kLongRun:
      if (elapsed_total <= 0.0) return 0.0;
      return static_cast<double>(total_updates) / elapsed_total;
    case LambdaEstimateMode::kSinceRefresh:
      if (elapsed_since_refresh <= 0.0) return 0.0;
      return static_cast<double>(updates_since_refresh) / elapsed_since_refresh;
  }
  BESYNC_CHECK(false) << "unknown lambda estimate mode";
  return 0.0;
}

}  // namespace besync
