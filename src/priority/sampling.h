#ifndef BESYNC_PRIORITY_SAMPLING_H_
#define BESYNC_PRIORITY_SAMPLING_H_

#include <cstdint>

namespace besync {

/// Sampling-based priority monitoring (Section 8.2.1): when triggers are
/// unavailable or too expensive, a source samples an object's divergence
/// periodically and estimates the quantities the priority function needs.
///
/// Following the paper, "each sampled value can be assumed to have been
/// active during the period beginning and ending halfway between successive
/// samples" — i.e. the divergence integral is estimated by midpoint
/// attribution. The estimated divergence rate rho (smoothed over samples)
/// feeds the paper's closed-form prediction of when the priority will reach
/// the refresh threshold:
///
///   t_future = t_last + sqrt( (t_now - t_last)^2
///                             + 2 (T - P(t_now)) / (rho * W) ).
class SampledTracker {
 public:
  /// `rate_smoothing` in (0, 1]: EMA factor for the divergence-rate
  /// estimate (1 = last sample only).
  explicit SampledTracker(double rate_smoothing = 0.3);

  /// Resets after a refresh sent at time `t` (divergence drops to zero).
  void OnRefresh(double t);

  /// Records a direct divergence measurement `divergence` taken at time `t`.
  void AddSample(double t, double divergence);

  /// Most recently sampled divergence.
  double estimated_divergence() const { return current_divergence_; }

  /// Estimated ∫ D dt over [t_last, t] under midpoint attribution.
  double EstimatedIntegralTo(double t) const;

  /// Estimated unweighted priority (area above the estimated divergence
  /// curve) at time `t`.
  double EstimatedPriority(double t) const;

  /// Smoothed divergence growth rate rho (per second); 0 until two samples
  /// have been taken since the last refresh.
  double estimated_rate() const { return rate_; }

  /// The paper's predicted threshold-crossing time; +infinity when the
  /// estimated rate or weight is nonpositive. Never less than `now`.
  double PredictCrossTime(double threshold, double weight, double now) const;

  double last_refresh_time() const { return last_refresh_time_; }
  int64_t samples_since_refresh() const {
    return static_cast<int64_t>(samples_since_refresh_);
  }

 private:
  double rate_smoothing_;
  double last_refresh_time_ = 0.0;
  double last_sample_time_ = 0.0;
  /// Start of the time segment currently attributed to current_divergence_.
  double segment_start_ = 0.0;
  double current_divergence_ = 0.0;
  double integral_ = 0.0;  // ∫ D dt over [last_refresh_time_, segment_start_]
  double rate_ = 0.0;
  long long samples_since_refresh_ = 0;
};

}  // namespace besync

#endif  // BESYNC_PRIORITY_SAMPLING_H_
