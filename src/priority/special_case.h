#ifndef BESYNC_PRIORITY_SPECIAL_CASE_H_
#define BESYNC_PRIORITY_SPECIAL_CASE_H_

#include "priority/priority.h"

namespace besync {

/// Closed-form priority for Poisson updates under the staleness metric
/// (Section 3.4): P_s = D_s / lambda * W. Stale objects with low update
/// rates come first — they are "the most likely to remain up-to-date the
/// longest after being refreshed".
class PoissonStalenessPriority : public PriorityPolicy {
 public:
  PolicyKind kind() const override { return PolicyKind::kPoissonStaleness; }
  double Priority(const PriorityContext& context, double now) const override;
};

/// Closed-form priority for Poisson updates under the lag metric
/// (Section 3.4): P_l = D_l (D_l + 1) / (2 lambda) * W — roughly quadratic
/// in the number of unpropagated updates and inversely proportional to the
/// update rate.
class PoissonLagPriority : public PriorityPolicy {
 public:
  PolicyKind kind() const override { return PolicyKind::kPoissonLag; }
  double Priority(const PriorityContext& context, double now) const override;
};

/// How the scheduler obtains the lambda estimate fed to the special-case
/// policies (Section 8.1).
enum class LambdaEstimateMode {
  /// Use the workload's true rate (idealized knowledge).
  kTrue,
  /// Total updates observed divided by total elapsed time ("the parameter
  /// may be monitored over a longer period of time").
  kLongRun,
  /// Updates since the last refresh divided by the time since the last
  /// refresh ("the number of updates divided by the time elapsed since the
  /// last refresh").
  kSinceRefresh,
};

/// Computes the lambda estimate for one object.
double EstimateLambda(LambdaEstimateMode mode, double true_lambda,
                      int64_t total_updates, double elapsed_total,
                      int64_t updates_since_refresh, double elapsed_since_refresh);

}  // namespace besync

#endif  // BESYNC_PRIORITY_SPECIAL_CASE_H_
