#ifndef BESYNC_PRIORITY_NAIVE_H_
#define BESYNC_PRIORITY_NAIVE_H_

#include "priority/priority.h"

namespace besync {

/// The intuitive-but-suboptimal policy of Section 4.3: prioritize objects by
/// their current weighted divergence, P = D(O,t) * W(O,t). The paper shows
/// this performs up to 64-84% worse than the area priority under skewed
/// weights/rates; bench_validation_* reproduce that comparison.
class NaivePriority : public PriorityPolicy {
 public:
  PolicyKind kind() const override { return PolicyKind::kNaive; }
  double Priority(const PriorityContext& context, double now) const override;
};

}  // namespace besync

#endif  // BESYNC_PRIORITY_NAIVE_H_
