#include "priority/sampling.h"

#include <cmath>
#include <limits>

#include "util/logging.h"

namespace besync {

SampledTracker::SampledTracker(double rate_smoothing) : rate_smoothing_(rate_smoothing) {
  BESYNC_CHECK_GT(rate_smoothing, 0.0);
  BESYNC_CHECK_LE(rate_smoothing, 1.0);
}

void SampledTracker::OnRefresh(double t) {
  last_refresh_time_ = t;
  last_sample_time_ = t;
  segment_start_ = t;
  current_divergence_ = 0.0;
  integral_ = 0.0;
  rate_ = 0.0;
  samples_since_refresh_ = 0;
}

void SampledTracker::AddSample(double t, double divergence) {
  BESYNC_DCHECK(t >= last_sample_time_);
  BESYNC_DCHECK(divergence >= 0.0);
  // Midpoint attribution: the previous sample's value is considered active
  // until halfway between the two samples.
  const double boundary = 0.5 * (last_sample_time_ + t);
  integral_ += current_divergence_ * (boundary - segment_start_);
  segment_start_ = boundary;

  const double dt = t - last_sample_time_;
  if (dt > 0.0 && samples_since_refresh_ > 0) {
    const double instant_rate = (divergence - current_divergence_) / dt;
    rate_ = samples_since_refresh_ == 1
                ? instant_rate
                : (1.0 - rate_smoothing_) * rate_ + rate_smoothing_ * instant_rate;
  } else if (dt > 0.0) {
    // First sample after a refresh: divergence grew from 0.
    rate_ = divergence / dt;
  }

  current_divergence_ = divergence;
  last_sample_time_ = t;
  ++samples_since_refresh_;
}

double SampledTracker::EstimatedIntegralTo(double t) const {
  BESYNC_DCHECK(t >= segment_start_);
  return integral_ + current_divergence_ * (t - segment_start_);
}

double SampledTracker::EstimatedPriority(double t) const {
  return (t - last_refresh_time_) * current_divergence_ - EstimatedIntegralTo(t);
}

double SampledTracker::PredictCrossTime(double threshold, double weight,
                                        double now) const {
  const double priority_now = EstimatedPriority(now) * weight;
  if (priority_now >= threshold) return now;
  if (rate_ <= 0.0 || weight <= 0.0) return std::numeric_limits<double>::infinity();
  const double elapsed = now - last_refresh_time_;
  const double radicand =
      elapsed * elapsed + 2.0 * (threshold - priority_now) / (rate_ * weight);
  if (radicand < 0.0) return now;
  return last_refresh_time_ + std::sqrt(radicand);
}

}  // namespace besync
