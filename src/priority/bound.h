#ifndef BESYNC_PRIORITY_BOUND_H_
#define BESYNC_PRIORITY_BOUND_H_

#include "priority/priority.h"

namespace besync {

/// Divergence-bounding priority (Section 9): when each object has a known
/// maximum divergence rate R_i and refresh latency L_i, the divergence bound
/// is B(O,t) = R_i ((t - t_last) + L_i), and substituting the bound for the
/// actual divergence in the general priority yields
///
///   P(O, t) = R_i (t - t_last)^2 / 2 * W(O, t).
///
/// Unlike the other policies this priority grows deterministically with
/// time, independent of actual updates, so schedulers use the closed-form
/// ThresholdCrossTime instead of per-update re-evaluation.
class BoundPriority : public PriorityPolicy {
 public:
  PolicyKind kind() const override { return PolicyKind::kBound; }
  double Priority(const PriorityContext& context, double now) const override;
  bool time_varying() const override { return true; }
  bool update_sensitive() const override { return false; }
  double ThresholdCrossTime(const PriorityContext& context, double threshold,
                            double now) const override;
};

}  // namespace besync

#endif  // BESYNC_PRIORITY_BOUND_H_
