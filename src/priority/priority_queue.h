#ifndef BESYNC_PRIORITY_PRIORITY_QUEUE_H_
#define BESYNC_PRIORITY_PRIORITY_QUEUE_H_

#include <algorithm>
#include <cstdint>
#include <functional>
#include <vector>

#include "data/object.h"

namespace besync {

/// Heap entry referencing an object, stamped with the epoch at push time.
/// Entries whose epoch no longer matches the object's current epoch are
/// stale and discarded lazily on pop — the standard lazy-deletion trick for
/// priority queues whose keys change only on explicit events (here: object
/// updates and refresh sends; Section 8's "sources can maintain a priority
/// queue so that the highest-priority updated object can be located
/// quickly").
struct QueueEntry {
  double key = 0.0;
  ObjectIndex index = 0;
  uint64_t epoch = 0;
};

/// Resolves an object's current epoch (for staleness checks). The heap
/// methods are templated on the resolver so hot callers can pass a plain
/// struct functor (inlined epoch lookups); this alias remains for callers
/// where a type-erased resolver is convenient.
using EpochFn = std::function<uint64_t(ObjectIndex)>;

namespace heap_internal {
// Struct comparators so std::push_heap/pop_heap inline the comparison (a
// free function decays to a function pointer, costing an indirect call per
// comparison on the hottest path in the engine).
struct KeyLess {
  bool operator()(const QueueEntry& a, const QueueEntry& b) const {
    return a.key < b.key;
  }
};
struct KeyGreater {
  bool operator()(const QueueEntry& a, const QueueEntry& b) const {
    return a.key > b.key;
  }
};
}  // namespace heap_internal

/// Max-heap on QueueEntry::key with lazy invalidation.
class LazyMaxHeap {
 public:
  void Push(double key, ObjectIndex index, uint64_t epoch) {
    entries_.push_back(QueueEntry{key, index, epoch});
    std::push_heap(entries_.begin(), entries_.end(), heap_internal::KeyLess{});
  }

  /// Discards stale entries, then removes and returns the top valid entry.
  /// Returns false if no valid entry remains.
  template <typename Epoch>
  bool PopValid(const Epoch& current_epoch, QueueEntry* out) {
    DiscardStaleTop(current_epoch);
    if (entries_.empty()) return false;
    std::pop_heap(entries_.begin(), entries_.end(), heap_internal::KeyLess{});
    *out = entries_.back();
    entries_.pop_back();
    return true;
  }

  /// Discards stale entries, then peeks the top valid entry without
  /// removing it. Returns false if no valid entry remains.
  template <typename Epoch>
  bool PeekValid(const Epoch& current_epoch, QueueEntry* out) {
    DiscardStaleTop(current_epoch);
    if (entries_.empty()) return false;
    *out = entries_.front();
    return true;
  }

  /// Re-inserts an entry previously obtained from PopValid.
  void Restore(const QueueEntry& entry) {
    entries_.push_back(entry);
    std::push_heap(entries_.begin(), entries_.end(), heap_internal::KeyLess{});
  }

  /// Drops every stale entry and re-heapifies. Since a fresh entry is pushed
  /// on each object update, callers invoke this periodically (e.g. when the
  /// heap exceeds a small multiple of the live object count) to keep memory
  /// proportional to the number of objects rather than the number of
  /// updates.
  template <typename Epoch>
  void Compact(const Epoch& current_epoch) {
    entries_.erase(std::remove_if(entries_.begin(), entries_.end(),
                                  [&current_epoch](const QueueEntry& entry) {
                                    return entry.epoch != current_epoch(entry.index);
                                  }),
                   entries_.end());
    std::make_heap(entries_.begin(), entries_.end(), heap_internal::KeyLess{});
  }

  size_t size() const { return entries_.size(); }
  bool empty() const { return entries_.empty(); }
  void Clear() { entries_.clear(); }

 private:
  template <typename Epoch>
  void DiscardStaleTop(const Epoch& current_epoch) {
    while (!entries_.empty() &&
           entries_.front().epoch != current_epoch(entries_.front().index)) {
      std::pop_heap(entries_.begin(), entries_.end(), heap_internal::KeyLess{});
      entries_.pop_back();
    }
  }

  std::vector<QueueEntry> entries_;
};

/// Min-heap on QueueEntry::key interpreted as a timestamp, with the same
/// lazy invalidation. Used by time-varying (Section 9 bound) policies to
/// wake objects when their priority is expected to cross the threshold.
class TimeMinHeap {
 public:
  void Push(double time, ObjectIndex index, uint64_t epoch) {
    entries_.push_back(QueueEntry{time, index, epoch});
    std::push_heap(entries_.begin(), entries_.end(), heap_internal::KeyGreater{});
  }

  /// Pops the earliest valid entry whose time is <= `now`; returns false if
  /// none is due.
  template <typename Epoch>
  bool PopDue(double now, const Epoch& current_epoch, QueueEntry* out) {
    while (!entries_.empty()) {
      const QueueEntry& top = entries_.front();
      if (top.epoch != current_epoch(top.index)) {
        std::pop_heap(entries_.begin(), entries_.end(), heap_internal::KeyGreater{});
        entries_.pop_back();
        continue;
      }
      if (top.key > now) return false;  // earliest valid entry not due yet
      std::pop_heap(entries_.begin(), entries_.end(), heap_internal::KeyGreater{});
      *out = entries_.back();
      entries_.pop_back();
      return true;
    }
    return false;
  }

  size_t size() const { return entries_.size(); }
  bool empty() const { return entries_.empty(); }
  void Clear() { entries_.clear(); }

 private:
  std::vector<QueueEntry> entries_;
};

}  // namespace besync

#endif  // BESYNC_PRIORITY_PRIORITY_QUEUE_H_
