#ifndef BESYNC_PRIORITY_PRIORITY_QUEUE_H_
#define BESYNC_PRIORITY_PRIORITY_QUEUE_H_

#include <cstdint>
#include <functional>
#include <vector>

#include "data/object.h"

namespace besync {

/// Heap entry referencing an object, stamped with the epoch at push time.
/// Entries whose epoch no longer matches the object's current epoch are
/// stale and discarded lazily on pop — the standard lazy-deletion trick for
/// priority queues whose keys change only on explicit events (here: object
/// updates and refresh sends; Section 8's "sources can maintain a priority
/// queue so that the highest-priority updated object can be located
/// quickly").
struct QueueEntry {
  double key = 0.0;
  ObjectIndex index = 0;
  uint64_t epoch = 0;
};

/// Resolves an object's current epoch (for staleness checks).
using EpochFn = std::function<uint64_t(ObjectIndex)>;

/// Max-heap on QueueEntry::key with lazy invalidation.
class LazyMaxHeap {
 public:
  void Push(double key, ObjectIndex index, uint64_t epoch);

  /// Discards stale entries, then removes and returns the top valid entry.
  /// Returns false if no valid entry remains.
  bool PopValid(const EpochFn& current_epoch, QueueEntry* out);

  /// Discards stale entries, then peeks the top valid entry without
  /// removing it. Returns false if no valid entry remains.
  bool PeekValid(const EpochFn& current_epoch, QueueEntry* out);

  /// Re-inserts an entry previously obtained from PopValid.
  void Restore(const QueueEntry& entry);

  /// Drops every stale entry and re-heapifies. Since a fresh entry is pushed
  /// on each object update, callers invoke this periodically (e.g. when the
  /// heap exceeds a small multiple of the live object count) to keep memory
  /// proportional to the number of objects rather than the number of
  /// updates.
  void Compact(const EpochFn& current_epoch);

  size_t size() const { return entries_.size(); }
  bool empty() const { return entries_.empty(); }
  void Clear() { entries_.clear(); }

 private:
  void DiscardStaleTop(const EpochFn& current_epoch);

  std::vector<QueueEntry> entries_;
};

/// Min-heap on QueueEntry::key interpreted as a timestamp, with the same
/// lazy invalidation. Used by time-varying (Section 9 bound) policies to
/// wake objects when their priority is expected to cross the threshold.
class TimeMinHeap {
 public:
  void Push(double time, ObjectIndex index, uint64_t epoch);

  /// Pops the earliest valid entry whose time is <= `now`; returns false if
  /// none is due.
  bool PopDue(double now, const EpochFn& current_epoch, QueueEntry* out);

  size_t size() const { return entries_.size(); }
  bool empty() const { return entries_.empty(); }
  void Clear() { entries_.clear(); }

 private:
  std::vector<QueueEntry> entries_;
};

}  // namespace besync

#endif  // BESYNC_PRIORITY_PRIORITY_QUEUE_H_
