#include "priority/naive.h"

namespace besync {

double NaivePriority::Priority(const PriorityContext& context, double /*now*/) const {
  return context.tracker->current_divergence() * context.weight;
}

}  // namespace besync
