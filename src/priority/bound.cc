#include "priority/bound.h"

#include <cmath>
#include <limits>

namespace besync {

double BoundPriority::Priority(const PriorityContext& context, double now) const {
  const double elapsed = now - context.tracker->last_refresh_time();
  const double rate = context.max_divergence_rate;
  if (rate <= 0.0 || elapsed <= 0.0) return 0.0;
  return 0.5 * rate * elapsed * elapsed * context.weight;
}

double BoundPriority::ThresholdCrossTime(const PriorityContext& context,
                                         double threshold, double now) const {
  const double rate = context.max_divergence_rate;
  const double weighted_rate = rate * context.weight;
  if (weighted_rate <= 0.0) return std::numeric_limits<double>::infinity();
  if (threshold <= 0.0) return now;
  // Solve 0.5 * R * W * (t - t_last)^2 = threshold.
  const double t_last = context.tracker->last_refresh_time();
  const double cross = t_last + std::sqrt(2.0 * threshold / weighted_rate);
  return cross > now ? cross : now;
}

}  // namespace besync
