#include "data/read_process.h"

#include <algorithm>
#include <limits>

#include "util/logging.h"

namespace besync {

std::string EvictionPolicyToString(EvictionPolicy policy) {
  switch (policy) {
    case EvictionPolicy::kLru:
      return "lru";
    case EvictionPolicy::kLfu:
      return "lfu";
    case EvictionPolicy::kDivergenceAware:
      return "divergence";
  }
  return "unknown";
}

PoissonZipfReadProcess::PoissonZipfReadProcess(double rate, double zipf_exponent,
                                               int64_t rotation)
    : rate_(rate), zipf_exponent_(zipf_exponent), rotation_(rotation) {
  BESYNC_CHECK_GT(rate, 0.0);
  BESYNC_CHECK_GT(zipf_exponent, 0.0);
  BESYNC_CHECK_GE(rotation, 0);
}

double PoissonZipfReadProcess::NextReadTime(double now, Rng* rng) {
  return now + rng->Exponential(rate_);
}

int64_t PoissonZipfReadProcess::NextObjectSlot(int64_t num_slots, Rng* rng) {
  BESYNC_CHECK_GE(num_slots, 1);
  const int64_t rank = rng->Zipf(num_slots, zipf_exponent_);
  return (rank - 1 + rotation_) % num_slots;
}

TraceReadProcess::TraceReadProcess(std::vector<ReadTracePoint> points)
    : points_(std::move(points)) {
  for (size_t i = 1; i < points_.size(); ++i) {
    BESYNC_CHECK_GE(points_[i].time, points_[i - 1].time)
        << "read trace must be time-ordered";
  }
  if (points_.size() >= 2) {
    const double span = points_.back().time - points_.front().time;
    if (span > 0.0) {
      rate_ = static_cast<double>(points_.size() - 1) / span;
    }
  }
}

double TraceReadProcess::NextReadTime(double now, Rng* /*rng*/) {
  // Skip points strictly before `now`; a point *at* `now` is still
  // returned so several reads sharing one timestamp all replay (the caller
  // consumes one point per NextObjectSlot, so the loop always advances).
  while (cursor_ < points_.size() && points_[cursor_].time < now) ++cursor_;
  if (cursor_ >= points_.size()) return std::numeric_limits<double>::infinity();
  return points_[cursor_].time;
}

int64_t TraceReadProcess::NextObjectSlot(int64_t num_slots, Rng* /*rng*/) {
  BESYNC_CHECK_GE(num_slots, 1);
  BESYNC_CHECK_LT(cursor_, points_.size());
  const int64_t slot = points_[cursor_].slot;
  ++cursor_;
  return std::min(std::max<int64_t>(slot, 0), num_slots - 1);
}

std::unique_ptr<ReadProcess> TraceReadProcess::Clone() const {
  auto clone = std::make_unique<TraceReadProcess>(points_);
  clone->cursor_ = cursor_;
  return clone;
}

}  // namespace besync
