#ifndef BESYNC_DATA_BUOY_TRACE_H_
#define BESYNC_DATA_BUOY_TRACE_H_

#include <cstdint>
#include <vector>

#include "data/update_process.h"
#include "data/workload.h"
#include "util/result.h"

namespace besync {

/// Synthetic stand-in for the TAO-array wind-buoy data of Section 6.2.1.
///
/// The paper monitors wind vectors from m = 40 ocean buoys (Pacific Marine
/// Environmental Laboratory, January 2000), each reporting a 2-component
/// wind vector every 10 minutes for 7 days. That archive is not available
/// offline, so we generate statistically comparable traces with a
/// mean-reverting AR(1) (discretized Ornstein-Uhlenbeck) process per
/// component, calibrated to the paper's description: values "generally in
/// the range of 0-10, with typical values of around 5". Per-buoy means and
/// volatilities are heterogeneous so that refresh prioritization matters.
/// See DESIGN.md, "Substitutions".
struct BuoyTraceConfig {
  int num_buoys = 40;
  int components_per_buoy = 2;
  /// Seconds between measurements (paper: every 10 minutes).
  double measurement_interval = 600.0;
  /// Total trace duration in seconds (paper: 7 days; the first day is used
  /// as warm-up by the experiment harness, not here).
  double duration = 7.0 * 86400.0;
  /// Value range clamp.
  double min_value = 0.0;
  double max_value = 10.0;
  /// Per-buoy long-run mean drawn uniformly from [mean_lo, mean_hi].
  double mean_lo = 3.0;
  double mean_hi = 7.0;
  /// Per-component innovation stddev drawn uniformly from
  /// [volatility_lo, volatility_hi] (units per measurement step).
  double volatility_lo = 0.1;
  double volatility_hi = 0.9;
  /// Mean-reversion fraction per measurement step, in (0, 1].
  double reversion = 0.05;
  uint64_t seed = 2000;
};

/// Generates one trace per object (num_buoys * components_per_buoy objects,
/// grouped by buoy). Deterministic given the config.
Result<std::vector<std::vector<TracePoint>>> GenerateBuoyTraces(
    const BuoyTraceConfig& config);

/// Builds a Workload whose objects replay the generated buoy traces: one
/// source per buoy, `components_per_buoy` objects per source, all weights 1
/// (the paper: "All data values were equally weighted").
Result<Workload> MakeBuoyWorkload(const BuoyTraceConfig& config);

}  // namespace besync

#endif  // BESYNC_DATA_BUOY_TRACE_H_
