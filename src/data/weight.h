#ifndef BESYNC_DATA_WEIGHT_H_
#define BESYNC_DATA_WEIGHT_H_

#include <memory>

#include "util/fluctuation.h"

namespace besync {

/// The paper's overall refresh weight W(O,t) = I(O,t) * P(O,t), the product
/// of an importance signal and a popularity signal (Section 3.2). Each
/// factor is a (possibly constant, possibly sine-fluctuating) nonnegative
/// time function.
class ProductWeight : public Fluctuation {
 public:
  ProductWeight(std::unique_ptr<Fluctuation> importance,
                std::unique_ptr<Fluctuation> popularity);

  double ValueAt(double t) const override;
  /// Approximates the average of the product by the product of averages
  /// (exact when at least one factor is constant, which covers all the
  /// workloads in the evaluation).
  double average() const override;
  /// Deep copy: both factors are cloned recursively.
  std::unique_ptr<Fluctuation> Clone() const override;

 private:
  std::unique_ptr<Fluctuation> importance_;
  std::unique_ptr<Fluctuation> popularity_;
};

/// Convenience: a constant weight of `value` (the I(O,t) = P(O,t) = 1 case).
std::unique_ptr<Fluctuation> MakeConstantWeight(double value);

}  // namespace besync

#endif  // BESYNC_DATA_WEIGHT_H_
