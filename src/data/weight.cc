#include "data/weight.h"

#include "util/logging.h"

namespace besync {

ProductWeight::ProductWeight(std::unique_ptr<Fluctuation> importance,
                             std::unique_ptr<Fluctuation> popularity)
    : importance_(std::move(importance)), popularity_(std::move(popularity)) {
  BESYNC_CHECK(importance_ != nullptr);
  BESYNC_CHECK(popularity_ != nullptr);
}

double ProductWeight::ValueAt(double t) const {
  return importance_->ValueAt(t) * popularity_->ValueAt(t);
}

double ProductWeight::average() const {
  return importance_->average() * popularity_->average();
}

std::unique_ptr<Fluctuation> ProductWeight::Clone() const {
  return std::make_unique<ProductWeight>(importance_->Clone(), popularity_->Clone());
}

std::unique_ptr<Fluctuation> MakeConstantWeight(double value) {
  return std::make_unique<ConstantFluctuation>(value);
}

}  // namespace besync
