#include "data/topology.h"

#include <algorithm>

#include "util/logging.h"

namespace besync {

int TopologySpec::TierOf(int node) const {
  BESYNC_CHECK_GE(node, 0);
  BESYNC_CHECK_LT(node, num_nodes());
  if (flat()) return 1;
  int tier = 1;
  int32_t up = parent[node];
  while (up != -1) {
    ++tier;
    BESYNC_CHECK_LE(tier, num_nodes()) << "topology parent map has a cycle";
    up = parent[up];
  }
  return tier;
}

int TopologySpec::depth() const {
  int max_tier = num_leaves > 0 ? 1 : 0;
  for (int leaf = 0; leaf < num_leaves; ++leaf) {
    max_tier = std::max(max_tier, TierOf(leaf));
  }
  return max_tier;
}

std::vector<int64_t> TopologySpec::SubtreeLeafCounts() const {
  std::vector<int64_t> counts(static_cast<size_t>(num_nodes()), 0);
  for (int leaf = 0; leaf < num_leaves; ++leaf) {
    int32_t node = static_cast<int32_t>(leaf);
    while (node != -1) {
      ++counts[node];
      node = flat() ? -1 : parent[node];
    }
  }
  return counts;
}

namespace {

/// Height above the leaves: 0 for leaves, parent strictly higher than any
/// child. Computed by walking up from every leaf with increasing distance.
std::vector<int> NodeHeights(const TopologySpec& spec) {
  std::vector<int> height(static_cast<size_t>(spec.num_nodes()), 0);
  for (int leaf = 0; leaf < spec.num_leaves && !spec.flat(); ++leaf) {
    int distance = 0;
    int32_t node = spec.parent[leaf];
    while (node != -1) {
      ++distance;
      height[node] = std::max(height[node], distance);
      node = spec.parent[node];
    }
  }
  return height;
}

/// Relay ids sorted by height (stable, so ascending node ids break ties).
std::vector<int32_t> RelaysByHeight(const TopologySpec& spec, bool ascending) {
  const std::vector<int> height = NodeHeights(spec);
  std::vector<int32_t> relays;
  relays.reserve(static_cast<size_t>(spec.num_relays()));
  for (int node = spec.num_leaves; node < spec.num_nodes(); ++node) {
    relays.push_back(static_cast<int32_t>(node));
  }
  std::stable_sort(relays.begin(), relays.end(),
                   [&height, ascending](int32_t a, int32_t b) {
                     return ascending ? height[a] < height[b] : height[a] > height[b];
                   });
  return relays;
}

}  // namespace

std::vector<int32_t> TopologySpec::RelaysBottomUp() const {
  return RelaysByHeight(*this, /*ascending=*/true);
}

std::vector<int32_t> TopologySpec::RelaysTopDown() const {
  return RelaysByHeight(*this, /*ascending=*/false);
}

Status TopologySpec::Validate(int num_caches) const {
  if (flat()) return Status::OK();
  if (num_leaves != num_caches) {
    return Status::InvalidArgument("topology has ", num_leaves,
                                   " leaves but the workload has ", num_caches,
                                   " caches");
  }
  const int nodes = num_nodes();
  if (nodes < num_leaves) {
    return Status::InvalidArgument("topology parent map smaller than leaf count");
  }
  std::vector<bool> has_child(static_cast<size_t>(nodes), false);
  for (int n = 0; n < nodes; ++n) {
    const int32_t p = parent[n];
    if (p == -1) continue;
    if (p < num_leaves || p >= nodes) {
      return Status::InvalidArgument("node ", n, " has invalid parent ", p,
                                     " (parents must be relay nodes)");
    }
    if (p == n) return Status::InvalidArgument("node ", n, " is its own parent");
    has_child[p] = true;
  }
  for (int n = num_leaves; n < nodes; ++n) {
    if (!has_child[n]) {
      return Status::InvalidArgument("relay node ", n, " has no children");
    }
  }
  // Acyclicity: every node must reach a tier-1 (-1 parent) ancestor within
  // num_nodes steps.
  for (int n = 0; n < nodes; ++n) {
    int steps = 0;
    int32_t up = parent[n];
    while (up != -1) {
      if (++steps > nodes) {
        return Status::InvalidArgument("topology parent map has a cycle through node ",
                                       n);
      }
      up = parent[up];
    }
  }
  const auto check_edge_vector = [nodes](const std::vector<double>& values,
                                         const char* name) {
    if (static_cast<int>(values.size()) > nodes) {
      return Status::InvalidArgument(name, " has more entries than topology nodes");
    }
    return Status::OK();
  };
  BESYNC_RETURN_IF_ERROR(check_edge_vector(edge_bandwidth, "edge_bandwidth"));
  BESYNC_RETURN_IF_ERROR(check_edge_vector(edge_loss, "edge_loss"));
  BESYNC_RETURN_IF_ERROR(check_edge_vector(edge_latency, "edge_latency"));
  BESYNC_RETURN_IF_ERROR(
      check_edge_vector(relay_egress_bandwidth, "relay_egress_bandwidth"));
  for (double loss : edge_loss) {
    if (loss >= 1.0) return Status::InvalidArgument("edge_loss must be < 1");
  }
  for (double latency : edge_latency) {
    if (latency < 0.0) return Status::InvalidArgument("edge_latency must be >= 0");
  }
  if (relay_bandwidth_factor < 0.0) {
    return Status::InvalidArgument("relay_bandwidth_factor must be >= 0");
  }
  if (static_cast<int>(backup_parent.size()) > nodes) {
    return Status::InvalidArgument("backup_parent has more entries than topology nodes");
  }
  for (int n = 0; n < static_cast<int>(backup_parent.size()); ++n) {
    const int32_t b = backup_parent[n];
    if (b == -1) continue;
    if (n < num_leaves) {
      return Status::InvalidArgument("leaf ", n,
                                     " declares a backup parent (leaves crash, "
                                     "they do not fail over)");
    }
    if (b < num_leaves || b >= nodes) {
      return Status::InvalidArgument("relay ", n, " has invalid backup parent ", b,
                                     " (backups must be relay nodes)");
    }
    if (b == n) {
      return Status::InvalidArgument("relay ", n, " is its own backup parent");
    }
    // The backup must sit outside the failing relay's subtree: re-attaching
    // n's children to a descendant of n would route traffic in a loop once
    // n is gone.
    int32_t up = b;
    int steps = 0;
    while (up != -1) {
      if (up == n) {
        return Status::InvalidArgument("relay ", n, " has backup parent ", b,
                                       " inside its own subtree");
      }
      if (++steps > nodes) break;  // cycles are reported by the walk above
      up = parent[up];
    }
  }
  return Status::OK();
}

TopologySpec MakeRelayTree(int num_leaves, int fanout, int relay_tiers) {
  BESYNC_CHECK_GE(num_leaves, 1);
  BESYNC_CHECK_GE(relay_tiers, 0);
  TopologySpec spec;
  spec.num_leaves = num_leaves;
  if (relay_tiers == 0) return spec;  // flat: empty parent map
  BESYNC_CHECK_GE(fanout, 1);
  spec.parent.assign(static_cast<size_t>(num_leaves), -1);
  std::vector<int32_t> tier(static_cast<size_t>(num_leaves));
  for (int i = 0; i < num_leaves; ++i) tier[i] = static_cast<int32_t>(i);
  for (int t = 0; t < relay_tiers; ++t) {
    const int groups =
        (static_cast<int>(tier.size()) + fanout - 1) / fanout;
    const int32_t first = static_cast<int32_t>(spec.parent.size());
    for (size_t i = 0; i < tier.size(); ++i) {
      spec.parent[tier[i]] = first + static_cast<int32_t>(i) / fanout;
    }
    std::vector<int32_t> next(static_cast<size_t>(groups));
    for (int g = 0; g < groups; ++g) {
      next[g] = first + static_cast<int32_t>(g);
      spec.parent.push_back(-1);
    }
    tier = std::move(next);
  }
  return spec;
}

void AssignBackupParents(TopologySpec* spec) {
  if (spec->flat()) return;
  const std::vector<int> height = NodeHeights(*spec);
  spec->backup_parent.assign(static_cast<size_t>(spec->num_nodes()), -1);
  for (int r = spec->num_leaves; r < spec->num_nodes(); ++r) {
    // Next relay of the same height, scanning ascending node ids with
    // wrap-around — deterministic and sibling-preferring for the uniform
    // trees MakeRelayTree builds.
    const int relays = spec->num_relays();
    for (int step = 1; step < relays; ++step) {
      const int candidate =
          spec->num_leaves + (r - spec->num_leaves + step) % relays;
      if (height[candidate] == height[r]) {
        spec->backup_parent[r] = static_cast<int32_t>(candidate);
        break;
      }
    }
  }
}

std::string TopologyLabel(const TopologySpec& spec) {
  if (spec.flat()) return "flat";
  return "tree(relays=" + std::to_string(spec.num_relays()) +
         ",depth=" + std::to_string(spec.depth()) + ")";
}

}  // namespace besync
