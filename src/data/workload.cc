#include "data/workload.h"

#include <utility>

#include "util/logging.h"

namespace besync {

Result<Workload> MakeWorkload(const WorkloadConfig& config) {
  if (config.num_sources < 1) {
    return Status::InvalidArgument("num_sources must be >= 1, got ",
                                   config.num_sources);
  }
  if (config.objects_per_source < 1) {
    return Status::InvalidArgument("objects_per_source must be >= 1, got ",
                                   config.objects_per_source);
  }
  if (config.rate_lo < 0.0 || config.rate_hi < config.rate_lo) {
    return Status::InvalidArgument("invalid rate range");
  }
  if (config.update_model == WorkloadConfig::UpdateModel::kBernoulli &&
      (config.rate_hi > 1.0 || config.fast_rate > 1.0)) {
    return Status::InvalidArgument(
        "Bernoulli update probabilities must be <= 1");
  }

  Rng rng(config.seed);
  const int64_t total =
      static_cast<int64_t>(config.num_sources) * config.objects_per_source;

  if (config.large_cost < 1) {
    return Status::InvalidArgument("large_cost must be >= 1");
  }

  // Random half-splits for rate, weight and cost skew, drawn independently
  // ("an independently- and randomly-selected half", Section 4.3).
  std::vector<bool> fast_half(total, false);
  std::vector<bool> heavy_half(total, false);
  std::vector<bool> large_half(total, false);
  {
    std::vector<int64_t> ids(total);
    for (int64_t i = 0; i < total; ++i) ids[i] = i;
    rng.Shuffle(&ids);
    for (int64_t i = 0; i < total / 2; ++i) fast_half[ids[i]] = true;
    rng.Shuffle(&ids);
    for (int64_t i = 0; i < total / 2; ++i) heavy_half[ids[i]] = true;
    rng.Shuffle(&ids);
    for (int64_t i = 0; i < total / 2; ++i) large_half[ids[i]] = true;
  }

  Workload workload;
  workload.num_sources = config.num_sources;
  workload.objects_per_source = config.objects_per_source;
  workload.has_fluctuating_weights = config.weight_fluctuation_amplitude > 0.0;
  workload.objects.reserve(total);

  for (int64_t i = 0; i < total; ++i) {
    ObjectSpec spec;
    spec.index = i;
    spec.source_index = static_cast<int32_t>(i / config.objects_per_source);

    switch (config.rate_distribution) {
      case RateDistribution::kUniform:
        spec.lambda = rng.Uniform(config.rate_lo, config.rate_hi);
        break;
      case RateDistribution::kHalfSlowHalfFast:
        spec.lambda = fast_half[i] ? config.fast_rate : config.slow_rate;
        break;
    }

    switch (config.update_model) {
      case WorkloadConfig::UpdateModel::kPoisson:
        spec.process =
            std::make_unique<PoissonRandomWalkProcess>(spec.lambda, config.value_step);
        break;
      case WorkloadConfig::UpdateModel::kBernoulli:
        spec.process =
            std::make_unique<BernoulliRandomWalkProcess>(spec.lambda, config.value_step);
        break;
    }

    double base_weight = 1.0;
    if (config.weight_scheme == WeightScheme::kHalfHeavy && heavy_half[i]) {
      base_weight = config.heavy_weight;
    }
    spec.weight = MakeWeightFluctuation(
        base_weight, config.weight_fluctuation_amplitude, config.weight_period_min,
        config.weight_period_max, &rng);

    if (config.cost_scheme == CostScheme::kHalfLarge && large_half[i]) {
      spec.refresh_cost = config.large_cost;
    }

    // Random-walk values diverge at most `step` per update, so the maximum
    // divergence rate under the value-deviation metric is lambda * step
    // (used only by the Section 9 bounding policy).
    spec.max_divergence_rate = spec.lambda * config.value_step;

    spec.initial_value = 0.0;
    spec.rng_seed = rng.NextUint64();
    workload.objects.push_back(std::move(spec));
  }

  return workload;
}

}  // namespace besync
