#include "data/workload.h"

#include <algorithm>
#include <utility>

#include "util/logging.h"

namespace besync {

std::string InterestPatternToString(InterestPattern pattern) {
  switch (pattern) {
    case InterestPattern::kSingleCache:
      return "single-cache";
    case InterestPattern::kPartitionedBySource:
      return "partitioned";
    case InterestPattern::kFullReplication:
      return "full-replication";
    case InterestPattern::kZipfOverlap:
      return "zipf-overlap";
  }
  return "unknown";
}

std::vector<std::vector<int32_t>> SourcesByCache(const Workload& workload) {
  std::vector<std::vector<int32_t>> sources(
      static_cast<size_t>(workload.num_caches));
  // Objects are grouped by source and each spec's cache list is ascending,
  // so appending while deduplicating against the back keeps lists sorted.
  for (const ObjectSpec& spec : workload.objects) {
    for (int32_t cache : spec.caches) {
      auto& list = sources[cache];
      if (list.empty() || list.back() != spec.source_index) {
        list.push_back(spec.source_index);
      }
    }
  }
  return sources;
}

ObjectSpec CloneObjectSpec(const ObjectSpec& spec) {
  ObjectSpec clone;
  clone.index = spec.index;
  clone.source_index = spec.source_index;
  clone.caches = spec.caches;
  clone.lambda = spec.lambda;
  clone.initial_value = spec.initial_value;
  if (spec.process != nullptr) clone.process = spec.process->Clone();
  if (spec.weight != nullptr) clone.weight = spec.weight->Clone();
  if (spec.source_weight != nullptr) clone.source_weight = spec.source_weight->Clone();
  clone.max_divergence_rate = spec.max_divergence_rate;
  clone.refresh_cost = spec.refresh_cost;
  clone.rng_seed = spec.rng_seed;
  return clone;
}

Workload CloneWorkload(const Workload& workload) {
  Workload clone;
  clone.num_sources = workload.num_sources;
  clone.objects_per_source = workload.objects_per_source;
  clone.num_caches = workload.num_caches;
  clone.topology = workload.topology;  // plain data, copyable
  clone.has_fluctuating_weights = workload.has_fluctuating_weights;
  clone.read = workload.read;  // plain data, copyable
  clone.read_streams.reserve(workload.read_streams.size());
  for (const std::unique_ptr<ReadProcess>& stream : workload.read_streams) {
    clone.read_streams.push_back(stream != nullptr ? stream->Clone() : nullptr);
  }
  clone.faults = workload.faults;  // plain data, copyable
  clone.objects.reserve(workload.objects.size());
  for (const ObjectSpec& spec : workload.objects) {
    clone.objects.push_back(CloneObjectSpec(spec));
  }
  return clone;
}

namespace {

/// Assigns `spec->caches` for one object under the configured interest
/// pattern. `interest_rng` is drawn from only in kZipfOverlap mode, so the
/// default patterns leave the generator stream untouched.
void AssignInterest(const WorkloadConfig& config, Rng* interest_rng,
                    ObjectSpec* spec) {
  const int32_t primary =
      spec->source_index % static_cast<int32_t>(config.num_caches);
  switch (config.interest_pattern) {
    case InterestPattern::kSingleCache:
      spec->caches = {0};
      break;
    case InterestPattern::kPartitionedBySource:
      spec->caches = {primary};
      break;
    case InterestPattern::kFullReplication:
      spec->caches.resize(config.num_caches);
      for (int c = 0; c < config.num_caches; ++c) spec->caches[c] = c;
      break;
    case InterestPattern::kZipfOverlap: {
      const int degree = static_cast<int>(
          interest_rng->Zipf(config.num_caches, config.zipf_overlap_exponent));
      spec->caches.clear();
      for (int k = 0; k < degree; ++k) {
        spec->caches.push_back((primary + k) %
                               static_cast<int32_t>(config.num_caches));
      }
      std::sort(spec->caches.begin(), spec->caches.end());
      break;
    }
  }
}

}  // namespace

Result<Workload> MakeWorkload(const WorkloadConfig& config) {
  if (config.num_sources < 1) {
    return Status::InvalidArgument("num_sources must be >= 1, got ",
                                   config.num_sources);
  }
  if (config.objects_per_source < 1) {
    return Status::InvalidArgument("objects_per_source must be >= 1, got ",
                                   config.objects_per_source);
  }
  if (config.num_caches < 1) {
    return Status::InvalidArgument("num_caches must be >= 1, got ",
                                   config.num_caches);
  }
  if (config.interest_pattern == InterestPattern::kSingleCache &&
      config.num_caches != 1) {
    return Status::InvalidArgument(
        "interest_pattern kSingleCache requires num_caches == 1");
  }
  if (config.rate_lo < 0.0 || config.rate_hi < config.rate_lo) {
    return Status::InvalidArgument("invalid rate range");
  }
  if (config.update_model == WorkloadConfig::UpdateModel::kBernoulli &&
      (config.rate_hi > 1.0 || config.fast_rate > 1.0)) {
    return Status::InvalidArgument(
        "Bernoulli update probabilities must be <= 1");
  }

  Rng rng(config.seed);
  const int64_t total =
      static_cast<int64_t>(config.num_sources) * config.objects_per_source;

  if (config.large_cost < 1) {
    return Status::InvalidArgument("large_cost must be >= 1");
  }
  if (config.relay_tiers < 0) {
    return Status::InvalidArgument("relay_tiers must be >= 0, got ",
                                   config.relay_tiers);
  }
  if (config.relay_tiers > 0 && config.relay_fanout < 1) {
    return Status::InvalidArgument("relay_fanout must be >= 1, got ",
                                   config.relay_fanout);
  }
  if (config.relay_bandwidth_factor < 0.0) {
    return Status::InvalidArgument("relay_bandwidth_factor must be >= 0");
  }
  if (config.read.read_rate < 0.0) {
    return Status::InvalidArgument("read_rate must be >= 0");
  }
  if (config.read.read_rate > 0.0 && config.read.zipf_exponent <= 0.0) {
    return Status::InvalidArgument("zipf_exponent must be > 0");
  }
  if (config.read.pull_retry_interval <= 0.0) {
    return Status::InvalidArgument("pull_retry_interval must be > 0");
  }
  if (config.fault.cache_crashes < 0 || config.fault.relay_failures < 0 ||
      config.fault.link_flaps < 0 || config.fault.slowdowns < 0) {
    return Status::InvalidArgument("fault event counts must be >= 0");
  }
  if (config.fault.enabled()) {
    if (config.fault.crash_duration <= 0.0 ||
        config.fault.relay_fail_duration <= 0.0 ||
        config.fault.flap_duration <= 0.0 || config.fault.slow_duration <= 0.0) {
      return Status::InvalidArgument("fault durations must be > 0");
    }
    if (config.fault.slowdowns > 0 &&
        (config.fault.slow_factor <= 0.0 || config.fault.slow_factor > 1.0)) {
      return Status::InvalidArgument("fault slow_factor must be in (0, 1]");
    }
    if (config.fault.crash_cache >= config.num_caches) {
      return Status::InvalidArgument("fault crash_cache ", config.fault.crash_cache,
                                     " outside the ", config.num_caches, " caches");
    }
    if (config.fault.relay_failures > 0 && config.relay_tiers <= 0) {
      return Status::InvalidArgument(
          "fault relay_failures require a relay topology (relay_tiers > 0)");
    }
  }

  // Random half-splits for rate, weight and cost skew, drawn independently
  // ("an independently- and randomly-selected half", Section 4.3).
  std::vector<bool> fast_half(total, false);
  std::vector<bool> heavy_half(total, false);
  std::vector<bool> large_half(total, false);
  {
    std::vector<int64_t> ids(total);
    for (int64_t i = 0; i < total; ++i) ids[i] = i;
    rng.Shuffle(&ids);
    for (int64_t i = 0; i < total / 2; ++i) fast_half[ids[i]] = true;
    rng.Shuffle(&ids);
    for (int64_t i = 0; i < total / 2; ++i) heavy_half[ids[i]] = true;
    rng.Shuffle(&ids);
    for (int64_t i = 0; i < total / 2; ++i) large_half[ids[i]] = true;
  }

  Workload workload;
  workload.num_sources = config.num_sources;
  workload.objects_per_source = config.objects_per_source;
  workload.num_caches = config.num_caches;
  if (config.relay_tiers > 0) {
    workload.topology =
        MakeRelayTree(config.num_caches, config.relay_fanout, config.relay_tiers);
    workload.topology.relay_bandwidth_factor = config.relay_bandwidth_factor;
    if (config.fault.relay_failures > 0) {
      // Failing relays re-home their children to a same-tier backup (falling
      // back to tier-1 promotion where a tier has a single relay). Draws no
      // randomness; declared only when the schedule can actually fail one.
      AssignBackupParents(&workload.topology);
    }
  }
  workload.has_fluctuating_weights = config.weight_fluctuation_amplitude > 0.0;
  // Read-path knobs travel on the workload; the streams themselves are
  // built at run time from read.seed, so this consumes no generator
  // randomness (read-enabled workloads carry identical update streams).
  workload.read = config.read;
  // Fault events draw from their own fault.seed stream (none at all when
  // disabled), so enabling faults leaves the object specs and update
  // streams below bit-identical.
  workload.faults =
      MakeFaultSchedule(config.fault, config.num_caches, workload.topology);
  BESYNC_RETURN_IF_ERROR(
      workload.faults.Validate(workload.topology, config.num_caches));
  workload.objects.reserve(total);

  // Interest assignment uses a dedicated stream so the default single-cache
  // path consumes no randomness and stays bit-identical to the historical
  // generator output.
  Rng interest_rng(config.seed ^ 0x9e3779b97f4a7c15ULL);

  for (int64_t i = 0; i < total; ++i) {
    ObjectSpec spec;
    spec.index = i;
    spec.source_index = static_cast<int32_t>(i / config.objects_per_source);
    AssignInterest(config, &interest_rng, &spec);

    switch (config.rate_distribution) {
      case RateDistribution::kUniform:
        spec.lambda = rng.Uniform(config.rate_lo, config.rate_hi);
        break;
      case RateDistribution::kHalfSlowHalfFast:
        spec.lambda = fast_half[i] ? config.fast_rate : config.slow_rate;
        break;
    }

    switch (config.update_model) {
      case WorkloadConfig::UpdateModel::kPoisson:
        spec.process =
            std::make_unique<PoissonRandomWalkProcess>(spec.lambda, config.value_step);
        break;
      case WorkloadConfig::UpdateModel::kBernoulli:
        spec.process =
            std::make_unique<BernoulliRandomWalkProcess>(spec.lambda, config.value_step);
        break;
    }

    double base_weight = 1.0;
    if (config.weight_scheme == WeightScheme::kHalfHeavy && heavy_half[i]) {
      base_weight = config.heavy_weight;
    }
    spec.weight = MakeWeightFluctuation(
        base_weight, config.weight_fluctuation_amplitude, config.weight_period_min,
        config.weight_period_max, &rng);

    if (config.cost_scheme == CostScheme::kHalfLarge && large_half[i]) {
      spec.refresh_cost = config.large_cost;
    }

    // Random-walk values diverge at most `step` per update, so the maximum
    // divergence rate under the value-deviation metric is lambda * step
    // (used only by the Section 9 bounding policy).
    spec.max_divergence_rate = spec.lambda * config.value_step;

    spec.initial_value = 0.0;
    spec.rng_seed = rng.NextUint64();
    workload.objects.push_back(std::move(spec));
  }

  return workload;
}

}  // namespace besync
