#include "data/buoy_trace.h"

#include <algorithm>
#include <utility>

#include "data/weight.h"
#include "util/logging.h"

namespace besync {

Result<std::vector<std::vector<TracePoint>>> GenerateBuoyTraces(
    const BuoyTraceConfig& config) {
  if (config.num_buoys < 1 || config.components_per_buoy < 1) {
    return Status::InvalidArgument("buoy trace needs >= 1 buoy and component");
  }
  if (config.measurement_interval <= 0.0 || config.duration <= 0.0) {
    return Status::InvalidArgument("invalid buoy trace timing");
  }
  if (config.reversion <= 0.0 || config.reversion > 1.0) {
    return Status::InvalidArgument("reversion must be in (0, 1]");
  }
  if (config.max_value <= config.min_value) {
    return Status::InvalidArgument("invalid value range");
  }

  Rng rng(config.seed);
  const int64_t steps =
      static_cast<int64_t>(config.duration / config.measurement_interval);
  std::vector<std::vector<TracePoint>> traces;
  traces.reserve(static_cast<size_t>(config.num_buoys) * config.components_per_buoy);

  for (int b = 0; b < config.num_buoys; ++b) {
    // Per-buoy regime: the two wind components of one buoy share a mean
    // level but have independent volatilities.
    const double mean = rng.Uniform(config.mean_lo, config.mean_hi);
    for (int c = 0; c < config.components_per_buoy; ++c) {
      const double sigma = rng.Uniform(config.volatility_lo, config.volatility_hi);
      std::vector<TracePoint> trace;
      trace.reserve(steps);
      double value = std::clamp(rng.Normal(mean, sigma * 2.0), config.min_value,
                                config.max_value);
      for (int64_t k = 1; k <= steps; ++k) {
        // Discretized Ornstein-Uhlenbeck step, clamped to the physical range.
        value += config.reversion * (mean - value) + rng.Normal(0.0, sigma);
        value = std::clamp(value, config.min_value, config.max_value);
        trace.push_back(
            TracePoint{static_cast<double>(k) * config.measurement_interval, value});
      }
      traces.push_back(std::move(trace));
    }
  }
  return traces;
}

Result<Workload> MakeBuoyWorkload(const BuoyTraceConfig& config) {
  std::vector<std::vector<TracePoint>> traces;
  BESYNC_ASSIGN_OR_RETURN(traces, GenerateBuoyTraces(config));

  Rng rng(config.seed ^ 0x5eedb0a7ULL);
  Workload workload;
  workload.num_sources = config.num_buoys;
  workload.objects_per_source = config.components_per_buoy;
  workload.has_fluctuating_weights = false;
  workload.objects.reserve(traces.size());

  for (size_t i = 0; i < traces.size(); ++i) {
    ObjectSpec spec;
    spec.index = static_cast<ObjectIndex>(i);
    spec.source_index = static_cast<int32_t>(i / config.components_per_buoy);
    // The first trace value doubles as the initial (synchronized) value.
    spec.initial_value = traces[i].empty() ? 0.0 : traces[i].front().value;
    auto process = std::make_unique<TraceProcess>(std::move(traces[i]));
    spec.lambda = process->rate();
    spec.process = std::move(process);
    spec.weight = MakeConstantWeight(1.0);
    // Wind values move at most (max - min) per measurement; a practical
    // bound rate for Section 9 style policies.
    spec.max_divergence_rate =
        (config.max_value - config.min_value) / config.measurement_interval;
    spec.rng_seed = rng.NextUint64();
    workload.objects.push_back(std::move(spec));
  }
  return workload;
}

}  // namespace besync
