#ifndef BESYNC_DATA_OBJECT_H_
#define BESYNC_DATA_OBJECT_H_

#include <cstdint>

namespace besync {

/// Global object index within a workload (0 .. m*n-1).
using ObjectIndex = int64_t;

/// The mutable state of one source data object O (paper Section 3.1):
/// its current value V(O, t) and the count of updates applied so far. The
/// value remains constant between updates.
struct ObjectState {
  double value = 0.0;
  /// Number of updates ever applied to this object (drives the lag metric).
  int64_t version = 0;
  /// Time of the most recent update; negative if never updated.
  double last_update_time = -1.0;
};

}  // namespace besync

#endif  // BESYNC_DATA_OBJECT_H_
