#ifndef BESYNC_DATA_WORKLOAD_H_
#define BESYNC_DATA_WORKLOAD_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "data/object.h"
#include "data/read_process.h"
#include "data/topology.h"
#include "data/update_process.h"
#include "fault/fault_schedule.h"
#include "util/fluctuation.h"
#include "util/result.h"

namespace besync {

/// Static description of one object in a workload. The update process and
/// weight function are owned here; the per-run mutable state (value,
/// version, trackers) lives in the scheduler harness.
struct ObjectSpec {
  ObjectIndex index = 0;
  /// Which source hosts this object (0 .. m-1).
  int32_t source_index = 0;
  /// Which caches replicate this object (the interest map), ascending and
  /// duplicate-free. The default reproduces the paper's Figure-1 topology —
  /// a single cache, so every object lives at cache 0 — but since the
  /// multi-cache generalization any subset of 0 .. num_caches-1 is valid
  /// (see InterestPattern for the generated shapes).
  std::vector<int32_t> caches = {0};

  /// Position of `cache_id` in `caches` (the object's replica slot at that
  /// cache), or -1 if the cache does not replicate this object.
  int replica_slot(int32_t cache_id) const {
    for (size_t r = 0; r < caches.size(); ++r) {
      if (caches[r] == cache_id) return static_cast<int>(r);
    }
    return -1;
  }
  int num_replicas() const { return static_cast<int>(caches.size()); }
  /// Long-run average update rate (the lambda parameter); mirror of
  /// process->rate() kept here for oracle access.
  double lambda = 0.0;
  double initial_value = 0.0;
  std::unique_ptr<UpdateProcess> process;
  /// Refresh weight W(O,t) (never null).
  std::unique_ptr<Fluctuation> weight;
  /// Optional conflicting per-source weight for the competitive experiments
  /// of Section 7 (null when sources and cache share one weighting scheme).
  std::unique_ptr<Fluctuation> source_weight;
  /// Maximum divergence rate R_i for the divergence-bounding policy of
  /// Section 9 (<= 0 when unknown/unused).
  double max_divergence_rate = 0.0;
  /// Transmission cost of one refresh in bandwidth units (Section 10.1
  /// non-uniform-cost extension); 1 = the paper's unit-size model.
  int64_t refresh_cost = 1;
  /// Seed for this object's private RNG stream; derived deterministically
  /// from the workload seed so update streams are identical across
  /// schedulers run on the same workload configuration.
  uint64_t rng_seed = 0;
};

/// A complete multi-source workload: m sources with n objects each,
/// replicated over `num_caches` caches according to the per-object interest
/// map (`ObjectSpec::caches`).
struct Workload {
  int num_sources = 0;
  int objects_per_source = 0;
  /// Number of caches in the topology. 1 reproduces the paper's single-cache
  /// star of Figure 1.
  int num_caches = 1;
  /// Relay topology between the sources and the caches. Flat (the default)
  /// is the one-hop star the paper models; a tree routes refreshes through
  /// store-and-forward relays (data/topology.h). Leaf count must equal
  /// num_caches when non-flat.
  TopologySpec topology;
  std::vector<ObjectSpec> objects;  // size m*n, grouped by source
  /// True if any weight fluctuates over time (enables periodic weight
  /// refresh in the divergence accounting).
  bool has_fluctuating_weights = false;
  /// Client read-side knobs (data/read_process.h). The defaults — no reads,
  /// unbounded capacity — keep the read path entirely inert, so write-only
  /// runs are bitwise identical to the pre-read-path engine.
  ReadWorkloadConfig read;
  /// Optional per-cache client read streams (size num_caches when set;
  /// empty = generate Poisson/Zipf streams from `read` when read_rate > 0).
  /// Owned here like ObjectSpec::process, and mutated during a run (trace
  /// cursors) — the same sharing hazard applies (exp/runner.h), and
  /// CloneWorkload deep-copies them for the clone-per-job path.
  std::vector<std::unique_ptr<ReadProcess>> read_streams;
  /// Scripted fault events applied during the run (fault/fault_schedule.h).
  /// Empty (the default) keeps the fault layer entirely inert: fault-free
  /// runs are bitwise identical to the pre-fault engine.
  FaultSchedule faults;

  /// True when any client reads will be generated (rate-driven or
  /// trace-driven). Capacity limits apply independently of this.
  bool reads_enabled() const { return read.read_rate > 0.0 || !read_streams.empty(); }

  int64_t total_objects() const { return static_cast<int64_t>(objects.size()); }

  /// Total number of (object, cache) replicas — the unit the multi-cache
  /// objective sums over.
  int64_t total_replicas() const {
    int64_t total = 0;
    for (const ObjectSpec& spec : objects) total += spec.num_replicas();
    return total;
  }
};

/// For each cache id 0..num_caches-1, the ascending duplicate-free list of
/// sources hosting at least one object replicated at that cache (the sources
/// the cache exchanges protocol messages with).
std::vector<std::vector<int32_t>> SourcesByCache(const Workload& workload);

/// How per-object update rates are assigned (paper Sections 4.3, 6).
enum class RateDistribution {
  /// lambda_i ~ Uniform(rate_lo, rate_hi) — "randomly assigned lambda values
  /// ... following a uniform distribution".
  kUniform,
  /// A randomly-selected half updates at `slow_rate`, the other half at
  /// `fast_rate` — the skewed configuration of Section 4.3 (0.01 vs 1).
  kHalfSlowHalfFast,
};

/// How refresh transmission costs (object sizes) are assigned
/// (Section 10.1 non-uniform-cost extension).
enum class CostScheme {
  /// All refreshes cost 1 unit (the paper's model).
  kUniform,
  /// A randomly-selected half of the objects cost `large_cost` units.
  kHalfLarge,
};

/// How weights are assigned.
enum class WeightScheme {
  /// All weights 1.
  kUniform,
  /// A randomly-selected half gets weight `heavy_weight`, the rest weight 1
  /// (Section 4.3's skew: 10 vs 1).
  kHalfHeavy,
};

/// How objects are assigned to caches in a multi-cache topology.
enum class InterestPattern {
  /// Every object is replicated at cache 0 only (the paper's topology).
  /// Requires num_caches == 1.
  kSingleCache,
  /// Each source's objects live at exactly one cache:
  /// cache = source_index mod num_caches. Disjoint partitions — caches
  /// behave like independent single-cache systems over sub-workloads.
  kPartitionedBySource,
  /// Every object is replicated at every cache.
  kFullReplication,
  /// Each object has a primary cache (source_index mod num_caches) plus a
  /// Zipf-distributed replication degree: most objects live at one cache, a
  /// popular few are replicated widely (overlapping interest).
  kZipfOverlap,
};

std::string InterestPatternToString(InterestPattern pattern);

/// Generator parameters for the synthetic random-walk workloads used
/// throughout the paper's evaluation.
struct WorkloadConfig {
  int num_sources = 1;
  int objects_per_source = 100;

  /// Multi-cache topology knobs. The defaults reproduce the paper's
  /// single-cache system exactly (and consume no generator randomness, so
  /// single-cache workloads are bit-identical to the pre-topology ones).
  int num_caches = 1;
  InterestPattern interest_pattern = InterestPattern::kSingleCache;
  /// Zipf exponent of the replication-degree distribution (kZipfOverlap);
  /// larger = fewer widely-replicated objects.
  double zipf_overlap_exponent = 1.0;

  /// Relay-tree knobs (0 tiers = the flat one-hop topology). When
  /// relay_tiers > 0 the generated workload carries a
  /// MakeRelayTree(num_caches, relay_fanout, relay_tiers) topology whose
  /// relay edges default to relay_bandwidth_factor (data/topology.h) —
  /// factor 0 keeps them pass-through. Consumes no generator randomness, so
  /// the object specs and RNG seeds are identical to the flat workload's.
  int relay_tiers = 0;
  int relay_fanout = 2;
  double relay_bandwidth_factor = 0.0;

  /// kPoisson: continuous-time Poisson updates (Section 6.2);
  /// kBernoulli: per-second update probability (Section 4.3).
  enum class UpdateModel { kPoisson, kBernoulli } update_model = UpdateModel::kPoisson;

  RateDistribution rate_distribution = RateDistribution::kUniform;
  double rate_lo = 0.0;  ///< uniform rate range lower bound (exclusive if 0)
  double rate_hi = 1.0;  ///< uniform rate range upper bound
  double slow_rate = 0.01;
  double fast_rate = 1.0;

  WeightScheme weight_scheme = WeightScheme::kUniform;
  double heavy_weight = 10.0;

  CostScheme cost_scheme = CostScheme::kUniform;
  int64_t large_cost = 4;

  /// Maximum relative amplitude of sine weight fluctuation; 0 = constant
  /// weights. Periods are drawn uniformly from [weight_period_min,
  /// weight_period_max] (Section 6: "randomly-assigned amplitudes and
  /// periods").
  double weight_fluctuation_amplitude = 0.0;
  double weight_period_min = 200.0;
  double weight_period_max = 2000.0;

  /// Random-walk step size per update.
  double value_step = 1.0;

  /// Client read-path knobs, copied verbatim onto the generated workload
  /// (consumes no generator randomness — the read streams draw from their
  /// own seed at run time — so workloads differing only in `read` carry
  /// identical objects and update streams).
  ReadWorkloadConfig read;

  /// Fault-schedule generator knobs (fault/fault_schedule.h). The schedule
  /// draws from its own `fault.seed` stream, never the generator's, so a
  /// disabled config (the default) builds byte-identical workloads and an
  /// enabled one perturbs nothing but `Workload::faults`.
  FaultScheduleConfig fault;

  uint64_t seed = 1;
};

/// Builds a synthetic workload. Deterministic given the config (including
/// the seed): two calls with the same config produce identical specs and
/// identical per-object RNG seeds.
Result<Workload> MakeWorkload(const WorkloadConfig& config);

/// Deep copy of one object spec: scalar fields are copied and the owned
/// polymorphic members (process, weight, source_weight) are Clone()d, so
/// the copy shares no mutable state with the original.
ObjectSpec CloneObjectSpec(const ObjectSpec& spec);

/// Deep copy of a whole workload. The clone replays exactly the update
/// stream the original would (same specs, same per-object RNG seeds, same
/// process cursor state), yet owns every byte of it — running or mutating
/// the clone leaves the original untouched. This is what lets one
/// hand-constructed or trace-derived workload (e.g. MakeBuoyWorkload) fan
/// out across concurrent runner jobs: each job runs a private clone
/// (RunExperimentsOnWorkload in exp/runner.h).
Workload CloneWorkload(const Workload& workload);

}  // namespace besync

#endif  // BESYNC_DATA_WORKLOAD_H_
