#include "data/update_process.h"

#include <cmath>
#include <limits>

#include "util/logging.h"

namespace besync {

namespace {
constexpr double kInfinity = std::numeric_limits<double>::infinity();
}

PoissonRandomWalkProcess::PoissonRandomWalkProcess(double lambda, double step)
    : lambda_(lambda), step_(step) {
  BESYNC_CHECK_GE(lambda, 0.0);
}

double PoissonRandomWalkProcess::NextUpdateTime(double now, Rng* rng) {
  if (lambda_ <= 0.0) return kInfinity;
  return now + rng->Exponential(lambda_);
}

double PoissonRandomWalkProcess::ApplyUpdate(double current_value, Rng* rng) {
  return current_value + (rng->Bernoulli(0.5) ? step_ : -step_);
}

BernoulliRandomWalkProcess::BernoulliRandomWalkProcess(double probability, double step)
    : probability_(probability), step_(step) {
  BESYNC_CHECK_GE(probability, 0.0);
  BESYNC_CHECK_LE(probability, 1.0);
}

double BernoulliRandomWalkProcess::NextUpdateTime(double now, Rng* rng) {
  if (probability_ <= 0.0) return kInfinity;
  // Next opportunity is the first integer time strictly after `now`.
  double slot = std::floor(now) + 1.0;
  if (probability_ >= 1.0) return slot;
  // Number of failures before the first success (geometric distribution),
  // sampled in closed form.
  const double u = rng->NextDouble();
  const double failures = std::floor(std::log1p(-u) / std::log1p(-probability_));
  return slot + failures;
}

double BernoulliRandomWalkProcess::ApplyUpdate(double current_value, Rng* rng) {
  return current_value + (rng->Bernoulli(0.5) ? step_ : -step_);
}

RegimeSwitchingProcess::RegimeSwitchingProcess(double rate_a, double rate_b,
                                               double regime_length, double step)
    : rate_a_(rate_a), rate_b_(rate_b), regime_length_(regime_length), step_(step) {
  BESYNC_CHECK_GE(rate_a, 0.0);
  BESYNC_CHECK_GE(rate_b, 0.0);
  BESYNC_CHECK_GT(regime_length, 0.0);
}

double RegimeSwitchingProcess::RateAt(double t) const {
  const int64_t regime = static_cast<int64_t>(std::floor(t / regime_length_));
  return regime % 2 == 0 ? rate_a_ : rate_b_;
}

double RegimeSwitchingProcess::NextUpdateTime(double now, Rng* rng) {
  // Piecewise-homogeneous Poisson process: draw within the current regime;
  // if the candidate falls past the regime boundary, restart the draw from
  // the boundary (memorylessness makes this exact).
  double t = now;
  for (int guard = 0; guard < 1000000; ++guard) {
    const double rate = RateAt(t);
    const double boundary =
        (std::floor(t / regime_length_) + 1.0) * regime_length_;
    if (rate <= 0.0) {
      t = boundary;
      continue;
    }
    const double candidate = t + rng->Exponential(rate);
    if (candidate <= boundary) return candidate;
    t = boundary;
  }
  return kInfinity;  // both rates zero forever
}

double RegimeSwitchingProcess::ApplyUpdate(double current_value, Rng* rng) {
  return current_value + (rng->Bernoulli(0.5) ? step_ : -step_);
}

DriftProcess::DriftProcess(double lambda, double step) : lambda_(lambda), step_(step) {
  BESYNC_CHECK_GE(lambda, 0.0);
}

double DriftProcess::NextUpdateTime(double now, Rng* /*rng*/) {
  if (lambda_ <= 0.0) return kInfinity;
  const double interval = 1.0 / lambda_;
  // Next multiple of the interval strictly after `now`.
  const double k = std::floor(now / interval + 1e-9) + 1.0;
  return k * interval;
}

double DriftProcess::ApplyUpdate(double current_value, Rng* /*rng*/) {
  return current_value + step_;
}

TraceProcess::TraceProcess(std::vector<TracePoint> points) : points_(std::move(points)) {
  for (size_t i = 1; i < points_.size(); ++i) {
    BESYNC_CHECK_GT(points_[i].time, points_[i - 1].time) << "trace times must increase";
  }
  if (points_.size() >= 2) {
    const double span = points_.back().time - points_.front().time;
    rate_ = span > 0.0 ? static_cast<double>(points_.size() - 1) / span : 0.0;
  }
}

double TraceProcess::NextUpdateTime(double now, Rng* /*rng*/) {
  // Points at or before `now` can never fire anymore; skip them for good.
  while (cursor_ < points_.size() && points_[cursor_].time <= now) ++cursor_;
  return cursor_ < points_.size() ? points_[cursor_].time : kInfinity;
}

double TraceProcess::ApplyUpdate(double current_value, Rng* /*rng*/) {
  if (cursor_ >= points_.size()) return current_value;
  return points_[cursor_++].value;
}

std::unique_ptr<UpdateProcess> TraceProcess::Clone() const {
  auto clone = std::make_unique<TraceProcess>(points_);
  clone->cursor_ = cursor_;
  return clone;
}

}  // namespace besync
