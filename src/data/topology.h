#ifndef BESYNC_DATA_TOPOLOGY_H_
#define BESYNC_DATA_TOPOLOGY_H_

#include <cstdint>
#include <string>
#include <vector>

#include "util/status.h"

namespace besync {

/// Static description of a multi-tier relay topology: the tree of nodes a
/// refresh traverses from its source to a leaf cache. Generalizes the
/// engine's flat source -> cache network (the paper's Figure-1 star and its
/// PR-1 N-cache extension) into CDN-style hierarchies where regional relay
/// caches sit between the sources and the edge caches (paper Section 8
/// outlook; cf. the in-network-caching topology study arXiv:1312.0133 and
/// the cooperative-CDN survey arXiv:1210.0071).
///
/// Node numbering: nodes 0 .. num_leaves-1 are the leaf caches (node id ==
/// cache id); nodes >= num_leaves are relays. Every node has exactly one
/// *ingress edge* — the link its downstream traffic arrives on, fed by its
/// parent relay, or directly by the sources for tier-1 nodes (parent -1).
/// Edges are therefore indexed by their child node. An empty parent map is
/// the **flat** topology: every leaf is tier-1 and the engine behaves
/// exactly as before (one hop, no relays).
///
/// Per-edge knobs follow a "<= 0 / missing means default" convention so a
/// default-constructed tree is *pass-through*: relay edges unconstrained,
/// no loss, no latency — and a pass-through tree reproduces the flat run
/// bitwise (pinned by tests/topology_test.cc).
struct TopologySpec {
  /// Number of leaf caches (must equal the workload's num_caches). Leaves
  /// occupy node ids [0, num_leaves).
  int num_leaves = 0;
  /// Parent node of each node, -1 for tier-1 nodes (fed directly by the
  /// sources). Empty = flat topology (no relays, every leaf tier-1).
  std::vector<int32_t> parent;
  /// Failover parent of each *relay* node: when relay r fails (fault
  /// injection, fault/fault_schedule.h), r's children re-attach to
  /// backup_parent[r]. -1 or a missing entry promotes the children to
  /// tier-1 (source-fed) for the outage. Entries for leaf indexes must be
  /// -1 (leaves never fail over — they crash). Empty = no backups declared.
  std::vector<int32_t> backup_parent;

  /// Ingress-edge average bandwidth of node i (messages/second). <= 0 or
  /// missing = default: leaf edges take the scheduler's per-cache bandwidth
  /// (cache_bandwidth_avg / overrides), relay edges fall back to
  /// `relay_bandwidth_factor` (below).
  std::vector<double> edge_bandwidth;
  /// Ingress-edge loss probability of node i. <= 0 or missing = default:
  /// leaf edges take the scheduler's loss_rate, relay edges are lossless.
  std::vector<double> edge_loss;
  /// Store-and-forward latency (seconds) a relay holds messages that
  /// arrived over node i's ingress edge before they become eligible for
  /// forwarding. Only meaningful for relay nodes; 0 or missing = forward in
  /// the arrival tick (pass-through timing).
  std::vector<double> edge_latency;
  /// Egress budget (messages/second) of relay node i — the forwarding
  /// capacity it spreads over all child edges per tick. <= 0 or missing =
  /// default: the relay's resolved ingress bandwidth (symmetric relay), or
  /// unconstrained when the ingress is unconstrained.
  std::vector<double> relay_egress_bandwidth;

  /// Fallback for relay edges without an explicit `edge_bandwidth`: the
  /// edge of a relay with k leaves below gets
  ///   relay_bandwidth_factor * k * cache_bandwidth_avg
  /// (factor 1 = exactly the aggregate demand of its subtree, < 1 =
  /// oversubscribed). 0 = unconstrained (pass-through relays).
  double relay_bandwidth_factor = 0.0;

  bool flat() const { return parent.empty(); }
  int num_nodes() const {
    return flat() ? num_leaves : static_cast<int>(parent.size());
  }
  int num_relays() const { return num_nodes() - num_leaves; }

  /// Value of a per-edge vector for `node`, or `fallback` when the entry is
  /// missing or <= 0.
  double EdgeValue(const std::vector<double>& values, int node,
                   double fallback) const {
    if (node < static_cast<int>(values.size()) && values[node] > 0.0) {
      return values[node];
    }
    return fallback;
  }

  /// Tier of a node: 1 for source-fed nodes, parent's tier + 1 otherwise.
  /// Flat topologies put every leaf at tier 1.
  int TierOf(int node) const;
  /// Number of link tiers on the deepest source -> leaf path (1 = flat).
  int depth() const;

  /// Leaves in the subtree rooted at each node (1 for leaves themselves).
  std::vector<int64_t> SubtreeLeafCounts() const;

  /// Relay node ids ordered children-before-parents (ascending height above
  /// the leaves, ties by node id) — the upstream control-pump order.
  std::vector<int32_t> RelaysBottomUp() const;

  /// Relay node ids ordered parents-before-children (descending height,
  /// ties by node id) — the downstream forwarding order.
  std::vector<int32_t> RelaysTopDown() const;

  /// Failover parent of `node`, or -1 when none is declared (promote to
  /// tier-1 on parent failure).
  int32_t BackupParentOf(int node) const {
    if (node < static_cast<int>(backup_parent.size())) return backup_parent[node];
    return -1;
  }

  /// Structural validation against a workload with `num_caches` caches.
  /// Flat specs are always valid.
  Status Validate(int num_caches) const;
};

/// Builds a uniform relay tree over `num_leaves` leaf caches: `relay_tiers`
/// tiers of relays, each grouping up to `fanout` children. relay_tiers == 0
/// returns the flat topology. All edge knobs are left at defaults, so the
/// result is pass-through until the caller (or the scheduler's bandwidth
/// resolution) assigns capacities.
TopologySpec MakeRelayTree(int num_leaves, int fanout, int relay_tiers);

/// Declares a default failover map on `spec`: each relay's backup is the
/// next relay at the same height (wrapping), or -1 (promote children to
/// tier-1) when it is the only relay of its tier. No-op on flat specs.
void AssignBackupParents(TopologySpec* spec);

/// "flat" or "tree(relays=R,depth=D)" — for job names and tables.
std::string TopologyLabel(const TopologySpec& spec);

}  // namespace besync

#endif  // BESYNC_DATA_TOPOLOGY_H_
