#ifndef BESYNC_DATA_READ_PROCESS_H_
#define BESYNC_DATA_READ_PROCESS_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "util/random.h"

namespace besync {

/// Which replica a capacity-limited cache evicts when an install would
/// exceed its capacity (read/cache_store.h implements the policies).
enum class EvictionPolicy {
  /// Least-recently-read first (installs count as the initial touch).
  kLru,
  /// Least-frequently-read first, ties broken least-recently-read.
  kLfu,
  /// Most-diverged replica first: the copy whose content is currently least
  /// trustworthy is dropped, so its next read misses and pulls fresh data
  /// instead of serving the stalest value in the store.
  kDivergenceAware,
};

std::string EvictionPolicyToString(EvictionPolicy policy);

/// Client read-side knobs, carried on Workload (and generated into it by
/// WorkloadConfig::read). The defaults disable the read path entirely —
/// read_rate = 0 generates no reads and capacity = 0 keeps every replica
/// permanently resident, reproducing the write-only engine bitwise.
struct ReadWorkloadConfig {
  /// Poisson arrival rate of client reads per cache (reads/second).
  /// 0 disables the generated read streams (trace-driven streams attached
  /// via Workload::read_streams still run).
  double read_rate = 0.0;
  /// Zipf exponent of the popularity law over each cache's replicated
  /// objects (larger = hotter heads).
  double zipf_exponent = 0.8;
  /// Rotate the popularity ranking per cache (cache c's hottest object is
  /// at a different replica slot than cache c+1's), so multi-cache
  /// workloads do not all hammer the same objects.
  bool rotate_popularity = true;
  /// Maximum resident objects per cache; <= 0 = unbounded (the historical
  /// model: every replicated object is always servable locally).
  int64_t capacity = 0;
  /// Which resident replica an over-capacity install evicts.
  EvictionPolicy eviction = EvictionPolicy::kLru;
  /// A pull left unanswered this long (e.g. the response was lost on a
  /// lossy link) is re-requested by the next missing read.
  double pull_retry_interval = 10.0;
  /// Base seed of the per-cache read streams; independent of the workload
  /// and scheduler seeds so enabling reads never perturbs update streams.
  uint64_t seed = 1;
};

/// Generates one cache's client read stream: when reads arrive and which of
/// the cache's replicated objects each read targets. Mirrors the
/// UpdateProcess idiom (data/update_process.h): instances may hold cursor
/// state (trace replay), draws come from the caller's RNG, and Clone()
/// supports fanning a workload across concurrent runner jobs.
class ReadProcess {
 public:
  virtual ~ReadProcess() = default;

  /// Time of the next read at or after `now` (trace replays may report a
  /// read exactly at `now` when several share a timestamp; generated
  /// streams return strictly later times); +infinity if none.
  virtual double NextReadTime(double now, Rng* rng) = 0;

  /// Slot (0 .. num_slots-1) within the cache's replica list the read
  /// targets; called once per read, after NextReadTime.
  virtual int64_t NextObjectSlot(int64_t num_slots, Rng* rng) = 0;

  /// Long-run average read rate (reads/second).
  virtual double rate() const = 0;

  /// Rewinds any cursor state so the same workload can be run under
  /// several schedulers. Stateless processes need not override.
  virtual void Reset() {}

  /// Deep copy including cursor state (CloneWorkload support).
  virtual std::unique_ptr<ReadProcess> Clone() const = 0;
};

/// Poisson read arrivals over a Zipf popularity law: inter-read gaps are
/// exponential with the configured rate; each read targets popularity rank
/// r ~ Zipf(num_slots, exponent), mapped to slot (r - 1 + rotation) mod
/// num_slots. The rotation offset realizes ReadWorkloadConfig::
/// rotate_popularity — each cache instance gets a different offset, so the
/// hot set differs per cache.
class PoissonZipfReadProcess : public ReadProcess {
 public:
  PoissonZipfReadProcess(double rate, double zipf_exponent, int64_t rotation = 0);

  double NextReadTime(double now, Rng* rng) override;
  int64_t NextObjectSlot(int64_t num_slots, Rng* rng) override;
  double rate() const override { return rate_; }
  std::unique_ptr<ReadProcess> Clone() const override {
    return std::make_unique<PoissonZipfReadProcess>(rate_, zipf_exponent_, rotation_);
  }

 private:
  double rate_;
  double zipf_exponent_;
  int64_t rotation_;
};

/// One timestamped read of a replayed client trace.
struct ReadTracePoint {
  double time = 0.0;
  /// Replica slot within the cache's member list (clamped into range at
  /// replay time, so traces survive workload reshaping).
  int64_t slot = 0;
};

/// Replays a fixed, time-ordered trace of client reads. Holds a cursor
/// advanced by NextObjectSlot; Clone() copies points and cursor.
class TraceReadProcess : public ReadProcess {
 public:
  explicit TraceReadProcess(std::vector<ReadTracePoint> points);

  double NextReadTime(double now, Rng* rng) override;
  int64_t NextObjectSlot(int64_t num_slots, Rng* rng) override;
  double rate() const override { return rate_; }
  void Reset() override { cursor_ = 0; }
  std::unique_ptr<ReadProcess> Clone() const override;

  size_t num_points() const { return points_.size(); }

 private:
  std::vector<ReadTracePoint> points_;
  size_t cursor_ = 0;
  double rate_ = 0.0;
};

}  // namespace besync

#endif  // BESYNC_DATA_READ_PROCESS_H_
