#ifndef BESYNC_DATA_UPDATE_PROCESS_H_
#define BESYNC_DATA_UPDATE_PROCESS_H_

#include <memory>
#include <vector>

#include "util/random.h"

namespace besync {

/// Generates the update stream of one source data object: when updates occur
/// and how each update mutates the value. Instances are per-object and may
/// hold cursor state (trace replay); the random draws come from the caller's
/// per-object RNG so update streams are identical across schedulers run on
/// the same seed.
class UpdateProcess {
 public:
  virtual ~UpdateProcess() = default;

  /// Time of the next update strictly after `now`; +infinity if none.
  virtual double NextUpdateTime(double now, Rng* rng) = 0;

  /// Applies one update (at the time previously returned by NextUpdateTime)
  /// and returns the new value.
  virtual double ApplyUpdate(double current_value, Rng* rng) = 0;

  /// Long-run average update rate (updates/second); the lambda parameter
  /// available to oracles and to the CGM "ideal cache-based" baseline.
  virtual double rate() const = 0;

  /// Rewinds any internal cursor state so the same workload object can be
  /// run under several schedulers. Stateless processes need not override.
  virtual void Reset() {}

  /// Deep copy, including any cursor state: given identical subsequent RNG
  /// draws, the clone produces exactly the update stream the original would
  /// have produced. Enables CloneWorkload (data/workload.h), which fans one
  /// workload out across concurrently running jobs.
  virtual std::unique_ptr<UpdateProcess> Clone() const = 0;
};

/// Poisson-timed random walk: updates arrive as a Poisson process with rate
/// lambda; each update increments or decrements the value by `step` with
/// equal probability (paper Sections 4.3, 6.2).
class PoissonRandomWalkProcess : public UpdateProcess {
 public:
  PoissonRandomWalkProcess(double lambda, double step = 1.0);

  double NextUpdateTime(double now, Rng* rng) override;
  double ApplyUpdate(double current_value, Rng* rng) override;
  double rate() const override { return lambda_; }
  std::unique_ptr<UpdateProcess> Clone() const override {
    return std::make_unique<PoissonRandomWalkProcess>(lambda_, step_);
  }

 private:
  double lambda_;
  double step_;
};

/// Per-second Bernoulli random walk: at each integer time the object is
/// updated with probability p ("each simulated object O_i was updated with
/// probability p_i each second", Section 4.3). p = 1 reproduces the paper's
/// "updated consistently every second" objects.
class BernoulliRandomWalkProcess : public UpdateProcess {
 public:
  BernoulliRandomWalkProcess(double probability, double step = 1.0);

  double NextUpdateTime(double now, Rng* rng) override;
  double ApplyUpdate(double current_value, Rng* rng) override;
  double rate() const override { return probability_; }
  std::unique_ptr<UpdateProcess> Clone() const override {
    return std::make_unique<BernoulliRandomWalkProcess>(probability_, step_);
  }

 private:
  double probability_;
  double step_;
};

/// Poisson random walk whose rate toggles between `rate_a` and `rate_b`
/// every `regime_length` seconds (starting in regime A). Used by the
/// history-priority ablation (Section 10.1 discusses trading adaptiveness
/// for longer-history predictions; regime switches are exactly where that
/// trade bites).
class RegimeSwitchingProcess : public UpdateProcess {
 public:
  RegimeSwitchingProcess(double rate_a, double rate_b, double regime_length,
                         double step = 1.0);

  double NextUpdateTime(double now, Rng* rng) override;
  double ApplyUpdate(double current_value, Rng* rng) override;
  /// Long-run average rate (the mean of the two regime rates).
  double rate() const override { return 0.5 * (rate_a_ + rate_b_); }
  std::unique_ptr<UpdateProcess> Clone() const override {
    return std::make_unique<RegimeSwitchingProcess>(rate_a_, rate_b_, regime_length_,
                                                    step_);
  }

  /// Rate in force at time `t`.
  double RateAt(double t) const;

 private:
  double rate_a_;
  double rate_b_;
  double regime_length_;
  double step_;
};

/// Deterministic one-sided drift: the value increases by `step` exactly
/// every 1/lambda seconds. Under the value-deviation metric the divergence
/// of such an object is (up to discretization) lambda*step*(t - t_last) —
/// i.e. it *equals* the Section 9 divergence bound with rate
/// R = lambda*step. Used by the divergence-bounding experiments: minimizing
/// the average bound on any workload is equivalent to minimizing actual
/// divergence on the drift workload with matching rates.
class DriftProcess : public UpdateProcess {
 public:
  DriftProcess(double lambda, double step = 1.0);

  double NextUpdateTime(double now, Rng* rng) override;
  double ApplyUpdate(double current_value, Rng* rng) override;
  double rate() const override { return lambda_; }
  std::unique_ptr<UpdateProcess> Clone() const override {
    return std::make_unique<DriftProcess>(lambda_, step_);
  }

 private:
  double lambda_;
  double step_;
};

/// One timestamped point of a replayed measurement trace.
struct TracePoint {
  double time = 0.0;
  double value = 0.0;
};

/// Replays a fixed, time-ordered trace of (time, value) measurements (the
/// wind-buoy experiment, Section 6.2.1). Holds a cursor advanced by
/// ApplyUpdate.
class TraceProcess : public UpdateProcess {
 public:
  explicit TraceProcess(std::vector<TracePoint> points);

  double NextUpdateTime(double now, Rng* rng) override;
  double ApplyUpdate(double current_value, Rng* rng) override;
  double rate() const override { return rate_; }
  void Reset() override { cursor_ = 0; }
  /// Copies the full point vector and the current cursor position.
  std::unique_ptr<UpdateProcess> Clone() const override;

  size_t num_points() const { return points_.size(); }

 private:
  std::vector<TracePoint> points_;
  size_t cursor_ = 0;
  double rate_ = 0.0;
};

}  // namespace besync

#endif  // BESYNC_DATA_UPDATE_PROCESS_H_
