#include "core/source.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "util/logging.h"

namespace besync {

SourceAgent::SourceAgent(int index, const SourceAgentConfig& config,
                         double expected_feedback_period, const PriorityPolicy* policy,
                         Harness* harness)
    : index_(index),
      config_(config),
      policy_(policy),
      harness_(harness),
      expected_feedback_period_(expected_feedback_period) {
  BESYNC_CHECK(policy != nullptr);
  BESYNC_CHECK(harness != nullptr);
  BESYNC_CHECK_GT(expected_feedback_period, 0.0);
}

void SourceAgent::AddObject(ObjectIndex index) {
  if (members_.empty()) {
    first_member_ = index;
  } else {
    BESYNC_CHECK_EQ(index, first_member_ + static_cast<ObjectIndex>(members_.size()))
        << "source objects must be contiguous";
  }
  members_.push_back(index);
}

void SourceAgent::SetFeedbackPeriods(std::vector<double> periods_by_cache) {
  BESYNC_CHECK(channels_.empty()) << "SetFeedbackPeriods must precede Start";
  feedback_periods_by_cache_ = std::move(periods_by_cache);
}

void SourceAgent::SetSyncProtocol(const SyncProtocol* protocol) {
  BESYNC_CHECK(channels_.empty()) << "SetSyncProtocol must precede Start";
  protocol_ = protocol;
}

void SourceAgent::BuildChannels() {
  channels_.clear();
  // Distinct cache ids across this source's objects, ascending. Per-object
  // cache lists are sorted, so a flat collect + sort + unique suffices.
  std::vector<int32_t> cache_ids;
  for (ObjectIndex index : members_) {
    const ObjectSpec& spec = *harness_->object(index).spec;
    cache_ids.insert(cache_ids.end(), spec.caches.begin(), spec.caches.end());
  }
  std::sort(cache_ids.begin(), cache_ids.end());
  cache_ids.erase(std::unique(cache_ids.begin(), cache_ids.end()), cache_ids.end());
  BESYNC_CHECK(!cache_ids.empty()) << "source " << index_ << " has no objects";

  channels_.reserve(cache_ids.size());
  Arena* arena = harness_->arena();
  // Scratch reused across channels; the arena copies are exact-sized.
  std::vector<ObjectIndex> channel_members;
  std::vector<int32_t> channel_replicas;
  for (int32_t cache_id : cache_ids) {
    double period = expected_feedback_period_;
    if (cache_id < static_cast<int32_t>(feedback_periods_by_cache_.size()) &&
        feedback_periods_by_cache_[cache_id] > 0.0) {
      period = feedback_periods_by_cache_[cache_id];
    }
    Channel channel(cache_id, config_.threshold, period);
    channel.slot_of = arena->AllocateArray<int32_t>(members_.size(), -1);
    channel_members.clear();
    channel_replicas.clear();
    for (size_t k = 0; k < members_.size(); ++k) {
      const ObjectIndex index = members_[k];
      const int replica = harness_->object(index).spec->replica_slot(cache_id);
      if (replica < 0) continue;
      channel.slot_of[k] = static_cast<int32_t>(channel_members.size());
      channel_members.push_back(index);
      channel_replicas.push_back(static_cast<int32_t>(replica));
    }
    channel.num_members = static_cast<int32_t>(channel_members.size());
    channel.members = arena->AllocateArray<ObjectIndex>(channel_members.size());
    channel.replica_slots = arena->AllocateArray<int32_t>(channel_replicas.size());
    std::copy(channel_members.begin(), channel_members.end(), channel.members);
    std::copy(channel_replicas.begin(), channel_replicas.end(),
              channel.replica_slots);
    channel.locals = arena->AllocateArray<LocalState>(channel_members.size());
    if (protocol_ != nullptr && protocol_->emits_invalidations()) {
      channel.invalid_state =
          arena->AllocateArray<uint8_t>(channel_members.size(), uint8_t{kReplicaFresh});
    }
    channels_.push_back(std::move(channel));
  }
}

int SourceAgent::ChannelSlot(const Channel& channel, ObjectIndex index) const {
  BESYNC_DCHECK(index >= first_member_);
  BESYNC_DCHECK(index < first_member_ + static_cast<ObjectIndex>(members_.size()));
  const int32_t slot = channel.slot_of[index - first_member_];
  BESYNC_DCHECK(slot >= 0) << "object " << index << " not replicated at cache "
                           << channel.cache_id;
  return slot;
}

SourceAgent::LocalState& SourceAgent::local(Channel* channel, ObjectIndex index) {
  return channel->locals[ChannelSlot(*channel, index)];
}

SourceAgent::ChannelEpoch SourceAgent::MakeEpochFn(const Channel* channel) const {
  return ChannelEpoch{channel->locals, channel->slot_of, first_member_};
}

PriorityContext SourceAgent::MakeContext(const Channel& channel, ObjectIndex index,
                                         double now, bool use_source_weight) const {
  const int slot = ChannelSlot(channel, index);
  const ObjectRuntime& object = harness_->object(index);
  const DivergenceTracker& tracker = object.tracker(channel.replica_slots[slot]);
  PriorityContext context;
  context.tracker = &tracker;
  context.weight = use_source_weight ? harness_->SourceWeightAt(index, now)
                                     : harness_->WeightAt(index, now);
  if (config_.cost_aware_priority && object.spec->refresh_cost > 1) {
    // Section 10.1: non-uniform costs enter the weight inversely.
    context.weight /= static_cast<double>(object.spec->refresh_cost);
  }
  context.max_divergence_rate = object.spec->max_divergence_rate;
  context.history_rate = channel.locals[slot].history.rate();
  context.lambda_estimate = EstimateLambda(
      config_.lambda_mode, object.spec->lambda, object.state.version, now,
      tracker.updates_since_refresh(), now - tracker.last_refresh_time());
  return context;
}

double SourceAgent::ChannelPriority(const Channel& channel, ObjectIndex index,
                                    double now) const {
  return policy_->Priority(MakeContext(channel, index, now, /*use_source_weight=*/false),
                           now);
}

double SourceAgent::ChannelSourcePriority(const Channel& channel, ObjectIndex index,
                                          double now) const {
  return policy_->Priority(MakeContext(channel, index, now, /*use_source_weight=*/true),
                           now);
}

double SourceAgent::ComputePriority(ObjectIndex index, double now) const {
  // Channel 0's view is only *the* priority when it is the only channel: on
  // a multi-cache source the per-replica trackers and thresholds disagree,
  // so silently answering from channels_.front() would be wrong for every
  // other cache. Multi-channel callers must name the channel.
  BESYNC_CHECK_EQ(num_channels(), 1)
      << "ComputePriority(index, now) is single-channel only; source " << index_
      << " has " << num_channels() << " cache channels — use the channel overload";
  return ChannelPriority(channels_.front(), index, now);
}

double SourceAgent::ComputePriority(ObjectIndex index, double now, int channel) const {
  BESYNC_CHECK_GE(channel, 0);
  BESYNC_CHECK_LT(channel, num_channels());
  return ChannelPriority(channels_[channel], index, now);
}

double SourceAgent::ComputeSourcePriority(ObjectIndex index, double now) const {
  BESYNC_CHECK_EQ(num_channels(), 1)
      << "ComputeSourcePriority(index, now) is single-channel only; source "
      << index_ << " has " << num_channels()
      << " cache channels — use the channel overload";
  return ChannelSourcePriority(channels_.front(), index, now);
}

double SourceAgent::ComputeSourcePriority(ObjectIndex index, double now,
                                          int channel) const {
  BESYNC_CHECK_GE(channel, 0);
  BESYNC_CHECK_LT(channel, num_channels());
  return ChannelSourcePriority(channels_[channel], index, now);
}

void SourceAgent::Start(Simulation* sim, double tick_length) {
  sim_ = sim;
  tick_length_ = tick_length;
  BuildChannels();
  // Invalidation / TTL sources never consult the push priority machinery:
  // skipping the wake-up seeding and sampling schedules keeps those runs
  // free of the events (and RNG draws) that only feed threshold pushes.
  if (!push_protocol()) return;
  if (policy_->time_varying()) {
    for (Channel& channel : channels_) {
      for (int32_t s = 0; s < channel.num_members; ++s) {
        PushWake(&channel, channel.members[s], 0.0);
      }
    }
  }
  if (config_.monitor == MonitorMode::kSampling) {
    Rng* rng = harness_->scheduler_rng();
    // Object-major so the single-cache draw sequence (one offset per object)
    // is preserved; each replica gets its own staggered schedule.
    for (size_t k = 0; k < members_.size(); ++k) {
      const ObjectIndex index = members_[k];
      for (int c = 0; c < num_channels(); ++c) {
        if (channels_[c].slot_of[k] < 0) continue;
        // Stagger initial samples so sampling load is spread over time.
        const double offset = rng->Uniform(0.0, config_.sampling_interval);
        sim->ScheduleAt(offset, [this, c, index](double t) {
          OnSampleEvent(c, index, t, sim_);
        });
      }
    }
  }
}

void SourceAgent::RecordTrace(TraceEventKind kind, double t, int32_t cache_id,
                              ObjectIndex index, int64_t version, bool is_pull) {
  TraceEvent event;
  event.kind = kind;
  event.t = t;
  event.source = index_;
  event.cache = cache_id;
  event.object = index;
  event.version = version;
  event.is_pull = is_pull;
  trace_->Record(event);
}

void SourceAgent::OnObjectUpdate(ObjectIndex index, double t) {
  if (trace_ != nullptr) {
    // One enqueue per interested replica: the update is now pending toward
    // each cache replicating the object (whatever machinery — threshold
    // queue, wake-up, invalidation FIFO, or TTL aging — carries it there).
    const int64_t version = harness_->object(index).state.version;
    for (const Channel& channel : channels_) {
      if (channel.slot_of[index - first_member_] < 0) continue;
      RecordTrace(TraceEventKind::kEnqueue, t, channel.cache_id, index, version,
                  /*is_pull=*/false);
    }
  }
  if (!push_protocol()) {
    // TTL: updates are silent — replicas age out on their own. Invalidation:
    // queue one notification per replica per staleness episode; a replica
    // already queued or notified costs nothing until a pull refills it.
    if (protocol_->emits_invalidations()) {
      for (Channel& channel : channels_) {
        const int32_t slot = channel.slot_of[index - first_member_];
        if (slot < 0) continue;
        if (channel.invalid_state[slot] != kReplicaFresh) continue;
        channel.invalid_state[slot] = kInvalidateQueued;
        channel.invalidate_queue.push_back(slot);
      }
    }
    return;
  }
  if (config_.monitor == MonitorMode::kSampling) return;  // source is blind
  for (Channel& channel : channels_) {
    const int32_t slot = channel.slot_of[index - first_member_];
    if (slot < 0) continue;
    LocalState& state = channel.locals[slot];
    if (policy_->time_varying()) {
      if (policy_->update_sensitive()) {
        // The update may have moved the threshold crossing earlier; re-arm.
        ++state.epoch;
        PushWake(&channel, index, t);
      }
      continue;
    }
    ++state.epoch;
    channel.queue.Push(ChannelPriority(channel, index, t), index, state.epoch);
    if (secondary_enabled_) {
      channel.secondary_queue.Push(ChannelSourcePriority(channel, index, t), index,
                                   state.epoch);
    }
    MaybeCompact(&channel);
  }
}

void SourceAgent::MaybeCompact(Channel* channel) {
  const size_t trigger = 4 * static_cast<size_t>(channel->num_members) + 64;
  const ChannelEpoch epoch_fn = MakeEpochFn(channel);
  if (channel->queue.size() > trigger) channel->queue.Compact(epoch_fn);
  if (secondary_enabled_ && channel->secondary_queue.size() > trigger) {
    channel->secondary_queue.Compact(epoch_fn);
  }
}

void SourceAgent::OnSampleEvent(int channel_index, ObjectIndex index, double t,
                                Simulation* sim) {
  Channel& channel = channels_[channel_index];
  const int slot = ChannelSlot(channel, index);
  LocalState& state = channel.locals[slot];
  // Direct measurement: the source compares its live value against the copy
  // it last shipped to this cache — exactly what the exact tracker's current
  // divergence is.
  const double divergence =
      harness_->object(index).tracker(channel.replica_slots[slot]).current_divergence();
  state.sampled.AddSample(t, divergence);
  ++state.epoch;
  const double weight = harness_->WeightAt(index, t);
  channel.queue.Push(state.sampled.EstimatedPriority(t) * weight, index, state.epoch);
  MaybeCompact(&channel);
  ScheduleNextSample(channel_index, index, t, sim);
}

void SourceAgent::ScheduleNextSample(int channel_index, ObjectIndex index, double now,
                                     Simulation* sim) {
  double next = now + config_.sampling_interval;
  if (config_.predictive_sampling) {
    Channel& channel = channels_[channel_index];
    const LocalState& state = channel.locals[ChannelSlot(channel, index)];
    const double weight = harness_->WeightAt(index, now);
    const double predicted =
        state.sampled.PredictCrossTime(channel.controller.threshold(), weight, now);
    // Sample "somewhat before" the predicted crossing, but never more often
    // than the minimum gap and never later than the base interval.
    const double candidate = std::max(now + config_.min_sampling_gap, predicted * 0.95);
    next = std::min(next, candidate);
  }
  sim->ScheduleAt(next, [this, channel_index, index](double t) {
    OnSampleEvent(channel_index, index, t, sim_);
  });
}

void SourceAgent::OnFeedback(const Message& message, double t) {
  Channel* channel = nullptr;
  for (Channel& candidate : channels_) {
    if (candidate.cache_id == message.cache_id) {
      channel = &candidate;
      break;
    }
  }
  BESYNC_CHECK(channel != nullptr)
      << "feedback from cache " << message.cache_id << " reached source " << index_
      << " which has no objects there";
  channel->controller.OnFeedback(t, at_full_capacity_);
  if (message.granted_rate > 0.0) granted_rate_ = message.granted_rate;
  if (policy_->time_varying()) {
    // The threshold may have dropped: re-arm this channel's wake-ups so
    // crossings that are now earlier are not missed.
    for (int32_t s = 0; s < channel->num_members; ++s) {
      const ObjectIndex index = channel->members[s];
      ++local(channel, index).epoch;
      PushWake(channel, index, t);
    }
  }
}

void SourceAgent::PushWake(Channel* channel, ObjectIndex index, double now) {
  const PriorityContext context =
      MakeContext(*channel, index, now, /*use_source_weight=*/false);
  const double cross =
      policy_->ThresholdCrossTime(context, channel->controller.threshold(), now);
  if (!std::isfinite(cross)) return;
  channel->wake_queue.Push(cross, index, local(channel, index).epoch);
}

void SourceAgent::EmitRefresh(Channel* channel, ObjectIndex index, double now,
                              const EmitSink& sink, bool bump_threshold,
                              double priority) {
  const int slot = ChannelSlot(*channel, index);
  LocalState& state = channel->locals[slot];
  // Record the finishing interval's realized divergence rate before the
  // tracker resets (feeds the history-extended policy).
  {
    const DivergenceTracker& tracker =
        harness_->object(index).tracker(channel->replica_slots[slot]);
    state.history.OnRefresh(now - tracker.last_refresh_time(), tracker.IntegralTo(now));
  }
  Message message = harness_->MakeRefreshMessage(index, channel->cache_id, now);
  if (config_.monitor == MonitorMode::kSampling) {
    state.sampled.OnRefresh(now);
  }
  if (bump_threshold) channel->controller.OnRefreshSent(now);
  // Piggyback the current (post-increase) threshold: the freshest
  // information the cache can have about this source.
  message.piggyback_threshold = channel->controller.threshold();
  message.forward_priority = priority;
  if (trace_ != nullptr) {
    RecordTrace(TraceEventKind::kSend, now, channel->cache_id, index,
                message.version, /*is_pull=*/false);
  }
  sink.Deliver(std::move(message));
  ++state.epoch;
  ++refreshes_sent_;
  channel->last_emit_time = now;
}

Message SourceAgent::ServePull(ObjectIndex index, int32_t cache_id, double now) {
  Channel* channel = nullptr;
  for (Channel& candidate : channels_) {
    if (candidate.cache_id == cache_id) {
      channel = &candidate;
      break;
    }
  }
  BESYNC_CHECK(channel != nullptr)
      << "source " << index_ << " has no channel for cache " << cache_id;
  const int slot = ChannelSlot(*channel, index);
  LocalState& state = channel->locals[slot];
  // Same interval bookkeeping as EmitRefresh: the pull closes a refresh
  // interval for the replica, feeding the history-extended policy.
  {
    const DivergenceTracker& tracker =
        harness_->object(index).tracker(channel->replica_slots[slot]);
    state.history.OnRefresh(now - tracker.last_refresh_time(), tracker.IntegralTo(now));
  }
  Message message = harness_->MakeRefreshMessage(index, cache_id, now);
  if (config_.monitor == MonitorMode::kSampling) {
    state.sampled.OnRefresh(now);
  }
  message.is_pull = true;
  message.piggyback_threshold = channel->controller.threshold();
  // Demand traffic: priority-preserving relays forward pulls ahead of any
  // queued push.
  message.forward_priority = std::numeric_limits<double>::infinity();
  if (trace_ != nullptr) {
    RecordTrace(TraceEventKind::kSend, now, cache_id, index, message.version,
                /*is_pull=*/true);
  }
  // The replica is fresh now; invalidate any queued push entry so the next
  // send phase does not re-send the value the pull just delivered.
  ++state.epoch;
  // Under the invalidation protocol the pull also closes the staleness
  // episode: the source's replica model returns to fresh, so the next
  // update queues a new notification, and any notification still queued
  // for this slot dies lazily at send time.
  if (channel->invalid_state != nullptr) {
    channel->invalid_state[slot] = kReplicaFresh;
  }
  // Time-varying policies are driven by wake-ups, and the bump above just
  // killed this object's armed entry; re-arm from the new t_last exactly
  // like an emitted push, or the object would never be pushed again (for
  // non-update-sensitive policies updates do not re-arm).
  if (push_protocol() && policy_->time_varying()) {
    PushWake(channel, index, now);
  }
  return message;
}

void SourceAgent::OnCacheRestart(int32_t cache_id, double now,
                                 RecoveryPolicy policy,
                                 std::vector<ObjectIndex>* resynced) {
  Channel* channel = nullptr;
  for (Channel& candidate : channels_) {
    if (candidate.cache_id == cache_id) {
      channel = &candidate;
      break;
    }
  }
  if (channel == nullptr) return;  // no objects at that cache
  const bool priority_recovery = policy == RecoveryPolicy::kRecoveryPriority;
  // A re-crash during an unfinished recovery supersedes it: the FIFO is
  // rebuilt from scratch (each replica appears once).
  if (priority_recovery) channel->recovery_queue.clear();
  for (int32_t slot = 0; slot < channel->num_members; ++slot) {
    const ObjectIndex index = channel->members[slot];
    resynced->push_back(index);
    if (trace_ != nullptr) {
      // The crash re-enqueues the replica: its next refresh (recovery FIFO,
      // re-entered threshold queue, or demand pull) re-ships current state.
      RecordTrace(TraceEventKind::kEnqueue, now, cache_id, index,
                  harness_->object(index).state.version, /*is_pull=*/false);
    }
    if (channel->invalid_state != nullptr) {
      // The crash is the notification: the restarted cache knows it holds
      // nothing valid, so the source's replica model moves to "notified" —
      // further updates are free until a refill closes the episode.
      channel->invalid_state[slot] = kInvalidateSent;
    }
    if (priority_recovery) {
      channel->recovery_queue.push_back(slot);
      continue;
    }
    // Naive re-enqueue: the replica rejoins the threshold machinery at its
    // current (pre-crash, still-accruing) priority. Invalidation / TTL
    // sources push nothing — those replicas refill through demand pulls.
    if (!push_protocol()) continue;
    LocalState& state = channel->locals[slot];
    ++state.epoch;
    if (policy_->time_varying()) {
      PushWake(channel, index, now);
      continue;
    }
    channel->queue.Push(ChannelPriority(*channel, index, now), index, state.epoch);
    if (secondary_enabled_) {
      channel->secondary_queue.Push(ChannelSourcePriority(*channel, index, now),
                                    index, state.epoch);
    }
  }
  if (!priority_recovery && push_protocol() && !policy_->time_varying()) {
    MaybeCompact(channel);
  }
}

int64_t SourceAgent::SendRecovery(double now, Link* source_link, Link* cache_link,
                                  int channel_index) {
  BESYNC_DCHECK(channel_index >= 0 && channel_index < num_channels());
  Channel* channel = &channels_[channel_index];
  const EmitSink sink{cache_link, nullptr};
  int64_t sent = 0;
  while (!channel->recovery_queue.empty()) {
    const int32_t slot = channel->recovery_queue.front();
    const ObjectIndex index = channel->members[slot];
    const int64_t cost = harness_->object(index).spec->refresh_cost;
    if (!source_link->TryConsumeAllowingDeficit(cost)) break;
    channel->recovery_queue.pop_front();
    EmitRefresh(channel, index, now, sink, /*bump_threshold=*/false,
                std::numeric_limits<double>::infinity());
    // The refill closes the invalidation episode, exactly like a pull.
    if (channel->invalid_state != nullptr) {
      channel->invalid_state[slot] = kReplicaFresh;
    }
    // EmitRefresh's epoch bump killed the object's armed wake-up; re-arm
    // from the new t_last (time-varying policies only).
    if (push_protocol() && policy_->time_varying()) PushWake(channel, index, now);
    ++sent;
  }
  return sent;
}

void SourceAgent::EmitBatch(Channel* channel, const std::vector<QueueEntry>& batch,
                            double now, const EmitSink& sink) {
  BESYNC_DCHECK(!batch.empty());
  Message message;
  for (size_t k = 0; k < batch.size(); ++k) {
    const ObjectIndex index = batch[k].index;
    const int slot = ChannelSlot(*channel, index);
    LocalState& state = channel->locals[slot];
    {
      const DivergenceTracker& tracker =
          harness_->object(index).tracker(channel->replica_slots[slot]);
      state.history.OnRefresh(now - tracker.last_refresh_time(),
                              tracker.IntegralTo(now));
    }
    if (config_.monitor == MonitorMode::kSampling) {
      state.sampled.OnRefresh(now);
    }
    int64_t version = 0;
    if (k == 0) {
      message = harness_->MakeRefreshMessage(index, channel->cache_id, now);
      version = message.version;
    } else {
      const Message part = harness_->MakeRefreshMessage(index, channel->cache_id, now);
      version = part.version;
      message.extra_refreshes.push_back(
          RefreshPayload{part.object_index, part.value, part.version});
    }
    if (trace_ != nullptr) {
      RecordTrace(TraceEventKind::kSend, now, channel->cache_id, index, version,
                  /*is_pull=*/false);
    }
    ++state.epoch;
    ++refreshes_sent_;
  }
  // The whole batch travels as one unit-cost message — the amortization.
  message.cost = 1;
  channel->controller.OnRefreshSent(now);
  message.piggyback_threshold = channel->controller.threshold();
  // The batch was popped in priority order, so entry 0 holds its maximum.
  message.forward_priority = batch.front().key;
  sink.Deliver(std::move(message));
  channel->last_emit_time = now;
}

int64_t SourceAgent::SendRefreshes(double now, Link* source_link, Link* cache_link,
                                   int channel_index) {
  return SendRefreshesToSink(now, source_link, EmitSink{cache_link, nullptr},
                             channel_index);
}

int64_t SourceAgent::SendRefreshesBuffered(double now, Link* source_link,
                                           std::vector<Message>* out,
                                           int channel_index) {
  return SendRefreshesToSink(now, source_link, EmitSink{nullptr, out},
                             channel_index);
}

int64_t SourceAgent::SendRefreshesToSink(double now, Link* source_link,
                                         const EmitSink& sink, int channel_index) {
  BESYNC_DCHECK(channel_index >= 0 && channel_index < num_channels());
  Channel* channel = &channels_[channel_index];
  // Channel 0 opens the source's send phase for this tick; the flag then
  // accumulates across the remaining channels (they share the source link).
  if (channel_index == 0) at_full_capacity_ = false;
  if (policy_->time_varying()) {
    return SendRefreshesTimeVarying(channel, now, source_link, sink);
  }
  return SendRefreshesEventKeyed(channel, now, source_link, sink);
}

int64_t SourceAgent::SendInvalidations(double now, Link* source_link,
                                       Link* cache_link, int channel_index) {
  return SendInvalidationsToSink(now, source_link, EmitSink{cache_link, nullptr},
                                 channel_index);
}

int64_t SourceAgent::SendInvalidationsBuffered(double now, Link* source_link,
                                               std::vector<Message>* out,
                                               int channel_index) {
  return SendInvalidationsToSink(now, source_link, EmitSink{nullptr, out},
                                 channel_index);
}

int64_t SourceAgent::SendInvalidationsToSink(double now, Link* source_link,
                                             const EmitSink& sink,
                                             int channel_index) {
  BESYNC_DCHECK(channel_index >= 0 && channel_index < num_channels());
  BESYNC_CHECK(protocol_ != nullptr && protocol_->emits_invalidations());
  Channel* channel = &channels_[channel_index];
  // Same tick-opening contract as SendRefreshesToSink: channel 0 clears the
  // shared full-capacity flag, the remaining channels accumulate into it.
  if (channel_index == 0) at_full_capacity_ = false;
  const int64_t cost = protocol_->config().invalidate_cost;
  const int max_batch = protocol_->config().max_invalidate_batch;
  int64_t messages = 0;
  while (true) {
    // Lazy tombstones first: entries whose state left kInvalidateQueued (a
    // pull refilled the replica) are dropped before any budget is spent.
    std::deque<int32_t>& queue = channel->invalidate_queue;
    while (!queue.empty() &&
           channel->invalid_state[queue.front()] != kInvalidateQueued) {
      queue.pop_front();
    }
    if (queue.empty()) break;
    if (!source_link->TryConsumeAllowingDeficit(cost)) {
      at_full_capacity_ = true;
      break;
    }
    Message message;
    message.kind = MessageKind::kInvalidate;
    message.source_index = index_;
    message.cache_id = channel->cache_id;
    message.send_time = now;
    message.cost = cost;
    // Notifications are tiny control traffic: priority-preserving relays
    // move them ahead of queued pushes, like pull responses.
    message.forward_priority = std::numeric_limits<double>::infinity();
    int packed = 0;
    while (packed < max_batch && !queue.empty()) {
      const int32_t slot = queue.front();
      queue.pop_front();
      if (channel->invalid_state[slot] != kInvalidateQueued) continue;
      channel->invalid_state[slot] = kInvalidateSent;
      const ObjectIndex object = channel->members[slot];
      if (packed == 0) {
        message.object_index = object;
      } else {
        message.extra_refreshes.push_back(RefreshPayload{object, 0.0, 0});
      }
      ++packed;
      ++invalidations_sent_;
      if (trace_ != nullptr) {
        RecordTrace(TraceEventKind::kInvalidateSend, now, channel->cache_id,
                    object, /*version=*/0, /*is_pull=*/false);
      }
    }
    channel->last_emit_time = now;
    sink.Deliver(std::move(message));
    ++messages;
  }
  return messages;
}

int64_t SourceAgent::SendRefreshesEventKeyed(Channel* channel, double now,
                                             Link* source_link, const EmitSink& sink) {
  if (config_.max_batch > 1) {
    return SendRefreshesBatched(channel, now, source_link, sink);
  }
  const ChannelEpoch epoch_fn = MakeEpochFn(channel);
  int64_t sent = 0;
  QueueEntry top;
  while (channel->queue.PopValid(epoch_fn, &top)) {
    if (top.key < channel->controller.threshold() || top.key <= 0.0) {
      channel->queue.Restore(top);
      break;
    }
    // Large objects may start transmitting on the last sliver of budget and
    // spill into the next tick (deficit carryover at the link).
    const int64_t cost = harness_->object(top.index).spec->refresh_cost;
    if (!source_link->TryConsumeAllowingDeficit(cost)) {
      channel->queue.Restore(top);
      at_full_capacity_ = true;
      break;
    }
    EmitRefresh(channel, top.index, now, sink, /*bump_threshold=*/true,
                top.key);
    ++sent;
  }
  return sent;
}

int64_t SourceAgent::SendRefreshesBatched(Channel* channel, double now,
                                          Link* source_link, const EmitSink& sink) {
  const ChannelEpoch epoch_fn = MakeEpochFn(channel);
  int64_t messages = 0;
  while (true) {
    // Gather up to max_batch over-threshold objects (reused scratch — the
    // loop runs every tick for every channel).
    std::vector<QueueEntry>& batch = scratch_batch_;
    batch.clear();
    QueueEntry top;
    while (static_cast<int>(batch.size()) < config_.max_batch &&
           channel->queue.PopValid(epoch_fn, &top)) {
      if (top.key < channel->controller.threshold() || top.key <= 0.0) {
        channel->queue.Restore(top);
        break;
      }
      batch.push_back(top);
    }
    if (batch.empty()) break;
    const bool full = static_cast<int>(batch.size()) == config_.max_batch;
    // Partial batches wait (delaying refreshes artificially, Section 10.1)
    // until the flush deadline expires.
    if (!full && now - channel->last_emit_time < config_.max_batch_delay) {
      for (const QueueEntry& entry : batch) channel->queue.Restore(entry);
      break;
    }
    if (!source_link->TryConsumeAllowingDeficit(1)) {
      for (const QueueEntry& entry : batch) channel->queue.Restore(entry);
      at_full_capacity_ = true;
      break;
    }
    EmitBatch(channel, batch, now, sink);
    ++messages;
    if (!full) break;  // the queue is drained below the batch size
  }
  return messages;
}

int64_t SourceAgent::SendSecondary(double now, int64_t max_count, Link* source_link,
                                   Link* cache_link, int channel_index) {
  BESYNC_CHECK(secondary_enabled_);
  Channel* channel = &channels_[channel_index];
  const ChannelEpoch epoch_fn = MakeEpochFn(channel);
  const EmitSink sink{cache_link, nullptr};
  int64_t sent = 0;
  QueueEntry top;
  while (sent < max_count && channel->secondary_queue.PopValid(epoch_fn, &top)) {
    if (top.key <= 0.0) {
      channel->secondary_queue.Restore(top);
      break;
    }
    const int64_t cost = harness_->object(top.index).spec->refresh_cost;
    if (!source_link->TryConsumeAllowingDeficit(cost)) {
      channel->secondary_queue.Restore(top);
      at_full_capacity_ = true;
      break;
    }
    EmitRefresh(channel, top.index, now, sink, /*bump_threshold=*/false,
                top.key);
    ++sent;
  }
  return sent;
}

int64_t SourceAgent::SendRefreshesTimeVarying(Channel* channel, double now,
                                              Link* source_link, const EmitSink& sink) {
  const ChannelEpoch epoch_fn = MakeEpochFn(channel);
  // Collect all wake-ups that are due and compute their live priorities
  // (reused scratch; the unstable sort below is over exactly the same
  // entries in the same pre-sort order as a fresh vector would hold).
  std::vector<QueueEntry>& due = scratch_due_;
  due.clear();
  QueueEntry entry;
  while (channel->wake_queue.PopDue(now, epoch_fn, &entry)) {
    entry.key = ChannelPriority(*channel, entry.index, now);
    due.push_back(entry);
  }
  std::sort(due.begin(), due.end(),
            [](const QueueEntry& a, const QueueEntry& b) { return a.key > b.key; });

  int64_t sent = 0;
  for (size_t k = 0; k < due.size(); ++k) {
    const QueueEntry& candidate = due[k];
    const bool over_threshold =
        candidate.key >= channel->controller.threshold() && candidate.key > 0.0;
    const int64_t cost = harness_->object(candidate.index).spec->refresh_cost;
    if (over_threshold && !at_full_capacity_ &&
        source_link->TryConsumeAllowingDeficit(cost)) {
      EmitRefresh(channel, candidate.index, now, sink, /*bump_threshold=*/true,
                  candidate.key);
      ++sent;
      PushWake(channel, candidate.index, now);  // re-arm from the new t_last
      continue;
    }
    if (over_threshold) at_full_capacity_ = true;
    // Not sent: re-check no earlier than the next tick, or at the newly
    // predicted crossing if that is later.
    const PriorityContext context =
        MakeContext(*channel, candidate.index, now, /*use_source_weight=*/false);
    const double cross =
        policy_->ThresholdCrossTime(context, channel->controller.threshold(), now);
    if (!std::isfinite(cross)) continue;
    channel->wake_queue.Push(std::max(cross, now + tick_length_), candidate.index,
                             candidate.epoch);
  }
  return sent;
}

}  // namespace besync
