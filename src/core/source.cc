#include "core/source.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "util/logging.h"

namespace besync {

SourceAgent::SourceAgent(int index, const SourceAgentConfig& config,
                         double expected_feedback_period, const PriorityPolicy* policy,
                         Harness* harness)
    : index_(index),
      config_(config),
      policy_(policy),
      harness_(harness),
      controller_(config.threshold, expected_feedback_period, /*start_time=*/0.0) {
  BESYNC_CHECK(policy != nullptr);
  BESYNC_CHECK(harness != nullptr);
}

void SourceAgent::AddObject(ObjectIndex index) {
  if (members_.empty()) {
    first_member_ = index;
  } else {
    BESYNC_CHECK_EQ(index, first_member_ + static_cast<ObjectIndex>(members_.size()))
        << "source objects must be contiguous";
  }
  members_.push_back(index);
  locals_.emplace_back();
}

SourceAgent::LocalState& SourceAgent::local(ObjectIndex index) {
  BESYNC_DCHECK(index >= first_member_);
  BESYNC_DCHECK(index < first_member_ + static_cast<ObjectIndex>(members_.size()));
  return locals_[index - first_member_];
}

const SourceAgent::LocalState& SourceAgent::local(ObjectIndex index) const {
  return locals_[index - first_member_];
}

EpochFn SourceAgent::MakeEpochFn() const {
  return [this](ObjectIndex index) { return CurrentEpoch(index); };
}

PriorityContext SourceAgent::MakeContext(ObjectIndex index, double now,
                                         bool use_source_weight) const {
  const ObjectRuntime& object = harness_->object(index);
  PriorityContext context;
  context.tracker = &object.tracker;
  context.weight = use_source_weight ? harness_->SourceWeightAt(index, now)
                                     : harness_->WeightAt(index, now);
  if (config_.cost_aware_priority && object.spec->refresh_cost > 1) {
    // Section 10.1: non-uniform costs enter the weight inversely.
    context.weight /= static_cast<double>(object.spec->refresh_cost);
  }
  context.max_divergence_rate = object.spec->max_divergence_rate;
  context.history_rate = local(index).history.rate();
  context.lambda_estimate = EstimateLambda(
      config_.lambda_mode, object.spec->lambda, object.state.version, now,
      object.tracker.updates_since_refresh(), now - object.tracker.last_refresh_time());
  return context;
}

double SourceAgent::ComputePriority(ObjectIndex index, double now) const {
  return policy_->Priority(MakeContext(index, now, /*use_source_weight=*/false), now);
}

double SourceAgent::ComputeSourcePriority(ObjectIndex index, double now) const {
  return policy_->Priority(MakeContext(index, now, /*use_source_weight=*/true), now);
}

void SourceAgent::Start(Simulation* sim, double tick_length) {
  sim_ = sim;
  tick_length_ = tick_length;
  if (policy_->time_varying()) {
    for (ObjectIndex index : members_) PushWake(index, 0.0);
  }
  if (config_.monitor == MonitorMode::kSampling) {
    Rng* rng = harness_->scheduler_rng();
    for (ObjectIndex index : members_) {
      // Stagger initial samples so sampling load is spread over time.
      const double offset = rng->Uniform(0.0, config_.sampling_interval);
      sim->ScheduleAt(offset, [this, index](double t) { OnSampleEvent(index, t, sim_); });
    }
  }
}

void SourceAgent::OnObjectUpdate(ObjectIndex index, double t) {
  if (config_.monitor == MonitorMode::kSampling) return;  // source is blind
  if (policy_->time_varying()) {
    if (policy_->update_sensitive()) {
      // The update may have moved the threshold crossing earlier; re-arm.
      ++local(index).epoch;
      PushWake(index, t);
    }
    return;
  }
  LocalState& state = local(index);
  ++state.epoch;
  queue_.Push(ComputePriority(index, t), index, state.epoch);
  if (secondary_enabled_) {
    secondary_queue_.Push(ComputeSourcePriority(index, t), index, state.epoch);
  }
  MaybeCompact();
}

void SourceAgent::MaybeCompact() {
  const size_t trigger = 4 * members_.size() + 64;
  if (queue_.size() > trigger) queue_.Compact(MakeEpochFn());
  if (secondary_enabled_ && secondary_queue_.size() > trigger) {
    secondary_queue_.Compact(MakeEpochFn());
  }
}

void SourceAgent::OnSampleEvent(ObjectIndex index, double t, Simulation* sim) {
  LocalState& state = local(index);
  // Direct measurement: the source compares its live value against the copy
  // it last shipped — exactly what the exact tracker's current divergence is.
  const double divergence = harness_->object(index).tracker.current_divergence();
  state.sampled.AddSample(t, divergence);
  ++state.epoch;
  const double weight = harness_->WeightAt(index, t);
  queue_.Push(state.sampled.EstimatedPriority(t) * weight, index, state.epoch);
  MaybeCompact();
  ScheduleNextSample(index, t, sim);
}

void SourceAgent::ScheduleNextSample(ObjectIndex index, double now, Simulation* sim) {
  double next = now + config_.sampling_interval;
  if (config_.predictive_sampling) {
    const LocalState& state = local(index);
    const double weight = harness_->WeightAt(index, now);
    const double predicted =
        state.sampled.PredictCrossTime(controller_.threshold(), weight, now);
    // Sample "somewhat before" the predicted crossing, but never more often
    // than the minimum gap and never later than the base interval.
    const double candidate = std::max(now + config_.min_sampling_gap, predicted * 0.95);
    next = std::min(next, candidate);
  }
  sim->ScheduleAt(next, [this, index](double t) { OnSampleEvent(index, t, sim_); });
}

void SourceAgent::OnFeedback(const Message& message, double t) {
  controller_.OnFeedback(t, at_full_capacity_);
  if (message.granted_rate > 0.0) granted_rate_ = message.granted_rate;
  if (policy_->time_varying()) {
    // The threshold may have dropped: re-arm wake-ups so crossings that are
    // now earlier are not missed.
    for (ObjectIndex index : members_) {
      ++local(index).epoch;
      PushWake(index, t);
    }
  }
}

void SourceAgent::PushWake(ObjectIndex index, double now) {
  const PriorityContext context = MakeContext(index, now, /*use_source_weight=*/false);
  const double cross =
      policy_->ThresholdCrossTime(context, controller_.threshold(), now);
  if (!std::isfinite(cross)) return;
  wake_queue_.Push(cross, index, local(index).epoch);
}

void SourceAgent::EmitRefresh(ObjectIndex index, double now, Link* cache_link,
                              bool bump_threshold) {
  // Record the finishing interval's realized divergence rate before the
  // tracker resets (feeds the history-extended policy).
  {
    const DivergenceTracker& tracker = harness_->object(index).tracker;
    local(index).history.OnRefresh(now - tracker.last_refresh_time(),
                                   tracker.IntegralTo(now));
  }
  Message message = harness_->MakeRefreshMessage(index, now);
  if (config_.monitor == MonitorMode::kSampling) {
    local(index).sampled.OnRefresh(now);
  }
  if (bump_threshold) controller_.OnRefreshSent(now);
  // Piggyback the current (post-increase) threshold: the freshest
  // information the cache can have about this source.
  message.piggyback_threshold = controller_.threshold();
  cache_link->Enqueue(message);
  ++local(index).epoch;
  ++refreshes_sent_;
  last_emit_time_ = now;
}

void SourceAgent::EmitBatch(const std::vector<QueueEntry>& batch, double now,
                            Link* cache_link) {
  BESYNC_DCHECK(!batch.empty());
  Message message;
  for (size_t k = 0; k < batch.size(); ++k) {
    const ObjectIndex index = batch[k].index;
    {
      const DivergenceTracker& tracker = harness_->object(index).tracker;
      local(index).history.OnRefresh(now - tracker.last_refresh_time(),
                                     tracker.IntegralTo(now));
    }
    if (config_.monitor == MonitorMode::kSampling) {
      local(index).sampled.OnRefresh(now);
    }
    if (k == 0) {
      message = harness_->MakeRefreshMessage(index, now);
    } else {
      const Message part = harness_->MakeRefreshMessage(index, now);
      message.extra_refreshes.push_back(
          RefreshPayload{part.object_index, part.value, part.version});
    }
    ++local(index).epoch;
    ++refreshes_sent_;
  }
  // The whole batch travels as one unit-cost message — the amortization.
  message.cost = 1;
  controller_.OnRefreshSent(now);
  message.piggyback_threshold = controller_.threshold();
  cache_link->Enqueue(message);
  last_emit_time_ = now;
}

int64_t SourceAgent::SendRefreshes(double now, Link* source_link, Link* cache_link) {
  at_full_capacity_ = false;
  if (policy_->time_varying()) {
    return SendRefreshesTimeVarying(now, source_link, cache_link);
  }
  return SendRefreshesEventKeyed(now, source_link, cache_link);
}

int64_t SourceAgent::SendRefreshesEventKeyed(double now, Link* source_link,
                                             Link* cache_link) {
  if (config_.max_batch > 1) return SendRefreshesBatched(now, source_link, cache_link);
  const EpochFn epoch_fn = MakeEpochFn();
  int64_t sent = 0;
  QueueEntry top;
  while (queue_.PopValid(epoch_fn, &top)) {
    if (top.key < controller_.threshold() || top.key <= 0.0) {
      queue_.Restore(top);
      break;
    }
    // Large objects may start transmitting on the last sliver of budget and
    // spill into the next tick (deficit carryover at the link).
    const int64_t cost = harness_->object(top.index).spec->refresh_cost;
    if (!source_link->TryConsumeAllowingDeficit(cost)) {
      queue_.Restore(top);
      at_full_capacity_ = true;
      break;
    }
    EmitRefresh(top.index, now, cache_link, /*bump_threshold=*/true);
    ++sent;
  }
  return sent;
}

int64_t SourceAgent::SendRefreshesBatched(double now, Link* source_link,
                                          Link* cache_link) {
  const EpochFn epoch_fn = MakeEpochFn();
  int64_t messages = 0;
  while (true) {
    // Gather up to max_batch over-threshold objects.
    std::vector<QueueEntry> batch;
    QueueEntry top;
    while (static_cast<int>(batch.size()) < config_.max_batch &&
           queue_.PopValid(epoch_fn, &top)) {
      if (top.key < controller_.threshold() || top.key <= 0.0) {
        queue_.Restore(top);
        break;
      }
      batch.push_back(top);
    }
    if (batch.empty()) break;
    const bool full = static_cast<int>(batch.size()) == config_.max_batch;
    // Partial batches wait (delaying refreshes artificially, Section 10.1)
    // until the flush deadline expires.
    if (!full && now - last_emit_time_ < config_.max_batch_delay) {
      for (const QueueEntry& entry : batch) queue_.Restore(entry);
      break;
    }
    if (!source_link->TryConsumeAllowingDeficit(1)) {
      for (const QueueEntry& entry : batch) queue_.Restore(entry);
      at_full_capacity_ = true;
      break;
    }
    EmitBatch(batch, now, cache_link);
    ++messages;
    if (!full) break;  // the queue is drained below the batch size
  }
  return messages;
}

int64_t SourceAgent::SendSecondary(double now, int64_t max_count, Link* source_link,
                                   Link* cache_link) {
  BESYNC_CHECK(secondary_enabled_);
  const EpochFn epoch_fn = MakeEpochFn();
  int64_t sent = 0;
  QueueEntry top;
  while (sent < max_count && secondary_queue_.PopValid(epoch_fn, &top)) {
    if (top.key <= 0.0) {
      secondary_queue_.Restore(top);
      break;
    }
    const int64_t cost = harness_->object(top.index).spec->refresh_cost;
    if (!source_link->TryConsumeAllowingDeficit(cost)) {
      secondary_queue_.Restore(top);
      at_full_capacity_ = true;
      break;
    }
    EmitRefresh(top.index, now, cache_link, /*bump_threshold=*/false);
    ++sent;
  }
  return sent;
}

int64_t SourceAgent::SendRefreshesTimeVarying(double now, Link* source_link,
                                              Link* cache_link) {
  const EpochFn epoch_fn = MakeEpochFn();
  // Collect all wake-ups that are due and compute their live priorities.
  std::vector<QueueEntry> due;
  QueueEntry entry;
  while (wake_queue_.PopDue(now, epoch_fn, &entry)) {
    entry.key = ComputePriority(entry.index, now);
    due.push_back(entry);
  }
  std::sort(due.begin(), due.end(),
            [](const QueueEntry& a, const QueueEntry& b) { return a.key > b.key; });

  int64_t sent = 0;
  for (size_t k = 0; k < due.size(); ++k) {
    const QueueEntry& candidate = due[k];
    const bool over_threshold =
        candidate.key >= controller_.threshold() && candidate.key > 0.0;
    const int64_t cost = harness_->object(candidate.index).spec->refresh_cost;
    if (over_threshold && !at_full_capacity_ &&
        source_link->TryConsumeAllowingDeficit(cost)) {
      EmitRefresh(candidate.index, now, cache_link, /*bump_threshold=*/true);
      ++sent;
      PushWake(candidate.index, now);  // re-arm from the new t_last
      continue;
    }
    if (over_threshold) at_full_capacity_ = true;
    // Not sent: re-check no earlier than the next tick, or at the newly
    // predicted crossing if that is later.
    const PriorityContext context =
        MakeContext(candidate.index, now, /*use_source_weight=*/false);
    const double cross =
        policy_->ThresholdCrossTime(context, controller_.threshold(), now);
    if (!std::isfinite(cross)) continue;
    wake_queue_.Push(std::max(cross, now + tick_length_), candidate.index,
                     candidate.epoch);
  }
  return sent;
}

}  // namespace besync
