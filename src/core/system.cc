#include "core/system.h"

#include <algorithm>
#include <iterator>

#include "util/logging.h"

namespace besync {
namespace {

/// Split key of send-order child stream 0 ("SORD"); logical shard ls uses
/// kSendOrderSplitKey + ls. Changing it changes every send_order_shards > 0
/// run (the default path never splits).
constexpr uint64_t kSendOrderSplitKey = 0x534F5244ULL;
/// Per-ring slot count of the send-order cross-shard rings. Overflow is
/// handled (spill vectors), so this only tunes how much traffic moves
/// through the lock-free path.
constexpr size_t kSendRingCapacity = 256;

/// Records the kDeliver + kApply pair for a refresh-shaped message (primary
/// payload and batch mates). Lives at the apply site — the one point with an
/// identical per-cache message order in the serial and sharded engines — so
/// trace bytes are independent of run_threads; kDeliver and kApply share the
/// timestamp because the engine applies at arrival.
void RecordDeliveryTrace(TraceBuffer* trace, const Message& message, double t) {
  TraceEvent event;
  event.t = t;
  event.source = message.source_index;
  event.cache = message.cache_id;
  event.object = message.object_index;
  event.version = message.version;
  event.is_pull = message.is_pull;
  event.kind = TraceEventKind::kDeliver;
  trace->Record(event);
  event.kind = TraceEventKind::kApply;
  trace->Record(event);
  for (const RefreshPayload& payload : message.extra_refreshes) {
    event.object = payload.object_index;
    event.version = payload.version;
    event.kind = TraceEventKind::kDeliver;
    trace->Record(event);
    event.kind = TraceEventKind::kApply;
    trace->Record(event);
  }
}

}  // namespace

CooperativeScheduler::CooperativeScheduler(const CooperativeConfig& config)
    : config_(config),
      policy_(MakePolicy(config.policy, config.history_beta)),
      protocol_(SyncProtocol::Make(config.protocol)) {
  // Scheduler-level tallies live in the metrics registry: registered once
  // here, bumped at exactly one site each, and zeroed wholesale by
  // metrics_.Reset() (Initialize and the measurement-start reset) — so the
  // reset can never silently miss a newly added counter.
  relay_control_moved_ = metrics_.AddCounter("relay_control_moved");
  cache_crashes_ = metrics_.AddCounter("cache_crashes");
  cache_restarts_ = metrics_.AddCounter("cache_restarts");
  relay_failures_ = metrics_.AddCounter("relay_failures");
  link_down_events_ = metrics_.AddCounter("link_down_events");
  slowdown_events_ = metrics_.AddCounter("slowdown_events");
  resync_deliveries_ = metrics_.AddCounter("resync_deliveries");
  // Restart-to-fully-refilled durations of completed resync episodes.
  resync_digest_ = metrics_.AddHistogram("time_to_resync");
}

void CooperativeScheduler::Initialize(Harness* harness) {
  harness_ = harness;
  const Workload& workload = harness->workload();
  const int m = workload.num_sources;
  const double tick = harness->config().tick_length;
  const int num_caches = std::max(config_.num_caches, workload.num_caches);

  // The config's topology wins over the workload's; both default to flat —
  // the historical one-hop star.
  const TopologySpec& topology =
      !config_.topology.flat() ? config_.topology : workload.topology;
  if (!topology.flat()) {
    const Status status = topology.Validate(num_caches);
    BESYNC_CHECK(status.ok()) << status.ToString();
  }

  NetworkConfig net_config;
  net_config.num_sources = m;
  net_config.num_caches = num_caches;
  net_config.cache_bandwidth_avg = config_.cache_bandwidth_avg;
  net_config.cache_bandwidth_overrides = config_.cache_bandwidths;
  net_config.source_bandwidth_avg = config_.source_bandwidth_avg;
  net_config.bandwidth_change_rate = config_.bandwidth_change_rate;
  net_config.topology = topology;
  network_ = std::make_unique<Network>(net_config, harness->scheduler_rng());
  // Leaf-edge loss first, in cache order — the historical RNG consumption —
  // then relay-edge loss (extra draws only on lossy relay edges, so a
  // pass-through tree leaves the seed stream untouched).
  for (int c = 0; c < num_caches; ++c) {
    const double rate =
        topology.EdgeValue(topology.edge_loss, c, config_.loss_rate);
    if (rate > 0.0) {
      network_->cache_link(c).SetLossRate(rate,
                                          harness->scheduler_rng()->NextUint64());
    }
  }
  relays_.clear();
  for (int n = num_caches; n < network_->num_nodes(); ++n) {
    const double rate = topology.EdgeValue(topology.edge_loss, n, 0.0);
    if (rate > 0.0) {
      network_->edge_link(n).SetLossRate(rate,
                                         harness->scheduler_rng()->NextUint64());
    }
    relays_.push_back(std::make_unique<RelayAgent>(
        n, config_.relay_forward, topology.EdgeValue(topology.edge_latency, n, 0.0)));
  }

  sources_by_cache_ = SourcesByCache(workload);
  sources_by_cache_.resize(static_cast<size_t>(num_caches));
  RebuildSourcesByNode();

  // The effective fault schedule: the config's wins over the workload's
  // (mirroring the topology rule); empty keeps every fault hook cold.
  const FaultSchedule& faults =
      !config_.faults.empty() ? config_.faults : workload.faults;
  fault_events_ = faults.Sorted();
  fault_cursor_ = 0;
  cache_down_.clear();
  resync_.clear();
  if (!fault_events_.empty()) {
    const Status fault_status = faults.Validate(topology, num_caches);
    BESYNC_CHECK(fault_status.ok()) << fault_status.ToString();
    cache_down_.assign(static_cast<size_t>(num_caches), 0);
    resync_.assign(static_cast<size_t>(num_caches), ResyncState{});
  }
  metrics_.Reset();

  // The paper's P_feedback estimate, per cache: sources interested in the
  // cache / the cache's average bandwidth. Floored at one tick: feedback is
  // delivered at tick granularity, so a shorter expected period would
  // spuriously trigger the flooding accelerator in every steady-state tick.
  std::vector<double> feedback_periods(static_cast<size_t>(num_caches), 0.0);
  for (int c = 0; c < num_caches; ++c) {
    if (config_.expected_feedback_period > 0.0) {
      feedback_periods[c] = config_.expected_feedback_period;
      continue;
    }
    const double bandwidth = network_->cache_link(c).average_bandwidth();
    const double interested = static_cast<double>(sources_by_cache_[c].size());
    feedback_periods[c] =
        interested > 0.0 ? std::max(interested / bandwidth, tick) : tick;
  }

  caches_.clear();
  caches_.reserve(num_caches);
  for (int c = 0; c < num_caches; ++c) {
    // A cache no source is interested in stays idle (null agent).
    caches_.push_back(sources_by_cache_[c].empty()
                          ? nullptr
                          : std::make_unique<CacheAgent>(c, sources_by_cache_[c]));
  }

  sources_.clear();
  sources_.reserve(m);
  for (int j = 0; j < m; ++j) {
    sources_.push_back(std::make_unique<SourceAgent>(
        j, config_.source, feedback_periods[0], policy_.get(), harness));
    sources_[j]->SetFeedbackPeriods(feedback_periods);
  }

  object_source_.resize(workload.objects.size());
  for (size_t i = 0; i < workload.objects.size(); ++i) {
    const int32_t j = workload.objects[i].source_index;
    object_source_[i] = j;
    sources_[j]->AddObject(static_cast<ObjectIndex>(i));
  }
  for (auto& source : sources_) {
    source->SetSyncProtocol(protocol_.get());
    source->Start(&harness->simulation(), tick);
  }

  source_order_.resize(m);
  for (int j = 0; j < m; ++j) source_order_[j] = j;

  // The client read side: per-cache streams, stores and pull bookkeeping.
  // Inert — no RNG created, no stream state — unless the workload
  // configures reads, a finite tier capacity, a validity-tracking
  // protocol (invalidation / TTL state lives next to residency), or a
  // fault schedule with cache crashes (crashes flow through the stores).
  bool has_cache_faults = false;
  for (const FaultEvent& event : fault_events_) {
    if (event.kind == FaultEventKind::kCacheCrash) {
      has_cache_faults = true;
      break;
    }
  }
  read_path_.Initialize(harness, num_caches, protocol_.get(), has_cache_faults);

  resync_notes_.clear();
  if (!fault_events_.empty()) {
    resync_notes_.assign(static_cast<size_t>(num_caches), ResyncNote{});
  }

  // Intra-run sharding team. The sharded phases are bitwise identical to
  // the sequential ones (see SendPhaseSharded / ApplyDeliveriesSharded),
  // so run_threads is a pure throughput knob. The team is clamped to the
  // widest shardable axis: lanes past it would get empty ShardRange slices
  // and idle through every barrier (see ShardPool::ShardRange).
  shard_pool_.reset();
  send_rings_.clear();
  send_spill_.clear();
  send_order_rngs_.clear();
  send_order_sources_.clear();
  const int team =
      std::min(config_.run_threads,
               std::max({m, num_caches, network_->num_nodes()}));
  if (team > 1) {
    shard_pool_ = std::make_unique<ShardPool>(team);
    deliver_buffers_.assign(static_cast<size_t>(num_caches), {});
  }
  if (shard_pool_ != nullptr || config_.send_order_shards > 0) {
    send_buffers_.assign(static_cast<size_t>(m), {});
  }
  if (config_.send_order_shards > 0) {
    const int order_shards = config_.send_order_shards;
    send_order_rngs_.reserve(static_cast<size_t>(order_shards));
    send_order_sources_.resize(static_cast<size_t>(order_shards));
    for (int ls = 0; ls < order_shards; ++ls) {
      // Child streams are keyed by the LOGICAL shard id, never the lane:
      // the draws each shard makes are pinned regardless of run_threads.
      send_order_rngs_.push_back(harness->scheduler_rng()->Split(
          kSendOrderSplitKey + static_cast<uint64_t>(ls)));
      const auto range =
          ShardPool::ShardRange(static_cast<int64_t>(m), ls, order_shards);
      std::vector<int>& list = send_order_sources_[ls];
      list.clear();
      list.reserve(static_cast<size_t>(range.second - range.first));
      for (int64_t j = range.first; j < range.second; ++j) {
        list.push_back(static_cast<int>(j));
      }
    }
    if (shard_pool_ != nullptr) {
      const size_t rings = static_cast<size_t>(order_shards) *
                           static_cast<size_t>(shard_pool_->num_shards());
      send_rings_.reserve(rings);
      for (size_t i = 0; i < rings; ++i) {
        send_rings_.push_back(
            std::make_unique<SpscRing<Message>>(kSendRingCapacity));
      }
      send_spill_.assign(rings, {});
    }
  }

  // Observability (config_.obs.enabled only): build the collector, fix the
  // time-series columns, and hand every recording site its per-entity trace
  // buffer. Disabled, nothing is allocated and every hook in the engine
  // stays a single cold null test.
  obs_.reset();
  obs_row_.clear();
  if (config_.obs.enabled) {
    obs_ = std::make_unique<ObsCollector>(config_.obs, m, num_caches,
                                          static_cast<int>(relays_.size()), tick);
    std::vector<std::string> columns;
    columns.push_back("total_weighted_divergence");
    const int per_cache = std::min(num_caches, config_.obs.max_per_cache_series);
    for (int c = 0; c < per_cache; ++c) {
      columns.push_back("cache_divergence_" + std::to_string(c));
    }
    columns.push_back("source_queue_depth");
    columns.push_back("recovery_queue_depth");
    columns.push_back("link_queue");
    columns.push_back("link_deficit");
    columns.push_back("link_utilization");
    columns.push_back("relay_store");
    columns.push_back("reads");
    columns.push_back("read_hits");
    columns.push_back("staleness_mean");
    columns.push_back("pending_pulls");
    columns.push_back("resync_outstanding");
    if (config_.obs.sample_phase_nanos && config_.phase_timer != nullptr) {
      // Opt-in wall-clock columns: nondeterministic by nature, so they are
      // never part of the byte-stable default schema.
      for (int p = 0; p < PhaseTimer::kNumPhases; ++p) {
        columns.push_back(std::string("phase_") +
                          PhaseTimer::Name(static_cast<PhaseTimer::Phase>(p)) +
                          "_nanos");
      }
    }
    obs_->series()->Configure(std::move(columns), config_.obs.sample_interval,
                              config_.obs.max_samples);
    obs_row_.assign(obs_->series()->columns().size(), 0.0);
    if (obs_->trace_enabled()) {
      for (int j = 0; j < m; ++j) {
        sources_[j]->SetTraceBuffer(obs_->source_buffer(j));
      }
      std::vector<TraceBuffer*> cache_buffers(static_cast<size_t>(num_caches));
      for (int c = 0; c < num_caches; ++c) {
        cache_buffers[c] = obs_->cache_buffer(c);
        network_->cache_link(c).SetTrace(obs_->cache_buffer(c), c);
      }
      read_path_.SetTraceBuffers(std::move(cache_buffers));
      for (size_t r = 0; r < relays_.size(); ++r) {
        TraceBuffer* buffer = obs_->relay_buffer(static_cast<int>(r));
        relays_[r]->SetTraceBuffer(buffer);
        network_->edge_link(relays_[r]->node_id()).SetTrace(buffer,
                                                            relays_[r]->node_id());
      }
    }
    if (config_.phase_timer != nullptr) {
      obs_prev_phase_ = config_.phase_timer->TakeSnapshot();
    }
  }
}

void CooperativeScheduler::OnObjectUpdate(ObjectIndex index, double t) {
  sources_[object_source_[index]]->OnObjectUpdate(index, t);
}

CacheAgent& CooperativeScheduler::cache(int c) {
  BESYNC_CHECK(caches_[c] != nullptr)
      << "cache " << c << " has no interested sources (no agent)";
  return *caches_[c];
}

RelayAgent& CooperativeScheduler::relay(int32_t node) {
  const int offset = node - num_caches();
  BESYNC_CHECK_GE(offset, 0);
  BESYNC_CHECK_LT(offset, num_relays());
  return *relays_[offset];
}

void CooperativeScheduler::FillFeedback(Message* /*feedback*/, int /*source_index*/,
                                        double /*t*/) {}

void CooperativeScheduler::SendPhase(double t) {
  if (config_.send_order_shards > 0) {
    SendPhaseShardOrdered(t, /*invalidations=*/false);
    return;
  }
  if (shard_pool_ != nullptr) {
    SendPhaseSharded(t);
    return;
  }
  // Random source visiting order so no source systematically wins the race
  // for queue positions on a shared cache link.
  harness_->scheduler_rng()->Shuffle(&source_order_);
  for (int j : source_order_) {
    SourceAgent& agent = *sources_[j];
    Link* source_link = &network_->source_link(j);
    for (int k = 0; k < agent.num_channels(); ++k) {
      // Refreshes enter the network at the cache's tier-1 ancestor edge
      // (the cache link itself when flat) and are relayed the rest of the
      // way by the relay phase.
      agent.SendRefreshes(t, source_link,
                          &network_->first_hop_link(agent.channel_cache_id(k)), k);
    }
  }
}

void CooperativeScheduler::SendPhaseSharded(double t) {
  // Compute: each shard owns a contiguous source-id slice. A source's
  // emission decisions depend only on its own state (queues, trackers,
  // controllers, its source link) — never on what other sources emitted
  // this tick — so the partition may ignore the shuffled visiting order.
  // The shuffle itself runs as a prelude overlapped with the workers: it
  // draws from the scheduler RNG on the main thread (the same stream
  // position as the serial phase — the buffered emissions draw nothing)
  // and writes source_order_, which only the post-barrier flush reads.
  shard_pool_->Run(
      [this, t](int shard) {
        const auto range = ShardPool::ShardRange(
            static_cast<int64_t>(sources_.size()), shard, shard_pool_->num_shards());
        for (int64_t j = range.first; j < range.second; ++j) {
          SourceAgent& agent = *sources_[j];
          std::vector<Message>& buffer = send_buffers_[j];
          Link* source_link = &network_->source_link(static_cast<int>(j));
          for (int k = 0; k < agent.num_channels(); ++k) {
            agent.SendRefreshesBuffered(t, source_link, &buffer, k);
          }
        }
      },
      [this] { harness_->scheduler_rng()->Shuffle(&source_order_); });
  // Flush: enqueue onto the shared tier-1 edges in the shuffled source
  // order — the exact order the serial phase enqueues in. Within a source
  // the buffer holds its channels' messages in emission order. The flush
  // itself is sharded by first-hop node.
  FlushSendBuffersSharded();
}

void CooperativeScheduler::FlushSendBuffersSharded() {
  const int64_t num_nodes = network_->num_nodes();
  shard_pool_->Run([this, num_nodes](int shard) {
    // Every shard walks the full shuffled order and takes only the
    // messages whose first-hop node it owns: link L sees its messages in
    // the global scan order, and only shard OwnerOf(L) touches L. Reading
    // message.cache_id next to another shard's move is race-free —
    // cache_id and the moved vector header are distinct bytes, and
    // cache_id is never written here.
    const auto range =
        ShardPool::ShardRange(num_nodes, shard, shard_pool_->num_shards());
    for (int j : source_order_) {
      for (Message& message : send_buffers_[j]) {
        const int32_t node = network_->first_hop(message.cache_id);
        if (node < range.first || node >= range.second) continue;
        network_->first_hop_link(message.cache_id).Enqueue(std::move(message));
      }
    }
  });
  for (int j : source_order_) send_buffers_[j].clear();
}

void CooperativeScheduler::SendInvalidationPhase(double t) {
  // Same fairness and determinism contract as the refresh send phase: the
  // visiting order is shuffled (invalidations race for shared tier-1 edge
  // queue positions exactly like refreshes), the sharded mode overlaps the
  // shuffle with the buffered per-source drains, and the buffers flush in
  // the shuffled order.
  if (config_.send_order_shards > 0) {
    SendPhaseShardOrdered(t, /*invalidations=*/true);
    return;
  }
  if (shard_pool_ != nullptr) {
    shard_pool_->Run(
        [this, t](int shard) {
          const auto range = ShardPool::ShardRange(
              static_cast<int64_t>(sources_.size()), shard,
              shard_pool_->num_shards());
          for (int64_t j = range.first; j < range.second; ++j) {
            SourceAgent& agent = *sources_[j];
            std::vector<Message>& buffer = send_buffers_[j];
            Link* source_link = &network_->source_link(static_cast<int>(j));
            for (int k = 0; k < agent.num_channels(); ++k) {
              agent.SendInvalidationsBuffered(t, source_link, &buffer, k);
            }
          }
        },
        [this] { harness_->scheduler_rng()->Shuffle(&source_order_); });
    FlushSendBuffersSharded();
    return;
  }
  harness_->scheduler_rng()->Shuffle(&source_order_);
  for (int j : source_order_) {
    SourceAgent& agent = *sources_[j];
    Link* source_link = &network_->source_link(j);
    for (int k = 0; k < agent.num_channels(); ++k) {
      agent.SendInvalidations(t, source_link,
                              &network_->first_hop_link(agent.channel_cache_id(k)),
                              k);
    }
  }
}

void CooperativeScheduler::SendPhaseShardOrdered(double t, bool invalidations) {
  const int order_shards = config_.send_order_shards;
  if (shard_pool_ == nullptr) {
    // Sequential reference: logical shards in ascending order, each
    // shuffling its pinned source slice with its own child stream. The
    // pooled path below reproduces this exact per-link enqueue order.
    for (int ls = 0; ls < order_shards; ++ls) {
      std::vector<int>& order = send_order_sources_[ls];
      send_order_rngs_[ls].Shuffle(&order);
      for (int j : order) {
        SourceAgent& agent = *sources_[j];
        Link* source_link = &network_->source_link(j);
        for (int k = 0; k < agent.num_channels(); ++k) {
          Link* first_hop = &network_->first_hop_link(agent.channel_cache_id(k));
          if (invalidations) {
            agent.SendInvalidations(t, source_link, first_hop, k);
          } else {
            agent.SendRefreshes(t, source_link, first_hop, k);
          }
        }
      }
    }
    return;
  }
  const int lanes = shard_pool_->num_shards();
  const int64_t num_nodes = network_->num_nodes();
  // Produce: lane p serves logical shards ShardRange(order_shards, p,
  // lanes) in ascending order, so every logical shard has exactly one
  // producer and a pinned draw sequence. Each emitted message is routed to
  // the lane owning its first-hop node through ring (ls, d); a full ring
  // spills, preserving order (the consumer side is quiet until the
  // barrier, so ring contents always precede the spill).
  shard_pool_->Run([this, t, invalidations, order_shards, lanes,
                    num_nodes](int p) {
    const auto ls_range = ShardPool::ShardRange(order_shards, p, lanes);
    for (int64_t ls = ls_range.first; ls < ls_range.second; ++ls) {
      std::vector<int>& order = send_order_sources_[ls];
      send_order_rngs_[ls].Shuffle(&order);
      for (int j : order) {
        SourceAgent& agent = *sources_[j];
        std::vector<Message>& buffer = send_buffers_[j];
        Link* source_link = &network_->source_link(j);
        for (int k = 0; k < agent.num_channels(); ++k) {
          if (invalidations) {
            agent.SendInvalidationsBuffered(t, source_link, &buffer, k);
          } else {
            agent.SendRefreshesBuffered(t, source_link, &buffer, k);
          }
        }
        for (Message& message : buffer) {
          const int32_t node = network_->first_hop(message.cache_id);
          const int d = ShardPool::ShardOf(num_nodes, node, lanes);
          const size_t ring =
              static_cast<size_t>(ls) * static_cast<size_t>(lanes) +
              static_cast<size_t>(d);
          if (!send_rings_[ring]->TryPush(std::move(message))) {
            send_spill_[ring].push_back(std::move(message));
          }
        }
        buffer.clear();
      }
    }
  });
  // Merge: lane d drains its ring column in logical-shard-major order —
  // the same ls-ascending, within-ls-shuffled order as the sequential
  // reference — touching only the links of its own node slice.
  shard_pool_->Run([this, order_shards, lanes](int d) {
    for (int ls = 0; ls < order_shards; ++ls) {
      const size_t index =
          static_cast<size_t>(ls) * static_cast<size_t>(lanes) +
          static_cast<size_t>(d);
      SpscRing<Message>& ring = *send_rings_[index];
      Message message;
      while (ring.TryPop(&message)) {
        network_->first_hop_link(message.cache_id).Enqueue(std::move(message));
      }
      for (Message& spilled : send_spill_[index]) {
        network_->first_hop_link(spilled.cache_id).Enqueue(std::move(spilled));
      }
      send_spill_[index].clear();
    }
  });
}

void CooperativeScheduler::CollectDeliveriesSharded() {
  shard_pool_->Run([this](int shard) {
    const auto range = ShardPool::ShardRange(
        static_cast<int64_t>(caches_.size()), shard, shard_pool_->num_shards());
    for (int64_t c = range.first; c < range.second; ++c) {
      if (caches_[c] == nullptr) continue;
      network_->cache_link(static_cast<int>(c))
          .CollectDeliverable(&deliver_buffers_[c]);
    }
  });
}

void CooperativeScheduler::ApplyDeliveriesSharded(double t) {
  // Hoist the one cross-cache step of the apply: GroundTruth integrating
  // its running sums up to t. The serial loop does this implicitly inside
  // the FIRST OnCacheApply of the tick — so the hoist must fire exactly
  // when such a first apply exists (a live, agent-bearing cache with a
  // non-invalidate message); advancing on an apply-free tick would split
  // the integration step and change float bits. After the hoist every
  // apply call touches only per-cache state (the inner AdvanceTo sees
  // dt == 0 and writes nothing), so caches can apply concurrently.
  bool any_apply = false;
  for (int c = 0; c < num_caches() && !any_apply; ++c) {
    if (caches_[c] == nullptr) continue;
    if (!cache_down_.empty() && cache_down_[c] != 0) continue;
    for (const Message& message : deliver_buffers_[c]) {
      if (message.kind != MessageKind::kInvalidate) {
        any_apply = true;
        break;
      }
    }
  }
  if (any_apply) harness_->AdvanceGroundTruths(t);
  const bool reads = read_path_.enabled();
  shard_pool_->Run([this, t, reads](int shard) {
    const auto range = ShardPool::ShardRange(
        static_cast<int64_t>(caches_.size()), shard, shard_pool_->num_shards());
    for (int64_t c = range.first; c < range.second; ++c) {
      CacheAgent* cache = caches_[c].get();
      if (cache == nullptr) continue;
      std::vector<Message>& collected = deliver_buffers_[c];
      if (!cache_down_.empty() && cache_down_[c] != 0) {
        // Crashed cache: the wire delivered (budget and loss accounting
        // already happened in the collect half) but the process is gone.
        collected.clear();
        continue;
      }
      const bool track_resync = !resync_.empty() && resync_[c].open;
      TraceBuffer* const trace =
          obs_ != nullptr ? obs_->cache_buffer(static_cast<int>(c)) : nullptr;
      for (const Message& message : collected) {
        if (message.kind == MessageKind::kInvalidate) {
          read_path_.OnInvalidateDelivered(message, t);
        } else {
          if (trace != nullptr) RecordDeliveryTrace(trace, message, t);
          harness_->DeliverRefresh(message, t);
          cache->RecordRefresh(message, t);
          if (reads) read_path_.OnRefreshDelivered(message, t);
          if (track_resync) NoteResyncDelivery(static_cast<int>(c), message, t);
        }
      }
      collected.clear();
    }
  });
}

void CooperativeScheduler::RelayPhase(double t) {
  // Parents before children: with pass-through relays a refresh injected
  // this tick cascades all the way to its leaf edge within the tick.
  for (int32_t node : network_->downstream_relays()) {
    RelayAgent& agent = relay(node);
    network_->edge_link(node).DeliverQueued(
        [&](const Message& message) { agent.OnArrival(message, t); });
    Link* egress = &network_->relay_egress(node);
    agent.Forward(
        t, [egress](int64_t cost) { return egress->TryConsumeAllowingDeficit(cost); },
        [&](const Message& message) {
          const int32_t hop = network_->TryNextHop(node, message.cache_id);
          if (hop >= 0) {
            network_->edge_link(hop).Enqueue(message);
            return;
          }
          // A failover re-homed this leaf while the message sat here (e.g.
          // its old parent recovered), so this relay no longer routes to
          // it. Restart the journey at the leaf's current tier-1 edge.
          network_->first_hop_link(message.cache_id).Enqueue(message);
        });
  }
}

void CooperativeScheduler::Tick(double t) {
  PhaseTimer* const timer = config_.phase_timer;
  {
    PhaseTimer::Scope phase(timer, PhaseTimer::Phase::kBeginTick);

    // 0. Scripted faults due by now fire before the links begin the tick,
    //    so a link partitioned at t has zero budget for the whole tick.
    ApplyDueFaults(t);

    const double tick = harness_->config().tick_length;
    network_->BeginTick(t, tick, shard_pool_.get());

    // 1. Deliver control messages (feedback) that arrived since last tick;
    //    feedback from cache c adjusts T_{j,c} only. In a tree the relays
    //    first pump the mail up to the tier-1 edges (same-tick, so control
    //    latency stays one tick at any depth); flat tier-1 nodes are the
    //    caches themselves and the pump is a no-op.
    relay_control_moved_->Increment(network_->PumpControlUpstream());
    for (int32_t node : network_->tier1_nodes()) {
      for (int32_t j : sources_by_node_[node]) {
        for (const Message& message : network_->TakeSourceMail(node, j)) {
          if (message.kind == MessageKind::kPullRequest) {
            ServePull(message, t);
          } else {
            sources_[j]->OnFeedback(message, t);
          }
        }
      }
    }
  }

  {
    PhaseTimer::Scope phase(timer, PhaseTimer::Phase::kSend);

    // 1b. Recovery refreshes for restarted caches (kRecoveryPriority) go
    //     out ahead of the regular send phase: the cold cache's refill
    //     spends the source budgets first, deferring ordinary pushes.
    if (!fault_events_.empty() &&
        config_.recovery_policy == RecoveryPolicy::kRecoveryPriority) {
      RecoveryPhase(t);
    }

    // 2. Sources emit into the tier-1 edges of their target caches:
    //    refreshes for over-threshold objects (push protocols), pending
    //    invalidation notifications (invalidation), or nothing at all (TTL
    //    — replicas age out with no source traffic, and no send-order
    //    randomness is drawn).
    if (protocol_->emits_push_refreshes()) {
      SendPhase(t);
    } else if (protocol_->emits_invalidations()) {
      SendInvalidationPhase(t);
    }
  }

  // 2b. Relays store-and-forward queued refreshes hop by hop toward the
  //     leaves, each under its own ingress-edge and egress budgets.
  {
    PhaseTimer::Scope phase(timer, PhaseTimer::Phase::kRelay);
    RelayPhase(t);
  }

  // 3. Every cache-side link delivers queued refreshes within its budget.
  //    Sharded mode splits this in two: links pop their deliverable
  //    messages concurrently, then each cache's messages are applied on
  //    the shard owning the cache — cross-cache accumulation is hoisted or
  //    replayed in the serial order (see ApplyDeliveriesSharded), so the
  //    result is bitwise identical to the sequential loop.
  const bool reads = read_path_.enabled();
  {
    PhaseTimer::Scope phase(timer, PhaseTimer::Phase::kDeliverApply);
    if (shard_pool_ != nullptr) {
      CollectDeliveriesSharded();
      ApplyDeliveriesSharded(t);
    } else {
      for (int c = 0; c < num_caches(); ++c) {
        CacheAgent* cache = caches_[c].get();
        if (cache == nullptr) continue;
        if (!cache_down_.empty() && cache_down_[c] != 0) {
          // Crashed cache: the wire still delivers (budget spent, loss
          // drawn, delivery counted) but every message is lost at the dead
          // process.
          network_->cache_link(c).DeliverQueued([](const Message&) {});
          continue;
        }
        const bool track_resync = !resync_.empty() && resync_[c].open;
        TraceBuffer* const trace =
            obs_ != nullptr ? obs_->cache_buffer(c) : nullptr;
        network_->cache_link(c).DeliverQueued([&](const Message& message) {
          if (message.kind == MessageKind::kInvalidate) {
            read_path_.OnInvalidateDelivered(message, t);
          } else {
            if (trace != nullptr) RecordDeliveryTrace(trace, message, t);
            harness_->DeliverRefresh(message, t);
            cache->RecordRefresh(message, t);
            if (reads) read_path_.OnRefreshDelivered(message, t);
            if (track_resync) NoteResyncDelivery(c, message, t);
          }
        });
      }
    }
    // Both branches record global-counter contributions into per-cache
    // scratch; drain it in ascending cache order (the serial accumulation
    // sequence) now that the applies are done.
    read_path_.FlushDeliveryCounters();
    DrainResyncNotes();
  }

  // 3b. Client reads up to this tick are served from the (just refreshed)
  //     caches; misses queue pull requests, which then go upstream within
  //     each leaf edge's remaining budget — after this tick's deliveries,
  //     ahead of the surplus feedback below.
  if (reads) {
    PhaseTimer::Scope phase(timer, PhaseTimer::Phase::kReadPath);
    read_path_.ProcessReads(t);
    read_path_.SendPullRequests(t, network_.get());
  }

  // 4. Surplus cache-side bandwidth becomes positive feedback, aimed per
  //    cache at the sources with the highest local thresholds there. Only
  //    the push protocols run it: invalidation / TTL sources have no
  //    thresholds to steer, so feedback would spend bandwidth on nothing.
  {
    PhaseTimer::Scope feedback_phase(timer, PhaseTimer::Phase::kFeedback);
    if (protocol_->emits_push_refreshes()) {
      for (int c = 0; c < num_caches(); ++c) {
        CacheAgent* cache = caches_[c].get();
        if (cache == nullptr) continue;
        // A dead process sends no feedback.
        if (!cache_down_.empty() && cache_down_[c] != 0) continue;
        const int64_t surplus = network_->cache_link(c).remaining_budget();
        if (surplus <= 0) continue;
        const std::vector<int> targets = cache->SelectFeedbackTargets(surplus, t);
        for (int j : targets) {
          // Feedback consumes the (otherwise idle) surplus capacity.
          const int64_t granted = network_->cache_link(c).ConsumeBudget(1);
          BESYNC_DCHECK(granted == 1);
          Message feedback;
          feedback.kind = MessageKind::kFeedback;
          feedback.source_index = j;
          feedback.send_time = t;
          FillFeedback(&feedback, j, t);
          network_->SendToSource(c, j, feedback);
        }
      }
    }
  }

  // 5. End-of-tick observability: register the tick on the phase-slice
  //    grid and sample the time series when one is due. Runs after every
  //    phase so the sampled state is the tick's final state; reads only
  //    const accessors and draws no randomness (DESIGN.md, "Observability
  //    without perturbation").
  if (obs_ != nullptr) ObsOnTickEnd(t);
}

void CooperativeScheduler::RebuildSourcesByNode() {
  // Per-node interested sources: a relay's list is the sorted union over
  // its (live) subtree's leaves. Built children-before-parents — the
  // reverse of the downstream order — so each child is final before its
  // parent merges it; a dead relay keeps an empty list and is skipped by
  // the control pump anyway.
  sources_by_node_.assign(static_cast<size_t>(network_->num_nodes()), {});
  for (int c = 0; c < network_->num_caches(); ++c) {
    sources_by_node_[c] = sources_by_cache_[c];
  }
  const std::vector<int32_t>& downstream = network_->downstream_relays();
  for (auto it = downstream.rbegin(); it != downstream.rend(); ++it) {
    std::vector<int32_t>& merged = sources_by_node_[*it];
    for (int32_t child : network_->children(*it)) {
      std::vector<int32_t> combined;
      std::set_union(merged.begin(), merged.end(), sources_by_node_[child].begin(),
                     sources_by_node_[child].end(), std::back_inserter(combined));
      merged = std::move(combined);
    }
  }
}

void CooperativeScheduler::ApplyDueFaults(double t) {
  while (fault_cursor_ < fault_events_.size() &&
         fault_events_[fault_cursor_].time <= t) {
    ApplyFaultEvent(fault_events_[fault_cursor_], t);
    ++fault_cursor_;
  }
}

void CooperativeScheduler::ApplyFaultEvent(const FaultEvent& event, double t) {
  if (obs_ != nullptr && obs_->main_buffer() != nullptr) {
    // Scripted faults are run-level events: they go to the main buffer,
    // stamped with the target node (also mirrored into `cache` for cache
    // faults so cache-filtered traces keep their fault context).
    TraceEvent trace;
    trace.kind = TraceEventKind::kFault;
    trace.t = t;
    trace.node = event.node;
    trace.aux = static_cast<int64_t>(event.kind);
    trace.value = event.factor;
    if (event.kind == FaultEventKind::kCacheCrash ||
        event.kind == FaultEventKind::kCacheRestart ||
        event.kind == FaultEventKind::kLinkDown ||
        event.kind == FaultEventKind::kLinkUp ||
        event.kind == FaultEventKind::kSlowDown ||
        event.kind == FaultEventKind::kSlowRecover) {
      trace.cache = event.node;
    }
    obs_->main_buffer()->Record(trace);
  }
  switch (event.kind) {
    case FaultEventKind::kCacheCrash: {
      const int c = event.node;
      if (cache_down_[c] != 0) return;  // already down
      cache_down_[c] = 1;
      cache_crashes_->Increment();
      read_path_.OnCacheCrash(c, t);
      // A crash mid-recovery abandons the episode (its duration is never
      // recorded); the next restart opens a fresh one.
      resync_[c].open = false;
      resync_[c].remaining = 0;
      return;
    }
    case FaultEventKind::kCacheRestart: {
      const int c = event.node;
      if (cache_down_[c] == 0) return;  // never crashed / already back
      cache_down_[c] = 0;
      cache_restarts_->Increment();
      read_path_.OnCacheRestart(c);
      // Every source re-ships (or at least re-tracks) its replicas at the
      // cold cache; the union is this restart's outstanding set.
      resync_scratch_.clear();
      for (auto& source : sources_) {
        source->OnCacheRestart(c, t, config_.recovery_policy, &resync_scratch_);
      }
      ResyncState& resync = resync_[c];
      if (resync.outstanding.empty()) {
        resync.outstanding.assign(harness_->workload().objects.size(), 0);
      } else {
        std::fill(resync.outstanding.begin(), resync.outstanding.end(), 0);
      }
      resync.remaining = 0;
      for (ObjectIndex index : resync_scratch_) {
        if (resync.outstanding[index] == 0) {
          resync.outstanding[index] = 1;
          ++resync.remaining;
        }
      }
      resync.start = t;
      resync.open = resync.remaining > 0;
      if (resync.open && obs_ != nullptr && obs_->main_buffer() != nullptr) {
        TraceEvent trace;
        trace.kind = TraceEventKind::kResyncStart;
        trace.t = t;
        trace.cache = c;
        trace.node = c;
        trace.aux = resync.remaining;
        obs_->main_buffer()->Record(trace);
      }
      return;
    }
    case FaultEventKind::kRelayFail: {
      const int32_t node = event.node;
      if (!network_->relay_alive(node)) return;
      relay_failures_->Increment();
      // Everything the relay held: its store (received, not forwarded yet)
      // and its ingress queue (in flight toward it).
      std::vector<Message> stranded = relay(node).TakeStored();
      std::vector<Message> queued = network_->edge_link(node).TakeQueue();
      network_->FailRelay(node);  // reroute + control-mail re-deposit
      if (config_.relay_store_policy == RelayStorePolicy::kDrain) {
        // Re-enter the tree at each message's (new) first hop, behind that
        // edge's existing backlog; under kDrop they die with the relay.
        for (Message& message : stranded) {
          network_->first_hop_link(message.cache_id).Enqueue(std::move(message));
        }
        for (Message& message : queued) {
          network_->first_hop_link(message.cache_id).Enqueue(std::move(message));
        }
      }
      RebuildSourcesByNode();
      return;
    }
    case FaultEventKind::kRelayRecover:
      if (network_->relay_alive(event.node)) return;
      network_->RecoverRelay(event.node);
      RebuildSourcesByNode();
      return;
    case FaultEventKind::kLinkDown:
      if (!network_->cache_link(event.node).is_down()) {
        link_down_events_->Increment();
      }
      network_->cache_link(event.node).SetDown(true);
      return;
    case FaultEventKind::kLinkUp:
      network_->cache_link(event.node).SetDown(false);
      return;
    case FaultEventKind::kSlowDown:
      slowdown_events_->Increment();
      network_->cache_link(event.node).SetBandwidthFactor(event.factor);
      return;
    case FaultEventKind::kSlowRecover:
      network_->cache_link(event.node).SetBandwidthFactor(1.0);
      return;
  }
}

void CooperativeScheduler::RecoveryPhase(double t) {
  for (size_t j = 0; j < sources_.size(); ++j) {
    SourceAgent& agent = *sources_[j];
    Link* source_link = &network_->source_link(static_cast<int>(j));
    for (int k = 0; k < agent.num_channels(); ++k) {
      if (agent.recovery_queue_size(k) == 0) continue;
      const int32_t c = agent.channel_cache_id(k);
      // Re-crashed before the refill finished: hold the queue (the next
      // restart rebuilds it anyway) instead of shipping into a dead node.
      if (cache_down_[c] != 0) continue;
      agent.SendRecovery(t, source_link, &network_->first_hop_link(c), k);
    }
  }
}

void CooperativeScheduler::NoteResyncDelivery(int c, const Message& message,
                                              double t) {
  // Runs inside the (possibly parallel) delivery apply: everything written
  // here is per-cache — the global tallies get their contributions from
  // DrainResyncNotes after the apply barrier.
  ResyncState& resync = resync_[c];
  ResyncNote& scratch = resync_notes_[c];
  const auto note = [&](ObjectIndex index) {
    if (resync.outstanding[index] == 0) return;
    resync.outstanding[index] = 0;
    --resync.remaining;
    ++scratch.deliveries;
  };
  note(message.object_index);
  for (const RefreshPayload& payload : message.extra_refreshes) {
    note(payload.object_index);
  }
  if (resync.remaining == 0) {
    // Fires for the closing delivery AND every further tracked delivery of
    // this tick (track_resync is latched at tick start): the episode
    // duration enters the digest once per such message, matching the
    // historical accounting exactly.
    if (resync.open && obs_ != nullptr) {
      // First closing call only (resync.open is still set). Runs inside the
      // possibly-parallel apply, so the event goes to cache c's own buffer.
      TraceBuffer* const trace = obs_->cache_buffer(c);
      if (trace != nullptr) {
        TraceEvent event;
        event.kind = TraceEventKind::kResyncDone;
        event.t = t;
        event.cache = c;
        event.node = c;
        event.value = t - resync.start;
        trace->Record(event);
      }
    }
    resync.open = false;
    ++scratch.close_adds;
    scratch.duration = t - resync.start;
  }
}

void CooperativeScheduler::DrainResyncNotes() {
  for (ResyncNote& note : resync_notes_) {
    resync_deliveries_->Increment(note.deliveries);
    note.deliveries = 0;
    for (int64_t i = 0; i < note.close_adds; ++i) {
      resync_digest_->Add(note.duration);
    }
    note.close_adds = 0;
  }
}

void CooperativeScheduler::OnMeasurementStart(double /*t*/) {
  network_->ResetStats();
  for (auto& cache : caches_) {
    if (cache != nullptr) cache->ResetCounters();
  }
  for (auto& source : sources_) source->ResetCounters();
  for (auto& relay : relays_) relay->ResetCounters();
  read_path_.OnMeasurementStart();
  // Every scheduler-level tally — relay control moves, the fault/recovery
  // counters, the resync digest — re-zeroes in one registry sweep; an
  // episode still open at the boundary stays open (it closes — and is
  // recorded — inside the window).
  metrics_.Reset();
}

void CooperativeScheduler::ServePull(const Message& request, double t) {
  // The source does the per-object bookkeeping (tracker reset, threshold
  // piggyback, push-entry invalidation, demand forward priority).
  const Message response = sources_[request.source_index]->ServePull(
      request.object_index, request.cache_id, t);
  // Demand traffic consumes the same source-side budget as pushes, debt
  // allowed: a pull is never dropped, it throttles the source's next
  // pushes instead. From the tier-1 edge on, the response is an ordinary
  // queued message under the same per-edge budgets as pushed refreshes.
  network_->source_link(request.source_index).ConsumeAllowingDebt(response.cost);
  network_->first_hop_link(request.cache_id).Enqueue(response);
}

void CooperativeScheduler::Finalize(double /*t*/) { network_->FinishTick(); }

void CooperativeScheduler::ObsOnTickEnd(double t) {
  obs_->NoteTick(t);
  if (obs_->series()->Due(t)) ObsSample(t);
}

void CooperativeScheduler::ObsSample(double t) {
  // Column order mirrors the Configure() call in Initialize exactly. Every
  // read below is a const accessor over state the tick already settled:
  // no RNG draws, no lazy evaluation, no mutation — sampling cannot move a
  // single bit of the run.
  std::vector<double>& row = obs_row_;
  size_t i = 0;
  const GroundTruth& truth = harness_->ground_truth();
  double total = 0.0;
  for (int c = 0; c < num_caches(); ++c) total += truth.CurrentWeightedSum(c);
  row[i++] = total;
  const int per_cache = std::min(num_caches(), config_.obs.max_per_cache_series);
  for (int c = 0; c < per_cache; ++c) row[i++] = truth.CurrentWeightedSum(c);
  double queue_depth = 0.0, recovery_depth = 0.0;
  for (const auto& source : sources_) {
    for (int k = 0; k < source->num_channels(); ++k) {
      queue_depth += static_cast<double>(source->queue_size(k));
      recovery_depth += static_cast<double>(source->recovery_queue_size(k));
    }
  }
  row[i++] = queue_depth;
  row[i++] = recovery_depth;
  double link_queue = 0.0, link_deficit = 0.0, used = 0.0, capacity = 0.0;
  for (int c = 0; c < num_caches(); ++c) {
    const Link& link = network_->cache_link(c);
    link_queue += static_cast<double>(link.queue_size());
    link_deficit +=
        static_cast<double>(std::max<int64_t>(-link.remaining_budget(), 0));
    used += link.utilization().used();
    capacity += link.utilization().capacity();
  }
  row[i++] = link_queue;
  row[i++] = link_deficit;
  row[i++] = capacity > 0.0 ? used / capacity : 0.0;
  double relay_store = 0.0;
  for (const auto& relay : relays_) {
    relay_store += static_cast<double>(relay->store_size());
  }
  row[i++] = relay_store;
  row[i++] = static_cast<double>(read_path_.reads_so_far());
  row[i++] = static_cast<double>(read_path_.hits_so_far());
  row[i++] = read_path_.StalenessMeanSoFar();
  row[i++] = static_cast<double>(read_path_.pull_requests_so_far() -
                                 read_path_.pulls_delivered_so_far());
  double outstanding = 0.0;
  for (const ResyncState& resync : resync_) {
    if (resync.open) outstanding += static_cast<double>(resync.remaining);
  }
  row[i++] = outstanding;
  if (config_.obs.sample_phase_nanos && config_.phase_timer != nullptr) {
    const PhaseTimer::Snapshot snapshot = config_.phase_timer->TakeSnapshot();
    const PhaseTimer::Snapshot delta = PhaseTimer::Delta(snapshot, obs_prev_phase_);
    obs_prev_phase_ = snapshot;
    for (int p = 0; p < PhaseTimer::kNumPhases; ++p) {
      row[i++] = static_cast<double>(delta.nanos[p]);
    }
  }
  BESYNC_DCHECK(i == row.size());
  obs_->series()->Append(t, row);
}

std::shared_ptr<ObsOutput> CooperativeScheduler::TakeObsOutput() {
  if (obs_ == nullptr) return nullptr;
  return obs_->Finish();
}

SchedulerStats CooperativeScheduler::stats() const {
  SchedulerStats stats;
  int64_t channels = 0;
  for (const auto& source : sources_) {
    stats.refreshes_sent += source->refreshes_sent();
    stats.invalidations_sent += source->invalidations_sent();
    for (int k = 0; k < source->num_channels(); ++k) {
      stats.mean_threshold += source->threshold(k);
      ++channels;
    }
  }
  if (channels > 0) stats.mean_threshold /= static_cast<double>(channels);
  for (const auto& cache : caches_) {
    if (cache == nullptr) continue;
    stats.refreshes_delivered += cache->refreshes_received();
    stats.feedback_sent += cache->feedback_sent();
  }
  // Aggregate across cache links: utilization by capacity, queue length by
  // sample count, maximum over maxima (degenerates to the single link's own
  // statistics at one cache).
  double used = 0.0, capacity = 0.0, queue_sum = 0.0;
  int64_t queue_count = 0;
  for (int c = 0; c < network_->num_caches(); ++c) {
    const Link& link = network_->cache_link(c);
    used += link.utilization().used();
    capacity += link.utilization().capacity();
    queue_sum += link.queue_length_stat().sum();
    queue_count += link.queue_length_stat().count();
    stats.max_cache_queue = std::max(stats.max_cache_queue,
                                     static_cast<int64_t>(link.max_queue_size()));
  }
  stats.cache_utilization = capacity > 0.0 ? used / capacity : 0.0;
  stats.avg_cache_queue =
      queue_count > 0 ? queue_sum / static_cast<double>(queue_count) : 0.0;
  double relay_delay_sum = 0.0, relay_transit_sum = 0.0;
  for (const auto& relay : relays_) {
    stats.relays_forwarded += relay->forwarded();
    relay_delay_sum += relay->total_queue_delay();
    relay_transit_sum += relay->total_transit_delay();
    stats.max_relay_store = std::max(
        stats.max_relay_store, static_cast<int64_t>(relay->max_store_size()));
  }
  if (stats.relays_forwarded > 0) {
    stats.relay_queue_delay_mean =
        relay_delay_sum / static_cast<double>(stats.relays_forwarded);
    stats.relay_transit_delay_mean =
        relay_transit_sum / static_cast<double>(stats.relays_forwarded);
  }
  stats.relay_control_moved = relay_control_moved_->value();
  if (read_path_.enabled()) {
    const ReadPathCounters reads = read_path_.Counters();
    stats.reads_total = reads.reads;
    stats.read_hits = reads.hits;
    stats.read_misses = reads.misses;
    stats.pull_requests_sent = reads.pull_requests;
    stats.pulls_delivered = reads.pulls_delivered;
    stats.cache_evictions = reads.evictions;
    stats.read_staleness_mean = reads.staleness_mean;
    stats.read_staleness_p50 = reads.staleness_p50;
    stats.read_staleness_p95 = reads.staleness_p95;
    stats.read_staleness_p99 = reads.staleness_p99;
    stats.read_miss_latency_mean = reads.miss_latency_mean;
    stats.invalidations_received = reads.invalidations_received;
    // Push-vs-pull bandwidth split over every cache-side edge (leaf links
    // plus relay ingress edges — the links pulls and pushes contend on).
    for (int n = 0; n < network_->num_nodes(); ++n) {
      const Link& link = network_->edge_link(n);
      stats.pull_units_delivered += link.pull_units_delivered();
      stats.push_units_delivered += link.push_units_delivered();
    }
    const int64_t total_units =
        stats.pull_units_delivered + stats.push_units_delivered;
    stats.pull_bandwidth_share =
        total_units > 0 ? static_cast<double>(stats.pull_units_delivered) /
                              static_cast<double>(total_units)
                        : 0.0;
  }
  stats.cache_crashes = cache_crashes_->value();
  stats.cache_restarts = cache_restarts_->value();
  stats.relay_failures = relay_failures_->value();
  stats.link_down_events = link_down_events_->value();
  stats.slowdown_events = slowdown_events_->value();
  if (read_path_.enabled()) {
    stats.crash_dropped_pulls = read_path_.crash_dropped_pulls();
  }
  stats.resync_deliveries = resync_deliveries_->value();
  for (const ResyncState& resync : resync_) {
    if (resync.open) stats.resync_pending += resync.remaining;
  }
  if (!resync_digest_->digest().empty()) {
    stats.time_to_resync_mean = resync_digest_->digest().mean();
    stats.time_to_resync_p95 = resync_digest_->digest().Quantile(0.95);
  }
  return stats;
}

Result<RunResult> RunScheduler(const Workload* workload, const DivergenceMetric* metric,
                               const HarnessConfig& harness_config,
                               Scheduler* scheduler) {
  if (workload == nullptr || metric == nullptr || scheduler == nullptr) {
    return Status::InvalidArgument("RunScheduler: null argument");
  }
  Harness harness(workload, metric, harness_config);
  BESYNC_RETURN_IF_ERROR(harness.Run(scheduler));
  RunResult result;
  result.scheduler_name = scheduler->name();
  result.total_weighted_divergence = harness.ground_truth().TotalWeightedAverage();
  result.per_cache_weighted.reserve(workload->num_caches);
  for (int c = 0; c < workload->num_caches; ++c) {
    result.per_cache_weighted.push_back(harness.ground_truth().PerCacheWeightedAverage(c));
  }
  result.per_object_weighted = harness.ground_truth().PerObjectWeightedAverage();
  result.per_object_unweighted = harness.ground_truth().PerObjectUnweightedAverage();
  result.total_replicas = harness.ground_truth().total_replicas();
  result.scheduler = scheduler->stats();
  result.obs = scheduler->TakeObsOutput();
  return result;
}

}  // namespace besync
