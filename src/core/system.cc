#include "core/system.h"

#include <algorithm>

#include "util/logging.h"

namespace besync {

CooperativeScheduler::CooperativeScheduler(const CooperativeConfig& config)
    : config_(config), policy_(MakePolicy(config.policy, config.history_beta)) {}

void CooperativeScheduler::Initialize(Harness* harness) {
  harness_ = harness;
  const Workload& workload = harness->workload();
  const int m = workload.num_sources;
  const double tick = harness->config().tick_length;

  double feedback_period = config_.expected_feedback_period;
  if (feedback_period <= 0.0) {
    // The paper's estimate: total number of sources / average cache-side
    // bandwidth. Floored at one tick: feedback is delivered at tick
    // granularity, so a shorter expected period would spuriously trigger
    // the flooding accelerator in every steady-state tick.
    feedback_period =
        std::max(static_cast<double>(m) / config_.cache_bandwidth_avg, tick);
  }

  NetworkConfig net_config;
  net_config.num_sources = m;
  net_config.cache_bandwidth_avg = config_.cache_bandwidth_avg;
  net_config.source_bandwidth_avg = config_.source_bandwidth_avg;
  net_config.bandwidth_change_rate = config_.bandwidth_change_rate;
  network_ = std::make_unique<Network>(net_config, harness->scheduler_rng());
  if (config_.loss_rate > 0.0) {
    network_->cache_link().SetLossRate(config_.loss_rate,
                                       harness->scheduler_rng()->NextUint64());
  }

  cache_ = std::make_unique<CacheAgent>(m);
  sources_.clear();
  sources_.reserve(m);
  for (int j = 0; j < m; ++j) {
    sources_.push_back(std::make_unique<SourceAgent>(
        j, config_.source, feedback_period, policy_.get(), harness));
  }

  object_source_.resize(workload.objects.size());
  for (size_t i = 0; i < workload.objects.size(); ++i) {
    const int32_t j = workload.objects[i].source_index;
    object_source_[i] = j;
    sources_[j]->AddObject(static_cast<ObjectIndex>(i));
  }
  for (auto& source : sources_) source->Start(&harness->simulation(), tick);

  source_order_.resize(m);
  for (int j = 0; j < m; ++j) source_order_[j] = j;
}

void CooperativeScheduler::OnObjectUpdate(ObjectIndex index, double t) {
  sources_[object_source_[index]]->OnObjectUpdate(index, t);
}

void CooperativeScheduler::FillFeedback(Message* /*feedback*/, int /*source_index*/,
                                        double /*t*/) {}

void CooperativeScheduler::SendPhase(double t) {
  // Random source visiting order so no source systematically wins the race
  // for queue positions on the shared cache link.
  harness_->scheduler_rng()->Shuffle(&source_order_);
  for (int j : source_order_) {
    sources_[j]->SendRefreshes(t, &network_->source_link(j), &network_->cache_link());
  }
}

void CooperativeScheduler::Tick(double t) {
  const double tick = harness_->config().tick_length;
  network_->BeginTick(t, tick);

  // 1. Deliver control messages (feedback) that arrived since last tick.
  for (int j = 0; j < num_sources(); ++j) {
    for (const Message& message : network_->TakeSourceMail(j)) {
      sources_[j]->OnFeedback(message, t);
    }
  }

  // 2. Sources emit refreshes for over-threshold objects.
  SendPhase(t);

  // 3. The cache-side link delivers queued refreshes within its budget.
  network_->cache_link().DeliverQueued([&](const Message& message) {
    harness_->DeliverRefresh(message, t);
    cache_->RecordRefresh(message, t);
  });

  // 4. Surplus cache-side bandwidth becomes positive feedback, aimed at the
  //    sources with the highest local thresholds.
  const int64_t surplus = network_->cache_link().remaining_budget();
  if (surplus > 0) {
    const std::vector<int> targets = cache_->SelectFeedbackTargets(surplus, t);
    for (int j : targets) {
      // Feedback consumes the (otherwise idle) surplus capacity.
      const int64_t granted = network_->cache_link().ConsumeBudget(1);
      BESYNC_DCHECK(granted == 1);
      Message feedback;
      feedback.kind = MessageKind::kFeedback;
      feedback.source_index = j;
      feedback.send_time = t;
      FillFeedback(&feedback, j, t);
      network_->SendToSource(j, feedback);
    }
  }
}

void CooperativeScheduler::OnMeasurementStart(double /*t*/) {
  network_->ResetStats();
  cache_->ResetCounters();
  for (auto& source : sources_) source->ResetCounters();
}

SchedulerStats CooperativeScheduler::stats() const {
  SchedulerStats stats;
  for (const auto& source : sources_) {
    stats.refreshes_sent += source->refreshes_sent();
    stats.mean_threshold += source->threshold();
  }
  if (!sources_.empty()) {
    stats.mean_threshold /= static_cast<double>(sources_.size());
  }
  stats.refreshes_delivered = cache_->refreshes_received();
  stats.feedback_sent = cache_->feedback_sent();
  const Link& link = network_->cache_link();
  stats.cache_utilization = link.utilization().utilization();
  stats.avg_cache_queue = link.queue_length_stat().mean();
  stats.max_cache_queue = static_cast<int64_t>(link.max_queue_size());
  return stats;
}

Result<RunResult> RunScheduler(const Workload* workload, const DivergenceMetric* metric,
                               const HarnessConfig& harness_config,
                               Scheduler* scheduler) {
  if (workload == nullptr || metric == nullptr || scheduler == nullptr) {
    return Status::InvalidArgument("RunScheduler: null argument");
  }
  Harness harness(workload, metric, harness_config);
  BESYNC_RETURN_IF_ERROR(harness.Run(scheduler));
  RunResult result;
  result.scheduler_name = scheduler->name();
  result.total_weighted_divergence = harness.ground_truth().TotalWeightedAverage();
  result.per_object_weighted = harness.ground_truth().PerObjectWeightedAverage();
  result.per_object_unweighted = harness.ground_truth().PerObjectUnweightedAverage();
  result.scheduler = scheduler->stats();
  return result;
}

}  // namespace besync
