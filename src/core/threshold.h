#ifndef BESYNC_CORE_THRESHOLD_H_
#define BESYNC_CORE_THRESHOLD_H_

namespace besync {

/// Parameters of the adaptive threshold-setting algorithm (Section 5).
struct ThresholdConfig {
  /// Initial local threshold T_j. "Because our algorithm is adaptive, any
  /// initial values for the T_j's can be used" — runs include a warm-up.
  double initial = 1.0;
  /// Multiplicative increase factor alpha applied on every refresh sent.
  /// The paper's tuned value is 1.1 (Section 6.1).
  double increase = 1.1;
  /// Multiplicative decrease factor omega applied on positive feedback.
  /// The paper's tuned value is 10 (Section 6.1).
  double decrease = 10.0;
  /// Clamps protecting against numerical runaway; wide enough to never bind
  /// in sane configurations.
  double min_threshold = 1e-12;
  double max_threshold = 1e15;
};

/// One source's local refresh threshold T_j and its adaptation rules
/// (Section 5):
///
///  - On every refresh sent: T_j := T_j * (alpha * delta), where the
///    flooding accelerator delta = max(1, t_feedback / P_feedback) kicks in
///    when feedback has been absent for longer than the expected feedback
///    period P_feedback ("used to accelerate the rate of threshold increase
///    in cases where network flooding is likely").
///  - On positive feedback: T_j := T_j / omega — unless the source is
///    already sending at the full capacity of its source-side bandwidth, in
///    which case T_j is left unmodified (footnote 3: avoids queue build-ups
///    that would flood the cache when source bandwidth returns).
struct ThresholdController {
 public:
  /// `expected_feedback_period` is P_feedback, estimated as (number of
  /// sources) / (average cache-side bandwidth); "it need only be a rough
  /// estimate". `start_time` seeds the last-feedback clock.
  ThresholdController(const ThresholdConfig& config, double expected_feedback_period,
                      double start_time);

  double threshold() const { return threshold_; }
  double last_feedback_time() const { return last_feedback_time_; }

  /// The flooding accelerator delta at time `now`.
  double DeltaFactor(double now) const;

  /// Applies the multiplicative increase for a refresh sent at `now`.
  void OnRefreshSent(double now);

  /// Handles a positive feedback message received at `now`.
  /// `at_full_capacity`: whether the source was sending at full source-side
  /// capacity (suppresses the decrease but still resets the feedback clock).
  void OnFeedback(double now, bool at_full_capacity);

  /// Forces the threshold (used by tests and by competitive variants).
  void SetThreshold(double value);

 private:
  void Clamp();

  ThresholdConfig config_;
  double expected_feedback_period_;
  double threshold_;
  double last_feedback_time_;
};

}  // namespace besync

#endif  // BESYNC_CORE_THRESHOLD_H_
