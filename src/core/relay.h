#ifndef BESYNC_CORE_RELAY_H_
#define BESYNC_CORE_RELAY_H_

#include <cstdint>
#include <deque>
#include <functional>
#include <string>
#include <vector>

#include "net/message.h"
#include "obs/trace.h"

namespace besync {

/// Order in which a relay drains its store when forwarding downstream.
enum class RelayForwardPolicy {
  /// Arrival order. Preserves the per-leaf emission order exactly, so a
  /// pass-through FIFO relay is invisible (the degenerate-tree anchor).
  kFifo,
  /// Highest Message::forward_priority first (ties by arrival order): under
  /// egress pressure the relay keeps spending its budget on the refreshes
  /// the sources deemed most urgent, mirroring the paper's priority
  /// scheduling one tier up.
  kPriority,
};

std::string RelayForwardPolicyToString(RelayForwardPolicy policy);

/// One relay node in a multi-tier topology: receives refreshes off its
/// ingress edge, stores them, and forwards each downstream toward its
/// Message::cache_id leaf under the relay's own egress-link budget
/// (store-and-forward). A configurable ingress latency models the per-edge
/// propagation/processing delay: a message becomes eligible for forwarding
/// `latency` seconds after arrival. Time spent in the store is real
/// protocol lag — the leaf replica keeps diverging until the refresh lands,
/// so relay queueing delay flows into the divergence objective by
/// construction (see DESIGN.md).
///
/// The agent is network-agnostic: Forward() hands eligible messages to a
/// callback (wired by the scheduler to the next-hop edge link) once the
/// egress budget admits them, which keeps the class unit-testable.
class RelayAgent {
 public:
  RelayAgent(int32_t node_id, RelayForwardPolicy policy, double ingress_latency);

  int32_t node_id() const { return node_id_; }
  RelayForwardPolicy policy() const { return policy_; }

  /// Observability wiring (obs/trace.h): records this relay's store and
  /// forward events into `trace`. Null (the default) disables recording at
  /// the cost of one pointer test per hook.
  void SetTraceBuffer(TraceBuffer* trace) { trace_ = trace; }

  /// Stores a refresh delivered off the ingress edge at time `t`.
  void OnArrival(const Message& message, double t);

  /// Forwards stored, eligible messages in policy order while
  /// `try_consume(cost)` grants egress budget, invoking `forward` for each.
  /// Returns the number forwarded. Messages denied budget stay stored for a
  /// later tick (and keep accruing queueing delay).
  int64_t Forward(double now, const std::function<bool(int64_t)>& try_consume,
                  const std::function<void(const Message&)>& forward);

  // --- statistics ---
  size_t store_size() const { return pending_.size() + ready_.size(); }
  size_t max_store_size() const { return max_store_size_; }
  int64_t received() const { return received_; }
  int64_t forwarded() const { return forwarded_; }
  /// Total store wait (forward time - arrival time) over forwarded
  /// refreshes; divide by forwarded() for the mean queueing delay. Zero as
  /// long as the egress budget keeps up with ingress deliveries.
  double total_queue_delay() const { return total_queue_delay_; }
  /// Total transit lag (forward time - Message::send_time) over forwarded
  /// refreshes — the full source-to-here latency including upstream link
  /// queueing, the component of leaf divergence the relay tier adds.
  double total_transit_delay() const { return total_transit_delay_; }

  /// Resets statistics counters (measurement start). Stored messages stay.
  void ResetCounters();

  /// Removes and returns everything in the store (pending + ready) in
  /// arrival (seq) order — relay failover: the scheduler re-routes or drops
  /// the stranded refreshes per policy. Statistics are untouched.
  std::vector<Message> TakeStored();

 private:
  struct Stored {
    Message message;
    double arrival = 0.0;
    uint64_t seq = 0;
  };

  /// Moves messages whose latency has elapsed from pending_ into ready_.
  void PromoteEligible(double now);
  /// Index of the next ready_ message to forward under the policy.
  size_t PickNext() const;

  /// Records one store/forward event into trace_ (callers test trace_
  /// first). `value` carries the store wait for forward events.
  void RecordTrace(TraceEventKind kind, const Message& message, double t,
                   double value);

  int32_t node_id_;
  RelayForwardPolicy policy_;
  double ingress_latency_;
  /// This relay's trace buffer; null unless observability tracing is on.
  TraceBuffer* trace_ = nullptr;
  uint64_t next_seq_ = 0;
  /// Awaiting the ingress latency, in arrival order (arrivals are
  /// time-ordered, so eligibility times are nondecreasing).
  std::deque<Stored> pending_;
  /// Eligible for forwarding. FIFO drains the front; priority scans for the
  /// maximum forward_priority (stores stay small relative to the per-tick
  /// work, and eligibility cutoffs make a heap awkward).
  std::deque<Stored> ready_;
  size_t max_store_size_ = 0;
  int64_t received_ = 0;
  int64_t forwarded_ = 0;
  double total_queue_delay_ = 0.0;
  double total_transit_delay_ = 0.0;
};

}  // namespace besync

#endif  // BESYNC_CORE_RELAY_H_
