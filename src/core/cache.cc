#include "core/cache.h"

#include <algorithm>
#include <utility>

#include "util/logging.h"

namespace besync {

CacheAgent::CacheAgent(int32_t cache_id, std::vector<int32_t> sources)
    : cache_id_(cache_id), source_ids_(std::move(sources)) {
  BESYNC_CHECK_GE(cache_id, 0);
  BESYNC_CHECK(!source_ids_.empty());
  int32_t max_id = -1;
  for (size_t k = 0; k < source_ids_.size(); ++k) {
    BESYNC_CHECK_GE(source_ids_[k], 0);
    if (k > 0) BESYNC_CHECK_GT(source_ids_[k], source_ids_[k - 1]);
    max_id = source_ids_[k];
  }
  slot_of_source_.assign(static_cast<size_t>(max_id) + 1, -1);
  for (size_t k = 0; k < source_ids_.size(); ++k) {
    slot_of_source_[source_ids_[k]] = static_cast<int32_t>(k);
  }
  sources_.resize(source_ids_.size());
  scratch_.resize(source_ids_.size());
  for (size_t k = 0; k < source_ids_.size(); ++k) scratch_[k] = static_cast<int>(k);
}

namespace {
std::vector<int32_t> AllSources(int num_sources) {
  std::vector<int32_t> ids(static_cast<size_t>(num_sources));
  for (int j = 0; j < num_sources; ++j) ids[j] = j;
  return ids;
}
}  // namespace

CacheAgent::CacheAgent(int num_sources)
    : CacheAgent(/*cache_id=*/0, AllSources(num_sources)) {
  BESYNC_CHECK_GE(num_sources, 1);
}

int CacheAgent::SlotOf(int32_t source_id) const {
  BESYNC_DCHECK(source_id >= 0 &&
                source_id < static_cast<int32_t>(slot_of_source_.size()));
  const int slot = slot_of_source_[source_id];
  BESYNC_DCHECK(slot >= 0) << "source " << source_id
                           << " does not cooperate with cache " << cache_id_;
  return slot;
}

void CacheAgent::RecordRefresh(const Message& message, double /*t*/) {
  // A batched message counts one refresh per carried object.
  refreshes_received_ += 1 + static_cast<int64_t>(message.extra_refreshes.size());
  const int slot = SlotOf(message.source_index);
  if (message.piggyback_threshold > 0.0) {
    sources_[slot].threshold = message.piggyback_threshold;
    sources_[slot].known = true;
  }
}

std::vector<int> CacheAgent::SelectFeedbackTargets(int64_t limit, double now) {
  if (limit <= 0) return {};
  const int64_t m = static_cast<int64_t>(sources_.size());
  const int64_t take = std::min(limit, m);

  auto better = [this](int a, int b) {
    const SourceInfo& sa = sources_[a];
    const SourceInfo& sb = sources_[b];
    if (sa.threshold != sb.threshold) return sa.threshold > sb.threshold;
    return sa.last_fed < sb.last_fed;
  };
  if (take < m) {
    std::nth_element(scratch_.begin(), scratch_.begin() + take, scratch_.end(), better);
    std::sort(scratch_.begin(), scratch_.begin() + take, better);
  }
  std::vector<int> targets;
  targets.reserve(static_cast<size_t>(take));
  for (int64_t k = 0; k < take; ++k) {
    const int slot = scratch_[k];
    sources_[slot].last_fed = now;
    ++feedback_sent_;
    targets.push_back(source_ids_[slot]);
  }
  return targets;
}

void CacheAgent::ResetCounters() {
  refreshes_received_ = 0;
  feedback_sent_ = 0;
}

}  // namespace besync
