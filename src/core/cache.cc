#include "core/cache.h"

#include <algorithm>

#include "util/logging.h"

namespace besync {

CacheAgent::CacheAgent(int num_sources) {
  BESYNC_CHECK_GE(num_sources, 1);
  sources_.resize(num_sources);
  scratch_.resize(num_sources);
  for (int j = 0; j < num_sources; ++j) scratch_[j] = j;
}

void CacheAgent::RecordRefresh(const Message& message, double /*t*/) {
  // A batched message counts one refresh per carried object.
  refreshes_received_ += 1 + static_cast<int64_t>(message.extra_refreshes.size());
  const int j = message.source_index;
  BESYNC_DCHECK(j >= 0 && j < static_cast<int>(sources_.size()));
  if (message.piggyback_threshold > 0.0) {
    sources_[j].threshold = message.piggyback_threshold;
    sources_[j].known = true;
  }
}

std::vector<int> CacheAgent::SelectFeedbackTargets(int64_t limit, double now) {
  if (limit <= 0) return {};
  const int64_t m = static_cast<int64_t>(sources_.size());
  const int64_t take = std::min(limit, m);

  auto better = [this](int a, int b) {
    const SourceInfo& sa = sources_[a];
    const SourceInfo& sb = sources_[b];
    if (sa.threshold != sb.threshold) return sa.threshold > sb.threshold;
    return sa.last_fed < sb.last_fed;
  };
  if (take < m) {
    std::nth_element(scratch_.begin(), scratch_.begin() + take, scratch_.end(), better);
    std::sort(scratch_.begin(), scratch_.begin() + take, better);
  }
  std::vector<int> targets(scratch_.begin(), scratch_.begin() + take);
  for (int j : targets) {
    sources_[j].last_fed = now;
    ++feedback_sent_;
  }
  return targets;
}

void CacheAgent::ResetCounters() {
  refreshes_received_ = 0;
  feedback_sent_ = 0;
}

}  // namespace besync
