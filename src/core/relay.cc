#include "core/relay.h"

#include <algorithm>

#include "util/logging.h"

namespace besync {

std::string RelayForwardPolicyToString(RelayForwardPolicy policy) {
  switch (policy) {
    case RelayForwardPolicy::kFifo:
      return "fifo";
    case RelayForwardPolicy::kPriority:
      return "priority";
  }
  return "unknown";
}

RelayAgent::RelayAgent(int32_t node_id, RelayForwardPolicy policy,
                       double ingress_latency)
    : node_id_(node_id), policy_(policy), ingress_latency_(ingress_latency) {
  BESYNC_CHECK_GE(ingress_latency, 0.0);
}

void RelayAgent::RecordTrace(TraceEventKind kind, const Message& message,
                             double t, double value) {
  TraceEvent event;
  event.kind = kind;
  event.t = t;
  event.node = node_id_;
  event.source = message.source_index;
  event.cache = message.cache_id;
  event.object = message.object_index;
  event.version = message.version;
  event.is_pull = message.is_pull;
  event.value = value;
  trace_->Record(event);
}

void RelayAgent::OnArrival(const Message& message, double t) {
  if (trace_ != nullptr) {
    RecordTrace(TraceEventKind::kRelayStore, message, t, /*value=*/0.0);
  }
  pending_.push_back(Stored{message, t, next_seq_++});
  ++received_;
  max_store_size_ = std::max(max_store_size_, store_size());
}

void RelayAgent::PromoteEligible(double now) {
  while (!pending_.empty() &&
         pending_.front().arrival + ingress_latency_ <= now) {
    ready_.push_back(std::move(pending_.front()));
    pending_.pop_front();
  }
}

size_t RelayAgent::PickNext() const {
  if (policy_ == RelayForwardPolicy::kFifo) return 0;
  size_t best = 0;
  for (size_t i = 1; i < ready_.size(); ++i) {
    // Strictly-greater keeps arrival order among equal priorities (seq is
    // ascending along the deque).
    if (ready_[i].message.forward_priority >
        ready_[best].message.forward_priority) {
      best = i;
    }
  }
  return best;
}

int64_t RelayAgent::Forward(double now,
                            const std::function<bool(int64_t)>& try_consume,
                            const std::function<void(const Message&)>& forward) {
  PromoteEligible(now);
  int64_t sent = 0;
  while (!ready_.empty()) {
    const size_t pick = PickNext();
    // Budget semantics mirror the source send phase: a large message may
    // start on the last sliver of budget and spill into the next tick
    // (deficit carryover at the egress link).
    if (!try_consume(std::max<int64_t>(ready_[pick].message.cost, 1))) break;
    Stored stored = std::move(ready_[pick]);
    ready_.erase(ready_.begin() + static_cast<std::ptrdiff_t>(pick));
    total_queue_delay_ += now - stored.arrival;
    total_transit_delay_ += now - stored.message.send_time;
    ++forwarded_;
    ++sent;
    if (trace_ != nullptr) {
      RecordTrace(TraceEventKind::kRelayForward, stored.message, now,
                  /*value=*/now - stored.arrival);
    }
    forward(stored.message);
  }
  return sent;
}

std::vector<Message> RelayAgent::TakeStored() {
  // ready_ messages arrived before anything still in pending_, so ready_
  // then pending_ is arrival order.
  std::vector<Message> taken;
  taken.reserve(ready_.size() + pending_.size());
  for (Stored& stored : ready_) taken.push_back(std::move(stored.message));
  for (Stored& stored : pending_) taken.push_back(std::move(stored.message));
  ready_.clear();
  pending_.clear();
  return taken;
}

void RelayAgent::ResetCounters() {
  received_ = 0;
  forwarded_ = 0;
  total_queue_delay_ = 0.0;
  total_transit_delay_ = 0.0;
  max_store_size_ = store_size();
}

}  // namespace besync
