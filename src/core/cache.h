#ifndef BESYNC_CORE_CACHE_H_
#define BESYNC_CORE_CACHE_H_

#include <cstdint>
#include <limits>
#include <vector>

#include "net/message.h"

namespace besync {

/// One cache's role in the cooperative protocol (Section 5): learn the
/// thresholds of its interested sources from piggybacked refresh messages,
/// monitor cache-side bandwidth utilization, and spend any surplus on
/// positive feedback messages, targeting the sources with the highest local
/// thresholds first. In the multi-cache topology every cache runs one
/// independent CacheAgent over the sources that replicate objects at it.
class CacheAgent {
 public:
  /// Cache `cache_id` cooperating with the given ascending list of source
  /// ids (the sources with at least one object replicated at this cache).
  CacheAgent(int32_t cache_id, std::vector<int32_t> sources);

  /// Single-cache convenience: cache 0 over all sources 0..num_sources-1.
  explicit CacheAgent(int num_sources);

  int32_t cache_id() const { return cache_id_; }
  int num_sources() const { return static_cast<int>(source_ids_.size()); }

  /// Records a delivered refresh message (learns the piggybacked threshold).
  void RecordRefresh(const Message& message, double t);

  /// Selects up to `limit` distinct sources for positive feedback: highest
  /// known thresholds first ("the sources with the highest local thresholds
  /// are selected to receive feedback"); sources whose thresholds are still
  /// unknown sort first so they are bootstrapped quickly; ties go to the
  /// least recently fed source. Marks the selected sources as fed at `now`
  /// and returns their source ids.
  std::vector<int> SelectFeedbackTargets(int64_t limit, double now);

  /// Last threshold piggybacked by source `j` (a source id), or +infinity
  /// if none seen.
  double known_threshold(int j) const { return sources_[SlotOf(j)].threshold; }

  int64_t refreshes_received() const { return refreshes_received_; }
  int64_t feedback_sent() const { return feedback_sent_; }
  void ResetCounters();

 private:
  struct SourceInfo {
    double threshold = std::numeric_limits<double>::infinity();
    bool known = false;
    double last_fed = -std::numeric_limits<double>::infinity();
  };

  int SlotOf(int32_t source_id) const;

  int32_t cache_id_ = 0;
  /// Ascending source ids this cache cooperates with; slot k holds state for
  /// source_ids_[k].
  std::vector<int32_t> source_ids_;
  /// source id -> slot (-1 for uninterested sources).
  std::vector<int32_t> slot_of_source_;
  std::vector<SourceInfo> sources_;
  std::vector<int> scratch_;  // reused slot buffer for selection
  int64_t refreshes_received_ = 0;
  int64_t feedback_sent_ = 0;
};

}  // namespace besync

#endif  // BESYNC_CORE_CACHE_H_
