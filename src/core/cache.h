#ifndef BESYNC_CORE_CACHE_H_
#define BESYNC_CORE_CACHE_H_

#include <cstdint>
#include <limits>
#include <vector>

#include "net/message.h"

namespace besync {

/// The cache's role in the cooperative protocol (Section 5): learn source
/// thresholds from piggybacked refresh messages, monitor cache-side
/// bandwidth utilization, and spend any surplus on positive feedback
/// messages, targeting the sources with the highest local thresholds first.
class CacheAgent {
 public:
  explicit CacheAgent(int num_sources);

  /// Records a delivered refresh message (learns the piggybacked threshold).
  void RecordRefresh(const Message& message, double t);

  /// Selects up to `limit` distinct sources for positive feedback: highest
  /// known thresholds first ("the sources with the highest local thresholds
  /// are selected to receive feedback"); sources whose thresholds are still
  /// unknown sort first so they are bootstrapped quickly; ties go to the
  /// least recently fed source. Marks the selected sources as fed at `now`.
  std::vector<int> SelectFeedbackTargets(int64_t limit, double now);

  /// Last threshold piggybacked by source `j`, or +infinity if none seen.
  double known_threshold(int j) const { return sources_[j].threshold; }

  int64_t refreshes_received() const { return refreshes_received_; }
  int64_t feedback_sent() const { return feedback_sent_; }
  void ResetCounters();

 private:
  struct SourceInfo {
    double threshold = std::numeric_limits<double>::infinity();
    bool known = false;
    double last_fed = -std::numeric_limits<double>::infinity();
  };

  std::vector<SourceInfo> sources_;
  std::vector<int> scratch_;  // reused index buffer for selection
  int64_t refreshes_received_ = 0;
  int64_t feedback_sent_ = 0;
};

}  // namespace besync

#endif  // BESYNC_CORE_CACHE_H_
