#ifndef BESYNC_CORE_HARNESS_H_
#define BESYNC_CORE_HARNESS_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "data/object.h"
#include "data/workload.h"
#include "divergence/ground_truth.h"
#include "divergence/metric.h"
#include "divergence/tracker.h"
#include "net/message.h"
#include "sim/simulation.h"
#include "util/arena.h"
#include "util/random.h"
#include "util/status.h"

namespace besync {

class Harness;
class Scheduler;
struct ObsOutput;

/// First multiple of `interval` strictly after `t`: the deadline for the
/// next periodic weight refresh. Always > t, and by no more than `interval`,
/// no matter how many interval boundaries the last tick crossed — the
/// catch-up that an incremental `deadline += interval` lacks when ticks are
/// longer than the interval.
double NextWeightRefreshDeadline(double t, double interval);

/// Timing and measurement parameters shared by all schedulers.
struct HarnessConfig {
  /// Scheduling/network tick length in (simulated) seconds. The paper's
  /// synthetic experiments use 1 s; the buoy experiment uses 60 s
  /// (bandwidth is messages per minute there).
  double tick_length = 1.0;
  /// Warm-up period excluded from measurements.
  double warmup = 100.0;
  /// Measurement window after warm-up.
  double measure = 1000.0;
  /// Seconds between re-evaluations of fluctuating weights.
  double weight_refresh_interval = 20.0;
  /// Seed for scheduler-side randomness (tie-breaking, link phases). The
  /// object update streams use per-object seeds from the workload instead,
  /// so they are identical across schedulers.
  uint64_t seed = 7;
};

/// Per-object mutable state during a simulation run.
struct ObjectRuntime {
  const ObjectSpec* spec = nullptr;
  ObjectState state;
  /// Source-side divergence bookkeeping, one tracker per replica (vs. the
  /// value last shipped to that cache), aligned with spec->caches. Points
  /// into the harness arena's flat tracker array — every object's trackers
  /// are consecutive slices of one allocation, not a million tiny vectors.
  DivergenceTracker* trackers = nullptr;
  int num_replicas = 0;
  /// Private RNG stream driving this object's updates.
  Rng rng;

  explicit ObjectRuntime(const ObjectSpec* s) : spec(s), rng(s->rng_seed) {}

  /// Tracker of replica slot `r` (slot 0 is the only replica in the paper's
  /// single-cache topology).
  DivergenceTracker& tracker(int r = 0) { return trackers[r]; }
  const DivergenceTracker& tracker(int r = 0) const { return trackers[r]; }
};

/// Statistics a scheduler reports after a run (fields irrelevant to a given
/// scheduler stay zero).
struct SchedulerStats {
  int64_t refreshes_sent = 0;
  int64_t refreshes_delivered = 0;
  int64_t feedback_sent = 0;
  int64_t polls_sent = 0;
  double cache_utilization = 0.0;
  double avg_cache_queue = 0.0;
  int64_t max_cache_queue = 0;
  double mean_threshold = 0.0;
  /// Relay-tier stats (zero on flat topologies): refreshes store-and-
  /// forwarded, mean store wait of a forwarded refresh, mean source-to-
  /// forward transit lag of a forward event (upstream queueing included),
  /// the largest store seen, and upstream control-mail hops relayed.
  int64_t relays_forwarded = 0;
  double relay_queue_delay_mean = 0.0;
  double relay_transit_delay_mean = 0.0;
  int64_t max_relay_store = 0;
  int64_t relay_control_moved = 0;
  /// Read-path stats (zero when the read path is disabled — the default).
  /// Client reads over the measurement window, their hit/miss split,
  /// pull-request/response traffic, capacity evictions, the read-time
  /// staleness distribution (divergence of the value each read is served),
  /// mean miss-to-delivery latency, and how the bandwidth units delivered
  /// over the cache-side edges split between pull responses and pushes.
  int64_t reads_total = 0;
  int64_t read_hits = 0;
  int64_t read_misses = 0;
  int64_t pull_requests_sent = 0;
  int64_t pulls_delivered = 0;
  int64_t cache_evictions = 0;
  double read_staleness_mean = 0.0;
  double read_staleness_p50 = 0.0;
  double read_staleness_p95 = 0.0;
  double read_staleness_p99 = 0.0;
  double read_miss_latency_mean = 0.0;
  int64_t pull_units_delivered = 0;
  int64_t push_units_delivered = 0;
  /// pull_units_delivered / (pull + push units); 0 when nothing delivered.
  double pull_bandwidth_share = 0.0;
  /// Consistency-protocol stats (zero under push refresh — the default).
  /// kInvalidate messages emitted by sources and replica invalidations
  /// applied at caches (a batched message of k objects counts once here
  /// and k times there; lossy links make received < applied-for).
  int64_t invalidations_sent = 0;
  int64_t invalidations_received = 0;
  /// Fault-injection / recovery stats (all zero on an empty fault
  /// schedule). Event counts are applications within the measurement
  /// window; resync_deliveries counts refreshes that closed part of a
  /// crashed cache's outstanding set; resync_pending is the number of
  /// replicas still awaiting their post-restart refill at run end;
  /// time_to_resync_* summarize restart-to-fully-refilled durations over
  /// the completed resync episodes; crash_dropped_pulls counts in-flight
  /// pulls cancelled because their cache died before the response landed.
  int64_t cache_crashes = 0;
  int64_t cache_restarts = 0;
  int64_t relay_failures = 0;
  int64_t link_down_events = 0;
  int64_t slowdown_events = 0;
  int64_t crash_dropped_pulls = 0;
  int64_t resync_deliveries = 0;
  int64_t resync_pending = 0;
  double time_to_resync_mean = 0.0;
  double time_to_resync_p95 = 0.0;
};

/// Scheduler interface: a refresh-scheduling strategy driven by the Harness.
/// Tick(t) runs once per tick after all update events with timestamps <= t
/// have fired.
class Scheduler {
 public:
  virtual ~Scheduler() = default;

  virtual std::string name() const = 0;

  /// Called once before the run; the harness outlives the scheduler's use.
  virtual void Initialize(Harness* harness) = 0;

  /// Notifies that object `index` was updated at time `t`.
  virtual void OnObjectUpdate(ObjectIndex index, double t) = 0;

  /// Performs one scheduling round at tick boundary `t`.
  virtual void Tick(double t) = 0;

  /// Called when the warm-up period ends (reset protocol statistics).
  virtual void OnMeasurementStart(double /*t*/) {}

  /// Called after the final tick.
  virtual void Finalize(double /*t*/) {}

  virtual SchedulerStats stats() const { return SchedulerStats{}; }

  /// Hands over the run's observability output (obs/trace.h), or null for
  /// schedulers without observability support / runs where it was disabled.
  /// Call at most once, after the run.
  virtual std::shared_ptr<ObsOutput> TakeObsOutput() { return nullptr; }
};

/// Owns the simulation clock, the object runtimes, the update event stream
/// and the ground-truth divergence accounting; drives a Scheduler through
/// warm-up and measurement. One Harness instance runs one scheduler once.
class Harness {
 public:
  /// All pointers must outlive the harness.
  Harness(const Workload* workload, const DivergenceMetric* metric,
          const HarnessConfig& config);

  /// Registers an additional ground-truth observer (e.g. the source-objective
  /// view in the competitive experiments). Must be called before Run.
  void AddGroundTruth(GroundTruth* ground_truth);

  /// Runs `scheduler` over warm-up + measurement. Call once.
  Status Run(Scheduler* scheduler);

  // --- accessors for schedulers ---

  double now() const { return sim_.now(); }
  double end_time() const { return config_.warmup + config_.measure; }
  const HarnessConfig& config() const { return config_; }
  const Workload& workload() const { return *workload_; }
  const DivergenceMetric& metric() const { return *metric_; }
  Simulation& simulation() { return sim_; }
  std::vector<ObjectRuntime>& objects() { return objects_; }
  const ObjectRuntime& object(ObjectIndex index) const { return objects_[index]; }
  GroundTruth& ground_truth() { return *primary_ground_truth_; }
  Rng* scheduler_rng() { return &scheduler_rng_; }
  /// Run-lifetime bump allocator for hot-path per-replica state (trackers,
  /// ground-truth entries, source channel tables). Allocations live until
  /// the harness dies; allocated types must be trivially destructible.
  Arena* arena() { return &arena_; }

  /// Cache-scheme weight W(O_i, t).
  double WeightAt(ObjectIndex index, double t) const;
  /// Source-scheme weight (falls back to the cache scheme when the object
  /// defines no separate source weight).
  double SourceWeightAt(ObjectIndex index, double t) const;

  // --- refresh plumbing ---

  /// Source-side send targeting one cache: builds the refresh message
  /// carrying the object's current value/version and resets that replica's
  /// source-side tracker (the source now models cache `cache_id` as holding
  /// this value). The message still has to be delivered via DeliverRefresh
  /// (or dropped, if a scheduler models loss).
  Message MakeRefreshMessage(ObjectIndex index, int32_t cache_id, double t);

  /// Single-cache convenience: targets the object's first replica.
  Message MakeRefreshMessage(ObjectIndex index, double t);

  /// Cache-side apply of a delivered refresh message (routed to the
  /// message's cache_id).
  void DeliverRefresh(const Message& message, double t);

  /// Integrates every registered ground truth's divergence sums up to `t`
  /// — the hoisted cross-cache step of DeliverRefresh. After this,
  /// DeliverRefresh calls at time `t` for distinct caches touch disjoint
  /// ground-truth state and may run concurrently (see
  /// GroundTruth::AdvanceTo for the preconditions).
  void AdvanceGroundTruths(double t);

  /// Oracle path: instantaneous refresh of every replica of the object
  /// (source send + cache apply with no network in between), used by the
  /// idealized schedulers.
  void RefreshInstant(ObjectIndex index, double t);

 private:
  void OnUpdateEvent(ObjectIndex index, double t);
  void ScheduleNextUpdate(ObjectIndex index, double now);

  const Workload* workload_;
  const DivergenceMetric* metric_;
  HarnessConfig config_;
  Simulation sim_;
  /// Backs the flat tracker array and the primary ground truth's replica
  /// entries; declared before the structures pointing into it.
  Arena arena_;
  std::vector<ObjectRuntime> objects_;
  std::unique_ptr<GroundTruth> owned_ground_truth_;
  GroundTruth* primary_ground_truth_;
  std::vector<GroundTruth*> ground_truths_;
  Rng scheduler_rng_;
  Scheduler* scheduler_ = nullptr;
  bool ran_ = false;
};

}  // namespace besync

#endif  // BESYNC_CORE_HARNESS_H_
