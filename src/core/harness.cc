#include "core/harness.h"

#include <cmath>

#include "util/logging.h"

namespace besync {

double NextWeightRefreshDeadline(double t, double interval) {
  BESYNC_CHECK_GT(interval, 0.0);
  return (std::floor(t / interval) + 1.0) * interval;
}

Harness::Harness(const Workload* workload, const DivergenceMetric* metric,
                 const HarnessConfig& config)
    : workload_(workload),
      metric_(metric),
      config_(config),
      scheduler_rng_(config.seed) {
  BESYNC_CHECK(workload != nullptr);
  BESYNC_CHECK(metric != nullptr);
  BESYNC_CHECK_GT(config.tick_length, 0.0);
  BESYNC_CHECK_GE(config.warmup, 0.0);
  BESYNC_CHECK_GT(config.measure, 0.0);
  owned_ground_truth_ =
      std::make_unique<GroundTruth>(workload, metric, /*use_source_weights=*/false,
                                    &arena_);
  primary_ground_truth_ = owned_ground_truth_.get();
  ground_truths_.push_back(primary_ground_truth_);
  objects_.reserve(workload->objects.size());
  size_t total_replicas = 0;
  for (const ObjectSpec& spec : workload->objects) {
    objects_.emplace_back(&spec);
    total_replicas += static_cast<size_t>(spec.num_replicas());
  }
  DivergenceTracker* trackers =
      arena_.AllocateArray<DivergenceTracker>(total_replicas, metric);
  for (ObjectRuntime& object : objects_) {
    object.trackers = trackers;
    object.num_replicas = object.spec->num_replicas();
    trackers += object.num_replicas;
  }
}

void Harness::AddGroundTruth(GroundTruth* ground_truth) {
  BESYNC_CHECK(!ran_) << "AddGroundTruth must precede Run";
  BESYNC_CHECK(ground_truth != nullptr);
  ground_truths_.push_back(ground_truth);
}

double Harness::WeightAt(ObjectIndex index, double t) const {
  return objects_[index].spec->weight->ValueAt(t);
}

double Harness::SourceWeightAt(ObjectIndex index, double t) const {
  const ObjectSpec& spec = *objects_[index].spec;
  return spec.source_weight ? spec.source_weight->ValueAt(t) : spec.weight->ValueAt(t);
}

Message Harness::MakeRefreshMessage(ObjectIndex index, int32_t cache_id, double t) {
  ObjectRuntime& object = objects_[index];
  const int slot = object.spec->replica_slot(cache_id);
  BESYNC_CHECK_GE(slot, 0) << "object " << index << " has no replica at cache "
                           << cache_id;
  Message message;
  message.kind = MessageKind::kRefresh;
  message.source_index = object.spec->source_index;
  message.cache_id = cache_id;
  message.object_index = index;
  message.value = object.state.value;
  message.version = object.state.version;
  message.send_time = t;
  message.last_update_time = object.state.last_update_time;
  message.cost = object.spec->refresh_cost;
  object.tracker(slot).OnRefresh(t, object.state.value, object.state.version);
  return message;
}

Message Harness::MakeRefreshMessage(ObjectIndex index, double t) {
  return MakeRefreshMessage(index, objects_[index].spec->caches.front(), t);
}

void Harness::DeliverRefresh(const Message& message, double t) {
  BESYNC_DCHECK(message.object_index >= 0);
  for (GroundTruth* ground_truth : ground_truths_) {
    ground_truth->OnCacheApply(message.object_index, message.cache_id, t,
                               message.value, message.version);
    for (const RefreshPayload& payload : message.extra_refreshes) {
      ground_truth->OnCacheApply(payload.object_index, message.cache_id, t,
                                 payload.value, payload.version);
    }
  }
}

void Harness::AdvanceGroundTruths(double t) {
  for (GroundTruth* ground_truth : ground_truths_) ground_truth->AdvanceTo(t);
}

void Harness::RefreshInstant(ObjectIndex index, double t) {
  for (int32_t cache_id : objects_[index].spec->caches) {
    const Message message = MakeRefreshMessage(index, cache_id, t);
    DeliverRefresh(message, t);
  }
}

void Harness::OnUpdateEvent(ObjectIndex index, double t) {
  ObjectRuntime& object = objects_[index];
  object.state.value = object.spec->process->ApplyUpdate(object.state.value, &object.rng);
  ++object.state.version;
  object.state.last_update_time = t;
  for (int r = 0; r < object.num_replicas; ++r) {
    object.trackers[r].OnUpdate(t, object.state.value, object.state.version);
  }
  for (GroundTruth* ground_truth : ground_truths_) {
    ground_truth->OnSourceUpdate(index, t, object.state.value, object.state.version);
  }
  scheduler_->OnObjectUpdate(index, t);
  ScheduleNextUpdate(index, t);
}

void Harness::ScheduleNextUpdate(ObjectIndex index, double now) {
  ObjectRuntime& object = objects_[index];
  const double next = object.spec->process->NextUpdateTime(now, &object.rng);
  if (!std::isfinite(next)) return;
  sim_.ScheduleAt(next, [this, index](double t) { OnUpdateEvent(index, t); });
}

Status Harness::Run(Scheduler* scheduler) {
  if (ran_) return Status::FailedPrecondition("Harness::Run called twice");
  ran_ = true;
  BESYNC_CHECK(scheduler != nullptr);
  scheduler_ = scheduler;

  // Initialize object state and synchronized cache contents at t = 0.
  for (ObjectRuntime& object : objects_) {
    object.spec->process->Reset();
    object.state.value = object.spec->initial_value;
    object.state.version = 0;
    object.state.last_update_time = -1.0;
    for (int r = 0; r < object.num_replicas; ++r) {
      object.trackers[r].OnRefresh(0.0, object.state.value, 0);
    }
  }
  for (GroundTruth* ground_truth : ground_truths_) ground_truth->Initialize(0.0);
  for (size_t i = 0; i < objects_.size(); ++i) {
    ScheduleNextUpdate(static_cast<ObjectIndex>(i), 0.0);
  }
  scheduler->Initialize(this);

  const double end = end_time();
  const double tick = config_.tick_length;
  bool measuring = config_.warmup <= 0.0;
  double next_weight_refresh = config_.weight_refresh_interval;

  double t = 0.0;
  while (t < end) {
    const double next = std::min(t + tick, end);
    sim_.RunUntil(next);
    scheduler->Tick(next);
    if (workload_->has_fluctuating_weights && next >= next_weight_refresh) {
      for (GroundTruth* ground_truth : ground_truths_) {
        ground_truth->RefreshWeights(next);
      }
      // Catch up past every interval boundary the tick crossed: a fixed
      // `+= interval` falls unboundedly behind `t` when
      // tick_length > weight_refresh_interval.
      next_weight_refresh =
          NextWeightRefreshDeadline(next, config_.weight_refresh_interval);
    }
    if (!measuring && next >= config_.warmup) {
      for (GroundTruth* ground_truth : ground_truths_) {
        ground_truth->StartMeasurement(next);
      }
      scheduler->OnMeasurementStart(next);
      measuring = true;
    }
    t = next;
  }
  for (GroundTruth* ground_truth : ground_truths_) ground_truth->FinishMeasurement(end);
  scheduler->Finalize(end);
  return Status::OK();
}

}  // namespace besync
