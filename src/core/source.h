#ifndef BESYNC_CORE_SOURCE_H_
#define BESYNC_CORE_SOURCE_H_

#include <cstdint>
#include <deque>
#include <vector>

#include "core/harness.h"
#include "core/threshold.h"
#include "fault/fault_schedule.h"
#include "net/link.h"
#include "obs/trace.h"
#include "priority/history.h"
#include "priority/priority.h"
#include "priority/priority_queue.h"
#include "priority/sampling.h"
#include "priority/special_case.h"
#include "protocol/sync_protocol.h"

namespace besync {

/// How a source learns the priorities of its modified objects (Section 8.2).
enum class MonitorMode {
  /// Trigger-based: the source recomputes an object's priority exactly when
  /// an update occurs.
  kTrigger,
  /// Sampling-based (Section 8.2.1): the source periodically samples each
  /// object's divergence and works with estimated priorities.
  kSampling,
};

/// Per-source configuration for the cooperative protocol.
struct SourceAgentConfig {
  ThresholdConfig threshold;
  MonitorMode monitor = MonitorMode::kTrigger;
  /// Base interval between divergence samples (sampling mode).
  double sampling_interval = 10.0;
  /// Sampling mode: schedule the next sample at the predicted
  /// threshold-crossing time when that is sooner than the base interval
  /// (Section 8.2.1's prediction formula).
  bool predictive_sampling = false;
  /// Minimum gap between samples of one object under predictive sampling.
  double min_sampling_gap = 1.0;
  /// Lambda source for the Poisson special-case policies.
  LambdaEstimateMode lambda_mode = LambdaEstimateMode::kTrue;
  /// Divide priorities by the object's refresh cost (Section 10.1: "a
  /// factor inversely proportional to cost"). Identity for unit costs.
  bool cost_aware_priority = true;
  /// Maximum refreshes packaged into one unit-cost message (Section 10.1
  /// batching extension). 1 = the paper's one-object-per-message model.
  /// Batching requires unit refresh costs.
  int max_batch = 1;
  /// A partial batch is flushed once the oldest eligible refresh has waited
  /// this long since the source's previous emission to the same cache.
  double max_batch_delay = 5.0;
};

/// One cooperating data source S_j: monitors the refresh priorities of its
/// local objects and, for every cache c that replicates any of them,
/// maintains an independent local refresh threshold T_{j,c} with its own
/// priority queue over the objects replicated at c (the paper's Section 5
/// protocol is the one-cache special case T_j = T_{j,0}). Whenever it has
/// source-side bandwidth available it refreshes, per cache, its
/// highest-priority objects whose priority exceeds that cache's threshold.
/// Feedback from cache c adjusts T_{j,c} only.
class SourceAgent {
 public:
  /// `policy` and `harness` must outlive the agent.
  /// `expected_feedback_period` is the fallback P_feedback used for every
  /// cache channel not covered by SetFeedbackPeriods().
  SourceAgent(int index, const SourceAgentConfig& config,
              double expected_feedback_period, const PriorityPolicy* policy,
              Harness* harness);

  int index() const { return index_; }
  /// Number of cache channels (caches replicating >= 1 of this source's
  /// objects). Valid after Start().
  int num_channels() const { return static_cast<int>(channels_.size()); }
  /// Cache id of channel `k` (channels are in ascending cache-id order).
  int32_t channel_cache_id(int k) const { return channels_[k].cache_id; }
  /// Local threshold T_{j,c} of channel `k` (channel 0 is the only channel
  /// in the paper's single-cache topology).
  double threshold(int k = 0) const { return channels_[k].controller.threshold(); }
  ThresholdController& controller(int k = 0) { return channels_[k].controller; }
  bool at_full_capacity() const { return at_full_capacity_; }
  int64_t refreshes_sent() const { return refreshes_sent_; }
  int64_t invalidations_sent() const { return invalidations_sent_; }
  double granted_rate() const { return granted_rate_; }
  size_t num_objects() const { return members_.size(); }
  /// Entries (live + lazily-invalidated stale) in channel `k`'s priority
  /// queue. MaybeCompact() keeps this bounded by 4x the channel's live
  /// object count (+ a small constant), independent of how many updates the
  /// run processed — pinned by the heap-growth regression test.
  size_t queue_size(int k = 0) const { return channels_[k].queue.size(); }
  /// Live objects replicated at channel `k`'s cache.
  size_t channel_num_objects(int k = 0) const {
    return static_cast<size_t>(channels_[k].num_members);
  }

  /// Registers an object hosted by this source. Objects of one source must
  /// form a contiguous index range (as produced by the workload generators).
  void AddObject(ObjectIndex index);

  /// Per-cache expected feedback periods, indexed by cache id (e.g. number
  /// of sources interested in cache c divided by B_c). Call before Start();
  /// caches beyond the vector fall back to the constructor scalar.
  void SetFeedbackPeriods(std::vector<double> periods_by_cache);

  /// Selects the consistency protocol driving this source's emissions. Must
  /// be called before Start() (channel state depends on it); null (the
  /// default) behaves as push refresh. The protocol must outlive the agent.
  void SetSyncProtocol(const SyncProtocol* protocol);

  /// Run-start hook: builds the per-cache channels from the workload's
  /// interest map and seeds the monitoring machinery (initial wake-ups for
  /// time-varying policies, sampling schedules).
  void Start(Simulation* sim, double tick_length);

  /// Trigger-mode notification that object `index` was updated at time `t`.
  void OnObjectUpdate(ObjectIndex index, double t);

  /// Handles a positive feedback message received at time `t`; the
  /// message's cache_id selects which threshold T_{j,c} is adjusted.
  void OnFeedback(const Message& message, double t);

  /// Tick send phase for channel `channel`: emits refresh messages into
  /// `cache_link` (the link of that channel's cache) while the shared
  /// source-side budget allows and over-threshold objects remain. Returns
  /// the number of messages sent. A call for channel 0 starts the source's
  /// tick: it clears the full-capacity flag.
  int64_t SendRefreshes(double now, Link* source_link, Link* cache_link,
                        int channel = 0);

  /// SendRefreshes with the emitted messages appended to `out` instead of
  /// enqueued on the cache link — the compute half of the sharded send
  /// phase. Everything the call touches (channel queues, trackers,
  /// controller, the source link's budget) is private to this source, so
  /// buffered sends run concurrently across sources; the scheduler then
  /// enqueues the buffers onto the (shared) cache links serially, in the
  /// shuffled source order, reproducing the serial phase bit for bit.
  int64_t SendRefreshesBuffered(double now, Link* source_link,
                                std::vector<Message>* out, int channel = 0);

  /// Invalidation-protocol send phase for channel `channel`: drains the
  /// channel's pending-invalidation queue into kInvalidate messages (up to
  /// max_invalidate_batch replica notifications per message) while the
  /// shared source-side budget allows. Mirrors SendRefreshes' channel-0
  /// tick-opening contract and the buffered/direct sink split. Returns the
  /// number of messages emitted. Requires an invalidation protocol.
  int64_t SendInvalidations(double now, Link* source_link, Link* cache_link,
                            int channel = 0);
  int64_t SendInvalidationsBuffered(double now, Link* source_link,
                                    std::vector<Message>* out, int channel = 0);

  /// Enables the secondary, source-objective priority queues used by the
  /// competitive protocol (Section 7): updates are additionally prioritized
  /// under the source's own weighting scheme.
  void EnableSecondaryQueue() { secondary_enabled_ = true; }

  /// Sends up to `max_count` refreshes picked by the *source's own* priority
  /// scheme, bypassing the threshold (these consume the bandwidth share the
  /// cache granted the source for its own objectives). Does not bump the
  /// threshold controller. Returns the number sent.
  int64_t SendSecondary(double now, int64_t max_count, Link* source_link,
                        Link* cache_link, int channel = 0);

  /// Fault hook: cache `cache_id` restarted empty at `now`; every replica
  /// this source keeps there must be re-shipped. Appends the affected
  /// object indices to `resynced` (the scheduler's outstanding-resync set).
  /// Under kNaiveReenqueue the replicas simply rejoin the normal threshold
  /// machinery at their current priorities — they wait their turn behind
  /// ordinary refresh traffic, and low-priority replicas may never be
  /// re-pushed at all. Under kRecoveryPriority they enter a dedicated
  /// recovery FIFO drained by SendRecovery ahead of the send phase.
  /// Invalidation sources additionally mark the replicas notified (the
  /// crash told the cache everything it holds is gone). No-op when the
  /// source has no objects at the cache.
  void OnCacheRestart(int32_t cache_id, double now, RecoveryPolicy policy,
                      std::vector<ObjectIndex>* resynced);

  /// Recovery send phase (kRecoveryPriority): emits one refresh per queued
  /// replica of channel `channel`'s recovery FIFO while the shared source
  /// link grants budget, at infinite forward priority (relays move resync
  /// traffic like demand pulls). No threshold bumping — recovery traffic
  /// must not inflate T_{j,c}. Returns the number sent. Runs for every
  /// protocol: recovery is a server-initiated fill even when steady-state
  /// refreshes are pull-only.
  int64_t SendRecovery(double now, Link* source_link, Link* cache_link,
                       int channel = 0);
  /// Replicas still awaiting a recovery refresh on channel `k`.
  size_t recovery_queue_size(int k = 0) const {
    return channels_[k].recovery_queue.size();
  }

  /// Serves a miss-triggered pull of `index` toward `cache_id` (read path):
  /// performs the same per-object bookkeeping as a push emission — tracker
  /// reset via MakeRefreshMessage, history/sampling updates, and an epoch
  /// bump so any queued push entry for the object dies lazily instead of
  /// re-sending the value the pull just delivered — but bumps no threshold
  /// and counts no push. Returns the refresh-shaped response: is_pull set,
  /// the channel's current threshold piggybacked, and infinite
  /// forward_priority so priority-preserving relays move demand traffic
  /// first. The caller routes it (and charges the source link).
  Message ServePull(ObjectIndex index, int32_t cache_id, double now);

  /// Observability wiring (obs/trace.h): records this source's lifecycle
  /// events — update enqueues, refresh sends, invalidation sends, resync
  /// re-enqueues — into `trace`. Null (the default) disables recording at
  /// the cost of one pointer test per hook. Sources record only into their
  /// own buffer, so the sharded send phase stays race-free and the
  /// per-source event order is identical at any thread count.
  void SetTraceBuffer(TraceBuffer* trace) { trace_ = trace; }

  /// Resets statistics counters (measurement start).
  void ResetCounters() {
    refreshes_sent_ = 0;
    invalidations_sent_ = 0;
  }

  /// Current weighted priority of an object under this agent's policy.
  /// The channel-less form is valid only on single-channel sources (checked):
  /// a multi-cache source has one tracker and threshold per cache channel,
  /// so "the" priority of an object is ill-defined without naming one.
  double ComputePriority(ObjectIndex index, double now) const;
  double ComputePriority(ObjectIndex index, double now, int channel) const;

  /// Priority under the source's own weighting scheme (Section 7); same
  /// single-channel restriction / channel overload as ComputePriority.
  double ComputeSourcePriority(ObjectIndex index, double now) const;
  double ComputeSourcePriority(ObjectIndex index, double now, int channel) const;

 private:
  struct LocalState {
    uint64_t epoch = 0;
    SampledTracker sampled;
    HistoryRateEstimator history;
  };

  /// The source's model of one replica under the invalidation protocol:
  /// fresh (the cache holds the live value as far as the source shipped it),
  /// queued (an update happened, the notification awaits bandwidth), or
  /// sent (notified — further updates are free until a pull refills it).
  /// A lost notification strands the replica in kInvalidateSent: the source
  /// believes the cache knows, the cache believes the replica is valid —
  /// the valid-but-stale hazard pinned in tests/protocol_test.cc.
  enum ReplicaNotifyState : uint8_t {
    kReplicaFresh = 0,
    kInvalidateQueued = 1,
    kInvalidateSent = 2,
  };

  /// Per-cache protocol state: threshold controller T_{j,c}, the priority
  /// queues over the objects replicated at the cache, and the per-replica
  /// monitoring state. The fixed-size per-object tables (members, slot_of,
  /// replica_slots, locals) are arena spans carved from the harness run
  /// arena by BuildChannels — sized once from the interest map, never
  /// resized, and freed wholesale with the run.
  struct Channel {
    Channel(int32_t cache, const ThresholdConfig& config, double feedback_period)
        : cache_id(cache), controller(config, feedback_period, /*start_time=*/0.0) {}

    int32_t cache_id;
    ThresholdController controller;
    /// Objects replicated at this cache (ascending global indices).
    ObjectIndex* members = nullptr;
    int32_t num_members = 0;
    /// Source-local object offset -> channel slot, -1 if not replicated
    /// (size = the source's total object count).
    int32_t* slot_of = nullptr;
    /// Replica slot of each channel member at this cache (tracker index).
    int32_t* replica_slots = nullptr;
    LocalState* locals = nullptr;
    /// Event-keyed queue: priority recomputed on updates (or samples).
    LazyMaxHeap queue;
    /// Competitive mode: the same objects keyed by the source's own priority.
    LazyMaxHeap secondary_queue;
    /// Time-varying policies: wake-ups at predicted threshold crossings.
    TimeMinHeap wake_queue;
    double last_emit_time = 0.0;
    /// Invalidation protocol only: per-member ReplicaNotifyState (arena
    /// span, null otherwise) and the FIFO of channel slots awaiting a
    /// notification. Entries whose state moved off kInvalidateQueued
    /// (a pull refilled the replica first) die lazily at send time.
    uint8_t* invalid_state = nullptr;
    std::deque<int32_t> invalidate_queue;
    /// Channel slots awaiting a recovery refresh after the cache crashed
    /// (RecoveryPolicy::kRecoveryPriority only; drained by SendRecovery).
    std::deque<int32_t> recovery_queue;
  };

  /// Inlined epoch resolver over a channel's local-state table. A plain
  /// struct (not a type-erased EpochFn) so the heap templates inline the
  /// lookup — the staleness check runs once per heap comparison on the
  /// send-phase hot path.
  struct ChannelEpoch {
    const LocalState* locals;
    const int32_t* slot_of;
    ObjectIndex first_member;
    uint64_t operator()(ObjectIndex index) const {
      return locals[slot_of[index - first_member]].epoch;
    }
  };

  void BuildChannels();
  int ChannelSlot(const Channel& channel, ObjectIndex index) const;
  LocalState& local(Channel* channel, ObjectIndex index);
  ChannelEpoch MakeEpochFn(const Channel* channel) const;
  PriorityContext MakeContext(const Channel& channel, ObjectIndex index, double now,
                              bool use_source_weight) const;
  double ChannelPriority(const Channel& channel, ObjectIndex index, double now) const;
  double ChannelSourcePriority(const Channel& channel, ObjectIndex index,
                               double now) const;

  /// Destination of emitted refreshes: the cache's tier-1 edge link
  /// (serial send phase, direct enqueue) or a per-source buffer the
  /// scheduler flushes in the canonical order (sharded send phase).
  struct EmitSink {
    Link* link = nullptr;
    std::vector<Message>* buffer = nullptr;
    void Deliver(Message&& message) const {
      if (link != nullptr) {
        link->Enqueue(std::move(message));
      } else {
        buffer->push_back(std::move(message));
      }
    }
  };

  void OnSampleEvent(int channel_index, ObjectIndex index, double t, Simulation* sim);
  void ScheduleNextSample(int channel_index, ObjectIndex index, double now,
                          Simulation* sim);
  /// Sends one refresh for `index` to `channel`'s cache (budget already
  /// secured). Threshold bumping applies only to refreshes governed by the
  /// threshold protocol. `priority` is the queue key that won the send slot,
  /// stamped on the message for priority-preserving relay forwarding.
  void EmitRefresh(Channel* channel, ObjectIndex index, double now,
                   const EmitSink& sink, bool bump_threshold, double priority);
  /// Sends one batched message covering all of `batch` (unit cost).
  void EmitBatch(Channel* channel, const std::vector<QueueEntry>& batch, double now,
                 const EmitSink& sink);
  /// Re-arms the wake-up entry of `index` (time-varying policies).
  void PushWake(Channel* channel, ObjectIndex index, double now);
  int64_t SendRefreshesToSink(double now, Link* source_link, const EmitSink& sink,
                              int channel);
  int64_t SendInvalidationsToSink(double now, Link* source_link,
                                  const EmitSink& sink, int channel);
  /// Whether the push-refresh machinery (queues, wake-ups, sampling) drives
  /// this source. True without a protocol — the historical default.
  bool push_protocol() const {
    return protocol_ == nullptr || protocol_->emits_push_refreshes();
  }
  /// Records one lifecycle event into trace_ (callers test trace_ first).
  void RecordTrace(TraceEventKind kind, double t, int32_t cache_id,
                   ObjectIndex index, int64_t version, bool is_pull);
  int64_t SendRefreshesEventKeyed(Channel* channel, double now, Link* source_link,
                                  const EmitSink& sink);
  int64_t SendRefreshesBatched(Channel* channel, double now, Link* source_link,
                               const EmitSink& sink);
  int64_t SendRefreshesTimeVarying(Channel* channel, double now, Link* source_link,
                                   const EmitSink& sink);
  void MaybeCompact(Channel* channel);

  int index_;
  SourceAgentConfig config_;
  const PriorityPolicy* policy_;
  const SyncProtocol* protocol_ = nullptr;
  Harness* harness_;
  double expected_feedback_period_;
  std::vector<double> feedback_periods_by_cache_;
  std::vector<ObjectIndex> members_;
  ObjectIndex first_member_ = -1;
  std::vector<Channel> channels_;
  bool secondary_enabled_ = false;
  double tick_length_ = 1.0;
  bool at_full_capacity_ = false;
  int64_t refreshes_sent_ = 0;
  int64_t invalidations_sent_ = 0;
  double granted_rate_ = 0.0;
  Simulation* sim_ = nullptr;
  /// This source's trace buffer; null unless observability tracing is on.
  TraceBuffer* trace_ = nullptr;
  /// Send-phase scratch, reused across ticks so the per-tick loops do not
  /// reallocate (batched gathering and due time-varying wake-ups).
  std::vector<QueueEntry> scratch_batch_;
  std::vector<QueueEntry> scratch_due_;
};

}  // namespace besync

#endif  // BESYNC_CORE_SOURCE_H_
