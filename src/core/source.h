#ifndef BESYNC_CORE_SOURCE_H_
#define BESYNC_CORE_SOURCE_H_

#include <cstdint>
#include <vector>

#include "core/harness.h"
#include "core/threshold.h"
#include "net/link.h"
#include "priority/history.h"
#include "priority/priority.h"
#include "priority/priority_queue.h"
#include "priority/sampling.h"
#include "priority/special_case.h"

namespace besync {

/// How a source learns the priorities of its modified objects (Section 8.2).
enum class MonitorMode {
  /// Trigger-based: the source recomputes an object's priority exactly when
  /// an update occurs.
  kTrigger,
  /// Sampling-based (Section 8.2.1): the source periodically samples each
  /// object's divergence and works with estimated priorities.
  kSampling,
};

/// Per-source configuration for the cooperative protocol.
struct SourceAgentConfig {
  ThresholdConfig threshold;
  MonitorMode monitor = MonitorMode::kTrigger;
  /// Base interval between divergence samples (sampling mode).
  double sampling_interval = 10.0;
  /// Sampling mode: schedule the next sample at the predicted
  /// threshold-crossing time when that is sooner than the base interval
  /// (Section 8.2.1's prediction formula).
  bool predictive_sampling = false;
  /// Minimum gap between samples of one object under predictive sampling.
  double min_sampling_gap = 1.0;
  /// Lambda source for the Poisson special-case policies.
  LambdaEstimateMode lambda_mode = LambdaEstimateMode::kTrue;
  /// Divide priorities by the object's refresh cost (Section 10.1: "a
  /// factor inversely proportional to cost"). Identity for unit costs.
  bool cost_aware_priority = true;
  /// Maximum refreshes packaged into one unit-cost message (Section 10.1
  /// batching extension). 1 = the paper's one-object-per-message model.
  /// Batching requires unit refresh costs.
  int max_batch = 1;
  /// A partial batch is flushed once the oldest eligible refresh has waited
  /// this long since the source's previous emission.
  double max_batch_delay = 5.0;
};

/// One cooperating data source S_j: monitors the refresh priorities of its
/// local objects, maintains a local refresh threshold T_j, and whenever it
/// has source-side bandwidth available refreshes its highest-priority
/// objects whose priority exceeds T_j (Section 5).
class SourceAgent {
 public:
  /// `policy` and `harness` must outlive the agent.
  SourceAgent(int index, const SourceAgentConfig& config,
              double expected_feedback_period, const PriorityPolicy* policy,
              Harness* harness);

  int index() const { return index_; }
  double threshold() const { return controller_.threshold(); }
  ThresholdController& controller() { return controller_; }
  bool at_full_capacity() const { return at_full_capacity_; }
  int64_t refreshes_sent() const { return refreshes_sent_; }
  double granted_rate() const { return granted_rate_; }
  size_t num_objects() const { return members_.size(); }

  /// Registers an object hosted by this source. Objects of one source must
  /// form a contiguous index range (as produced by the workload generators).
  void AddObject(ObjectIndex index);

  /// Run-start hook: seeds the monitoring machinery (initial wake-ups for
  /// time-varying policies, sampling schedules).
  void Start(Simulation* sim, double tick_length);

  /// Trigger-mode notification that object `index` was updated at time `t`.
  void OnObjectUpdate(ObjectIndex index, double t);

  /// Handles a positive feedback message received at time `t`.
  void OnFeedback(const Message& message, double t);

  /// Tick send phase: emits refresh messages into `cache_link` while the
  /// source-side budget allows and over-threshold objects remain. Returns
  /// the number of messages sent.
  int64_t SendRefreshes(double now, Link* source_link, Link* cache_link);

  /// Enables the secondary, source-objective priority queue used by the
  /// competitive protocol (Section 7): updates are additionally prioritized
  /// under the source's own weighting scheme. Call before Start().
  void EnableSecondaryQueue() { secondary_enabled_ = true; }

  /// Sends up to `max_count` refreshes picked by the *source's own* priority
  /// scheme, bypassing the threshold (these consume the bandwidth share the
  /// cache granted the source for its own objectives). Does not bump the
  /// threshold controller. Returns the number sent.
  int64_t SendSecondary(double now, int64_t max_count, Link* source_link,
                        Link* cache_link);

  /// Resets statistics counters (measurement start).
  void ResetCounters() { refreshes_sent_ = 0; }

  /// Current weighted priority of an object under this agent's policy.
  double ComputePriority(ObjectIndex index, double now) const;

  /// Priority under the source's own weighting scheme (Section 7).
  double ComputeSourcePriority(ObjectIndex index, double now) const;

 private:
  struct LocalState {
    uint64_t epoch = 0;
    SampledTracker sampled;
    HistoryRateEstimator history;
  };

  LocalState& local(ObjectIndex index);
  const LocalState& local(ObjectIndex index) const;
  uint64_t CurrentEpoch(ObjectIndex index) const { return local(index).epoch; }
  EpochFn MakeEpochFn() const;
  PriorityContext MakeContext(ObjectIndex index, double now,
                              bool use_source_weight) const;

  void OnSampleEvent(ObjectIndex index, double t, Simulation* sim);
  void ScheduleNextSample(ObjectIndex index, double now, Simulation* sim);
  /// Sends one refresh for `index` (budget already secured). Threshold
  /// bumping applies only to refreshes governed by the threshold protocol.
  void EmitRefresh(ObjectIndex index, double now, Link* cache_link,
                   bool bump_threshold);
  /// Sends one batched message covering all of `batch` (unit cost).
  void EmitBatch(const std::vector<QueueEntry>& batch, double now, Link* cache_link);
  /// Re-arms the wake-up entry of `index` (time-varying policies).
  void PushWake(ObjectIndex index, double now);
  int64_t SendRefreshesEventKeyed(double now, Link* source_link, Link* cache_link);
  int64_t SendRefreshesBatched(double now, Link* source_link, Link* cache_link);
  int64_t SendRefreshesTimeVarying(double now, Link* source_link, Link* cache_link);
  void MaybeCompact();

  int index_;
  SourceAgentConfig config_;
  const PriorityPolicy* policy_;
  Harness* harness_;
  ThresholdController controller_;
  std::vector<ObjectIndex> members_;
  ObjectIndex first_member_ = -1;
  std::vector<LocalState> locals_;
  /// Event-keyed queue: priority recomputed on updates (or samples).
  LazyMaxHeap queue_;
  /// Competitive mode: the same objects keyed by the source's own priority.
  LazyMaxHeap secondary_queue_;
  bool secondary_enabled_ = false;
  /// Time-varying policies: wake-ups at predicted threshold crossings.
  TimeMinHeap wake_queue_;
  double tick_length_ = 1.0;
  bool at_full_capacity_ = false;
  int64_t refreshes_sent_ = 0;
  double granted_rate_ = 0.0;
  double last_emit_time_ = 0.0;
  Simulation* sim_ = nullptr;
};

}  // namespace besync

#endif  // BESYNC_CORE_SOURCE_H_
