#ifndef BESYNC_CORE_SYSTEM_H_
#define BESYNC_CORE_SYSTEM_H_

#include <memory>
#include <string>
#include <vector>

#include "core/cache.h"
#include "core/harness.h"
#include "core/relay.h"
#include "core/source.h"
#include "fault/fault_schedule.h"
#include "net/network.h"
#include "obs/metrics.h"
#include "obs/obs_config.h"
#include "obs/trace.h"
#include "priority/priority.h"
#include "protocol/sync_protocol.h"
#include "read/read_path.h"
#include "util/phase_timer.h"
#include "util/quantile.h"
#include "util/random.h"
#include "util/result.h"
#include "util/shard_pool.h"
#include "util/spsc_ring.h"

namespace besync {

/// Configuration of the full cooperative protocol (Sections 5-6),
/// generalized to a topology of `num_caches` caches with independent
/// cache-side links.
struct CooperativeConfig {
  /// Number of caches. 1 reproduces the paper's Figure-1 star topology.
  /// Must cover every cache id in the workload's interest map.
  int num_caches = 1;
  /// Average cache-side bandwidth B_C (messages/second), applied to every
  /// cache not covered by `cache_bandwidths`.
  double cache_bandwidth_avg = 10.0;
  /// Optional per-cache average bandwidth; entry c overrides
  /// cache_bandwidth_avg for cache c (values <= 0 fall back to the average).
  std::vector<double> cache_bandwidths;
  /// Average source-side bandwidth B_S; <= 0 means unconstrained.
  double source_bandwidth_avg = -1.0;
  /// Maximum relative bandwidth change rate mB (0 = constant).
  double bandwidth_change_rate = 0.0;
  /// Refresh priority policy; the paper's general area priority by default.
  PolicyKind policy = PolicyKind::kArea;
  /// History blend share for PolicyKind::kAreaHistory.
  double history_beta = 0.5;
  /// Per-source protocol knobs (threshold parameters, monitoring mode).
  SourceAgentConfig source;
  /// Expected feedback period P_feedback; 0 derives the paper's estimate per
  /// cache (number of sources interested in the cache / the cache's average
  /// bandwidth), floored at one tick since feedback cannot arrive more often
  /// than once per tick.
  double expected_feedback_period = 0.0;
  /// Random loss probability on the cache-side links (robustness studies).
  /// A lost refresh leaves the cache stale until the object's next update
  /// raises its priority over the threshold again — the protocol has no
  /// acknowledgments, by design.
  double loss_rate = 0.0;
  /// Relay topology override. Flat (default) defers to the workload's
  /// topology; a non-flat spec here wins. Either way, a flat result is the
  /// historical one-hop star, bit for bit.
  TopologySpec topology;
  /// Order in which relays drain their stores (tree topologies only).
  RelayForwardPolicy relay_forward = RelayForwardPolicy::kFifo;
  /// Consistency protocol (src/protocol/): push refresh (the paper's, and
  /// the bitwise-identical default), invalidation, or TTL/lease. Non-push
  /// protocols replace the threshold send phase with their own emission
  /// rules and disable surplus feedback; reads of invalid/expired replicas
  /// miss and pull.
  SyncProtocolConfig protocol;
  /// Scripted fault schedule (src/fault/): cache crash/restart, relay
  /// failover, link partitions, slowdowns. Empty (the default) keeps every
  /// fault hook cold — bitwise identical to the fault-free engine. A
  /// non-empty schedule here wins over the workload's; either must validate
  /// against the run's topology.
  FaultSchedule faults;
  /// How sources re-ship a restarted cache's replicas: re-enqueue into the
  /// normal threshold machinery, or a dedicated recovery channel drained
  /// ahead of the send phase.
  RecoveryPolicy recovery_policy = RecoveryPolicy::kNaiveReenqueue;
  /// Fate of the refreshes stored at (and queued toward) a failed relay.
  RelayStorePolicy relay_store_policy = RelayStorePolicy::kDrop;
  /// Intra-run worker threads for the sharded tick phases (send-phase
  /// emission and flush, per-cache delivery pop and apply). 1 (default)
  /// runs the historical sequential path; N > 1 partitions sources, caches
  /// and tier-1 nodes across N shards with a per-tick barrier (clamped to
  /// the widest shardable axis — extra lanes would only idle). Results are
  /// bitwise identical at any value: the sharded phases draw no shared
  /// randomness, cross-cache float accumulation is hoisted or replayed in
  /// the sequential order, and per-link enqueue order is preserved by
  /// partitioning the flush by first-hop node (see DESIGN.md, "Two-axis
  /// sharding: link-major pop, cache-major apply").
  int run_threads = 1;
  /// Opt-in parallel send-order drawing: 0 (default) shuffles the source
  /// visiting order from the main scheduler stream — the historical
  /// bitwise-stable path. S > 0 splits the order into S pinned logical
  /// shards, each shuffling its own child RNG stream
  /// (scheduler_rng.Split(kSendOrderSplitKey + shard)) so the draws run
  /// inside the send-phase workers, routed to the link-owning lanes
  /// through SPSC rings. Any S > 0 changes the emission order versus the
  /// default (it is a different — equally valid — run), but a given S is
  /// bitwise deterministic at every run_threads value.
  int send_order_shards = 0;
  /// Optional per-phase wall-time profiler (util/phase_timer.h); not
  /// owned, may be shared across runs. The timings are wall clock and
  /// nondeterministic — surface them only in opt-in perf output, never in
  /// the run JSON. Null (default) costs one branch per phase.
  PhaseTimer* phase_timer = nullptr;
  /// Observability (src/obs/): per-tick time series and message-lifecycle
  /// tracing. Disabled (default) allocates nothing and leaves every hook a
  /// null-pointer test; enabled, the collectors only read engine state, so
  /// run results stay byte-identical either way (see DESIGN.md,
  /// "Observability without perturbation").
  ObsConfig obs;
};

/// "Our algorithm": the adaptive threshold-based cooperative refresh
/// scheduler of Section 5, running over the bandwidth-constrained network
/// model and generalized so the cache count is a first-class topology
/// parameter. Each tick it
///   1. delivers pending feedback to sources — feedback from cache c
///      adjusts the per-cache threshold T_{j,c} only,
///   2. lets every source emit refreshes for its over-threshold objects
///      within its source-side budget (sources visited in random order,
///      each source serving its cache channels in ascending cache order),
///   3. delivers queued refresh messages to each cache within that cache's
///      budget, and
///   4. spends each cache's surplus on positive feedback to the sources
///      with the highest known thresholds at that cache.
class CooperativeScheduler : public Scheduler {
 public:
  explicit CooperativeScheduler(const CooperativeConfig& config);

  std::string name() const override { return "cooperative"; }
  void Initialize(Harness* harness) override;
  void OnObjectUpdate(ObjectIndex index, double t) override;
  void Tick(double t) override;
  void OnMeasurementStart(double t) override;
  /// Flushes the last tick into the link utilization stats.
  void Finalize(double t) override;
  SchedulerStats stats() const override;
  std::shared_ptr<ObsOutput> TakeObsOutput() override;

  // Introspection (tests, competitive subclass).
  int num_sources() const { return static_cast<int>(sources_.size()); }
  int num_caches() const { return static_cast<int>(caches_.size()); }
  int num_relays() const { return static_cast<int>(relays_.size()); }
  const SourceAgent& source(int j) const { return *sources_[j]; }
  SourceAgent& mutable_source(int j) { return *sources_[j]; }
  Link& cache_link(int c = 0) { return network_->cache_link(c); }
  Network& network() { return *network_; }
  /// Fails on caches no source is interested in (those stay agent-less).
  CacheAgent& cache(int c = 0);
  /// Relay agent of topology node `node` (node >= num_caches; checked).
  RelayAgent& relay(int32_t node);
  /// The client read subsystem (inert unless the workload configures reads
  /// or a finite capacity — see read/read_path.h).
  const ReadPath& read_path() const { return read_path_; }
  /// True while leaf cache `c` is crashed (fault injection).
  bool cache_down(int c) const {
    return !cache_down_.empty() && cache_down_[c] != 0;
  }
  /// The scheduler-level metrics (fault tallies, resync digest, relay
  /// control moves): every field SchedulerStats aggregates from the
  /// scheduler itself lives here, registered once and reset in one call
  /// (tests/stats_reset_test.cc iterates this to prove the measurement
  /// reset misses nothing).
  const MetricsRegistry& metrics_registry() const { return metrics_; }

 protected:
  /// Hook for subclasses to decorate outgoing feedback (competitive rate
  /// grants, Section 7).
  virtual void FillFeedback(Message* feedback, int source_index, double t);

  /// The send phase (step 2); overridden by the competitive scheduler to
  /// interleave source-priority refreshes.
  virtual void SendPhase(double t);

  /// Sharded send phase (run_threads > 1): sources compute their emissions
  /// concurrently into per-source buffers (every mutated structure —
  /// channel queues, trackers, threshold controllers, the source link — is
  /// private to one source), then the buffers are flushed onto the shared
  /// cache links serially in the shuffled source order. The send-order
  /// shuffle itself runs as a main-thread prelude overlapped with the
  /// worker dispatch (the emission compute reads neither the scheduler RNG
  /// nor source_order_). Bitwise identical to the serial SendPhase at any
  /// shard count.
  void SendPhaseSharded(double t);

  /// Step 2 under the invalidation protocol: sources drain their pending
  /// invalidation queues instead of the threshold priority queues, with the
  /// same shuffled visiting order, source-side budgets, and serial/sharded
  /// split as the refresh send phase. TTL runs no step-2 phase at all (and
  /// draws no shuffle randomness — updates are silent at the source).
  void SendInvalidationPhase(double t);

  /// Parallel flush of the per-source send buffers (sharded send phases):
  /// every shard replays the full shuffled source order but enqueues only
  /// the messages whose first-hop node falls in its slice of the node
  /// range. Per-link enqueue order — the flush's only observable — is
  /// exactly the serial flush order, because each link belongs to one
  /// shard and every shard scans in the same global order. Clears the
  /// buffers.
  void FlushSendBuffersSharded();

  /// Step 2 under send_order_shards > 0 (both refresh and invalidation
  /// sends): each logical shard shuffles its pinned source slice with its
  /// own child RNG stream and emits in that order; with a pool, producer
  /// lanes route the buffered messages through SPSC rings to the lanes
  /// owning their first-hop links, which enqueue in logical-shard-major
  /// order. The per-link enqueue order is a pure function of the S child
  /// streams — independent of run_threads (see DESIGN.md).
  void SendPhaseShardOrdered(double t, bool invalidations);

  /// Sharded half of tick step 3: each cache link pops this tick's
  /// deliverable refreshes concurrently (budget, loss draws and stats are
  /// per-link state) into per-cache scratch for ApplyDeliveriesSharded.
  void CollectDeliveriesSharded();

  /// Second half of sharded step 3: applies each cache's collected
  /// deliveries on the shard owning the cache. The one cross-cache step —
  /// GroundTruth integrating its running sums up to t — is hoisted onto
  /// the main thread first (only on ticks where at least one refresh will
  /// be applied, matching the serial integration points bit for bit);
  /// after it, every apply touches per-cache state only. Global counters
  /// the apply hooks feed (read-path totals, resync bookkeeping) go to
  /// per-cache scratch, drained in ascending cache order after the
  /// barrier — the exact serial accumulation sequence.
  void ApplyDeliveriesSharded(double t);

  /// Drains the per-cache resync scratch (deliveries, closed episodes)
  /// into resync_deliveries_ / resync_digest_ in ascending cache order.
  void DrainResyncNotes();

  /// The relay phase of the tick: each relay (parents first) drains its
  /// ingress edge into its store, then forwards eligible refreshes one hop
  /// toward their leaf under its egress budget. No-op on flat topologies.
  void RelayPhase(double t);

  /// Applies every scheduled fault event with time <= t, in schedule order.
  /// Runs at the top of the tick, before the links begin theirs — a link
  /// partitioned at t has zero budget for the whole tick containing t.
  /// No-op (and branch-only) when the schedule is empty.
  void ApplyDueFaults(double t);
  /// One fault event; dispatched by ApplyDueFaults.
  void ApplyFaultEvent(const FaultEvent& event, double t);
  /// Recovery send phase (RecoveryPolicy::kRecoveryPriority): sources in
  /// ascending id order (no RNG — recovery must not perturb the scheduler
  /// stream) drain their recovery FIFOs into the tier-1 edges under the
  /// shared source budgets. Runs between the control drain and the send
  /// phase, for every protocol: recovery is a server-initiated fill even
  /// when steady-state refreshes are pull-only.
  void RecoveryPhase(double t);
  /// Marks resync-outstanding replicas of cache `c` delivered; closes the
  /// episode (into the time-to-resync digest) when the last one lands.
  void NoteResyncDelivery(int c, const Message& message, double t);
  /// Rebuilds sources_by_node_ from the network's current (post-failover)
  /// routing: a relay's list is the sorted union over its live subtree.
  void RebuildSourcesByNode();

  /// Serves one miss-triggered pull request at its source: builds the
  /// refresh-shaped pull response (marked Message::is_pull, current
  /// threshold piggybacked), debts the source link by its cost, and
  /// enqueues it on the target cache's tier-1 edge — from where it travels
  /// exactly like a pushed refresh, relay hops included.
  void ServePull(const Message& request, double t);

  CooperativeConfig config_;
  Harness* harness_ = nullptr;
  std::unique_ptr<PriorityPolicy> policy_;
  /// The run's consistency protocol; every emission / delivery / feedback
  /// decision point dispatches through it. Push refresh degenerates to the
  /// historical code paths bit for bit.
  std::unique_ptr<SyncProtocol> protocol_;
  std::unique_ptr<Network> network_;
  std::vector<std::unique_ptr<SourceAgent>> sources_;
  /// One agent per cache, in cache-id order.
  std::vector<std::unique_ptr<CacheAgent>> caches_;
  /// One agent per relay node, indexed by node - num_caches (tree only).
  std::vector<std::unique_ptr<RelayAgent>> relays_;
  /// Per cache: the ascending source ids with >= 1 object replicated there.
  std::vector<std::vector<int32_t>> sources_by_cache_;
  /// Per topology node: the ascending source ids with >= 1 object
  /// replicated somewhere in the node's subtree (leaf entries ==
  /// sources_by_cache_). Drives the tier-1 feedback drain.
  std::vector<std::vector<int32_t>> sources_by_node_;
  std::vector<int> source_order_;
  std::vector<int32_t> object_source_;
  /// Client read streams, residency/eviction and pull bookkeeping; inert
  /// (and branch-free on the hot paths) when the workload disables reads.
  ReadPath read_path_;
  /// Worker team for the sharded tick phases; null when run_threads <= 1
  /// (every phase then takes its historical sequential path).
  std::unique_ptr<ShardPool> shard_pool_;
  /// Per-source emission buffers (sharded send phase), reused across ticks.
  std::vector<std::vector<Message>> send_buffers_;
  /// Per-cache collected deliveries (sharded delivery), reused across ticks.
  std::vector<std::vector<Message>> deliver_buffers_;

  // --- opt-in parallel send-order state (send_order_shards > 0) ---

  /// One child RNG stream per logical send-order shard, split once at
  /// Initialize (Split never advances the parent, so enabling the mode
  /// leaves every other draw of the scheduler stream untouched).
  std::vector<Rng> send_order_rngs_;
  /// Logical shard -> its pinned ascending source ids (ShardRange over the
  /// source count); each list is shuffled in place by its own stream.
  std::vector<std::vector<int>> send_order_sources_;
  /// (logical shard ls, consumer lane d) -> ring ls * num_shards + d; the
  /// producer lane owning ls pushes, lane d (owner of the message's
  /// first-hop node) pops. Sized only when the mode runs with a pool.
  std::vector<std::unique_ptr<SpscRing<Message>>> send_rings_;
  /// Per-ring overflow, drained after the ring so per-producer order
  /// survives a full ring.
  std::vector<std::vector<Message>> send_spill_;

  // --- fault injection (all empty / zero on an empty schedule) ---

  /// One crashed cache's outstanding post-restart refill: the replicas the
  /// sources committed to (or may eventually) re-ship, cleared as
  /// deliveries land. The episode closes when `remaining` hits zero.
  struct ResyncState {
    bool open = false;
    double start = 0.0;
    int64_t remaining = 0;
    /// By global object index; sized lazily at the first restart.
    std::vector<uint8_t> outstanding;
  };

  /// The effective schedule's events, time-sorted; empty = fault-free.
  std::vector<FaultEvent> fault_events_;
  size_t fault_cursor_ = 0;
  /// Per leaf cache: 1 between kCacheCrash and kCacheRestart. Empty unless
  /// the schedule is non-empty.
  std::vector<uint8_t> cache_down_;
  /// Per leaf cache; sized alongside cache_down_.
  std::vector<ResyncState> resync_;
  /// Scratch for collecting the sources' resynced object lists.
  std::vector<ObjectIndex> resync_scratch_;
  /// Per-cache delivery-phase scratch for the global resync tallies (the
  /// parallel apply must not touch resync_deliveries_ / resync_digest_
  /// directly). Drained by DrainResyncNotes; sized alongside cache_down_.
  /// close_adds counts digest samples, not episodes: the historical serial
  /// loop re-samples the episode duration for every tracked delivery in
  /// the closing tick once remaining hits zero, and the recorded baselines
  /// pin that behavior bit for bit.
  struct ResyncNote {
    int64_t deliveries = 0;
    int64_t close_adds = 0;
    double duration = 0.0;
  };
  std::vector<ResyncNote> resync_notes_;

  // --- scheduler-level metrics (obs/metrics.h) ---

  /// Every counter the scheduler itself tallies (as opposed to per-agent /
  /// per-link state, which stays on its entity for shard safety), plus the
  /// time-to-resync digest. Registered once in the constructor; zeroed as a
  /// whole by Initialize and OnMeasurementStart. The handles below are
  /// owned by the registry and each has exactly one increment site.
  MetricsRegistry metrics_;
  Counter* relay_control_moved_ = nullptr;
  Counter* cache_crashes_ = nullptr;
  Counter* cache_restarts_ = nullptr;
  Counter* relay_failures_ = nullptr;
  Counter* link_down_events_ = nullptr;
  Counter* slowdown_events_ = nullptr;
  Counter* resync_deliveries_ = nullptr;
  /// Restart-to-fully-refilled durations of completed resync episodes.
  Histogram* resync_digest_ = nullptr;

  // --- observability (config_.obs.enabled only; otherwise null) ---

  /// Owns the trace buffers and the sampled time series. Created in
  /// Initialize; drained once by TakeObsOutput.
  std::unique_ptr<ObsCollector> obs_;
  /// Row scratch for ObsSample, reused across samples.
  std::vector<double> obs_row_;
  /// Last PhaseTimer snapshot (opt-in sample_phase_nanos columns).
  PhaseTimer::Snapshot obs_prev_phase_;

  /// End-of-tick observability: registers the tick for phase slices and
  /// appends a time-series row when one is due. Never touches engine state.
  void ObsOnTickEnd(double t);
  void ObsSample(double t);
};

/// Scheduler-agnostic summary of one simulation run.
struct RunResult {
  std::string scheduler_name;
  /// Σ over caches and replicas of the time-average of W * D (the paper's
  /// objective, summed over the topology).
  double total_weighted_divergence = 0.0;
  /// Per-cache contributions to total_weighted_divergence (size =
  /// workload.num_caches).
  std::vector<double> per_cache_weighted;
  /// Per-replica weighted / unweighted averages.
  double per_object_weighted = 0.0;
  double per_object_unweighted = 0.0;
  /// Number of (object, cache) replicas the objective sums over.
  int64_t total_replicas = 0;
  SchedulerStats scheduler;
  /// Observability output (time series + merged trace); null unless the run
  /// had ObsConfig::enabled. Never serialized into the run JSON/CSV — the
  /// exporters in obs/export.h write it to separate files.
  std::shared_ptr<ObsOutput> obs;
};

/// Runs `scheduler` over `workload` and returns the measured divergence.
Result<RunResult> RunScheduler(const Workload* workload, const DivergenceMetric* metric,
                               const HarnessConfig& harness_config,
                               Scheduler* scheduler);

}  // namespace besync

#endif  // BESYNC_CORE_SYSTEM_H_
