#ifndef BESYNC_CORE_SYSTEM_H_
#define BESYNC_CORE_SYSTEM_H_

#include <memory>
#include <string>
#include <vector>

#include "core/cache.h"
#include "core/harness.h"
#include "core/source.h"
#include "net/network.h"
#include "priority/priority.h"
#include "util/result.h"

namespace besync {

/// Configuration of the full cooperative protocol (Sections 5-6).
struct CooperativeConfig {
  /// Average cache-side bandwidth B_C (messages/second).
  double cache_bandwidth_avg = 10.0;
  /// Average source-side bandwidth B_S; <= 0 means unconstrained.
  double source_bandwidth_avg = -1.0;
  /// Maximum relative bandwidth change rate mB (0 = constant).
  double bandwidth_change_rate = 0.0;
  /// Refresh priority policy; the paper's general area priority by default.
  PolicyKind policy = PolicyKind::kArea;
  /// History blend share for PolicyKind::kAreaHistory.
  double history_beta = 0.5;
  /// Per-source protocol knobs (threshold parameters, monitoring mode).
  SourceAgentConfig source;
  /// Expected feedback period P_feedback; 0 derives the paper's estimate
  /// (number of sources / average cache-side bandwidth), floored at one tick
  /// since feedback cannot arrive more often than once per tick.
  double expected_feedback_period = 0.0;
  /// Random loss probability on the cache-side link (robustness studies).
  /// A lost refresh leaves the cache stale until the object's next update
  /// raises its priority over the threshold again — the protocol has no
  /// acknowledgments, by design.
  double loss_rate = 0.0;
};

/// "Our algorithm": the adaptive threshold-based cooperative refresh
/// scheduler of Section 5, running over the bandwidth-constrained network
/// model. Each tick it
///   1. delivers pending feedback to sources (adjusting local thresholds),
///   2. lets every source emit refreshes for its over-threshold objects
///      within its source-side budget (sources visited in random order),
///   3. delivers queued refresh messages to the cache within the cache-side
///      budget, and
///   4. spends any cache-side surplus on positive feedback to the sources
///      with the highest known thresholds.
class CooperativeScheduler : public Scheduler {
 public:
  explicit CooperativeScheduler(const CooperativeConfig& config);

  std::string name() const override { return "cooperative"; }
  void Initialize(Harness* harness) override;
  void OnObjectUpdate(ObjectIndex index, double t) override;
  void Tick(double t) override;
  void OnMeasurementStart(double t) override;
  SchedulerStats stats() const override;

  // Introspection (tests, competitive subclass).
  int num_sources() const { return static_cast<int>(sources_.size()); }
  const SourceAgent& source(int j) const { return *sources_[j]; }
  SourceAgent& mutable_source(int j) { return *sources_[j]; }
  Link& cache_link() { return network_->cache_link(); }
  CacheAgent& cache() { return *cache_; }

 protected:
  /// Hook for subclasses to decorate outgoing feedback (competitive rate
  /// grants, Section 7).
  virtual void FillFeedback(Message* feedback, int source_index, double t);

  /// The send phase (step 2); overridden by the competitive scheduler to
  /// interleave source-priority refreshes.
  virtual void SendPhase(double t);

  CooperativeConfig config_;
  Harness* harness_ = nullptr;
  std::unique_ptr<PriorityPolicy> policy_;
  std::unique_ptr<Network> network_;
  std::vector<std::unique_ptr<SourceAgent>> sources_;
  std::unique_ptr<CacheAgent> cache_;
  std::vector<int> source_order_;
  std::vector<int32_t> object_source_;
};

/// Scheduler-agnostic summary of one simulation run.
struct RunResult {
  std::string scheduler_name;
  /// Σ_i time-average of W_i * D_i (the paper's objective).
  double total_weighted_divergence = 0.0;
  /// Per-object weighted / unweighted averages.
  double per_object_weighted = 0.0;
  double per_object_unweighted = 0.0;
  SchedulerStats scheduler;
};

/// Runs `scheduler` over `workload` and returns the measured divergence.
Result<RunResult> RunScheduler(const Workload* workload, const DivergenceMetric* metric,
                               const HarnessConfig& harness_config,
                               Scheduler* scheduler);

}  // namespace besync

#endif  // BESYNC_CORE_SYSTEM_H_
