#include "core/competitive.h"

#include <algorithm>
#include <cmath>

#include "data/weight.h"
#include "util/logging.h"

namespace besync {

std::string ShareOptionToString(ShareOption option) {
  switch (option) {
    case ShareOption::kEqualShare:
      return "equal-share";
    case ShareOption::kProportionalShare:
      return "proportional-share";
    case ShareOption::kPiggyback:
      return "piggyback";
  }
  return "unknown";
}

CompetitiveScheduler::CompetitiveScheduler(const CompetitiveConfig& config)
    : CooperativeScheduler(config.base), competitive_(config) {
  BESYNC_CHECK_GE(config.psi, 0.0);
  BESYNC_CHECK_LT(config.psi, 1.0);
  // The competitive send phase interleaves threshold and source-priority
  // sends against the shared cache link as it goes, so it is inherently
  // sequential; run it (and the base tick phases) on one thread, with the
  // historical main-thread send-order draws.
  config_.run_threads = 1;
  config_.send_order_shards = 0;
}

std::string CompetitiveScheduler::name() const {
  return "competitive-" + ShareOptionToString(competitive_.option);
}

void CompetitiveScheduler::Initialize(Harness* harness) {
  CooperativeScheduler::Initialize(harness);
  BESYNC_CHECK_EQ(num_caches(), 1)
      << "the competitive protocol (Section 7) is defined for the paper's "
         "single-cache topology; multi-cache rate partitioning is future work";
  // Not a silent no-op: this SendPhase injects straight into cache_link(),
  // so a relay tree built by the base Initialize would simply be bypassed.
  BESYNC_CHECK_EQ(num_relays(), 0)
      << "the competitive protocol models the one-hop star; relay "
         "topologies are not supported";
  const int m = num_sources();
  granted_rate_.assign(m, 0.0);
  credit_.assign(m, 0.0);

  const double reserved = competitive_.psi * config_.cache_bandwidth_avg;
  int64_t total_objects = 0;
  for (int j = 0; j < m; ++j) {
    total_objects += static_cast<int64_t>(sources_[j]->num_objects());
  }
  for (int j = 0; j < m; ++j) {
    sources_[j]->EnableSecondaryQueue();
    switch (competitive_.option) {
      case ShareOption::kEqualShare:
        granted_rate_[j] = reserved / static_cast<double>(m);
        break;
      case ShareOption::kProportionalShare:
        granted_rate_[j] = reserved *
                           static_cast<double>(sources_[j]->num_objects()) /
                           static_cast<double>(total_objects);
        break;
      case ShareOption::kPiggyback:
        granted_rate_[j] = 0.0;  // earned per cache-priority refresh instead
        break;
    }
  }
}

void CompetitiveScheduler::FillFeedback(Message* feedback, int source_index,
                                        double /*t*/) {
  feedback->granted_rate = granted_rate_[source_index];
}

void CompetitiveScheduler::SendPhase(double t) {
  harness_->scheduler_rng()->Shuffle(&source_order_);
  const double tick = harness_->config().tick_length;
  const double psi = competitive_.psi;
  const double piggyback_ratio = psi > 0.0 ? psi / (1.0 - psi) : 0.0;

  for (int j : source_order_) {
    SourceAgent& agent = *sources_[j];
    Link* source_link = &network_->source_link(j);
    Link* cache = &network_->cache_link();

    if (competitive_.option != ShareOption::kPiggyback) {
      // Rate-granted share: accrue credit, spend it on own-priority sends
      // before the threshold protocol runs.
      const double cap = std::max(2.0, 2.0 * granted_rate_[j] * tick);
      credit_[j] = std::min(credit_[j] + granted_rate_[j] * tick, cap);
      const int64_t allowance = static_cast<int64_t>(std::floor(credit_[j]));
      if (allowance > 0) {
        const int64_t sent = agent.SendSecondary(t, allowance, source_link, cache);
        credit_[j] -= static_cast<double>(sent);
      }
    }

    const int64_t threshold_sent = agent.SendRefreshes(t, source_link, cache);

    if (competitive_.option == ShareOption::kPiggyback && piggyback_ratio > 0.0) {
      // Earn Ψ/(1-Ψ) own-priority slots per cache-priority refresh.
      const double cap = std::max(2.0, 4.0 * piggyback_ratio);
      credit_[j] = std::min(
          credit_[j] + piggyback_ratio * static_cast<double>(threshold_sent), cap);
      const int64_t allowance = static_cast<int64_t>(std::floor(credit_[j]));
      if (allowance > 0) {
        const int64_t sent = agent.SendSecondary(t, allowance, source_link, cache);
        credit_[j] -= static_cast<double>(sent);
      }
    }
  }
}

void AssignConflictingSourceWeights(Workload* workload, double heavy, uint64_t seed) {
  BESYNC_CHECK(workload != nullptr);
  BESYNC_CHECK_GE(heavy, 1.0);
  Rng rng(seed);
  // Per source: a random half of its objects are source-heavy.
  for (int j = 0; j < workload->num_sources; ++j) {
    std::vector<size_t> member_indices;
    for (size_t i = 0; i < workload->objects.size(); ++i) {
      if (workload->objects[i].source_index == j) member_indices.push_back(i);
    }
    rng.Shuffle(&member_indices);
    for (size_t k = 0; k < member_indices.size(); ++k) {
      const double weight = k < member_indices.size() / 2 ? heavy : 1.0;
      workload->objects[member_indices[k]].source_weight = MakeConstantWeight(weight);
    }
  }
}

}  // namespace besync
