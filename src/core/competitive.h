#ifndef BESYNC_CORE_COMPETITIVE_H_
#define BESYNC_CORE_COMPETITIVE_H_

#include <string>
#include <vector>

#include "core/system.h"

namespace besync {

/// How the Ψ fraction of cache-side bandwidth reserved for source objectives
/// is divided among sources (Section 7).
enum class ShareOption {
  /// (1) All sources are given an equal share.
  kEqualShare,
  /// (2) Shares proportional to the number of cached objects per source.
  kProportionalShare,
  /// (3) Sources may piggyback Ψ/(1-Ψ) objects of their own choosing along
  /// with every object refreshed under the cache's threshold policy — i.e.
  /// shares proportional to how much each source contributes to the cache's
  /// own objectives.
  kPiggyback,
};

std::string ShareOptionToString(ShareOption option);

/// Section 7 configuration: cooperative protocol plus conflicting-objective
/// resource partitioning.
struct CompetitiveConfig {
  CooperativeConfig base;
  /// Fraction Ψ of cache-side bandwidth dedicated to source priorities.
  double psi = 0.25;
  ShareOption option = ShareOption::kEqualShare;
};

/// Cooperative scheduler for competitive environments (Section 7): each
/// source runs two priority schemes — the cache's (via the threshold
/// protocol on the primary queue) and its own (secondary queue, using the
/// per-object source weights). The Ψ share of bandwidth is spent on
/// source-priority refreshes according to the configured option; rate
/// grants are communicated on feedback messages.
class CompetitiveScheduler : public CooperativeScheduler {
 public:
  explicit CompetitiveScheduler(const CompetitiveConfig& config);

  std::string name() const override;
  void Initialize(Harness* harness) override;

 protected:
  void FillFeedback(Message* feedback, int source_index, double t) override;
  void SendPhase(double t) override;

 private:
  CompetitiveConfig competitive_;
  /// Per-source granted rate (options 1-2) in refreshes/second.
  std::vector<double> granted_rate_;
  /// Per-source accumulated send credit.
  std::vector<double> credit_;
};

/// Test/benchmark helper: gives every object an independent source-objective
/// weight — within each source, a randomly chosen half of the objects are
/// weighted `heavy`, the rest 1 — drawn independently of the cache weights,
/// so the two objectives genuinely conflict.
void AssignConflictingSourceWeights(Workload* workload, double heavy, uint64_t seed);

}  // namespace besync

#endif  // BESYNC_CORE_COMPETITIVE_H_
