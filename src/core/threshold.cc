#include "core/threshold.h"

#include <algorithm>

#include "util/logging.h"

namespace besync {

ThresholdController::ThresholdController(const ThresholdConfig& config,
                                         double expected_feedback_period,
                                         double start_time)
    : config_(config),
      expected_feedback_period_(expected_feedback_period),
      threshold_(config.initial),
      last_feedback_time_(start_time) {
  BESYNC_CHECK_GT(config.initial, 0.0);
  BESYNC_CHECK_GT(config.increase, 1.0);
  BESYNC_CHECK_GT(config.decrease, 1.0);
  BESYNC_CHECK_GT(config.min_threshold, 0.0);
  BESYNC_CHECK_GT(config.max_threshold, config.min_threshold);
  BESYNC_CHECK_GT(expected_feedback_period, 0.0);
}

double ThresholdController::DeltaFactor(double now) const {
  const double since_feedback = now - last_feedback_time_;
  if (since_feedback <= expected_feedback_period_) return 1.0;
  return since_feedback / expected_feedback_period_;
}

void ThresholdController::OnRefreshSent(double now) {
  threshold_ *= config_.increase * DeltaFactor(now);
  Clamp();
}

void ThresholdController::OnFeedback(double now, bool at_full_capacity) {
  last_feedback_time_ = now;
  if (at_full_capacity) return;  // footnote 3: do not lower while saturated
  threshold_ /= config_.decrease;
  Clamp();
}

void ThresholdController::SetThreshold(double value) {
  BESYNC_CHECK_GT(value, 0.0);
  threshold_ = value;
  Clamp();
}

void ThresholdController::Clamp() {
  threshold_ = std::clamp(threshold_, config_.min_threshold, config_.max_threshold);
}

}  // namespace besync
