// Deep-copyable workloads: CloneWorkload must (a) reproduce exactly the run
// a config-rebuilt workload produces, (b) share no mutable state with the
// original, and (c) let one trace-derived workload fan out across the
// parallel runner with byte-identical JSON at any thread count.

#include <gtest/gtest.h>

#include <limits>
#include <sstream>

#include "data/buoy_trace.h"
#include "data/workload.h"
#include "exp/experiment.h"
#include "exp/runner.h"
#include "util/fluctuation.h"

namespace besync {
namespace {

WorkloadConfig SmallSyntheticConfig() {
  WorkloadConfig config;
  config.num_sources = 3;
  config.objects_per_source = 5;
  config.rate_distribution = RateDistribution::kHalfSlowHalfFast;
  config.weight_scheme = WeightScheme::kHalfHeavy;
  config.cost_scheme = CostScheme::kHalfLarge;
  config.weight_fluctuation_amplitude = 0.4;  // exercises SineFluctuation::Clone
  config.seed = 42;
  return config;
}

BuoyTraceConfig SmallBuoyConfig() {
  BuoyTraceConfig config;
  config.num_buoys = 3;
  config.duration = 4.0 * 3600.0;
  config.seed = 2026;
  return config;
}

// Every UpdateProcess subclass: the clone, fed the same RNG stream, emits
// exactly the update stream the original would have emitted — including
// mid-replay cursor state for TraceProcess.
TEST(CloneTest, ProcessClonesReplayIdenticalStreams) {
  std::vector<std::unique_ptr<UpdateProcess>> processes;
  processes.push_back(std::make_unique<PoissonRandomWalkProcess>(0.7, 2.0));
  processes.push_back(std::make_unique<BernoulliRandomWalkProcess>(0.3, 1.5));
  processes.push_back(std::make_unique<RegimeSwitchingProcess>(0.1, 2.0, 50.0));
  processes.push_back(std::make_unique<DriftProcess>(0.25, 1.0));
  processes.push_back(std::make_unique<TraceProcess>(std::vector<TracePoint>{
      {1.0, 5.0}, {2.5, 6.0}, {4.0, 4.5}, {7.0, 5.5}}));

  for (const auto& original : processes) {
    // Advance the original a little so cursor state (TraceProcess) is
    // mid-stream when cloned.
    Rng warm(9);
    double t = original->NextUpdateTime(0.0, &warm);
    double value = 0.0;
    if (t < std::numeric_limits<double>::infinity()) {
      value = original->ApplyUpdate(value, &warm);
    }

    const std::unique_ptr<UpdateProcess> clone = original->Clone();
    EXPECT_EQ(clone->rate(), original->rate());

    Rng rng_a(123);
    Rng rng_b(123);
    double value_a = value;
    double value_b = value;
    double now = t;
    for (int i = 0; i < 16; ++i) {
      const double next_a = original->NextUpdateTime(now, &rng_a);
      const double next_b = clone->NextUpdateTime(now, &rng_b);
      EXPECT_EQ(next_a, next_b);
      if (next_a == std::numeric_limits<double>::infinity()) break;
      value_a = original->ApplyUpdate(value_a, &rng_a);
      value_b = clone->ApplyUpdate(value_b, &rng_b);
      EXPECT_EQ(value_a, value_b);
      now = next_a;
    }
  }
}

TEST(CloneTest, FluctuationClonesMatchPointwise) {
  const ConstantFluctuation constant(3.5);
  const SineFluctuation sine(2.0, 0.5, 300.0, 1.25);
  const Fluctuation* originals[] = {&constant, &sine};
  for (const Fluctuation* original : originals) {
    const std::unique_ptr<Fluctuation> clone = original->Clone();
    EXPECT_EQ(clone->average(), original->average());
    for (double t : {0.0, 17.3, 150.0, 299.9, 1234.5}) {
      EXPECT_EQ(clone->ValueAt(t), original->ValueAt(t));
    }
  }
}

TEST(CloneTest, CloneMatchesOriginalSpecs) {
  const Workload original =
      std::move(MakeWorkload(SmallSyntheticConfig())).ValueOrDie();
  const Workload clone = CloneWorkload(original);

  EXPECT_EQ(clone.num_sources, original.num_sources);
  EXPECT_EQ(clone.objects_per_source, original.objects_per_source);
  EXPECT_EQ(clone.num_caches, original.num_caches);
  EXPECT_EQ(clone.has_fluctuating_weights, original.has_fluctuating_weights);
  ASSERT_EQ(clone.objects.size(), original.objects.size());
  for (size_t i = 0; i < original.objects.size(); ++i) {
    const ObjectSpec& a = original.objects[i];
    const ObjectSpec& b = clone.objects[i];
    EXPECT_EQ(b.index, a.index);
    EXPECT_EQ(b.source_index, a.source_index);
    EXPECT_EQ(b.caches, a.caches);
    EXPECT_EQ(b.lambda, a.lambda);
    EXPECT_EQ(b.initial_value, a.initial_value);
    EXPECT_EQ(b.max_divergence_rate, a.max_divergence_rate);
    EXPECT_EQ(b.refresh_cost, a.refresh_cost);
    EXPECT_EQ(b.rng_seed, a.rng_seed);
    // Deep, not shallow: the owned polymorphic members are fresh objects.
    ASSERT_NE(b.process, nullptr);
    ASSERT_NE(b.weight, nullptr);
    EXPECT_NE(b.process.get(), a.process.get());
    EXPECT_NE(b.weight.get(), a.weight.get());
    EXPECT_EQ(b.process->rate(), a.process->rate());
    EXPECT_EQ(b.weight->ValueAt(12.5), a.weight->ValueAt(12.5));
  }
}

// The headline guarantee: running a scheduler on a clone produces the
// bitwise-identical RunResult a config-rebuilt workload produces.
TEST(CloneTest, CloneRunEqualsRebuildRun) {
  ExperimentConfig config;
  config.workload = SmallSyntheticConfig();
  config.harness.warmup = 10.0;
  config.harness.measure = 100.0;
  config.cache_bandwidth_avg = 6.0;

  for (SchedulerKind scheduler :
       {SchedulerKind::kCooperative, SchedulerKind::kRoundRobin}) {
    config.scheduler = scheduler;

    const Result<RunResult> rebuilt = RunExperiment(config);
    ASSERT_TRUE(rebuilt.ok());

    const Workload base = std::move(MakeWorkload(config.workload)).ValueOrDie();
    Workload clone = CloneWorkload(base);
    const Result<RunResult> cloned = RunExperimentOnWorkload(config, &clone);
    ASSERT_TRUE(cloned.ok());

    EXPECT_EQ(cloned->total_weighted_divergence, rebuilt->total_weighted_divergence);
    EXPECT_EQ(cloned->per_cache_weighted, rebuilt->per_cache_weighted);
    EXPECT_EQ(cloned->per_object_weighted, rebuilt->per_object_weighted);
    EXPECT_EQ(cloned->per_object_unweighted, rebuilt->per_object_unweighted);
    EXPECT_EQ(cloned->total_replicas, rebuilt->total_replicas);
    EXPECT_EQ(cloned->scheduler.refreshes_sent, rebuilt->scheduler.refreshes_sent);
    EXPECT_EQ(cloned->scheduler.refreshes_delivered,
              rebuilt->scheduler.refreshes_delivered);
    EXPECT_EQ(cloned->scheduler.feedback_sent, rebuilt->scheduler.feedback_sent);
  }
}

// Mutating a clone (running it, touching its specs) must leave the original
// untouched — the property that makes concurrent fan-out safe.
TEST(CloneTest, MutatingCloneLeavesOriginalUntouched) {
  const Workload original =
      std::move(MakeBuoyWorkload(SmallBuoyConfig())).ValueOrDie();
  Workload clone = CloneWorkload(original);

  // Advance every clone process cursor past several trace points.
  Rng rng(5);
  for (ObjectSpec& spec : clone.objects) {
    double now = 0.0;
    for (int i = 0; i < 3; ++i) {
      now = spec.process->NextUpdateTime(now, &rng);
      spec.process->ApplyUpdate(0.0, &rng);
    }
    spec.caches.push_back(99);  // structural mutation
    spec.lambda = -1.0;
  }

  // The original still replays from the first trace point, and its specs
  // are unchanged.
  Rng rng2(5);
  for (const ObjectSpec& spec : original.objects) {
    const auto* trace = static_cast<const TraceProcess*>(spec.process.get());
    EXPECT_GT(trace->num_points(), 0u);
    EXPECT_EQ(spec.caches, std::vector<int32_t>{0});
    EXPECT_GE(spec.lambda, 0.0);
    // Cursor untouched: the next update is still the earliest trace time.
    const double first = spec.process->NextUpdateTime(0.0, &rng2);
    EXPECT_LE(first, SmallBuoyConfig().measurement_interval + 1e-9);
  }

  // And a run over a fresh clone of the original still matches a run over
  // the original itself (sequential reuse is safe after Reset).
  ExperimentConfig config;
  config.harness.tick_length = 60.0;
  config.harness.warmup = 600.0;
  config.harness.measure = 3000.0;
  config.cache_bandwidth_avg = 0.05;
  Workload fresh = CloneWorkload(original);
  const Result<RunResult> a = RunExperimentOnWorkload(config, &fresh);
  ASSERT_TRUE(a.ok());
  Workload fresh2 = CloneWorkload(original);
  const Result<RunResult> b = RunExperimentOnWorkload(config, &fresh2);
  ASSERT_TRUE(b.ok());
  EXPECT_EQ(a->total_weighted_divergence, b->total_weighted_divergence);
}

// Clone fan-out across the runner: threads=1 and threads=8 produce
// bitwise-identical results and byte-identical JSON over a trace-derived
// workload no WorkloadConfig can rebuild.
TEST(CloneTest, TraceFanOutIsThreadCountInvariant) {
  const Workload base = std::move(MakeBuoyWorkload(SmallBuoyConfig())).ValueOrDie();

  std::vector<ExperimentJob> jobs;
  for (SchedulerKind scheduler :
       {SchedulerKind::kCooperative, SchedulerKind::kIdealCooperative,
        SchedulerKind::kRoundRobin}) {
    for (double bandwidth : {0.02, 0.1}) {
      ExperimentJob job;
      job.name = SchedulerKindToString(scheduler) + ",B=" +
                 TablePrinter::Cell(bandwidth);
      job.config.scheduler = scheduler;
      job.config.harness.tick_length = 60.0;
      job.config.harness.warmup = 600.0;
      job.config.harness.measure = 3000.0;
      job.config.cache_bandwidth_avg = bandwidth;
      job.config.workload.seed = SmallBuoyConfig().seed;  // metadata only
      jobs.push_back(std::move(job));
    }
  }

  RunnerOptions sequential;
  sequential.threads = 1;
  const std::vector<JobResult> one = RunExperimentsOnWorkload(base, jobs, sequential);

  RunnerOptions parallel;
  parallel.threads = 8;
  const std::vector<JobResult> eight = RunExperimentsOnWorkload(base, jobs, parallel);

  ASSERT_EQ(one.size(), jobs.size());
  ASSERT_EQ(eight.size(), jobs.size());
  for (size_t i = 0; i < jobs.size(); ++i) {
    EXPECT_EQ(one[i].name, jobs[i].name);
    ASSERT_TRUE(one[i].status.ok()) << one[i].status.ToString();
    ASSERT_TRUE(eight[i].status.ok()) << eight[i].status.ToString();
    EXPECT_EQ(one[i].result.total_weighted_divergence,
              eight[i].result.total_weighted_divergence);
    EXPECT_EQ(one[i].result.scheduler.refreshes_delivered,
              eight[i].result.scheduler.refreshes_delivered);
    // The runner stamps the topology from the base workload.
    EXPECT_EQ(one[i].config.workload.num_caches, base.num_caches);
  }

  std::ostringstream json_one;
  std::ostringstream json_eight;
  WriteResultsJson(json_one, one);
  WriteResultsJson(json_eight, eight);
  EXPECT_EQ(json_one.str(), json_eight.str());  // byte-identical
}

}  // namespace
}  // namespace besync
