// Multi-cache topology tests: interest-map generation, the (cache, source)
// control channel, per-cache divergence accounting, and the central
// correctness property — caches on disjoint partitions behave exactly like
// independent single-cache systems over the corresponding sub-workloads.

#include <cmath>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "core/system.h"
#include "divergence/metric.h"
#include "exp/experiment.h"
#include "exp/multicache.h"
#include "net/network.h"

namespace besync {
namespace {

// ------------------------------------------------------- interest mapping

TEST(InterestMapTest, DefaultSingleCache) {
  WorkloadConfig config;
  config.num_sources = 3;
  config.objects_per_source = 4;
  const Workload workload = std::move(MakeWorkload(config)).ValueOrDie();
  EXPECT_EQ(workload.num_caches, 1);
  for (const ObjectSpec& spec : workload.objects) {
    ASSERT_EQ(spec.num_replicas(), 1);
    EXPECT_EQ(spec.caches[0], 0);
    EXPECT_EQ(spec.replica_slot(0), 0);
    EXPECT_EQ(spec.replica_slot(1), -1);
  }
  EXPECT_EQ(workload.total_replicas(), workload.total_objects());
}

TEST(InterestMapTest, SingleCachePatternRejectsMultipleCaches) {
  WorkloadConfig config;
  config.num_caches = 2;  // pattern stays kSingleCache
  EXPECT_FALSE(MakeWorkload(config).ok());
}

TEST(InterestMapTest, PartitionedBySourceIsDisjoint) {
  WorkloadConfig config;
  config.num_sources = 6;
  config.objects_per_source = 5;
  config.num_caches = 3;
  config.interest_pattern = InterestPattern::kPartitionedBySource;
  const Workload workload = std::move(MakeWorkload(config)).ValueOrDie();
  for (const ObjectSpec& spec : workload.objects) {
    ASSERT_EQ(spec.num_replicas(), 1);
    EXPECT_EQ(spec.caches[0], spec.source_index % 3);
  }
  const auto sources = SourcesByCache(workload);
  ASSERT_EQ(sources.size(), 3u);
  EXPECT_EQ(sources[0], (std::vector<int32_t>{0, 3}));
  EXPECT_EQ(sources[1], (std::vector<int32_t>{1, 4}));
  EXPECT_EQ(sources[2], (std::vector<int32_t>{2, 5}));
}

TEST(InterestMapTest, FullReplicationCoversEveryCache) {
  WorkloadConfig config;
  config.num_sources = 2;
  config.objects_per_source = 3;
  config.num_caches = 4;
  config.interest_pattern = InterestPattern::kFullReplication;
  const Workload workload = std::move(MakeWorkload(config)).ValueOrDie();
  EXPECT_EQ(workload.total_replicas(), 4 * workload.total_objects());
  for (const ObjectSpec& spec : workload.objects) {
    ASSERT_EQ(spec.num_replicas(), 4);
    for (int c = 0; c < 4; ++c) EXPECT_EQ(spec.replica_slot(c), c);
  }
  for (const auto& list : SourcesByCache(workload)) {
    EXPECT_EQ(list, (std::vector<int32_t>{0, 1}));
  }
}

TEST(InterestMapTest, ZipfOverlapIsValidAndSkewed) {
  WorkloadConfig config;
  config.num_sources = 8;
  config.objects_per_source = 50;
  config.num_caches = 4;
  config.interest_pattern = InterestPattern::kZipfOverlap;
  config.zipf_overlap_exponent = 1.0;
  const Workload workload = std::move(MakeWorkload(config)).ValueOrDie();
  int64_t single = 0;
  for (const ObjectSpec& spec : workload.objects) {
    ASSERT_GE(spec.num_replicas(), 1);
    ASSERT_LE(spec.num_replicas(), 4);
    // Sorted, duplicate-free, in range, and containing the primary cache.
    for (int r = 0; r < spec.num_replicas(); ++r) {
      EXPECT_GE(spec.caches[r], 0);
      EXPECT_LT(spec.caches[r], 4);
      if (r > 0) EXPECT_LT(spec.caches[r - 1], spec.caches[r]);
    }
    EXPECT_GE(spec.replica_slot(spec.source_index % 4), 0);
    if (spec.num_replicas() == 1) ++single;
  }
  // Zipf skew: a majority of objects live at exactly one cache, but overlap
  // exists.
  EXPECT_GT(single, workload.total_objects() / 2);
  EXPECT_GT(workload.total_replicas(), workload.total_objects());
}

TEST(InterestMapTest, InterestAssignmentDoesNotPerturbGenerator) {
  // Multi-cache interest uses a dedicated RNG stream: the object parameters
  // (rates, seeds, weights) must be identical to the single-cache workload
  // of the same seed.
  WorkloadConfig base;
  base.num_sources = 4;
  base.objects_per_source = 10;
  base.seed = 31;
  WorkloadConfig multi = base;
  multi.num_caches = 2;
  multi.interest_pattern = InterestPattern::kZipfOverlap;
  const Workload a = std::move(MakeWorkload(base)).ValueOrDie();
  const Workload b = std::move(MakeWorkload(multi)).ValueOrDie();
  ASSERT_EQ(a.objects.size(), b.objects.size());
  for (size_t i = 0; i < a.objects.size(); ++i) {
    EXPECT_EQ(a.objects[i].lambda, b.objects[i].lambda);
    EXPECT_EQ(a.objects[i].rng_seed, b.objects[i].rng_seed);
    EXPECT_EQ(a.objects[i].refresh_cost, b.objects[i].refresh_cost);
  }
}

// ------------------------------------------------- (cache, source) mail

TEST(MulticacheNetworkTest, MailIsKeyedByCacheAndSource) {
  NetworkConfig config;
  config.num_sources = 2;
  config.num_caches = 2;
  Rng rng(5);
  Network network(config, &rng);
  network.BeginTick(0.0, 1.0);

  Message from_cache1;
  from_cache1.kind = MessageKind::kFeedback;
  network.SendToSource(/*cache_id=*/1, /*source_index=*/0, from_cache1);

  // Deposited during tick 0: invisible to every slot this tick.
  EXPECT_TRUE(network.TakeSourceMail(0, 0).empty());
  EXPECT_TRUE(network.TakeSourceMail(1, 0).empty());

  network.BeginTick(1.0, 1.0);
  // Visible only under the (cache 1, source 0) key; stamped with the cache.
  EXPECT_TRUE(network.TakeSourceMail(0, 0).empty());
  EXPECT_TRUE(network.TakeSourceMail(1, 1).empty());
  const auto mail = network.TakeSourceMail(1, 0);
  ASSERT_EQ(mail.size(), 1u);
  EXPECT_EQ(mail[0].cache_id, 1);
  // Drained exactly once.
  EXPECT_TRUE(network.TakeSourceMail(1, 0).empty());
  network.BeginTick(2.0, 1.0);
  EXPECT_TRUE(network.TakeSourceMail(1, 0).empty());
}

TEST(MulticacheNetworkTest, PerCacheBandwidthOverrides) {
  NetworkConfig config;
  config.num_sources = 1;
  config.num_caches = 3;
  config.cache_bandwidth_avg = 10.0;
  config.cache_bandwidth_overrides = {0.0, 4.0};  // cache 0 falls back
  Rng rng(5);
  Network network(config, &rng);
  network.BeginTick(0.0, 1.0);
  EXPECT_EQ(network.cache_link(0).tick_budget(), 10);
  EXPECT_EQ(network.cache_link(1).tick_budget(), 4);
  EXPECT_EQ(network.cache_link(2).tick_budget(), 10);
}

// ------------------------------------------- partition ≡ independent runs

/// Extracts the sub-workload of the sources interested in `cache_id` from a
/// freshly generated copy of the partitioned workload, renumbered densely
/// and re-targeted at a single cache. Object processes, rates, weights and
/// RNG seeds are preserved, so update streams are identical to the full
/// run's.
Workload BuildSubWorkload(const WorkloadConfig& config, int32_t cache_id) {
  Workload full = std::move(MakeWorkload(config)).ValueOrDie();
  Workload sub;
  sub.objects_per_source = full.objects_per_source;
  sub.num_caches = 1;
  sub.has_fluctuating_weights = full.has_fluctuating_weights;
  int32_t next_source = -1;
  int32_t last_original_source = -1;
  for (ObjectSpec& spec : full.objects) {
    if (spec.caches.front() != cache_id) continue;
    if (spec.source_index != last_original_source) {
      last_original_source = spec.source_index;
      ++next_source;
    }
    spec.source_index = next_source;
    spec.index = static_cast<ObjectIndex>(sub.objects.size());
    spec.caches = {0};
    sub.objects.push_back(std::move(spec));
  }
  sub.num_sources = next_source + 1;
  return sub;
}

TEST(MulticachePartitionTest, TwoCachesMatchIndependentSingleCacheRuns) {
  WorkloadConfig workload_config;
  workload_config.num_sources = 4;
  workload_config.objects_per_source = 15;
  workload_config.seed = 101;
  workload_config.num_caches = 2;
  workload_config.interest_pattern = InterestPattern::kPartitionedBySource;

  HarnessConfig harness_config;
  harness_config.warmup = 50.0;
  harness_config.measure = 400.0;

  // Constant bandwidths, with every cache link wide enough to drain its
  // per-tick arrivals (sources are the bottleneck): intra-tick enqueue order
  // then has no effect on delivery times, so the full run and the isolated
  // sub-runs see identical protocol dynamics.
  const double cache_bandwidth = 12.0;
  const double source_bandwidth = 3.0;

  CooperativeConfig coop;
  coop.cache_bandwidth_avg = cache_bandwidth;
  coop.source_bandwidth_avg = source_bandwidth;

  const auto metric = MakeMetric(MetricKind::kValueDeviation);

  // Full 2-cache run.
  const Workload full = std::move(MakeWorkload(workload_config)).ValueOrDie();
  CooperativeScheduler full_scheduler(coop);
  const auto full_result =
      RunScheduler(&full, metric.get(), harness_config, &full_scheduler);
  ASSERT_TRUE(full_result.ok());
  ASSERT_EQ(full_result->per_cache_weighted.size(), 2u);

  // Independent single-cache runs over the two sub-workloads.
  for (int32_t cache_id = 0; cache_id < 2; ++cache_id) {
    const Workload sub = BuildSubWorkload(workload_config, cache_id);
    ASSERT_EQ(sub.num_sources, 2);
    CooperativeScheduler sub_scheduler(coop);
    const auto sub_result =
        RunScheduler(&sub, metric.get(), harness_config, &sub_scheduler);
    ASSERT_TRUE(sub_result.ok());
    // Tolerance covers float non-associativity from same-tick apply order;
    // any scheduling difference would shift delivery by whole ticks and
    // show up orders of magnitude larger.
    EXPECT_NEAR(full_result->per_cache_weighted[cache_id],
                sub_result->total_weighted_divergence,
                1e-7 * (1.0 + sub_result->total_weighted_divergence))
        << "cache " << cache_id;
  }

  // The per-cache breakdown sums to the reported objective.
  EXPECT_NEAR(full_result->per_cache_weighted[0] + full_result->per_cache_weighted[1],
              full_result->total_weighted_divergence,
              1e-9 * (1.0 + full_result->total_weighted_divergence));
}

// -------------------------------------------------- overlapping interest

TEST(MulticacheOverlapTest, FullReplicationRunsAndFeedsEveryCache) {
  WorkloadConfig workload_config;
  workload_config.num_sources = 3;
  workload_config.objects_per_source = 10;
  workload_config.seed = 55;
  workload_config.num_caches = 2;
  workload_config.interest_pattern = InterestPattern::kFullReplication;
  const Workload workload = std::move(MakeWorkload(workload_config)).ValueOrDie();

  HarnessConfig harness_config;
  harness_config.warmup = 20.0;
  harness_config.measure = 200.0;

  CooperativeConfig coop;
  coop.cache_bandwidth_avg = 10.0;
  coop.source_bandwidth_avg = 6.0;
  CooperativeScheduler scheduler(coop);
  const auto metric = MakeMetric(MetricKind::kValueDeviation);
  const auto result = RunScheduler(&workload, metric.get(), harness_config, &scheduler);
  ASSERT_TRUE(result.ok());

  EXPECT_EQ(scheduler.num_caches(), 2);
  // Every source maintains one threshold channel per cache.
  for (int j = 0; j < scheduler.num_sources(); ++j) {
    ASSERT_EQ(scheduler.source(j).num_channels(), 2);
    EXPECT_EQ(scheduler.source(j).channel_cache_id(0), 0);
    EXPECT_EQ(scheduler.source(j).channel_cache_id(1), 1);
  }
  // Both caches actually received refreshes and the accounting covers both.
  EXPECT_GT(scheduler.cache(0).refreshes_received(), 0);
  EXPECT_GT(scheduler.cache(1).refreshes_received(), 0);
  EXPECT_GT(result->per_cache_weighted[0], 0.0);
  EXPECT_GT(result->per_cache_weighted[1], 0.0);
  EXPECT_NEAR(result->per_cache_weighted[0] + result->per_cache_weighted[1],
              result->total_weighted_divergence,
              1e-9 * (1.0 + result->total_weighted_divergence));
}

TEST(MulticacheOverlapTest, PerCacheFeedbackAdjustsOnlyThatThreshold) {
  // Give cache 1 almost no bandwidth: its channel thresholds must stay high
  // (starved of feedback) while cache 0's channels are fed and drop.
  WorkloadConfig workload_config;
  workload_config.num_sources = 2;
  workload_config.objects_per_source = 10;
  workload_config.seed = 77;
  workload_config.num_caches = 2;
  workload_config.interest_pattern = InterestPattern::kFullReplication;
  const Workload workload = std::move(MakeWorkload(workload_config)).ValueOrDie();

  HarnessConfig harness_config;
  harness_config.warmup = 20.0;
  harness_config.measure = 300.0;

  CooperativeConfig coop;
  coop.cache_bandwidth_avg = 30.0;  // ample: cache 0 constantly feeds back
  coop.cache_bandwidths = {0.0, 1.0};  // cache 1 starved
  coop.source_bandwidth_avg = -1.0;
  CooperativeScheduler scheduler(coop);
  const auto metric = MakeMetric(MetricKind::kValueDeviation);
  const auto result = RunScheduler(&workload, metric.get(), harness_config, &scheduler);
  ASSERT_TRUE(result.ok());

  for (int j = 0; j < scheduler.num_sources(); ++j) {
    // Channel 0 (cache 0) got feedback every tick; channel 1 seldom did and
    // its refreshes kept bumping T_{j,1} upward.
    EXPECT_LT(scheduler.source(j).threshold(0), scheduler.source(j).threshold(1))
        << "source " << j;
  }
}

// ------------------------------------------------------------- sweep API

TEST(MulticacheSweepTest, SweepCoversConfiguredGrid) {
  MulticacheConfig config;
  config.base.workload.num_sources = 4;
  config.base.workload.objects_per_source = 5;
  config.base.workload.seed = 3;
  config.base.harness.warmup = 10.0;
  config.base.harness.measure = 50.0;
  config.base.cache_bandwidth_avg = 8.0;
  config.cache_counts = {1, 2};
  config.patterns = {InterestPattern::kPartitionedBySource,
                     InterestPattern::kZipfOverlap};
  const auto points = RunMulticacheSweep(config);
  ASSERT_TRUE(points.ok());
  ASSERT_EQ(points->size(), 4u);
  for (const MulticachePoint& point : *points) {
    EXPECT_GE(point.total_replicas, 20);
    EXPECT_GT(point.result.total_weighted_divergence, 0.0);
    EXPECT_EQ(static_cast<int>(point.result.per_cache_weighted.size()),
              point.num_caches);
  }
  // The N=1 points of both patterns coincide (canonical single-cache map).
  EXPECT_EQ((*points)[0].result.total_weighted_divergence,
            (*points)[2].result.total_weighted_divergence);
}

}  // namespace
}  // namespace besync
