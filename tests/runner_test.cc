// Parallel experiment runner: thread-pool basics, per-job error capture,
// and the core guarantee — the same job grid produces identical RunResults
// (and byte-identical JSON) at threads=1 and threads=8, because every job
// owns its workload and every field but wall_seconds is a pure function of
// the job's config.

#include <gtest/gtest.h>

#include <atomic>
#include <set>
#include <sstream>

#include "exp/runner.h"
#include "util/thread_pool.h"

namespace besync {
namespace {

TEST(ThreadPoolTest, RunsEverySubmittedTask) {
  ThreadPool pool(4);
  std::atomic<int> count{0};
  for (int i = 0; i < 100; ++i) {
    pool.Submit([&count] { count.fetch_add(1); });
  }
  pool.Wait();
  EXPECT_EQ(count.load(), 100);
}

TEST(ThreadPoolTest, WaitAllowsReuse) {
  ThreadPool pool(2);
  std::atomic<int> count{0};
  pool.Submit([&count] { count.fetch_add(1); });
  pool.Wait();
  EXPECT_EQ(count.load(), 1);
  for (int i = 0; i < 10; ++i) pool.Submit([&count] { count.fetch_add(1); });
  pool.Wait();
  EXPECT_EQ(count.load(), 11);
}

TEST(ThreadPoolTest, DestructorDrainsPendingTasks) {
  std::atomic<int> count{0};
  {
    ThreadPool pool(2);
    for (int i = 0; i < 50; ++i) pool.Submit([&count] { count.fetch_add(1); });
  }
  EXPECT_EQ(count.load(), 50);
}

TEST(DeriveJobSeedTest, DeterministicAndWellSpread) {
  EXPECT_EQ(DeriveJobSeed(1, 0), DeriveJobSeed(1, 0));
  std::set<uint64_t> seeds;
  for (uint64_t base = 0; base < 4; ++base) {
    for (uint64_t index = 0; index < 64; ++index) {
      const uint64_t seed = DeriveJobSeed(base, index);
      EXPECT_NE(seed, 0u);
      seeds.insert(seed);
    }
  }
  EXPECT_EQ(seeds.size(), 4u * 64u);
}

std::vector<ExperimentJob> MakeGrid() {
  std::vector<ExperimentJob> jobs;
  const SchedulerKind schedulers[] = {SchedulerKind::kCooperative,
                                      SchedulerKind::kRoundRobin};
  const double bandwidths[] = {4.0, 8.0, 16.0};
  int index = 0;
  for (SchedulerKind scheduler : schedulers) {
    for (double bandwidth : bandwidths) {
      ExperimentJob job;
      job.name = "job" + std::to_string(index);
      job.config.scheduler = scheduler;
      job.config.workload.num_sources = 2;
      job.config.workload.objects_per_source = 6;
      job.config.workload.seed = DeriveJobSeed(5, static_cast<uint64_t>(index));
      job.config.harness.warmup = 10.0;
      job.config.harness.measure = 60.0;
      job.config.cache_bandwidth_avg = bandwidth;
      jobs.push_back(std::move(job));
      ++index;
    }
  }
  return jobs;
}

TEST(RunnerTest, ResultsIdenticalAcrossThreadCounts) {
  const std::vector<ExperimentJob> jobs = MakeGrid();

  RunnerOptions sequential;
  sequential.threads = 1;
  const std::vector<JobResult> base = RunExperiments(jobs, sequential);

  RunnerOptions parallel;
  parallel.threads = 8;
  const std::vector<JobResult> threaded = RunExperiments(jobs, parallel);

  ASSERT_EQ(base.size(), jobs.size());
  ASSERT_EQ(threaded.size(), jobs.size());
  for (size_t i = 0; i < jobs.size(); ++i) {
    // Results come back in job order regardless of completion order.
    EXPECT_EQ(base[i].name, jobs[i].name);
    EXPECT_EQ(threaded[i].name, jobs[i].name);
    ASSERT_TRUE(base[i].status.ok());
    ASSERT_TRUE(threaded[i].status.ok());
    // Bitwise equality, not near-equality: the runs must be the same
    // computation, merely scheduled on different workers.
    EXPECT_EQ(base[i].result.total_weighted_divergence,
              threaded[i].result.total_weighted_divergence);
    EXPECT_EQ(base[i].result.per_object_unweighted,
              threaded[i].result.per_object_unweighted);
    EXPECT_EQ(base[i].result.per_cache_weighted,
              threaded[i].result.per_cache_weighted);
    EXPECT_EQ(base[i].result.total_replicas, threaded[i].result.total_replicas);
    EXPECT_EQ(base[i].result.scheduler.refreshes_sent,
              threaded[i].result.scheduler.refreshes_sent);
    EXPECT_EQ(base[i].result.scheduler.refreshes_delivered,
              threaded[i].result.scheduler.refreshes_delivered);
    EXPECT_EQ(base[i].result.scheduler.feedback_sent,
              threaded[i].result.scheduler.feedback_sent);
  }

  std::ostringstream json_base;
  std::ostringstream json_threaded;
  WriteResultsJson(json_base, base);
  WriteResultsJson(json_threaded, threaded);
  EXPECT_EQ(json_base.str(), json_threaded.str());  // byte-identical
}

TEST(RunnerTest, PerJobErrorsAreCapturedNotFatal) {
  std::vector<ExperimentJob> jobs(2);
  jobs[0].name = "bad";
  jobs[0].config.workload.num_sources = 0;  // MakeWorkload rejects this
  jobs[1].name = "good";
  jobs[1].config.workload.num_sources = 1;
  jobs[1].config.workload.objects_per_source = 4;
  jobs[1].config.harness.warmup = 5.0;
  jobs[1].config.harness.measure = 20.0;

  RunnerOptions options;
  options.threads = 2;
  const std::vector<JobResult> results = RunExperiments(jobs, options);
  ASSERT_EQ(results.size(), 2u);
  EXPECT_FALSE(results[0].status.ok());
  EXPECT_TRUE(results[1].status.ok());

  // Failed jobs serialize with ok=false and stay valid JSON.
  std::ostringstream json;
  WriteResultsJson(json, results);
  EXPECT_NE(json.str().find("\"ok\": false"), std::string::npos);
  EXPECT_NE(json.str().find("\"ok\": true"), std::string::npos);
}

TEST(RunnerTest, EmptyJobListProducesEmptyJson) {
  const std::vector<JobResult> results = RunExperiments({}, RunnerOptions());
  EXPECT_TRUE(results.empty());
  std::ostringstream json;
  WriteResultsJson(json, results);
  EXPECT_NE(json.str().find("\"results\": []"), std::string::npos);
}

TEST(RunnerTest, ResultsTableHasOneRowPerJob) {
  const std::vector<ExperimentJob> jobs = MakeGrid();
  RunnerOptions options;
  options.threads = 4;
  const std::vector<JobResult> results = RunExperiments(jobs, options);
  const TablePrinter table = ResultsTable(results);
  EXPECT_EQ(table.num_rows(), jobs.size());
}

}  // namespace
}  // namespace besync
