// Intra-run sharding determinism tests: the cooperative scheduler's
// run_threads knob must be invisible in every result field. Each case runs
// one configuration at run_threads = 1 (the historical sequential engine),
// 2, 4 and 8, and demands EXACT equality — EXPECT_EQ on doubles, no
// tolerance — across the divergence accounting and the full stats block,
// including the fault/resync counters. A pinned golden constant guards
// against the serial baseline itself drifting, which would let the
// equality checks pass vacuously.

#include <cstdint>
#include <vector>

#include <gtest/gtest.h>

#include "core/system.h"
#include "exp/experiment.h"
#include "fault/fault_schedule.h"

namespace besync {
namespace {

/// Serial-baseline pin for the partitioned-lossy configuration below; the
/// sharded runs must then equal it bit for bit.
constexpr double kPartitionedLossyGolden = 77.886079675343225;

/// Runs `config` with the given shard count. The configs in this file keep
/// their workload seeds fixed, so every run builds an identical workload
/// and the only varying input is the thread count.
RunResult RunAt(ExperimentConfig config, int run_threads) {
  config.run_threads = run_threads;
  auto result = RunExperiment(config);
  EXPECT_TRUE(result.ok()) << result.status().ToString();
  return std::move(result).ValueOrDie();
}

/// Bitwise comparison of two runs: every double with EXPECT_EQ (the
/// sharded phases must reproduce the serial float-accumulation order
/// exactly, not approximately).
void ExpectIdenticalRuns(const RunResult& serial, const RunResult& sharded) {
  EXPECT_EQ(serial.total_weighted_divergence, sharded.total_weighted_divergence);
  EXPECT_EQ(serial.per_object_weighted, sharded.per_object_weighted);
  EXPECT_EQ(serial.per_object_unweighted, sharded.per_object_unweighted);
  EXPECT_EQ(serial.total_replicas, sharded.total_replicas);
  ASSERT_EQ(serial.per_cache_weighted.size(), sharded.per_cache_weighted.size());
  for (size_t c = 0; c < serial.per_cache_weighted.size(); ++c) {
    EXPECT_EQ(serial.per_cache_weighted[c], sharded.per_cache_weighted[c])
        << "cache " << c;
  }

  const SchedulerStats& a = serial.scheduler;
  const SchedulerStats& b = sharded.scheduler;
  EXPECT_EQ(a.refreshes_sent, b.refreshes_sent);
  EXPECT_EQ(a.refreshes_delivered, b.refreshes_delivered);
  EXPECT_EQ(a.feedback_sent, b.feedback_sent);
  EXPECT_EQ(a.polls_sent, b.polls_sent);
  EXPECT_EQ(a.cache_utilization, b.cache_utilization);
  EXPECT_EQ(a.avg_cache_queue, b.avg_cache_queue);
  EXPECT_EQ(a.max_cache_queue, b.max_cache_queue);
  EXPECT_EQ(a.mean_threshold, b.mean_threshold);
  EXPECT_EQ(a.relays_forwarded, b.relays_forwarded);
  EXPECT_EQ(a.relay_queue_delay_mean, b.relay_queue_delay_mean);
  EXPECT_EQ(a.relay_transit_delay_mean, b.relay_transit_delay_mean);
  EXPECT_EQ(a.max_relay_store, b.max_relay_store);
  EXPECT_EQ(a.relay_control_moved, b.relay_control_moved);
  EXPECT_EQ(a.reads_total, b.reads_total);
  EXPECT_EQ(a.read_hits, b.read_hits);
  EXPECT_EQ(a.read_misses, b.read_misses);
  EXPECT_EQ(a.pull_requests_sent, b.pull_requests_sent);
  EXPECT_EQ(a.pulls_delivered, b.pulls_delivered);
  EXPECT_EQ(a.cache_evictions, b.cache_evictions);
  EXPECT_EQ(a.read_staleness_mean, b.read_staleness_mean);
  EXPECT_EQ(a.read_staleness_p50, b.read_staleness_p50);
  EXPECT_EQ(a.read_staleness_p95, b.read_staleness_p95);
  EXPECT_EQ(a.read_staleness_p99, b.read_staleness_p99);
  EXPECT_EQ(a.read_miss_latency_mean, b.read_miss_latency_mean);
  EXPECT_EQ(a.pull_units_delivered, b.pull_units_delivered);
  EXPECT_EQ(a.push_units_delivered, b.push_units_delivered);
  EXPECT_EQ(a.pull_bandwidth_share, b.pull_bandwidth_share);
  EXPECT_EQ(a.invalidations_sent, b.invalidations_sent);
  EXPECT_EQ(a.invalidations_received, b.invalidations_received);
  EXPECT_EQ(a.cache_crashes, b.cache_crashes);
  EXPECT_EQ(a.cache_restarts, b.cache_restarts);
  EXPECT_EQ(a.relay_failures, b.relay_failures);
  EXPECT_EQ(a.link_down_events, b.link_down_events);
  EXPECT_EQ(a.slowdown_events, b.slowdown_events);
  EXPECT_EQ(a.crash_dropped_pulls, b.crash_dropped_pulls);
  EXPECT_EQ(a.resync_deliveries, b.resync_deliveries);
  EXPECT_EQ(a.resync_pending, b.resync_pending);
  EXPECT_EQ(a.time_to_resync_mean, b.time_to_resync_mean);
  EXPECT_EQ(a.time_to_resync_p95, b.time_to_resync_p95);
}

/// Runs `config` at 1/2/4/8 shards and checks every sharded run against
/// the serial one. Returns the serial result for golden pinning. The 8
/// count oversubscribes most of these tiny topologies on purpose: the
/// scheduler clamps its team to the widest shardable axis, and the clamp
/// itself must not perturb results.
RunResult CheckThreadInvariance(const ExperimentConfig& config) {
  const RunResult serial = RunAt(config, 1);
  ExpectIdenticalRuns(serial, RunAt(config, 2));
  ExpectIdenticalRuns(serial, RunAt(config, 4));
  ExpectIdenticalRuns(serial, RunAt(config, 8));
  return serial;
}

// ------------------------------------------------------------ workloads

/// Disjoint partitions with lossy, bandwidth-constrained links on both
/// sides: exercises the buffered send phase (source-link budgets, full-
/// capacity marking) and the two-phase delivery collect (per-link loss
/// draws must land on the same messages in the same order).
TEST(ShardingTest, PartitionedLossyMatchesSerialExactly) {
  ExperimentConfig config;
  config.workload.num_sources = 6;
  config.workload.objects_per_source = 20;
  config.workload.num_caches = 3;
  config.workload.interest_pattern = InterestPattern::kPartitionedBySource;
  config.workload.seed = 11;
  config.harness.warmup = 20.0;
  config.harness.measure = 120.0;
  config.harness.seed = 5;
  config.cache_bandwidth_avg = 6.0;
  config.source_bandwidth_avg = 3.0;
  config.loss_rate = 0.05;
  const RunResult serial = CheckThreadInvariance(config);
  // Pin the serial baseline so a drift there cannot hide behind the
  // equality checks. Exact, like every other golden in this repo.
  EXPECT_DOUBLE_EQ(serial.total_weighted_divergence, kPartitionedLossyGolden);
}

/// Full replication: every source feeds every cache, so a source's
/// buffered emissions fan out across all shared cache links and the
/// interleaving of the serial flush (shuffled source order, ascending
/// cache channels per source) is load-bearing.
TEST(ShardingTest, FullReplicationMatchesSerialExactly) {
  ExperimentConfig config;
  config.workload.num_sources = 4;
  config.workload.objects_per_source = 15;
  config.workload.num_caches = 4;
  config.workload.interest_pattern = InterestPattern::kFullReplication;
  config.workload.seed = 23;
  config.harness.warmup = 20.0;
  config.harness.measure = 100.0;
  config.harness.seed = 9;
  config.cache_bandwidth_avg = 5.0;
  CheckThreadInvariance(config);
}

/// A two-tier relay tree with binding relay bandwidth: BeginTick advances
/// cache, source, relay-ingress and relay-egress links across shards, and
/// the relay store-and-forward phase runs between the sharded send and
/// delivery phases.
TEST(ShardingTest, RelayTreeMatchesSerialExactly) {
  ExperimentConfig config;
  config.workload.num_sources = 8;
  config.workload.objects_per_source = 12;
  config.workload.num_caches = 4;
  config.workload.interest_pattern = InterestPattern::kPartitionedBySource;
  config.workload.relay_tiers = 2;
  config.workload.relay_fanout = 2;
  config.workload.relay_bandwidth_factor = 0.75;
  config.workload.seed = 31;
  config.harness.warmup = 20.0;
  config.harness.measure = 100.0;
  config.harness.seed = 3;
  config.cache_bandwidth_avg = 6.0;
  CheckThreadInvariance(config);
}

/// Many sources, so the send-phase shuffle is a long Fisher-Yates sequence:
/// in sharded mode that shuffle now runs as the ShardPool prelude,
/// overlapped with the workers' buffered emission compute, and must still
/// land on the exact serial stream position (same draws, same order).
TEST(ShardingTest, ManySourceOverlappedShuffleMatchesSerialExactly) {
  ExperimentConfig config;
  config.workload.num_sources = 24;
  config.workload.objects_per_source = 6;
  config.workload.num_caches = 4;
  config.workload.interest_pattern = InterestPattern::kPartitionedBySource;
  config.workload.seed = 41;
  config.harness.warmup = 20.0;
  config.harness.measure = 100.0;
  config.harness.seed = 7;
  config.cache_bandwidth_avg = 5.0;
  config.source_bandwidth_avg = 2.0;
  const RunResult serial = CheckThreadInvariance(config);
  EXPECT_GT(serial.scheduler.refreshes_sent, 0);
}

/// The invalidation protocol's send phase (notification queues, batching,
/// lazy tombstones) and validity-tracked read path must be thread-count
/// invariant like the push phases they replace.
TEST(ShardingTest, InvalidationProtocolMatchesSerialExactly) {
  ExperimentConfig config;
  config.workload.num_sources = 6;
  config.workload.objects_per_source = 15;
  config.workload.num_caches = 3;
  config.workload.interest_pattern = InterestPattern::kPartitionedBySource;
  config.workload.read.read_rate = 3.0;
  config.workload.seed = 37;
  config.harness.warmup = 20.0;
  config.harness.measure = 100.0;
  config.harness.seed = 5;
  config.cache_bandwidth_avg = 6.0;
  config.source_bandwidth_avg = 3.0;
  config.loss_rate = 0.05;
  config.protocol.kind = SyncProtocolKind::kInvalidation;
  config.protocol.max_invalidate_batch = 4;
  const RunResult serial = CheckThreadInvariance(config);
  EXPECT_GT(serial.scheduler.invalidations_sent, 0);
}

/// Reads enabled with a binding capacity: miss-triggered pulls are served
/// inside the tick and travel the same links as pushes, and evictions
/// depend on delivery order — all of it must survive sharding bitwise.
TEST(ShardingTest, ReadPathMatchesSerialExactly) {
  ExperimentConfig config;
  config.workload.num_sources = 4;
  config.workload.objects_per_source = 25;
  config.workload.num_caches = 2;
  config.workload.interest_pattern = InterestPattern::kPartitionedBySource;
  config.workload.read.read_rate = 1.0;
  config.workload.read.capacity = 30;
  config.workload.seed = 17;
  config.harness.warmup = 20.0;
  config.harness.measure = 100.0;
  config.harness.seed = 13;
  config.cache_bandwidth_avg = 6.0;
  const RunResult serial = CheckThreadInvariance(config);
  EXPECT_GT(serial.scheduler.reads_total, 0);
  EXPECT_GT(serial.scheduler.cache_evictions, 0);
}

/// A fault schedule layered on the lossy partitioned workload: crashes,
/// restarts-with-resync, a link flap and a slowdown all land mid-run. The
/// cache-major parallel delivery apply buffers resync bookkeeping per
/// cache and drains it serially; every resync counter and digest quantile
/// must still match the serial engine bit for bit.
TEST(ShardingTest, FaultScheduleMatchesSerialExactly) {
  ExperimentConfig config;
  config.workload.num_sources = 6;
  config.workload.objects_per_source = 20;
  config.workload.num_caches = 3;
  config.workload.interest_pattern = InterestPattern::kPartitionedBySource;
  config.workload.read.read_rate = 2.0;
  config.workload.seed = 11;
  config.harness.warmup = 20.0;
  config.harness.measure = 120.0;
  config.harness.seed = 5;
  config.cache_bandwidth_avg = 6.0;
  config.source_bandwidth_avg = 3.0;
  config.loss_rate = 0.05;
  config.workload.fault.cache_crashes = 2;
  config.workload.fault.crash_cache = 0;
  config.workload.fault.link_flaps = 1;
  config.workload.fault.slowdowns = 1;
  config.workload.fault.window_start = 40.0;
  config.workload.fault.window_end = 120.0;
  config.recovery_policy = RecoveryPolicy::kRecoveryPriority;
  const RunResult serial = CheckThreadInvariance(config);
  EXPECT_GT(serial.scheduler.cache_crashes, 0);
  EXPECT_GT(serial.scheduler.resync_deliveries, 0);
}

/// The opt-in per-shard send-order mode (send_order_shards > 0) draws each
/// logical shard's shuffle from its own Rng::Split child, so it is a
/// *different* (equally valid) run than the default single-stream order —
/// but with the shard count pinned it must itself be bitwise invariant
/// across run_threads, including when threads exceed the shard count.
TEST(ShardingTest, SendOrderShardsThreadInvariance) {
  ExperimentConfig config;
  config.workload.num_sources = 24;
  config.workload.objects_per_source = 6;
  config.workload.num_caches = 4;
  config.workload.interest_pattern = InterestPattern::kPartitionedBySource;
  config.workload.seed = 41;
  config.harness.warmup = 20.0;
  config.harness.measure = 100.0;
  config.harness.seed = 7;
  config.cache_bandwidth_avg = 5.0;
  config.source_bandwidth_avg = 2.0;
  config.loss_rate = 0.05;

  const RunResult default_order = RunAt(config, 1);

  config.send_order_shards = 3;
  const RunResult serial = RunAt(config, 1);
  ExpectIdenticalRuns(serial, RunAt(config, 2));
  ExpectIdenticalRuns(serial, RunAt(config, 4));
  ExpectIdenticalRuns(serial, RunAt(config, 8));

  // The knob is live: shard-split RNG children produce a different send
  // interleaving than the default stream, which this lossy contended
  // config turns into a different (still deterministic) trajectory.
  EXPECT_NE(serial.total_weighted_divergence,
            default_order.total_weighted_divergence);
}

}  // namespace
}  // namespace besync
