#include <cmath>
#include <limits>

#include <gtest/gtest.h>

#include "divergence/metric.h"
#include "divergence/tracker.h"
#include "priority/bound.h"
#include "priority/naive.h"
#include "priority/priority.h"
#include "priority/priority_queue.h"
#include "priority/sampling.h"
#include "priority/special_case.h"
#include "util/random.h"
#include "util/stats.h"

namespace besync {
namespace {

PriorityContext MakeContext(const DivergenceTracker* tracker, double weight = 1.0,
                            double lambda = 0.0, double max_rate = 0.0) {
  PriorityContext context;
  context.tracker = tracker;
  context.weight = weight;
  context.lambda_estimate = lambda;
  context.max_divergence_rate = max_rate;
  return context;
}

// -------------------------------------------------------------- Area policy

// Figure 3's intuition: two objects with equal current divergence; O1
// diverged late (small area under the curve), O2 diverged early. O1 must get
// the higher priority.
TEST(AreaPriorityTest, LateDivergerBeatsEarlyDiverger) {
  ValueDeviationMetric metric;
  AreaPriority policy;

  DivergenceTracker late(&metric);  // O1: jumped recently
  late.OnRefresh(0.0, 0.0, 0);
  late.OnUpdate(9.0, 5.0, 1);  // D = 5 since t = 9

  DivergenceTracker early(&metric);  // O2: jumped right after refresh
  early.OnRefresh(0.0, 0.0, 0);
  early.OnUpdate(1.0, 5.0, 1);  // D = 5 since t = 1

  const double now = 10.0;
  const double p_late = policy.Priority(MakeContext(&late), now);
  const double p_early = policy.Priority(MakeContext(&early), now);
  EXPECT_DOUBLE_EQ(late.current_divergence(), early.current_divergence());
  EXPECT_GT(p_late, p_early);
  // Exact areas: late = 10*5 - 5*1 = 45; early = 10*5 - 5*9 = 5.
  EXPECT_DOUBLE_EQ(p_late, 45.0);
  EXPECT_DOUBLE_EQ(p_early, 5.0);
}

TEST(AreaPriorityTest, FreshObjectHasNonPositivePriority) {
  ValueDeviationMetric metric;
  AreaPriority policy;
  DivergenceTracker tracker(&metric);
  tracker.OnRefresh(0.0, 0.0, 0);
  EXPECT_DOUBLE_EQ(policy.Priority(MakeContext(&tracker), 100.0), 0.0);
  // Diverged and returned: negative priority (refreshing buys nothing).
  tracker.OnUpdate(1.0, 2.0, 1);
  tracker.OnUpdate(3.0, 0.0, 2);
  EXPECT_LT(policy.Priority(MakeContext(&tracker), 10.0), 0.0);
}

TEST(AreaPriorityTest, WeightScalesPriority) {
  ValueDeviationMetric metric;
  AreaPriority policy;
  DivergenceTracker tracker(&metric);
  tracker.OnRefresh(0.0, 0.0, 0);
  tracker.OnUpdate(1.0, 3.0, 1);
  const double p1 = policy.Priority(MakeContext(&tracker, 1.0), 5.0);
  const double p10 = policy.Priority(MakeContext(&tracker, 10.0), 5.0);
  EXPECT_DOUBLE_EQ(p10, 10.0 * p1);
}

// Expected priority growth is nonnegative (Section 4.1): simulate a random
// walk under value deviation and check the priority trend statistically.
TEST(AreaPriorityTest, PriorityGrowsInExpectation) {
  ValueDeviationMetric metric;
  AreaPriority policy;
  Rng rng(11);
  RunningStat deltas;
  for (int run = 0; run < 400; ++run) {
    DivergenceTracker tracker(&metric);
    tracker.OnRefresh(0.0, 0.0, 0);
    double value = 0.0;
    double t = 0.0;
    double previous = 0.0;
    for (int step = 0; step < 50; ++step) {
      t += rng.Exponential(1.0);
      value += rng.Bernoulli(0.5) ? 1.0 : -1.0;
      tracker.OnUpdate(t, value, step + 1);
      const double p = policy.Priority(MakeContext(&tracker), t);
      deltas.Add(p - previous);
      previous = p;
    }
  }
  EXPECT_GT(deltas.mean(), 0.0);
}

// ------------------------------------------------------------- Naive policy

TEST(NaivePriorityTest, EqualsWeightedDivergence) {
  ValueDeviationMetric metric;
  NaivePriority policy;
  DivergenceTracker tracker(&metric);
  tracker.OnRefresh(0.0, 0.0, 0);
  tracker.OnUpdate(1.0, 4.0, 1);
  EXPECT_DOUBLE_EQ(policy.Priority(MakeContext(&tracker, 2.5), 9.0), 10.0);
}

// ------------------------------------------------- Poisson special cases

TEST(PoissonStalenessPriorityTest, ClosedForm) {
  StalenessMetric metric;
  PoissonStalenessPriority policy;
  DivergenceTracker tracker(&metric);
  tracker.OnRefresh(0.0, 0.0, 0);
  EXPECT_DOUBLE_EQ(policy.Priority(MakeContext(&tracker, 2.0, 0.5), 1.0), 0.0);
  tracker.OnUpdate(1.0, 1.0, 1);
  // P = D/lambda * W = 1/0.5 * 2 = 4.
  EXPECT_DOUBLE_EQ(policy.Priority(MakeContext(&tracker, 2.0, 0.5), 2.0), 4.0);
}

TEST(PoissonLagPriorityTest, ClosedForm) {
  LagMetric metric;
  PoissonLagPriority policy;
  DivergenceTracker tracker(&metric);
  tracker.OnRefresh(0.0, 0.0, 0);
  for (int u = 1; u <= 4; ++u) tracker.OnUpdate(u, u, u);
  // u = 4: P = 4*5 / (2*0.5) = 20.
  EXPECT_DOUBLE_EQ(policy.Priority(MakeContext(&tracker, 1.0, 0.5), 5.0), 20.0);
}

TEST(PoissonPriorityTest, ZeroLambdaGuarded) {
  LagMetric metric;
  PoissonLagPriority policy;
  DivergenceTracker tracker(&metric);
  tracker.OnRefresh(0.0, 0.0, 0);
  tracker.OnUpdate(1.0, 1.0, 1);
  const double p = policy.Priority(MakeContext(&tracker, 1.0, 0.0), 2.0);
  EXPECT_TRUE(std::isfinite(p));
  EXPECT_DOUBLE_EQ(p, 0.0);
}

// Property (Section 4.2): for Poisson updates, the *expected* general area
// priority immediately after the u-th update equals the closed forms:
//   lag:       u(u+1) / (2 lambda)
//   staleness: D_s / lambda  (with D_s = 1 right after an update... only if
//              the value actually differs; with monotone counters it does).
class PoissonEquivalenceTest : public ::testing::TestWithParam<double> {};

TEST_P(PoissonEquivalenceTest, AreaMatchesLagClosedFormInExpectation) {
  const double lambda = GetParam();
  LagMetric metric;
  AreaPriority area;
  Rng rng(1234 + static_cast<uint64_t>(lambda * 100));
  const int kRuns = 4000;
  const int kTargetUpdates = 5;
  RunningStat measured;
  for (int run = 0; run < kRuns; ++run) {
    DivergenceTracker tracker(&metric);
    tracker.OnRefresh(0.0, 0.0, 0);
    double t = 0.0;
    for (int u = 1; u <= kTargetUpdates; ++u) {
      t += rng.Exponential(lambda);
      tracker.OnUpdate(t, static_cast<double>(u), u);
    }
    measured.Add(area.Priority(MakeContext(&tracker), t));
  }
  const double expected =
      kTargetUpdates * (kTargetUpdates + 1) / (2.0 * lambda);
  EXPECT_NEAR(measured.mean(), expected,
              4.0 * measured.stddev() / std::sqrt(kRuns));
}

INSTANTIATE_TEST_SUITE_P(Lambdas, PoissonEquivalenceTest,
                         ::testing::Values(0.2, 0.5, 1.0, 2.0));

// ---------------------------------------------------------------- Bound

TEST(BoundPriorityTest, QuadraticGrowth) {
  ValueDeviationMetric metric;
  BoundPriority policy;
  DivergenceTracker tracker(&metric);
  tracker.OnRefresh(0.0, 0.0, 0);
  const auto context = MakeContext(&tracker, 2.0, 0.0, /*max_rate=*/0.5);
  // P = R t^2 / 2 * W = 0.5 * 16 / 2 * 2 = 8 at t = 4.
  EXPECT_DOUBLE_EQ(policy.Priority(context, 4.0), 8.0);
  EXPECT_TRUE(policy.time_varying());
}

TEST(BoundPriorityTest, CrossTimeInvertsPriority) {
  ValueDeviationMetric metric;
  BoundPriority policy;
  DivergenceTracker tracker(&metric);
  tracker.OnRefresh(10.0, 0.0, 0);
  const auto context = MakeContext(&tracker, 1.5, 0.0, 0.8);
  const double threshold = 7.0;
  const double cross = policy.ThresholdCrossTime(context, threshold, 10.0);
  EXPECT_NEAR(policy.Priority(context, cross), threshold, 1e-9);
  EXPECT_GT(cross, 10.0);
}

TEST(BoundPriorityTest, ZeroRateNeverCrosses) {
  ValueDeviationMetric metric;
  BoundPriority policy;
  DivergenceTracker tracker(&metric);
  tracker.OnRefresh(0.0, 0.0, 0);
  const auto context = MakeContext(&tracker, 1.0, 0.0, 0.0);
  EXPECT_TRUE(std::isinf(policy.ThresholdCrossTime(context, 1.0, 0.0)));
}

TEST(PolicyFactoryTest, ProducesAllKinds) {
  for (PolicyKind kind : {PolicyKind::kArea, PolicyKind::kNaive,
                          PolicyKind::kPoissonStaleness, PolicyKind::kPoissonLag,
                          PolicyKind::kBound}) {
    auto policy = MakePolicy(kind);
    ASSERT_NE(policy, nullptr);
    EXPECT_EQ(policy->kind(), kind);
  }
}

// --------------------------------------------------------- Lambda estimates

TEST(EstimateLambdaTest, AllModes) {
  EXPECT_DOUBLE_EQ(
      EstimateLambda(LambdaEstimateMode::kTrue, 0.7, 100, 10.0, 3, 2.0), 0.7);
  EXPECT_DOUBLE_EQ(
      EstimateLambda(LambdaEstimateMode::kLongRun, 0.7, 100, 200.0, 3, 2.0), 0.5);
  EXPECT_DOUBLE_EQ(
      EstimateLambda(LambdaEstimateMode::kSinceRefresh, 0.7, 100, 200.0, 3, 2.0), 1.5);
  // Division-by-zero guards.
  EXPECT_DOUBLE_EQ(
      EstimateLambda(LambdaEstimateMode::kLongRun, 0.7, 0, 0.0, 0, 0.0), 0.0);
}

// ------------------------------------------------------------------- Heaps

TEST(LazyMaxHeapTest, PopsInPriorityOrder) {
  LazyMaxHeap heap;
  std::vector<uint64_t> epochs(3, 1);
  const EpochFn fn = [&epochs](ObjectIndex i) { return epochs[i]; };
  heap.Push(1.0, 0, 1);
  heap.Push(3.0, 1, 1);
  heap.Push(2.0, 2, 1);
  QueueEntry entry;
  ASSERT_TRUE(heap.PopValid(fn, &entry));
  EXPECT_EQ(entry.index, 1);
  ASSERT_TRUE(heap.PopValid(fn, &entry));
  EXPECT_EQ(entry.index, 2);
  ASSERT_TRUE(heap.PopValid(fn, &entry));
  EXPECT_EQ(entry.index, 0);
  EXPECT_FALSE(heap.PopValid(fn, &entry));
}

TEST(LazyMaxHeapTest, StaleEntriesSkipped) {
  LazyMaxHeap heap;
  std::vector<uint64_t> epochs(2, 1);
  const EpochFn fn = [&epochs](ObjectIndex i) { return epochs[i]; };
  heap.Push(5.0, 0, 1);  // will be stale
  heap.Push(1.0, 1, 1);
  epochs[0] = 2;          // invalidate object 0's entry
  heap.Push(0.5, 0, 2);   // its replacement (lower priority now)
  QueueEntry entry;
  ASSERT_TRUE(heap.PopValid(fn, &entry));
  EXPECT_EQ(entry.index, 1);
  ASSERT_TRUE(heap.PopValid(fn, &entry));
  EXPECT_EQ(entry.index, 0);
  EXPECT_DOUBLE_EQ(entry.key, 0.5);
}

TEST(LazyMaxHeapTest, PeekDoesNotRemove) {
  LazyMaxHeap heap;
  std::vector<uint64_t> epochs(1, 1);
  const EpochFn fn = [&epochs](ObjectIndex i) { return epochs[i]; };
  heap.Push(2.0, 0, 1);
  QueueEntry entry;
  ASSERT_TRUE(heap.PeekValid(fn, &entry));
  ASSERT_TRUE(heap.PeekValid(fn, &entry));
  EXPECT_EQ(heap.size(), 1u);
}

TEST(LazyMaxHeapTest, CompactDropsStale) {
  LazyMaxHeap heap;
  std::vector<uint64_t> epochs(4, 0);
  const EpochFn fn = [&epochs](ObjectIndex i) { return epochs[i]; };
  for (int round = 0; round < 100; ++round) {
    for (ObjectIndex i = 0; i < 4; ++i) {
      ++epochs[i];
      heap.Push(static_cast<double>(round + i), i, epochs[i]);
    }
  }
  EXPECT_EQ(heap.size(), 400u);
  heap.Compact(fn);
  EXPECT_EQ(heap.size(), 4u);  // one live entry per object
  QueueEntry entry;
  ASSERT_TRUE(heap.PopValid(fn, &entry));
  EXPECT_DOUBLE_EQ(entry.key, 102.0);  // round 99, i = 3
}

TEST(LazyMaxHeapTest, RestorePutsEntryBack) {
  LazyMaxHeap heap;
  std::vector<uint64_t> epochs(1, 1);
  const EpochFn fn = [&epochs](ObjectIndex i) { return epochs[i]; };
  heap.Push(2.0, 0, 1);
  QueueEntry entry;
  ASSERT_TRUE(heap.PopValid(fn, &entry));
  heap.Restore(entry);
  ASSERT_TRUE(heap.PopValid(fn, &entry));
  EXPECT_DOUBLE_EQ(entry.key, 2.0);
}

TEST(TimeMinHeapTest, PopsOnlyDueEntries) {
  TimeMinHeap heap;
  std::vector<uint64_t> epochs(3, 1);
  const EpochFn fn = [&epochs](ObjectIndex i) { return epochs[i]; };
  heap.Push(5.0, 0, 1);
  heap.Push(1.0, 1, 1);
  heap.Push(3.0, 2, 1);
  QueueEntry entry;
  ASSERT_TRUE(heap.PopDue(3.0, fn, &entry));
  EXPECT_EQ(entry.index, 1);
  ASSERT_TRUE(heap.PopDue(3.0, fn, &entry));
  EXPECT_EQ(entry.index, 2);
  EXPECT_FALSE(heap.PopDue(3.0, fn, &entry));  // 5.0 not due
  ASSERT_TRUE(heap.PopDue(5.0, fn, &entry));
  EXPECT_EQ(entry.index, 0);
}

TEST(TimeMinHeapTest, StaleEntriesSkipped) {
  TimeMinHeap heap;
  std::vector<uint64_t> epochs(1, 1);
  const EpochFn fn = [&epochs](ObjectIndex i) { return epochs[i]; };
  heap.Push(1.0, 0, 1);
  epochs[0] = 2;
  heap.Push(2.0, 0, 2);
  QueueEntry entry;
  ASSERT_TRUE(heap.PopDue(10.0, fn, &entry));
  EXPECT_DOUBLE_EQ(entry.key, 2.0);
  EXPECT_FALSE(heap.PopDue(10.0, fn, &entry));
}

// ---------------------------------------------------------------- Sampling

TEST(SampledTrackerTest, MidpointIntegralAttribution) {
  SampledTracker tracker;
  tracker.OnRefresh(0.0);
  tracker.AddSample(2.0, 4.0);  // D=4 observed at t=2
  tracker.AddSample(4.0, 6.0);  // D=6 observed at t=4
  // Segments: D=0 on [0,1), D=4 on [1,3), D=6 on [3,4]:
  // ∫ to 4 = 0*1 + 4*2 + 6*1 = 14.
  EXPECT_DOUBLE_EQ(tracker.EstimatedIntegralTo(4.0), 14.0);
  EXPECT_DOUBLE_EQ(tracker.estimated_divergence(), 6.0);
  // Priority = 4*6 - 14 = 10.
  EXPECT_DOUBLE_EQ(tracker.EstimatedPriority(4.0), 10.0);
}

TEST(SampledTrackerTest, RefreshResets) {
  SampledTracker tracker;
  tracker.OnRefresh(0.0);
  tracker.AddSample(1.0, 5.0);
  tracker.OnRefresh(2.0);
  EXPECT_DOUBLE_EQ(tracker.estimated_divergence(), 0.0);
  EXPECT_DOUBLE_EQ(tracker.EstimatedIntegralTo(5.0), 0.0);
  EXPECT_EQ(tracker.samples_since_refresh(), 0);
}

TEST(SampledTrackerTest, PredictCrossTimeMatchesPaperFormula) {
  SampledTracker tracker(/*rate_smoothing=*/1.0);
  tracker.OnRefresh(0.0);
  tracker.AddSample(1.0, 1.0);
  tracker.AddSample(2.0, 2.0);  // rate = 1/s
  const double now = 2.0;
  const double threshold = 10.0;
  const double weight = 1.0;
  const double priority_now = tracker.EstimatedPriority(now) * weight;
  const double expected =
      0.0 + std::sqrt(now * now + 2.0 * (threshold - priority_now) /
                                      (tracker.estimated_rate() * weight));
  EXPECT_DOUBLE_EQ(tracker.PredictCrossTime(threshold, weight, now), expected);
}

TEST(SampledTrackerTest, AlreadyOverThresholdReturnsNow) {
  SampledTracker tracker;
  tracker.OnRefresh(0.0);
  tracker.AddSample(1.0, 100.0);
  EXPECT_DOUBLE_EQ(tracker.PredictCrossTime(0.5, 1.0, 2.0), 2.0);
}

TEST(SampledTrackerTest, NoRateMeansNeverCrosses) {
  SampledTracker tracker;
  tracker.OnRefresh(0.0);
  EXPECT_TRUE(std::isinf(tracker.PredictCrossTime(5.0, 1.0, 1.0)));
}

TEST(SampledTrackerTest, EstimateApproachesExactWithDenseSampling) {
  // Sample a known piecewise-constant divergence curve densely; the sampled
  // integral should approach the exact one.
  LagMetric metric;
  DivergenceTracker exact(&metric);
  exact.OnRefresh(0.0, 0.0, 0);
  SampledTracker sampled;
  sampled.OnRefresh(0.0);
  Rng rng(3);
  double t = 0.0;
  int version = 0;
  double next_update = rng.Exponential(0.5);
  for (int step = 1; step <= 2000; ++step) {
    const double sample_time = step * 0.05;
    while (next_update <= sample_time) {
      ++version;
      exact.OnUpdate(next_update, version, version);
      next_update += rng.Exponential(0.5);
    }
    t = sample_time;
    sampled.AddSample(t, exact.current_divergence());
  }
  EXPECT_NEAR(sampled.EstimatedIntegralTo(t), exact.IntegralTo(t),
              0.05 * exact.IntegralTo(t) + 1.0);
}

}  // namespace
}  // namespace besync
