// N=1 equivalence goldens: pins RunResult.total_weighted_divergence for
// fixed-seed single-cache workloads across every scheduler family. The
// values were captured from the pre-multi-cache engine (the paper's
// single-cache code paths); the topology-aware engine must reproduce them
// to 1e-9 — the refactor is required to be behavior-preserving at one
// cache.

#include <gtest/gtest.h>

#include "core/competitive.h"
#include "exp/experiment.h"

namespace besync {
namespace {

constexpr double kTolerance = 1e-9;

TEST(GoldenTest, CooperativeTrigger) {
  ExperimentConfig config;
  config.scheduler = SchedulerKind::kCooperative;
  config.workload.num_sources = 8;
  config.workload.objects_per_source = 25;
  config.workload.seed = 42;
  config.harness.warmup = 50.0;
  config.harness.measure = 300.0;
  config.harness.seed = 7;
  config.cache_bandwidth_avg = 12.0;
  config.source_bandwidth_avg = 4.0;
  const auto result = RunExperiment(config);
  ASSERT_TRUE(result.ok());
  EXPECT_NEAR(result->total_weighted_divergence, 226.69154803746471, kTolerance);
  EXPECT_EQ(result->scheduler.refreshes_sent, 3150);
  EXPECT_EQ(result->scheduler.feedback_sent, 436);
  // The per-cache breakdown of a single-cache run is the whole objective.
  ASSERT_EQ(result->per_cache_weighted.size(), 1u);
  EXPECT_NEAR(result->per_cache_weighted[0], result->total_weighted_divergence,
              kTolerance);
}

TEST(GoldenTest, CooperativeSamplingWithFluctuatingBandwidth) {
  ExperimentConfig config;
  config.scheduler = SchedulerKind::kCooperative;
  config.workload.num_sources = 4;
  config.workload.objects_per_source = 30;
  config.workload.seed = 9;
  config.harness.warmup = 40.0;
  config.harness.measure = 200.0;
  config.bandwidth_change_rate = 0.02;
  config.cache_bandwidth_avg = 8.0;
  config.monitor = MonitorMode::kSampling;
  config.sampling_interval = 5.0;
  const auto result = RunExperiment(config);
  ASSERT_TRUE(result.ok());
  EXPECT_NEAR(result->total_weighted_divergence, 150.29820033333442, kTolerance);
}

TEST(GoldenTest, CooperativeBoundPolicy) {
  ExperimentConfig config;
  config.scheduler = SchedulerKind::kCooperative;
  config.policy = PolicyKind::kBound;
  config.workload.num_sources = 4;
  config.workload.objects_per_source = 20;
  config.workload.seed = 11;
  config.harness.warmup = 30.0;
  config.harness.measure = 150.0;
  config.cache_bandwidth_avg = 6.0;
  const auto result = RunExperiment(config);
  ASSERT_TRUE(result.ok());
  EXPECT_NEAR(result->total_weighted_divergence, 116.39735741125634, kTolerance);
}

TEST(GoldenTest, CooperativeBatching) {
  ExperimentConfig config;
  config.scheduler = SchedulerKind::kCooperative;
  config.workload.num_sources = 4;
  config.workload.objects_per_source = 25;
  config.workload.seed = 13;
  config.harness.warmup = 30.0;
  config.harness.measure = 150.0;
  config.cache_bandwidth_avg = 5.0;
  config.max_batch = 3;
  const auto result = RunExperiment(config);
  ASSERT_TRUE(result.ok());
  EXPECT_NEAR(result->total_weighted_divergence, 78.306023107258085, kTolerance);
}

TEST(GoldenTest, CGM1Baseline) {
  ExperimentConfig config;
  config.scheduler = SchedulerKind::kCGM1;
  config.workload.num_sources = 4;
  config.workload.objects_per_source = 25;
  config.workload.seed = 17;
  config.harness.warmup = 30.0;
  config.harness.measure = 150.0;
  config.cache_bandwidth_avg = 10.0;
  const auto result = RunExperiment(config);
  ASSERT_TRUE(result.ok());
  EXPECT_NEAR(result->total_weighted_divergence, 222.40519590948804, kTolerance);
}

TEST(GoldenTest, CompetitivePiggyback) {
  WorkloadConfig wl;
  wl.num_sources = 4;
  wl.objects_per_source = 20;
  wl.seed = 21;
  Workload workload = std::move(MakeWorkload(wl)).ValueOrDie();
  AssignConflictingSourceWeights(&workload, 8.0, 77);
  const auto metric = MakeMetric(MetricKind::kValueDeviation);
  HarnessConfig harness_config;
  harness_config.warmup = 30.0;
  harness_config.measure = 150.0;
  Harness harness(&workload, metric.get(), harness_config);
  GroundTruth source_view(&workload, metric.get(), /*use_source_weights=*/true);
  harness.AddGroundTruth(&source_view);
  CompetitiveConfig config;
  config.base.cache_bandwidth_avg = 10.0;
  config.psi = 0.25;
  config.option = ShareOption::kPiggyback;
  CompetitiveScheduler scheduler(config);
  ASSERT_TRUE(harness.Run(&scheduler).ok());
  EXPECT_NEAR(harness.ground_truth().TotalWeightedAverage(), 61.817998329229859,
              kTolerance);
  EXPECT_NEAR(source_view.TotalWeightedAverage(), 296.74566796678164, kTolerance);
}

TEST(GoldenTest, IdealCooperative) {
  ExperimentConfig config;
  config.scheduler = SchedulerKind::kIdealCooperative;
  config.workload.num_sources = 4;
  config.workload.objects_per_source = 25;
  config.workload.seed = 23;
  config.harness.warmup = 30.0;
  config.harness.measure = 150.0;
  config.cache_bandwidth_avg = 10.0;
  const auto result = RunExperiment(config);
  ASSERT_TRUE(result.ok());
  EXPECT_NEAR(result->total_weighted_divergence, 69.689302650153195, kTolerance);
}

TEST(GoldenTest, RoundRobin) {
  ExperimentConfig config;
  config.scheduler = SchedulerKind::kRoundRobin;
  config.workload.num_sources = 4;
  config.workload.objects_per_source = 25;
  config.workload.seed = 29;
  config.harness.warmup = 30.0;
  config.harness.measure = 150.0;
  config.cache_bandwidth_avg = 10.0;
  const auto result = RunExperiment(config);
  ASSERT_TRUE(result.ok());
  EXPECT_NEAR(result->total_weighted_divergence, 96.44131748074895, kTolerance);
}

}  // namespace
}  // namespace besync
