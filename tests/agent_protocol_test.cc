// White-box tests of the cooperative protocol mechanics at the agent level:
// send ordering, threshold piggybacking, full-capacity semantics, secondary
// (competitive) sends, batching, and time-varying wake-up scheduling.

#include <algorithm>
#include <cmath>
#include <memory>

#include <gtest/gtest.h>

#include "core/competitive.h"
#include "core/harness.h"
#include "core/source.h"
#include "core/system.h"
#include "divergence/metric.h"
#include "net/link.h"

namespace besync {
namespace {

std::unique_ptr<Link> MakeLink(double rate) {
  return std::make_unique<Link>(
      "test", std::make_unique<BandwidthModel>(
                  std::make_unique<ConstantFluctuation>(rate)));
}

/// Agent-level fixture: a harness that is never Run; object state is driven
/// by hand so each protocol step can be observed in isolation.
class SourceAgentTest : public ::testing::Test {
 protected:
  SourceAgentTest() {
    WorkloadConfig config;
    config.num_sources = 1;
    config.objects_per_source = 5;
    config.seed = 3;
    workload_ = std::move(MakeWorkload(config)).ValueOrDie();
    metric_ = MakeMetric(MetricKind::kValueDeviation);
    harness_config_.warmup = 0.0;
    harness_config_.measure = 1000.0;
    harness_ = std::make_unique<Harness>(&workload_, metric_.get(), harness_config_);
    policy_ = MakePolicy(PolicyKind::kArea);
    source_link_ = MakeLink(100.0);
    cache_link_ = MakeLink(100.0);
  }

  SourceAgent MakeAgent(const SourceAgentConfig& config) {
    SourceAgent agent(0, config, /*expected_feedback_period=*/10.0, policy_.get(),
                      harness_.get());
    for (int i = 0; i < 5; ++i) agent.AddObject(i);
    agent.Start(&harness_->simulation(), /*tick_length=*/1.0);
    return agent;
  }

  /// Applies a synthetic update of `delta` to object `i` at time `t` and
  /// notifies the agent.
  void Update(SourceAgent* agent, ObjectIndex i, double t, double delta) {
    ObjectRuntime& object = harness_->objects()[i];
    object.state.value += delta;
    ++object.state.version;
    object.state.last_update_time = t;
    object.tracker().OnUpdate(t, object.state.value, object.state.version);
    agent->OnObjectUpdate(i, t);
  }

  void BeginTick(double t) {
    source_link_->BeginTick(t, 1.0);
    cache_link_->BeginTick(t, 1.0);
  }

  std::vector<Message> DrainCacheLink() {
    std::vector<Message> messages;
    cache_link_->DeliverQueued(
        [&messages](const Message& m) { messages.push_back(m); });
    return messages;
  }

  Workload workload_;
  std::unique_ptr<DivergenceMetric> metric_;
  HarnessConfig harness_config_;
  std::unique_ptr<Harness> harness_;
  std::unique_ptr<PriorityPolicy> policy_;
  std::unique_ptr<Link> source_link_;
  std::unique_ptr<Link> cache_link_;
};

TEST_F(SourceAgentTest, SendsAboveThresholdInPriorityOrder) {
  SourceAgentConfig config;
  config.threshold.initial = 5.0;
  SourceAgent agent = MakeAgent(config);
  // For a single update of size d at time t_u (refreshed at 0), the area
  // priority is P = d * t_u: recent divergers win (Figure 3's intuition).
  Update(&agent, 1, 1.0, 3.0);  // P = 3*1 = 3  -> below the threshold of 5
  Update(&agent, 2, 8.0, 8.0);  // P = 8*8 = 64 -> highest
  Update(&agent, 3, 9.0, 1.0);  // P = 1*9 = 9
  BeginTick(10.0);
  const int64_t sent = agent.SendRefreshes(10.0, source_link_.get(), cache_link_.get());
  EXPECT_EQ(sent, 2);
  const auto messages = DrainCacheLink();
  ASSERT_EQ(messages.size(), 2u);
  EXPECT_EQ(messages[0].object_index, 2);  // highest priority first
  EXPECT_EQ(messages[1].object_index, 3);
}

TEST_F(SourceAgentTest, ThresholdRisesPerSendAndIsPiggybacked) {
  SourceAgentConfig config;
  config.threshold.initial = 1.0;
  config.threshold.increase = 1.1;
  SourceAgent agent = MakeAgent(config);
  Update(&agent, 0, 1.0, 5.0);
  Update(&agent, 1, 2.0, 5.0);
  BeginTick(10.0);
  agent.SendRefreshes(10.0, source_link_.get(), cache_link_.get());
  const auto messages = DrainCacheLink();
  ASSERT_EQ(messages.size(), 2u);
  // Each message carries the post-increase threshold at its send.
  EXPECT_NEAR(messages[0].piggyback_threshold, 1.1, 1e-12);
  EXPECT_NEAR(messages[1].piggyback_threshold, 1.21, 1e-12);
  EXPECT_NEAR(agent.threshold(), 1.21, 1e-12);
}

TEST_F(SourceAgentTest, FullCapacityFlagAndFeedbackSuppression) {
  SourceAgentConfig config;
  config.threshold.initial = 0.1;
  SourceAgent agent = MakeAgent(config);
  for (int i = 0; i < 5; ++i) Update(&agent, i, 1.0, 10.0);
  source_link_ = MakeLink(2.0);  // only 2 of 5 eligible fit
  BeginTick(5.0);
  const int64_t sent = agent.SendRefreshes(5.0, source_link_.get(), cache_link_.get());
  EXPECT_EQ(sent, 2);
  EXPECT_TRUE(agent.at_full_capacity());
  // Feedback must NOT lower the threshold while saturated (footnote 3)...
  const double before = agent.threshold();
  Message feedback;
  feedback.kind = MessageKind::kFeedback;
  agent.OnFeedback(feedback, 6.0);
  EXPECT_DOUBLE_EQ(agent.threshold(), before);
  // ...but once the backlog clears, feedback lowers it again.
  BeginTick(6.0);
  agent.SendRefreshes(6.0, source_link_.get(), cache_link_.get());
  BeginTick(7.0);
  agent.SendRefreshes(7.0, source_link_.get(), cache_link_.get());
  EXPECT_FALSE(agent.at_full_capacity());
  const double saturated = agent.threshold();
  agent.OnFeedback(feedback, 8.0);
  EXPECT_LT(agent.threshold(), saturated);
}

TEST_F(SourceAgentTest, SecondarySendsSkipThresholdAndDontBumpIt) {
  SourceAgentConfig config;
  config.threshold.initial = 1e6;  // nothing passes the threshold path
  SourceAgent agent = MakeAgent(config);
  agent.EnableSecondaryQueue();
  Update(&agent, 0, 1.0, 2.0);
  Update(&agent, 1, 1.0, 4.0);
  BeginTick(5.0);
  EXPECT_EQ(agent.SendRefreshes(5.0, source_link_.get(), cache_link_.get()), 0);
  const double threshold_before = agent.threshold();
  const int64_t sent =
      agent.SendSecondary(5.0, /*max_count=*/1, source_link_.get(), cache_link_.get());
  EXPECT_EQ(sent, 1);
  EXPECT_DOUBLE_EQ(agent.threshold(), threshold_before);
  const auto messages = DrainCacheLink();
  ASSERT_EQ(messages.size(), 1u);
  EXPECT_EQ(messages[0].object_index, 1);  // own-priority order
}

TEST_F(SourceAgentTest, RefreshResetsTrackerAndSecondSendFindsNothing) {
  SourceAgentConfig config;
  config.threshold.initial = 0.5;
  SourceAgent agent = MakeAgent(config);
  Update(&agent, 0, 1.0, 5.0);
  BeginTick(4.0);
  EXPECT_EQ(agent.SendRefreshes(4.0, source_link_.get(), cache_link_.get()), 1);
  EXPECT_DOUBLE_EQ(harness_->objects()[0].tracker().current_divergence(), 0.0);
  BeginTick(5.0);
  EXPECT_EQ(agent.SendRefreshes(5.0, source_link_.get(), cache_link_.get()), 0);
}

TEST_F(SourceAgentTest, BatchingPacksFullBatchesImmediately) {
  SourceAgentConfig config;
  config.threshold.initial = 0.5;
  config.max_batch = 3;
  config.max_batch_delay = 100.0;  // partials wait a long time
  SourceAgent agent = MakeAgent(config);
  for (int i = 0; i < 4; ++i) Update(&agent, i, 1.0, 5.0);
  BeginTick(5.0);
  agent.SendRefreshes(5.0, source_link_.get(), cache_link_.get());
  const auto messages = DrainCacheLink();
  // 4 eligible -> one full batch of 3; the leftover partial is held back.
  ASSERT_EQ(messages.size(), 1u);
  EXPECT_EQ(messages[0].extra_refreshes.size(), 2u);
  EXPECT_EQ(messages[0].cost, 1);
  EXPECT_EQ(agent.refreshes_sent(), 3);
}

TEST_F(SourceAgentTest, PartialBatchFlushedAfterDelay) {
  SourceAgentConfig config;
  config.threshold.initial = 0.5;
  config.max_batch = 3;
  config.max_batch_delay = 10.0;
  SourceAgent agent = MakeAgent(config);
  Update(&agent, 0, 1.0, 5.0);
  BeginTick(5.0);
  agent.SendRefreshes(5.0, source_link_.get(), cache_link_.get());
  EXPECT_EQ(DrainCacheLink().size(), 0u);  // held: batch not full, not overdue
  BeginTick(11.0);  // > max_batch_delay since last emission (t=0)
  agent.SendRefreshes(11.0, source_link_.get(), cache_link_.get());
  const auto messages = DrainCacheLink();
  ASSERT_EQ(messages.size(), 1u);
  EXPECT_EQ(messages[0].extra_refreshes.size(), 0u);  // partial of one
}

TEST_F(SourceAgentTest, TimeVaryingBoundPolicySendsByDeadline) {
  policy_ = MakePolicy(PolicyKind::kBound);
  SourceAgentConfig config;
  config.threshold.initial = 2.0;
  SourceAgent agent = MakeAgent(config);
  // Bound priority P = R t^2/2 * W with R = lambda from the workload; the
  // earliest-crossing object is the one with the largest R * W.
  double max_rate = 0.0;
  for (const auto& spec : workload_.objects) {
    max_rate = std::max(max_rate, spec.max_divergence_rate);
  }
  const double cross = std::sqrt(2.0 * 2.0 / max_rate);
  // Just before the earliest crossing: nothing to send.
  BeginTick(std::floor(cross) - 1.0);
  EXPECT_EQ(agent.SendRefreshes(std::floor(cross) - 1.0, source_link_.get(),
                                cache_link_.get()),
            0);
  // After it: at least that object goes out, with no update ever occurring.
  const double later = cross + 2.0;
  BeginTick(later);
  EXPECT_GE(agent.SendRefreshes(later, source_link_.get(), cache_link_.get()), 1);
}

// ------------------------------------------------ competitive grant rates

TEST(CompetitiveGrantTest, EqualAndProportionalRates) {
  WorkloadConfig wl;
  wl.num_sources = 4;
  wl.objects_per_source = 10;
  wl.seed = 5;
  auto metric = MakeMetric(MetricKind::kValueDeviation);
  HarnessConfig harness_config;
  harness_config.warmup = 10.0;
  harness_config.measure = 100.0;

  for (ShareOption option :
       {ShareOption::kEqualShare, ShareOption::kProportionalShare}) {
    Workload workload = std::move(MakeWorkload(wl)).ValueOrDie();
    Harness harness(&workload, metric.get(), harness_config);
    CompetitiveConfig config;
    config.base.cache_bandwidth_avg = 20.0;
    config.psi = 0.5;
    config.option = option;
    CompetitiveScheduler scheduler(config);
    ASSERT_TRUE(harness.Run(&scheduler).ok());
    // Reserved 0.5*20 = 10 msgs/s over 4 equal sources -> 2.5 each (both
    // options coincide for equal source sizes).
    for (int j = 0; j < 4; ++j) {
      EXPECT_NEAR(scheduler.source(j).granted_rate(), 2.5, 1e-9);
    }
  }
}

}  // namespace
}  // namespace besync
