#include <gtest/gtest.h>

#include "exp/experiment.h"
#include "exp/sweep.h"

namespace besync {
namespace {

TEST(SweepTest, LinSpace) {
  const auto values = LinSpace(0.0, 1.0, 5);
  ASSERT_EQ(values.size(), 5u);
  EXPECT_DOUBLE_EQ(values[0], 0.0);
  EXPECT_DOUBLE_EQ(values[2], 0.5);
  EXPECT_DOUBLE_EQ(values[4], 1.0);
  EXPECT_EQ(LinSpace(3.0, 9.0, 1), std::vector<double>{3.0});
}

TEST(SweepTest, GeomSpace) {
  const auto values = GeomSpace(1.0, 100.0, 3);
  ASSERT_EQ(values.size(), 3u);
  EXPECT_DOUBLE_EQ(values[0], 1.0);
  EXPECT_NEAR(values[1], 10.0, 1e-9);
  EXPECT_DOUBLE_EQ(values[2], 100.0);
}

TEST(SchedulerKindTest, Names) {
  EXPECT_EQ(SchedulerKindToString(SchedulerKind::kCooperative), "cooperative");
  EXPECT_EQ(SchedulerKindToString(SchedulerKind::kIdealCooperative),
            "ideal-cooperative");
  EXPECT_EQ(SchedulerKindToString(SchedulerKind::kIdealCacheBased),
            "ideal-cache-based");
  EXPECT_EQ(SchedulerKindToString(SchedulerKind::kCGM1), "cgm1");
  EXPECT_EQ(SchedulerKindToString(SchedulerKind::kCGM2), "cgm2");
  EXPECT_EQ(SchedulerKindToString(SchedulerKind::kRoundRobin), "round-robin");
}

ExperimentConfig SmallExperiment(SchedulerKind scheduler) {
  ExperimentConfig config;
  config.scheduler = scheduler;
  config.metric = MetricKind::kStaleness;
  config.workload.num_sources = 3;
  config.workload.objects_per_source = 10;
  config.workload.rate_lo = 0.05;
  config.workload.rate_hi = 0.5;
  config.workload.seed = 2;
  config.harness.warmup = 20.0;
  config.harness.measure = 150.0;
  config.cache_bandwidth_avg = 10.0;
  return config;
}

class AllSchedulersTest : public ::testing::TestWithParam<SchedulerKind> {};

TEST_P(AllSchedulersTest, RunsAndProducesFiniteDivergence) {
  auto result = RunExperiment(SmallExperiment(GetParam()));
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_GE(result->per_object_unweighted, 0.0);
  EXPECT_LE(result->per_object_unweighted, 1.0);  // staleness is in [0, 1]
  EXPECT_EQ(result->scheduler_name, SchedulerKindToString(GetParam()));
}

INSTANTIATE_TEST_SUITE_P(
    Kinds, AllSchedulersTest,
    ::testing::Values(SchedulerKind::kCooperative, SchedulerKind::kIdealCooperative,
                      SchedulerKind::kIdealCacheBased, SchedulerKind::kCGM1,
                      SchedulerKind::kCGM2, SchedulerKind::kRoundRobin));

TEST(ExperimentTest, WorkloadReuseAcrossSchedulers) {
  // RunExperimentOnWorkload must leave the workload reusable (processes are
  // reset between runs).
  ExperimentConfig config = SmallExperiment(SchedulerKind::kCooperative);
  Workload workload = std::move(MakeWorkload(config.workload)).ValueOrDie();
  auto first = RunExperimentOnWorkload(config, &workload);
  ASSERT_TRUE(first.ok());
  auto second = RunExperimentOnWorkload(config, &workload);
  ASSERT_TRUE(second.ok());
  // Identical everything -> identical measurements.
  EXPECT_DOUBLE_EQ(first->per_object_unweighted, second->per_object_unweighted);
}

// The paper's central comparison, swept across metrics and bandwidths: the
// idealized oracle never loses to the practical cooperative protocol, and
// the cooperative protocol never loses to blind round-robin refreshing
// (allowing a small tolerance for simulation noise).
class OrderingSweepTest
    : public ::testing::TestWithParam<std::tuple<MetricKind, double>> {};

TEST_P(OrderingSweepTest, IdealLeqCooperativeLeqRoundRobin) {
  const auto [metric, bandwidth_fraction] = GetParam();
  ExperimentConfig config;
  config.metric = metric;
  config.workload.num_sources = 5;
  config.workload.objects_per_source = 10;
  config.workload.rate_lo = 0.0;
  config.workload.rate_hi = 1.0;
  config.workload.seed = 23;
  config.harness.warmup = 100.0;
  config.harness.measure = 400.0;
  config.cache_bandwidth_avg = bandwidth_fraction * 50.0;

  Workload workload = std::move(MakeWorkload(config.workload)).ValueOrDie();
  auto run = [&](SchedulerKind kind) {
    config.scheduler = kind;
    auto result = RunExperimentOnWorkload(config, &workload);
    EXPECT_TRUE(result.ok());
    return result->per_object_unweighted;
  };
  const double ideal = run(SchedulerKind::kIdealCooperative);
  const double cooperative = run(SchedulerKind::kCooperative);
  const double round_robin = run(SchedulerKind::kRoundRobin);
  EXPECT_LE(ideal, cooperative * 1.10 + 1e-6);
  // Round-robin is modeled with free, instantaneous refreshes (no queueing,
  // no feedback traffic), so at extreme scarcity it can come within a few
  // percent of — or marginally beat — the real protocol; the informed
  // policy must still win clearly overall.
  EXPECT_LE(cooperative, round_robin * 1.30 + 1e-6);
}

INSTANTIATE_TEST_SUITE_P(
    Grid, OrderingSweepTest,
    ::testing::Combine(::testing::Values(MetricKind::kStaleness, MetricKind::kLag,
                                         MetricKind::kValueDeviation),
                       ::testing::Values(0.1, 0.3, 0.6)));

// Section 4.3's first validation result, at test scale: under *uniform*
// weights and rates, the area priority and the naive weighted-divergence
// priority perform within a modest factor of each other. The paper's setup
// prioritizes directly (single source, 10 refreshes/s), i.e. the idealized
// scheduler with the policy swapped.
TEST(ValidationExperimentTest, UniformCasePoliciesComparable) {
  ExperimentConfig config = SmallExperiment(SchedulerKind::kIdealCooperative);
  config.metric = MetricKind::kValueDeviation;
  config.workload.num_sources = 1;
  config.workload.objects_per_source = 100;
  config.workload.update_model = WorkloadConfig::UpdateModel::kBernoulli;
  config.workload.rate_lo = 0.0;
  config.workload.rate_hi = 1.0;
  config.cache_bandwidth_avg = 10.0;
  config.harness.warmup = 100.0;
  config.harness.measure = 600.0;

  config.policy = PolicyKind::kArea;
  auto area = RunExperiment(config);
  ASSERT_TRUE(area.ok());
  config.policy = PolicyKind::kNaive;
  auto naive = RunExperiment(config);
  ASSERT_TRUE(naive.ok());
  // "the difference ... was less than 10%" in the paper's long runs; allow
  // more slack at this small scale but demand the same ballpark.
  EXPECT_LT(naive->per_object_weighted / area->per_object_weighted, 1.35);
  EXPECT_GT(naive->per_object_weighted / area->per_object_weighted, 0.7);
}

// Section 4.3's second validation result: under skewed weights and rates,
// the naive policy is *much* worse (paper: +64%/+74%/+84% depending on the
// metric).
TEST(ValidationExperimentTest, SkewedCaseAreaWinsBigly) {
  ExperimentConfig config = SmallExperiment(SchedulerKind::kIdealCooperative);
  config.metric = MetricKind::kValueDeviation;
  config.workload.num_sources = 1;
  config.workload.objects_per_source = 100;
  config.workload.update_model = WorkloadConfig::UpdateModel::kBernoulli;
  config.workload.rate_distribution = RateDistribution::kHalfSlowHalfFast;
  config.workload.slow_rate = 0.01;
  config.workload.fast_rate = 1.0;
  config.workload.weight_scheme = WeightScheme::kHalfHeavy;
  config.workload.heavy_weight = 10.0;
  config.cache_bandwidth_avg = 10.0;
  config.harness.warmup = 100.0;
  config.harness.measure = 800.0;

  config.policy = PolicyKind::kArea;
  auto area = RunExperiment(config);
  ASSERT_TRUE(area.ok());
  config.policy = PolicyKind::kNaive;
  auto naive = RunExperiment(config);
  ASSERT_TRUE(naive.ok());
  EXPECT_GT(naive->per_object_weighted / area->per_object_weighted, 1.3);
}

}  // namespace
}  // namespace besync
