// Observability-layer tests: compiled-in-but-disabled obs reproduces the
// seed goldens exactly, enabling it never changes run results at any
// run_threads, the exported time-series/trace bytes are identical across
// thread counts (including the sharded send-order mode), the fixed-budget
// downsampler is deterministic, and recorded message lifecycles are
// complete and monotone (enqueue <= send <= apply on matching identities;
// every resync episode opens and closes).

#include <cstdint>
#include <map>
#include <sstream>
#include <string>
#include <tuple>
#include <vector>

#include <gtest/gtest.h>

#include "exp/experiment.h"
#include "obs/export.h"
#include "obs/metrics.h"
#include "obs/timeseries.h"
#include "obs/trace.h"

namespace besync {
namespace {

/// The GoldenTest.CooperativeTrigger configuration (tests/golden_test.cc):
/// the seed-era single-cache constants observability must not disturb.
ExperimentConfig GoldenConfig() {
  ExperimentConfig config;
  config.scheduler = SchedulerKind::kCooperative;
  config.workload.num_sources = 8;
  config.workload.objects_per_source = 25;
  config.workload.seed = 42;
  config.harness.warmup = 50.0;
  config.harness.measure = 300.0;
  config.harness.seed = 7;
  config.cache_bandwidth_avg = 12.0;
  config.source_bandwidth_avg = 4.0;
  return config;
}

constexpr double kGoldenDivergence = 226.69154803746471;
constexpr int64_t kGoldenRefreshes = 3150;
constexpr int64_t kGoldenFeedback = 436;

/// Multi-cache tree configuration with reads and a pinned crash/restart:
/// exercises every trace-producing subsystem (relays, pulls, faults,
/// resync) in one short run.
ExperimentConfig FaultTreeConfig() {
  ExperimentConfig config;
  config.scheduler = SchedulerKind::kCooperative;
  config.workload.num_sources = 6;
  config.workload.objects_per_source = 12;
  config.workload.num_caches = 4;
  config.workload.interest_pattern = InterestPattern::kPartitionedBySource;
  config.workload.seed = 11;
  config.workload.relay_tiers = 1;
  config.workload.relay_fanout = 2;
  config.workload.read.read_rate = 1.0;
  config.harness.warmup = 20.0;
  config.harness.measure = 150.0;
  config.harness.seed = 5;
  config.cache_bandwidth_avg = 6.0;
  config.source_bandwidth_avg = 3.0;
  config.workload.fault.cache_crashes = 1;
  config.workload.fault.crash_cache = 0;
  config.workload.fault.crash_duration = 15.0;
  config.workload.fault.window_start = 60.0;
  config.workload.fault.window_end = 0.0;  // fire exactly at 60
  return config;
}

ObsConfig FullObs() {
  ObsConfig obs;
  obs.enabled = true;
  obs.trace = true;
  return obs;
}

/// The deterministic result surface two runs are compared on.
struct ResultKey {
  double divergence;
  int64_t refreshes_sent;
  int64_t refreshes_delivered;
  int64_t feedback;
  int64_t reads;
  int64_t pulls;
  int64_t crashes;
  int64_t resyncs;

  static ResultKey Of(const RunResult& result) {
    const SchedulerStats& s = result.scheduler;
    return {result.total_weighted_divergence, s.refreshes_sent,
            s.refreshes_delivered, s.feedback_sent,  s.reads_total,
            s.pulls_delivered,     s.cache_crashes,  s.resync_deliveries};
  }

  bool operator==(const ResultKey& other) const {
    return divergence == other.divergence &&
           refreshes_sent == other.refreshes_sent &&
           refreshes_delivered == other.refreshes_delivered &&
           feedback == other.feedback && reads == other.reads &&
           pulls == other.pulls && crashes == other.crashes &&
           resyncs == other.resyncs;
  }
};

std::string TimeSeriesBytes(const RunResult& result) {
  std::ostringstream out;
  WriteTimeSeriesJson(out, {{"job", result.obs.get()}});
  return out.str();
}

std::string TraceBytes(const RunResult& result) {
  std::ostringstream out;
  WriteTraceJson(out, {{"job", result.obs.get()}});
  return out.str();
}

// ------------------------------------------------------ bitwise inertness

TEST(ObsInertnessTest, DisabledObsKeepsSeedGoldens) {
  const auto result = RunExperiment(GoldenConfig());
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_EQ(result->total_weighted_divergence, kGoldenDivergence);
  EXPECT_EQ(result->scheduler.refreshes_sent, kGoldenRefreshes);
  EXPECT_EQ(result->scheduler.feedback_sent, kGoldenFeedback);
  EXPECT_EQ(result->obs, nullptr);  // no collector allocated when disabled
}

TEST(ObsInertnessTest, EnabledObsKeepsSeedGoldensAtAnyThreadCount) {
  for (int run_threads : {1, 2, 8}) {
    ExperimentConfig config = GoldenConfig();
    config.run_threads = run_threads;
    config.obs = FullObs();
    const auto result = RunExperiment(config);
    ASSERT_TRUE(result.ok()) << result.status().ToString();
    EXPECT_EQ(result->total_weighted_divergence, kGoldenDivergence)
        << "run_threads=" << run_threads;
    EXPECT_EQ(result->scheduler.refreshes_sent, kGoldenRefreshes);
    EXPECT_EQ(result->scheduler.feedback_sent, kGoldenFeedback);
    ASSERT_NE(result->obs, nullptr);
    EXPECT_FALSE(result->obs->series.rows().empty());
    EXPECT_FALSE(result->obs->trace.empty());
  }
}

TEST(ObsInertnessTest, EnabledObsIsResultInertOnFaultTreeWithReads) {
  ExperimentConfig off = FaultTreeConfig();
  const auto baseline = RunExperiment(off);
  ASSERT_TRUE(baseline.ok()) << baseline.status().ToString();
  ASSERT_GT(baseline->scheduler.cache_crashes, 0);  // the fault really fired
  ASSERT_GT(baseline->scheduler.reads_total, 0);

  for (int run_threads : {1, 2, 8}) {
    ExperimentConfig on = FaultTreeConfig();
    on.run_threads = run_threads;
    on.obs = FullObs();
    const auto result = RunExperiment(on);
    ASSERT_TRUE(result.ok()) << result.status().ToString();
    EXPECT_TRUE(ResultKey::Of(*result) == ResultKey::Of(*baseline))
        << "observability perturbed the run at run_threads=" << run_threads;
  }
}

TEST(ObsInertnessTest, ObsOnBaselineSchedulerIsInvalidArgument) {
  ExperimentConfig config = GoldenConfig();
  config.scheduler = SchedulerKind::kRoundRobin;
  config.obs.enabled = true;
  const auto result = RunExperiment(config);
  EXPECT_FALSE(result.ok());
}

// -------------------------------------------- byte-stability of the export

TEST(ObsExportTest, BytesIdenticalAcrossRunThreads) {
  std::string series_bytes;
  std::string trace_bytes;
  for (int run_threads : {1, 2, 8}) {
    ExperimentConfig config = FaultTreeConfig();
    config.run_threads = run_threads;
    config.obs = FullObs();
    const auto result = RunExperiment(config);
    ASSERT_TRUE(result.ok()) << result.status().ToString();
    ASSERT_NE(result->obs, nullptr);
    if (run_threads == 1) {
      series_bytes = TimeSeriesBytes(*result);
      trace_bytes = TraceBytes(*result);
      EXPECT_FALSE(trace_bytes.empty());
      continue;
    }
    EXPECT_EQ(TimeSeriesBytes(*result), series_bytes)
        << "time-series bytes diverged at run_threads=" << run_threads;
    EXPECT_EQ(TraceBytes(*result), trace_bytes)
        << "trace bytes diverged at run_threads=" << run_threads;
  }
}

TEST(ObsExportTest, BytesIdenticalUnderShardedSendOrder) {
  // send_order_shards > 0 is a *different* deterministic run; the invariant
  // is that, at a fixed shard count, the bytes are still thread-invariant.
  std::string trace_bytes;
  for (int run_threads : {1, 8}) {
    ExperimentConfig config = FaultTreeConfig();
    config.run_threads = run_threads;
    config.send_order_shards = 4;
    config.obs = FullObs();
    const auto result = RunExperiment(config);
    ASSERT_TRUE(result.ok()) << result.status().ToString();
    if (run_threads == 1) {
      trace_bytes = TraceBytes(*result);
      continue;
    }
    EXPECT_EQ(TraceBytes(*result), trace_bytes);
  }
}

TEST(ObsExportTest, TraceFilterSelectsSubset) {
  ExperimentConfig config = FaultTreeConfig();
  config.obs = FullObs();
  const auto all = RunExperiment(config);
  ASSERT_TRUE(all.ok());

  config.obs.trace_caches = {1};
  config.obs.trace_start = 40.0;
  config.obs.trace_end = 120.0;
  const auto filtered = RunExperiment(config);
  ASSERT_TRUE(filtered.ok());
  ASSERT_NE(filtered->obs, nullptr);
  EXPECT_LT(filtered->obs->trace.size(), all->obs->trace.size());
  EXPECT_FALSE(filtered->obs->trace.empty());
  for (const TraceEvent& event : filtered->obs->trace) {
    if (event.cache >= 0) EXPECT_EQ(event.cache, 1);
    EXPECT_GE(event.t, 40.0);
    EXPECT_LE(event.t, 120.0);
  }
  // Filtering must not perturb the run itself.
  EXPECT_EQ(filtered->total_weighted_divergence, all->total_weighted_divergence);
}

// ------------------------------------------------------------ downsampler

TEST(ObsTimeSeriesTest, DecimationIsDeterministicAndKeepsNewest) {
  TimeSeries series;
  series.Configure({"a"}, 1.0, 64);
  double last_sampled = -1.0;
  for (int t = 0; t < 5000; ++t) {
    if (!series.Due(static_cast<double>(t))) continue;
    series.Append(static_cast<double>(t), {static_cast<double>(t) * 2.0});
    last_sampled = static_cast<double>(t);
  }
  ASSERT_FALSE(series.rows().empty());
  EXPECT_LE(series.rows().size(), 64u);
  // The newest retained row is the newest appended row (no tail truncation).
  EXPECT_EQ(series.rows().back().t, last_sampled);
  // The grid coarsened by doubling: effective interval is a power of two.
  const double ratio = series.effective_interval() / series.sample_interval();
  EXPECT_GE(ratio, 1.0);
  EXPECT_EQ(ratio, static_cast<double>(static_cast<int64_t>(ratio)));
  EXPECT_GT(series.samples_dropped(), 0);

  // A second identical feed retains bitwise-identical rows.
  TimeSeries replay;
  replay.Configure({"a"}, 1.0, 64);
  for (int t = 0; t < 5000; ++t) {
    if (!replay.Due(static_cast<double>(t))) continue;
    replay.Append(static_cast<double>(t), {static_cast<double>(t) * 2.0});
  }
  ASSERT_EQ(replay.rows().size(), series.rows().size());
  for (size_t i = 0; i < series.rows().size(); ++i) {
    EXPECT_EQ(replay.rows()[i].t, series.rows()[i].t);
    EXPECT_EQ(replay.rows()[i].values, series.rows()[i].values);
  }
}

TEST(ObsTimeSeriesTest, UnboundedBudgetRetainsEverySample) {
  TimeSeries series;
  series.Configure({"a"}, 1.0, 0);  // <= 1 disables the budget
  for (int t = 0; t < 1000; ++t) {
    if (series.Due(static_cast<double>(t))) {
      series.Append(static_cast<double>(t), {0.0});
    }
  }
  EXPECT_EQ(series.rows().size(), 1000u);
  EXPECT_EQ(series.samples_dropped(), 0);
}

// ------------------------------------------------- lifecycle completeness

using LifecycleKey = std::tuple<int32_t, int64_t, int64_t>;  // cache, obj, ver

TEST(ObsLifecycleTest, AppliedRefreshesHaveMonotoneLifecycles) {
  ExperimentConfig config = FaultTreeConfig();
  config.obs = FullObs();
  const auto result = RunExperiment(config);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  const std::vector<TraceEvent>& trace = result->obs->trace;

  std::map<LifecycleKey, double> first_enqueue;
  std::map<LifecycleKey, double> first_send;
  for (const TraceEvent& event : trace) {
    if (event.object < 0 || event.is_pull) continue;
    const LifecycleKey key{event.cache, event.object, event.version};
    if (event.kind == TraceEventKind::kEnqueue) {
      auto it = first_enqueue.find(key);
      if (it == first_enqueue.end() || event.t < it->second) {
        first_enqueue[key] = event.t;
      }
    } else if (event.kind == TraceEventKind::kSend) {
      auto it = first_send.find(key);
      if (it == first_send.end() || event.t < it->second) {
        first_send[key] = event.t;
      }
    }
  }

  int64_t applies = 0;
  int64_t applies_with_send = 0;
  int64_t sends_with_enqueue = 0;
  for (const TraceEvent& event : trace) {
    if (event.kind != TraceEventKind::kApply || event.is_pull) continue;
    ++applies;
    const LifecycleKey key{event.cache, event.object, event.version};
    const auto send = first_send.find(key);
    // The send may predate the trace window or a filter; when recorded it
    // must not postdate the apply.
    if (send == first_send.end()) continue;
    ++applies_with_send;
    EXPECT_LE(send->second, event.t) << "send after apply for object "
                                     << event.object << " v" << event.version;
    const auto enqueue = first_enqueue.find(key);
    if (enqueue != first_enqueue.end()) {
      ++sends_with_enqueue;
      EXPECT_LE(enqueue->second, send->second)
          << "enqueue after send for object " << event.object;
    }
  }
  // Non-vacuity: the run must actually exercise the chain at volume.
  EXPECT_GT(applies, 100);
  EXPECT_GT(applies_with_send, 100);
  EXPECT_GT(sends_with_enqueue, 100);

  // Relay hops: every forward names a store wait >= 0 (value is the wait).
  int64_t forwards = 0;
  for (const TraceEvent& event : trace) {
    if (event.kind != TraceEventKind::kRelayForward) continue;
    ++forwards;
    EXPECT_GE(event.value, 0.0);
  }
  EXPECT_GT(forwards, 0);
}

TEST(ObsLifecycleTest, ResyncEpisodesOpenAndClose) {
  ExperimentConfig config = FaultTreeConfig();
  config.obs = FullObs();
  const auto result = RunExperiment(config);
  ASSERT_TRUE(result.ok()) << result.status().ToString();

  std::vector<const TraceEvent*> starts;
  std::vector<const TraceEvent*> dones;
  int64_t faults = 0;
  for (const TraceEvent& event : result->obs->trace) {
    if (event.kind == TraceEventKind::kFault) ++faults;
    if (event.kind == TraceEventKind::kResyncStart) starts.push_back(&event);
    if (event.kind == TraceEventKind::kResyncDone) dones.push_back(&event);
  }
  ASSERT_GT(faults, 0);  // crash + restart markers
  ASSERT_FALSE(starts.empty());
  ASSERT_EQ(starts.size(), dones.size());  // every episode completed
  for (size_t i = 0; i < starts.size(); ++i) {
    EXPECT_EQ(starts[i]->cache, dones[i]->cache);
    EXPECT_GE(dones[i]->t, starts[i]->t);
    // resync_done.value records the episode duration.
    EXPECT_EQ(dones[i]->value, dones[i]->t - starts[i]->t);
  }
}

}  // namespace
}  // namespace besync
