// Read-path subsystem tests: the inertness pin (reads disabled and
// unbounded capacity reproduce the seed goldens bitwise), eviction-policy
// unit behavior, miss-triggered pulls end to end (flat and through relay
// trees, lossless and lossy), trace-driven read streams with clone
// isolation, and thread-count-independent JSON for read-enabled grids.

#include <gtest/gtest.h>

#include <sstream>

#include "core/system.h"
#include "data/read_process.h"
#include "exp/read_sweep.h"
#include "exp/runner.h"
#include "read/cache_store.h"

namespace besync {
namespace {

constexpr double kTolerance = 1e-9;

/// The GoldenTest.CooperativeTrigger configuration (tests/golden_test.cc):
/// the seed-era single-cache constants the read path must not disturb.
ExperimentConfig GoldenConfig() {
  ExperimentConfig config;
  config.scheduler = SchedulerKind::kCooperative;
  config.workload.num_sources = 8;
  config.workload.objects_per_source = 25;
  config.workload.seed = 42;
  config.harness.warmup = 50.0;
  config.harness.measure = 300.0;
  config.harness.seed = 7;
  config.cache_bandwidth_avg = 12.0;
  config.source_bandwidth_avg = 4.0;
  return config;
}

constexpr double kGoldenDivergence = 226.69154803746471;
constexpr int64_t kGoldenRefreshes = 3150;
constexpr int64_t kGoldenFeedback = 436;

TEST(ReadPathPinTest, DisabledReadPathReproducesSeedGolden) {
  // The defaults: read_rate = 0, capacity unbounded. Bitwise the seed run.
  const auto result = RunExperiment(GoldenConfig());
  ASSERT_TRUE(result.ok());
  EXPECT_NEAR(result->total_weighted_divergence, kGoldenDivergence, kTolerance);
  EXPECT_EQ(result->scheduler.refreshes_sent, kGoldenRefreshes);
  EXPECT_EQ(result->scheduler.feedback_sent, kGoldenFeedback);
  EXPECT_EQ(result->scheduler.reads_total, 0);
  EXPECT_EQ(result->scheduler.pulls_delivered, 0);
  EXPECT_EQ(result->scheduler.cache_evictions, 0);
}

TEST(ReadPathPinTest, UnpressuredCapacityReproducesSeedGolden) {
  // A finite capacity that never binds (>= every replica) tracks residency
  // but evicts nothing and pulls nothing: the golden constants survive.
  ExperimentConfig config = GoldenConfig();
  config.workload.read.capacity = 100000;
  const auto result = RunExperiment(config);
  ASSERT_TRUE(result.ok());
  EXPECT_NEAR(result->total_weighted_divergence, kGoldenDivergence, kTolerance);
  EXPECT_EQ(result->scheduler.refreshes_sent, kGoldenRefreshes);
  EXPECT_EQ(result->scheduler.feedback_sent, kGoldenFeedback);
  EXPECT_EQ(result->scheduler.cache_evictions, 0);
}

TEST(ReadPathPinTest, ReadsAgainstUnboundedCacheObserveWithoutPerturbing) {
  // With unbounded capacity every read hits: reads sample staleness but
  // never generate traffic or touch any RNG the write path uses — the
  // divergence and protocol counters stay exactly golden.
  ExperimentConfig config = GoldenConfig();
  config.workload.read.read_rate = 5.0;
  const auto result = RunExperiment(config);
  ASSERT_TRUE(result.ok());
  EXPECT_NEAR(result->total_weighted_divergence, kGoldenDivergence, kTolerance);
  EXPECT_EQ(result->scheduler.refreshes_sent, kGoldenRefreshes);
  EXPECT_EQ(result->scheduler.feedback_sent, kGoldenFeedback);
  EXPECT_GT(result->scheduler.reads_total, 0);
  EXPECT_EQ(result->scheduler.read_hits, result->scheduler.reads_total);
  EXPECT_EQ(result->scheduler.read_misses, 0);
  EXPECT_EQ(result->scheduler.pull_requests_sent, 0);
  EXPECT_EQ(result->scheduler.pull_bandwidth_share, 0.0);
  // Staleness percentiles are populated and ordered.
  EXPECT_GE(result->scheduler.read_staleness_p50, 0.0);
  EXPECT_GE(result->scheduler.read_staleness_p95,
            result->scheduler.read_staleness_p50);
  EXPECT_GE(result->scheduler.read_staleness_p99,
            result->scheduler.read_staleness_p95);
}

TEST(CacheStoreTest, LruEvictsLeastRecentlyRead) {
  CacheStore store(2, EvictionPolicy::kLru, {10, 20, 30});
  EXPECT_EQ(store.num_resident(), 2);  // slots 0 and 1 warm-started
  EXPECT_TRUE(store.resident(0));
  EXPECT_TRUE(store.resident(1));
  EXPECT_FALSE(store.resident(2));
  store.TouchRead(0, 1.0);
  // Installing slot 2 must evict slot 1 (never read; last_touch 0).
  EXPECT_EQ(store.Install(2, 2.0, {}), 1);
  EXPECT_TRUE(store.resident(2));
  EXPECT_FALSE(store.resident(1));
  EXPECT_EQ(store.evictions(), 1);
  // Ties (equal touch) break to the lowest slot.
  CacheStore tied(2, EvictionPolicy::kLru, {1, 2, 3});
  EXPECT_EQ(tied.Install(2, 1.0, {}), 0);
}

TEST(CacheStoreTest, LfuEvictsLeastFrequentlyRead) {
  CacheStore store(2, EvictionPolicy::kLfu, {10, 20, 30});
  store.TouchRead(0, 1.0);
  store.TouchRead(1, 2.0);
  store.TouchRead(1, 3.0);
  // Slot 0 has one read, slot 1 has two: LFU evicts slot 0 even though it
  // is not the LRU victim... and LRU would pick slot 0 here too, so pin the
  // difference with reversed recency.
  store.TouchRead(0, 4.0);  // slot 0: 2 reads, most recent
  store.TouchRead(1, 5.0);
  store.TouchRead(1, 6.0);  // slot 1: 4 reads
  EXPECT_EQ(store.Install(2, 7.0, {}), 0);  // fewer reads loses despite recency
}

TEST(CacheStoreTest, DivergenceAwareEvictsStalestReplica) {
  CacheStore store(2, EvictionPolicy::kDivergenceAware, {10, 20, 30});
  store.TouchRead(0, 1.0);
  store.TouchRead(1, 2.0);
  // Replica 10 is badly diverged, replica 20 is fresh: drop the stale one.
  const auto divergence_of = [](ObjectIndex index) {
    return index == 10 ? 9.5 : 0.25;
  };
  EXPECT_EQ(store.Install(2, 3.0, divergence_of), 0);
  EXPECT_FALSE(store.resident(0));
  EXPECT_TRUE(store.resident(1));
}

TEST(CacheStoreTest, UnboundedStoreIsInert) {
  CacheStore store(0, EvictionPolicy::kLru, {5, 6});
  EXPECT_TRUE(store.unbounded());
  EXPECT_TRUE(store.resident(0));
  EXPECT_TRUE(store.resident(1));
  EXPECT_EQ(store.Install(1, 1.0, {}), -1);
  EXPECT_EQ(store.evictions(), 0);
  EXPECT_EQ(store.num_resident(), 2);
  EXPECT_EQ(store.SlotOf(6), 1);
  EXPECT_EQ(store.SlotOf(7), -1);
}

ExperimentConfig PressuredConfig() {
  ExperimentConfig config;
  config.scheduler = SchedulerKind::kCooperative;
  config.workload.num_sources = 4;
  config.workload.objects_per_source = 20;
  config.workload.seed = 19;
  config.workload.read.read_rate = 8.0;
  config.workload.read.capacity = 20;  // 80 objects at one cache: hot-set only
  config.harness.warmup = 50.0;
  config.harness.measure = 400.0;
  config.cache_bandwidth_avg = 10.0;
  return config;
}

TEST(ReadPathTest, FiniteCapacityGeneratesMissesPullsAndEvictions) {
  const auto result = RunExperiment(PressuredConfig());
  ASSERT_TRUE(result.ok());
  const SchedulerStats& s = result->scheduler;
  EXPECT_GT(s.reads_total, 0);
  EXPECT_GT(s.read_misses, 0);
  EXPECT_GT(s.read_hits, 0);
  EXPECT_EQ(s.reads_total, s.read_hits + s.read_misses);
  EXPECT_GT(s.pull_requests_sent, 0);
  // No ordering assertion between requests and deliveries: both counters
  // reset at measurement start, so responses to warmup-era requests can
  // make pulls_delivered exceed pull_requests_sent by the in-flight count.
  EXPECT_GT(s.pulls_delivered, 0);
  EXPECT_GT(s.cache_evictions, 0);
  // Pulls consumed real link bandwidth alongside pushes.
  EXPECT_GT(s.pull_units_delivered, 0);
  EXPECT_GT(s.push_units_delivered, 0);
  EXPECT_GT(s.pull_bandwidth_share, 0.0);
  EXPECT_LT(s.pull_bandwidth_share, 1.0);
  // A resolved miss waited at least one tick for its pull.
  EXPECT_GE(s.read_miss_latency_mean, 1.0);
  EXPECT_GE(s.read_staleness_p99, s.read_staleness_p50);
}

TEST(ReadPathTest, RunsAreDeterministic) {
  const auto a = RunExperiment(PressuredConfig());
  const auto b = RunExperiment(PressuredConfig());
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_EQ(a->total_weighted_divergence, b->total_weighted_divergence);
  EXPECT_EQ(a->scheduler.reads_total, b->scheduler.reads_total);
  EXPECT_EQ(a->scheduler.read_hits, b->scheduler.read_hits);
  EXPECT_EQ(a->scheduler.pull_requests_sent, b->scheduler.pull_requests_sent);
  EXPECT_EQ(a->scheduler.read_staleness_p50, b->scheduler.read_staleness_p50);
  EXPECT_EQ(a->scheduler.read_staleness_p99, b->scheduler.read_staleness_p99);
  EXPECT_EQ(a->scheduler.read_miss_latency_mean, b->scheduler.read_miss_latency_mean);
}

TEST(ReadPathTest, EvictionPolicyChangesBehaviorUnderPressure) {
  ExperimentConfig lru = PressuredConfig();
  lru.workload.read.eviction = EvictionPolicy::kLru;
  ExperimentConfig lfu = PressuredConfig();
  lfu.workload.read.eviction = EvictionPolicy::kLfu;
  const auto a = RunExperiment(lru);
  const auto b = RunExperiment(lfu);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  // Same read stream, different residency trajectories. (Pin inequality on
  // the hit split; if a future change makes these collide exactly, bump
  // the workload seed.)
  EXPECT_EQ(a->scheduler.reads_total, b->scheduler.reads_total);
  EXPECT_NE(a->scheduler.read_hits, b->scheduler.read_hits);
}

TEST(ReadPathTest, TimeVaryingPoliciesRunUnderReadPressure) {
  // kBound is time-varying and not update-sensitive: pushes are driven
  // purely by armed wake-ups, so ServePull's epoch bump must re-arm the
  // wake queue (core/source.cc) or pulled objects drop out of push
  // scheduling whenever feedback is scarce. The protocol itself throttles
  // pushes when feedback starves (thresholds only rise), so this pins the
  // workable regime: pulls and pushes both keep flowing.
  ExperimentConfig config = PressuredConfig();
  config.policy = PolicyKind::kBound;
  config.harness.measure = 600.0;
  const auto result = RunExperiment(config);
  ASSERT_TRUE(result.ok());
  EXPECT_GT(result->scheduler.pulls_delivered, 0);
  EXPECT_GT(result->scheduler.refreshes_sent, 500);
  EXPECT_GT(result->scheduler.read_hits, 0);
}

TEST(ReadPathTest, PullsTraverseRelayTrees) {
  ExperimentConfig config = PressuredConfig();
  config.workload.num_caches = 2;
  config.workload.interest_pattern = InterestPattern::kPartitionedBySource;
  config.workload.relay_tiers = 1;
  config.workload.relay_fanout = 2;
  config.workload.relay_bandwidth_factor = 1.0;
  config.workload.read.capacity = 10;
  const auto result = RunExperiment(config);
  ASSERT_TRUE(result.ok());
  EXPECT_GT(result->scheduler.pulls_delivered, 0);
  EXPECT_GT(result->scheduler.relays_forwarded, 0);
  EXPECT_GT(result->scheduler.pull_bandwidth_share, 0.0);
}

TEST(ReadPathTest, LossyLinksRetryOutstandingPulls) {
  ExperimentConfig config = PressuredConfig();
  config.loss_rate = 0.3;
  config.harness.measure = 600.0;
  const auto result = RunExperiment(config);
  ASSERT_TRUE(result.ok());
  // Lost responses leave pulls outstanding past the retry interval; the
  // re-requests must eventually land content.
  EXPECT_GT(result->scheduler.pulls_delivered, 0);
  EXPECT_GT(result->scheduler.read_hits, 0);
}

TEST(ReadPathTest, BaselinesRejectReadWorkloads) {
  ExperimentConfig config = GoldenConfig();
  config.scheduler = SchedulerKind::kCGM1;
  config.workload.read.read_rate = 1.0;
  EXPECT_FALSE(RunExperiment(config).ok());
  // Finite capacity alone is rejected too: a baseline has no store to
  // enforce it, and its results must not be labeled with a capacity.
  config.workload.read.read_rate = 0.0;
  config.workload.read.capacity = 8;
  EXPECT_FALSE(RunExperiment(config).ok());
}

TEST(ReadPathTest, TraceDrivenReadsReplayExactly) {
  WorkloadConfig wc;
  wc.num_sources = 2;
  wc.objects_per_source = 5;
  wc.seed = 3;
  Workload workload = std::move(MakeWorkload(wc)).ValueOrDie();
  workload.read.capacity = 3;
  std::vector<ReadTracePoint> points{{5.0, 0}, {5.0, 1}, {12.5, 9},
                                     {40.0, 9}, {41.0, 4}};
  workload.read_streams.push_back(std::make_unique<TraceReadProcess>(points));
  ASSERT_TRUE(workload.reads_enabled());

  ExperimentConfig config;
  config.scheduler = SchedulerKind::kCooperative;
  config.harness.warmup = 0.0;  // count every trace read
  config.harness.measure = 100.0;
  config.cache_bandwidth_avg = 6.0;
  const auto result = RunExperimentOnWorkload(config, &workload);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->scheduler.reads_total, 5);
  // Slots 0..2 warm-start resident; slot 9 (and later 4) must fault in.
  EXPECT_GT(result->scheduler.read_misses, 0);
}

TEST(ReadPathTest, CloneIsolatesTraceCursors) {
  WorkloadConfig wc;
  wc.num_sources = 2;
  wc.objects_per_source = 5;
  wc.seed = 3;
  Workload workload = std::move(MakeWorkload(wc)).ValueOrDie();
  workload.read.capacity = 3;
  std::vector<ReadTracePoint> points{{5.0, 0}, {12.5, 9}, {30.0, 8}, {55.0, 9}};
  workload.read_streams.push_back(std::make_unique<TraceReadProcess>(points));

  Workload clone = CloneWorkload(workload);
  ASSERT_EQ(clone.read_streams.size(), 1u);
  ASSERT_TRUE(clone.reads_enabled());
  EXPECT_EQ(clone.read.capacity, 3);

  ExperimentConfig config;
  config.scheduler = SchedulerKind::kCooperative;
  config.harness.warmup = 0.0;
  config.harness.measure = 100.0;
  config.cache_bandwidth_avg = 6.0;
  // Run the original (advancing its cursors), then the untouched clone:
  // identical results prove deep-copy isolation both ways.
  const auto original = RunExperimentOnWorkload(config, &workload);
  const auto cloned = RunExperimentOnWorkload(config, &clone);
  ASSERT_TRUE(original.ok());
  ASSERT_TRUE(cloned.ok());
  EXPECT_EQ(original->total_weighted_divergence, cloned->total_weighted_divergence);
  EXPECT_EQ(original->scheduler.reads_total, cloned->scheduler.reads_total);
  EXPECT_EQ(original->scheduler.read_misses, cloned->scheduler.read_misses);
}

TEST(ReadPathTest, ReadSweepJsonIsThreadCountInvariant) {
  ReadSweepConfig sweep;
  sweep.base.workload.num_sources = 4;
  sweep.base.workload.objects_per_source = 10;
  sweep.base.workload.seed = 9;
  sweep.base.harness.warmup = 20.0;
  sweep.base.harness.measure = 150.0;
  sweep.base.cache_bandwidth_avg = 8.0;
  sweep.read_rates = {4.0, 16.0};
  sweep.capacities = {0, 10};
  sweep.evictions = {EvictionPolicy::kLru, EvictionPolicy::kDivergenceAware};

  sweep.threads = 1;
  std::vector<JobResult> sequential;
  ASSERT_TRUE(RunReadSweep(sweep, &sequential).ok());
  sweep.threads = 8;
  std::vector<JobResult> parallel;
  ASSERT_TRUE(RunReadSweep(sweep, &parallel).ok());

  std::ostringstream json_sequential, json_parallel;
  WriteResultsJson(json_sequential, sequential);
  WriteResultsJson(json_parallel, parallel);
  EXPECT_EQ(json_sequential.str(), json_parallel.str());
  // The read fields made it into the serialization.
  EXPECT_NE(json_sequential.str().find("\"hit_rate\""), std::string::npos);
  EXPECT_NE(json_sequential.str().find("\"pull_bandwidth_share\""),
            std::string::npos);
  // Unbounded capacities deduplicate the eviction axis: 2 rates x (1 + 2).
  EXPECT_EQ(sequential.size(), 6u);
}

}  // namespace
}  // namespace besync
