#include <atomic>
#include <cmath>
#include <set>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "util/flags.h"
#include "util/shard_pool.h"
#include "util/fluctuation.h"
#include "util/random.h"
#include "util/result.h"
#include "util/stats.h"
#include "util/status.h"
#include "util/table_printer.h"

namespace besync {
namespace {

// ---------------------------------------------------------------- Status

TEST(StatusTest, DefaultIsOk) {
  Status status;
  EXPECT_TRUE(status.ok());
  EXPECT_EQ(status.code(), StatusCode::kOk);
  EXPECT_EQ(status.ToString(), "OK");
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  Status status = Status::InvalidArgument("bad value: ", 42);
  EXPECT_FALSE(status.ok());
  EXPECT_TRUE(status.IsInvalidArgument());
  EXPECT_EQ(status.message(), "bad value: 42");
  EXPECT_EQ(status.ToString(), "Invalid argument: bad value: 42");
}

TEST(StatusTest, CopyPreservesContent) {
  Status status = Status::NotFound("object ", 7);
  Status copy = status;  // NOLINT(performance-unnecessary-copy-initialization)
  EXPECT_TRUE(copy.IsNotFound());
  EXPECT_EQ(copy.message(), status.message());
}

TEST(StatusTest, EveryCodeHasAName) {
  for (StatusCode code :
       {StatusCode::kOk, StatusCode::kInvalidArgument, StatusCode::kOutOfRange,
        StatusCode::kNotFound, StatusCode::kAlreadyExists,
        StatusCode::kFailedPrecondition, StatusCode::kUnimplemented,
        StatusCode::kInternal, StatusCode::kIOError}) {
    EXPECT_STRNE(StatusCodeToString(code), "Unknown");
  }
}

Status FailsIfNegative(int value) {
  if (value < 0) return Status::OutOfRange("negative: ", value);
  return Status::OK();
}

Status Caller(int value) {
  BESYNC_RETURN_IF_ERROR(FailsIfNegative(value));
  return Status::Internal("should not be reached on failure");
}

TEST(StatusTest, ReturnIfErrorPropagates) {
  EXPECT_TRUE(Caller(-1).IsOutOfRange());
  EXPECT_TRUE(Caller(1).IsInternal());  // fell through to the sentinel
}

// ---------------------------------------------------------------- Result

Result<int> ParsePositive(int value) {
  if (value <= 0) return Status::InvalidArgument("not positive");
  return value * 2;
}

TEST(ResultTest, HoldsValue) {
  Result<int> result = ParsePositive(21);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(*result, 42);
}

TEST(ResultTest, HoldsError) {
  Result<int> result = ParsePositive(-3);
  ASSERT_FALSE(result.ok());
  EXPECT_TRUE(result.status().IsInvalidArgument());
  EXPECT_EQ(result.ValueOr(-1), -1);
}

Result<int> ChainedParse(int value) {
  BESYNC_ASSIGN_OR_RETURN(int doubled, ParsePositive(value));
  return doubled + 1;
}

TEST(ResultTest, AssignOrReturnPropagates) {
  EXPECT_EQ(*ChainedParse(5), 11);
  EXPECT_FALSE(ChainedParse(0).ok());
}

// ------------------------------------------------------------------- Rng

TEST(RngTest, DeterministicForSameSeed) {
  Rng a(123);
  Rng b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.NextUint64(), b.NextUint64());
}

TEST(RngTest, DifferentSeedsDiverge) {
  Rng a(1);
  Rng b(2);
  int differing = 0;
  for (int i = 0; i < 64; ++i) differing += a.NextUint64() != b.NextUint64();
  EXPECT_GT(differing, 60);
}

TEST(RngTest, NextDoubleInUnitInterval) {
  Rng rng(9);
  for (int i = 0; i < 10000; ++i) {
    const double x = rng.NextDouble();
    EXPECT_GE(x, 0.0);
    EXPECT_LT(x, 1.0);
  }
}

TEST(RngTest, UniformIntCoversRangeWithoutBias) {
  Rng rng(17);
  std::vector<int> counts(6, 0);
  const int kDraws = 60000;
  for (int i = 0; i < kDraws; ++i) ++counts[rng.UniformInt(0, 5)];
  for (int c : counts) {
    EXPECT_NEAR(c, kDraws / 6.0, 5.0 * std::sqrt(kDraws / 6.0));
  }
}

TEST(RngTest, ExponentialHasCorrectMean) {
  Rng rng(31);
  const double rate = 2.5;
  double sum = 0.0;
  const int kDraws = 100000;
  for (int i = 0; i < kDraws; ++i) sum += rng.Exponential(rate);
  EXPECT_NEAR(sum / kDraws, 1.0 / rate, 0.01);
}

class PoissonMeanTest : public ::testing::TestWithParam<double> {};

TEST_P(PoissonMeanTest, MatchesMeanAndVariance) {
  const double mean = GetParam();
  Rng rng(11 + static_cast<uint64_t>(mean * 1000));
  RunningStat stat;
  const int kDraws = 50000;
  for (int i = 0; i < kDraws; ++i) {
    stat.Add(static_cast<double>(rng.Poisson(mean)));
  }
  // Poisson: mean == variance.
  EXPECT_NEAR(stat.mean(), mean, 4.0 * std::sqrt(mean / kDraws) + 0.01);
  EXPECT_NEAR(stat.variance(), mean, 0.12 * mean + 0.05);
}

INSTANTIATE_TEST_SUITE_P(SmallAndLargeMeans, PoissonMeanTest,
                         ::testing::Values(0.1, 1.0, 5.0, 29.0, 40.0, 200.0));

TEST(RngTest, NormalMoments) {
  Rng rng(77);
  RunningStat stat;
  for (int i = 0; i < 100000; ++i) stat.Add(rng.Normal(3.0, 2.0));
  EXPECT_NEAR(stat.mean(), 3.0, 0.05);
  EXPECT_NEAR(stat.stddev(), 2.0, 0.05);
}

TEST(RngTest, ZipfFavorsSmallRanks) {
  Rng rng(5);
  std::vector<int> counts(11, 0);
  for (int i = 0; i < 20000; ++i) {
    const int64_t k = rng.Zipf(10, 1.0);
    ASSERT_GE(k, 1);
    ASSERT_LE(k, 10);
    ++counts[k];
  }
  EXPECT_GT(counts[1], counts[2]);
  EXPECT_GT(counts[2], counts[5]);
  EXPECT_GT(counts[5], 0);
  // Ratio c1/c2 should be close to 2 for s=1.
  EXPECT_NEAR(static_cast<double>(counts[1]) / counts[2], 2.0, 0.35);
}

TEST(RngTest, BernoulliEdgeCases) {
  Rng rng(3);
  EXPECT_FALSE(rng.Bernoulli(0.0));
  EXPECT_TRUE(rng.Bernoulli(1.0));
  int hits = 0;
  for (int i = 0; i < 10000; ++i) hits += rng.Bernoulli(0.3);
  EXPECT_NEAR(hits / 10000.0, 0.3, 0.02);
}

TEST(RngTest, ForkProducesIndependentStream) {
  Rng parent(42);
  Rng child = parent.Fork();
  // The child stream should not equal the parent's continued stream.
  int differing = 0;
  for (int i = 0; i < 64; ++i) differing += parent.NextUint64() != child.NextUint64();
  EXPECT_GT(differing, 60);
}

TEST(RngTest, SplitIsDeterministicAndDoesNotAdvanceParent) {
  // Split is the shard-stream derivation: a pure function of (parent
  // state, key) that leaves the parent's stream untouched, so shards can
  // draw their streams without perturbing the main-thread sequence.
  Rng parent(42);
  Rng probe(42);
  Rng child_a = parent.Split(3);
  Rng child_a2 = parent.Split(3);
  Rng child_b = parent.Split(4);
  // Same key twice: identical child stream.
  for (int i = 0; i < 16; ++i) {
    EXPECT_EQ(child_a.NextUint64(), child_a2.NextUint64());
  }
  // Different keys: different streams.
  int differing = 0;
  Rng child_b_probe = probe.Split(3);
  for (int i = 0; i < 64; ++i) {
    differing += child_b.NextUint64() != child_b_probe.NextUint64();
  }
  EXPECT_GT(differing, 60);
  // The parent's own stream is exactly where an un-split copy's is.
  for (int i = 0; i < 16; ++i) {
    EXPECT_EQ(parent.NextUint64(), probe.NextUint64());
  }
}

TEST(RngTest, SplitDependsOnParentState) {
  // Two parents with different states must derive different children for
  // the same key (the derivation folds the full state, not just the key).
  Rng a(1);
  Rng b(2);
  Rng child_a = a.Split(7);
  Rng child_b = b.Split(7);
  int differing = 0;
  for (int i = 0; i < 64; ++i) {
    differing += child_a.NextUint64() != child_b.NextUint64();
  }
  EXPECT_GT(differing, 60);
}

TEST(RngTest, ShufflePermutes) {
  Rng rng(8);
  std::vector<int> values{1, 2, 3, 4, 5, 6, 7, 8};
  std::vector<int> original = values;
  rng.Shuffle(&values);
  std::multiset<int> a(values.begin(), values.end());
  std::multiset<int> b(original.begin(), original.end());
  EXPECT_EQ(a, b);
}

// ----------------------------------------------------------------- Stats

TEST(RunningStatTest, BasicMoments) {
  RunningStat stat;
  for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) stat.Add(x);
  EXPECT_EQ(stat.count(), 8);
  EXPECT_DOUBLE_EQ(stat.mean(), 5.0);
  EXPECT_NEAR(stat.variance(), 32.0 / 7.0, 1e-12);
  EXPECT_DOUBLE_EQ(stat.min(), 2.0);
  EXPECT_DOUBLE_EQ(stat.max(), 9.0);
}

TEST(RunningStatTest, EmptyIsZero) {
  RunningStat stat;
  EXPECT_EQ(stat.count(), 0);
  EXPECT_EQ(stat.mean(), 0.0);
  EXPECT_EQ(stat.variance(), 0.0);
}

TEST(TimeWeightedMeanTest, WeightsByDuration) {
  TimeWeightedMean mean;
  mean.Add(1.0, 3.0);  // value 1 for 3 s
  mean.Add(5.0, 1.0);  // value 5 for 1 s
  EXPECT_DOUBLE_EQ(mean.mean(), 2.0);
  EXPECT_DOUBLE_EQ(mean.total_time(), 4.0);
  EXPECT_DOUBLE_EQ(mean.integral(), 8.0);
}

TEST(TimeWeightedMeanTest, IgnoresNonPositiveDurations) {
  TimeWeightedMean mean;
  mean.Add(100.0, 0.0);
  mean.Add(100.0, -1.0);
  EXPECT_DOUBLE_EQ(mean.mean(), 0.0);
}

TEST(UtilizationStatTest, Ratio) {
  UtilizationStat stat;
  stat.Add(3, 10);
  stat.Add(7, 10);
  EXPECT_DOUBLE_EQ(stat.utilization(), 0.5);
}

// ----------------------------------------------------------- Fluctuation

TEST(FluctuationTest, ConstantIsConstant) {
  ConstantFluctuation fluctuation(4.2);
  EXPECT_DOUBLE_EQ(fluctuation.ValueAt(0.0), 4.2);
  EXPECT_DOUBLE_EQ(fluctuation.ValueAt(1e6), 4.2);
  EXPECT_DOUBLE_EQ(fluctuation.average(), 4.2);
}

TEST(FluctuationTest, SineStaysPositiveAndAveragesToBase) {
  SineFluctuation fluctuation(10.0, 0.5, 100.0, 0.3);
  double sum = 0.0;
  const int kSteps = 10000;
  for (int i = 0; i < kSteps; ++i) {
    const double v = fluctuation.ValueAt(i * 0.1);
    EXPECT_GT(v, 0.0);
    EXPECT_LE(v, 15.0 + 1e-9);
    sum += v;
  }
  // 10000 * 0.1 = 1000 s = 10 whole periods: the average is exact.
  EXPECT_NEAR(sum / kSteps, 10.0, 0.05);
}

TEST(FluctuationTest, BandwidthFactoryRespectsChangeRate) {
  Rng rng(1);
  auto fluctuation = MakeBandwidthFluctuation(100.0, 0.25, &rng);
  // Max relative derivative = amplitude * 2*pi / period must equal mB.
  auto* sine = dynamic_cast<SineFluctuation*>(fluctuation.get());
  ASSERT_NE(sine, nullptr);
  const double max_rate =
      sine->relative_amplitude() * 2.0 * M_PI / sine->period();
  EXPECT_NEAR(max_rate, 0.25, 1e-9);
}

TEST(FluctuationTest, BandwidthFactoryZeroRateIsConstant) {
  Rng rng(1);
  auto fluctuation = MakeBandwidthFluctuation(100.0, 0.0, &rng);
  EXPECT_NE(dynamic_cast<ConstantFluctuation*>(fluctuation.get()), nullptr);
}

TEST(FluctuationTest, WeightFactoryDrawsWithinBounds) {
  Rng rng(2);
  for (int i = 0; i < 20; ++i) {
    auto weight = MakeWeightFluctuation(2.0, 0.8, 100.0, 1000.0, &rng);
    EXPECT_DOUBLE_EQ(weight->average(), 2.0);
    for (double t : {0.0, 50.0, 123.0, 999.0}) {
      EXPECT_GT(weight->ValueAt(t), 0.0);
      EXPECT_LT(weight->ValueAt(t), 2.0 * 1.81);
    }
  }
}

// ----------------------------------------------------------------- Flags

TEST(FlagsTest, ParsesAllForms) {
  const char* argv[] = {"prog", "--alpha=1.5", "--count", "7", "--verbose"};
  Flags flags;
  ASSERT_TRUE(Flags::Parse(5, const_cast<char**>(argv),
                           {"alpha", "count", "verbose"}, &flags)
                  .ok());
  EXPECT_DOUBLE_EQ(flags.GetDouble("alpha", 0.0), 1.5);
  EXPECT_EQ(flags.GetInt("count", 0), 7);
  EXPECT_TRUE(flags.GetBool("verbose", false));
  EXPECT_FALSE(flags.Has("missing"));
  EXPECT_EQ(flags.GetString("missing", "fallback"), "fallback");
}

TEST(FlagsTest, RejectsUnknownFlag) {
  const char* argv[] = {"prog", "--typo=1"};
  Flags flags;
  EXPECT_TRUE(Flags::Parse(2, const_cast<char**>(argv), {"alpha"}, &flags)
                  .IsInvalidArgument());
}

TEST(FlagsTest, RejectsPositionalArgument) {
  const char* argv[] = {"prog", "oops"};
  Flags flags;
  EXPECT_FALSE(Flags::Parse(2, const_cast<char**>(argv), {"alpha"}, &flags).ok());
}

// ---------------------------------------------------------- TablePrinter

TEST(TablePrinterTest, AlignsColumns) {
  TablePrinter table({"name", "value"});
  table.AddRow({TablePrinter::Cell("x"), TablePrinter::Cell(1.5)});
  table.AddRow({TablePrinter::Cell("longer"), TablePrinter::Cell(int64_t{42})});
  std::ostringstream os;
  table.Print(os);
  const std::string text = os.str();
  EXPECT_NE(text.find("name"), std::string::npos);
  EXPECT_NE(text.find("longer"), std::string::npos);
  EXPECT_NE(text.find("42"), std::string::npos);
}

TEST(TablePrinterTest, CellFormatsDoubles) {
  EXPECT_EQ(TablePrinter::Cell(1.5), "1.5");
  EXPECT_EQ(TablePrinter::Cell(2.0), "2.0");
  EXPECT_EQ(TablePrinter::Cell(0.12345), "0.1235");  // 4 decimals, rounded
  EXPECT_EQ(TablePrinter::Cell(std::nan("")), "nan");
}

TEST(TablePrinterTest, CsvEscapesSpecials) {
  TablePrinter table({"a", "b"});
  table.AddRow({"plain", "with,comma"});
  table.AddRow({"quote\"inside", "line"});
  std::ostringstream os;
  table.WriteCsv(os);
  const std::string text = os.str();
  EXPECT_NE(text.find("\"with,comma\""), std::string::npos);
  EXPECT_NE(text.find("\"quote\"\"inside\""), std::string::npos);
}

// ------------------------------------------------------------- ShardPool

TEST(ShardPoolTest, ShardRangeCoversEveryItemExactlyOnce) {
  for (int64_t count : {0, 1, 3, 7, 8, 100}) {
    for (int shards : {1, 2, 3, 4, 8}) {
      int64_t next = 0;
      for (int s = 0; s < shards; ++s) {
        const auto range = ShardPool::ShardRange(count, s, shards);
        EXPECT_EQ(range.first, next) << count << "/" << shards << " shard " << s;
        EXPECT_LE(range.first, range.second);
        // Balanced: sizes differ by at most one.
        EXPECT_LE(range.second - range.first, count / shards + 1);
        next = range.second;
      }
      EXPECT_EQ(next, count);
    }
  }
}

TEST(ShardPoolTest, ShardRangeTrailingShardsEmptyWhenCountBelowShards) {
  // The footgun documented on ShardRange: a team wider than the item count
  // leaves the trailing lanes with empty ranges. The ranges must still
  // tile [0, count) — work is never lost, only lanes idle.
  const auto r0 = ShardPool::ShardRange(2, 0, 4);
  const auto r1 = ShardPool::ShardRange(2, 1, 4);
  const auto r2 = ShardPool::ShardRange(2, 2, 4);
  const auto r3 = ShardPool::ShardRange(2, 3, 4);
  EXPECT_EQ(r0, (std::pair<int64_t, int64_t>{0, 1}));
  EXPECT_EQ(r1, (std::pair<int64_t, int64_t>{1, 2}));
  EXPECT_EQ(r2.first, r2.second);
  EXPECT_EQ(r3.first, r3.second);
}

TEST(ShardPoolTest, ShardOfInvertsShardRange) {
  for (int64_t count : {1, 2, 5, 8, 17, 100}) {
    for (int shards : {1, 2, 3, 4, 7, 16}) {
      for (int s = 0; s < shards; ++s) {
        const auto range = ShardPool::ShardRange(count, s, shards);
        for (int64_t i = range.first; i < range.second; ++i) {
          EXPECT_EQ(ShardPool::ShardOf(count, i, shards), s)
              << "count=" << count << " shards=" << shards << " i=" << i;
        }
      }
    }
  }
}

TEST(ShardPoolTest, OversubscribedPoolStillProcessesEveryItemOnce) {
  // More lanes than items: trailing shards see empty ranges and must be
  // harmless — every item still processed exactly once across the team.
  constexpr int kItems = 3;
  ShardPool pool(8);
  std::vector<std::atomic<int>> hits(kItems);
  for (auto& h : hits) h.store(0);
  pool.Run([&hits](int shard) {
    const auto range = ShardPool::ShardRange(kItems, shard, 8);
    for (int64_t i = range.first; i < range.second; ++i) {
      hits[static_cast<size_t>(i)].fetch_add(1);
    }
  });
  for (int i = 0; i < kItems; ++i) EXPECT_EQ(hits[i].load(), 1) << "item " << i;
}

TEST(ShardPoolTest, MainPreludeRunsBeforeShardZero) {
  ShardPool pool(4);
  std::atomic<bool> prelude_done{false};
  bool shard0_saw_prelude = false;
  pool.Run(
      [&](int shard) {
        if (shard == 0) shard0_saw_prelude = prelude_done.load();
      },
      [&prelude_done] { prelude_done.store(true); });
  EXPECT_TRUE(shard0_saw_prelude);
  EXPECT_TRUE(prelude_done.load());
}

}  // namespace
}  // namespace besync
