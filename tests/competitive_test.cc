#include <memory>

#include <gtest/gtest.h>

#include "core/competitive.h"
#include "core/harness.h"
#include "core/system.h"
#include "divergence/metric.h"

namespace besync {
namespace {

WorkloadConfig BaseWorkload(uint64_t seed = 13) {
  WorkloadConfig config;
  config.num_sources = 5;
  config.objects_per_source = 20;
  config.rate_lo = 0.05;
  config.rate_hi = 0.5;
  // Cache scheme: half the objects are heavy.
  config.weight_scheme = WeightScheme::kHalfHeavy;
  config.heavy_weight = 10.0;
  config.seed = seed;
  return config;
}

struct CompetitiveOutcome {
  double cache_objective;   // weighted divergence under cache weights
  double source_objective;  // weighted divergence under source weights
};

CompetitiveOutcome RunCompetitive(double psi, ShareOption option,
                                  double bandwidth = 15.0) {
  Workload workload = std::move(MakeWorkload(BaseWorkload())).ValueOrDie();
  AssignConflictingSourceWeights(&workload, 10.0, /*seed=*/77);
  auto metric = MakeMetric(MetricKind::kValueDeviation);

  HarnessConfig harness_config;
  harness_config.warmup = 50.0;
  harness_config.measure = 400.0;

  Harness harness(&workload, metric.get(), harness_config);
  GroundTruth source_view(&workload, metric.get(), /*use_source_weights=*/true);
  harness.AddGroundTruth(&source_view);

  CompetitiveConfig config;
  config.base.cache_bandwidth_avg = bandwidth;
  config.psi = psi;
  config.option = option;
  CompetitiveScheduler scheduler(config);
  EXPECT_TRUE(harness.Run(&scheduler).ok());

  CompetitiveOutcome outcome;
  outcome.cache_objective = harness.ground_truth().PerObjectWeightedAverage();
  outcome.source_objective = source_view.PerObjectWeightedAverage();
  return outcome;
}

TEST(ShareOptionTest, Names) {
  EXPECT_EQ(ShareOptionToString(ShareOption::kEqualShare), "equal-share");
  EXPECT_EQ(ShareOptionToString(ShareOption::kProportionalShare),
            "proportional-share");
  EXPECT_EQ(ShareOptionToString(ShareOption::kPiggyback), "piggyback");
}

TEST(AssignConflictingSourceWeightsTest, HalfHeavyPerSource) {
  Workload workload = std::move(MakeWorkload(BaseWorkload())).ValueOrDie();
  AssignConflictingSourceWeights(&workload, 10.0, 3);
  for (int j = 0; j < workload.num_sources; ++j) {
    int heavy = 0;
    int total = 0;
    for (const auto& spec : workload.objects) {
      if (spec.source_index != j) continue;
      ASSERT_NE(spec.source_weight, nullptr);
      const double w = spec.source_weight->average();
      EXPECT_TRUE(w == 1.0 || w == 10.0);
      heavy += w == 10.0;
      ++total;
    }
    EXPECT_EQ(heavy, total / 2);
  }
}

TEST(CompetitiveSchedulerTest, PsiZeroMatchesPlainCooperativeObjective) {
  const CompetitiveOutcome with_zero_psi =
      RunCompetitive(0.0, ShareOption::kEqualShare);
  // Sanity: runs and produces finite divergence under both views.
  EXPECT_GT(with_zero_psi.cache_objective, 0.0);
  EXPECT_GT(with_zero_psi.source_objective, 0.0);
}

class CompetitiveOptionTest : public ::testing::TestWithParam<ShareOption> {};

TEST_P(CompetitiveOptionTest, PsiImprovesSourceObjective) {
  const CompetitiveOutcome none = RunCompetitive(0.0, GetParam());
  const CompetitiveOutcome half = RunCompetitive(0.5, GetParam());
  // Spending Ψ = 0.5 of the bandwidth on source priorities must improve the
  // sources' objective...
  EXPECT_LT(half.source_objective, none.source_objective);
  // ...at some cost to the cache's own objective (or at least not a large
  // improvement — allow simulation noise).
  EXPECT_GT(half.cache_objective, none.cache_objective * 0.9);
}

INSTANTIATE_TEST_SUITE_P(AllOptions, CompetitiveOptionTest,
                         ::testing::Values(ShareOption::kEqualShare,
                                           ShareOption::kProportionalShare,
                                           ShareOption::kPiggyback));

TEST(CompetitiveSchedulerTest, NamesIncludeOption) {
  CompetitiveConfig config;
  config.option = ShareOption::kPiggyback;
  CompetitiveScheduler scheduler(config);
  EXPECT_EQ(scheduler.name(), "competitive-piggyback");
}

}  // namespace
}  // namespace besync
