#include <gtest/gtest.h>

#include "core/threshold.h"

namespace besync {
namespace {

ThresholdConfig DefaultConfig() {
  ThresholdConfig config;
  config.initial = 1.0;
  config.increase = 1.1;
  config.decrease = 10.0;
  return config;
}

TEST(ThresholdControllerTest, StartsAtInitial) {
  ThresholdController controller(DefaultConfig(), 10.0, 0.0);
  EXPECT_DOUBLE_EQ(controller.threshold(), 1.0);
}

TEST(ThresholdControllerTest, RefreshMultipliesByAlpha) {
  ThresholdController controller(DefaultConfig(), 10.0, 0.0);
  controller.OnRefreshSent(1.0);  // within the expected feedback period
  EXPECT_DOUBLE_EQ(controller.threshold(), 1.1);
  controller.OnRefreshSent(2.0);
  EXPECT_DOUBLE_EQ(controller.threshold(), 1.1 * 1.1);
}

TEST(ThresholdControllerTest, FeedbackDividesByOmega) {
  ThresholdController controller(DefaultConfig(), 10.0, 0.0);
  controller.OnRefreshSent(1.0);
  controller.OnFeedback(2.0, /*at_full_capacity=*/false);
  EXPECT_DOUBLE_EQ(controller.threshold(), 1.1 / 10.0);
}

TEST(ThresholdControllerTest, FullCapacitySuppressesDecrease) {
  // Footnote 3: a source already saturating its source-side bandwidth must
  // not lower its threshold (it would only build up a local backlog).
  ThresholdController controller(DefaultConfig(), 10.0, 0.0);
  controller.OnRefreshSent(1.0);
  const double before = controller.threshold();
  controller.OnFeedback(2.0, /*at_full_capacity=*/true);
  EXPECT_DOUBLE_EQ(controller.threshold(), before);
  // But the feedback clock still resets (delta accounting).
  EXPECT_DOUBLE_EQ(controller.last_feedback_time(), 2.0);
}

TEST(ThresholdControllerTest, DeltaIsOneWithinExpectedPeriod) {
  ThresholdController controller(DefaultConfig(), 10.0, 0.0);
  EXPECT_DOUBLE_EQ(controller.DeltaFactor(5.0), 1.0);
  EXPECT_DOUBLE_EQ(controller.DeltaFactor(10.0), 1.0);
}

TEST(ThresholdControllerTest, DeltaAcceleratesWhenFeedbackOverdue) {
  // delta = t_feedback / P_feedback once feedback is overdue (Section 5):
  // likely flooding, so back off faster.
  ThresholdController controller(DefaultConfig(), 10.0, 0.0);
  EXPECT_DOUBLE_EQ(controller.DeltaFactor(30.0), 3.0);
  controller.OnRefreshSent(30.0);
  EXPECT_DOUBLE_EQ(controller.threshold(), 1.1 * 3.0);
}

TEST(ThresholdControllerTest, FeedbackResetsDeltaClock) {
  ThresholdController controller(DefaultConfig(), 10.0, 0.0);
  controller.OnFeedback(100.0, false);
  EXPECT_DOUBLE_EQ(controller.DeltaFactor(105.0), 1.0);
  EXPECT_DOUBLE_EQ(controller.DeltaFactor(130.0), 3.0);
}

TEST(ThresholdControllerTest, ClampsAtBounds) {
  ThresholdConfig config = DefaultConfig();
  config.min_threshold = 0.01;
  config.max_threshold = 100.0;
  ThresholdController controller(config, 10.0, 0.0);
  for (int i = 0; i < 100; ++i) controller.OnFeedback(i, false);
  EXPECT_DOUBLE_EQ(controller.threshold(), 0.01);
  for (int i = 0; i < 1000; ++i) controller.OnRefreshSent(100.0 + i);
  EXPECT_DOUBLE_EQ(controller.threshold(), 100.0);
}

TEST(ThresholdControllerTest, DeltaFactorClampsAtMaxThresholdBoundary) {
  // The flooding accelerator delta can be arbitrarily large when feedback is
  // long overdue; the resulting multiplicative increase must saturate
  // exactly at max_threshold instead of running away.
  ThresholdConfig config = DefaultConfig();
  config.max_threshold = 50.0;
  ThresholdController controller(config, /*expected_feedback_period=*/1.0, 0.0);
  // Feedback overdue by 1e6 periods: delta alone would put the threshold at
  // 1.1e6, far beyond the clamp.
  EXPECT_DOUBLE_EQ(controller.DeltaFactor(1e6), 1e6);
  controller.OnRefreshSent(1e6);
  EXPECT_DOUBLE_EQ(controller.threshold(), 50.0);
  // Pinned at the boundary: further overdue increases stay put...
  controller.OnRefreshSent(2e6);
  EXPECT_DOUBLE_EQ(controller.threshold(), 50.0);
  // ...and DeltaFactor itself keeps reporting the raw ratio (it is the
  // threshold that clamps, not the accelerator).
  EXPECT_GT(controller.DeltaFactor(3e6), 1.0);
  // One feedback steps down from the boundary by exactly omega.
  controller.OnFeedback(3e6, /*at_full_capacity=*/false);
  EXPECT_DOUBLE_EQ(controller.threshold(), 5.0);
}

TEST(ThresholdControllerTest, SetThresholdOverrides) {
  ThresholdController controller(DefaultConfig(), 10.0, 0.0);
  controller.SetThreshold(42.0);
  EXPECT_DOUBLE_EQ(controller.threshold(), 42.0);
}

TEST(ThresholdControllerTest, EquilibriumRatioMatchesPaperParameters) {
  // With alpha = 1.1 and omega = 10, one feedback decrease offsets about
  // ln(10)/ln(1.1) ~ 24 refresh increases — the order-of-magnitude gap the
  // paper chose "due to the fact that increases ... are much more common
  // than decreases" (Section 6.1).
  ThresholdController controller(DefaultConfig(), 1000.0, 0.0);
  const double start = controller.threshold();
  for (int i = 0; i < 24; ++i) controller.OnRefreshSent(0.0);
  controller.OnFeedback(0.0, false);
  EXPECT_NEAR(controller.threshold() / start, 1.0, 0.05);
}

}  // namespace
}  // namespace besync
