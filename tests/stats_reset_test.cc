// Measurement-start reset audit: every count-like scheduler statistic must
// cover the measurement window only. Two angles:
//
//  1. A second OnMeasurementStart() immediately after a finished run must
//     zero every counter, for every scheduler family (if any counter
//     escapes the reset path it shows up here).
//  2. Warm-up independence: for deterministic schedulers, stats from runs
//     that differ only in warm-up length must be identical — counters that
//     leak warm-up traffic scale with the warm-up instead.

#include <memory>

#include <gtest/gtest.h>

#include "core/system.h"
#include "exp/experiment.h"
#include "obs/metrics.h"

namespace besync {
namespace {

ExperimentConfig BaseConfig(SchedulerKind kind) {
  ExperimentConfig config;
  config.scheduler = kind;
  config.workload.num_sources = 4;
  config.workload.objects_per_source = 10;
  config.workload.seed = 19;
  config.harness.warmup = 30.0;
  config.harness.measure = 200.0;
  config.cache_bandwidth_avg = 8.0;
  config.source_bandwidth_avg = 4.0;
  return config;
}

class StatsResetTest : public ::testing::TestWithParam<SchedulerKind> {};

TEST_P(StatsResetTest, SecondMeasurementStartZeroesAllCounters) {
  const ExperimentConfig config = BaseConfig(GetParam());
  const Workload workload = std::move(MakeWorkload(config.workload)).ValueOrDie();
  const auto metric = MakeMetric(config.metric);
  const auto scheduler = MakeScheduler(config);
  Harness harness(&workload, metric.get(), config.harness);
  ASSERT_TRUE(harness.Run(scheduler.get()).ok());

  // The run produced traffic...
  const SchedulerStats after_run = scheduler->stats();
  EXPECT_GT(after_run.refreshes_sent + after_run.refreshes_delivered +
                after_run.polls_sent,
            0);

  // ...and a fresh measurement start wipes every counter and queue stat,
  // including the relay / read-path / protocol counters added since (zero
  // here because the config does not exercise them, but a reset that
  // skipped one would leak the previous run's value on a reused scheduler).
  scheduler->OnMeasurementStart(harness.now());
  const SchedulerStats reset = scheduler->stats();
  EXPECT_EQ(reset.refreshes_sent, 0);
  EXPECT_EQ(reset.refreshes_delivered, 0);
  EXPECT_EQ(reset.feedback_sent, 0);
  EXPECT_EQ(reset.polls_sent, 0);
  EXPECT_EQ(reset.cache_utilization, 0.0);
  EXPECT_EQ(reset.avg_cache_queue, 0.0);
  EXPECT_EQ(reset.relays_forwarded, 0);
  EXPECT_EQ(reset.relay_control_moved, 0);
  EXPECT_EQ(reset.reads_total, 0);
  EXPECT_EQ(reset.read_hits, 0);
  EXPECT_EQ(reset.read_misses, 0);
  EXPECT_EQ(reset.pull_requests_sent, 0);
  EXPECT_EQ(reset.pulls_delivered, 0);
  EXPECT_EQ(reset.cache_evictions, 0);
  EXPECT_EQ(reset.pull_units_delivered, 0);
  EXPECT_EQ(reset.push_units_delivered, 0);
  EXPECT_EQ(reset.invalidations_sent, 0);
  EXPECT_EQ(reset.invalidations_received, 0);
}

TEST(StatsResetProtocolTest, ReusedCooperativeSchedulerZeroesProtocolCounters) {
  // Drive every counter family at once — reads with a binding capacity, a
  // relay tier, the invalidation protocol — then start a fresh measurement
  // window on the *same* scheduler instance and demand a clean slate.
  ExperimentConfig config = BaseConfig(SchedulerKind::kCooperative);
  config.workload.num_caches = 2;
  config.workload.interest_pattern = InterestPattern::kPartitionedBySource;
  config.workload.read.read_rate = 4.0;
  config.workload.relay_tiers = 1;
  config.protocol.kind = SyncProtocolKind::kInvalidation;
  const Workload workload = std::move(MakeWorkload(config.workload)).ValueOrDie();
  const auto metric = MakeMetric(config.metric);
  const auto scheduler = MakeScheduler(config);
  Harness harness(&workload, metric.get(), config.harness);
  ASSERT_TRUE(harness.Run(scheduler.get()).ok());

  const SchedulerStats after_run = scheduler->stats();
  EXPECT_GT(after_run.reads_total, 0);
  EXPECT_GT(after_run.pulls_delivered, 0);
  EXPECT_GT(after_run.invalidations_sent, 0);
  EXPECT_GT(after_run.invalidations_received, 0);
  EXPECT_GT(after_run.relays_forwarded, 0);

  scheduler->OnMeasurementStart(harness.now());
  const SchedulerStats reset = scheduler->stats();
  EXPECT_EQ(reset.reads_total, 0);
  EXPECT_EQ(reset.read_hits, 0);
  EXPECT_EQ(reset.read_misses, 0);
  EXPECT_EQ(reset.pull_requests_sent, 0);
  EXPECT_EQ(reset.pulls_delivered, 0);
  EXPECT_EQ(reset.relays_forwarded, 0);
  EXPECT_EQ(reset.invalidations_sent, 0);
  EXPECT_EQ(reset.invalidations_received, 0);
}

TEST(StatsResetFaultTest, ReusedCooperativeSchedulerZeroesFaultCounters) {
  // Drive every fault counter family — cache crash/restart (with its resync
  // episode), a relay failover, a link flap, a slowdown — then start a fresh
  // measurement window on the same scheduler instance: the fault counters
  // must re-zero with everything else, or a reused scheduler double-counts
  // the previous run's outages.
  ExperimentConfig config = BaseConfig(SchedulerKind::kCooperative);
  config.workload.num_caches = 2;
  config.workload.interest_pattern = InterestPattern::kPartitionedBySource;
  config.workload.relay_tiers = 1;
  config.workload.fault.cache_crashes = 2;
  config.workload.fault.relay_failures = 1;
  config.workload.fault.link_flaps = 1;
  config.workload.fault.slowdowns = 1;
  config.workload.fault.window_start = 40.0;
  config.workload.fault.window_end = 120.0;
  const Workload workload = std::move(MakeWorkload(config.workload)).ValueOrDie();
  const auto metric = MakeMetric(config.metric);
  const auto scheduler = MakeScheduler(config);
  Harness harness(&workload, metric.get(), config.harness);
  ASSERT_TRUE(harness.Run(scheduler.get()).ok());

  const SchedulerStats after_run = scheduler->stats();
  EXPECT_GT(after_run.cache_crashes, 0);
  EXPECT_GT(after_run.cache_restarts, 0);
  EXPECT_GT(after_run.relay_failures, 0);
  EXPECT_GT(after_run.link_down_events, 0);
  EXPECT_GT(after_run.slowdown_events, 0);
  EXPECT_GT(after_run.resync_deliveries, 0);
  EXPECT_GT(after_run.time_to_resync_p95, 0.0);

  scheduler->OnMeasurementStart(harness.now());
  const SchedulerStats reset = scheduler->stats();
  EXPECT_EQ(reset.cache_crashes, 0);
  EXPECT_EQ(reset.cache_restarts, 0);
  EXPECT_EQ(reset.relay_failures, 0);
  EXPECT_EQ(reset.link_down_events, 0);
  EXPECT_EQ(reset.slowdown_events, 0);
  EXPECT_EQ(reset.crash_dropped_pulls, 0);
  EXPECT_EQ(reset.resync_deliveries, 0);
  EXPECT_EQ(reset.resync_pending, 0);
  EXPECT_EQ(reset.time_to_resync_mean, 0.0);
  EXPECT_EQ(reset.time_to_resync_p95, 0.0);
}

TEST(StatsRegistryTest, ResetZeroesEveryRegisteredMetric) {
  // The cooperative scheduler's counters live in a MetricsRegistry
  // (obs/metrics.h): one registration site, one increment site, and a
  // single Reset() at measurement start. This is the registry-side version
  // of the audits above — instead of naming fields one by one, iterate
  // everything registered and demand zero, so a counter added later is
  // covered the day it is registered. The registry currently backs the
  // fault/relay counter family, so arm a relay tier and a fault schedule
  // to actually bump it.
  ExperimentConfig config = BaseConfig(SchedulerKind::kCooperative);
  config.workload.num_caches = 2;
  config.workload.interest_pattern = InterestPattern::kPartitionedBySource;
  config.workload.relay_tiers = 1;
  config.workload.fault.cache_crashes = 1;
  config.workload.fault.window_start = 40.0;
  config.workload.fault.window_end = 120.0;
  const Workload workload = std::move(MakeWorkload(config.workload)).ValueOrDie();
  const auto metric = MakeMetric(config.metric);
  const auto scheduler = MakeScheduler(config);
  Harness harness(&workload, metric.get(), config.harness);
  ASSERT_TRUE(harness.Run(scheduler.get()).ok());

  auto* cooperative = static_cast<CooperativeScheduler*>(scheduler.get());
  const MetricsRegistry& registry = cooperative->metrics_registry();
  ASSERT_FALSE(registry.counters().empty());
  int64_t total = 0;
  for (const auto& [name, counter] : registry.counters()) total += counter.value();
  EXPECT_GT(total, 0) << "the run bumped no registered counter";

  scheduler->OnMeasurementStart(harness.now());
  for (const auto& [name, counter] : registry.counters()) {
    EXPECT_EQ(counter.value(), 0) << "counter '" << name
                                  << "' escaped the measurement-start reset";
  }
  for (const auto& [name, gauge] : registry.gauges()) {
    EXPECT_EQ(gauge.value(), 0.0) << "gauge '" << name << "' escaped the reset";
  }

  // The struct view and the registry must agree after reset too.
  const SchedulerStats reset = scheduler->stats();
  EXPECT_EQ(reset.refreshes_sent, 0);
  EXPECT_EQ(reset.refreshes_delivered, 0);
}

TEST(StatsRegistryTest, StandaloneRegistryBasics) {
  MetricsRegistry registry;
  Counter* sent = registry.AddCounter("sent");
  Gauge* depth = registry.AddGauge("depth");
  Histogram* wait = registry.AddHistogram("wait");
  sent->Increment();
  sent->Increment(3);
  depth->Set(7.5);
  wait->Add(1.0);
  wait->Add(9.0);
  EXPECT_EQ(sent->value(), 4);
  EXPECT_EQ(depth->value(), 7.5);
  EXPECT_EQ(wait->digest().count(), 2);

  // Handles stay valid as the deque grows (the registration contract).
  for (int i = 0; i < 100; ++i) {
    registry.AddCounter("filler_" + std::to_string(i));
  }
  EXPECT_EQ(sent->value(), 4);

  // Introspection sees registration order; Reset zeroes everything at once.
  EXPECT_EQ(registry.counters().front().first, "sent");
  registry.Reset();
  EXPECT_EQ(sent->value(), 0);
  EXPECT_EQ(depth->value(), 0.0);
  EXPECT_EQ(wait->digest().count(), 0);
}

INSTANTIATE_TEST_SUITE_P(AllSchedulers, StatsResetTest,
                         ::testing::Values(SchedulerKind::kCooperative,
                                           SchedulerKind::kIdealCooperative,
                                           SchedulerKind::kIdealCacheBased,
                                           SchedulerKind::kCGM1,
                                           SchedulerKind::kCGM2,
                                           SchedulerKind::kRoundRobin));

TEST(StatsWarmupIndependenceTest, RoundRobinStatsCoverMeasurementOnly) {
  // Round robin with constant bandwidth is fully deterministic: over a fixed
  // measurement window it performs exactly bandwidth * measure refreshes,
  // regardless of how long the warm-up ran.
  ExperimentConfig short_warmup = BaseConfig(SchedulerKind::kRoundRobin);
  short_warmup.harness.warmup = 50.0;
  ExperimentConfig long_warmup = short_warmup;
  long_warmup.harness.warmup = 250.0;

  const auto a = RunExperiment(short_warmup);
  const auto b = RunExperiment(long_warmup);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_GT(a->scheduler.refreshes_sent, 0);
  EXPECT_EQ(a->scheduler.refreshes_sent, b->scheduler.refreshes_sent);
  EXPECT_EQ(a->scheduler.refreshes_delivered, b->scheduler.refreshes_delivered);
}

TEST(StatsWarmupIndependenceTest, CooperativeDeliveredMatchesLinkAccounting) {
  // Internal consistency after warm-up reset: the cache agents' delivered
  // count and the sources' sent count must refer to the same (measurement)
  // window — sent can exceed delivered only by in-flight queue contents.
  const ExperimentConfig config = BaseConfig(SchedulerKind::kCooperative);
  const auto result = RunExperiment(config);
  ASSERT_TRUE(result.ok());
  EXPECT_GT(result->scheduler.refreshes_sent, 0);
  EXPECT_GT(result->scheduler.refreshes_delivered, 0);
  EXPECT_GE(result->scheduler.refreshes_sent + result->scheduler.max_cache_queue,
            result->scheduler.refreshes_delivered);
}

}  // namespace
}  // namespace besync
