#include "util/spsc_ring.h"

#include <memory>
#include <thread>
#include <vector>

#include "gtest/gtest.h"

namespace besync {
namespace {

TEST(SpscRingTest, CapacityRoundsUpToPowerOfTwo) {
  EXPECT_EQ(SpscRing<int>(1).capacity(), 1u);
  EXPECT_EQ(SpscRing<int>(2).capacity(), 2u);
  EXPECT_EQ(SpscRing<int>(3).capacity(), 4u);
  EXPECT_EQ(SpscRing<int>(5).capacity(), 8u);
  EXPECT_EQ(SpscRing<int>(64).capacity(), 64u);
  EXPECT_EQ(SpscRing<int>(100).capacity(), 128u);
}

TEST(SpscRingTest, PushPopFifo) {
  SpscRing<int> ring(8);
  EXPECT_TRUE(ring.empty());
  for (int i = 0; i < 5; ++i) EXPECT_TRUE(ring.TryPush(std::move(i)));
  EXPECT_FALSE(ring.empty());
  for (int i = 0; i < 5; ++i) {
    int out = -1;
    EXPECT_TRUE(ring.TryPop(&out));
    EXPECT_EQ(out, i);
  }
  EXPECT_TRUE(ring.empty());
  int out = -1;
  EXPECT_FALSE(ring.TryPop(&out));
}

TEST(SpscRingTest, FullRingRejectsWithoutConsuming) {
  SpscRing<std::unique_ptr<int>> ring(2);
  ASSERT_TRUE(ring.TryPush(std::make_unique<int>(1)));
  ASSERT_TRUE(ring.TryPush(std::make_unique<int>(2)));
  // Full: the value must survive the failed push (the caller spills it).
  std::unique_ptr<int> overflow = std::make_unique<int>(3);
  EXPECT_FALSE(ring.TryPush(std::move(overflow)));
  ASSERT_NE(overflow, nullptr);
  EXPECT_EQ(*overflow, 3);
  std::unique_ptr<int> out;
  ASSERT_TRUE(ring.TryPop(&out));
  EXPECT_EQ(*out, 1);
  // One slot free again.
  EXPECT_TRUE(ring.TryPush(std::move(overflow)));
  ASSERT_TRUE(ring.TryPop(&out));
  EXPECT_EQ(*out, 2);
  ASSERT_TRUE(ring.TryPop(&out));
  EXPECT_EQ(*out, 3);
  EXPECT_FALSE(ring.TryPop(&out));
}

TEST(SpscRingTest, WrapsAroundManyTimes) {
  SpscRing<int> ring(4);
  // Cursors are monotonically increasing; index masking must keep FIFO
  // order across many wraps of the 4-slot buffer.
  for (int i = 0; i < 1000; ++i) {
    ASSERT_TRUE(ring.TryPush(std::move(i)));
    int out = -1;
    ASSERT_TRUE(ring.TryPop(&out));
    ASSERT_EQ(out, i);
  }
  EXPECT_TRUE(ring.empty());
}

TEST(SpscRingTest, MoveOnlyPayload) {
  SpscRing<std::unique_ptr<int>> ring(4);
  ASSERT_TRUE(ring.TryPush(std::make_unique<int>(42)));
  std::unique_ptr<int> out;
  ASSERT_TRUE(ring.TryPop(&out));
  ASSERT_NE(out, nullptr);
  EXPECT_EQ(*out, 42);
}

TEST(SpscRingTest, TwoThreadProducerConsumerFuzz) {
  // One producer, one consumer, a ring much smaller than the item count:
  // every item must come out exactly once, in order, under live full/empty
  // contention. Run under TSan in CI (the .github workflow's filter).
  constexpr int kItems = 200000;
  SpscRing<int> ring(16);
  std::vector<int> received;
  received.reserve(kItems);
  std::thread consumer([&ring, &received] {
    int out = -1;
    while (static_cast<int>(received.size()) < kItems) {
      if (ring.TryPop(&out)) {
        received.push_back(out);
      } else {
        std::this_thread::yield();
      }
    }
  });
  for (int i = 0; i < kItems;) {
    if (ring.TryPush(std::move(i))) {
      ++i;
    } else {
      std::this_thread::yield();
    }
  }
  consumer.join();
  ASSERT_EQ(static_cast<int>(received.size()), kItems);
  for (int i = 0; i < kItems; ++i) ASSERT_EQ(received[i], i);
}

}  // namespace
}  // namespace besync
