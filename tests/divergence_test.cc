#include <memory>

#include <gtest/gtest.h>

#include "data/weight.h"
#include "data/workload.h"
#include "divergence/ground_truth.h"
#include "divergence/metric.h"
#include "divergence/tracker.h"

namespace besync {
namespace {

// ----------------------------------------------------------------- Metrics

TEST(StalenessMetricTest, ValueEqualityDefinesFreshness) {
  StalenessMetric metric;
  EXPECT_DOUBLE_EQ(metric.Divergence(5.0, 3, 5.0, 1), 0.0);  // same value: fresh
  EXPECT_DOUBLE_EQ(metric.Divergence(5.0, 3, 4.0, 1), 1.0);
}

TEST(StalenessMetricTest, RandomWalkReturnIsFreshAgain) {
  // A random walk can return to the cached value: staleness drops to 0 even
  // though versions differ (the paper defines staleness on values).
  StalenessMetric metric;
  EXPECT_DOUBLE_EQ(metric.Divergence(7.0, 10, 7.0, 2), 0.0);
}

TEST(LagMetricTest, CountsUnpropagatedUpdates) {
  LagMetric metric;
  EXPECT_DOUBLE_EQ(metric.Divergence(0.0, 12, 0.0, 12), 0.0);
  EXPECT_DOUBLE_EQ(metric.Divergence(0.0, 12, 0.0, 7), 5.0);
}

TEST(ValueDeviationMetricTest, DefaultIsAbsoluteDifference) {
  ValueDeviationMetric metric;
  EXPECT_DOUBLE_EQ(metric.Divergence(5.0, 0, 2.0, 0), 3.0);
  EXPECT_DOUBLE_EQ(metric.Divergence(2.0, 0, 5.0, 0), 3.0);
}

TEST(ValueDeviationMetricTest, CustomDelta) {
  ValueDeviationMetric metric(
      [](double v1, double v2) { return (v1 - v2) * (v1 - v2); });
  EXPECT_DOUBLE_EQ(metric.Divergence(5.0, 0, 2.0, 0), 9.0);
}

TEST(MetricFactoryTest, ProducesAllKinds) {
  for (MetricKind kind :
       {MetricKind::kStaleness, MetricKind::kLag, MetricKind::kValueDeviation}) {
    auto metric = MakeMetric(kind);
    ASSERT_NE(metric, nullptr);
    EXPECT_EQ(metric->kind(), kind);
  }
}

// ----------------------------------------------------------------- Tracker

TEST(DivergenceTrackerTest, StartsSynchronized) {
  LagMetric metric;
  DivergenceTracker tracker(&metric);
  tracker.OnRefresh(0.0, 0.0, 0);
  EXPECT_DOUBLE_EQ(tracker.current_divergence(), 0.0);
  EXPECT_DOUBLE_EQ(tracker.IntegralTo(10.0), 0.0);
}

TEST(DivergenceTrackerTest, LagIntegralPiecewiseConstant) {
  LagMetric metric;
  DivergenceTracker tracker(&metric);
  tracker.OnRefresh(0.0, 0.0, 0);
  tracker.OnUpdate(2.0, 1.0, 1);  // lag 1 from t=2
  tracker.OnUpdate(5.0, 2.0, 2);  // lag 2 from t=5
  // ∫ = 0*(2-0) + 1*(5-2) = 3 at t=5; + 2*(8-5) = 9 at t=8.
  EXPECT_DOUBLE_EQ(tracker.IntegralTo(5.0), 3.0);
  EXPECT_DOUBLE_EQ(tracker.IntegralTo(8.0), 9.0);
  EXPECT_DOUBLE_EQ(tracker.current_divergence(), 2.0);
  EXPECT_EQ(tracker.updates_since_refresh(), 2);
}

TEST(DivergenceTrackerTest, RefreshResetsEverything) {
  ValueDeviationMetric metric;
  DivergenceTracker tracker(&metric);
  tracker.OnRefresh(0.0, 10.0, 0);
  tracker.OnUpdate(1.0, 13.0, 1);
  EXPECT_DOUBLE_EQ(tracker.current_divergence(), 3.0);
  tracker.OnRefresh(4.0, 13.0, 1);
  EXPECT_DOUBLE_EQ(tracker.current_divergence(), 0.0);
  EXPECT_DOUBLE_EQ(tracker.IntegralTo(9.0), 0.0);
  EXPECT_EQ(tracker.updates_since_refresh(), 0);
  EXPECT_DOUBLE_EQ(tracker.last_refresh_time(), 4.0);
  EXPECT_DOUBLE_EQ(tracker.shipped_value(), 13.0);
}

TEST(DivergenceTrackerTest, StalenessCanRevert) {
  StalenessMetric metric;
  DivergenceTracker tracker(&metric);
  tracker.OnRefresh(0.0, 5.0, 0);
  tracker.OnUpdate(1.0, 6.0, 1);
  EXPECT_DOUBLE_EQ(tracker.current_divergence(), 1.0);
  tracker.OnUpdate(3.0, 5.0, 2);  // walked back to the cached value
  EXPECT_DOUBLE_EQ(tracker.current_divergence(), 0.0);
  // ∫ = 1*(3-1) = 2, frozen once fresh again.
  EXPECT_DOUBLE_EQ(tracker.IntegralTo(10.0), 2.0);
}

// The priority quantity (t-t_last)*D - ∫D is constant between updates
// (Section 8.2): verify directly from tracker quantities.
TEST(DivergenceTrackerTest, AreaPriorityConstantBetweenUpdates) {
  LagMetric metric;
  DivergenceTracker tracker(&metric);
  tracker.OnRefresh(0.0, 0.0, 0);
  tracker.OnUpdate(2.0, 1.0, 1);
  auto priority_at = [&tracker](double t) {
    return (t - tracker.last_refresh_time()) * tracker.current_divergence() -
           tracker.IntegralTo(t);
  };
  EXPECT_DOUBLE_EQ(priority_at(3.0), priority_at(7.0));
  EXPECT_DOUBLE_EQ(priority_at(3.0), 2.0);  // D=1 since t=2, refreshed at 0
}

// ------------------------------------------------------------ GroundTruth

class GroundTruthTest : public ::testing::Test {
 protected:
  GroundTruthTest() {
    WorkloadConfig config;
    config.num_sources = 1;
    config.objects_per_source = 2;
    config.seed = 5;
    workload_ = std::move(MakeWorkload(config)).ValueOrDie();
  }

  Workload workload_;
  LagMetric lag_;
  ValueDeviationMetric deviation_;
};

TEST_F(GroundTruthTest, TracksLagIntegralExactly) {
  GroundTruth ground_truth(&workload_, &lag_);
  ground_truth.Initialize(0.0);
  ground_truth.StartMeasurement(0.0);
  // Object 0: updates at t=1 and t=2; refresh applied at t=3 carrying v2.
  ground_truth.OnSourceUpdate(0, 1.0, 1.0, 1);
  ground_truth.OnSourceUpdate(0, 2.0, 2.0, 2);
  ground_truth.OnCacheApply(0, 3.0, 2.0, 2);
  ground_truth.FinishMeasurement(10.0);
  // ∫D = 1*(2-1) + 2*(3-2) = 3 over 10 s, two objects.
  EXPECT_NEAR(ground_truth.TotalWeightedAverage(), 0.3, 1e-12);
  EXPECT_NEAR(ground_truth.PerObjectUnweightedAverage(), 0.15, 1e-12);
}

TEST_F(GroundTruthTest, StaleMessageContentStillCounts) {
  GroundTruth ground_truth(&workload_, &deviation_);
  ground_truth.Initialize(0.0);
  ground_truth.StartMeasurement(0.0);
  ground_truth.OnSourceUpdate(0, 1.0, 4.0, 1);
  // A message carrying the OLD value 4 arrives after another update.
  ground_truth.OnSourceUpdate(0, 2.0, 6.0, 2);
  ground_truth.OnCacheApply(0, 3.0, 4.0, 1);  // still 2 away from source
  EXPECT_DOUBLE_EQ(ground_truth.current_divergence(0), 2.0);
  ground_truth.FinishMeasurement(4.0);
  // ∫D = |4-0|*(2-1) + |6-0|*(3-2) + |6-4|*(4-3) = 4 + 6 + 2 = 12 over 4 s.
  EXPECT_NEAR(ground_truth.TotalWeightedAverage(), 3.0, 1e-12);
}

TEST_F(GroundTruthTest, WarmupExcluded) {
  GroundTruth ground_truth(&workload_, &lag_);
  ground_truth.Initialize(0.0);
  ground_truth.OnSourceUpdate(0, 1.0, 1.0, 1);  // during warm-up
  ground_truth.StartMeasurement(5.0);
  ground_truth.FinishMeasurement(10.0);
  // D=1 held through the whole 5 s measurement window.
  EXPECT_NEAR(ground_truth.TotalWeightedAverage(), 1.0, 1e-12);
  EXPECT_DOUBLE_EQ(ground_truth.measurement_duration(), 5.0);
}

TEST_F(GroundTruthTest, OutOfOrderApplyIgnored) {
  GroundTruth ground_truth(&workload_, &lag_);
  ground_truth.Initialize(0.0);
  ground_truth.OnSourceUpdate(0, 1.0, 1.0, 1);
  ground_truth.OnSourceUpdate(0, 2.0, 2.0, 2);
  ground_truth.OnCacheApply(0, 3.0, 2.0, 2);
  ground_truth.OnCacheApply(0, 4.0, 1.0, 1);  // stale duplicate: ignore
  EXPECT_EQ(ground_truth.cached_version(0), 2);
  EXPECT_DOUBLE_EQ(ground_truth.current_divergence(0), 0.0);
}

TEST_F(GroundTruthTest, SourceWeightsViewDiffers) {
  workload_.objects[0].source_weight = MakeConstantWeight(10.0);
  GroundTruth cache_view(&workload_, &lag_, /*use_source_weights=*/false);
  GroundTruth source_view(&workload_, &lag_, /*use_source_weights=*/true);
  cache_view.Initialize(0.0);
  source_view.Initialize(0.0);
  cache_view.StartMeasurement(0.0);
  source_view.StartMeasurement(0.0);
  cache_view.OnSourceUpdate(0, 0.0, 1.0, 1);
  source_view.OnSourceUpdate(0, 0.0, 1.0, 1);
  cache_view.FinishMeasurement(1.0);
  source_view.FinishMeasurement(1.0);
  EXPECT_DOUBLE_EQ(cache_view.TotalWeightedAverage(), 1.0);
  EXPECT_DOUBLE_EQ(source_view.TotalWeightedAverage(), 10.0);
}

}  // namespace
}  // namespace besync
