#include "util/timer_wheel.h"

#include <algorithm>
#include <cstdint>
#include <vector>

#include <gtest/gtest.h>

#include "util/random.h"

namespace besync {
namespace {

/// Reference implementation: the (time, insertion-seq) order the wheel must
/// reproduce exactly — a stable sort of the push stream by time.
struct Ref {
  double time;
  int id;
};

std::vector<int> StableOrder(std::vector<Ref> refs) {
  std::stable_sort(refs.begin(), refs.end(),
                   [](const Ref& a, const Ref& b) { return a.time < b.time; });
  std::vector<int> ids;
  for (const Ref& ref : refs) ids.push_back(ref.id);
  return ids;
}

/// Pushes every (time, id) pair, then pops the whole wheel and returns the
/// ids in pop order, checking popped timestamps are what was pushed.
std::vector<int> DrainOrder(TimerWheel* wheel, const std::vector<Ref>& refs) {
  std::vector<double> times(refs.size());
  std::vector<int> order;
  for (const Ref& ref : refs) {
    times[static_cast<size_t>(ref.id)] = ref.time;
    wheel->Push(ref.time, [&order, id = ref.id](double) { order.push_back(id); });
  }
  while (!wheel->empty()) {
    const double next = wheel->NextTime();
    double time = 0.0;
    WheelCallback callback;
    wheel->PopInto(&time, &callback);
    EXPECT_EQ(time, next);
    callback(time);
    EXPECT_EQ(time, times[static_cast<size_t>(order.back())]);
  }
  return order;
}

TEST(TimerWheelTest, PopsInTimeOrderWithFifoTies) {
  TimerWheel wheel;
  const std::vector<Ref> refs = {
      {5.0, 0}, {1.0, 1}, {5.0, 2}, {0.25, 3}, {1.0, 4}, {5.0, 5}, {0.25, 6},
  };
  EXPECT_EQ(DrainOrder(&wheel, refs), StableOrder(refs));
}

TEST(TimerWheelTest, CascadesAcrossLevelsExactly) {
  TimerWheel::Options options;
  options.resolution = 1.0;
  options.level_slots = 4;  // level-0 horizon 4s, level-1 horizon 16s
  TimerWheel wheel(options);
  std::vector<Ref> refs;
  int id = 0;
  // Spread timers across near, level 0, level 1, and the far list, with
  // deliberate duplicates straddling the level-1 bucket boundaries.
  for (double t : {0.5, 3.9, 4.0, 4.0, 7.5, 15.0, 16.0, 16.0, 63.0, 64.0,
                   200.0, 200.0, 17.25, 3.9}) {
    refs.push_back({t, id++});
  }
  EXPECT_EQ(DrainOrder(&wheel, refs), StableOrder(refs));
}

TEST(TimerWheelTest, InterleavedPushAndPopKeepsGlobalOrder) {
  TimerWheel::Options options;
  options.level_slots = 8;
  TimerWheel wheel(options);
  std::vector<int> order;
  std::vector<Ref> refs;

  auto push = [&](double t) {
    const int id = static_cast<int>(refs.size());
    refs.push_back({t, id});
    wheel.Push(t, [&order, id](double) { order.push_back(id); });
  };
  auto pop = [&] {
    double time = 0.0;
    WheelCallback callback;
    wheel.PopInto(&time, &callback);
    callback(time);
  };

  push(10.0);
  push(2.0);
  pop();  // 2.0 fires; wheel has advanced near bucket 2
  // Pushes at-or-before the current bucket must still pop before later ones.
  push(2.5);
  push(1.0);
  push(300.0);
  while (!wheel.empty()) pop();

  // Expected: 2.0 popped first, then a stable sort of what remained at each
  // pop. 1.0 was pushed after 2.0 fired, so it pops second (past-time
  // pushes are served immediately, not dropped).
  EXPECT_EQ(order, (std::vector<int>{1, 3, 2, 0, 4}));
}

TEST(TimerWheelTest, RandomizedAgainstStableSort) {
  Rng rng(20260807);
  for (int round = 0; round < 20; ++round) {
    TimerWheel::Options options;
    options.resolution = round % 2 == 0 ? 1.0 : 0.125;
    options.level_slots = round % 3 == 0 ? 4 : 32;
    TimerWheel wheel(options);
    std::vector<Ref> refs;
    const int n = 200;
    for (int i = 0; i < n; ++i) {
      // Mix of near, mid, far, and repeated times to force tie-breaks.
      double t = 0.0;
      switch (rng.UniformInt(0, 3)) {
        case 0: t = static_cast<double>(rng.UniformInt(0, 9)); break;
        case 1: t = rng.Uniform(0.0, 50.0); break;
        case 2: t = rng.Uniform(0.0, 5000.0); break;
        default: t = rng.Uniform(0.0, 2.0e6); break;
      }
      refs.push_back({t, i});
    }
    EXPECT_EQ(DrainOrder(&wheel, refs), StableOrder(refs)) << "round " << round;
  }
}

TEST(TimerWheelTest, FarFutureTimersSurviveSaturation) {
  TimerWheel wheel;
  const std::vector<Ref> refs = {
      {1.0e18, 0}, {3.0, 1}, {1.0e18, 2}, {5.0e17, 3},
  };
  EXPECT_EQ(DrainOrder(&wheel, refs), StableOrder(refs));
}

TEST(TimerWheelTest, SizeTracksAcrossRegions) {
  TimerWheel::Options options;
  options.level_slots = 4;
  TimerWheel wheel(options);
  EXPECT_TRUE(wheel.empty());
  wheel.Push(0.5, [](double) {});
  wheel.Push(10.0, [](double) {});
  wheel.Push(1.0e6, [](double) {});
  EXPECT_EQ(wheel.size(), 3u);
  double time = 0.0;
  WheelCallback callback;
  wheel.PopInto(&time, &callback);
  EXPECT_EQ(time, 0.5);
  EXPECT_EQ(wheel.size(), 2u);
  wheel.PopInto(&time, &callback);
  wheel.PopInto(&time, &callback);
  EXPECT_EQ(time, 1.0e6);
  EXPECT_TRUE(wheel.empty());
}

}  // namespace
}  // namespace besync
