// Tests for the Section 10.1 extension features: history-extended priority,
// non-uniform refresh costs, refresh batching, and (network robustness)
// message loss.

#include <cmath>
#include <memory>

#include <gtest/gtest.h>

#include "core/system.h"
#include "data/update_process.h"
#include "divergence/metric.h"
#include "divergence/tracker.h"
#include "exp/experiment.h"
#include "net/link.h"
#include "priority/history.h"

namespace besync {
namespace {

// ------------------------------------------------------- Regime switching

TEST(RegimeSwitchingProcessTest, RatePerRegime) {
  RegimeSwitchingProcess process(2.0, 0.1, 100.0);
  EXPECT_DOUBLE_EQ(process.RateAt(50.0), 2.0);
  EXPECT_DOUBLE_EQ(process.RateAt(150.0), 0.1);
  EXPECT_DOUBLE_EQ(process.RateAt(250.0), 2.0);
  EXPECT_DOUBLE_EQ(process.rate(), 1.05);
}

TEST(RegimeSwitchingProcessTest, EventCountsFollowRegimes) {
  RegimeSwitchingProcess process(2.0, 0.1, 100.0);
  Rng rng(5);
  int64_t events_a = 0;
  int64_t events_b = 0;
  double t = 0.0;
  while (t < 10000.0) {
    t = process.NextUpdateTime(t, &rng);
    if (t >= 10000.0) break;
    (process.RateAt(t) == 2.0 ? events_a : events_b) += 1;
  }
  // 50 regimes of each kind, 100 s each: expect ~2.0*5000 = 10000 A-events
  // and ~0.1*5000 = 500 B-events.
  EXPECT_NEAR(static_cast<double>(events_a), 10000.0, 400.0);
  EXPECT_NEAR(static_cast<double>(events_b), 500.0, 90.0);
}

TEST(RegimeSwitchingProcessTest, ZeroRateRegimeSkipped) {
  RegimeSwitchingProcess process(0.0, 1.0, 10.0);
  Rng rng(6);
  // Starting in the zero-rate regime, the first update must land in [10,20).
  const double first = process.NextUpdateTime(0.0, &rng);
  EXPECT_GE(first, 10.0);
  EXPECT_LT(first, 40.0);  // overwhelmingly within the first active regime
}

// -------------------------------------------------------- History policy

PriorityContext HistoryContext(const DivergenceTracker* tracker, double weight,
                               double history_rate) {
  PriorityContext context;
  context.tracker = tracker;
  context.weight = weight;
  context.history_rate = history_rate;
  return context;
}

TEST(HistoryPriorityTest, BetaZeroEqualsArea) {
  ValueDeviationMetric metric;
  DivergenceTracker tracker(&metric);
  tracker.OnRefresh(0.0, 0.0, 0);
  tracker.OnUpdate(2.0, 4.0, 1);
  HistoryPriority history(0.0);
  AreaPriority area;
  const auto context = HistoryContext(&tracker, 2.0, 7.0);
  EXPECT_DOUBLE_EQ(history.Priority(context, 5.0), area.Priority(context, 5.0));
}

TEST(HistoryPriorityTest, BetaOneIsPureHistoryQuadratic) {
  ValueDeviationMetric metric;
  DivergenceTracker tracker(&metric);
  tracker.OnRefresh(0.0, 0.0, 0);
  HistoryPriority history(1.0);
  const auto context = HistoryContext(&tracker, 1.0, 0.5);
  // P = r/2 * t^2 = 0.25 * 16 = 4 at t = 4.
  EXPECT_DOUBLE_EQ(history.Priority(context, 4.0), 4.0);
}

TEST(HistoryPriorityTest, CrossTimeInvertsPriority) {
  ValueDeviationMetric metric;
  DivergenceTracker tracker(&metric);
  tracker.OnRefresh(0.0, 0.0, 0);
  tracker.OnUpdate(1.0, 2.0, 1);
  HistoryPriority history(0.5);
  const auto context = HistoryContext(&tracker, 1.5, 0.4);
  const double threshold = 30.0;
  const double cross = history.ThresholdCrossTime(context, threshold, 2.0);
  ASSERT_TRUE(std::isfinite(cross));
  EXPECT_NEAR(history.Priority(context, cross), threshold, 1e-9);
}

TEST(HistoryPriorityTest, NoHistoryRateNeverCrosses) {
  ValueDeviationMetric metric;
  DivergenceTracker tracker(&metric);
  tracker.OnRefresh(0.0, 0.0, 0);
  HistoryPriority history(0.5);
  const auto context = HistoryContext(&tracker, 1.0, 0.0);
  EXPECT_TRUE(std::isinf(history.ThresholdCrossTime(context, 100.0, 1.0)));
}

TEST(HistoryPriorityTest, Flags) {
  HistoryPriority history(0.5);
  EXPECT_TRUE(history.time_varying());
  EXPECT_TRUE(history.update_sensitive());
  EXPECT_EQ(history.kind(), PolicyKind::kAreaHistory);
  EXPECT_EQ(PolicyKindToString(PolicyKind::kAreaHistory), "area-history");
}

TEST(HistoryRateEstimatorTest, RecoversLinearRate) {
  // Divergence growing at rate r over an interval L has integral r L^2 / 2.
  HistoryRateEstimator estimator(1.0);  // no smoothing: track last interval
  const double r = 0.3;
  const double interval = 8.0;
  estimator.OnRefresh(interval, 0.5 * r * interval * interval);
  EXPECT_NEAR(estimator.rate(), r, 1e-12);
}

TEST(HistoryRateEstimatorTest, EmaSmoothing) {
  HistoryRateEstimator estimator(0.5);
  estimator.OnRefresh(2.0, 0.5 * 1.0 * 4.0);  // rate 1
  estimator.OnRefresh(2.0, 0.5 * 3.0 * 4.0);  // rate 3
  EXPECT_NEAR(estimator.rate(), 2.0, 1e-12);  // 0.5*1 + 0.5*3
}

TEST(HistoryRateEstimatorTest, IgnoresDegenerateIntervals) {
  HistoryRateEstimator estimator;
  estimator.OnRefresh(0.0, 5.0);
  EXPECT_DOUBLE_EQ(estimator.rate(), 0.0);
}

// ---------------------------------------------------------- Drift process

TEST(DriftProcessTest, DeterministicIntervals) {
  DriftProcess process(0.5);  // every 2 s
  Rng rng(1);
  EXPECT_DOUBLE_EQ(process.NextUpdateTime(0.0, &rng), 2.0);
  EXPECT_DOUBLE_EQ(process.NextUpdateTime(2.0, &rng), 4.0);
  EXPECT_DOUBLE_EQ(process.NextUpdateTime(3.0, &rng), 4.0);
  EXPECT_DOUBLE_EQ(process.ApplyUpdate(7.0, &rng), 8.0);  // one-sided
}

TEST(DriftProcessTest, DivergenceMatchesBound) {
  // Under value deviation, a drift object's divergence after time T without
  // refresh is floor(lambda*T)*step ~ R*T.
  ValueDeviationMetric metric;
  DivergenceTracker tracker(&metric);
  tracker.OnRefresh(0.0, 0.0, 0);
  DriftProcess process(1.0);
  Rng rng(2);
  double value = 0.0;
  double t = 0.0;
  for (int i = 0; i < 50; ++i) {
    t = process.NextUpdateTime(t, &rng);
    value = process.ApplyUpdate(value, &rng);
    tracker.OnUpdate(t, value, i + 1);
  }
  EXPECT_DOUBLE_EQ(tracker.current_divergence(), 50.0);  // R*T with R=1,T=50
}

// ----------------------------------------------------- Costs on the link

std::unique_ptr<BandwidthModel> Constant(double rate) {
  return std::make_unique<BandwidthModel>(std::make_unique<ConstantFluctuation>(rate));
}

TEST(LinkCostTest, LargeMessageSpansTicks) {
  Link link("t", Constant(2.0));
  Message big;
  big.cost = 5;
  link.BeginTick(0.0, 1.0);
  link.Enqueue(big);
  int delivered = 0;
  link.DeliverQueued([&](const Message&) { ++delivered; });
  EXPECT_EQ(delivered, 1);               // transmission starts immediately...
  EXPECT_EQ(link.remaining_budget(), -3);  // ...and runs a 3-unit debt
  link.BeginTick(1.0, 1.0);
  EXPECT_EQ(link.remaining_budget(), -1);  // debt carries, budget 2 - 3
  link.BeginTick(2.0, 1.0);
  EXPECT_EQ(link.remaining_budget(), 1);   // link free again mid-tick 3
}

TEST(LinkCostTest, DebtBlocksSubsequentDeliveries) {
  Link link("t", Constant(1.0));
  Message big;
  big.cost = 3;
  Message small;
  link.BeginTick(0.0, 1.0);
  link.Enqueue(big);
  link.Enqueue(small);
  int delivered = 0;
  link.DeliverQueued([&](const Message&) { ++delivered; });
  EXPECT_EQ(delivered, 1);  // big went out; small must wait out the debt
  link.BeginTick(1.0, 1.0);
  link.DeliverQueued([&](const Message&) { ++delivered; });
  EXPECT_EQ(delivered, 1);  // still paying for big
  link.BeginTick(2.0, 1.0);
  link.BeginTick(3.0, 1.0);
  link.DeliverQueued([&](const Message&) { ++delivered; });
  EXPECT_EQ(delivered, 2);
}

TEST(LinkCostTest, TryConsumeAllowingDeficit) {
  Link link("t", Constant(2.0));
  link.BeginTick(0.0, 1.0);
  EXPECT_TRUE(link.TryConsumeAllowingDeficit(5));
  EXPECT_EQ(link.remaining_budget(), -3);
  EXPECT_FALSE(link.TryConsumeAllowingDeficit(1));  // nothing left to start on
}

// -------------------------------------------------------------- Link loss

TEST(LinkLossTest, DropsApproximatelyAtRate) {
  Link link("t", Constant(1000.0));
  link.SetLossRate(0.3, 99);
  link.BeginTick(0.0, 1.0);
  for (int i = 0; i < 1000; ++i) link.Enqueue(Message{});
  int delivered = 0;
  link.DeliverQueued([&](const Message&) { ++delivered; });
  EXPECT_EQ(delivered + link.messages_dropped(), 1000);
  EXPECT_NEAR(static_cast<double>(link.messages_dropped()), 300.0, 60.0);
}

// --------------------------------------------------- System-level checks

ExperimentConfig BaseConfig(SchedulerKind kind) {
  ExperimentConfig config;
  config.scheduler = kind;
  config.metric = MetricKind::kValueDeviation;
  config.workload.num_sources = 5;
  config.workload.objects_per_source = 20;
  config.workload.rate_lo = 0.05;
  config.workload.rate_hi = 0.5;
  config.workload.seed = 31;
  config.harness.warmup = 50.0;
  config.harness.measure = 400.0;
  config.cache_bandwidth_avg = 15.0;
  return config;
}

TEST(HistoryPolicySystemTest, RunsUnderBothSchedulers) {
  for (SchedulerKind kind :
       {SchedulerKind::kCooperative, SchedulerKind::kIdealCooperative}) {
    ExperimentConfig config = BaseConfig(kind);
    config.policy = PolicyKind::kAreaHistory;
    auto result = RunExperiment(config);
    ASSERT_TRUE(result.ok()) << result.status().ToString();
    EXPECT_GT(result->scheduler.refreshes_delivered, 100);
    EXPECT_LT(result->per_object_weighted, 10.0);
  }
}

TEST(HistoryPolicySystemTest, CompetitiveWithAreaOnStationaryWorkload) {
  // On a stationary workload the history blend should stay in the same
  // ballpark as the pure area policy (paper: history trades adaptiveness
  // for prediction stability).
  ExperimentConfig config = BaseConfig(SchedulerKind::kIdealCooperative);
  config.policy = PolicyKind::kArea;
  auto area = RunExperiment(config);
  ASSERT_TRUE(area.ok());
  config.policy = PolicyKind::kAreaHistory;
  auto history = RunExperiment(config);
  ASSERT_TRUE(history.ok());
  EXPECT_LT(history->per_object_weighted, area->per_object_weighted * 1.6);
}

TEST(CostSystemTest, HeterogeneousCostsReduceThroughput) {
  ExperimentConfig config = BaseConfig(SchedulerKind::kCooperative);
  auto uniform = RunExperiment(config);
  ASSERT_TRUE(uniform.ok());
  config.workload.cost_scheme = CostScheme::kHalfLarge;
  config.workload.large_cost = 4;
  auto costly = RunExperiment(config);
  ASSERT_TRUE(costly.ok());
  // Same message budget now moves fewer (heavier) refreshes.
  EXPECT_LT(costly->scheduler.refreshes_delivered,
            uniform->scheduler.refreshes_delivered);
  EXPECT_GT(costly->per_object_weighted, uniform->per_object_weighted);
}

TEST(CostSystemTest, CostAwarePriorityHelps) {
  ExperimentConfig config = BaseConfig(SchedulerKind::kIdealCooperative);
  config.workload.cost_scheme = CostScheme::kHalfLarge;
  config.workload.large_cost = 8;
  config.harness.measure = 800.0;
  config.cost_aware_priority = true;
  auto aware = RunExperiment(config);
  ASSERT_TRUE(aware.ok());
  config.cost_aware_priority = false;
  auto blind = RunExperiment(config);
  ASSERT_TRUE(blind.ok());
  // Charging cost in the priority should not hurt, and usually helps.
  EXPECT_LT(aware->per_object_weighted, blind->per_object_weighted * 1.05);
}

TEST(BatchSystemTest, BatchingAmortizesBandwidth) {
  ExperimentConfig config = BaseConfig(SchedulerKind::kCooperative);
  config.cache_bandwidth_avg = 5.0;  // tight: batching should pay off
  auto unbatched = RunExperiment(config);
  ASSERT_TRUE(unbatched.ok());
  config.max_batch = 4;
  config.max_batch_delay = 5.0;
  auto batched = RunExperiment(config);
  ASSERT_TRUE(batched.ok());
  // More object refreshes land at the cache per unit of bandwidth.
  EXPECT_GT(batched->scheduler.refreshes_delivered,
            unbatched->scheduler.refreshes_delivered);
  // And under this contention the amortization beats the added delay.
  EXPECT_LT(batched->per_object_weighted, unbatched->per_object_weighted);
}

TEST(LossSystemTest, GracefulDegradation) {
  ExperimentConfig config = BaseConfig(SchedulerKind::kCooperative);
  auto lossless = RunExperiment(config);
  ASSERT_TRUE(lossless.ok());
  config.loss_rate = 0.2;
  auto lossy = RunExperiment(config);
  ASSERT_TRUE(lossy.ok());
  // Losing 20% of refreshes hurts, but the protocol keeps functioning and
  // divergence stays bounded (re-refresh on subsequent updates).
  EXPECT_GT(lossy->per_object_weighted, lossless->per_object_weighted);
  EXPECT_LT(lossy->per_object_weighted, lossless->per_object_weighted * 4.0);
}

}  // namespace
}  // namespace besync
