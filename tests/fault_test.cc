// Fault-injection subsystem tests: schedule construction/validation, the
// bitwise inertness pin (an empty schedule reproduces the seed goldens and
// draws no randomness even when the generator knobs are armed), cache
// crash/restart semantics end to end under both recovery policies, relay
// failover, link partitions, slowdowns, the crashed-pull regression, and
// determinism of faulted runs across run_threads and sweep threads.

#include <cmath>
#include <cstdint>
#include <sstream>
#include <vector>

#include <gtest/gtest.h>

#include "core/system.h"
#include "data/topology.h"
#include "divergence/metric.h"
#include "exp/experiment.h"
#include "exp/fault_sweep.h"
#include "exp/runner.h"
#include "fault/fault_schedule.h"
#include "read/cache_store.h"
#include "util/random.h"

namespace besync {
namespace {

constexpr double kTolerance = 1e-9;

/// The GoldenTest.CooperativeTrigger configuration (tests/golden_test.cc):
/// the seed-era single-cache constants the fault layer must not disturb.
ExperimentConfig GoldenConfig() {
  ExperimentConfig config;
  config.scheduler = SchedulerKind::kCooperative;
  config.workload.num_sources = 8;
  config.workload.objects_per_source = 25;
  config.workload.seed = 42;
  config.harness.warmup = 50.0;
  config.harness.measure = 300.0;
  config.harness.seed = 7;
  config.cache_bandwidth_avg = 12.0;
  config.source_bandwidth_avg = 4.0;
  return config;
}

constexpr double kGoldenDivergence = 226.69154803746471;
constexpr int64_t kGoldenRefreshes = 3150;
constexpr int64_t kGoldenFeedback = 436;

/// Small multi-cache configuration shared by the crash/recovery tests:
/// partitioned interest so each cache's divergence is cleanly attributable.
ExperimentConfig MultiCacheConfig() {
  ExperimentConfig config;
  config.scheduler = SchedulerKind::kCooperative;
  config.workload.num_sources = 6;
  config.workload.objects_per_source = 15;
  config.workload.num_caches = 3;
  config.workload.interest_pattern = InterestPattern::kPartitionedBySource;
  config.workload.seed = 11;
  config.harness.warmup = 20.0;
  config.harness.measure = 150.0;
  config.harness.seed = 5;
  config.cache_bandwidth_avg = 6.0;
  config.source_bandwidth_avg = 3.0;
  return config;
}

FaultEvent Event(double time, FaultEventKind kind, int32_t node,
                 double factor = 1.0) {
  FaultEvent event;
  event.time = time;
  event.kind = kind;
  event.node = node;
  event.factor = factor;
  return event;
}

// ------------------------------------------------------- schedule basics

TEST(FaultScheduleTest, SortedIsStableOnTies) {
  FaultSchedule schedule;
  schedule.events.push_back(Event(30.0, FaultEventKind::kLinkDown, 2));
  schedule.events.push_back(Event(10.0, FaultEventKind::kCacheCrash, 0));
  schedule.events.push_back(Event(10.0, FaultEventKind::kCacheCrash, 1));
  const std::vector<FaultEvent> sorted = schedule.Sorted();
  ASSERT_EQ(sorted.size(), 3u);
  EXPECT_EQ(sorted[0].node, 0);  // insertion order preserved on the tie
  EXPECT_EQ(sorted[1].node, 1);
  EXPECT_EQ(sorted[2].node, 2);
}

TEST(FaultScheduleTest, LabelSummarizesEventClasses) {
  FaultSchedule schedule;
  EXPECT_EQ(schedule.Label(), "none");
  schedule.events.push_back(Event(10.0, FaultEventKind::kCacheCrash, 0));
  schedule.events.push_back(Event(30.0, FaultEventKind::kCacheRestart, 0));
  schedule.events.push_back(Event(40.0, FaultEventKind::kLinkDown, 1));
  EXPECT_EQ(schedule.Label(), "faults(crash=1,relay=0,flap=1,slow=0)");
}

TEST(FaultScheduleTest, ValidateRejectsBadTargets) {
  const TopologySpec flat;
  FaultSchedule schedule;
  schedule.events.push_back(Event(10.0, FaultEventKind::kCacheCrash, 5));
  EXPECT_FALSE(schedule.Validate(flat, 3).ok());  // cache id out of range

  schedule.events.clear();
  schedule.events.push_back(Event(-1.0, FaultEventKind::kCacheCrash, 0));
  EXPECT_FALSE(schedule.Validate(flat, 3).ok());  // negative time

  schedule.events.clear();
  schedule.events.push_back(Event(10.0, FaultEventKind::kRelayFail, 3));
  EXPECT_FALSE(schedule.Validate(flat, 3).ok());  // no relays on flat

  schedule.events.clear();
  schedule.events.push_back(Event(10.0, FaultEventKind::kSlowDown, 0, 1.5));
  EXPECT_FALSE(schedule.Validate(flat, 3).ok());  // factor outside (0, 1]

  const TopologySpec tree = MakeRelayTree(4, 2, 1);
  schedule.events.clear();
  schedule.events.push_back(Event(10.0, FaultEventKind::kRelayFail, 4));
  schedule.events.push_back(Event(20.0, FaultEventKind::kRelayRecover, 4));
  schedule.events.push_back(Event(15.0, FaultEventKind::kCacheCrash, 3));
  EXPECT_TRUE(schedule.Validate(tree, 4).ok());
}

TEST(FaultScheduleTest, GeneratorIsDeterministicAndGatedOnEnabled) {
  FaultScheduleConfig config;
  EXPECT_FALSE(config.enabled());
  const TopologySpec flat;
  EXPECT_TRUE(MakeFaultSchedule(config, 4, flat).empty());

  config.cache_crashes = 2;
  config.link_flaps = 1;
  config.window_start = 30.0;
  config.window_end = 120.0;
  EXPECT_TRUE(config.enabled());
  const FaultSchedule a = MakeFaultSchedule(config, 4, flat);
  const FaultSchedule b = MakeFaultSchedule(config, 4, flat);
  ASSERT_EQ(a.size(), 6u);  // 2 crash/restart pairs + 1 down/up pair
  ASSERT_EQ(b.size(), a.size());
  for (size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a.events[i].time, b.events[i].time);
    EXPECT_EQ(a.events[i].kind, b.events[i].kind);
    EXPECT_EQ(a.events[i].node, b.events[i].node);
  }
  EXPECT_TRUE(a.Validate(flat, 4).ok());

  // Pinned crash target: every crash lands on the configured leaf.
  config.crash_cache = 0;
  const FaultSchedule pinned = MakeFaultSchedule(config, 4, flat);
  for (const FaultEvent& event : pinned.events) {
    if (event.kind == FaultEventKind::kCacheCrash ||
        event.kind == FaultEventKind::kCacheRestart) {
      EXPECT_EQ(event.node, 0);
    }
  }
}

// ------------------------------------------------------ cache store unit

TEST(CacheStoreCrashTest, CrashDropsResidencyUntilInstalled) {
  CacheStore store(/*capacity=*/0, EvictionPolicy::kLru, {0, 1, 2});
  EXPECT_TRUE(store.unbounded());
  EXPECT_EQ(store.num_resident(), 3);
  EXPECT_FALSE(store.ever_crashed());

  store.Crash();
  EXPECT_TRUE(store.ever_crashed());
  EXPECT_EQ(store.num_resident(), 0);
  for (int64_t slot = 0; slot < 3; ++slot) EXPECT_FALSE(store.resident(slot));

  // Content returns only through installs, one replica at a time — and a
  // crash is not an eviction.
  store.Install(1, 10.0, nullptr);
  EXPECT_TRUE(store.resident(1));
  EXPECT_FALSE(store.resident(0));
  EXPECT_EQ(store.num_resident(), 1);
  EXPECT_EQ(store.evictions(), 0);
}

// -------------------------------------------------------- inertness pins

TEST(FaultPinTest, EmptyScheduleReproducesTriggerGolden) {
  const auto result = RunExperiment(GoldenConfig());
  ASSERT_TRUE(result.ok());
  EXPECT_NEAR(result->total_weighted_divergence, kGoldenDivergence, kTolerance);
  EXPECT_EQ(result->scheduler.refreshes_sent, kGoldenRefreshes);
  EXPECT_EQ(result->scheduler.feedback_sent, kGoldenFeedback);
  EXPECT_EQ(result->scheduler.cache_crashes, 0);
  EXPECT_EQ(result->scheduler.cache_restarts, 0);
  EXPECT_EQ(result->scheduler.relay_failures, 0);
  EXPECT_EQ(result->scheduler.link_down_events, 0);
  EXPECT_EQ(result->scheduler.slowdown_events, 0);
  EXPECT_EQ(result->scheduler.crash_dropped_pulls, 0);
  EXPECT_EQ(result->scheduler.resync_deliveries, 0);
  EXPECT_EQ(result->scheduler.resync_pending, 0);
  EXPECT_EQ(result->scheduler.time_to_resync_mean, 0.0);
  EXPECT_EQ(result->scheduler.time_to_resync_p95, 0.0);
}

TEST(FaultPinTest, ArmedGeneratorPerturbsNothingButTheSchedule) {
  // Build the golden workload twice — fault generator off and on — then
  // strip the schedule from the armed one. The runs must agree bitwise:
  // MakeFaultSchedule draws from its own seed stream only.
  ExperimentConfig armed = GoldenConfig();
  armed.workload.fault.cache_crashes = 2;
  armed.workload.fault.crash_cache = 0;
  armed.workload.fault.window_start = 60.0;
  armed.workload.fault.window_end = 200.0;
  Workload workload = std::move(MakeWorkload(armed.workload)).ValueOrDie();
  EXPECT_EQ(workload.faults.size(), 4u);
  workload.faults.events.clear();
  const auto result = RunExperimentOnWorkload(armed, &workload);
  ASSERT_TRUE(result.ok());
  EXPECT_NEAR(result->total_weighted_divergence, kGoldenDivergence, kTolerance);
  EXPECT_EQ(result->scheduler.refreshes_sent, kGoldenRefreshes);
  EXPECT_EQ(result->scheduler.feedback_sent, kGoldenFeedback);
}

TEST(FaultPinTest, FaultsRequireTheCooperativeScheduler) {
  ExperimentConfig config = GoldenConfig();
  config.scheduler = SchedulerKind::kRoundRobin;
  config.workload.fault.cache_crashes = 1;
  config.workload.fault.window_start = 60.0;
  const auto result = RunExperiment(config);
  EXPECT_FALSE(result.ok());
}

// --------------------------------------------------- crash and recovery

TEST(FaultCrashTest, CrashClearsExactlyTheCrashedCache) {
  ExperimentConfig config = MultiCacheConfig();
  Workload workload = std::move(MakeWorkload(config.workload)).ValueOrDie();
  // Crash cache 0 mid-measurement and never restart it.
  workload.faults.events.push_back(Event(80.0, FaultEventKind::kCacheCrash, 0));

  CooperativeConfig cooperative;
  cooperative.num_caches = 3;
  cooperative.cache_bandwidth_avg = config.cache_bandwidth_avg;
  cooperative.source_bandwidth_avg = config.source_bandwidth_avg;
  CooperativeScheduler scheduler(cooperative);
  const auto metric = MakeMetric(MetricKind::kValueDeviation);
  const auto result =
      RunScheduler(&workload, metric.get(), config.harness, &scheduler);
  ASSERT_TRUE(result.ok()) << result.status().ToString();

  EXPECT_TRUE(scheduler.cache_down(0));
  EXPECT_FALSE(scheduler.cache_down(1));
  EXPECT_FALSE(scheduler.cache_down(2));
  // The crashed store lost everything (deliveries blackhole while down);
  // the other caches never even switched to tracked residency.
  EXPECT_TRUE(scheduler.read_path().store(0).ever_crashed());
  EXPECT_EQ(scheduler.read_path().store(0).num_resident(), 0);
  EXPECT_FALSE(scheduler.read_path().store(1).ever_crashed());
  EXPECT_EQ(scheduler.read_path().store(1).num_resident(),
            scheduler.read_path().store(1).num_members());
  EXPECT_EQ(result->scheduler.cache_crashes, 1);
  EXPECT_EQ(result->scheduler.cache_restarts, 0);
}

/// Runs MultiCacheConfig with one crash/restart of cache 0 under `policy`.
RunResult RunOneCrash(RecoveryPolicy policy) {
  ExperimentConfig config = MultiCacheConfig();
  config.recovery_policy = policy;
  config.workload.fault.cache_crashes = 1;
  config.workload.fault.crash_cache = 0;
  config.workload.fault.crash_duration = 15.0;
  config.workload.fault.window_start = 60.0;
  config.workload.fault.window_end = 0.0;  // fire exactly at 60
  auto result = RunExperiment(config);
  EXPECT_TRUE(result.ok()) << result.status().ToString();
  return std::move(result).ValueOrDie();
}

TEST(FaultRecoveryTest, RestartResyncsUnderRecoveryPriority) {
  const RunResult run = RunOneCrash(RecoveryPolicy::kRecoveryPriority);
  EXPECT_EQ(run.scheduler.cache_crashes, 1);
  EXPECT_EQ(run.scheduler.cache_restarts, 1);
  // The recovery channel re-ships every replica of the restarted cache;
  // the episode closes within the run.
  EXPECT_GT(run.scheduler.resync_deliveries, 0);
  EXPECT_EQ(run.scheduler.resync_pending, 0);
  EXPECT_GT(run.scheduler.time_to_resync_p95, 0.0);
}

TEST(FaultRecoveryTest, RestartResyncsUnderNaiveReenqueue) {
  const RunResult run = RunOneCrash(RecoveryPolicy::kNaiveReenqueue);
  EXPECT_EQ(run.scheduler.cache_crashes, 1);
  EXPECT_EQ(run.scheduler.cache_restarts, 1);
  // Naive recovery rides the ordinary threshold machinery: every replica is
  // accounted for — delivered or still waiting at run end.
  EXPECT_GT(run.scheduler.resync_deliveries + run.scheduler.resync_pending, 0);
}

TEST(FaultRecoveryTest, PriorityBeatsNaiveOnTimeToResync) {
  const RunResult priority = RunOneCrash(RecoveryPolicy::kRecoveryPriority);
  const RunResult naive = RunOneCrash(RecoveryPolicy::kNaiveReenqueue);
  // The dedicated recovery channel refills the cold cache strictly faster
  // than divergence-ordered re-pushes: either naive never finishes (open
  // episode at run end) or its p95 is worse.
  if (naive.scheduler.resync_pending > 0) {
    EXPECT_EQ(priority.scheduler.resync_pending, 0);
  } else {
    EXPECT_LT(priority.scheduler.time_to_resync_p95,
              naive.scheduler.time_to_resync_p95);
  }
}

TEST(FaultCrashTest, CrashCancelsInFlightPulls) {
  // Capacity pressure + tight bandwidth keeps pulls in flight; a crash in
  // the middle of the pull storm must cancel them rather than resolving
  // dead clients' reads later (the phantom-hit regression).
  ExperimentConfig config = MultiCacheConfig();
  config.workload.read.read_rate = 8.0;
  config.workload.read.capacity = 10;
  config.cache_bandwidth_avg = 4.0;
  config.workload.fault.cache_crashes = 1;
  config.workload.fault.crash_cache = 0;
  config.workload.fault.crash_duration = 20.0;
  config.workload.fault.window_start = 80.0;
  const auto result = RunExperiment(config);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_EQ(result->scheduler.cache_crashes, 1);
  EXPECT_GT(result->scheduler.crash_dropped_pulls, 0);
}

// ------------------------------------------------------- relay failover

TEST(FaultRelayTest, FailoverKeepsTheRunAliveAndCounts) {
  ExperimentConfig config = MultiCacheConfig();
  config.workload.num_caches = 4;
  config.workload.num_sources = 8;
  config.workload.relay_tiers = 2;
  config.workload.relay_fanout = 2;
  config.workload.relay_bandwidth_factor = 0.75;
  Workload workload = std::move(MakeWorkload(config.workload)).ValueOrDie();
  AssignBackupParents(&workload.topology);
  // Fail one tier-1 relay for a window mid-measurement.
  const int32_t relay = workload.topology.RelaysBottomUp().front();
  workload.faults.events.push_back(Event(70.0, FaultEventKind::kRelayFail, relay));
  workload.faults.events.push_back(
      Event(100.0, FaultEventKind::kRelayRecover, relay));

  for (RelayStorePolicy store_policy :
       {RelayStorePolicy::kDrop, RelayStorePolicy::kDrain}) {
    ExperimentConfig run_config = config;
    run_config.relay_store_policy = store_policy;
    const auto result = RunExperimentOnWorkload(run_config, &workload);
    ASSERT_TRUE(result.ok()) << result.status().ToString();
    EXPECT_EQ(result->scheduler.relay_failures, 1);
    EXPECT_GT(result->scheduler.refreshes_delivered, 0);
    // Feedback mail survives the failover (re-deposited at its leaf), so
    // the threshold control loop keeps running.
    EXPECT_GT(result->scheduler.feedback_sent, 0);
    EXPECT_GT(result->total_weighted_divergence, 0.0);
  }
}

// --------------------------------------------- partitions and slowdowns

TEST(FaultLinkTest, PartitionWindowRaisesStalenessUnderInvalidation) {
  ExperimentConfig config = MultiCacheConfig();
  config.workload.read.read_rate = 4.0;
  config.protocol.kind = SyncProtocolKind::kInvalidation;

  ExperimentConfig flapped = config;
  flapped.workload.fault.link_flaps = 1;
  flapped.workload.fault.flap_duration = 40.0;
  flapped.workload.fault.window_start = 70.0;

  const auto baseline = RunExperiment(config);
  const auto partitioned = RunExperiment(flapped);
  ASSERT_TRUE(baseline.ok());
  ASSERT_TRUE(partitioned.ok());
  EXPECT_EQ(partitioned->scheduler.link_down_events, 1);
  EXPECT_EQ(baseline->scheduler.link_down_events, 0);
  // During the partition invalidations blackhole, so the cut-off cache
  // keeps serving divergent replicas as valid: read staleness worsens.
  EXPECT_GT(partitioned->scheduler.read_staleness_p95,
            baseline->scheduler.read_staleness_p95);
}

TEST(FaultLinkTest, SlowdownThrottlesDeliveries) {
  ExperimentConfig config = MultiCacheConfig();
  ExperimentConfig slowed = config;
  slowed.workload.fault.slowdowns = 1;
  slowed.workload.fault.slow_duration = 60.0;
  slowed.workload.fault.slow_factor = 0.2;
  slowed.workload.fault.window_start = 60.0;

  const auto baseline = RunExperiment(config);
  const auto degraded = RunExperiment(slowed);
  ASSERT_TRUE(baseline.ok());
  ASSERT_TRUE(degraded.ok());
  EXPECT_EQ(degraded->scheduler.slowdown_events, 1);
  EXPECT_LT(degraded->scheduler.refreshes_delivered,
            baseline->scheduler.refreshes_delivered);
}

// ----------------------------------------------------------- determinism

TEST(FaultDeterminismTest, FaultedRunIsRunThreadInvariant) {
  ExperimentConfig config = MultiCacheConfig();
  config.workload.read.read_rate = 3.0;
  config.workload.fault.cache_crashes = 2;
  config.workload.fault.crash_cache = 0;
  config.workload.fault.link_flaps = 1;
  config.workload.fault.slowdowns = 1;
  config.workload.fault.window_start = 40.0;
  config.workload.fault.window_end = 120.0;
  config.recovery_policy = RecoveryPolicy::kRecoveryPriority;

  auto run_at = [&config](int run_threads) {
    ExperimentConfig at = config;
    at.run_threads = run_threads;
    auto result = RunExperiment(at);
    EXPECT_TRUE(result.ok()) << result.status().ToString();
    return std::move(result).ValueOrDie();
  };
  const RunResult serial = run_at(1);
  for (int threads : {2, 4}) {
    const RunResult sharded = run_at(threads);
    EXPECT_EQ(serial.total_weighted_divergence, sharded.total_weighted_divergence);
    ASSERT_EQ(serial.per_cache_weighted.size(), sharded.per_cache_weighted.size());
    for (size_t c = 0; c < serial.per_cache_weighted.size(); ++c) {
      EXPECT_EQ(serial.per_cache_weighted[c], sharded.per_cache_weighted[c]);
    }
    EXPECT_EQ(serial.scheduler.refreshes_delivered,
              sharded.scheduler.refreshes_delivered);
    EXPECT_EQ(serial.scheduler.cache_crashes, sharded.scheduler.cache_crashes);
    EXPECT_EQ(serial.scheduler.cache_restarts, sharded.scheduler.cache_restarts);
    EXPECT_EQ(serial.scheduler.resync_deliveries,
              sharded.scheduler.resync_deliveries);
    EXPECT_EQ(serial.scheduler.resync_pending, sharded.scheduler.resync_pending);
    EXPECT_EQ(serial.scheduler.time_to_resync_mean,
              sharded.scheduler.time_to_resync_mean);
    EXPECT_EQ(serial.scheduler.time_to_resync_p95,
              sharded.scheduler.time_to_resync_p95);
    EXPECT_EQ(serial.scheduler.crash_dropped_pulls,
              sharded.scheduler.crash_dropped_pulls);
  }
}

TEST(FaultDeterminismTest, SweepJsonIsThreadCountInvariant) {
  FaultSweepConfig sweep;
  sweep.base = MultiCacheConfig();
  sweep.base.harness.measure = 80.0;
  sweep.crash_counts = {0, 1};
  sweep.relay_tiers = {0};
  sweep.read_rate = 2.0;

  auto json_at = [&sweep](int threads) {
    FaultSweepConfig at = sweep;
    at.threads = threads;
    std::vector<JobResult> raw;
    const auto points = RunFaultSweep(at, &raw);
    EXPECT_TRUE(points.ok()) << points.status().ToString();
    std::ostringstream out;
    WriteResultsJson(out, raw);
    return out.str();
  };
  const std::string serial = json_at(1);
  EXPECT_FALSE(serial.empty());
  EXPECT_EQ(serial, json_at(8));
}

// ------------------------------------------------------------------ fuzz

TEST(FaultFuzzTest, RandomSchedulesNeverViolateInvariants) {
  // 200 seeded random schedules on a tiny workload: whatever the fault
  // pattern, runs succeed, the divergence accounting stays finite and
  // non-negative, and the recovery bookkeeping is self-consistent.
  Rng rng(20260808);
  for (int iteration = 0; iteration < 200; ++iteration) {
    ExperimentConfig config;
    config.scheduler = SchedulerKind::kCooperative;
    config.workload.num_sources = 2;
    config.workload.objects_per_source = 6;
    config.workload.num_caches = 2;
    config.workload.interest_pattern = InterestPattern::kPartitionedBySource;
    config.workload.seed = 1 + static_cast<uint64_t>(iteration);
    config.harness.warmup = 5.0;
    config.harness.measure = 40.0;
    config.harness.seed = 3;
    config.cache_bandwidth_avg = 5.0;
    config.workload.read.read_rate = rng.Bernoulli(0.5) ? 2.0 : 0.0;
    config.recovery_policy = rng.Bernoulli(0.5)
                                 ? RecoveryPolicy::kRecoveryPriority
                                 : RecoveryPolicy::kNaiveReenqueue;
    FaultScheduleConfig& fault = config.workload.fault;
    fault.cache_crashes = static_cast<int>(rng.UniformInt(0, 3));
    fault.crash_duration = rng.Uniform(1.0, 15.0);
    fault.link_flaps = static_cast<int>(rng.UniformInt(0, 2));
    fault.flap_duration = rng.Uniform(1.0, 10.0);
    fault.slowdowns = static_cast<int>(rng.UniformInt(0, 2));
    fault.slow_duration = rng.Uniform(1.0, 10.0);
    fault.slow_factor = rng.Uniform(0.1, 1.0);
    fault.window_start = rng.Uniform(0.0, 30.0);
    fault.window_end = fault.window_start + rng.Uniform(0.0, 15.0);
    fault.seed = rng.NextUint64();

    const auto result = RunExperiment(config);
    ASSERT_TRUE(result.ok())
        << "iteration " << iteration << ": " << result.status().ToString();
    const RunResult& run = *result;
    EXPECT_TRUE(std::isfinite(run.total_weighted_divergence));
    EXPECT_GE(run.total_weighted_divergence, 0.0);
    double per_cache_sum = 0.0;
    for (double cache_divergence : run.per_cache_weighted) {
      EXPECT_GE(cache_divergence, 0.0) << "iteration " << iteration;
      per_cache_sum += cache_divergence;
    }
    EXPECT_NEAR(per_cache_sum, run.total_weighted_divergence, 1e-6);
    const SchedulerStats& stats = run.scheduler;
    EXPECT_GE(stats.cache_crashes, 0);
    // Stats are measurement-window scoped, so a warmup crash's restart can
    // outnumber the *counted* crashes — but never the scheduled ones.
    EXPECT_LE(stats.cache_restarts, fault.cache_crashes);
    EXPECT_GE(stats.resync_deliveries, 0);
    EXPECT_GE(stats.resync_pending, 0);
    EXPECT_GE(stats.crash_dropped_pulls, 0);
    EXPECT_GE(stats.time_to_resync_p95, 0.0);
    EXPECT_TRUE(std::isfinite(stats.time_to_resync_mean));
    // Counters are measurement-window scoped and delivery lags sending, so
    // warmup-sent backlog (amplified by failover drains) can deliver inside
    // the window: delivered may slightly exceed the *counted* sends, but
    // both stay non-negative.
    EXPECT_GE(stats.refreshes_sent, 0);
    EXPECT_GE(stats.refreshes_delivered, 0);
  }
}

}  // namespace
}  // namespace besync
