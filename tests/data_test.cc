#include <cmath>
#include <set>

#include <gtest/gtest.h>

#include "data/buoy_trace.h"
#include "data/update_process.h"
#include "data/weight.h"
#include "data/workload.h"

namespace besync {
namespace {

TEST(PoissonProcessTest, InterArrivalMeanMatchesRate) {
  PoissonRandomWalkProcess process(2.0);
  Rng rng(1);
  double t = 0.0;
  const int kEvents = 50000;
  for (int i = 0; i < kEvents; ++i) t = process.NextUpdateTime(t, &rng);
  EXPECT_NEAR(t / kEvents, 0.5, 0.01);  // mean gap = 1/lambda
  EXPECT_DOUBLE_EQ(process.rate(), 2.0);
}

TEST(PoissonProcessTest, ZeroRateNeverFires) {
  PoissonRandomWalkProcess process(0.0);
  Rng rng(1);
  EXPECT_TRUE(std::isinf(process.NextUpdateTime(0.0, &rng)));
}

TEST(PoissonProcessTest, RandomWalkStepsAreUnit) {
  PoissonRandomWalkProcess process(1.0);
  Rng rng(2);
  double value = 0.0;
  int ups = 0;
  for (int i = 0; i < 10000; ++i) {
    const double next = process.ApplyUpdate(value, &rng);
    EXPECT_DOUBLE_EQ(std::abs(next - value), 1.0);
    ups += next > value;
    value = next;
  }
  EXPECT_NEAR(ups / 10000.0, 0.5, 0.02);  // symmetric walk
}

TEST(BernoulliProcessTest, UpdatesOnIntegerSeconds) {
  BernoulliRandomWalkProcess process(0.5);
  Rng rng(3);
  double t = 0.3;
  for (int i = 0; i < 1000; ++i) {
    t = process.NextUpdateTime(t, &rng);
    EXPECT_DOUBLE_EQ(t, std::floor(t));  // integer times only
  }
}

TEST(BernoulliProcessTest, ProbabilityOneFiresEverySecond) {
  BernoulliRandomWalkProcess process(1.0);
  Rng rng(4);
  EXPECT_DOUBLE_EQ(process.NextUpdateTime(0.0, &rng), 1.0);
  EXPECT_DOUBLE_EQ(process.NextUpdateTime(1.0, &rng), 2.0);
  EXPECT_DOUBLE_EQ(process.NextUpdateTime(1.5, &rng), 2.0);
}

TEST(BernoulliProcessTest, LongRunRateMatchesProbability) {
  const double p = 0.2;
  BernoulliRandomWalkProcess process(p);
  Rng rng(5);
  double t = 0.0;
  int count = 0;
  while (t < 100000.0) {
    t = process.NextUpdateTime(t, &rng);
    if (t < 100000.0) ++count;
  }
  EXPECT_NEAR(count / 100000.0, p, 0.01);
}

TEST(TraceProcessTest, ReplaysPointsInOrder) {
  TraceProcess process({{1.0, 10.0}, {2.0, 20.0}, {4.0, 40.0}});
  Rng rng(1);
  EXPECT_DOUBLE_EQ(process.NextUpdateTime(0.0, &rng), 1.0);
  EXPECT_DOUBLE_EQ(process.ApplyUpdate(0.0, &rng), 10.0);
  EXPECT_DOUBLE_EQ(process.NextUpdateTime(1.0, &rng), 2.0);
  EXPECT_DOUBLE_EQ(process.ApplyUpdate(10.0, &rng), 20.0);
  EXPECT_DOUBLE_EQ(process.NextUpdateTime(2.0, &rng), 4.0);
  EXPECT_DOUBLE_EQ(process.ApplyUpdate(20.0, &rng), 40.0);
  EXPECT_TRUE(std::isinf(process.NextUpdateTime(4.0, &rng)));
}

TEST(TraceProcessTest, ResetRewinds) {
  TraceProcess process({{1.0, 10.0}, {2.0, 20.0}});
  Rng rng(1);
  process.NextUpdateTime(0.0, &rng);
  process.ApplyUpdate(0.0, &rng);
  process.Reset();
  EXPECT_DOUBLE_EQ(process.NextUpdateTime(0.0, &rng), 1.0);
  EXPECT_DOUBLE_EQ(process.ApplyUpdate(0.0, &rng), 10.0);
}

TEST(TraceProcessTest, RateIsPointsOverSpan) {
  TraceProcess process({{0.0, 1.0}, {10.0, 2.0}, {20.0, 3.0}});
  EXPECT_DOUBLE_EQ(process.rate(), 0.1);  // 2 gaps over 20 s
}

TEST(ProductWeightTest, MultipliesFactors) {
  ProductWeight weight(MakeConstantWeight(3.0), MakeConstantWeight(2.0));
  EXPECT_DOUBLE_EQ(weight.ValueAt(0.0), 6.0);
  EXPECT_DOUBLE_EQ(weight.average(), 6.0);
}

// ---------------------------------------------------------------- Workload

TEST(WorkloadTest, RejectsInvalidConfig) {
  WorkloadConfig config;
  config.num_sources = 0;
  EXPECT_FALSE(MakeWorkload(config).ok());
  config.num_sources = 1;
  config.objects_per_source = 0;
  EXPECT_FALSE(MakeWorkload(config).ok());
  config.objects_per_source = 1;
  config.rate_lo = -1.0;
  EXPECT_FALSE(MakeWorkload(config).ok());
}

TEST(WorkloadTest, RejectsBernoulliProbabilityAboveOne) {
  WorkloadConfig config;
  config.update_model = WorkloadConfig::UpdateModel::kBernoulli;
  config.rate_hi = 2.0;
  EXPECT_FALSE(MakeWorkload(config).ok());
}

TEST(WorkloadTest, ShapesAndGrouping) {
  WorkloadConfig config;
  config.num_sources = 3;
  config.objects_per_source = 5;
  auto workload = MakeWorkload(config);
  ASSERT_TRUE(workload.ok());
  EXPECT_EQ(workload->total_objects(), 15);
  for (int64_t i = 0; i < 15; ++i) {
    EXPECT_EQ(workload->objects[i].index, i);
    EXPECT_EQ(workload->objects[i].source_index, i / 5);
    EXPECT_NE(workload->objects[i].process, nullptr);
    EXPECT_NE(workload->objects[i].weight, nullptr);
  }
}

TEST(WorkloadTest, DeterministicForSameSeed) {
  WorkloadConfig config;
  config.num_sources = 2;
  config.objects_per_source = 10;
  config.seed = 99;
  auto a = MakeWorkload(config);
  auto b = MakeWorkload(config);
  ASSERT_TRUE(a.ok() && b.ok());
  for (int64_t i = 0; i < a->total_objects(); ++i) {
    EXPECT_DOUBLE_EQ(a->objects[i].lambda, b->objects[i].lambda);
    EXPECT_EQ(a->objects[i].rng_seed, b->objects[i].rng_seed);
  }
}

TEST(WorkloadTest, UniformRatesWithinRange) {
  WorkloadConfig config;
  config.objects_per_source = 1000;
  config.rate_lo = 0.1;
  config.rate_hi = 0.9;
  auto workload = MakeWorkload(config);
  ASSERT_TRUE(workload.ok());
  double sum = 0.0;
  for (const auto& spec : workload->objects) {
    EXPECT_GE(spec.lambda, 0.1);
    EXPECT_LT(spec.lambda, 0.9);
    sum += spec.lambda;
  }
  EXPECT_NEAR(sum / 1000.0, 0.5, 0.03);
}

TEST(WorkloadTest, HalfSlowHalfFastSplit) {
  WorkloadConfig config;
  config.objects_per_source = 100;
  config.rate_distribution = RateDistribution::kHalfSlowHalfFast;
  config.slow_rate = 0.01;
  config.fast_rate = 1.0;
  auto workload = MakeWorkload(config);
  ASSERT_TRUE(workload.ok());
  int slow = 0;
  int fast = 0;
  for (const auto& spec : workload->objects) {
    if (spec.lambda == 0.01) ++slow;
    if (spec.lambda == 1.0) ++fast;
  }
  EXPECT_EQ(slow, 50);
  EXPECT_EQ(fast, 50);
}

TEST(WorkloadTest, HalfHeavyWeights) {
  WorkloadConfig config;
  config.objects_per_source = 100;
  config.weight_scheme = WeightScheme::kHalfHeavy;
  config.heavy_weight = 10.0;
  auto workload = MakeWorkload(config);
  ASSERT_TRUE(workload.ok());
  int heavy = 0;
  for (const auto& spec : workload->objects) {
    const double w = spec.weight->average();
    EXPECT_TRUE(w == 1.0 || w == 10.0);
    heavy += w == 10.0;
  }
  EXPECT_EQ(heavy, 50);
}

TEST(WorkloadTest, WeightAndRateSplitsAreIndependent) {
  // With independent random halves, the overlap of heavy & fast should be
  // around 25% of objects, not 0% or 50%.
  WorkloadConfig config;
  config.objects_per_source = 1000;
  config.rate_distribution = RateDistribution::kHalfSlowHalfFast;
  config.weight_scheme = WeightScheme::kHalfHeavy;
  auto workload = MakeWorkload(config);
  ASSERT_TRUE(workload.ok());
  int heavy_fast = 0;
  for (const auto& spec : workload->objects) {
    if (spec.weight->average() == 10.0 && spec.lambda == 1.0) ++heavy_fast;
  }
  EXPECT_GT(heavy_fast, 150);
  EXPECT_LT(heavy_fast, 350);
}

TEST(WorkloadTest, FluctuatingWeightsFlagged) {
  WorkloadConfig config;
  config.weight_fluctuation_amplitude = 0.5;
  auto workload = MakeWorkload(config);
  ASSERT_TRUE(workload.ok());
  EXPECT_TRUE(workload->has_fluctuating_weights);
}

// -------------------------------------------------------------- Buoy trace

TEST(BuoyTraceTest, ShapeAndRange) {
  BuoyTraceConfig config;
  config.num_buoys = 5;
  config.duration = 86400.0;  // 1 day
  auto traces = GenerateBuoyTraces(config);
  ASSERT_TRUE(traces.ok());
  EXPECT_EQ(traces->size(), 10u);  // 5 buoys x 2 components
  for (const auto& trace : *traces) {
    EXPECT_EQ(trace.size(), 144u);  // 86400 / 600
    for (const auto& point : trace) {
      EXPECT_GE(point.value, 0.0);
      EXPECT_LE(point.value, 10.0);
    }
  }
}

TEST(BuoyTraceTest, TypicalValuesNearFive) {
  BuoyTraceConfig config;
  auto traces = GenerateBuoyTraces(config);
  ASSERT_TRUE(traces.ok());
  double sum = 0.0;
  int64_t count = 0;
  for (const auto& trace : *traces) {
    for (const auto& point : trace) {
      sum += point.value;
      ++count;
    }
  }
  // The paper: values "generally in the range of 0-10, with typical values
  // of around 5".
  EXPECT_NEAR(sum / count, 5.0, 1.0);
}

TEST(BuoyTraceTest, MeasurementsEveryTenMinutes) {
  BuoyTraceConfig config;
  config.num_buoys = 1;
  config.components_per_buoy = 1;
  config.duration = 6000.0;
  auto traces = GenerateBuoyTraces(config);
  ASSERT_TRUE(traces.ok());
  const auto& trace = (*traces)[0];
  for (size_t k = 0; k < trace.size(); ++k) {
    EXPECT_DOUBLE_EQ(trace[k].time, 600.0 * (k + 1));
  }
}

TEST(BuoyTraceTest, WorkloadUsesOneSourcePerBuoy) {
  BuoyTraceConfig config;
  config.num_buoys = 4;
  config.duration = 86400.0;
  auto workload = MakeBuoyWorkload(config);
  ASSERT_TRUE(workload.ok());
  EXPECT_EQ(workload->num_sources, 4);
  EXPECT_EQ(workload->objects_per_source, 2);
  EXPECT_EQ(workload->total_objects(), 8);
  for (const auto& spec : workload->objects) {
    EXPECT_DOUBLE_EQ(spec.weight->average(), 1.0);  // equally weighted
    EXPECT_GT(spec.lambda, 0.0);
  }
}

TEST(BuoyTraceTest, DeterministicForSeed) {
  BuoyTraceConfig config;
  config.num_buoys = 2;
  config.duration = 36000.0;
  auto a = GenerateBuoyTraces(config);
  auto b = GenerateBuoyTraces(config);
  ASSERT_TRUE(a.ok() && b.ok());
  for (size_t i = 0; i < a->size(); ++i) {
    for (size_t k = 0; k < (*a)[i].size(); ++k) {
      EXPECT_DOUBLE_EQ((*a)[i][k].value, (*b)[i][k].value);
    }
  }
}

TEST(BuoyTraceTest, RejectsInvalidConfigs) {
  BuoyTraceConfig config;
  config.num_buoys = 0;
  EXPECT_FALSE(GenerateBuoyTraces(config).ok());
  config = BuoyTraceConfig{};
  config.reversion = 0.0;
  EXPECT_FALSE(GenerateBuoyTraces(config).ok());
  config = BuoyTraceConfig{};
  config.max_value = config.min_value;
  EXPECT_FALSE(GenerateBuoyTraces(config).ok());
}

}  // namespace
}  // namespace besync
