#include <memory>

#include <gtest/gtest.h>

#include "core/cache.h"
#include "core/harness.h"
#include "core/system.h"
#include "divergence/metric.h"
#include "exp/experiment.h"

namespace besync {
namespace {

// -------------------------------------------------------------- CacheAgent

TEST(CacheAgentTest, UnknownThresholdsSelectedFirst) {
  CacheAgent cache(3);
  Message message;
  message.kind = MessageKind::kRefresh;
  message.source_index = 0;
  message.piggyback_threshold = 5.0;
  cache.RecordRefresh(message, 1.0);
  // Sources 1 and 2 are unknown (+inf) -> they outrank source 0.
  auto targets = cache.SelectFeedbackTargets(2, 2.0);
  ASSERT_EQ(targets.size(), 2u);
  EXPECT_TRUE((targets[0] == 1 && targets[1] == 2) ||
              (targets[0] == 2 && targets[1] == 1));
}

TEST(CacheAgentTest, HighestThresholdFirst) {
  CacheAgent cache(3);
  for (int j = 0; j < 3; ++j) {
    Message message;
    message.source_index = j;
    message.piggyback_threshold = 1.0 + j;
    cache.RecordRefresh(message, 1.0);
  }
  auto targets = cache.SelectFeedbackTargets(1, 2.0);
  ASSERT_EQ(targets.size(), 1u);
  EXPECT_EQ(targets[0], 2);  // threshold 3.0 is the highest
}

TEST(CacheAgentTest, TiesGoToLeastRecentlyFed) {
  CacheAgent cache(2);
  for (int j = 0; j < 2; ++j) {
    Message message;
    message.source_index = j;
    message.piggyback_threshold = 7.0;
    cache.RecordRefresh(message, 1.0);
  }
  auto first = cache.SelectFeedbackTargets(1, 2.0);
  auto second = cache.SelectFeedbackTargets(1, 3.0);
  ASSERT_EQ(first.size(), 1u);
  ASSERT_EQ(second.size(), 1u);
  EXPECT_NE(first[0], second[0]);  // alternates under equal thresholds
}

TEST(CacheAgentTest, LimitRespectsSourceCount) {
  CacheAgent cache(3);
  EXPECT_EQ(cache.SelectFeedbackTargets(100, 1.0).size(), 3u);
  EXPECT_EQ(cache.SelectFeedbackTargets(0, 1.0).size(), 0u);
  EXPECT_EQ(cache.feedback_sent(), 3);
}

// ------------------------------------------------------- Cooperative system

// Shared fixture utilities: small deterministic workloads.
WorkloadConfig SmallWorkload(int sources, int per_source, uint64_t seed = 42) {
  WorkloadConfig config;
  config.num_sources = sources;
  config.objects_per_source = per_source;
  config.rate_lo = 0.05;
  config.rate_hi = 0.5;
  config.seed = seed;
  return config;
}

HarnessConfig ShortRun(double warmup = 50.0, double measure = 300.0) {
  HarnessConfig config;
  config.warmup = warmup;
  config.measure = measure;
  return config;
}

TEST(CooperativeSystemTest, AmpleBandwidthGivesNearZeroDivergence) {
  // 20 objects updating ~0.3/s => ~6 updates/s total; bandwidth 100/s.
  Workload workload = std::move(MakeWorkload(SmallWorkload(2, 10))).ValueOrDie();
  auto metric = MakeMetric(MetricKind::kValueDeviation);
  CooperativeConfig config;
  config.cache_bandwidth_avg = 100.0;
  CooperativeScheduler scheduler(config);
  auto result = RunScheduler(&workload, metric.get(), ShortRun(), &scheduler);
  ASSERT_TRUE(result.ok());
  // Divergence can never be identically zero (updates land mid-tick), but
  // it must be small: each object is stale for at most ~1 tick per update.
  EXPECT_LT(result->per_object_weighted, 0.5);
  EXPECT_GT(result->scheduler.refreshes_delivered, 0);
}

TEST(CooperativeSystemTest, ScarceBandwidthDoesNotFlood) {
  // Heavy overload: ~50 updates/s offered, 5/s of cache bandwidth.
  WorkloadConfig wl = SmallWorkload(10, 10);
  wl.rate_lo = 0.3;
  wl.rate_hi = 0.7;
  Workload workload = std::move(MakeWorkload(wl)).ValueOrDie();
  auto metric = MakeMetric(MetricKind::kValueDeviation);
  CooperativeConfig config;
  config.cache_bandwidth_avg = 5.0;
  CooperativeScheduler scheduler(config);
  auto result = RunScheduler(&workload, metric.get(), ShortRun(), &scheduler);
  ASSERT_TRUE(result.ok());
  // The positive-feedback design keeps the cache queue bounded: the paper's
  // key stability property. Allow slack, but far below the ~5000 messages
  // an uncontrolled sender population would pile up.
  EXPECT_LT(result->scheduler.max_cache_queue, 200);
  // Bandwidth should be well-used despite the conservative thresholds.
  EXPECT_GT(result->scheduler.cache_utilization, 0.5);
}

TEST(CooperativeSystemTest, UtilizationFillsWithFeedback) {
  // Moderate load: the adaptive thresholds should discover spare bandwidth
  // via positive feedback and keep utilization reasonably high.
  WorkloadConfig wl = SmallWorkload(5, 10);
  wl.rate_lo = 0.2;
  wl.rate_hi = 1.0;
  Workload workload = std::move(MakeWorkload(wl)).ValueOrDie();
  auto metric = MakeMetric(MetricKind::kValueDeviation);
  CooperativeConfig config;
  config.cache_bandwidth_avg = 15.0;  // about half the update volume
  CooperativeScheduler scheduler(config);
  auto result = RunScheduler(&workload, metric.get(), ShortRun(), &scheduler);
  ASSERT_TRUE(result.ok());
  EXPECT_GT(result->scheduler.cache_utilization, 0.6);
  EXPECT_GT(result->scheduler.feedback_sent, 0);
}

TEST(CooperativeSystemTest, SourceBandwidthLimitsRespected) {
  WorkloadConfig wl = SmallWorkload(4, 25);
  wl.rate_lo = 0.5;
  wl.rate_hi = 1.0;
  Workload workload = std::move(MakeWorkload(wl)).ValueOrDie();
  auto metric = MakeMetric(MetricKind::kStaleness);
  CooperativeConfig config;
  config.cache_bandwidth_avg = 1000.0;  // cache is not the bottleneck
  config.source_bandwidth_avg = 2.0;    // each source capped at 2 msg/s
  CooperativeScheduler scheduler(config);
  HarnessConfig harness = ShortRun();
  auto result = RunScheduler(&workload, metric.get(), harness, &scheduler);
  ASSERT_TRUE(result.ok());
  // 4 sources x 2 msg/s x 300 s measurement = at most ~2400 refreshes.
  EXPECT_LE(result->scheduler.refreshes_sent, 2500);
}

TEST(CooperativeSystemTest, HigherBandwidthNeverHurts) {
  auto metric = MakeMetric(MetricKind::kValueDeviation);
  double previous = 1e18;
  for (double bandwidth : {2.0, 10.0, 50.0}) {
    Workload workload = std::move(MakeWorkload(SmallWorkload(4, 10))).ValueOrDie();
    CooperativeConfig config;
    config.cache_bandwidth_avg = bandwidth;
    CooperativeScheduler scheduler(config);
    auto result = RunScheduler(&workload, metric.get(), ShortRun(), &scheduler);
    ASSERT_TRUE(result.ok());
    EXPECT_LT(result->per_object_weighted, previous * 1.1);
    previous = result->per_object_weighted;
  }
}

TEST(CooperativeSystemTest, SamplingModeWorks) {
  Workload workload = std::move(MakeWorkload(SmallWorkload(2, 10))).ValueOrDie();
  auto metric = MakeMetric(MetricKind::kValueDeviation);
  CooperativeConfig config;
  config.cache_bandwidth_avg = 20.0;
  config.source.monitor = MonitorMode::kSampling;
  config.source.sampling_interval = 5.0;
  CooperativeScheduler scheduler(config);
  auto result = RunScheduler(&workload, metric.get(), ShortRun(), &scheduler);
  ASSERT_TRUE(result.ok());
  EXPECT_GT(result->scheduler.refreshes_delivered, 0);
  EXPECT_LT(result->per_object_weighted, 5.0);
}

TEST(CooperativeSystemTest, PredictiveSamplingWorks) {
  Workload workload = std::move(MakeWorkload(SmallWorkload(2, 10))).ValueOrDie();
  auto metric = MakeMetric(MetricKind::kValueDeviation);
  CooperativeConfig config;
  config.cache_bandwidth_avg = 20.0;
  config.source.monitor = MonitorMode::kSampling;
  config.source.sampling_interval = 10.0;
  config.source.predictive_sampling = true;
  CooperativeScheduler scheduler(config);
  auto result = RunScheduler(&workload, metric.get(), ShortRun(), &scheduler);
  ASSERT_TRUE(result.ok());
  EXPECT_GT(result->scheduler.refreshes_delivered, 0);
}

TEST(CooperativeSystemTest, BoundPolicyRuns) {
  Workload workload = std::move(MakeWorkload(SmallWorkload(2, 10))).ValueOrDie();
  auto metric = MakeMetric(MetricKind::kValueDeviation);
  CooperativeConfig config;
  config.cache_bandwidth_avg = 10.0;
  config.policy = PolicyKind::kBound;
  CooperativeScheduler scheduler(config);
  auto result = RunScheduler(&workload, metric.get(), ShortRun(), &scheduler);
  ASSERT_TRUE(result.ok());
  // Bound-based refreshing is update-oblivious but must still refresh.
  EXPECT_GT(result->scheduler.refreshes_delivered, 100);
}

TEST(CooperativeSystemTest, FluctuatingEverythingStaysStable) {
  WorkloadConfig wl = SmallWorkload(5, 20);
  wl.weight_fluctuation_amplitude = 0.5;
  Workload workload = std::move(MakeWorkload(wl)).ValueOrDie();
  auto metric = MakeMetric(MetricKind::kLag);
  CooperativeConfig config;
  config.cache_bandwidth_avg = 10.0;
  config.source_bandwidth_avg = 5.0;
  config.bandwidth_change_rate = 0.25;
  CooperativeScheduler scheduler(config);
  auto result = RunScheduler(&workload, metric.get(), ShortRun(), &scheduler);
  ASSERT_TRUE(result.ok());
  EXPECT_LT(result->scheduler.max_cache_queue, 500);
  EXPECT_GT(result->scheduler.refreshes_delivered, 0);
}

TEST(CooperativeSystemTest, MeanThresholdPositive) {
  Workload workload = std::move(MakeWorkload(SmallWorkload(3, 10))).ValueOrDie();
  auto metric = MakeMetric(MetricKind::kValueDeviation);
  CooperativeConfig config;
  config.cache_bandwidth_avg = 10.0;
  CooperativeScheduler scheduler(config);
  auto result = RunScheduler(&workload, metric.get(), ShortRun(), &scheduler);
  ASSERT_TRUE(result.ok());
  EXPECT_GT(result->scheduler.mean_threshold, 0.0);
}

TEST(HarnessTest, RunTwiceFails) {
  Workload workload = std::move(MakeWorkload(SmallWorkload(1, 2))).ValueOrDie();
  auto metric = MakeMetric(MetricKind::kStaleness);
  HarnessConfig config;
  config.warmup = 0.0;
  config.measure = 10.0;
  Harness harness(&workload, metric.get(), config);
  CooperativeConfig coop;
  CooperativeScheduler scheduler(coop);
  ASSERT_TRUE(harness.Run(&scheduler).ok());
  CooperativeScheduler scheduler2(coop);
  EXPECT_TRUE(harness.Run(&scheduler2).IsFailedPrecondition());
}

TEST(HarnessTest, UpdateStreamsIdenticalAcrossSchedulers) {
  // The per-object RNG seeds make update streams independent of scheduler
  // decisions: final versions must match exactly across two different
  // schedulers on regenerated workloads.
  auto metric = MakeMetric(MetricKind::kStaleness);
  HarnessConfig config;
  config.warmup = 0.0;
  config.measure = 100.0;

  std::vector<int64_t> versions_a;
  {
    Workload workload = std::move(MakeWorkload(SmallWorkload(2, 5))).ValueOrDie();
    Harness harness(&workload, metric.get(), config);
    CooperativeConfig coop;
    coop.cache_bandwidth_avg = 3.0;
    CooperativeScheduler scheduler(coop);
    ASSERT_TRUE(harness.Run(&scheduler).ok());
    for (auto& object : harness.objects()) versions_a.push_back(object.state.version);
  }
  std::vector<int64_t> versions_b;
  {
    Workload workload = std::move(MakeWorkload(SmallWorkload(2, 5))).ValueOrDie();
    Harness harness(&workload, metric.get(), config);
    IdealConfig ideal;
    ideal.cache_bandwidth_avg = 100.0;
    IdealCooperativeScheduler scheduler(ideal);
    ASSERT_TRUE(harness.Run(&scheduler).ok());
    for (auto& object : harness.objects()) versions_b.push_back(object.state.version);
  }
  EXPECT_EQ(versions_a, versions_b);
}

// ------------------------------------ batched-payload delivery (Harness)

/// Injects one hand-built batched refresh (primary object 0, piggybacked
/// payloads for objects 1 and 2) at t >= 5, then one message carrying a
/// *stale* payload for object 1, and records what was shipped.
class PayloadInjectingScheduler : public Scheduler {
 public:
  std::string name() const override { return "payload-injector"; }
  void Initialize(Harness* harness) override { harness_ = harness; }
  void OnObjectUpdate(ObjectIndex, double) override {}

  void Tick(double t) override {
    if (injected_ || t < 5.0) return;
    injected_ = true;
    Message message = harness_->MakeRefreshMessage(0, t);
    for (ObjectIndex index : {ObjectIndex{1}, ObjectIndex{2}}) {
      const Message part = harness_->MakeRefreshMessage(index, t);
      message.extra_refreshes.push_back(
          RefreshPayload{part.object_index, part.value, part.version});
    }
    delivered_values_ = {message.value, message.extra_refreshes[0].value,
                         message.extra_refreshes[1].value};
    delivered_versions_ = {message.version, message.extra_refreshes[0].version,
                           message.extra_refreshes[1].version};
    harness_->DeliverRefresh(message, t);

    // A second batched message whose payload for object 1 is stale
    // (version 0 predates the delivery above): it must not regress the
    // replica even though it rides a fresh primary.
    Message stale = harness_->MakeRefreshMessage(0, t);
    stale.extra_refreshes.push_back(RefreshPayload{1, /*value=*/1e9, /*version=*/0});
    harness_->DeliverRefresh(stale, t);
  }

  Harness* harness_ = nullptr;
  bool injected_ = false;
  std::vector<double> delivered_values_;
  std::vector<int64_t> delivered_versions_;
};

TEST(HarnessTest, ExtraRefreshPayloadsReachEveryGroundTruthReplica) {
  WorkloadConfig wl = SmallWorkload(1, 4, 11);
  wl.rate_lo = 0.2;
  wl.rate_hi = 0.5;
  Workload workload = std::move(MakeWorkload(wl)).ValueOrDie();
  auto metric = MakeMetric(MetricKind::kValueDeviation);
  HarnessConfig config;
  config.warmup = 0.0;
  config.measure = 20.0;
  Harness harness(&workload, metric.get(), config);
  // A second observer must see the piggybacked applies too.
  GroundTruth second_view(&workload, metric.get());
  harness.AddGroundTruth(&second_view);
  PayloadInjectingScheduler scheduler;
  ASSERT_TRUE(harness.Run(&scheduler).ok());
  ASSERT_TRUE(scheduler.injected_);
  ASSERT_EQ(scheduler.delivered_versions_.size(), 3u);

  for (GroundTruth* view : {&harness.ground_truth(), &second_view}) {
    // Objects 0..2 hold exactly the batched payloads (nothing else was
    // ever delivered; the stale follow-up must not have regressed 1).
    for (ObjectIndex i : {ObjectIndex{0}, ObjectIndex{1}, ObjectIndex{2}}) {
      EXPECT_EQ(view->cached_version(i), scheduler.delivered_versions_[i]) << i;
      EXPECT_EQ(view->cached_value(i), scheduler.delivered_values_[i]) << i;
    }
    // Object 3 was never refreshed.
    EXPECT_EQ(view->cached_version(3), 0);
  }
  // MakeRefreshMessage reset the source-side trackers for all three
  // batched objects — they model the cache as holding the shipped version.
  for (ObjectIndex i : {ObjectIndex{0}, ObjectIndex{1}, ObjectIndex{2}}) {
    EXPECT_GE(harness.object(i).tracker().last_refresh_time(), 5.0) << i;
  }
  EXPECT_LT(harness.object(3).tracker().last_refresh_time(), 0.5);
}

// ------------------------------------- priority-heap growth bound

TEST(SourceAgentHeapTest, QueueMemoryProportionalToObjectsNotUpdates) {
  // Fast updaters against a starved cache link: almost every update only
  // piles a fresh entry onto the priority queue (the object rarely wins a
  // send slot). Without automatic compaction the heap would grow with the
  // update count (~hundreds of thousands here); MaybeCompact keeps it
  // within 4x the live object count.
  WorkloadConfig wl = SmallWorkload(2, 20, 7);
  wl.rate_lo = 2.0;
  wl.rate_hi = 5.0;
  Workload workload = std::move(MakeWorkload(wl)).ValueOrDie();
  auto metric = MakeMetric(MetricKind::kValueDeviation);
  HarnessConfig harness_config;
  harness_config.warmup = 0.0;
  harness_config.measure = 1500.0;
  Harness harness(&workload, metric.get(), harness_config);
  CooperativeConfig config;
  config.cache_bandwidth_avg = 1.0;
  CooperativeScheduler scheduler(config);
  ASSERT_TRUE(harness.Run(&scheduler).ok());

  int64_t total_updates = 0;
  for (const auto& object : harness.objects()) total_updates += object.state.version;

  int64_t total_bound = 0;
  for (int j = 0; j < scheduler.num_sources(); ++j) {
    const SourceAgent& source = scheduler.source(j);
    for (int k = 0; k < source.num_channels(); ++k) {
      // The compaction trigger: 4 x live objects + 64, +1 for the push
      // that can land just before compaction runs.
      const size_t bound = 4 * source.channel_num_objects(k) + 65;
      EXPECT_LE(source.queue_size(k), bound) << "source " << j << " channel " << k;
      total_bound += static_cast<int64_t>(bound);
    }
  }
  // The bound is meaningful only if the run really processed far more
  // updates than the heaps are allowed to hold.
  EXPECT_GT(total_updates, 50 * total_bound);
}

}  // namespace
}  // namespace besync
