#include <memory>

#include <gtest/gtest.h>

#include "core/cache.h"
#include "core/harness.h"
#include "core/system.h"
#include "divergence/metric.h"
#include "exp/experiment.h"

namespace besync {
namespace {

// -------------------------------------------------------------- CacheAgent

TEST(CacheAgentTest, UnknownThresholdsSelectedFirst) {
  CacheAgent cache(3);
  Message message;
  message.kind = MessageKind::kRefresh;
  message.source_index = 0;
  message.piggyback_threshold = 5.0;
  cache.RecordRefresh(message, 1.0);
  // Sources 1 and 2 are unknown (+inf) -> they outrank source 0.
  auto targets = cache.SelectFeedbackTargets(2, 2.0);
  ASSERT_EQ(targets.size(), 2u);
  EXPECT_TRUE((targets[0] == 1 && targets[1] == 2) ||
              (targets[0] == 2 && targets[1] == 1));
}

TEST(CacheAgentTest, HighestThresholdFirst) {
  CacheAgent cache(3);
  for (int j = 0; j < 3; ++j) {
    Message message;
    message.source_index = j;
    message.piggyback_threshold = 1.0 + j;
    cache.RecordRefresh(message, 1.0);
  }
  auto targets = cache.SelectFeedbackTargets(1, 2.0);
  ASSERT_EQ(targets.size(), 1u);
  EXPECT_EQ(targets[0], 2);  // threshold 3.0 is the highest
}

TEST(CacheAgentTest, TiesGoToLeastRecentlyFed) {
  CacheAgent cache(2);
  for (int j = 0; j < 2; ++j) {
    Message message;
    message.source_index = j;
    message.piggyback_threshold = 7.0;
    cache.RecordRefresh(message, 1.0);
  }
  auto first = cache.SelectFeedbackTargets(1, 2.0);
  auto second = cache.SelectFeedbackTargets(1, 3.0);
  ASSERT_EQ(first.size(), 1u);
  ASSERT_EQ(second.size(), 1u);
  EXPECT_NE(first[0], second[0]);  // alternates under equal thresholds
}

TEST(CacheAgentTest, LimitRespectsSourceCount) {
  CacheAgent cache(3);
  EXPECT_EQ(cache.SelectFeedbackTargets(100, 1.0).size(), 3u);
  EXPECT_EQ(cache.SelectFeedbackTargets(0, 1.0).size(), 0u);
  EXPECT_EQ(cache.feedback_sent(), 3);
}

// ------------------------------------------------------- Cooperative system

// Shared fixture utilities: small deterministic workloads.
WorkloadConfig SmallWorkload(int sources, int per_source, uint64_t seed = 42) {
  WorkloadConfig config;
  config.num_sources = sources;
  config.objects_per_source = per_source;
  config.rate_lo = 0.05;
  config.rate_hi = 0.5;
  config.seed = seed;
  return config;
}

HarnessConfig ShortRun(double warmup = 50.0, double measure = 300.0) {
  HarnessConfig config;
  config.warmup = warmup;
  config.measure = measure;
  return config;
}

TEST(CooperativeSystemTest, AmpleBandwidthGivesNearZeroDivergence) {
  // 20 objects updating ~0.3/s => ~6 updates/s total; bandwidth 100/s.
  Workload workload = std::move(MakeWorkload(SmallWorkload(2, 10))).ValueOrDie();
  auto metric = MakeMetric(MetricKind::kValueDeviation);
  CooperativeConfig config;
  config.cache_bandwidth_avg = 100.0;
  CooperativeScheduler scheduler(config);
  auto result = RunScheduler(&workload, metric.get(), ShortRun(), &scheduler);
  ASSERT_TRUE(result.ok());
  // Divergence can never be identically zero (updates land mid-tick), but
  // it must be small: each object is stale for at most ~1 tick per update.
  EXPECT_LT(result->per_object_weighted, 0.5);
  EXPECT_GT(result->scheduler.refreshes_delivered, 0);
}

TEST(CooperativeSystemTest, ScarceBandwidthDoesNotFlood) {
  // Heavy overload: ~50 updates/s offered, 5/s of cache bandwidth.
  WorkloadConfig wl = SmallWorkload(10, 10);
  wl.rate_lo = 0.3;
  wl.rate_hi = 0.7;
  Workload workload = std::move(MakeWorkload(wl)).ValueOrDie();
  auto metric = MakeMetric(MetricKind::kValueDeviation);
  CooperativeConfig config;
  config.cache_bandwidth_avg = 5.0;
  CooperativeScheduler scheduler(config);
  auto result = RunScheduler(&workload, metric.get(), ShortRun(), &scheduler);
  ASSERT_TRUE(result.ok());
  // The positive-feedback design keeps the cache queue bounded: the paper's
  // key stability property. Allow slack, but far below the ~5000 messages
  // an uncontrolled sender population would pile up.
  EXPECT_LT(result->scheduler.max_cache_queue, 200);
  // Bandwidth should be well-used despite the conservative thresholds.
  EXPECT_GT(result->scheduler.cache_utilization, 0.5);
}

TEST(CooperativeSystemTest, UtilizationFillsWithFeedback) {
  // Moderate load: the adaptive thresholds should discover spare bandwidth
  // via positive feedback and keep utilization reasonably high.
  WorkloadConfig wl = SmallWorkload(5, 10);
  wl.rate_lo = 0.2;
  wl.rate_hi = 1.0;
  Workload workload = std::move(MakeWorkload(wl)).ValueOrDie();
  auto metric = MakeMetric(MetricKind::kValueDeviation);
  CooperativeConfig config;
  config.cache_bandwidth_avg = 15.0;  // about half the update volume
  CooperativeScheduler scheduler(config);
  auto result = RunScheduler(&workload, metric.get(), ShortRun(), &scheduler);
  ASSERT_TRUE(result.ok());
  EXPECT_GT(result->scheduler.cache_utilization, 0.6);
  EXPECT_GT(result->scheduler.feedback_sent, 0);
}

TEST(CooperativeSystemTest, SourceBandwidthLimitsRespected) {
  WorkloadConfig wl = SmallWorkload(4, 25);
  wl.rate_lo = 0.5;
  wl.rate_hi = 1.0;
  Workload workload = std::move(MakeWorkload(wl)).ValueOrDie();
  auto metric = MakeMetric(MetricKind::kStaleness);
  CooperativeConfig config;
  config.cache_bandwidth_avg = 1000.0;  // cache is not the bottleneck
  config.source_bandwidth_avg = 2.0;    // each source capped at 2 msg/s
  CooperativeScheduler scheduler(config);
  HarnessConfig harness = ShortRun();
  auto result = RunScheduler(&workload, metric.get(), harness, &scheduler);
  ASSERT_TRUE(result.ok());
  // 4 sources x 2 msg/s x 300 s measurement = at most ~2400 refreshes.
  EXPECT_LE(result->scheduler.refreshes_sent, 2500);
}

TEST(CooperativeSystemTest, HigherBandwidthNeverHurts) {
  auto metric = MakeMetric(MetricKind::kValueDeviation);
  double previous = 1e18;
  for (double bandwidth : {2.0, 10.0, 50.0}) {
    Workload workload = std::move(MakeWorkload(SmallWorkload(4, 10))).ValueOrDie();
    CooperativeConfig config;
    config.cache_bandwidth_avg = bandwidth;
    CooperativeScheduler scheduler(config);
    auto result = RunScheduler(&workload, metric.get(), ShortRun(), &scheduler);
    ASSERT_TRUE(result.ok());
    EXPECT_LT(result->per_object_weighted, previous * 1.1);
    previous = result->per_object_weighted;
  }
}

TEST(CooperativeSystemTest, SamplingModeWorks) {
  Workload workload = std::move(MakeWorkload(SmallWorkload(2, 10))).ValueOrDie();
  auto metric = MakeMetric(MetricKind::kValueDeviation);
  CooperativeConfig config;
  config.cache_bandwidth_avg = 20.0;
  config.source.monitor = MonitorMode::kSampling;
  config.source.sampling_interval = 5.0;
  CooperativeScheduler scheduler(config);
  auto result = RunScheduler(&workload, metric.get(), ShortRun(), &scheduler);
  ASSERT_TRUE(result.ok());
  EXPECT_GT(result->scheduler.refreshes_delivered, 0);
  EXPECT_LT(result->per_object_weighted, 5.0);
}

TEST(CooperativeSystemTest, PredictiveSamplingWorks) {
  Workload workload = std::move(MakeWorkload(SmallWorkload(2, 10))).ValueOrDie();
  auto metric = MakeMetric(MetricKind::kValueDeviation);
  CooperativeConfig config;
  config.cache_bandwidth_avg = 20.0;
  config.source.monitor = MonitorMode::kSampling;
  config.source.sampling_interval = 10.0;
  config.source.predictive_sampling = true;
  CooperativeScheduler scheduler(config);
  auto result = RunScheduler(&workload, metric.get(), ShortRun(), &scheduler);
  ASSERT_TRUE(result.ok());
  EXPECT_GT(result->scheduler.refreshes_delivered, 0);
}

TEST(CooperativeSystemTest, BoundPolicyRuns) {
  Workload workload = std::move(MakeWorkload(SmallWorkload(2, 10))).ValueOrDie();
  auto metric = MakeMetric(MetricKind::kValueDeviation);
  CooperativeConfig config;
  config.cache_bandwidth_avg = 10.0;
  config.policy = PolicyKind::kBound;
  CooperativeScheduler scheduler(config);
  auto result = RunScheduler(&workload, metric.get(), ShortRun(), &scheduler);
  ASSERT_TRUE(result.ok());
  // Bound-based refreshing is update-oblivious but must still refresh.
  EXPECT_GT(result->scheduler.refreshes_delivered, 100);
}

TEST(CooperativeSystemTest, FluctuatingEverythingStaysStable) {
  WorkloadConfig wl = SmallWorkload(5, 20);
  wl.weight_fluctuation_amplitude = 0.5;
  Workload workload = std::move(MakeWorkload(wl)).ValueOrDie();
  auto metric = MakeMetric(MetricKind::kLag);
  CooperativeConfig config;
  config.cache_bandwidth_avg = 10.0;
  config.source_bandwidth_avg = 5.0;
  config.bandwidth_change_rate = 0.25;
  CooperativeScheduler scheduler(config);
  auto result = RunScheduler(&workload, metric.get(), ShortRun(), &scheduler);
  ASSERT_TRUE(result.ok());
  EXPECT_LT(result->scheduler.max_cache_queue, 500);
  EXPECT_GT(result->scheduler.refreshes_delivered, 0);
}

TEST(CooperativeSystemTest, MeanThresholdPositive) {
  Workload workload = std::move(MakeWorkload(SmallWorkload(3, 10))).ValueOrDie();
  auto metric = MakeMetric(MetricKind::kValueDeviation);
  CooperativeConfig config;
  config.cache_bandwidth_avg = 10.0;
  CooperativeScheduler scheduler(config);
  auto result = RunScheduler(&workload, metric.get(), ShortRun(), &scheduler);
  ASSERT_TRUE(result.ok());
  EXPECT_GT(result->scheduler.mean_threshold, 0.0);
}

TEST(HarnessTest, RunTwiceFails) {
  Workload workload = std::move(MakeWorkload(SmallWorkload(1, 2))).ValueOrDie();
  auto metric = MakeMetric(MetricKind::kStaleness);
  HarnessConfig config;
  config.warmup = 0.0;
  config.measure = 10.0;
  Harness harness(&workload, metric.get(), config);
  CooperativeConfig coop;
  CooperativeScheduler scheduler(coop);
  ASSERT_TRUE(harness.Run(&scheduler).ok());
  CooperativeScheduler scheduler2(coop);
  EXPECT_TRUE(harness.Run(&scheduler2).IsFailedPrecondition());
}

TEST(HarnessTest, UpdateStreamsIdenticalAcrossSchedulers) {
  // The per-object RNG seeds make update streams independent of scheduler
  // decisions: final versions must match exactly across two different
  // schedulers on regenerated workloads.
  auto metric = MakeMetric(MetricKind::kStaleness);
  HarnessConfig config;
  config.warmup = 0.0;
  config.measure = 100.0;

  std::vector<int64_t> versions_a;
  {
    Workload workload = std::move(MakeWorkload(SmallWorkload(2, 5))).ValueOrDie();
    Harness harness(&workload, metric.get(), config);
    CooperativeConfig coop;
    coop.cache_bandwidth_avg = 3.0;
    CooperativeScheduler scheduler(coop);
    ASSERT_TRUE(harness.Run(&scheduler).ok());
    for (auto& object : harness.objects()) versions_a.push_back(object.state.version);
  }
  std::vector<int64_t> versions_b;
  {
    Workload workload = std::move(MakeWorkload(SmallWorkload(2, 5))).ValueOrDie();
    Harness harness(&workload, metric.get(), config);
    IdealConfig ideal;
    ideal.cache_bandwidth_avg = 100.0;
    IdealCooperativeScheduler scheduler(ideal);
    ASSERT_TRUE(harness.Run(&scheduler).ok());
    for (auto& object : harness.objects()) versions_b.push_back(object.state.version);
  }
  EXPECT_EQ(versions_a, versions_b);
}

}  // namespace
}  // namespace besync
