// Multi-tier relay topology tests.
//
// The load-bearing anchor: a tree of *pass-through* relays (unconstrained
// ingress/egress, zero latency, no loss) must reproduce the flat topology
// bitwise — including against the historical single-cache goldens of
// tests/golden_test.cc — so the flat engine is exactly the degenerate case
// of the relay engine. The remaining tests cover the TopologySpec
// structure, the Network routing tables, the RelayAgent store-and-forward
// semantics, and the matched-bandwidth topology sweep.

#include <gtest/gtest.h>

#include <vector>

#include "core/relay.h"
#include "core/system.h"
#include "data/topology.h"
#include "exp/experiment.h"
#include "exp/multicache.h"
#include "net/network.h"

namespace besync {
namespace {

// ------------------------------------------------------------ TopologySpec

TEST(TopologySpecTest, MakeRelayTreeShapes) {
  // 8 leaves, fanout 2, one relay tier: 4 relays (nodes 8..11), all tier-1.
  TopologySpec one = MakeRelayTree(8, 2, 1);
  EXPECT_EQ(one.num_leaves, 8);
  EXPECT_EQ(one.num_nodes(), 12);
  EXPECT_EQ(one.num_relays(), 4);
  EXPECT_EQ(one.depth(), 2);
  for (int leaf = 0; leaf < 8; ++leaf) EXPECT_EQ(one.parent[leaf], 8 + leaf / 2);
  for (int relay = 8; relay < 12; ++relay) EXPECT_EQ(one.parent[relay], -1);
  EXPECT_TRUE(one.Validate(8).ok());

  // Two relay tiers: 4 + 2 relays, leaves at tier 3.
  TopologySpec two = MakeRelayTree(8, 2, 2);
  EXPECT_EQ(two.num_nodes(), 14);
  EXPECT_EQ(two.num_relays(), 6);
  EXPECT_EQ(two.depth(), 3);
  EXPECT_EQ(two.parent[8], 12);
  EXPECT_EQ(two.parent[11], 13);
  EXPECT_EQ(two.parent[12], -1);
  EXPECT_EQ(two.TierOf(0), 3);
  EXPECT_EQ(two.TierOf(8), 2);
  EXPECT_EQ(two.TierOf(12), 1);
  EXPECT_TRUE(two.Validate(8).ok());

  // Zero tiers is the flat topology.
  TopologySpec flat = MakeRelayTree(8, 2, 0);
  EXPECT_TRUE(flat.flat());
  EXPECT_TRUE(flat.Validate(8).ok());
  EXPECT_EQ(flat.depth(), 1);
  EXPECT_EQ(TopologyLabel(flat), "flat");
  EXPECT_EQ(TopologyLabel(two), "tree(relays=6,depth=3)");
}

TEST(TopologySpecTest, SubtreeLeafCountsAndOrder) {
  TopologySpec spec = MakeRelayTree(8, 2, 2);
  const std::vector<int64_t> counts = spec.SubtreeLeafCounts();
  for (int leaf = 0; leaf < 8; ++leaf) EXPECT_EQ(counts[leaf], 1);
  for (int relay = 8; relay < 12; ++relay) EXPECT_EQ(counts[relay], 2);
  for (int relay = 12; relay < 14; ++relay) EXPECT_EQ(counts[relay], 4);
  // Bottom-up: the tier just above the leaves before the top tier.
  const std::vector<int32_t> bottom_up = spec.RelaysBottomUp();
  ASSERT_EQ(bottom_up.size(), 6u);
  EXPECT_EQ(bottom_up[0], 8);
  EXPECT_EQ(bottom_up[3], 11);
  EXPECT_EQ(bottom_up[4], 12);
  EXPECT_EQ(bottom_up[5], 13);
}

TEST(TopologySpecTest, ValidateRejectsMalformedTrees) {
  TopologySpec spec = MakeRelayTree(4, 2, 1);
  EXPECT_FALSE(spec.Validate(3).ok());  // leaf count mismatch

  TopologySpec leaf_parent = spec;
  leaf_parent.parent[0] = 1;  // a leaf cannot be a parent
  EXPECT_FALSE(leaf_parent.Validate(4).ok());

  TopologySpec cycle = spec;
  cycle.parent.push_back(-1);  // node 6
  cycle.parent[4] = 6;
  cycle.parent[6] = 4;  // 4 <-> 6
  EXPECT_FALSE(cycle.Validate(4).ok());

  TopologySpec childless = spec;
  childless.parent.push_back(-1);  // relay 6 with no children
  EXPECT_FALSE(childless.Validate(4).ok());

  TopologySpec bad_loss = spec;
  bad_loss.edge_loss = {0.0, 0.0, 0.0, 0.0, 1.5};
  EXPECT_FALSE(bad_loss.Validate(4).ok());
}

// ----------------------------------------------------------- Network routing

TEST(NetworkTopologyTest, RoutingTables) {
  NetworkConfig config;
  config.num_sources = 2;
  config.num_caches = 8;
  config.topology = MakeRelayTree(8, 2, 2);
  Rng rng(1);
  Network network(config, &rng);
  EXPECT_TRUE(network.has_relays());
  EXPECT_EQ(network.num_nodes(), 14);
  // Leaf 5's path: 5 -> 10 -> 13; refreshes enter at the tier-1 ancestor.
  EXPECT_EQ(network.first_hop(5), 13);
  EXPECT_EQ(network.NextHop(13, 5), 10);
  EXPECT_EQ(network.NextHop(10, 5), 5);
  // Leaf 0 lives under the other top relay.
  EXPECT_EQ(network.first_hop(0), 12);
  EXPECT_EQ(network.NextHop(12, 0), 8);
  // Downstream order visits parents before children.
  const std::vector<int32_t>& down = network.downstream_relays();
  ASSERT_EQ(down.size(), 6u);
  EXPECT_EQ(down[0], 12);
  EXPECT_EQ(down[1], 13);
  // Only the top relays are source-fed.
  EXPECT_EQ(network.tier1_nodes(), (std::vector<int32_t>{12, 13}));
}

TEST(NetworkTopologyTest, ControlMailPumpsToTierOne) {
  NetworkConfig config;
  config.num_sources = 1;
  config.num_caches = 4;
  config.topology = MakeRelayTree(4, 2, 1);  // relays 4, 5
  Rng rng(1);
  Network network(config, &rng);
  Message feedback;
  feedback.kind = MessageKind::kFeedback;
  network.SendToSource(/*cache_id=*/3, /*source_index=*/0, feedback);
  network.SendToSource(/*cache_id=*/0, /*source_index=*/0, feedback);
  // Not deliverable until the next tick, exactly like the flat channel.
  network.BeginTick(0.0, 1.0);
  EXPECT_EQ(network.PumpControlUpstream(), 2);
  EXPECT_TRUE(network.TakeSourceMail(/*node=*/0, 0).empty());
  const std::vector<Message> at_four = network.TakeSourceMail(/*node=*/4, 0);
  ASSERT_EQ(at_four.size(), 1u);
  EXPECT_EQ(at_four[0].cache_id, 0);  // originating leaf survives the hops
  const std::vector<Message> at_five = network.TakeSourceMail(/*node=*/5, 0);
  ASSERT_EQ(at_five.size(), 1u);
  EXPECT_EQ(at_five[0].cache_id, 3);
}

// -------------------------------------------------------------- RelayAgent

Message MakeRefresh(int32_t cache_id, double priority, double send_time,
                    int64_t cost = 1) {
  Message message;
  message.kind = MessageKind::kRefresh;
  message.cache_id = cache_id;
  message.forward_priority = priority;
  message.send_time = send_time;
  message.cost = cost;
  return message;
}

TEST(RelayAgentTest, FifoPreservesArrivalOrder) {
  RelayAgent relay(4, RelayForwardPolicy::kFifo, /*ingress_latency=*/0.0);
  relay.OnArrival(MakeRefresh(0, 1.0, 0.0), 1.0);
  relay.OnArrival(MakeRefresh(1, 9.0, 0.0), 1.0);
  relay.OnArrival(MakeRefresh(2, 5.0, 0.0), 1.0);
  std::vector<int32_t> order;
  const int64_t sent = relay.Forward(
      1.0, [](int64_t) { return true; },
      [&order](const Message& m) { order.push_back(m.cache_id); });
  EXPECT_EQ(sent, 3);
  EXPECT_EQ(order, (std::vector<int32_t>{0, 1, 2}));
}

TEST(RelayAgentTest, PriorityDrainsHighestFirstWithFifoTies) {
  RelayAgent relay(4, RelayForwardPolicy::kPriority, 0.0);
  relay.OnArrival(MakeRefresh(0, 1.0, 0.0), 1.0);
  relay.OnArrival(MakeRefresh(1, 9.0, 0.0), 1.0);
  relay.OnArrival(MakeRefresh(2, 9.0, 0.0), 1.0);  // tie with cache 1
  relay.OnArrival(MakeRefresh(3, 5.0, 0.0), 1.0);
  std::vector<int32_t> order;
  relay.Forward(
      1.0, [](int64_t) { return true; },
      [&order](const Message& m) { order.push_back(m.cache_id); });
  EXPECT_EQ(order, (std::vector<int32_t>{1, 2, 3, 0}));
}

TEST(RelayAgentTest, EgressBudgetBoundsForwarding) {
  RelayAgent relay(4, RelayForwardPolicy::kFifo, 0.0);
  for (int i = 0; i < 5; ++i) relay.OnArrival(MakeRefresh(i, 1.0, 0.0), 1.0);
  int64_t budget = 2;
  std::vector<int32_t> order;
  const int64_t sent = relay.Forward(
      1.0,
      [&budget](int64_t cost) {
        if (budget <= 0) return false;
        budget -= cost;
        return true;
      },
      [&order](const Message& m) { order.push_back(m.cache_id); });
  EXPECT_EQ(sent, 2);
  EXPECT_EQ(relay.store_size(), 3u);
  // Denied messages are forwarded first (FIFO) next time, and their store
  // wait is accounted.
  relay.Forward(
      3.0, [](int64_t) { return true; },
      [&order](const Message& m) { order.push_back(m.cache_id); });
  EXPECT_EQ(order, (std::vector<int32_t>{0, 1, 2, 3, 4}));
  EXPECT_EQ(relay.forwarded(), 5);
  // Messages 2..4 waited 2 s each in the store.
  EXPECT_DOUBLE_EQ(relay.total_queue_delay(), 6.0);
  EXPECT_DOUBLE_EQ(relay.total_transit_delay(), 2.0 * 1.0 + 3.0 * 3.0);
}

TEST(RelayAgentTest, IngressLatencyDelaysEligibility) {
  RelayAgent relay(4, RelayForwardPolicy::kFifo, /*ingress_latency=*/5.0);
  relay.OnArrival(MakeRefresh(0, 1.0, 0.0), 1.0);
  relay.OnArrival(MakeRefresh(1, 1.0, 0.0), 3.0);
  std::vector<int32_t> order;
  auto sink = [&order](const Message& m) { order.push_back(m.cache_id); };
  EXPECT_EQ(relay.Forward(4.0, [](int64_t) { return true; }, sink), 0);
  EXPECT_EQ(relay.Forward(6.0, [](int64_t) { return true; }, sink), 1);
  EXPECT_EQ(relay.Forward(8.0, [](int64_t) { return true; }, sink), 1);
  EXPECT_EQ(order, (std::vector<int32_t>{0, 1}));
}

// ------------------------------------- degenerate pass-through equivalence

/// The historical CooperativeTrigger golden (tests/golden_test.cc), with a
/// configurable relay-tree depth layered on the single cache. Pass-through
/// relays must not move a single bit of it.
ExperimentConfig GoldenTriggerConfig(int relay_tiers) {
  ExperimentConfig config;
  config.scheduler = SchedulerKind::kCooperative;
  config.workload.num_sources = 8;
  config.workload.objects_per_source = 25;
  config.workload.seed = 42;
  config.workload.relay_tiers = relay_tiers;
  config.workload.relay_fanout = 2;
  config.harness.warmup = 50.0;
  config.harness.measure = 300.0;
  config.harness.seed = 7;
  config.cache_bandwidth_avg = 12.0;
  config.source_bandwidth_avg = 4.0;
  return config;
}

TEST(DegenerateTreeTest, PassThroughTreeReproducesGoldenRun) {
  for (int tiers : {1, 2, 3}) {
    const auto result = RunExperiment(GoldenTriggerConfig(tiers));
    ASSERT_TRUE(result.ok()) << result.status().ToString();
    // The exact pre-relay golden values — equality, not tolerance.
    EXPECT_EQ(result->total_weighted_divergence, 226.69154803746471)
        << "relay_tiers=" << tiers;
    EXPECT_EQ(result->scheduler.refreshes_sent, 3150);
    EXPECT_EQ(result->scheduler.feedback_sent, 436);
    // The relays did real work (every delivered refresh crossed each tier)
    // without perturbing the outcome.
    EXPECT_GT(result->scheduler.relays_forwarded, 0);
    EXPECT_EQ(result->scheduler.relay_queue_delay_mean, 0.0);
  }
}

/// Runs a multi-cache grid point flat and as a pass-through tree; every
/// reported number must match exactly (bitwise doubles).
void ExpectTreeEqualsFlat(ExperimentConfig flat_config, int relay_tiers,
                          int fanout) {
  const auto flat = RunExperiment(flat_config);
  ASSERT_TRUE(flat.ok()) << flat.status().ToString();
  ExperimentConfig tree_config = flat_config;
  tree_config.workload.relay_tiers = relay_tiers;
  tree_config.workload.relay_fanout = fanout;
  const auto tree = RunExperiment(tree_config);
  ASSERT_TRUE(tree.ok()) << tree.status().ToString();

  EXPECT_EQ(tree->total_weighted_divergence, flat->total_weighted_divergence);
  ASSERT_EQ(tree->per_cache_weighted.size(), flat->per_cache_weighted.size());
  for (size_t c = 0; c < flat->per_cache_weighted.size(); ++c) {
    EXPECT_EQ(tree->per_cache_weighted[c], flat->per_cache_weighted[c]) << c;
  }
  EXPECT_EQ(tree->per_object_weighted, flat->per_object_weighted);
  EXPECT_EQ(tree->per_object_unweighted, flat->per_object_unweighted);
  EXPECT_EQ(tree->scheduler.refreshes_sent, flat->scheduler.refreshes_sent);
  EXPECT_EQ(tree->scheduler.refreshes_delivered,
            flat->scheduler.refreshes_delivered);
  EXPECT_EQ(tree->scheduler.feedback_sent, flat->scheduler.feedback_sent);
  EXPECT_EQ(tree->scheduler.mean_threshold, flat->scheduler.mean_threshold);
}

TEST(DegenerateTreeTest, MultiCachePartitionedTreeEqualsFlat) {
  ExperimentConfig config;
  config.scheduler = SchedulerKind::kCooperative;
  config.workload.num_sources = 8;
  config.workload.objects_per_source = 10;
  config.workload.num_caches = 4;
  config.workload.interest_pattern = InterestPattern::kPartitionedBySource;
  config.workload.seed = 5;
  config.harness.warmup = 40.0;
  config.harness.measure = 300.0;
  config.cache_bandwidth_avg = 6.0;
  ExpectTreeEqualsFlat(config, /*relay_tiers=*/1, /*fanout=*/2);
  ExpectTreeEqualsFlat(config, /*relay_tiers=*/2, /*fanout=*/2);
}

TEST(DegenerateTreeTest, EquivalenceHoldsWithLossAndFluctuatingBandwidth) {
  // Loss consumes the scheduler RNG per leaf and fluctuating bandwidth
  // consumes it per link — the exact draws the relay construction must not
  // disturb.
  ExperimentConfig config;
  config.scheduler = SchedulerKind::kCooperative;
  config.workload.num_sources = 6;
  config.workload.objects_per_source = 10;
  config.workload.num_caches = 3;
  config.workload.interest_pattern = InterestPattern::kZipfOverlap;
  config.workload.seed = 77;
  config.harness.warmup = 30.0;
  config.harness.measure = 200.0;
  config.cache_bandwidth_avg = 8.0;
  config.bandwidth_change_rate = 0.05;
  config.loss_rate = 0.1;
  ExpectTreeEqualsFlat(config, /*relay_tiers=*/1, /*fanout=*/2);
  ExpectTreeEqualsFlat(config, /*relay_tiers=*/2, /*fanout=*/3);
}

// ----------------------------------------- constrained-tree behavior

TEST(RelayTreeTest, OversubscribedRelaysIncreaseDivergence) {
  ExperimentConfig config;
  config.scheduler = SchedulerKind::kCooperative;
  config.workload.num_sources = 8;
  config.workload.objects_per_source = 10;
  config.workload.num_caches = 4;
  config.workload.interest_pattern = InterestPattern::kPartitionedBySource;
  config.workload.seed = 5;
  config.workload.relay_tiers = 1;
  config.workload.relay_fanout = 2;
  config.harness.warmup = 40.0;
  config.harness.measure = 300.0;
  config.cache_bandwidth_avg = 6.0;

  // Pass-through tree == flat baseline.
  const auto pass_through = RunExperiment(config);
  ASSERT_TRUE(pass_through.ok());
  // Relay edges at half their subtree demand throttle the tree.
  config.workload.relay_bandwidth_factor = 0.5;
  const auto throttled = RunExperiment(config);
  ASSERT_TRUE(throttled.ok());
  EXPECT_GT(throttled->total_weighted_divergence,
            pass_through->total_weighted_divergence);
  EXPECT_LT(throttled->scheduler.refreshes_delivered,
            pass_through->scheduler.refreshes_delivered);
  EXPECT_GT(throttled->scheduler.relay_transit_delay_mean, 0.0);
  // Control mail kept flowing upstream through the relays.
  EXPECT_GT(throttled->scheduler.relay_control_moved, 0);
  EXPECT_GT(throttled->scheduler.feedback_sent, 0);
}

TEST(RelayTreeTest, BaselineSchedulersRejectTrees) {
  ExperimentConfig config;
  config.scheduler = SchedulerKind::kCGM1;
  config.workload.num_sources = 2;
  config.workload.objects_per_source = 5;
  config.workload.relay_tiers = 1;
  config.harness.warmup = 10.0;
  config.harness.measure = 50.0;
  const auto result = RunExperiment(config);
  EXPECT_FALSE(result.ok());
}

TEST(RelayTreeTest, TopologySweepMatchesTotalBandwidth) {
  TopologySweepConfig config;
  config.base.workload.num_sources = 8;
  config.base.workload.objects_per_source = 5;
  config.base.workload.num_caches = 8;
  config.base.workload.interest_pattern = InterestPattern::kPartitionedBySource;
  config.base.workload.seed = 3;
  config.base.harness.warmup = 20.0;
  config.base.harness.measure = 100.0;
  config.base.cache_bandwidth_avg = 4.0;
  config.relay_tier_counts = {0, 1};
  config.fanout = 4;
  const auto points = RunTopologySweep(config);
  ASSERT_TRUE(points.ok()) << points.status().ToString();
  // flat + (fifo, priority) for the tree.
  ASSERT_EQ(points->size(), 3u);
  EXPECT_EQ((*points)[0].relay_tiers, 0);
  EXPECT_EQ((*points)[0].num_edges, 8);
  EXPECT_DOUBLE_EQ((*points)[0].leaf_edge_bandwidth, 4.0);
  // Tree: 8 leaf edges (weight 1) + 2 relay edges (weight 4) share
  // 8 x 4 = 32 over total weight 16 -> leaf edges get 2.0 each.
  EXPECT_EQ((*points)[1].relay_tiers, 1);
  EXPECT_EQ((*points)[1].num_edges, 10);
  EXPECT_DOUBLE_EQ((*points)[1].leaf_edge_bandwidth, 2.0);
  EXPECT_EQ((*points)[1].forward, RelayForwardPolicy::kFifo);
  EXPECT_EQ((*points)[2].forward, RelayForwardPolicy::kPriority);
  // Identical workloads: the two forwarding policies deliver comparable
  // refresh volume, and every point produced a real run.
  for (const TopologySweepPoint& point : *points) {
    EXPECT_GT(point.result.scheduler.refreshes_delivered, 0);
  }
}

}  // namespace
}  // namespace besync
