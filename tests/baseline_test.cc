#include <cmath>
#include <memory>

#include <gtest/gtest.h>

#include "baseline/cgm.h"
#include "baseline/freq_allocation.h"
#include "baseline/ideal.h"
#include "baseline/ideal_cache.h"
#include "baseline/lambda_estimator.h"
#include "baseline/round_robin.h"
#include "core/system.h"
#include "divergence/metric.h"

namespace besync {
namespace {

// ------------------------------------------------------- Freshness algebra

TEST(PoissonFreshnessTest, KnownValues) {
  // F = (1 - e^-x)/x with x = lambda/f.
  EXPECT_NEAR(PoissonFreshness(1.0, 1.0), 1.0 - std::exp(-1.0), 1e-12);
  EXPECT_DOUBLE_EQ(PoissonFreshness(0.0, 1.0), 1.0);   // never changes
  EXPECT_DOUBLE_EQ(PoissonFreshness(1.0, 0.0), 0.0);   // never refreshed
  EXPECT_NEAR(PoissonFreshness(0.1, 100.0), 1.0, 1e-3);  // hot refresh rate
}

TEST(PoissonFreshnessTest, IncreasingAndConcaveInFrequency) {
  const double lambda = 0.5;
  double previous = PoissonFreshness(lambda, 0.01);
  double previous_gain = 1e18;
  for (double f = 0.1; f < 10.0; f += 0.1) {
    const double current = PoissonFreshness(lambda, f);
    EXPECT_GT(current, previous);
    const double gain = current - previous;
    EXPECT_LT(gain, previous_gain + 1e-12);  // concavity
    previous_gain = gain;
    previous = current;
  }
}

TEST(PoissonFreshnessMarginalTest, MatchesNumericalDerivative) {
  for (double lambda : {0.1, 0.5, 2.0}) {
    for (double f : {0.05, 0.5, 3.0}) {
      const double h = 1e-6;
      const double numeric =
          (PoissonFreshness(lambda, f + h) - PoissonFreshness(lambda, f - h)) /
          (2.0 * h);
      EXPECT_NEAR(PoissonFreshnessMarginal(lambda, f), numeric, 1e-5);
    }
  }
}

TEST(PoissonFreshnessMarginalTest, LimitAtZeroIsInverseLambda) {
  EXPECT_DOUBLE_EQ(PoissonFreshnessMarginal(0.5, 0.0), 2.0);
  EXPECT_NEAR(PoissonFreshnessMarginal(0.5, 1e-9), 2.0, 1e-6);
}

// ---------------------------------------------------------- CGM allocation

TEST(FreshnessAllocationTest, BudgetBinds) {
  std::vector<double> lambdas{0.1, 0.3, 0.5, 0.9};
  auto result = SolveFreshnessAllocation(lambdas, {}, 2.0);
  ASSERT_TRUE(result.ok());
  double total = 0.0;
  for (double f : result->frequencies) {
    EXPECT_GE(f, 0.0);
    total += f;
  }
  EXPECT_NEAR(total, 2.0, 1e-6);
}

TEST(FreshnessAllocationTest, MarginalsEqualizedAmongActive) {
  std::vector<double> lambdas{0.2, 0.4, 0.8};
  auto result = SolveFreshnessAllocation(lambdas, {}, 3.0);
  ASSERT_TRUE(result.ok());
  for (size_t i = 0; i < lambdas.size(); ++i) {
    if (result->frequencies[i] > 1e-9) {
      EXPECT_NEAR(PoissonFreshnessMarginal(lambdas[i], result->frequencies[i]),
                  result->mu, result->mu * 0.02);
    }
  }
}

TEST(FreshnessAllocationTest, HotObjectsStarvedUnderContention) {
  // CGM's hallmark: with tight bandwidth it is optimal to give rapidly
  // changing objects zero refreshes.
  std::vector<double> lambdas{0.01, 0.01, 0.01, 5.0};
  auto result = SolveFreshnessAllocation(lambdas, {}, 0.05);
  ASSERT_TRUE(result.ok());
  EXPECT_DOUBLE_EQ(result->frequencies[3], 0.0);
  EXPECT_GT(result->frequencies[0], 0.0);
}

TEST(FreshnessAllocationTest, AmpleBandwidthCoversEveryone) {
  std::vector<double> lambdas{0.1, 1.0, 3.0};
  auto result = SolveFreshnessAllocation(lambdas, {}, 1000.0);
  ASSERT_TRUE(result.ok());
  for (double f : result->frequencies) EXPECT_GT(f, 1.0);
}

TEST(FreshnessAllocationTest, WeightsBiasAllocation) {
  std::vector<double> lambdas{0.5, 0.5};
  std::vector<double> weights{10.0, 1.0};
  auto result = SolveFreshnessAllocation(lambdas, weights, 1.0);
  ASSERT_TRUE(result.ok());
  EXPECT_GT(result->frequencies[0], result->frequencies[1]);
}

TEST(FreshnessAllocationTest, ZeroBandwidth) {
  auto result = SolveFreshnessAllocation({0.5}, {}, 0.0);
  ASSERT_TRUE(result.ok());
  EXPECT_DOUBLE_EQ(result->frequencies[0], 0.0);
}

TEST(FreshnessAllocationTest, InvalidInputsRejected) {
  EXPECT_FALSE(SolveFreshnessAllocation({}, {}, 1.0).ok());
  EXPECT_FALSE(SolveFreshnessAllocation({0.5}, {1.0, 2.0}, 1.0).ok());
  EXPECT_FALSE(SolveFreshnessAllocation({0.5}, {}, -1.0).ok());
}

TEST(FreshnessAllocationTest, AllocationMaximizesObjective) {
  // Compare against random perturbations: no feasible perturbation should
  // beat the solver's objective.
  std::vector<double> lambdas{0.1, 0.4, 0.7, 1.5};
  const double budget = 1.2;
  auto result = SolveFreshnessAllocation(lambdas, {}, budget);
  ASSERT_TRUE(result.ok());
  Rng rng(5);
  for (int trial = 0; trial < 200; ++trial) {
    // Random feasible allocation on the simplex.
    std::vector<double> alternative(lambdas.size());
    double total = 0.0;
    for (double& f : alternative) {
      f = rng.Exponential(1.0);
      total += f;
    }
    double objective = 0.0;
    for (size_t i = 0; i < lambdas.size(); ++i) {
      alternative[i] *= budget / total;
      objective += PoissonFreshness(lambdas[i], alternative[i]);
    }
    EXPECT_LE(objective, result->total_weighted_freshness + 1e-6);
  }
}

// -------------------------------------------------------------- Estimators

TEST(BooleanChangeEstimatorTest, PriorBeforeMinPolls) {
  BooleanChangeEstimator estimator(0.7, 3, 0.0);
  EXPECT_DOUBLE_EQ(estimator.Estimate(), 0.7);
  estimator.RecordPoll(1.0, true, 0.5);
  EXPECT_DOUBLE_EQ(estimator.Estimate(), 0.7);
}

TEST(BooleanChangeEstimatorTest, ConvergesToTrueRate) {
  const double lambda = 0.3;
  const double tau = 1.0;
  Rng rng(9);
  BooleanChangeEstimator estimator(1.0, 3, 0.0);
  double t = 0.0;
  for (int i = 0; i < 20000; ++i) {
    t += tau;
    const bool changed = rng.Poisson(lambda * tau) > 0;
    estimator.RecordPoll(t, changed, -1.0);
  }
  EXPECT_NEAR(estimator.Estimate(), lambda, 0.02);
}

TEST(BooleanChangeEstimatorTest, AllChangedStaysFinite) {
  BooleanChangeEstimator estimator(1.0, 1, 0.0);
  for (int i = 1; i <= 100; ++i) estimator.RecordPoll(i, true, i - 0.5);
  EXPECT_TRUE(std::isfinite(estimator.Estimate()));
  EXPECT_GT(estimator.Estimate(), 1.0);  // clearly hot
}

TEST(LastModifiedEstimatorTest, ConvergesToTrueRate) {
  const double lambda = 0.3;
  const double tau = 1.0;
  Rng rng(10);
  LastModifiedEstimator estimator(1.0, 3, 0.0);
  double t = 0.0;
  double last_update = -1.0;
  for (int i = 0; i < 20000; ++i) {
    const double start = t;
    t += tau;
    // Simulate the Poisson process within the interval to find the last
    // update before the poll.
    double u = start;
    bool changed = false;
    while (true) {
      u += rng.Exponential(lambda);
      if (u > t) break;
      last_update = u;
      changed = true;
    }
    estimator.RecordPoll(t, changed, changed ? last_update : -1.0);
  }
  EXPECT_NEAR(estimator.Estimate(), lambda, 0.02);
}

TEST(LastModifiedEstimatorTest, BeatsBooleanAtSparsePolling) {
  // When polls are much rarer than updates, the boolean estimator saturates
  // (every poll sees a change) while the last-modified estimator still
  // measures the quiet gaps. This is CGM1's advantage over CGM2.
  const double lambda = 2.0;
  const double tau = 5.0;  // ~10 updates per poll
  Rng rng(11);
  BooleanChangeEstimator boolean(1.0, 3, 0.0);
  LastModifiedEstimator last_modified(1.0, 3, 0.0);
  double t = 0.0;
  double last_update = -1.0;
  for (int i = 0; i < 5000; ++i) {
    const double start = t;
    t += tau;
    double u = start;
    bool changed = false;
    while (true) {
      u += rng.Exponential(lambda);
      if (u > t) break;
      last_update = u;
      changed = true;
    }
    boolean.RecordPoll(t, changed, -1.0);
    last_modified.RecordPoll(t, changed, changed ? last_update : -1.0);
  }
  const double boolean_error = std::abs(boolean.Estimate() - lambda);
  const double last_modified_error = std::abs(last_modified.Estimate() - lambda);
  EXPECT_LT(last_modified_error, boolean_error);
  EXPECT_NEAR(last_modified.Estimate(), lambda, 0.2);
}

// ------------------------------------------------------------- Schedulers

WorkloadConfig SmallWorkload(uint64_t seed = 7) {
  WorkloadConfig config;
  config.num_sources = 4;
  config.objects_per_source = 10;
  config.rate_lo = 0.05;
  config.rate_hi = 0.5;
  config.seed = seed;
  return config;
}

HarnessConfig ShortRun() {
  HarnessConfig config;
  config.warmup = 50.0;
  config.measure = 300.0;
  return config;
}

TEST(IdealCooperativeTest, AmpleBandwidthTracksPerfectly) {
  Workload workload = std::move(MakeWorkload(SmallWorkload())).ValueOrDie();
  auto metric = MakeMetric(MetricKind::kValueDeviation);
  IdealConfig config;
  config.cache_bandwidth_avg = 1000.0;
  IdealCooperativeScheduler scheduler(config);
  auto result = RunScheduler(&workload, metric.get(), ShortRun(), &scheduler);
  ASSERT_TRUE(result.ok());
  // Refreshes are instantaneous but still happen on tick boundaries, so the
  // residual is below half the mean per-object update-induced divergence.
  EXPECT_LT(result->per_object_weighted, 0.3);
}

TEST(IdealCooperativeTest, RespectsSourceBandwidth) {
  Workload workload = std::move(MakeWorkload(SmallWorkload())).ValueOrDie();
  auto metric = MakeMetric(MetricKind::kStaleness);
  IdealConfig config;
  config.cache_bandwidth_avg = 1000.0;
  config.source_bandwidth_avg = 1.0;  // 4 sources -> <= 4 refreshes/s total
  IdealCooperativeScheduler scheduler(config);
  auto result = RunScheduler(&workload, metric.get(), ShortRun(), &scheduler);
  ASSERT_TRUE(result.ok());
  EXPECT_LE(result->scheduler.refreshes_sent, 4 * 300 + 50);
}

TEST(IdealCacheBasedTest, RunsAndRefreshesAtBudget) {
  Workload workload = std::move(MakeWorkload(SmallWorkload())).ValueOrDie();
  auto metric = MakeMetric(MetricKind::kStaleness);
  CacheDrivenConfig config;
  config.cache_bandwidth_avg = 10.0;
  IdealCacheBasedScheduler scheduler(config);
  auto result = RunScheduler(&workload, metric.get(), ShortRun(), &scheduler);
  ASSERT_TRUE(result.ok());
  // ~10 refreshes/s over 300 s of measurement.
  EXPECT_NEAR(static_cast<double>(result->scheduler.refreshes_delivered),
              3000.0, 600.0);
}

TEST(CGMSchedulerTest, PollsCostRoundTrips) {
  Workload workload = std::move(MakeWorkload(SmallWorkload())).ValueOrDie();
  auto metric = MakeMetric(MetricKind::kStaleness);
  CGMConfig config;
  config.network.cache_bandwidth_avg = 10.0;
  config.variant = CGMVariant::kLastModified;
  CGMScheduler scheduler(config);
  auto result = RunScheduler(&workload, metric.get(), ShortRun(), &scheduler);
  ASSERT_TRUE(result.ok());
  // Refresh throughput is about half the bandwidth (2 units per poll).
  EXPECT_LT(result->scheduler.refreshes_delivered, 1800);
  EXPECT_GT(result->scheduler.refreshes_delivered, 1000);
}

TEST(CGMSchedulerTest, EstimatesConvergeDuringRun) {
  Workload workload = std::move(MakeWorkload(SmallWorkload())).ValueOrDie();
  auto metric = MakeMetric(MetricKind::kStaleness);
  CGMConfig config;
  config.network.cache_bandwidth_avg = 40.0;  // plenty of polls
  config.variant = CGMVariant::kLastModified;
  CGMScheduler scheduler(config);
  HarnessConfig harness;
  harness.warmup = 100.0;
  harness.measure = 900.0;
  auto result = RunScheduler(&workload, metric.get(), harness, &scheduler);
  ASSERT_TRUE(result.ok());
  // Estimated rates should correlate with the true rates.
  double error_sum = 0.0;
  for (size_t i = 0; i < workload.objects.size(); ++i) {
    error_sum += std::abs(scheduler.EstimatedLambda(static_cast<ObjectIndex>(i)) -
                          workload.objects[i].lambda);
  }
  const double mean_error = error_sum / workload.objects.size();
  EXPECT_LT(mean_error, 0.12);  // rates are in [0.05, 0.5]
}

TEST(RoundRobinTest, CyclesThroughObjects) {
  Workload workload = std::move(MakeWorkload(SmallWorkload())).ValueOrDie();
  auto metric = MakeMetric(MetricKind::kStaleness);
  CacheDrivenConfig config;
  config.cache_bandwidth_avg = 4.0;
  RoundRobinScheduler scheduler(config);
  auto result = RunScheduler(&workload, metric.get(), ShortRun(), &scheduler);
  ASSERT_TRUE(result.ok());
  EXPECT_NEAR(static_cast<double>(result->scheduler.refreshes_delivered), 1200.0,
              100.0);
}

// The central claims of Figures 4 and 6, at test scale: on a shared
// workload under the staleness metric,
//   ideal cooperative <= our algorithm  (coordination costs something)
//   our algorithm < practical CGM       (cooperation beats cache polling)
TEST(SchedulerOrderingTest, CooperationBeatsCacheDrivenPolling) {
  auto metric = MakeMetric(MetricKind::kStaleness);
  WorkloadConfig wl;
  wl.num_sources = 10;
  wl.objects_per_source = 10;
  wl.rate_lo = 0.0;
  wl.rate_hi = 1.0;
  wl.seed = 21;
  HarnessConfig harness;
  harness.warmup = 100.0;
  harness.measure = 500.0;
  const double bandwidth = 30.0;  // 30% of objects/s

  auto run = [&](Scheduler* scheduler) {
    Workload workload = std::move(MakeWorkload(wl)).ValueOrDie();
    auto result = RunScheduler(&workload, metric.get(), harness, scheduler);
    EXPECT_TRUE(result.ok());
    return result->per_object_unweighted;
  };

  IdealConfig ideal_config;
  ideal_config.cache_bandwidth_avg = bandwidth;
  IdealCooperativeScheduler ideal(ideal_config);
  const double ideal_divergence = run(&ideal);

  CooperativeConfig coop_config;
  coop_config.cache_bandwidth_avg = bandwidth;
  CooperativeScheduler cooperative(coop_config);
  const double cooperative_divergence = run(&cooperative);

  CGMConfig cgm_config;
  cgm_config.network.cache_bandwidth_avg = bandwidth;
  cgm_config.variant = CGMVariant::kLastModified;
  CGMScheduler cgm(cgm_config);
  const double cgm_divergence = run(&cgm);

  EXPECT_LE(ideal_divergence, cooperative_divergence * 1.05);
  EXPECT_LT(cooperative_divergence, cgm_divergence);
}

}  // namespace
}  // namespace besync
