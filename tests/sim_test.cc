#include <vector>

#include <gtest/gtest.h>

#include "sim/event_queue.h"
#include "sim/simulation.h"

namespace besync {
namespace {

TEST(EventQueueTest, OrdersByTime) {
  EventQueue queue;
  std::vector<int> fired;
  queue.Push(3.0, [&fired](double) { fired.push_back(3); });
  queue.Push(1.0, [&fired](double) { fired.push_back(1); });
  queue.Push(2.0, [&fired](double) { fired.push_back(2); });
  std::vector<double> times;
  while (!queue.empty()) {
    double time = 0.0;
    EventCallback callback;
    queue.PopInto(&time, &callback);
    times.push_back(time);
    callback(time);
  }
  EXPECT_EQ(fired, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(times, (std::vector<double>{1.0, 2.0, 3.0}));
}

TEST(EventQueueTest, FifoForEqualTimes) {
  EventQueue queue;
  std::vector<int> fired;
  for (int i = 0; i < 10; ++i) {
    queue.Push(5.0, [&fired, i](double) { fired.push_back(i); });
  }
  while (!queue.empty()) {
    double time = 0.0;
    EventCallback callback;
    queue.PopInto(&time, &callback);
    callback(time);
  }
  for (int i = 0; i < 10; ++i) EXPECT_EQ(fired[i], i);
}

TEST(EventQueueTest, NextTimeReportsEarliest) {
  EventQueue queue;
  queue.Push(7.5, [](double) {});
  queue.Push(2.5, [](double) {});
  EXPECT_DOUBLE_EQ(queue.NextTime(), 2.5);
}

TEST(EventQueueTest, PopIntoReturnsTimeAndCallback) {
  EventQueue queue;
  queue.Push(4.0, [](double) {});
  double time = 0.0;
  EventCallback callback;
  queue.PopInto(&time, &callback);
  EXPECT_DOUBLE_EQ(time, 4.0);
  EXPECT_TRUE(queue.empty());
}

TEST(SimulationTest, RunUntilAdvancesClockExactly) {
  Simulation sim;
  sim.RunUntil(12.5);
  EXPECT_DOUBLE_EQ(sim.now(), 12.5);
}

TEST(SimulationTest, EventsFireAtTheirTimestamps) {
  Simulation sim;
  std::vector<double> times;
  sim.ScheduleAt(1.5, [&](double t) { times.push_back(t); });
  sim.ScheduleAt(0.5, [&](double t) { times.push_back(t); });
  sim.RunUntil(2.0);
  ASSERT_EQ(times.size(), 2u);
  EXPECT_DOUBLE_EQ(times[0], 0.5);
  EXPECT_DOUBLE_EQ(times[1], 1.5);
  EXPECT_EQ(sim.events_fired(), 2u);
}

TEST(SimulationTest, EventsBeyondHorizonStayPending) {
  Simulation sim;
  int fired = 0;
  sim.ScheduleAt(10.0, [&](double) { ++fired; });
  sim.RunUntil(5.0);
  EXPECT_EQ(fired, 0);
  EXPECT_EQ(sim.pending_events(), 1u);
  sim.RunUntil(10.0);  // inclusive boundary
  EXPECT_EQ(fired, 1);
}

TEST(SimulationTest, EventsScheduledDuringRunFireInSameRun) {
  Simulation sim;
  std::vector<double> fired;
  sim.ScheduleAt(1.0, [&](double t) {
    fired.push_back(t);
    sim.ScheduleAt(1.5, [&](double t2) { fired.push_back(t2); });
  });
  sim.RunUntil(2.0);
  ASSERT_EQ(fired.size(), 2u);
  EXPECT_DOUBLE_EQ(fired[1], 1.5);
}

TEST(SimulationTest, SelfReschedulingEventChain) {
  // Mimics the update-process pattern: each event schedules the next.
  Simulation sim;
  int count = 0;
  std::function<void(double)> reschedule = [&](double t) {
    ++count;
    if (t + 1.0 <= 100.0) sim.ScheduleAt(t + 1.0, reschedule);
  };
  sim.ScheduleAt(1.0, reschedule);
  sim.RunUntil(100.0);
  EXPECT_EQ(count, 100);
}

TEST(SimulationTest, ScheduleAfterUsesCurrentTime) {
  Simulation sim;
  sim.RunUntil(3.0);
  double fired_at = -1.0;
  sim.ScheduleAfter(2.0, [&](double t) { fired_at = t; });
  sim.RunUntil(10.0);
  EXPECT_DOUBLE_EQ(fired_at, 5.0);
}

TEST(SimulationTest, StepFiresSingleEvent) {
  Simulation sim;
  int fired = 0;
  sim.ScheduleAt(1.0, [&](double) { ++fired; });
  sim.ScheduleAt(2.0, [&](double) { ++fired; });
  EXPECT_TRUE(sim.Step());
  EXPECT_EQ(fired, 1);
  EXPECT_DOUBLE_EQ(sim.now(), 1.0);
  EXPECT_TRUE(sim.Step());
  EXPECT_FALSE(sim.Step());
}

}  // namespace
}  // namespace besync
