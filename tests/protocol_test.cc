// Consistency-protocol layer tests (protocol/sync_protocol.h): the
// push-refresh extraction pin (protocol-dispatched engine reproduces the
// seed goldens bitwise), protocol-object unit semantics, invalidation end
// to end (flat, through relay trees, and across lossy links where a lost
// invalidate leaves a valid-but-stale replica), TTL/lease determinism and
// zero-source-traffic behavior, and thread-count-independent JSON for all
// three protocols.

#include <gtest/gtest.h>

#include <sstream>
#include <string>
#include <vector>

#include "exp/protocol_sweep.h"
#include "exp/runner.h"
#include "protocol/sync_protocol.h"

namespace besync {
namespace {

constexpr double kTolerance = 1e-9;

/// The GoldenTest.CooperativeTrigger configuration (tests/golden_test.cc):
/// the seed-era constants the protocol layer must not disturb when the
/// protocol is push refresh.
ExperimentConfig GoldenConfig() {
  ExperimentConfig config;
  config.scheduler = SchedulerKind::kCooperative;
  config.workload.num_sources = 8;
  config.workload.objects_per_source = 25;
  config.workload.seed = 42;
  config.harness.warmup = 50.0;
  config.harness.measure = 300.0;
  config.harness.seed = 7;
  config.cache_bandwidth_avg = 12.0;
  config.source_bandwidth_avg = 4.0;
  return config;
}

constexpr double kGoldenDivergence = 226.69154803746471;
constexpr int64_t kGoldenRefreshes = 3150;
constexpr int64_t kGoldenFeedback = 436;

/// A small read-enabled multi-cache shape the non-push protocols run on.
ExperimentConfig ReadConfig() {
  ExperimentConfig config;
  config.scheduler = SchedulerKind::kCooperative;
  config.workload.num_sources = 4;
  config.workload.objects_per_source = 12;
  config.workload.num_caches = 2;
  config.workload.interest_pattern = InterestPattern::kPartitionedBySource;
  config.workload.read.read_rate = 4.0;
  config.workload.seed = 29;
  config.harness.warmup = 20.0;
  config.harness.measure = 200.0;
  config.harness.seed = 11;
  config.cache_bandwidth_avg = 6.0;
  return config;
}

RunResult MustRun(const ExperimentConfig& config) {
  auto result = RunExperiment(config);
  EXPECT_TRUE(result.ok()) << result.status().ToString();
  return std::move(result).ValueOrDie();
}

// --------------------------------------------------- protocol unit layer

TEST(SyncProtocolTest, KindNamesRoundTrip) {
  EXPECT_EQ(SyncProtocolKindToString(SyncProtocolKind::kPushRefresh), "push-refresh");
  EXPECT_EQ(SyncProtocolKindToString(SyncProtocolKind::kInvalidation), "invalidation");
  EXPECT_EQ(SyncProtocolKindToString(SyncProtocolKind::kTtlLease), "ttl-lease");
}

TEST(SyncProtocolTest, PushRefreshIsAlwaysFresh) {
  SyncProtocolConfig config;
  const auto protocol = SyncProtocol::Make(config);
  EXPECT_TRUE(protocol->emits_push_refreshes());
  EXPECT_FALSE(protocol->emits_invalidations());
  EXPECT_FALSE(protocol->tracks_validity());
  ReplicaSyncState state;
  EXPECT_TRUE(protocol->ReplicaFresh(state, 0.0));
  EXPECT_TRUE(protocol->ReplicaFresh(state, 1e9));
}

TEST(SyncProtocolTest, InvalidationTogglesValidity) {
  SyncProtocolConfig config;
  config.kind = SyncProtocolKind::kInvalidation;
  const auto protocol = SyncProtocol::Make(config);
  EXPECT_FALSE(protocol->emits_push_refreshes());
  EXPECT_TRUE(protocol->emits_invalidations());
  EXPECT_TRUE(protocol->tracks_validity());
  ReplicaSyncState state;
  EXPECT_TRUE(protocol->ReplicaFresh(state, 5.0));
  protocol->OnInvalidate(&state, 5.0);
  EXPECT_FALSE(protocol->ReplicaFresh(state, 6.0));
  protocol->OnRefreshApplied(&state, 7.0);
  EXPECT_TRUE(protocol->ReplicaFresh(state, 8.0));
}

TEST(SyncProtocolTest, TtlLeaseExpires) {
  SyncProtocolConfig config;
  config.kind = SyncProtocolKind::kTtlLease;
  config.ttl = 10.0;
  const auto protocol = SyncProtocol::Make(config);
  EXPECT_FALSE(protocol->emits_push_refreshes());
  EXPECT_FALSE(protocol->emits_invalidations());
  EXPECT_TRUE(protocol->tracks_validity());
  // Warm-start replicas lease from time 0.
  EXPECT_EQ(protocol->initial_lease_expiry(), 10.0);
  ReplicaSyncState state;
  state.lease_expiry = protocol->initial_lease_expiry();
  EXPECT_TRUE(protocol->ReplicaFresh(state, 9.0));
  EXPECT_FALSE(protocol->ReplicaFresh(state, 10.0));  // expiry is exclusive
  protocol->OnRefreshApplied(&state, 12.0);
  EXPECT_EQ(state.lease_expiry, 22.0);
  EXPECT_TRUE(protocol->ReplicaFresh(state, 21.0));
  EXPECT_FALSE(protocol->ReplicaFresh(state, 23.0));
}

// ------------------------------------------------- push-refresh neutrality

TEST(ProtocolPinTest, PushRefreshReproducesSeedGolden) {
  // The protocol layer's dispatch must be invisible for push refresh: same
  // RNG stream, same message sequence, same accounting as the seed engine.
  ExperimentConfig config = GoldenConfig();
  config.protocol.kind = SyncProtocolKind::kPushRefresh;
  const RunResult result = MustRun(config);
  EXPECT_NEAR(result.total_weighted_divergence, kGoldenDivergence, kTolerance);
  EXPECT_EQ(result.scheduler.refreshes_sent, kGoldenRefreshes);
  EXPECT_EQ(result.scheduler.feedback_sent, kGoldenFeedback);
  EXPECT_EQ(result.scheduler.invalidations_sent, 0);
  EXPECT_EQ(result.scheduler.invalidations_received, 0);
}

TEST(ProtocolPinTest, PushRefreshJsonOmitsProtocolFields) {
  // Historical grids must keep their exact bytes: push-refresh rows carry
  // no protocol block, non-push rows do.
  std::vector<ExperimentJob> jobs(2);
  jobs[0].name = "push";
  jobs[0].config = ReadConfig();
  jobs[1].name = "inval";
  jobs[1].config = ReadConfig();
  jobs[1].config.protocol.kind = SyncProtocolKind::kInvalidation;
  const std::vector<JobResult> results = RunExperiments(jobs, RunnerOptions{});
  std::ostringstream json;
  WriteResultsJson(json, results);
  const std::string text = json.str();
  const size_t protocol_at = text.find("\"protocol\"");
  ASSERT_NE(protocol_at, std::string::npos);
  // Only one row carries the field, and it is the invalidation row.
  EXPECT_EQ(text.find("\"protocol\"", protocol_at + 1), std::string::npos);
  EXPECT_NE(text.find("\"protocol\": \"invalidation\""), std::string::npos);
  EXPECT_NE(text.find("\"invalidations_sent\""), std::string::npos);
}

// ------------------------------------------------------------ guard rails

TEST(ProtocolGuardTest, NonPushProtocolsRequireReads) {
  ExperimentConfig config = GoldenConfig();  // no reads
  config.protocol.kind = SyncProtocolKind::kInvalidation;
  const auto result = RunExperiment(config);
  EXPECT_FALSE(result.ok());
  config.protocol.kind = SyncProtocolKind::kTtlLease;
  const auto ttl_result = RunExperiment(config);
  EXPECT_FALSE(ttl_result.ok());
}

TEST(ProtocolGuardTest, NonPushProtocolsRejectBaselineSchedulers) {
  ExperimentConfig config = ReadConfig();
  config.workload.num_caches = 1;
  config.workload.interest_pattern = InterestPattern::kSingleCache;
  config.scheduler = SchedulerKind::kRoundRobin;
  config.protocol.kind = SyncProtocolKind::kInvalidation;
  EXPECT_FALSE(RunExperiment(config).ok());
}

// ----------------------------------------------------------- invalidation

TEST(InvalidationTest, FlatEndToEnd) {
  ExperimentConfig config = ReadConfig();
  config.protocol.kind = SyncProtocolKind::kInvalidation;
  const RunResult result = MustRun(config);
  // The push machinery is fully off: every byte the sources emit is an
  // invalidate, every refill a read-triggered pull.
  EXPECT_EQ(result.scheduler.refreshes_sent, 0);
  EXPECT_EQ(result.scheduler.feedback_sent, 0);
  EXPECT_GT(result.scheduler.invalidations_sent, 0);
  EXPECT_GT(result.scheduler.invalidations_received, 0);
  EXPECT_GT(result.scheduler.reads_total, 0);
  EXPECT_GT(result.scheduler.read_misses, 0);
  EXPECT_GT(result.scheduler.pulls_delivered, 0);
  // Lossless links: sent and delivered match up to the messages in flight
  // across the measurement-window boundaries (the same slack the refresh
  // counters have — flat links deliver next tick, so the slack is tiny).
  EXPECT_NEAR(static_cast<double>(result.scheduler.invalidations_received),
              static_cast<double>(result.scheduler.invalidations_sent), 8.0);
}

TEST(InvalidationTest, DeterministicAcrossRepeatRuns) {
  ExperimentConfig config = ReadConfig();
  config.protocol.kind = SyncProtocolKind::kInvalidation;
  const RunResult first = MustRun(config);
  const RunResult second = MustRun(config);
  EXPECT_EQ(first.total_weighted_divergence, second.total_weighted_divergence);
  EXPECT_EQ(first.scheduler.invalidations_sent, second.scheduler.invalidations_sent);
  EXPECT_EQ(first.scheduler.read_staleness_p95, second.scheduler.read_staleness_p95);
}

TEST(InvalidationTest, BatchingReducesMessagesNotNotifications) {
  ExperimentConfig config = ReadConfig();
  config.protocol.kind = SyncProtocolKind::kInvalidation;
  config.protocol.max_invalidate_batch = 1;
  // Squeeze the source side so the queue actually builds up batches.
  config.source_bandwidth_avg = 2.0;
  const RunResult unbatched = MustRun(config);
  config.protocol.max_invalidate_batch = 8;
  const RunResult batched = MustRun(config);
  // Batching packs more per-object notifications into the same link budget.
  EXPECT_GE(batched.scheduler.invalidations_sent,
            unbatched.scheduler.invalidations_sent);
  EXPECT_GT(batched.scheduler.invalidations_sent, 0);
}

TEST(InvalidationTest, RelayTreeEndToEnd) {
  // Invalidates are plain messages to the relay layer: they traverse a
  // two-tier store-and-forward tree unchanged.
  ExperimentConfig config = ReadConfig();
  config.workload.num_sources = 8;
  config.workload.num_caches = 4;
  config.workload.relay_tiers = 2;
  config.workload.relay_fanout = 2;
  config.workload.relay_bandwidth_factor = 0.75;
  config.protocol.kind = SyncProtocolKind::kInvalidation;
  const RunResult result = MustRun(config);
  EXPECT_GT(result.scheduler.invalidations_received, 0);
  EXPECT_GT(result.scheduler.pulls_delivered, 0);
  EXPECT_GT(result.scheduler.relays_forwarded, 0);
}

TEST(InvalidationTest, LostInvalidateLeavesValidButStaleReplica) {
  // A lossy link drops some invalidates. The replica then *believes* it is
  // fresh — reads keep hitting it — so the loss shows up not in the miss
  // counters but in read-time staleness: the silent hazard the DESIGN note
  // documents.
  ExperimentConfig config = ReadConfig();
  config.protocol.kind = SyncProtocolKind::kInvalidation;
  const RunResult lossless = MustRun(config);
  config.loss_rate = 0.4;
  const RunResult lossy = MustRun(config);
  EXPECT_LT(lossy.scheduler.invalidations_received,
            lossy.scheduler.invalidations_sent);
  // Fewer invalidates arrive => fewer misses => fewer pulls refill, and
  // reads served from silently-stale replicas push the staleness tail up.
  EXPECT_GT(lossy.scheduler.read_staleness_p95,
            lossless.scheduler.read_staleness_p95);
}

// -------------------------------------------------------------- TTL/lease

TEST(TtlLeaseTest, ZeroSourceTrafficAndDeterministic) {
  ExperimentConfig config = ReadConfig();
  config.protocol.kind = SyncProtocolKind::kTtlLease;
  config.protocol.ttl = 25.0;
  const RunResult first = MustRun(config);
  // The source volunteers nothing: no pushes, no feedback, no invalidates.
  // All traffic is read-triggered pulls renewing expired leases.
  EXPECT_EQ(first.scheduler.refreshes_sent, 0);
  EXPECT_EQ(first.scheduler.feedback_sent, 0);
  EXPECT_EQ(first.scheduler.invalidations_sent, 0);
  EXPECT_EQ(first.scheduler.invalidations_received, 0);
  EXPECT_GT(first.scheduler.reads_total, 0);
  EXPECT_GT(first.scheduler.pulls_delivered, 0);
  const RunResult second = MustRun(config);
  EXPECT_EQ(first.total_weighted_divergence, second.total_weighted_divergence);
  EXPECT_EQ(first.scheduler.reads_total, second.scheduler.reads_total);
  EXPECT_EQ(first.scheduler.pulls_delivered, second.scheduler.pulls_delivered);
}

TEST(TtlLeaseTest, ConsumesNoGeneratorRandomness) {
  // The lease clock is the only protocol state: runs differing only in ttl
  // draw the exact same update and read streams, so the read counts match
  // and only the hit/miss split moves.
  ExperimentConfig config = ReadConfig();
  config.protocol.kind = SyncProtocolKind::kTtlLease;
  config.protocol.ttl = 10.0;
  const RunResult short_ttl = MustRun(config);
  config.protocol.ttl = 100.0;
  const RunResult long_ttl = MustRun(config);
  EXPECT_EQ(short_ttl.scheduler.reads_total, long_ttl.scheduler.reads_total);
  // A longer lease expires less: strictly fewer misses on this workload.
  EXPECT_LT(long_ttl.scheduler.read_misses, short_ttl.scheduler.read_misses);
}

// ---------------------------------------------- thread-count independence

TEST(ProtocolThreadingTest, JsonIsRunThreadCountInvariant) {
  // All three protocols, serialized JSON byte-identical at run_threads
  // 1 / 2 / 4 (the intra-run sharding axis, not the grid runner's).
  for (const SyncProtocolKind kind :
       {SyncProtocolKind::kPushRefresh, SyncProtocolKind::kInvalidation,
        SyncProtocolKind::kTtlLease}) {
    std::string baseline;
    for (const int run_threads : {1, 2, 4}) {
      std::vector<ExperimentJob> jobs(1);
      jobs[0].name = SyncProtocolKindToString(kind);
      jobs[0].config = ReadConfig();
      jobs[0].config.protocol.kind = kind;
      jobs[0].config.run_threads = run_threads;
      const std::vector<JobResult> results = RunExperiments(jobs, RunnerOptions{});
      ASSERT_TRUE(results[0].status.ok()) << results[0].status.ToString();
      std::ostringstream json;
      WriteResultsJson(json, results);
      if (run_threads == 1) {
        baseline = json.str();
      } else {
        EXPECT_EQ(json.str(), baseline)
            << SyncProtocolKindToString(kind) << " at run_threads=" << run_threads;
      }
    }
  }
}

TEST(ProtocolThreadingTest, SweepJsonIsGridThreadCountInvariant) {
  ProtocolSweepConfig sweep;
  sweep.base = ReadConfig();
  sweep.read_rates = {2.0, 8.0};
  sweep.bandwidths = {6.0};
  sweep.relay_tiers = {0};

  sweep.threads = 1;
  std::vector<JobResult> sequential;
  ASSERT_TRUE(RunProtocolSweep(sweep, &sequential).ok());
  sweep.threads = 8;
  std::vector<JobResult> parallel;
  ASSERT_TRUE(RunProtocolSweep(sweep, &parallel).ok());

  std::ostringstream json_sequential, json_parallel;
  WriteResultsJson(json_sequential, sequential);
  WriteResultsJson(json_parallel, parallel);
  EXPECT_EQ(json_sequential.str(), json_parallel.str());
  // 2 rates x 1 bandwidth x 1 tier x 3 protocols.
  EXPECT_EQ(sequential.size(), 6u);
}

}  // namespace
}  // namespace besync
