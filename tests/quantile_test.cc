// QuantileDigest: exactness below the compression threshold, rank-bounded
// accuracy on large fixed-seed streams, deterministic merging, and exact
// extremes — the properties the read path's staleness percentiles rely on.

#include "util/quantile.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "util/random.h"

namespace besync {
namespace {

TEST(QuantileDigestTest, EmptyDigestIsZero) {
  QuantileDigest digest;
  EXPECT_TRUE(digest.empty());
  EXPECT_EQ(digest.count(), 0);
  EXPECT_EQ(digest.Quantile(0.5), 0.0);
  EXPECT_EQ(digest.min(), 0.0);
  EXPECT_EQ(digest.max(), 0.0);
  EXPECT_EQ(digest.mean(), 0.0);
}

TEST(QuantileDigestTest, ExactBelowCompression) {
  // n distinct values under the compression threshold: every centroid keeps
  // weight 1, so the midpoint quantiles are the values themselves.
  const int n = 100;
  std::vector<double> values(n);
  for (int i = 0; i < n; ++i) values[i] = static_cast<double>(i + 1);
  Rng rng(11);
  rng.Shuffle(&values);

  QuantileDigest digest(256);
  for (double value : values) digest.Add(value);
  ASSERT_EQ(digest.count(), n);
  for (int i = 0; i < n; ++i) {
    const double q = (static_cast<double>(i) + 0.5) / n;
    EXPECT_DOUBLE_EQ(digest.Quantile(q), static_cast<double>(i + 1)) << "i=" << i;
  }
  EXPECT_EQ(digest.min(), 1.0);
  EXPECT_EQ(digest.max(), static_cast<double>(n));
  EXPECT_NEAR(digest.mean(), (n + 1) / 2.0, 1e-12);
}

/// Exact sorted-sample bracket for quantile q with rank slack `slack`:
/// the digest's answer must land between the sorted values at ranks
/// floor(q*n) -/+ slack.
void ExpectWithinRankWindow(const std::vector<double>& sorted, double q,
                            double digest_value, int64_t slack) {
  const int64_t n = static_cast<int64_t>(sorted.size());
  const int64_t rank = static_cast<int64_t>(q * static_cast<double>(n));
  const int64_t lo = std::max<int64_t>(rank - slack, 0);
  const int64_t hi = std::min<int64_t>(rank + slack, n - 1);
  EXPECT_GE(digest_value, sorted[lo]) << "q=" << q;
  EXPECT_LE(digest_value, sorted[hi]) << "q=" << q;
}

TEST(QuantileDigestTest, LargeStreamMatchesSortedSampleWithinRankTolerance) {
  const int64_t n = 50000;
  Rng rng(1234);
  std::vector<double> values;
  values.reserve(n);
  QuantileDigest digest(256);
  for (int64_t i = 0; i < n; ++i) {
    // Mix of a heavy body and a long tail — the staleness-like shape.
    const double value = rng.Exponential(1.0) + 0.1 * rng.NextDouble();
    values.push_back(value);
    digest.Add(value);
  }
  std::sort(values.begin(), values.end());
  ASSERT_EQ(digest.count(), n);

  // Equal-weight bins of 256 give ~n/256 rank resolution; allow 2x that.
  const int64_t slack = 2 * (n / 256);
  for (double q : {0.10, 0.25, 0.50, 0.75, 0.90, 0.95, 0.99}) {
    ExpectWithinRankWindow(values, q, digest.Quantile(q), slack);
  }
  EXPECT_EQ(digest.min(), values.front());
  EXPECT_EQ(digest.max(), values.back());
}

TEST(QuantileDigestTest, MergeIsDeterministic) {
  // Four shards of one fixed-seed stream, merged in a fixed order twice:
  // both merged digests must agree bitwise on every quantile.
  Rng rng(77);
  std::vector<QuantileDigest> shards_a(4, QuantileDigest(128));
  std::vector<QuantileDigest> shards_b(4, QuantileDigest(128));
  std::vector<double> values;
  for (int i = 0; i < 20000; ++i) values.push_back(rng.Normal(10.0, 3.0));
  for (size_t i = 0; i < values.size(); ++i) {
    shards_a[i % 4].Add(values[i]);
    shards_b[i % 4].Add(values[i]);
  }
  QuantileDigest merged_a(128), merged_b(128);
  for (int s = 0; s < 4; ++s) {
    merged_a.Merge(shards_a[s]);
    merged_b.Merge(shards_b[s]);
  }
  ASSERT_EQ(merged_a.count(), merged_b.count());
  for (double q : {0.0, 0.01, 0.25, 0.5, 0.9, 0.99, 1.0}) {
    EXPECT_EQ(merged_a.Quantile(q), merged_b.Quantile(q)) << "q=" << q;
  }
  EXPECT_EQ(merged_a.mean(), merged_b.mean());
  EXPECT_EQ(merged_a.min(), merged_b.min());
  EXPECT_EQ(merged_a.max(), merged_b.max());
}

TEST(QuantileDigestTest, MergedShardsTrackTheUnshardedDigest) {
  Rng rng(5);
  std::vector<double> values;
  for (int i = 0; i < 30000; ++i) values.push_back(rng.Uniform(0.0, 100.0));

  QuantileDigest whole(256);
  std::vector<QuantileDigest> shards(3, QuantileDigest(256));
  for (size_t i = 0; i < values.size(); ++i) {
    whole.Add(values[i]);
    shards[i % 3].Add(values[i]);
  }
  QuantileDigest merged(256);
  for (const QuantileDigest& shard : shards) merged.Merge(shard);
  ASSERT_EQ(merged.count(), whole.count());

  std::sort(values.begin(), values.end());
  const int64_t slack = 2 * (static_cast<int64_t>(values.size()) / 256);
  for (double q : {0.5, 0.95, 0.99}) {
    ExpectWithinRankWindow(values, q, merged.Quantile(q), slack);
    ExpectWithinRankWindow(values, q, whole.Quantile(q), slack);
  }
}

TEST(QuantileDigestTest, WeightedAddAndReset) {
  QuantileDigest digest(64);
  digest.Add(1.0, 3);
  digest.Add(2.0, 1);
  EXPECT_EQ(digest.count(), 4);
  // Ranks 0..2 are the weight-3 value; the p50 midpoint sits inside it.
  EXPECT_DOUBLE_EQ(digest.Quantile(0.25), 1.0);
  EXPECT_NEAR(digest.mean(), 1.25, 1e-12);
  digest.Reset();
  EXPECT_TRUE(digest.empty());
  EXPECT_EQ(digest.Quantile(0.5), 0.0);
  digest.Add(7.0);
  EXPECT_EQ(digest.count(), 1);
  EXPECT_DOUBLE_EQ(digest.Quantile(0.5), 7.0);
}

}  // namespace
}  // namespace besync
