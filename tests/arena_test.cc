#include "util/arena.h"

#include <cstdint>
#include <cstring>
#include <vector>

#include <gtest/gtest.h>

namespace besync {
namespace {

bool IsAligned(const void* p, size_t alignment) {
  return reinterpret_cast<uintptr_t>(p) % alignment == 0;
}

TEST(ArenaTest, AllocationsAreAlignedAndDisjoint) {
  Arena arena(256);
  char* a = static_cast<char*>(arena.Allocate(3, 1));
  double* d = static_cast<double*>(arena.Allocate(sizeof(double), alignof(double)));
  char* b = static_cast<char*>(arena.Allocate(5, 1));
  void* wide = arena.Allocate(64, 64);

  EXPECT_TRUE(IsAligned(d, alignof(double)));
  EXPECT_TRUE(IsAligned(wide, 64));

  // Writes through each pointer must not clobber the others.
  std::memset(a, 0xaa, 3);
  *d = 1.5;
  std::memset(b, 0xbb, 5);
  std::memset(wide, 0xcc, 64);
  EXPECT_EQ(static_cast<unsigned char>(a[2]), 0xaa);
  EXPECT_EQ(*d, 1.5);
  EXPECT_EQ(static_cast<unsigned char>(b[0]), 0xbb);
}

TEST(ArenaTest, GrowsAcrossBlocksAndHonorsOversizedRequests) {
  Arena arena(64);
  // Many small allocations spanning several 64-byte blocks.
  std::vector<int*> ints;
  for (int i = 0; i < 100; ++i) {
    int* p = arena.New<int>(i);
    ints.push_back(p);
  }
  for (int i = 0; i < 100; ++i) EXPECT_EQ(*ints[i], i);

  // A request far larger than the block size gets its own block.
  int* big = arena.AllocateArray<int>(1000);
  for (int i = 0; i < 1000; ++i) EXPECT_EQ(big[i], 0);  // value-initialized
  big[999] = 7;
  EXPECT_EQ(big[999], 7);
  EXPECT_GE(arena.bytes_reserved(), 1000 * sizeof(int));
}

TEST(ArenaTest, AllocateArrayConstructsWithArguments) {
  struct Tracked {
    explicit Tracked(int v) : value(v), doubled(2 * v) {}
    int value;
    int doubled;
  };
  Arena arena;
  Tracked* items = arena.AllocateArray<Tracked>(17, 21);
  for (int i = 0; i < 17; ++i) {
    EXPECT_EQ(items[i].value, 21);
    EXPECT_EQ(items[i].doubled, 42);
  }
}

TEST(ArenaTest, ResetReusesReservedBlocksWithoutGrowing) {
  Arena arena(1024);
  for (int i = 0; i < 300; ++i) arena.Allocate(16, 8);
  const size_t reserved = arena.bytes_reserved();
  EXPECT_GT(arena.bytes_used(), 0u);

  arena.Reset();
  EXPECT_EQ(arena.bytes_used(), 0u);
  EXPECT_EQ(arena.bytes_reserved(), reserved);

  // The same allocation pattern after Reset fits in the retained blocks.
  for (int i = 0; i < 300; ++i) arena.Allocate(16, 8);
  EXPECT_EQ(arena.bytes_reserved(), reserved);
}

TEST(ArenaTest, ZeroByteAllocationsAreDistinct) {
  Arena arena;
  void* a = arena.Allocate(0, 1);
  void* b = arena.Allocate(0, 1);
  EXPECT_NE(a, nullptr);
  EXPECT_NE(a, b);
}

}  // namespace
}  // namespace besync
